(* The oregami command line: parse / dump / analyze / map / render /
   simulate LaRCS programs against network topologies. *)

open Cmdliner
open Oregami

let read_source = Service.load_program

let parse_binding s =
  match String.split_on_char '=' s with
  | [ k; v ] -> begin
    match int_of_string_opt v with
    | Some v -> Ok (k, v)
    | None -> Error (Printf.sprintf "bad parameter value in %S" s)
  end
  | _ -> Error (Printf.sprintf "bad parameter %S (want name=value)" s)

let collect_bindings raw =
  List.fold_left
    (fun acc s ->
      match (acc, parse_binding s) with
      | Ok l, Ok kv -> Ok (kv :: l)
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> (match e with Ok _ -> assert false | Error m -> Error m))
    (Ok []) raw

let die ?(code = 1) m =
  Printf.eprintf "oregami: %s\n" m;
  exit code

let or_die = function Ok v -> v | Error m -> die m

(* common args *)
let input_arg =
  let doc = "LaRCS source file, or a built-in workload name (see $(b,workloads))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let params_arg =
  let doc = "Bind an algorithm parameter, e.g. $(b,-p n=15).  Repeatable." in
  Arg.(value & opt_all string [] & info [ "p"; "param" ] ~docv:"NAME=VALUE" ~doc)

let topo_arg =
  let doc =
    Printf.sprintf
      "Target topology (%s).  Append $(b,:classes=CLASS@IDS[/CLASS@IDS...]) to \
       tag processors with capability classes, e.g. \
       $(b,torus:8x8:classes=mem@0-7/io@56-63)."
      (String.concat ", " Topology.known_kinds)
  in
  Arg.(required & opt (some string) None & info [ "t"; "topology" ] ~docv:"TOPO" ~doc)

let target_topology topo = or_die (Topology.of_string topo)

let routing_arg =
  let doc =
    "Routing algorithm: $(b,mm-route) (per-message MM-Route), $(b,oblivious) \
     (the topology's deterministic single-path scheme), $(b,coarse) \
     (traffic-aggregated MM-Route for large graphs), or $(b,auto) (the \
     default: mm-route up to the multilevel threshold, coarse above)."
  in
  Arg.(value & opt string "auto" & info [ "routing" ] ~docv:"ALG" ~doc)

let route_jobs_arg =
  let doc =
    "Domains used to route independent communication phases concurrently \
     under coarse routing (flat MM-Route ignores it).  Output is \
     byte-identical across widths."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* fault injection *)
let kill_procs_arg =
  let doc =
    "Kill these processors (comma-separated ids).  With $(b,--fault-seed) the \
     value is instead a $(i,count) of randomly drawn dead processors."
  in
  Arg.(value & opt (some string) None & info [ "kill-procs" ] ~docv:"IDS|N" ~doc)

let kill_links_arg =
  let doc =
    "Kill these links (comma-separated ids, see $(b,topo) for the numbering).  \
     With $(b,--fault-seed) the value is instead a $(i,count) of randomly drawn \
     dead links."
  in
  Arg.(value & opt (some string) None & info [ "kill-links" ] ~docv:"IDS|N" ~doc)

let fault_seed_arg =
  let doc =
    "Draw the $(b,--kill-procs)/$(b,--kill-links) faults at random from this \
     seed instead of reading them as explicit ids."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let fault_set ~kill_procs ~kill_links ~fault_seed topology =
  match (kill_procs, kill_links, fault_seed) with
  | None, None, None -> Faults.none
  | _, _, Some seed ->
    let count flag = function
      | None -> 0
      | Some s -> begin
        match int_of_string_opt s with
        | Some n when n >= 0 -> n
        | Some _ | None ->
          die (Printf.sprintf "with --fault-seed, %s wants a count, got %S" flag s)
      end
    in
    or_die
      (Faults.random (Prelude.Rng.create seed)
         ~procs:(count "--kill-procs" kill_procs)
         ~links:(count "--kill-links" kill_links)
         topology)
  | _, _, None ->
    let ids = function None -> [] | Some s -> or_die (Faults.parse_ids s) in
    or_die (Faults.make ~procs:(ids kill_procs) ~links:(ids kill_links) topology)

(* degrade the target topology, or_die-ing on disconnection (with the
   surviving partitions named) *)
let degraded_target topology faults =
  if Faults.is_empty faults then (topology, faults)
  else begin
    let view = or_die (Faults.degrade topology faults) in
    Printf.printf "injected faults: %s\n\n" (Faults.describe faults);
    (view.Faults.topo, faults)
  end

let load ~input ~params =
  (* a missing or unreadable program file is a usage error: exit 2 *)
  let source, default_bindings =
    match read_source input with Ok v -> v | Error m -> die ~code:2 m
  in
  let bindings = or_die (collect_bindings params) in
  let bindings =
    bindings @ List.filter (fun (k, _) -> not (List.mem_assoc k bindings)) default_bindings
  in
  (source, bindings)

let compile ~input ~params =
  let source, bindings = load ~input ~params in
  or_die (Larcs.Compile.compile_source ~bindings source)

let parse_routing = function
  (* "mm" is the historical spelling; keep it as an alias *)
  | "mm" | "mm-route" -> Ok Driver.Mm_route
  | "oblivious" -> Ok Driver.Oblivious
  | "coarse" -> Ok Driver.Coarse
  | "auto" -> Ok Driver.Auto
  | other ->
    Error
      (Printf.sprintf "unknown routing %S (valid: mm-route, oblivious, coarse, auto)"
         other)

let options_of ~routing ~only ~exclude =
  let routing = or_die (parse_routing routing) in
  { Driver.default_options with Driver.routing; Driver.only; Driver.exclude }

let mapping_of ~input ~params ~topo ~routing =
  let compiled = compile ~input ~params in
  let topology = target_topology topo in
  let options = options_of ~routing ~only:[] ~exclude:[] in
  (or_die (Driver.map_compiled ~options compiled topology), compiled)

(* placement-constraint args (see Mapper.Constraints) *)
let pin_arg =
  let doc = "Pin a task to a processor, e.g. $(b,--pin 3=0).  Repeatable." in
  Arg.(value & opt_all string [] & info [ "pin" ] ~docv:"TASK=PROC" ~doc)

let forbid_arg =
  let doc = "Forbid a task from a processor, e.g. $(b,--forbid 3=0).  Repeatable." in
  Arg.(value & opt_all string [] & info [ "forbid" ] ~docv:"TASK=PROC" ~doc)

let require_arg =
  let doc =
    "Require a task to land on a processor of this capability class (see the \
     $(b,classes=) topology suffix), e.g. $(b,--require 3=mem).  Overrides \
     the program's $(b,requires) annotation.  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "require" ] ~docv:"TASK=CLASS" ~doc)

let skip_class_arg =
  let doc =
    "Exclude every processor of this capability class from placement (they \
     still route traffic).  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "skip-class" ] ~docv:"CLASS" ~doc)

let constraints_of ~pins ~forbids ~requires ~skip_classes =
  let joined l = String.concat "," l in
  {
    Mapper.Constraints.pins = or_die (Mapper.Constraints.parse_pins (joined pins));
    forbids = or_die (Mapper.Constraints.parse_forbids (joined forbids));
    requires = or_die (Mapper.Constraints.parse_requires (joined requires));
    skip_classes = List.filter (fun c -> c <> "") skip_classes;
  }

let multilevel_threshold_arg =
  let doc =
    "Task count beyond which the flat strategies stand aside for the \
     multilevel coarsen/map/refine tier."
  in
  Arg.(value
       & opt int Mapper.Multilevel.flat_sweet_spot
       & info [ "multilevel-threshold" ] ~docv:"N" ~doc)

(* budget / anytime args *)
let fuel_arg =
  let doc =
    "Abstract work-unit budget for the whole pipeline run (deterministic \
     across machines).  When it runs out the passes stop early and the best \
     partial mapping is returned, tagged as degraded."
  in
  Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"UNITS" ~doc)

let deadline_arg =
  let doc =
    "Monotonic wall-clock deadline in milliseconds, measured from the start \
     of the run.  Like $(b,--fuel), expiry yields the best partial mapping."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let fallback_arg =
  let doc =
    "Place a cheap baseline mapping instead of erroring when every strategy \
     declines.  Implied by $(b,--fuel) / $(b,--deadline-ms)."
  in
  Arg.(value & flag & info [ "fallback" ] ~doc)

(* subcommands *)
let parse_cmd =
  let run input =
    let source, _ =
      match read_source input with Ok v -> v | Error m -> die ~code:2 m
    in
    let p = or_die (Larcs.Parser.parse source) in
    print_string (Larcs.Pretty.program p)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse a LaRCS program and echo its canonical form")
    Term.(const run $ input_arg)

let dump_cmd =
  let run input params =
    let compiled = compile ~input ~params in
    print_string (Larcs.Compile.dump compiled)
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Compile and dump the task-graph structures (the Fig 2c analogue)")
    Term.(const run $ input_arg $ params_arg)

let analyze_cmd =
  let run input params =
    let compiled = compile ~input ~params in
    let a = Larcs.Analyze.analyze compiled in
    Format.printf "%a@." Larcs.Analyze.pp a
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Run the regularity analyses (Cayley, affine, family)")
    Term.(const run $ input_arg $ params_arg)

let map_cmd =
  let run input params topo routing jobs only exclude explain kill_procs
      kill_links fault_seed fuel deadline_ms fallback pins forbids requires
      skip_classes multilevel_threshold =
    if jobs < 1 then die ~code:2 "--jobs must be at least 1";
    let topology = target_topology topo in
    let faults = fault_set ~kill_procs ~kill_links ~fault_seed topology in
    let topology, faults = degraded_target topology faults in
    let constraints = constraints_of ~pins ~forbids ~requires ~skip_classes in
    let options =
      { (options_of ~routing ~only ~exclude) with
        Driver.jobs;
        Driver.fuel;
        Driver.deadline_ms;
        (* any budget implies the anytime contract: always answer *)
        Driver.fallback = fallback || fuel <> None || deadline_ms <> None;
        Driver.constraints;
        Driver.multilevel_threshold;
      }
    in
    let outcome =
      if Synth.is_spec input then begin
        (* synthetic instances skip LaRCS entirely: build the task
           graph directly, at sizes the parser could never reach *)
        let tg = match Synth.build input with Ok tg -> tg | Error m -> die ~code:2 m in
        Driver.report_taskgraph ~options ~faults tg topology
      end
      else
        let compiled = compile ~input ~params in
        Driver.report ~options ~faults compiled topology
    in
    match outcome with
    | Error e, stats ->
      Printf.eprintf "oregami: %s\n" e;
      List.iter
        (fun (strategy, reason) ->
          Printf.eprintf "oregami:   %s: %s\n" strategy reason)
        (Stats.rejections stats);
      exit 1
    | Ok m, stats ->
      Format.printf "%a@.@." Mapping.pp m;
      let degradation =
        match Stats.degradation stats with
        | Stats.Full -> None
        | d -> Some d
      in
      Metrics.print_summary ?degradation (Metrics.summary m);
      if explain then begin
        print_newline ();
        print_string (Stats.to_table stats);
        (* the DRC pass, by name: every placement rule the mapping was
           produced under, re-checked against the final assignment *)
        let compiled_cons =
          Mapper.Constraints.compile constraints m.Mapping.tg topology
        in
        if Mapper.Constraints.active compiled_cons then begin
          print_newline ();
          match Mapper.Constraints.drc compiled_cons (Mapping.assignment m) with
          | [] ->
            Printf.printf "validate-drc: clean (%s)\n"
              (let d = Mapper.Constraints.describe constraints in
               if d = "" then "program-declared requirements" else d)
          | violations ->
            Printf.printf "validate-drc: %d violation(s)\n" (List.length violations);
            List.iter
              (fun v ->
                Printf.printf "  %s\n" (Mapper.Constraints.violation_to_string v))
              violations
        end;
        print_newline ();
        print_endline (Stats.to_sexp stats)
      end
  in
  let only_arg =
    Arg.(value & opt_all string []
         & info [ "only" ] ~docv:"STRATEGY"
             ~doc:"Compete only these registry strategies (repeatable); disables the \
                   dispatch short-circuit so every named strategy is scored.")
  in
  let exclude_arg =
    Arg.(value & opt_all string []
         & info [ "exclude" ] ~docv:"STRATEGY"
             ~doc:"Drop a registry strategy from the selection (repeatable).")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Print the pipeline statistics: strategies tried/rejected with \
                   reasons and timings, candidate scores, and pass counters, plus an \
                   s-expression dump.")
  in
  Cmd.v (Cmd.info "map" ~doc:"Map a program onto a topology and report METRICS")
    Term.(const run $ input_arg $ params_arg $ topo_arg $ routing_arg
          $ route_jobs_arg $ only_arg $ exclude_arg $ explain_arg
          $ kill_procs_arg $ kill_links_arg $ fault_seed_arg $ fuel_arg
          $ deadline_arg $ fallback_arg $ pin_arg $ forbid_arg $ require_arg
          $ skip_class_arg $ multilevel_threshold_arg)

let render_cmd =
  let run input params topo routing svg_path =
    let m, _ = mapping_of ~input ~params ~topo ~routing in
    match svg_path with
    | Some path ->
      Svg.save path (Svg.mapping m);
      Printf.printf "wrote %s\n" path
    | None ->
      print_string (Render.mapping m);
      print_newline ();
      print_endline (Render.link_loads m)
  in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG rendering to FILE instead of ASCII.")
  in
  Cmd.v (Cmd.info "render" ~doc:"Render the mapping and link loads (ASCII or SVG)")
    Term.(const run $ input_arg $ params_arg $ topo_arg $ routing_arg $ svg_arg)

let routes_cmd =
  let run input params topo routing phase timeline =
    let m, _ = mapping_of ~input ~params ~topo ~routing in
    print_endline (Render.phase_edges m phase);
    if timeline then begin
      print_newline ();
      print_endline (Render.timeline m phase)
    end
  in
  let phase_arg =
    Arg.(required & opt (some string) None & info [ "phase" ] ~docv:"PHASE" ~doc:"Communication phase to display.")
  in
  let timeline_arg =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Also print the per-channel busy timeline.")
  in
  Cmd.v (Cmd.info "routes" ~doc:"Show the routed edges of one communication phase")
    Term.(const run $ input_arg $ params_arg $ topo_arg $ routing_arg $ phase_arg
          $ timeline_arg)

let simulate_cmd =
  let run input params topo routing fault_at kill_procs kill_links fault_seed =
    let m, _ = mapping_of ~input ~params ~topo ~routing in
    match fault_at with
    | None ->
      let r = Netsim.run m in
      Prelude.Tab.print
        ~header:[ "metric"; "value" ]
        [
          [ "simulated makespan"; string_of_int r.Netsim.makespan ];
          [ "communication time"; string_of_int r.Netsim.comm_time ];
          [ "execution time"; string_of_int r.Netsim.exec_time ];
          [ "trace slots"; string_of_int (List.length r.Netsim.slot_times) ];
          [ "deepest channel queue"; string_of_int r.Netsim.max_queue ];
        ]
    | Some at_slot ->
      let faults = fault_set ~kill_procs ~kill_links ~fault_seed m.Mapping.topo in
      let event =
        { Netsim.at_slot; kill_procs = faults.Faults.procs; kill_links = faults.Faults.links }
      in
      let r = or_die (Netsim.run_with_fault m event) in
      Printf.printf "fault at slot %d: %s\n\n" at_slot (Faults.describe faults);
      Prelude.Tab.print
        ~header:[ "metric"; "value" ]
        [
          [ "fault-free makespan"; string_of_int r.Netsim.rv_fault_free.Netsim.makespan ];
          [ "pre-fault time"; string_of_int r.Netsim.rv_pre_time ];
          [ "evacuation (migration)"; string_of_int r.Netsim.rv_migration_time ];
          [ "post-repair time"; string_of_int r.Netsim.rv_post_time ];
          [ "makespan with recovery"; string_of_int r.Netsim.rv_makespan ];
          [ "recovery overhead"; string_of_int r.Netsim.rv_delta ];
          [ "tasks evacuated"; string_of_int (Repair.moved r.Netsim.rv_repair) ];
        ]
  in
  let fault_at_arg =
    Arg.(value & opt (some int) None
         & info [ "fault-at" ] ~docv:"SLOT"
             ~doc:"Inject the $(b,--kill-procs)/$(b,--kill-links) faults after \
                   this trace slot, repair the mapping, and report the recovery \
                   cost against the fault-free run.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the store-and-forward network simulation of the mapping")
    Term.(const run $ input_arg $ params_arg $ topo_arg $ routing_arg $ fault_at_arg
          $ kill_procs_arg $ kill_links_arg $ fault_seed_arg)

let aggregate_cmd =
  let run input params topo routing phase =
    let m, _ = mapping_of ~input ~params ~topo ~routing in
    match Oregami.Mapper.Aggregate.replan_phase m ~phase with
    | Error e -> or_die (Error e)
    | Ok m2 ->
      Prelude.Tab.print
        ~header:[ "mapping"; "hot link volume"; "simulated makespan" ]
        [
          [
            "naive all-to-root";
            string_of_int (Oregami.Mapper.Aggregate.hot_link_volume m phase);
            string_of_int (Netsim.run m).Netsim.makespan;
          ];
          [
            "spanning-tree reduction";
            string_of_int (Oregami.Mapper.Aggregate.hot_link_volume m2 phase);
            string_of_int (Netsim.run m2).Netsim.makespan;
          ];
        ];
      print_newline ();
      print_endline (Render.phase_edges m2 phase)
  in
  let phase_arg =
    Arg.(required & opt (some string) None & info [ "phase" ] ~docv:"PHASE" ~doc:"Aggregation phase to re-plan.")
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:"Re-plan an all-to-root phase as a spanning-tree reduction (paper section 6)")
    Term.(const run $ input_arg $ params_arg $ topo_arg $ routing_arg $ phase_arg)

let remap_cmd =
  let run input params topo =
    let compiled = compile ~input ~params in
    let topology = target_topology topo in
    match Remap.plan compiled.Larcs.Compile.graph topology with
    | Error e -> or_die (Error e)
    | Ok p ->
      Prelude.Tab.print
        ~header:[ "plan"; "makespan" ]
        ([
           [ "single static mapping"; string_of_int p.Remap.static_makespan ];
         ]
        @ List.mapi
            (fun i (r, m) ->
              [
                Printf.sprintf "regime %d [%s] via %s" (i + 1)
                  (String.concat "," r.Remap.rg_comms)
                  m.Mapping.strategy;
                string_of_int (List.nth p.Remap.regime_makespans i);
              ])
            p.Remap.regime_mappings
        @ [
            [ "migration"; string_of_int p.Remap.migration_time ];
            [ "remapped total"; string_of_int p.Remap.remap_makespan ];
          ]);
      Printf.printf "
remapping %s
"
        (if p.Remap.worthwhile then "pays off" else "does not pay off")
  in
  Cmd.v
    (Cmd.info "remap"
       ~doc:"Compare one static mapping against per-regime mappings with migration")
    Term.(const run $ input_arg $ params_arg $ topo_arg)

let repair_cmd =
  let run input params topo kill_procs kill_links fault_seed pins forbids
      requires skip_classes =
    let compiled = compile ~input ~params in
    let topology = target_topology topo in
    let faults = fault_set ~kill_procs ~kill_links ~fault_seed topology in
    if Faults.is_empty faults then
      die "nothing to repair (give --kill-procs and/or --kill-links)";
    let options =
      { Driver.default_options with
        Driver.constraints = constraints_of ~pins ~forbids ~requires ~skip_classes;
      }
    in
    let r =
      or_die
        (Remap.recover ~options ~compiled compiled.Larcs.Compile.graph topology
           faults)
    in
    Printf.printf "faults: %s\n\n" (Faults.describe faults);
    Prelude.Tab.print
      ~header:[ "plan"; "tasks moved"; "migration"; "makespan" ]
      [
        [
          Printf.sprintf "before faults (%s)" r.Remap.rc_base.Mapping.strategy;
          "-"; "-";
          string_of_int r.Remap.rc_base_makespan;
        ];
        [
          "minimum-disruption repair";
          string_of_int (Repair.moved r.Remap.rc_repair);
          string_of_int r.Remap.rc_repair_migration;
          string_of_int r.Remap.rc_repair_makespan;
        ];
        [
          Printf.sprintf "from-scratch remap (%s)" r.Remap.rc_remap.Mapping.strategy;
          string_of_int r.Remap.rc_remap_moved;
          string_of_int r.Remap.rc_remap_migration;
          string_of_int r.Remap.rc_remap_makespan;
        ];
      ];
    Printf.printf "\n%s\n"
      (if r.Remap.rc_repair_wins then
         "repair wins: migration + steady state beats the from-scratch remap"
       else "full remap wins: its better steady state repays the migration");
    Printf.printf
      "\nphase wall-clock: base %.3f ms, repair %.3f ms, remap %.3f ms\n"
      r.Remap.rc_base_ms r.Remap.rc_repair_ms r.Remap.rc_remap_ms
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:"Recover an existing mapping from processor/link failures and compare \
             minimum-disruption repair against a from-scratch remap")
    Term.(const run $ input_arg $ params_arg $ topo_arg $ kill_procs_arg
          $ kill_links_arg $ fault_seed_arg $ pin_arg $ forbid_arg $ require_arg
          $ skip_class_arg)

let systolic_cmd =
  let run spec max_pes =
    let parse_spec s =
      match String.split_on_char ':' s with
      | [ "matmul"; n ] -> begin
        match int_of_string_opt n with
        | Some n when n >= 2 -> Ok (Systolic.Recurrence.matmul n)
        | Some _ | None -> Error "matmul needs a size >= 2"
      end
      | [ "convolution"; dims ] | [ "fir"; dims ] -> begin
        match String.split_on_char 'x' dims with
        | [ a; b ] -> begin
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some n, Some k when n >= 1 && k >= 1 ->
            Ok
              (if String.length s >= 3 && String.sub s 0 3 = "fir" then
                 Systolic.Recurrence.fir n k
               else Systolic.Recurrence.convolution n k)
          | _, _ -> Error "bad dimensions (want NxK)"
        end
        | _ -> Error "bad dimensions (want NxK)"
      end
      | _ -> Error "unknown recurrence (matmul:N, convolution:NxK, fir:NxK)"
    in
    let r = or_die (parse_spec spec) in
    match Systolic.Synthesis.synthesize r with
    | Error e -> or_die (Error e)
    | Ok d ->
      print_string (Systolic.Synthesis.describe r d);
      (match Systolic.Synthesis.verify r d with
      | Ok () -> print_endline "  verified: injective space-time map, causal dependences"
      | Error e -> Printf.printf "  VERIFICATION FAILED: %s\n" e);
      match max_pes with
      | None -> ()
      | Some max_pes -> begin
        match Systolic.Partition.partition r d ~max_pes with
        | Error e -> or_die (Error e)
        | Ok p ->
          Printf.printf
            "\nLSGP partition onto %d PEs: blocks %s, slowdown %d, latency %d\n"
            p.Systolic.Partition.physical_count
            (String.concat "x"
               (List.map string_of_int (Array.to_list p.Systolic.Partition.block)))
            p.Systolic.Partition.slowdown p.Systolic.Partition.latency;
          match Systolic.Partition.check r d p with
          | Ok () -> print_endline "partition checked"
          | Error e -> Printf.printf "PARTITION CHECK FAILED: %s\n" e
      end
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"RECURRENCE" ~doc:"matmul:N, convolution:NxK, or fir:NxK.")
  in
  let pes_arg =
    Arg.(value & opt (some int) None
         & info [ "max-pes" ] ~docv:"P" ~doc:"Partition the array onto at most P processors (LSGP).")
  in
  Cmd.v
    (Cmd.info "systolic"
       ~doc:"Synthesize (and optionally partition) a systolic array for a recurrence")
    Term.(const run $ spec_arg $ pes_arg)

let topo_cmd =
  let run topo = print_string (Render.topology (target_topology topo)) in
  let arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"TOPO" ~doc:"Topology spec.") in
  Cmd.v (Cmd.info "topo" ~doc:"Describe a network topology") Term.(const run $ arg)

(* batch mapping service: one request per line in, one result line out *)
let serve_batch file sexp jobs =
  if jobs < 1 then die ~code:2 "--jobs must be at least 1";
  let format = if sexp then Service.Sexp else Service.Tsv in
  let ic =
    match file with
    | None | Some "-" -> stdin
    | Some f -> ( try open_in f with Sys_error m -> die ~code:2 m)
  in
  let code = Service.serve ~format ~jobs ic stdout in
  if ic != stdin then close_in ic;
  exit code

let sexp_arg =
  Arg.(value & flag
       & info [ "sexp" ]
           ~doc:"Emit one s-expression per request instead of the TSV line.")

let jobs_arg =
  Arg.(value
       & opt int (Prelude.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Serve the batch on $(docv) domains sharing compiled-program \
                 and topology caches (results still come out in request \
                 order, byte-identical to $(b,--jobs 1) for fixed seeds, \
                 wall-clock aside).  $(b,--jobs 1) streams request by \
                 request with no caches.  Defaults to the number of \
                 available cores.")

let serve_cmd =
  let run sexp jobs = serve_batch None sexp jobs in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Read mapping requests from stdin (PROGRAM TOPOLOGY [key=value \
             ...] per line) and answer each with one result line; exit 1 if \
             any request failed")
    Term.(const run $ sexp_arg $ jobs_arg)

let batch_cmd =
  let run file sexp jobs = serve_batch (Some file) sexp jobs in
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Request file, one request per line ($(b,-) for stdin).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run a file of mapping requests through the batch service \
             (identical to $(b,serve) reading the file)")
    Term.(const run $ file_arg $ sexp_arg $ jobs_arg)

(* the long-lived daemon and its line client *)
let listen_of ~socket ~port =
  match (socket, port) with
  | Some path, None -> Daemon.Unix_socket path
  | None, Some p -> Daemon.Tcp p
  | _ -> die ~code:2 "give exactly one of --socket PATH or --port N"

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on (or dial) a Unix-domain socket at $(docv).")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"N"
           ~doc:"Listen on (or dial) loopback TCP port $(docv).")

let daemon_cmd =
  let run socket port jobs queue_bound max_inflight fuel_cap deadline_cap
      timeout cache_bound sexp =
    if jobs < 1 then die ~code:2 "--jobs must be at least 1";
    if queue_bound < 0 then die ~code:2 "--queue-bound must be >= 0";
    if max_inflight < 1 then die ~code:2 "--max-inflight must be >= 1";
    if cache_bound < 0 then die ~code:2 "--cache-bound must be >= 0";
    let cfg =
      {
        (Daemon.default_config (listen_of ~socket ~port)) with
        Daemon.d_jobs = jobs;
        Daemon.d_queue_bound = queue_bound;
        Daemon.d_max_inflight = max_inflight;
        Daemon.d_fuel_cap = fuel_cap;
        Daemon.d_deadline_cap_ms = deadline_cap;
        Daemon.d_timeout_ms = timeout;
        Daemon.d_cache_bound = (if cache_bound = 0 then None else Some cache_bound);
        Daemon.d_format = (if sexp then Service.Sexp else Service.Tsv);
      }
    in
    match Daemon.run cfg with
    | code -> exit code
    | exception Unix.Unix_error (e, fn, arg) ->
      die (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))
  in
  let queue_bound_arg =
    Arg.(value & opt int 64
         & info [ "queue-bound" ] ~docv:"N"
             ~doc:"Admission queue bound: requests beyond $(docv) waiting \
                   for a worker are shed with a named $(b,overload:) error \
                   line.  $(b,0) sheds everything a worker cannot take \
                   immediately.")
  in
  let max_inflight_arg =
    Arg.(value & opt int 8
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:"Per-client cap on unanswered requests; excess requests \
                   are shed by name.")
  in
  let fuel_cap_arg =
    Arg.(value & opt (some int) None
         & info [ "fuel-cap" ] ~docv:"UNITS"
             ~doc:"Per-request fuel quota: requests without $(b,fuel=) are \
                   clamped to $(docv), explicit over-asks are rejected with \
                   a $(b,quota:) error line.")
  in
  let deadline_cap_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline-cap-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline quota, enforced like \
                   $(b,--fuel-cap).")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-request wall-clock timeout measured from admission: \
                   queueing time shrinks the mapper's deadline budget, and \
                   a request whose timeout lapsed while queued is answered \
                   $(b,timeout:) without running.")
  in
  let cache_bound_arg =
    Arg.(value & opt int 64
         & info [ "cache-bound" ] ~docv:"N"
             ~doc:"LRU bound on each shared artifact cache (compiled \
                   programs, topologies).  $(b,0) means unbounded.")
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:"Serve mapping requests forever on a Unix or TCP socket, with \
             bounded admission (load-shedding by name), per-request quotas \
             and timeouts, LRU-bounded caches, a live $(b,stats) verb, and \
             graceful drain on SIGTERM")
    Term.(const run $ socket_arg $ port_arg $ jobs_arg $ queue_bound_arg
          $ max_inflight_arg $ fuel_cap_arg $ deadline_cap_arg $ timeout_arg
          $ cache_bound_arg $ sexp_arg)

let client_cmd =
  let run socket port =
    let listen = listen_of ~socket ~port in
    let fd =
      match Daemon.connect listen with
      | fd -> fd
      | exception Unix.Unix_error (e, fn, arg) ->
        die (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))
    in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr (Unix.dup fd) in
    (* answers arrive in completion order while we are still typing:
       pump them on their own thread so neither side can stall *)
    let pump =
      Thread.create
        (fun () ->
          try
            while true do
              print_endline (input_line ic);
              flush stdout
            done
          with End_of_file | Sys_error _ -> ())
        ()
    in
    (try
       while true do
         let line = input_line stdin in
         output_string oc line;
         output_char oc '\n';
         flush oc
       done
     with End_of_file -> ());
    (* half-close tells the daemon we are done asking; it answers
       everything pending, then closes, which ends the pump *)
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    Thread.join pump;
    close_out_noerr oc;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    exit 0
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Forward request lines from stdin to a running $(b,daemon) and \
             print each answer line (requests also work interactively; try \
             $(b,stats) or $(b,ping))")
    Term.(const run $ socket_arg $ port_arg)

let workloads_cmd =
  let run () =
    Prelude.Tab.print
      ~header:[ "name"; "tasks"; "description" ]
      (List.map
         (fun spec ->
           let tg = Workloads.task_graph_exn spec in
           [ spec.Workloads.w_name; string_of_int tg.Taskgraph.n; spec.Workloads.description ])
         (Workloads.all ()));
    print_newline ();
    Printf.printf
      "synthetic instances: synth:FAMILY:N[:SEED] (any size), families:\n";
    List.iter (fun (name, doc) -> Printf.printf "  %-6s %s\n" name doc)
      Synth.families
  in
  Cmd.v (Cmd.info "workloads" ~doc:"List the built-in workload programs")
    Term.(const run $ const ())

(* the online cluster: lease regions to a stream of jobs, survive chaos *)
let cluster_cmd =
  let run topo trace chaos explain queue_bound max_retries defrag =
    let machine = target_topology topo in
    let events =
      if String.length trace >= 6 && String.sub trace 0 6 = "synth:" then begin
        let rest = String.sub trace 6 (String.length trace - 6) in
        match String.split_on_char ':' rest with
        | [ n ] | [ n; "" ] -> begin
          match int_of_string_opt n with
          | Some n when n > 0 -> Cluster.synth_trace ~events:n ~seed:1 machine
          | _ -> die ~code:2 (Printf.sprintf "bad synth trace %S" trace)
        end
        | [ n; seed ] -> begin
          match (int_of_string_opt n, int_of_string_opt seed) with
          | Some n, Some seed when n > 0 ->
            Cluster.synth_trace ~events:n ~seed machine
          | _ -> die ~code:2 (Printf.sprintf "bad synth trace %S" trace)
        end
        | _ -> die ~code:2 (Printf.sprintf "bad synth trace %S (want synth:EVENTS[:SEED])" trace)
      end
      else or_die (Cluster.load_trace trace)
    in
    let chaos = match chaos with None -> [] | Some s -> or_die (Cluster.parse_chaos s) in
    if queue_bound < 1 then die ~code:2 "--queue-bound must be >= 1";
    if max_retries < 0 then die ~code:2 "--max-retries must be >= 0";
    if defrag <= 0.0 || defrag > 1.0 then
      die ~code:2 "--defrag-threshold must be in (0, 1]";
    let config =
      {
        Cluster.default_config with
        Cluster.cf_queue_bound = queue_bound;
        Cluster.cf_max_retries = max_retries;
        Cluster.cf_defrag_threshold = defrag;
      }
    in
    let explain_hook = if explain then Some print_endline else None in
    let r = or_die (Cluster.run ~config ?explain:explain_hook ~chaos machine events) in
    let open Cluster in
    Printf.printf "events %d: admitted %d, completed %d, cancelled %d, refused %d, shed %d\n"
      r.rp_events r.rp_admitted r.rp_completed r.rp_cancelled
      (List.length r.rp_refused) (List.length r.rp_shed);
    Printf.printf
      "healing: repairs %d, remaps %d, evictions %d, repacks %d (declined %d), \
       migration %d\n"
      r.rp_repairs r.rp_remaps r.rp_evictions r.rp_repacks r.rp_repacks_declined
      r.rp_migration_total;
    Printf.printf "chaos: applied %d, refused %d\n" r.rp_chaos_applied r.rp_chaos_refused;
    (match List.rev r.rp_samples with
    | last :: _ ->
      Printf.printf "final: utilization %.2f, fragmentation %.2f, running %d, free %d\n"
        last.s_utilization last.s_fragmentation last.s_running last.s_free
    | [] -> ());
    if r.rp_running <> [] then
      Printf.printf "running: %s\n" (String.concat " " r.rp_running);
    List.iter (fun (name, why) -> Printf.printf "refused %s: %s\n" name why) r.rp_refused;
    List.iter (fun name -> Printf.printf "shed %s\n" name) r.rp_shed;
    if r.rp_refused <> [] || r.rp_shed <> [] then exit 1
  in
  let trace_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE"
             ~doc:"Trace file (arrive/depart/kill/revive lines) or \
                   $(b,synth:EVENTS[:SEED]) for a generated arrival stream.")
  in
  let chaos_arg =
    Arg.(value & opt (some string) None
         & info [ "chaos" ] ~docv:"SPEC"
             ~doc:"Chaos schedule $(b,AT:ACTION[;AT:ACTION...]); actions \
                   $(b,kill-procs=IDS), $(b,kill-links=IDS), \
                   $(b,revive-procs=IDS), $(b,revive-links=IDS).  $(b,AT) is \
                   the 0-based trace event index the action fires before.")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Stream every admission/healing/re-pack decision as it is made.")
  in
  let queue_bound_arg =
    Arg.(value & opt int Cluster.default_config.Cluster.cf_queue_bound
         & info [ "queue-bound" ] ~docv:"N"
             ~doc:"Pending arrivals held before shedding (default 16).")
  in
  let max_retries_arg =
    Arg.(value & opt int Cluster.default_config.Cluster.cf_max_retries
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"Placement retries per queued arrival (default 3).")
  in
  let defrag_arg =
    Arg.(value & opt float Cluster.default_config.Cluster.cf_defrag_threshold
         & info [ "defrag-threshold" ] ~docv:"F"
             ~doc:"Free-pool fragmentation above which a re-pack is priced \
                   (default 0.5).")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Run an online cluster lifecycle: lease processor regions to a \
             stream of arriving/departing jobs, inject chaos, heal by priced \
             repair-vs-remap, re-pack when fragmented; exit 1 if any job was \
             refused or shed")
    Term.(const run $ topo_arg $ trace_arg $ chaos_arg $ explain_arg
          $ queue_bound_arg $ max_retries_arg $ defrag_arg)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info = Cmd.info "oregami" ~version:Oregami.version ~doc:"OREGAMI mapping tools" in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            parse_cmd; dump_cmd; analyze_cmd; map_cmd; render_cmd; routes_cmd;
            simulate_cmd; aggregate_cmd; remap_cmd; repair_cmd; serve_cmd;
            batch_cmd; daemon_cmd; client_cmd; cluster_cmd; systolic_cmd;
            topo_cmd; workloads_cmd;
          ]))
