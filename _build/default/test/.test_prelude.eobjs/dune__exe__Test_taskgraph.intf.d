test/test_taskgraph.mli:
