test/test_graph.ml: Alcotest Array List Option Oregami_graph Oregami_prelude Oregami_topology QCheck QCheck_alcotest
