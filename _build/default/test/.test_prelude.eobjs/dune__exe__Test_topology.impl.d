test/test_topology.ml: Alcotest Array Hashtbl List Option Oregami_graph Oregami_topology
