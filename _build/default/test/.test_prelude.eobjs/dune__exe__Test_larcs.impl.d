test/test_larcs.ml: Alcotest Array List Option Oregami_graph Oregami_larcs Oregami_perm Oregami_taskgraph Printf QCheck QCheck_alcotest Result String
