test/test_matching.ml: Alcotest Array Hashtbl List Oregami_matching Oregami_prelude Printf QCheck QCheck_alcotest String
