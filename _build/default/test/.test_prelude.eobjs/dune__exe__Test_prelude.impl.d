test/test_prelude.ml: Alcotest Array Hashtbl List Option Oregami_prelude QCheck QCheck_alcotest String
