test/test_paper_threads.mli:
