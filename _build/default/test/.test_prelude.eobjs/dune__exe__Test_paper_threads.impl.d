test/test_paper_threads.ml: Alcotest Array Larcs List Oregami Printf Result String Systolic Workloads
