test/test_larcs.mli:
