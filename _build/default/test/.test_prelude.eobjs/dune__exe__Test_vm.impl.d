test/test_vm.ml: Alcotest Array Driver List Mapper Mapping Oregami Printf Result Routes Topology Vm Workloads
