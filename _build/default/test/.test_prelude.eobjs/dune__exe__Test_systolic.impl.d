test/test_systolic.ml: Alcotest Array List Oregami_prelude Oregami_systolic Printf QCheck QCheck_alcotest
