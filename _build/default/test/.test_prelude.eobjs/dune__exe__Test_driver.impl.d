test/test_driver.ml: Alcotest Array Driver List Mapper Mapping Metrics Netsim Oregami Prelude Printf Result Sched Taskgraph Topology Workloads
