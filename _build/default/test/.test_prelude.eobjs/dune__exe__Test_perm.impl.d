test/test_perm.ml: Alcotest Array List Option Oregami_graph Oregami_perm Oregami_prelude Oregami_topology Printf QCheck QCheck_alcotest
