test/test_taskgraph.ml: Alcotest List Oregami_graph Oregami_taskgraph
