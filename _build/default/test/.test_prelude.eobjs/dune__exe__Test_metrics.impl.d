test/test_metrics.ml: Alcotest Array Filename List Oregami Oregami_graph Oregami_mapper Oregami_metrics Oregami_taskgraph Oregami_topology Oregami_workloads String Sys
