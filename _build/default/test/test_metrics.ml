(* Tests for METRICS: load/link/overall metrics, the completion-time
   model, the network simulator, rendering, and the edit loop. *)

module Ugraph = Oregami_graph.Ugraph
module Digraph = Oregami_graph.Digraph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Mapping = Oregami_mapper.Mapping
module Route = Oregami_mapper.Route
module Metrics = Oregami_metrics.Metrics
module Netsim = Oregami_metrics.Netsim
module Render = Oregami_metrics.Render
module Edit = Oregami_metrics.Edit
module Workloads = Oregami_workloads.Workloads
module Driver = Oregami.Driver

(* a tiny, fully hand-checkable scenario: 4 tasks in a line of 2 procs *)
let tiny_mapping () =
  let comm = Digraph.create 4 in
  Digraph.add_edge ~w:3 comm 0 2;
  (* 0 and 1 on proc 0; 2 and 3 on proc 1 *)
  Digraph.add_edge ~w:1 comm 1 3;
  let tg =
    Taskgraph.make_exn ~name:"tiny" ~n:4
      ~comm_phases:[ ("send", comm) ]
      ~exec_phases:[ ("work", [| 2; 4; 6; 8 |]) ]
      ~expr:(Phase_expr.Seq (Phase_expr.Comm "send", Phase_expr.Exec "work"))
      ()
  in
  let topo = Topology.make (Topology.Line 2) in
  let cluster_of = [| 0; 0; 1; 1 |] in
  let proc_of_cluster = [| 0; 1 |] in
  let proc_of_task = [| 0; 0; 1; 1 |] in
  let routings, _ = Route.mm_route tg topo ~proc_of_task in
  { Mapping.tg; topo; cluster_of; proc_of_cluster; routings; strategy = "hand" }

let test_load_metrics () =
  let m = tiny_mapping () in
  let l = Metrics.load_metrics m in
  Alcotest.(check (list int)) "tasks per proc" [ 2; 2 ] (Array.to_list l.Metrics.tasks_per_proc);
  Alcotest.(check (list int)) "exec per proc" [ 6; 14 ] (Array.to_list l.Metrics.exec_per_proc)

let test_link_metrics () =
  let m = tiny_mapping () in
  let lr = Metrics.link_metrics m in
  (* line(2) has one link; both messages cross it: volume 3 + 1 *)
  Alcotest.(check (list int)) "volume" [ 4 ] (Array.to_list lr.Metrics.volume_per_link);
  Alcotest.(check (list int)) "messages" [ 2 ] (Array.to_list lr.Metrics.messages_per_link);
  match lr.Metrics.per_phase_contention with
  | [ ("send", c) ] -> Alcotest.(check (list int)) "contention" [ 2 ] (Array.to_list c)
  | _ -> Alcotest.fail "unexpected phase contention shape"

let test_completion_time_model () =
  let m = tiny_mapping () in
  (* comm slot: busiest link volume 4 / bandwidth 1 + 1 hop * latency 1
     = 5; exec slot: max(2+4, 6+8) = 14; total 19 *)
  Alcotest.(check int) "default model" 19 (Metrics.completion_time m);
  let fast = { Metrics.bandwidth = 4; latency = 0 } in
  Alcotest.(check int) "fast links" 15 (Metrics.completion_time ~model:fast m)

let test_summary_fields () =
  let m = tiny_mapping () in
  let s = Metrics.summary m in
  Alcotest.(check int) "ipc" 4 s.Metrics.total_ipc;
  Alcotest.(check int) "dilation max" 1 s.Metrics.dilation_max;
  Alcotest.(check int) "contention" 2 s.Metrics.max_link_contention;
  Alcotest.(check int) "clusters" 2 s.Metrics.clusters;
  Alcotest.(check bool) "imbalance > 1" true (s.Metrics.load_imbalance > 1.0)

(* ------------------------------------------------------------------ *)

let test_netsim_single_message () =
  let m = tiny_mapping () in
  (* two messages share the single channel: 3+1 then 1+1 -> finish 6;
     exec 14; makespan 20 *)
  let r = Netsim.run m in
  Alcotest.(check int) "comm time" 6 r.Netsim.comm_time;
  Alcotest.(check int) "exec time" 14 r.Netsim.exec_time;
  Alcotest.(check int) "makespan" 20 r.Netsim.makespan;
  Alcotest.(check int) "two slots" 2 (List.length r.Netsim.slot_times)

let test_netsim_contention_serializes () =
  (* two messages over the same link take twice as long as one *)
  let topo = Topology.make (Topology.Line 2) in
  let route = { Routes.nodes = [ 0; 1 ]; links = [ 0 ] } in
  let p = Netsim.default_params in
  let one, _ = Netsim.simulate_released p topo [ (route, 5, 0) ] in
  let two, _ = Netsim.simulate_released p topo [ (route, 5, 0); (route, 5, 0) ] in
  Alcotest.(check int) "one message" 6 one;
  Alcotest.(check int) "two serialize" 12 two

let test_netsim_full_duplex () =
  let topo = Topology.make (Topology.Line 2) in
  let fwd = { Routes.nodes = [ 0; 1 ]; links = [ 0 ] } in
  let bwd = { Routes.nodes = [ 1; 0 ]; links = [ 0 ] } in
  let t, _ = Netsim.simulate_released Netsim.default_params topo [ (fwd, 5, 0); (bwd, 5, 0) ] in
  Alcotest.(check int) "opposite directions in parallel" 6 t

let test_netsim_multi_hop () =
  let topo = Topology.make (Topology.Line 3) in
  let route = { Routes.nodes = [ 0; 1; 2 ]; links = [ 0; 1 ] } in
  let t, _ = Netsim.simulate_released Netsim.default_params topo [ (route, 3, 0) ] in
  (* 2 hops x (3 + 1) *)
  Alcotest.(check int) "store and forward" 8 t

let test_netsim_release_staggering () =
  let topo = Topology.make (Topology.Line 2) in
  let route = { Routes.nodes = [ 0; 1 ]; links = [ 0 ] } in
  let t, _ =
    Netsim.simulate_released Netsim.default_params topo [ (route, 5, 10); (route, 5, 0) ]
  in
  (* early one finishes at 6; late released at 10, finishes 16 *)
  Alcotest.(check int) "release times honoured" 16 t

let test_netsim_tracks_better_mapping () =
  (* the simulator must rank a dilation-1 mapping ahead of a scattered
     one on the same workload *)
  let tg = Workloads.task_graph_exn (Workloads.jacobi ~n:4 ~iters:2) in
  let topo = Topology.make (Topology.Mesh (4, 4)) in
  let mk name proc_of_task =
    let routings, _ = Route.mm_route tg topo ~proc_of_task in
    {
      Mapping.tg;
      topo;
      cluster_of = Array.init 16 (fun t -> t);
      proc_of_cluster = proc_of_task;
      routings;
      strategy = name;
    }
  in
  let identity = mk "identity" (Array.init 16 (fun t -> t)) in
  (* multiply by 7 mod 16: a permutation that scatters grid neighbours
     (transpose/reversal would be a mesh automorphism and change
     nothing) *)
  let scrambled = mk "scattered" (Array.init 16 (fun t -> t * 7 mod 16)) in
  let a = (Netsim.run identity).Netsim.makespan in
  let b = (Netsim.run scrambled).Netsim.makespan in
  Alcotest.(check bool) "identity tiling is faster" true (a < b)

(* ------------------------------------------------------------------ *)

let test_wormhole_single () =
  let topo = Topology.make (Topology.Line 3) in
  let route = { Routes.nodes = [ 0; 1; 2 ]; links = [ 0; 1 ] } in
  let t, _ = Netsim.simulate_released Netsim.wormhole_params topo [ (route, 6, 0) ] in
  (* path setup 2 hops x latency 1 + volume 6 (no per-hop copy) *)
  Alcotest.(check int) "cut-through" 8 t;
  let saf, _ = Netsim.simulate_released Netsim.default_params topo [ (route, 6, 0) ] in
  Alcotest.(check int) "store-and-forward pays per hop" 14 saf

let test_wormhole_contention () =
  let topo = Topology.make (Topology.Line 2) in
  let route = { Routes.nodes = [ 0; 1 ]; links = [ 0 ] } in
  let two, _ =
    Netsim.simulate_released Netsim.wormhole_params topo [ (route, 5, 0); (route, 5, 0) ]
  in
  Alcotest.(check int) "shared path serializes" 12 two;
  (* disjoint paths run in parallel *)
  let topo = Topology.make (Topology.Line 3) in
  let r1 = { Routes.nodes = [ 0; 1 ]; links = [ 0 ] } in
  let r2 = { Routes.nodes = [ 2; 1 ]; links = [ 1 ] } in
  let par, _ =
    Netsim.simulate_released Netsim.wormhole_params topo [ (r1, 5, 0); (r2, 5, 0) ]
  in
  Alcotest.(check int) "disjoint in parallel" 6 par

let test_wormhole_blocks_whole_path () =
  (* a long message holds both links; a second message wanting the far
     link must wait for the whole transfer *)
  let topo = Topology.make (Topology.Line 3) in
  let long = { Routes.nodes = [ 0; 1; 2 ]; links = [ 0; 1 ] } in
  let short = { Routes.nodes = [ 1; 2 ]; links = [ 1 ] } in
  let t, _ =
    Netsim.simulate_released Netsim.wormhole_params topo [ (long, 10, 0); (short, 1, 0) ]
  in
  (* long: 2 + 10 = 12; short waits: 12 + (1 + 1) = 14 *)
  Alcotest.(check int) "path blocking" 14 t

let count_tag svg tag =
  let n = String.length svg and t = String.length tag in
  let rec go i acc =
    if i + t > n then acc
    else if String.sub svg i t = tag then go (i + t) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_svg_topology () =
  let topo = Topology.make (Topology.Hypercube 3) in
  let svg = Oregami_metrics.Svg.topology topo in
  Alcotest.(check bool) "starts with <svg" true (String.sub svg 0 4 = "<svg");
  Alcotest.(check int) "one circle per processor" 8 (count_tag svg "<circle");
  Alcotest.(check int) "one line per link" 12 (count_tag svg "<line");
  Alcotest.(check bool) "closed" true (count_tag svg "</svg>" = 1)

let test_svg_mapping () =
  let m = tiny_mapping () in
  let svg = Oregami_metrics.Svg.mapping m in
  Alcotest.(check int) "processors drawn" 2 (count_tag svg "<circle");
  (* 1 link + 1 legend entry *)
  Alcotest.(check int) "links and legend" 2 (count_tag svg "<line");
  Alcotest.(check bool) "phase named in legend" true (count_tag svg ">send<" = 1);
  (* save and re-read *)
  let path = Filename.temp_file "oregami" ".svg" in
  Oregami_metrics.Svg.save path svg;
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "roundtrips" (String.length svg) (String.length s)

let test_timeline () =
  let m = tiny_mapping () in
  let t = Render.timeline m "send" in
  Alcotest.(check bool) "has channel row" true (String.length t > 20);
  (* two messages over one channel: the 0->1 channel is busy end to end *)
  let spans = Netsim.spans m "send" in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let total =
    List.fold_left (fun acc s -> acc + (s.Netsim.sp_finish - s.Netsim.sp_start)) 0 spans
  in
  (* (3+1) + (1+1) *)
  Alcotest.(check int) "busy time" 6 total;
  List.iter
    (fun s -> Alcotest.(check string) "channel name" "0->1" (Netsim.channel_name m.Mapping.topo s.Netsim.sp_channel))
    spans;
  Alcotest.(check bool) "quiet phase handled" true
    (String.length (Render.timeline m "nope") > 0)

let test_render_outputs () =
  let m = tiny_mapping () in
  let r = Render.mapping m in
  Alcotest.(check bool) "mapping mentions strategy" true (String.length r > 10);
  let ll = Render.link_loads m in
  Alcotest.(check bool) "loads render" true (String.length ll > 10);
  let pe = Render.phase_edges m "send" in
  Alcotest.(check bool) "phase render" true (String.length pe > 10);
  Alcotest.(check bool) "missing phase handled" true
    (String.length (Render.phase_edges m "nope") > 0);
  let topo_r = Render.topology (Topology.make (Topology.Mesh (2, 3))) in
  Alcotest.(check bool) "grid drawn" true (String.length topo_r > 10);
  let tg_r = Render.task_graph m.Mapping.tg in
  Alcotest.(check bool) "task graph" true (String.length tg_r > 10)

(* ------------------------------------------------------------------ *)

let test_edit_move_task () =
  let m = tiny_mapping () in
  match Edit.move_task m ~task:1 ~proc:1 with
  | Error e -> Alcotest.failf "move: %s" e
  | Ok m2 ->
    Alcotest.(check int) "task now on proc 1" 1 (Mapping.proc_of_task m2 1);
    (match Mapping.validate m2 with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid after move: %s" e);
    Alcotest.(check bool) "strategy tagged" true
      (m2.Mapping.strategy = "hand+edit");
    (* moving back restores the shape *)
    (match Edit.move_task m2 ~task:1 ~proc:0 with
    | Error e -> Alcotest.failf "move back: %s" e
    | Ok m3 -> Alcotest.(check int) "restored" 0 (Mapping.proc_of_task m3 1));
    (* no-op move returns the same mapping *)
    match Edit.move_task m ~task:0 ~proc:0 with
    | Ok same -> Alcotest.(check bool) "noop" true (same == m)
    | Error e -> Alcotest.failf "noop move: %s" e

let test_edit_move_errors () =
  let m = tiny_mapping () in
  (match Edit.move_task m ~task:99 ~proc:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad task accepted");
  match Edit.move_task m ~task:0 ~proc:9 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad proc accepted"

let test_edit_swap () =
  let m = tiny_mapping () in
  match Edit.swap_processors m 0 1 with
  | Error e -> Alcotest.failf "swap: %s" e
  | Ok m2 ->
    Alcotest.(check int) "task 0 moved" 1 (Mapping.proc_of_task m2 0);
    Alcotest.(check int) "task 2 moved" 0 (Mapping.proc_of_task m2 2)

let test_edit_reroute () =
  (* a 2x2 mesh with a detour *)
  let comm = Digraph.create 2 in
  Digraph.add_edge ~w:1 comm 0 1;
  let tg =
    Taskgraph.make_exn ~name:"two" ~n:2 ~comm_phases:[ ("go", comm) ] ~exec_phases:[]
      ~expr:(Phase_expr.Comm "go") ()
  in
  let topo = Topology.make (Topology.Mesh (2, 2)) in
  let proc_of_task = [| 0; 1 |] in
  let routings, _ = Route.mm_route tg topo ~proc_of_task in
  let m =
    {
      Mapping.tg;
      topo;
      cluster_of = [| 0; 1 |];
      proc_of_cluster = [| 0; 1 |];
      routings;
      strategy = "hand";
    }
  in
  (* direct route is 0-1; detour over 0-2-3-1 *)
  (match Edit.reroute_edge m ~phase:"go" ~src:0 ~dst:1 ~path:[ 0; 2; 3; 1 ] with
  | Error e -> Alcotest.failf "reroute: %s" e
  | Ok m2 ->
    let mx, avg, _ = Mapping.dilation_stats m2 in
    Alcotest.(check int) "dilation 3" 3 mx;
    Alcotest.(check bool) "avg" true (avg = 3.0));
  (* invalid paths rejected *)
  (match Edit.reroute_edge m ~phase:"go" ~src:0 ~dst:1 ~path:[ 0; 3; 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-adjacent path accepted");
  (match Edit.reroute_edge m ~phase:"go" ~src:0 ~dst:1 ~path:[ 2; 3; 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong start accepted");
  match Edit.reroute_edge m ~phase:"go" ~src:1 ~dst:0 ~path:[ 1; 0 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing edge accepted"

let test_edit_improves_bad_mapping () =
  (* the METRICS workflow: spot a hot processor, move a task away, and
     the modelled completion time drops *)
  let tg = Workloads.task_graph_exn (Workloads.voting ~k:2) in
  let topo = Topology.make (Topology.Hypercube 2) in
  (* bad start: everything on processor 0's corner pair *)
  let proc_of_task = [| 0; 0; 1; 1 |] in
  let routings, _ = Route.mm_route tg topo ~proc_of_task in
  let m =
    {
      Mapping.tg;
      topo;
      cluster_of = [| 0; 0; 1; 1 |];
      proc_of_cluster = [| 0; 1 |];
      routings;
      strategy = "bad";
    }
  in
  let before = Metrics.completion_time m in
  match Edit.move_task m ~task:1 ~proc:2 with
  | Error e -> Alcotest.failf "move: %s" e
  | Ok m2 ->
    let after = Metrics.completion_time m2 in
    Alcotest.(check bool) "exec load spread helps" true (after <= before)

let () =
  Alcotest.run "metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "load" `Quick test_load_metrics;
          Alcotest.test_case "links" `Quick test_link_metrics;
          Alcotest.test_case "completion model" `Quick test_completion_time_model;
          Alcotest.test_case "summary" `Quick test_summary_fields;
        ] );
      ( "netsim",
        [
          Alcotest.test_case "hand-checked run" `Quick test_netsim_single_message;
          Alcotest.test_case "contention serializes" `Quick test_netsim_contention_serializes;
          Alcotest.test_case "full duplex" `Quick test_netsim_full_duplex;
          Alcotest.test_case "store and forward hops" `Quick test_netsim_multi_hop;
          Alcotest.test_case "release staggering" `Quick test_netsim_release_staggering;
          Alcotest.test_case "ranks mappings correctly" `Quick test_netsim_tracks_better_mapping;
          Alcotest.test_case "wormhole single message" `Quick test_wormhole_single;
          Alcotest.test_case "wormhole contention" `Quick test_wormhole_contention;
          Alcotest.test_case "wormhole path blocking" `Quick test_wormhole_blocks_whole_path;
        ] );
      ( "render",
        [
          Alcotest.test_case "all renderers" `Quick test_render_outputs;
          Alcotest.test_case "svg topology" `Quick test_svg_topology;
          Alcotest.test_case "svg mapping" `Quick test_svg_mapping;
          Alcotest.test_case "timeline" `Quick test_timeline;
        ] );
      ( "edit",
        [
          Alcotest.test_case "move task" `Quick test_edit_move_task;
          Alcotest.test_case "move errors" `Quick test_edit_move_errors;
          Alcotest.test_case "swap processors" `Quick test_edit_swap;
          Alcotest.test_case "reroute edge" `Quick test_edit_reroute;
          Alcotest.test_case "edit improves a bad mapping" `Quick
            test_edit_improves_bad_mapping;
        ] );
    ]
