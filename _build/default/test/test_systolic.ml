(* Tests for the systolic synthesis library (paper §4.2.1). *)

module Linalg = Oregami_systolic.Linalg
module Recurrence = Oregami_systolic.Recurrence
module Synthesis = Oregami_systolic.Synthesis
module Rng = Oregami_prelude.Rng

let test_linalg_dot_matvec () =
  Alcotest.(check int) "dot" 32 (Linalg.dot [| 1; 2; 3 |] [| 4; 5; 6 |]);
  Alcotest.(check (list int)) "matvec" [ 5; 11 ]
    (Array.to_list (Linalg.mat_vec [| [| 1; 0 |]; [| 1; 2 |] |] [| 5; 3 |]));
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Linalg.dot: dimension mismatch")
    (fun () -> ignore (Linalg.dot [| 1 |] [| 1; 2 |]))

let test_linalg_gcd_primitive () =
  Alcotest.(check int) "gcd" 6 (Linalg.gcd 18 (-24));
  Alcotest.(check int) "gcd zero" 5 (Linalg.gcd 0 5);
  Alcotest.(check (list int)) "primitive" [ 2; -3 ] (Array.to_list (Linalg.primitive [| 4; -6 |]));
  Alcotest.(check (list int)) "zero stays" [ 0; 0 ] (Array.to_list (Linalg.primitive [| 0; 0 |]))

let test_linalg_orthogonal () =
  let check u =
    let basis = Linalg.orthogonal_basis u in
    Alcotest.(check int) "basis size" (Array.length u - 1) (Array.length basis);
    Array.iter
      (fun b ->
        Alcotest.(check int) "orthogonal" 0 (Linalg.dot u b);
        Alcotest.(check bool) "non-zero" true (Array.exists (( <> ) 0) b))
      basis
  in
  check [| 1; 0 |];
  check [| 2; 3 |];
  check [| 1; 1; 1 |];
  check [| 0; 0; 1 |];
  check [| 1; -2; 3 |]

let test_linalg_enum () =
  Alcotest.(check int) "2d bound 1" 8 (List.length (Linalg.enum_vectors ~dims:2 ~bound:1));
  Alcotest.(check int) "3d bound 1" 26 (List.length (Linalg.enum_vectors ~dims:3 ~bound:1))

(* ------------------------------------------------------------------ *)

let test_recurrence_points () =
  let d = { Recurrence.lower = [| 0; 0 |]; upper = [| 2; 1 |]; halfspaces = [] } in
  Alcotest.(check int) "box points" 6 (Recurrence.point_count d);
  let tri =
    { Recurrence.lower = [| 0; 0 |]; upper = [| 2; 2 |]; halfspaces = [ ([| 1; 1 |], 2) ] }
  in
  (* i + j <= 2 over 3x3: 6 points *)
  Alcotest.(check int) "triangle" 6 (Recurrence.point_count tri);
  Alcotest.(check bool) "mem" true (Recurrence.mem tri [| 1; 1 |]);
  Alcotest.(check bool) "not mem" false (Recurrence.mem tri [| 2; 2 |])

let test_recurrence_validate () =
  let r = Recurrence.matmul 3 in
  Alcotest.(check bool) "matmul valid" true (Recurrence.validate r = Ok ());
  let bad = { r with Recurrence.deps = [ { Recurrence.dep_name = "z"; vector = [| 0; 0; 0 |] } ] } in
  match Recurrence.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero dependence accepted"

(* ------------------------------------------------------------------ *)

let test_matmul_classic () =
  List.iter
    (fun n ->
      let r = Recurrence.matmul n in
      match Synthesis.synthesize r with
      | Error e -> Alcotest.failf "matmul %d: %s" n e
      | Ok d ->
        Alcotest.(check (list int)) "lambda = (1,1,1)" [ 1; 1; 1 ]
          (Array.to_list d.Synthesis.schedule);
        Alcotest.(check int) "latency 3n-2" ((3 * n) - 2) d.Synthesis.latency;
        Alcotest.(check int) "n^2 processors" (n * n) d.Synthesis.pe_count;
        Alcotest.(check bool) "nearest neighbour" true d.Synthesis.nearest_neighbour;
        Alcotest.(check bool) "verified" true (Synthesis.verify r d = Ok ()))
    [ 2; 3; 4; 5 ]

let test_convolution_classic () =
  let r = Recurrence.convolution 10 4 in
  match Synthesis.synthesize r with
  | Error e -> Alcotest.failf "convolution: %s" e
  | Ok d ->
    Alcotest.(check int) "k processors" 4 d.Synthesis.pe_count;
    Alcotest.(check bool) "nearest neighbour" true d.Synthesis.nearest_neighbour;
    Alcotest.(check bool) "verified" true (Synthesis.verify r d = Ok ())

let test_schedules_causal () =
  let r = Recurrence.matmul 3 in
  let all = Synthesis.schedules r in
  Alcotest.(check bool) "found schedules" true (List.length all > 0);
  List.iter
    (fun lambda ->
      List.iter
        (fun dep ->
          Alcotest.(check bool) "causal" true (Linalg.dot lambda dep.Recurrence.vector >= 1))
        r.Recurrence.deps)
    all;
  (* first schedule has minimal makespan *)
  match all with
  | first :: _ ->
    Alcotest.(check (list int)) "minimal is (1,1,1)" [ 1; 1; 1 ] (Array.to_list first)
  | [] -> Alcotest.fail "no schedules"

let test_verify_rejects_bad_designs () =
  let r = Recurrence.matmul 3 in
  match Synthesis.synthesize r with
  | Error e -> Alcotest.failf "synth: %s" e
  | Ok d ->
    (* projection parallel to a processor axis (allocation rows
       dependent): two points collide in space-time *)
    let broken = { d with Synthesis.allocation = [| [| 0; 0; 0 |]; [| 0; 0; 0 |] |] } in
    (match Synthesis.verify r broken with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "degenerate allocation accepted");
    (* acausal schedule *)
    let acausal = { d with Synthesis.schedule = [| 1; 1; -1 |] } in
    match Synthesis.verify r acausal with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "acausal schedule accepted"

let test_no_schedule_case () =
  (* antagonistic dependences d and -d admit no causal schedule *)
  let r =
    {
      Recurrence.name = "impossible";
      domain = { Recurrence.lower = [| 0; 0 |]; upper = [| 3; 3 |]; halfspaces = [] };
      deps =
        [
          { Recurrence.dep_name = "f"; vector = [| 1; 0 |] };
          { Recurrence.dep_name = "g"; vector = [| -1; 0 |] };
        ];
    }
  in
  match Synthesis.synthesize r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "impossible system scheduled"

let qcheck_random_uniform_systems =
  QCheck.Test.make ~name:"synthesized designs always verify" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let dims = 2 + Rng.int rng 2 in
      let size = 2 + Rng.int rng 3 in
      let deps =
        List.init
          (1 + Rng.int rng 3)
          (fun i ->
            (* strictly positive first component keeps systems schedulable *)
            let v = Array.init dims (fun j -> if j = 0 then 1 + Rng.int rng 2 else Rng.int rng 3 - 1) in
            { Recurrence.dep_name = Printf.sprintf "d%d" i; vector = v })
      in
      let r =
        {
          Recurrence.name = "random";
          domain =
            {
              Recurrence.lower = Array.make dims 0;
              upper = Array.make dims (size - 1);
              halfspaces = [];
            };
          deps;
        }
      in
      match Synthesis.synthesize ~bound:2 r with
      | Error _ -> true (* may be unschedulable within bound; fine *)
      | Ok d -> Synthesis.verify r d = Ok ())

let () =
  Alcotest.run "systolic"
    [
      ( "linalg",
        [
          Alcotest.test_case "dot / matvec" `Quick test_linalg_dot_matvec;
          Alcotest.test_case "gcd / primitive" `Quick test_linalg_gcd_primitive;
          Alcotest.test_case "orthogonal bases" `Quick test_linalg_orthogonal;
          Alcotest.test_case "vector enumeration" `Quick test_linalg_enum;
        ] );
      ( "recurrence",
        [
          Alcotest.test_case "polytope points" `Quick test_recurrence_points;
          Alcotest.test_case "validation" `Quick test_recurrence_validate;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "matmul classic result" `Quick test_matmul_classic;
          Alcotest.test_case "convolution classic result" `Quick test_convolution_classic;
          Alcotest.test_case "schedules causal and sorted" `Quick test_schedules_causal;
          Alcotest.test_case "verify rejects bad designs" `Quick test_verify_rejects_bad_designs;
          Alcotest.test_case "unschedulable detected" `Quick test_no_schedule_case;
          QCheck_alcotest.to_alcotest qcheck_random_uniform_systems;
        ] );
    ]
