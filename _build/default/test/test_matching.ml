(* Tests for the matching substrate: blossom maximum-weight matching
   against a brute-force oracle, Hopcroft-Karp, greedy maximal
   matching, and Dinic max-flow. *)

module Blossom = Oregami_matching.Blossom
module Bipartite = Oregami_matching.Bipartite
module Maxflow = Oregami_matching.Maxflow
module Brute = Oregami_matching.Brute
module Rng = Oregami_prelude.Rng

let check_valid_matching n edges mate =
  Alcotest.(check int) "mate length" n (Array.length mate);
  Array.iteri
    (fun v m ->
      if m <> -1 then begin
        Alcotest.(check bool) "symmetric" true (mate.(m) = v);
        let is_edge = List.exists (fun (a, b, _) -> (a = v && b = m) || (a = m && b = v)) edges in
        Alcotest.(check bool) "matched pair is an edge" true is_edge
      end)
    mate

let random_graph rng n max_edges max_w =
  let edges = ref [] in
  let seen = Hashtbl.create 16 in
  let count = Rng.int rng (max_edges + 1) in
  for _ = 1 to count do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Hashtbl.mem seen (min u v, max u v)) then begin
      Hashtbl.add seen (min u v, max u v) ();
      edges := (u, v, 1 + Rng.int rng max_w) :: !edges
    end
  done;
  !edges

let test_blossom_simple () =
  (* single edge *)
  let mate = Blossom.max_weight_matching ~n:2 [ (0, 1, 5) ] in
  Alcotest.(check int) "pair" 1 mate.(0);
  (* triangle: only one edge can be matched; pick the heaviest *)
  let edges = [ (0, 1, 3); (1, 2, 5); (0, 2, 4) ] in
  let mate = Blossom.max_weight_matching ~n:3 edges in
  Alcotest.(check int) "triangle weight" 5 (Blossom.matching_weight edges mate)

let test_blossom_path () =
  (* path a-b-c-d with weights 10, 11, 10: optimal is the two outer edges *)
  let edges = [ (0, 1, 10); (1, 2, 11); (2, 3, 10) ] in
  let mate = Blossom.max_weight_matching ~n:4 edges in
  Alcotest.(check int) "path weight" 20 (Blossom.matching_weight edges mate)

let test_blossom_needs_blossom () =
  (* 5-cycle with a pendant: forces blossom formation *)
  let edges = [ (0, 1, 8); (1, 2, 9); (2, 3, 10); (3, 4, 7); (4, 0, 8); (2, 5, 2) ] in
  let mate = Blossom.max_weight_matching ~n:6 edges in
  let w = Blossom.matching_weight edges mate in
  Alcotest.(check int) "blossom weight" (Brute.max_weight_matching ~n:6 edges) w

let test_blossom_vs_brute () =
  let rng = Rng.create 42 in
  for trial = 0 to 199 do
    let n = 3 + Rng.int rng 6 in
    let edges = random_graph rng n 14 20 in
    let mate = Blossom.max_weight_matching ~n edges in
    check_valid_matching n edges mate;
    let got = Blossom.matching_weight edges mate in
    let want = Brute.max_weight_matching ~n edges in
    if got <> want then
      Alcotest.failf "trial %d: blossom %d <> brute %d (n=%d, edges=%s)" trial got want n
        (String.concat ";"
           (List.map (fun (a, b, w) -> Printf.sprintf "(%d,%d,%d)" a b w) edges))
  done

let test_blossom_max_cardinality () =
  let rng = Rng.create 7 in
  for _ = 0 to 99 do
    let n = 3 + Rng.int rng 6 in
    let edges = random_graph rng n 12 5 in
    let mate = Blossom.max_weight_matching ~max_cardinality:true ~n edges in
    check_valid_matching n edges mate;
    let size = List.length (Blossom.matched_pairs mate) in
    let want = Brute.max_cardinality_matching ~n (List.map (fun (a, b, _) -> (a, b)) edges) in
    Alcotest.(check int) "max cardinality" want size
  done

let test_hopcroft_karp () =
  (* complete bipartite K_{3,3} *)
  let edges = List.concat_map (fun x -> List.map (fun y -> (x, y)) [ 0; 1; 2 ]) [ 0; 1; 2 ] in
  let m = Bipartite.hopcroft_karp ~nx:3 ~ny:3 edges in
  Alcotest.(check int) "perfect matching size" 3 m.Bipartite.size;
  Alcotest.(check bool) "valid" true (Bipartite.is_matching ~nx:3 ~ny:3 edges m)

let test_hopcroft_karp_vs_brute () =
  let rng = Rng.create 11 in
  for _ = 0 to 99 do
    let nx = 1 + Rng.int rng 5 and ny = 1 + Rng.int rng 5 in
    let edges = ref [] in
    for x = 0 to nx - 1 do
      for y = 0 to ny - 1 do
        if Rng.int rng 3 = 0 then edges := (x, y) :: !edges
      done
    done;
    let m = Bipartite.hopcroft_karp ~nx ~ny !edges in
    Alcotest.(check bool) "valid" true (Bipartite.is_matching ~nx ~ny !edges m);
    (* oracle via brute matching on the disjoint union *)
    let gen_edges = List.map (fun (x, y) -> (x, nx + y)) !edges in
    let want = Brute.max_cardinality_matching ~n:(nx + ny) gen_edges in
    Alcotest.(check int) "maximum size" want m.Bipartite.size
  done

let test_greedy_maximal () =
  let rng = Rng.create 13 in
  for _ = 0 to 99 do
    let nx = 1 + Rng.int rng 6 and ny = 1 + Rng.int rng 6 in
    let edges = ref [] in
    for x = 0 to nx - 1 do
      for y = 0 to ny - 1 do
        if Rng.int rng 3 = 0 then edges := (x, y) :: !edges
      done
    done;
    let m = Bipartite.greedy_maximal ~nx ~ny !edges in
    Alcotest.(check bool) "maximal" true (Bipartite.is_maximal ~nx ~ny !edges m);
    (* a maximal matching is at least half a maximum one *)
    let mm = Bipartite.hopcroft_karp ~nx ~ny !edges in
    Alcotest.(check bool) "half of maximum" true (2 * m.Bipartite.size >= mm.Bipartite.size)
  done

let test_maxflow_simple () =
  (* classic 4-node diamond: source 0, sink 3 *)
  let t = Maxflow.create 4 in
  Maxflow.add_edge t 0 1 ~cap:3;
  Maxflow.add_edge t 0 2 ~cap:2;
  Maxflow.add_edge t 1 2 ~cap:1;
  Maxflow.add_edge t 1 3 ~cap:2;
  Maxflow.add_edge t 2 3 ~cap:3;
  Alcotest.(check int) "flow" 5 (Maxflow.max_flow t ~src:0 ~dst:3)

let test_maxflow_cut () =
  let t = Maxflow.create 4 in
  Maxflow.add_edge t 0 1 ~cap:10;
  Maxflow.add_edge t 1 2 ~cap:1;
  Maxflow.add_edge t 2 3 ~cap:10;
  let f = Maxflow.max_flow t ~src:0 ~dst:3 in
  Alcotest.(check int) "bottleneck" 1 f;
  let side = Maxflow.min_cut_side t ~src:0 in
  Alcotest.(check (list int)) "cut side" [ 1; 1; 0; 0 ] (Array.to_list side)

let test_maxflow_bipartite_equiv () =
  (* max-flow on a unit network equals maximum bipartite matching *)
  let rng = Rng.create 17 in
  for _ = 0 to 49 do
    let nx = 1 + Rng.int rng 5 and ny = 1 + Rng.int rng 5 in
    let edges = ref [] in
    for x = 0 to nx - 1 do
      for y = 0 to ny - 1 do
        if Rng.int rng 3 = 0 then edges := (x, y) :: !edges
      done
    done;
    let src = nx + ny and dst = nx + ny + 1 in
    let t = Maxflow.create (nx + ny + 2) in
    for x = 0 to nx - 1 do
      Maxflow.add_edge t src x ~cap:1
    done;
    for y = 0 to ny - 1 do
      Maxflow.add_edge t (nx + y) dst ~cap:1
    done;
    List.iter (fun (x, y) -> Maxflow.add_edge t x (nx + y) ~cap:1) !edges;
    let flow = Maxflow.max_flow t ~src ~dst in
    let m = Bipartite.hopcroft_karp ~nx ~ny !edges in
    Alcotest.(check int) "flow = matching" m.Bipartite.size flow
  done

let qcheck_blossom =
  QCheck.Test.make ~name:"blossom matches brute on random graphs" ~count:150
    QCheck.(
      pair (int_range 2 8)
        (small_list (triple (int_range 0 7) (int_range 0 7) (int_range 1 15))))
    (fun (n, raw) ->
      let edges =
        List.filter (fun (u, v, _) -> u < n && v < n && u <> v) raw
        |> List.sort_uniq (fun (a, b, _) (c, d, _) ->
               compare (min a b, max a b) (min c d, max c d))
      in
      let mate = Blossom.max_weight_matching ~n edges in
      Blossom.matching_weight edges mate = Brute.max_weight_matching ~n edges)

let () =
  Alcotest.run "matching"
    [
      ( "blossom",
        [
          Alcotest.test_case "simple" `Quick test_blossom_simple;
          Alcotest.test_case "path" `Quick test_blossom_path;
          Alcotest.test_case "odd cycle forces blossom" `Quick test_blossom_needs_blossom;
          Alcotest.test_case "random vs brute" `Quick test_blossom_vs_brute;
          Alcotest.test_case "max cardinality" `Quick test_blossom_max_cardinality;
          QCheck_alcotest.to_alcotest qcheck_blossom;
        ] );
      ( "bipartite",
        [
          Alcotest.test_case "hopcroft-karp K33" `Quick test_hopcroft_karp;
          Alcotest.test_case "hopcroft-karp vs brute" `Quick test_hopcroft_karp_vs_brute;
          Alcotest.test_case "greedy maximal" `Quick test_greedy_maximal;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "diamond" `Quick test_maxflow_simple;
          Alcotest.test_case "min cut side" `Quick test_maxflow_cut;
          Alcotest.test_case "flow equals matching" `Quick test_maxflow_bipartite_equiv;
        ] );
    ]
