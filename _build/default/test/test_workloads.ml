(* Tests for the workload suite: every program compiles, has the
   expected shape, and triggers the expected analyses. *)

module Workloads = Oregami_workloads.Workloads
module Larcs = Oregami_larcs
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Digraph = Oregami_graph.Digraph
module Perm = Oregami_perm.Perm
module Group = Oregami_perm.Group

let test_all_compile () =
  List.iter
    (fun spec ->
      match Workloads.compile spec with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: %s" spec.Workloads.w_name m)
    (Workloads.all ())

let test_shapes () =
  let check spec tasks phases =
    let tg = Workloads.task_graph_exn spec in
    Alcotest.(check int) (spec.Workloads.w_name ^ " tasks") tasks tg.Taskgraph.n;
    Alcotest.(check int)
      (spec.Workloads.w_name ^ " phases")
      phases
      (List.length tg.Taskgraph.comm_phases)
  in
  check (Workloads.nbody ~n:15 ~s:1) 15 2;
  check (Workloads.matmul ~n:4) 16 2;
  check (Workloads.fft ~d:3) 8 3;
  check (Workloads.topsort ~levels:4 ~width:3) 12 2;
  check (Workloads.divide_and_conquer ~k:3) 8 3;
  check (Workloads.annealing ~n:3 ~sweeps:1) 9 4;
  check (Workloads.jacobi ~n:3 ~iters:1) 9 4;
  check (Workloads.sor ~n:4 ~iters:1) 16 2;
  check (Workloads.voting ~k:3) 8 3

let test_nbody_is_paper_graph () =
  let tg = Workloads.task_graph_exn (Workloads.nbody ~n:15 ~s:1) in
  let ring = Option.get (Taskgraph.comm_phase tg "ring") in
  let chordal = Option.get (Taskgraph.comm_phase tg "chordal") in
  for i = 0 to 14 do
    Alcotest.(check bool) "ring edge" true
      (Digraph.mem_edge ring.Taskgraph.edges i ((i + 1) mod 15));
    Alcotest.(check bool) "chordal edge" true
      (Digraph.mem_edge chordal.Taskgraph.edges i ((i + 8) mod 15))
  done

let test_voting_matches_fig4 () =
  (* k = 3 gives the paper's comm1/comm2/comm3 permutations *)
  let c = Workloads.compile_exn (Workloads.voting ~k:3) in
  let a = Larcs.Analyze.analyze c in
  let perm_strings =
    List.map
      (fun (name, kind) ->
        match kind with
        | Larcs.Analyze.Bijective p -> (name, Perm.to_string p)
        | Larcs.Analyze.Functional | Larcs.Analyze.General ->
          Alcotest.failf "phase %s not bijective" name)
      a.Larcs.Analyze.comm_kinds
  in
  Alcotest.(check (list (pair string string)))
    "Fig 4a generators"
    [
      ("comm1", "(0 1 2 3 4 5 6 7)");
      ("comm2", "(0 2 4 6)(1 3 5 7)");
      ("comm3", "(0 4)(1 5)(2 6)(3 7)");
    ]
    perm_strings;
  match a.Larcs.Analyze.cayley with
  | None -> Alcotest.fail "expected Cayley analysis"
  | Some cy ->
    Alcotest.(check int) "|G| = 8" 8 (Group.order cy.Larcs.Analyze.group);
    Alcotest.(check bool) "is Cayley" true cy.Larcs.Analyze.is_cayley

let test_family_detection () =
  let family spec =
    Larcs.Analyze.detect_family (Workloads.task_graph_exn spec)
  in
  Alcotest.(check (option string)) "divconq is a binomial tree" (Some "binomial")
    (family (Workloads.divide_and_conquer ~k:4));
  Alcotest.(check (option string)) "jacobi is a mesh" (Some "mesh")
    (family (Workloads.jacobi ~n:4 ~iters:1));
  Alcotest.(check (option string)) "fft static graph is a hypercube" (Some "hypercube")
    (family (Workloads.fft ~d:3))

let test_costs_positive () =
  List.iter
    (fun spec ->
      let tg = Workloads.task_graph_exn spec in
      Alcotest.(check bool)
        (spec.Workloads.w_name ^ " has exec cost")
        true
        (Taskgraph.total_exec_cost tg > 0);
      Alcotest.(check bool)
        (spec.Workloads.w_name ^ " has traffic")
        true
        (Taskgraph.total_volume tg > 0))
    (Workloads.all ())

let test_phase_expressions_finite () =
  List.iter
    (fun spec ->
      let tg = Workloads.task_graph_exn spec in
      let slots = List.length (Phase_expr.trace tg.Taskgraph.expr) in
      Alcotest.(check bool)
        (spec.Workloads.w_name ^ " trace non-trivial")
        true (slots > 0 && slots < 10000))
    (Workloads.all ())

let test_bad_params_rejected () =
  Alcotest.check_raises "fft d=0" (Invalid_argument "Workloads.fft: need d >= 1") (fun () ->
      ignore (Workloads.fft ~d:0));
  Alcotest.check_raises "voting k=0" (Invalid_argument "Workloads.voting: need k >= 1")
    (fun () -> ignore (Workloads.voting ~k:0))

let () =
  Alcotest.run "workloads"
    [
      ( "workloads",
        [
          Alcotest.test_case "all compile" `Quick test_all_compile;
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "nbody matches the paper" `Quick test_nbody_is_paper_graph;
          Alcotest.test_case "voting matches Fig 4" `Quick test_voting_matches_fig4;
          Alcotest.test_case "family detection" `Quick test_family_detection;
          Alcotest.test_case "costs positive" `Quick test_costs_positive;
          Alcotest.test_case "finite traces" `Quick test_phase_expressions_finite;
          Alcotest.test_case "bad parameters rejected" `Quick test_bad_params_rejected;
        ] );
    ]
