(* Tests for the reference executor: mapping-independence of the
   computation, and dynamic detection of corrupted mappings. *)

open Oregami
module Route = Mapper.Route

let topo s = Topology.make (Result.get_ok (Topology.parse s))

let map_spec ?options spec topo_s =
  let c = Workloads.compile_exn spec in
  match Driver.map_compiled ?options c (topo topo_s) with
  | Ok m -> m
  | Error e -> Alcotest.failf "%s on %s: %s" spec.Workloads.w_name topo_s e

let test_digest_mapping_independent () =
  (* every workload must produce its reference digest under every
     strategy and topology *)
  List.iter
    (fun spec ->
      let want = Vm.reference_digest (Workloads.task_graph_exn spec) in
      List.iter
        (fun topo_s ->
          let m = map_spec spec topo_s in
          match Vm.run m with
          | Error e -> Alcotest.failf "%s on %s: %s" spec.Workloads.w_name topo_s e
          | Ok o ->
            Alcotest.(check int)
              (Printf.sprintf "%s on %s (%s)" spec.Workloads.w_name topo_s
                 m.Mapping.strategy)
              want o.Vm.digest)
        [ "hypercube:3"; "mesh:4x4"; "torus:4x4"; "ring:8"; "ccc:3" ])
    (Workloads.all ())

let test_digest_independent_of_routing () =
  let spec = Workloads.nbody ~n:15 ~s:1 in
  let want = Vm.reference_digest (Workloads.task_graph_exn spec) in
  let mm = map_spec spec "hypercube:3" in
  let ob =
    map_spec ~options:{ Driver.default_options with Driver.routing = Driver.Oblivious }
      spec "hypercube:3"
  in
  let digest m = (Result.get_ok (Vm.run m)).Vm.digest in
  Alcotest.(check int) "mm-route" want (digest mm);
  Alcotest.(check int) "oblivious" want (digest ob)

let test_counts () =
  let m = map_spec (Workloads.voting ~k:3) "hypercube:2" in
  match Vm.run m with
  | Error e -> Alcotest.failf "run: %s" e
  | Ok o ->
    (* 3 rounds x 8 messages each *)
    Alcotest.(check int) "messages" 24 o.Vm.messages_delivered;
    (* trace: (comm; tally)^3 = 6 slots *)
    Alcotest.(check int) "slots" 6 o.Vm.slots_executed;
    Alcotest.(check bool) "hops >= cross messages" true (o.Vm.hops_traversed > 0)

let test_tampered_route_detected () =
  let m = map_spec (Workloads.voting ~k:3) "hypercube:2" in
  (* corrupt one cross-processor route: replace its node path with a
     teleporting one *)
  let corrupt_one routings =
    let changed = ref false in
    List.map
      (fun pr ->
        {
          pr with
          Mapping.pr_edges =
            List.map
              (fun re ->
                if (not !changed) && re.Mapping.re_route.Routes.links <> [] then begin
                  changed := true;
                  {
                    re with
                    Mapping.re_route =
                      {
                        re.Mapping.re_route with
                        Routes.nodes =
                          (match re.Mapping.re_route.Routes.nodes with
                          | first :: _ :: rest -> first :: first :: rest
                          | short -> short);
                      };
                  }
                end
                else re)
              pr.Mapping.pr_edges;
        })
      routings
  in
  let bad = { m with Mapping.routings = corrupt_one m.Mapping.routings } in
  match Vm.run bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "teleporting route executed"

let test_misplaced_task_detected () =
  (* swap two tasks' processors without re-routing: routes no longer
     start at the senders *)
  let m = map_spec (Workloads.voting ~k:3) "hypercube:2" in
  let proc_of_cluster = Array.copy m.Mapping.proc_of_cluster in
  let t = proc_of_cluster.(0) in
  proc_of_cluster.(0) <- proc_of_cluster.(1);
  proc_of_cluster.(1) <- t;
  let bad = { m with Mapping.proc_of_cluster } in
  match Vm.run bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale routes executed after moving tasks"

let test_spawned_digest () =
  (* the spawntree program also executes identically everywhere *)
  let spec = Workloads.spawned_divide_and_conquer ~depth:4 in
  let want = Vm.reference_digest (Workloads.task_graph_exn spec) in
  List.iter
    (fun topo_s ->
      let m = map_spec spec topo_s in
      Alcotest.(check int) topo_s want (Result.get_ok (Vm.run m)).Vm.digest)
    [ "hypercube:3"; "mesh:2x4" ]

let () =
  Alcotest.run "vm"
    [
      ( "vm",
        [
          Alcotest.test_case "digest is mapping-independent" `Slow
            test_digest_mapping_independent;
          Alcotest.test_case "digest is routing-independent" `Quick
            test_digest_independent_of_routing;
          Alcotest.test_case "delivery counts" `Quick test_counts;
          Alcotest.test_case "tampered route detected" `Quick test_tampered_route_detected;
          Alcotest.test_case "misplaced task detected" `Quick test_misplaced_task_detected;
          Alcotest.test_case "spawned program digest" `Quick test_spawned_digest;
        ] );
    ]
