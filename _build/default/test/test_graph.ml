(* Tests for the graph substrate: digraph/ugraph, traversals,
   shortest paths, isomorphism, tree canonical forms. *)

module Digraph = Oregami_graph.Digraph
module Ugraph = Oregami_graph.Ugraph
module Traverse = Oregami_graph.Traverse
module Shortest = Oregami_graph.Shortest
module Iso = Oregami_graph.Iso
module Treecanon = Oregami_graph.Treecanon
module Topology = Oregami_topology.Topology
module Rng = Oregami_prelude.Rng

(* ------------------------------------------------------------------ *)

let test_digraph_basic () =
  let g = Digraph.create 4 in
  Digraph.add_edge ~w:3 g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge ~w:2 g 0 1;
  Alcotest.(check int) "edge count with parallels" 3 (Digraph.edge_count g);
  Alcotest.(check int) "weight sums parallels" 5 (Digraph.weight g 0 1);
  Alcotest.(check int) "out degree" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in degree" 1 (Digraph.in_degree g 2);
  Alcotest.(check (list (pair int int))) "succ order" [ (1, 3); (1, 2) ] (Digraph.succ g 0);
  Alcotest.(check bool) "mem" true (Digraph.mem_edge g 1 2);
  Alcotest.(check bool) "not mem" false (Digraph.mem_edge g 2 1)

let test_digraph_transpose () =
  let g = Digraph.of_edges 3 [ (0, 1, 1); (1, 2, 4) ] in
  let t = Digraph.transpose g in
  Alcotest.(check bool) "reversed" true (Digraph.mem_edge t 1 0 && Digraph.mem_edge t 2 1);
  Alcotest.(check bool) "double transpose equal" true (Digraph.equal g (Digraph.transpose t))

let test_digraph_union_undirected () =
  let a = Digraph.of_edges 3 [ (0, 1, 1) ] in
  let b = Digraph.of_edges 3 [ (1, 2, 2); (1, 0, 5) ] in
  let u = Digraph.union a b in
  Alcotest.(check int) "union weight" 8 (Digraph.total_weight u);
  let und = Digraph.to_undirected u in
  Alcotest.(check int) "undirected merges antiparallel" 6 (Ugraph.weight und 0 1)

let test_ugraph_basic () =
  let g = Ugraph.create 4 in
  Ugraph.add_edge ~w:2 g 0 1;
  Ugraph.add_edge ~w:3 g 1 0;
  Ugraph.add_edge g 2 3;
  Alcotest.(check int) "edges merged" 2 (Ugraph.edge_count g);
  Alcotest.(check int) "accumulated weight" 5 (Ugraph.weight g 0 1);
  Alcotest.(check int) "symmetric" 5 (Ugraph.weight g 1 0);
  Alcotest.(check int) "degree" 1 (Ugraph.degree g 0);
  Alcotest.(check int) "total" 6 (Ugraph.total_weight g);
  Alcotest.check_raises "self loop rejected" (Invalid_argument "Ugraph.add_edge: self loop")
    (fun () -> Ugraph.add_edge g 1 1)

let test_ugraph_regularity () =
  Alcotest.(check bool) "K4 regular" true (Ugraph.is_regular (Ugraph.complete 4));
  let path = Ugraph.of_edges 3 [ (0, 1, 1); (1, 2, 1) ] in
  Alcotest.(check bool) "path not regular" false (Ugraph.is_regular path);
  Alcotest.(check int) "max degree" 2 (Ugraph.max_degree path)

(* ------------------------------------------------------------------ *)

let ring n =
  let g = Ugraph.create n in
  for i = 0 to n - 2 do
    Ugraph.add_edge g i (i + 1)
  done;
  Ugraph.add_edge g 0 (n - 1);
  g

let test_traverse_bfs () =
  let g = ring 6 in
  let d = Traverse.bfs_dist g 0 in
  Alcotest.(check (list int)) "ring distances" [ 0; 1; 2; 3; 2; 1 ] (Array.to_list d);
  Alcotest.(check int) "first in order is start" 0 (List.hd (Traverse.bfs_order g 0))

let test_traverse_components () =
  let g = Ugraph.of_edges 6 [ (0, 1, 1); (1, 2, 1); (4, 5, 1) ] in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (Traverse.components g);
  Alcotest.(check bool) "not connected" false (Traverse.is_connected g)

let test_traverse_topsort () =
  let g = Digraph.of_edges 5 [ (0, 2, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1) ] in
  Alcotest.(check (option (list int))) "canonical topsort" (Some [ 0; 1; 2; 3; 4 ])
    (Traverse.topological_sort g);
  Alcotest.(check bool) "is dag" true (Traverse.is_dag g);
  let c = Digraph.of_edges 3 [ (0, 1, 1); (1, 2, 1); (2, 0, 1) ] in
  Alcotest.(check (option (list int))) "cycle" None (Traverse.topological_sort c)

let test_traverse_diameter () =
  Alcotest.(check int) "ring 6 diameter" 3 (Traverse.diameter (ring 6));
  Alcotest.(check int) "K5 diameter" 1 (Traverse.diameter (Ugraph.complete 5));
  let disconnected = Ugraph.create 3 in
  Ugraph.add_edge disconnected 0 1;
  Alcotest.(check int) "disconnected" max_int (Traverse.diameter disconnected)

(* ------------------------------------------------------------------ *)

let test_dijkstra_matches_bfs_on_unit () =
  let rng = Rng.create 3 in
  for _ = 0 to 30 do
    let n = 2 + Rng.int rng 10 in
    let g = Ugraph.create n in
    for _ = 0 to 2 * n do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v && not (Ugraph.mem_edge g u v) then Ugraph.add_edge g u v
    done;
    let d1 = Traverse.bfs_dist g 0 in
    let d2, _ = Shortest.dijkstra g 0 in
    Alcotest.(check (list int)) "bfs = dijkstra on unit weights" (Array.to_list d1)
      (Array.to_list d2)
  done

let test_dijkstra_weighted () =
  (* 0 -5- 1 -1- 2 and 0 -1- 3 -1- 2: shortest 0->2 is via 3 *)
  let g = Ugraph.of_edges 4 [ (0, 1, 5); (1, 2, 1); (0, 3, 1); (3, 2, 1) ] in
  let dist, parent = Shortest.dijkstra g 0 in
  Alcotest.(check int) "dist" 2 dist.(2);
  Alcotest.(check (option (list int))) "path" (Some [ 0; 3; 2 ]) (Shortest.path_to ~parent 2)

let test_all_shortest_paths_hypercube () =
  let g = Topology.graph (Topology.make (Topology.Hypercube 3)) in
  let paths = Shortest.all_shortest_paths g 0 7 in
  (* 3 bit flips in any order: 3! = 6 shortest paths *)
  Alcotest.(check int) "six paths" 6 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "length 4 nodes" 4 (List.length p);
      Alcotest.(check int) "starts 0" 0 (List.hd p);
      Alcotest.(check int) "ends 7" 7 (List.nth p 3))
    paths;
  Alcotest.(check int) "count agrees" 6 (Shortest.count_shortest_paths g 0 7);
  (* cap respected *)
  Alcotest.(check int) "capped" 2 (List.length (Shortest.all_shortest_paths ~cap:2 g 0 7))

let test_all_shortest_paths_self () =
  let g = Ugraph.complete 3 in
  Alcotest.(check (list (list int))) "self" [ [ 1 ] ] (Shortest.all_shortest_paths g 1 1);
  Alcotest.(check int) "count self" 1 (Shortest.count_shortest_paths g 1 1)

(* ------------------------------------------------------------------ *)

let test_iso_positive () =
  (* C4 with two labelings *)
  let a = Ugraph.of_edges 4 [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (0, 3, 1) ] in
  let b = Ugraph.of_edges 4 [ (0, 2, 1); (2, 1, 1); (1, 3, 1); (0, 3, 1) ] in
  Alcotest.(check bool) "C4 isomorphic" true (Iso.isomorphic a b);
  match Iso.isomorphism a b with
  | None -> Alcotest.fail "expected mapping"
  | Some f -> Alcotest.(check bool) "automorphism check" true (Iso.is_automorphism b (Array.init 4 (fun i -> i)) && Array.length f = 4)

let test_iso_negative () =
  let path = Ugraph.of_edges 4 [ (0, 1, 1); (1, 2, 1); (2, 3, 1) ] in
  let star = Ugraph.of_edges 4 [ (0, 1, 1); (0, 2, 1); (0, 3, 1) ] in
  Alcotest.(check bool) "path vs star" false (Iso.isomorphic path star)

let test_iso_node_symmetric () =
  let c5 = Ugraph.of_edges 5 [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1); (0, 4, 1) ] in
  Alcotest.(check bool) "C5 node symmetric" true (Iso.is_node_symmetric c5);
  let p4 = Ugraph.of_edges 4 [ (0, 1, 1); (1, 2, 1); (2, 3, 1) ] in
  Alcotest.(check bool) "P4 not node symmetric" false (Iso.is_node_symmetric p4);
  let cube = Topology.graph (Topology.make (Topology.Hypercube 3)) in
  Alcotest.(check bool) "Q3 node symmetric" true (Iso.is_node_symmetric cube)

let test_digraph_iso () =
  let a = Digraph.of_edges 3 [ (0, 1, 2); (1, 2, 2); (2, 0, 2) ] in
  let b = Digraph.of_edges 3 [ (1, 0, 2); (0, 2, 2); (2, 1, 2) ] in
  Alcotest.(check bool) "directed triangles" true
    (Option.is_some (Iso.digraph_isomorphism a b));
  let c = Digraph.of_edges 3 [ (0, 1, 2); (1, 2, 2); (0, 2, 2) ] in
  Alcotest.(check bool) "cycle vs dag" false (Option.is_some (Iso.digraph_isomorphism a c))

(* ------------------------------------------------------------------ *)

let test_treecanon () =
  let topo k = Topology.graph (Topology.make k) in
  Alcotest.(check bool) "line is a tree" true (Treecanon.is_tree (topo (Topology.Line 5)));
  Alcotest.(check bool) "ring not a tree" false (Treecanon.is_tree (topo (Topology.Ring 5)));
  (* same tree, different labellings *)
  let a = Ugraph.of_edges 5 [ (0, 1, 1); (0, 2, 1); (2, 3, 1); (2, 4, 1) ] in
  let b = Ugraph.of_edges 5 [ (4, 3, 1); (4, 2, 1); (2, 1, 1); (2, 0, 1) ] in
  Alcotest.(check bool) "relabelled tree isomorphic" true (Treecanon.isomorphic_trees a b);
  (* different trees of equal size *)
  let star = Ugraph.of_edges 5 [ (0, 1, 1); (0, 2, 1); (0, 3, 1); (0, 4, 1) ] in
  Alcotest.(check bool) "star vs caterpillar" false (Treecanon.isomorphic_trees a star);
  (* binomial trees: recursive definition matches the topology module *)
  Alcotest.(check bool) "B3 self" true
    (Treecanon.isomorphic_trees (topo (Topology.Binomial_tree 3)) (topo (Topology.Binomial_tree 3)));
  Alcotest.(check bool) "B3 vs bintree(2)" false
    (Treecanon.isomorphic_trees (topo (Topology.Binomial_tree 3)) (topo (Topology.Binary_tree 2)))

let qcheck_tree_iso_under_relabel =
  QCheck.Test.make ~name:"tree canonical form invariant under relabelling" ~count:100
    QCheck.(pair (int_range 2 12) int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      (* random tree: each node attaches to a random earlier node *)
      let edges = List.init (n - 1) (fun i -> (i + 1, Rng.int rng (i + 1), 1)) in
      let t = Ugraph.of_edges n edges in
      let perm = Array.init n (fun i -> i) in
      Rng.shuffle rng perm;
      let t2 = Ugraph.of_edges n (List.map (fun (u, v, w) -> (perm.(u), perm.(v), w)) edges) in
      Treecanon.isomorphic_trees t t2)

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basic;
          Alcotest.test_case "transpose" `Quick test_digraph_transpose;
          Alcotest.test_case "union / to_undirected" `Quick test_digraph_union_undirected;
          Alcotest.test_case "digraph isomorphism" `Quick test_digraph_iso;
        ] );
      ( "ugraph",
        [
          Alcotest.test_case "basics" `Quick test_ugraph_basic;
          Alcotest.test_case "regularity" `Quick test_ugraph_regularity;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "bfs" `Quick test_traverse_bfs;
          Alcotest.test_case "components" `Quick test_traverse_components;
          Alcotest.test_case "topological sort" `Quick test_traverse_topsort;
          Alcotest.test_case "diameter" `Quick test_traverse_diameter;
        ] );
      ( "shortest",
        [
          Alcotest.test_case "dijkstra = bfs on unit weights" `Quick
            test_dijkstra_matches_bfs_on_unit;
          Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
          Alcotest.test_case "all shortest paths in Q3" `Quick
            test_all_shortest_paths_hypercube;
          Alcotest.test_case "self paths" `Quick test_all_shortest_paths_self;
        ] );
      ( "iso",
        [
          Alcotest.test_case "positive" `Quick test_iso_positive;
          Alcotest.test_case "negative" `Quick test_iso_negative;
          Alcotest.test_case "node symmetry" `Quick test_iso_node_symmetric;
        ] );
      ( "treecanon",
        [
          Alcotest.test_case "canonical forms" `Quick test_treecanon;
          QCheck_alcotest.to_alcotest qcheck_tree_iso_under_relabel;
        ] );
    ]
