(* End-to-end tests of the MAPPER dispatch (paper Fig 3) and the
   scheduling extension. *)

open Oregami

let map_workload ?options spec topo_s =
  let kind = Result.get_ok (Topology.parse topo_s) in
  let topo = Topology.make kind in
  let compiled = Workloads.compile_exn spec in
  match Driver.map_compiled ?options compiled topo with
  | Ok m -> m
  | Error e -> Alcotest.failf "%s on %s: %s" spec.Workloads.w_name topo_s e

let test_dispatch_choices () =
  let strategy spec topo_s = (map_workload spec topo_s).Mapping.strategy in
  (* nameable families take the canned path *)
  Alcotest.(check string) "fft -> hypercube canned" "canned:hypercube"
    (strategy (Workloads.fft ~d:4) "hypercube:3");
  Alcotest.(check string) "divconq -> binomial canned" "canned:binomial"
    (strategy (Workloads.divide_and_conquer ~k:4) "mesh:4x4");
  Alcotest.(check string) "jacobi -> mesh canned" "canned:mesh"
    (strategy (Workloads.jacobi ~n:8 ~iters:2) "mesh:4x4");
  (* node-symmetric graphs with dividing sizes take the group path *)
  Alcotest.(check string) "voting -> group" "group-theoretic"
    (strategy (Workloads.voting ~k:3) "hypercube:2");
  (* 15 tasks on 8 processors cannot use cosets: general path (MWM or
     one of its tiling/block rivals, chosen by the completion model) *)
  let general s = List.mem s [ "mwm+nn"; "tiled+nn"; "blocks+nn" ] in
  Alcotest.(check bool) "nbody 15 -> general path" true
    (general (strategy (Workloads.nbody ~n:15 ~s:1) "hypercube:3"));
  (* sor red/black phases are not bijections: general path *)
  Alcotest.(check bool) "sor -> general path" true
    (general (strategy (Workloads.sor ~n:6 ~iters:1) "hypercube:3"));
  (* 3-D uniform recurrences project systolically onto meshes *)
  Alcotest.(check string) "matmul3d -> systolic projection" "systolic:projection"
    (strategy (Workloads.matmul3d ~n:4) "mesh:4x4")

let test_dispatch_flags () =
  (* disabling paths forces the fallback *)
  let spec = Workloads.fft ~d:3 in
  let no_canned =
    { Driver.default_options with Driver.allow_canned = false }
  in
  let m = map_workload ~options:no_canned spec "hypercube:3" in
  Alcotest.(check string) "canned disabled -> group" "group-theoretic" m.Mapping.strategy;
  let neither =
    { Driver.default_options with Driver.allow_canned = false; allow_group = false }
  in
  let m = map_workload ~options:neither spec "hypercube:3" in
  Alcotest.(check bool) "both disabled -> general path" true
    (List.mem m.Mapping.strategy [ "mwm+nn"; "tiled+nn"; "blocks+nn" ])

let test_all_pairs_validate () =
  let topologies =
    [ "hypercube:3"; "hypercube:4"; "mesh:4x4"; "mesh:2x4"; "torus:4x4"; "ring:8";
      "line:12"; "bintree:3"; "ccc:3"; "butterfly:2"; "complete:6"; "hex:3x3" ]
  in
  List.iter
    (fun spec ->
      List.iter
        (fun topo_s ->
          let m = map_workload spec topo_s in
          match Mapping.validate m with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s on %s (%s): %s" spec.Workloads.w_name topo_s
              m.Mapping.strategy e)
        topologies)
    (Workloads.all ())

let test_oblivious_routing_validates () =
  let options = { Driver.default_options with Driver.routing = Driver.Oblivious } in
  List.iter
    (fun topo_s ->
      let m = map_workload ~options (Workloads.nbody ~n:15 ~s:1) topo_s in
      match Mapping.validate m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "oblivious on %s: %s" topo_s e)
    [ "hypercube:3"; "mesh:4x4"; "torus:2x4"; "ring:6" ]

let test_map_source_pipeline () =
  let spec = Workloads.annealing ~n:4 ~sweeps:2 in
  match
    map_source ~bindings:spec.Workloads.bindings spec.Workloads.source ~topology:"mesh:2x2"
  with
  | Error e -> Alcotest.failf "map_source: %s" e
  | Ok (m, s) ->
    Alcotest.(check int) "procs" 4 s.Metrics.procs;
    Alcotest.(check int) "tasks" 16 s.Metrics.tasks;
    Alcotest.(check bool) "validates" true (Mapping.validate m = Ok ());
    Alcotest.(check bool) "nonzero completion" true (s.Metrics.completion_time > 0)

let test_map_source_errors () =
  (match map_source "algorithm x(" ~topology:"ring:4" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "syntax error accepted");
  match map_source "algorithm x(); nodetype t : 0..3; comphase c { t i -> t ((i+1) mod 4); } phases c;" ~topology:"nosuch:4" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad topology accepted"

let test_strategy_preview () =
  let compiled = Workloads.compile_exn (Workloads.voting ~k:3) in
  let topo = Topology.make (Topology.Hypercube 2) in
  Alcotest.(check string) "preview matches" "group-theoretic"
    (Driver.strategy_preview compiled topo)

let test_better_than_random () =
  (* the paper's thesis: informed mapping beats naive placement.
     Compare simulated makespans across the suite on a hypercube. *)
  let rng = Prelude.Rng.create 123 in
  let worse = ref 0 and total = ref 0 in
  List.iter
    (fun spec ->
      let m = map_workload spec "hypercube:3" in
      let tg = m.Mapping.tg in
      let rc, rp = Mapper.Baselines.random rng ~n:tg.Taskgraph.n ~procs:8 in
      let proc_of_task = Array.init tg.Taskgraph.n (fun t -> rp.(rc.(t))) in
      let routings, _ = Mapper.Route.mm_route tg m.Mapping.topo ~proc_of_task in
      let random_m =
        {
          Mapping.tg;
          topo = m.Mapping.topo;
          cluster_of = rc;
          proc_of_cluster = rp;
          routings;
          strategy = "random";
        }
      in
      let a = (Netsim.run m).Netsim.makespan in
      let b = (Netsim.run random_m).Netsim.makespan in
      incr total;
      if a > b then incr worse)
    (Workloads.all ());
  (* allow at most one workload where random happens to win *)
  Alcotest.(check bool)
    (Printf.sprintf "OREGAMI loses to random on %d/%d workloads" !worse !total)
    true (!worse <= 1)

(* ------------------------------------------------------------------ *)
(* scheduling extension (§6)                                           *)

let test_synchrony_sets () =
  let m = map_workload (Workloads.voting ~k:3) "hypercube:2" in
  let dirs = Sched.default_directives m in
  Alcotest.(check int) "four processors busy" 4 (List.length dirs);
  let sets = Sched.synchrony_sets m dirs in
  Alcotest.(check int) "two ranks" 2 (List.length sets);
  List.iter
    (fun set -> Alcotest.(check int) "one task per processor" 4 (List.length set))
    sets

let test_synchronized_no_worse () =
  List.iter
    (fun (spec, topo_s) ->
      let m = map_workload spec topo_s in
      let base = Sched.staggered_makespan m (Sched.default_directives m) in
      let sync = Sched.staggered_makespan m (Sched.synchronized_directives m) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: synchronized %d <= default %d" spec.Workloads.w_name sync base)
        true (sync <= base))
    [
      (Workloads.nbody ~n:16 ~s:1, "hypercube:2");
      (Workloads.jacobi ~n:6 ~iters:2, "mesh:2x2");
      (Workloads.voting ~k:4, "hypercube:2");
    ]

let test_staggered_vs_barrier () =
  (* overlapping exec and comm can only help relative to the barrier
     model, which is exactly the netsim makespan *)
  let m = map_workload (Workloads.nbody ~n:16 ~s:1) "hypercube:2" in
  let barrier = (Netsim.run m).Netsim.makespan in
  let staggered = Sched.staggered_makespan m (Sched.default_directives m) in
  Alcotest.(check bool) "overlap helps" true (staggered <= barrier)

(* ------------------------------------------------------------------ *)
(* scale                                                               *)

let test_stress_scale () =
  (* 400 tasks onto 64 processors and 255 onto 16: the full pipeline
     stays well under a second and the mappings validate *)
  let cases =
    [
      (Workloads.jacobi ~n:20 ~iters:2, "mesh:8x8", 400);
      (Workloads.nbody ~n:255 ~s:1, "hypercube:4", 255);
      (Workloads.fft ~d:6, "hypercube:4", 64);
    ]
  in
  List.iter
    (fun (spec, topo_s, tasks) ->
      let m = map_workload spec topo_s in
      Alcotest.(check int) (spec.Workloads.w_name ^ " tasks") tasks m.Mapping.tg.Taskgraph.n;
      (match Mapping.validate m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" spec.Workloads.w_name e);
      let s = Metrics.summary m in
      Alcotest.(check bool) "completion positive" true (s.Metrics.completion_time > 0);
      let r = Netsim.run m in
      Alcotest.(check bool) "simulates" true (r.Netsim.makespan > 0))
    cases

let test_wormhole_end_to_end () =
  (* the wormhole simulator agrees with store-and-forward on ranking
     informed vs random placements *)
  let m = map_workload (Workloads.jacobi ~n:8 ~iters:2) "mesh:4x4" in
  let tg = m.Mapping.tg in
  let rng = Prelude.Rng.create 5 in
  let rc, rp = Mapper.Baselines.random rng ~n:tg.Taskgraph.n ~procs:16 in
  let proc_of_task = Array.init tg.Taskgraph.n (fun t -> rp.(rc.(t))) in
  let routings, _ = Mapper.Route.mm_route tg m.Mapping.topo ~proc_of_task in
  let rm =
    { Mapping.tg; topo = m.Mapping.topo; cluster_of = rc; proc_of_cluster = rp;
      routings; strategy = "random" }
  in
  let wh x = (Netsim.run ~params:Netsim.wormhole_params x).Netsim.makespan in
  Alcotest.(check bool) "informed wins under wormhole too" true (wh m < wh rm)

let () =
  Alcotest.run "driver"
    [
      ( "dispatch",
        [
          Alcotest.test_case "strategy choices (Fig 3)" `Quick test_dispatch_choices;
          Alcotest.test_case "option flags" `Quick test_dispatch_flags;
          Alcotest.test_case "preview" `Quick test_strategy_preview;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "all workloads x topologies validate" `Slow
            test_all_pairs_validate;
          Alcotest.test_case "oblivious routing validates" `Quick
            test_oblivious_routing_validates;
          Alcotest.test_case "map_source pipeline" `Quick test_map_source_pipeline;
          Alcotest.test_case "map_source errors" `Quick test_map_source_errors;
          Alcotest.test_case "beats random placement" `Quick test_better_than_random;
          Alcotest.test_case "scale stress" `Slow test_stress_scale;
          Alcotest.test_case "wormhole end to end" `Quick test_wormhole_end_to_end;
        ] );
      ( "sched",
        [
          Alcotest.test_case "synchrony sets" `Quick test_synchrony_sets;
          Alcotest.test_case "synchronized no worse" `Quick test_synchronized_no_worse;
          Alcotest.test_case "overlap no worse than barrier" `Quick test_staggered_vs_barrier;
        ] );
    ]
