(* Tests for the permutation-group library, including the paper's own
   worked example (Fig 4: the 8-node perfect broadcast). *)

module Perm = Oregami_perm.Perm
module Group = Oregami_perm.Group
module Cayley = Oregami_perm.Cayley
module Digraph = Oregami_graph.Digraph
module Ugraph = Oregami_graph.Ugraph
module Iso = Oregami_graph.Iso
module Rng = Oregami_prelude.Rng

let perm_of_string n s =
  match Perm.of_string n s with
  | Ok p -> p
  | Error m -> Alcotest.failf "of_string %S: %s" s m

let rotation n k = Perm.of_function n (fun i -> (i + k) mod n)

(* ------------------------------------------------------------------ *)

let test_compose_paper_convention () =
  (* footnote 4: (123) composed with (13)(2) gives (12)(3), acting on
     {1,2,3}; we use {0,1,2} so: (012) . (02) = (01) *)
  let a = Perm.of_cycles 3 [ [ 0; 1; 2 ] ] in
  let b = Perm.of_cycles 3 [ [ 0; 2 ] ] in
  let c = Perm.compose a b in
  Alcotest.(check string) "left-to-right" "(0 1)" (Perm.to_string c)

let test_apply_inverse_power () =
  let p = rotation 8 3 in
  Alcotest.(check int) "apply" 3 (Perm.apply p 0);
  Alcotest.(check bool) "inverse" true (Perm.is_identity (Perm.compose p (Perm.inverse p)));
  Alcotest.(check bool) "p^8 = id" true (Perm.is_identity (Perm.power p 8));
  Alcotest.(check bool) "p^-3 = inverse cubed" true
    (Perm.equal (Perm.power p (-3)) (Perm.inverse (Perm.power p 3)));
  Alcotest.(check int) "order of +3 mod 8" 8 (Perm.order p);
  Alcotest.(check int) "order of +2 mod 8" 4 (Perm.order (rotation 8 2))

let test_cycles () =
  let p = rotation 8 2 in
  Alcotest.(check (list (list int))) "cycles of +2" [ [ 0; 2; 4; 6 ]; [ 1; 3; 5; 7 ] ]
    (Perm.cycles p);
  Alcotest.(check (list int)) "cycle type" [ 4; 4 ] (Perm.cycle_type p);
  Alcotest.(check (option int)) "uniform" (Some 4) (Perm.uniform_cycle_length p);
  let q = Perm.of_cycles 5 [ [ 0; 1; 2 ] ] in
  Alcotest.(check (option int)) "not uniform with fixed points" None
    (Perm.uniform_cycle_length q);
  Alcotest.(check (option int)) "identity uniform" (Some 1)
    (Perm.uniform_cycle_length (Perm.identity 4))

let test_string_roundtrip () =
  let p = perm_of_string 8 "(0 4)(1 5)(2 6)(3 7)" in
  Alcotest.(check bool) "matches rotation by 4" true (Perm.equal p (rotation 8 4));
  Alcotest.(check string) "print" "(0 4)(1 5)(2 6)(3 7)" (Perm.to_string p);
  Alcotest.(check string) "identity prints ()" "()" (Perm.to_string (Perm.identity 5));
  (match Perm.of_string 4 "(0 1 9)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out of range accepted");
  match Perm.of_string 4 "(0 1)(1 2)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlapping cycles accepted"

let test_bad_perms () =
  Alcotest.check_raises "not injective" (Invalid_argument "Perm: not injective") (fun () ->
      ignore (Perm.of_array [| 0; 0; 1 |]));
  Alcotest.(check bool) "is_bijection negative" false
    (Perm.is_bijection 3 (fun _ -> 1));
  Alcotest.(check bool) "is_bijection positive" true (Perm.is_bijection 3 (fun i -> (i + 1) mod 3))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"cycle notation roundtrips" ~count:200 QCheck.(pair (int_range 1 10) int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let a = Array.init n (fun i -> i) in
      Rng.shuffle rng a;
      let p = Perm.of_array a in
      match Perm.of_string n (Perm.to_string p) with
      | Ok q -> Perm.equal p q
      | Error _ -> false)

let qcheck_compose_assoc =
  QCheck.Test.make ~name:"composition is associative" ~count:200 QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let mk () =
        let a = Array.init 6 (fun i -> i) in
        Rng.shuffle rng a;
        Perm.of_array a
      in
      let p = mk () and q = mk () and r = mk () in
      Perm.equal (Perm.compose (Perm.compose p q) r) (Perm.compose p (Perm.compose q r)))

(* ------------------------------------------------------------------ *)

let fig4_generators =
  (* comm1 = (01234567), comm2 = (0246)(1357), comm3 = (04)(15)(26)(37) *)
  [ rotation 8 1; rotation 8 2; rotation 8 4 ]

let fig4_group () =
  match Group.generate ~bound:8 fig4_generators with
  | Some g -> g
  | None -> Alcotest.fail "closure exceeded bound"

let test_group_fig4_closure () =
  let g = fig4_group () in
  Alcotest.(check int) "|G| = 8" 8 (Group.order g);
  Alcotest.(check bool) "uniform cycle lengths" true (Group.uniform_cycle_lengths g);
  Alcotest.(check bool) "regular action" true (Group.acts_regularly g);
  Alcotest.(check bool) "abelian (Z8)" true (Group.is_abelian g);
  (* the paper lists E0..E7; each rotation by k must be present *)
  for k = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "rotation %d present" k)
      true
      (Group.mem g (rotation 8 k))
  done

let test_group_bound_halts () =
  (* S3 has order 6 > 3 = degree: the paper's halting rule fires *)
  let gens = [ Perm.of_cycles 3 [ [ 0; 1 ] ]; Perm.of_cycles 3 [ [ 0; 1; 2 ] ] ] in
  Alcotest.(check bool) "halted" true (Group.generate ~bound:3 gens = None);
  match Group.generate gens with
  | Some g ->
    Alcotest.(check int) "S3 order" 6 (Group.order g);
    Alcotest.(check bool) "S3 not abelian" false (Group.is_abelian g);
    Alcotest.(check bool) "S3 transitive" true (Group.is_transitive g);
    Alcotest.(check bool) "S3 not regular" false (Group.acts_regularly g);
    Alcotest.(check bool) "S3 has non-uniform elements" false (Group.uniform_cycle_lengths g)
  | None -> Alcotest.fail "unbounded generation failed"

let test_group_orbits () =
  (* two independent swaps on 4 points: orbits {0,1} {2,3} *)
  let gens = [ Perm.of_cycles 4 [ [ 0; 1 ] ]; Perm.of_cycles 4 [ [ 2; 3 ] ] ] in
  match Group.generate gens with
  | None -> Alcotest.fail "generation failed"
  | Some g ->
    Alcotest.(check (list (list int))) "orbits" [ [ 0; 1 ]; [ 2; 3 ] ] (Group.orbits g);
    Alcotest.(check bool) "not transitive" false (Group.is_transitive g)

let test_subgroups_z8 () =
  let g = fig4_group () in
  let cyclics = Group.cyclic_subgroups g in
  (* Z8 has exactly 4 cyclic subgroups: orders 1, 2, 4, 8 *)
  Alcotest.(check (list int)) "cyclic subgroup orders" [ 1; 2; 4; 8 ]
    (List.map List.length cyclics);
  let of_order_2 = Group.subgroups_of_order g 2 in
  Alcotest.(check int) "one subgroup of order 2" 1 (List.length of_order_2);
  let h = List.hd of_order_2 in
  Alcotest.(check bool) "subgroup" true (Group.is_subgroup g h);
  Alcotest.(check bool) "normal in abelian" true (Group.is_normal g h);
  (* {E0, E4}: identity plus rotation by 4 *)
  let rot4_idx = Option.get (Group.index_of g (rotation 8 4)) in
  Alcotest.(check (list int)) "the paper's {E0,E4}" (List.sort compare [ 0; rot4_idx ]) h

let test_cosets () =
  let g = fig4_group () in
  let h = List.hd (Group.subgroups_of_order g 2) in
  let cosets = Group.left_cosets g h in
  Alcotest.(check int) "four cosets" 4 (List.length cosets);
  List.iter (fun c -> Alcotest.(check int) "coset size 2" 2 (List.length c)) cosets;
  (* cosets partition the group *)
  let all = List.concat cosets |> List.sort compare in
  Alcotest.(check (list int)) "partition" (List.init 8 (fun i -> i)) all

let test_subgroup_not_closed () =
  let g = fig4_group () in
  let rot1 = Option.get (Group.index_of g (rotation 8 1)) in
  Alcotest.(check bool) "not a subgroup" false (Group.is_subgroup g [ 0; rot1 ])

let test_is_prime_power () =
  Alcotest.(check (option (pair int int))) "8" (Some (2, 3)) (Group.is_prime_power 8);
  Alcotest.(check (option (pair int int))) "9" (Some (3, 2)) (Group.is_prime_power 9);
  Alcotest.(check (option (pair int int))) "7" (Some (7, 1)) (Group.is_prime_power 7);
  Alcotest.(check (option (pair int int))) "12" None (Group.is_prime_power 12);
  Alcotest.(check (option (pair int int))) "1" None (Group.is_prime_power 1)

(* ------------------------------------------------------------------ *)

let test_cayley_graphs () =
  let g = fig4_group () in
  let graphs = Cayley.graphs g in
  Alcotest.(check int) "one per generator" 3 (List.length graphs);
  List.iter
    (fun dg ->
      for v = 0 to 7 do
        Alcotest.(check int) "out degree 1" 1 (Digraph.out_degree dg v)
      done)
    graphs;
  (* the Cayley graph of the rotation generators on Z8 is isomorphic
     to the task graph built from the same functions on the labels *)
  let corr = Cayley.correspondence g in
  Alcotest.(check (list int)) "correspondence is a bijection"
    (List.init 8 (fun i -> i))
    (List.sort compare (Array.to_list corr));
  let combined = Cayley.combined g in
  let task_graph = Ugraph.create 8 in
  List.iter
    (fun k ->
      for i = 0 to 7 do
        let j = (i + k) mod 8 in
        if not (Ugraph.mem_edge task_graph i j) then Ugraph.add_edge task_graph i j
      done)
    [ 1; 2; 4 ];
  Alcotest.(check bool) "cayley graph isomorphic to task graph" true
    (Iso.isomorphic combined task_graph)

let test_quotient_internalization () =
  let g = fig4_group () in
  let h = List.hd (Group.subgroups_of_order g 2) in
  let cosets = Group.left_cosets g h in
  (* the generator comm3 = rotation by 4 has cycle length 2; its
     subgroup quotient internalizes 2 messages per cluster (paper) *)
  Alcotest.(check int) "comm3 internalized" 2
    (Cayley.internalized_per_block g cosets (rotation 8 4));
  Alcotest.(check int) "comm1 not internalized" 0
    (Cayley.internalized_per_block g cosets (rotation 8 1));
  let quotients = Cayley.quotient_multigraph g cosets in
  Alcotest.(check int) "one quotient per generator" 3 (List.length quotients);
  (* each quotient preserves total message count = 8 *)
  List.iter
    (fun q -> Alcotest.(check int) "total weight 8" 8 (Digraph.total_weight q))
    quotients;
  (* task partition equals the {i, i+4} pairing *)
  let parts = Cayley.task_partition g cosets in
  Alcotest.(check (list (list int))) "task clusters"
    [ [ 0; 4 ]; [ 1; 5 ]; [ 2; 6 ]; [ 3; 7 ] ]
    (List.sort compare parts)

let test_quaternion_like_nonabelian () =
  (* dihedral group D4 acting on the square's corners: order 8 on 4
     points -> not regular *)
  let r = Perm.of_cycles 4 [ [ 0; 1; 2; 3 ] ] in
  let f = Perm.of_cycles 4 [ [ 0; 2 ] ] in
  match Group.generate [ r; f ] with
  | None -> Alcotest.fail "generation failed"
  | Some g ->
    Alcotest.(check int) "D4 order" 8 (Group.order g);
    Alcotest.(check bool) "transitive" true (Group.is_transitive g);
    Alcotest.(check bool) "not regular (|G| <> |X|)" false (Group.acts_regularly g);
    (* subgroup search still works: the rotation subgroup has order 4 *)
    let subs = Group.subgroups_of_order g 4 in
    Alcotest.(check bool) "found order-4 subgroups" true (List.length subs >= 1)

let test_star_graph_is_cayley () =
  (* the Akers-Krishnamurthy star graph S4 [AK89] is the Cayley graph
     of S_4 under the "swap position 0 with position i" generators --
     cross-validating the group machinery against the topology module *)
  let gens =
    List.map (fun i -> Perm.of_cycles 4 [ [ 0; i ] ]) [ 1; 2; 3 ]
  in
  match Group.generate gens with
  | None -> Alcotest.fail "generation failed"
  | Some g ->
    Alcotest.(check int) "S4 order 24" 24 (Group.order g);
    let cayley = Cayley.combined g in
    let star =
      Oregami_topology.Topology.graph
        (Oregami_topology.Topology.make (Oregami_topology.Topology.Star_graph 4))
    in
    Alcotest.(check int) "same node count" 24 (Ugraph.node_count star);
    Alcotest.(check int) "same link count" (Ugraph.edge_count star)
      (Ugraph.edge_count cayley);
    (* both are vertex-transitive 3-regular; verify isomorphism with
       distance pruning *)
    Alcotest.(check bool) "isomorphic" true
      (Option.is_some (Iso.isomorphism_distance_pruned cayley star))

let () =
  Alcotest.run "perm"
    [
      ( "perm",
        [
          Alcotest.test_case "paper composition convention" `Quick test_compose_paper_convention;
          Alcotest.test_case "apply/inverse/power/order" `Quick test_apply_inverse_power;
          Alcotest.test_case "cycles" `Quick test_cycles;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "invalid permutations" `Quick test_bad_perms;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_compose_assoc;
        ] );
      ( "group",
        [
          Alcotest.test_case "Fig 4 closure" `Quick test_group_fig4_closure;
          Alcotest.test_case "halting bound" `Quick test_group_bound_halts;
          Alcotest.test_case "orbits" `Quick test_group_orbits;
          Alcotest.test_case "subgroups of Z8" `Quick test_subgroups_z8;
          Alcotest.test_case "cosets" `Quick test_cosets;
          Alcotest.test_case "non-subgroup rejected" `Quick test_subgroup_not_closed;
          Alcotest.test_case "prime powers" `Quick test_is_prime_power;
          Alcotest.test_case "non-regular action" `Quick test_quaternion_like_nonabelian;
        ] );
      ( "cayley",
        [
          Alcotest.test_case "cayley graphs" `Quick test_cayley_graphs;
          Alcotest.test_case "quotient internalization (Fig 4c)" `Quick
            test_quotient_internalization;
          Alcotest.test_case "star graph is Cayley(S4)" `Quick test_star_graph_is_cayley;
        ] );
    ]
