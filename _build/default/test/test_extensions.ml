(* Tests for the extensions beyond the paper's core pipeline:
   aggregate-topology selection (§6), tiled/block contraction
   candidates, embedding refinement, canonical relabeling for canned
   mappings, torus detection, and the extra network families. *)

open Oregami
module Aggregate = Mapper.Aggregate
module Tiled = Mapper.Tiled
module Refine = Mapper.Refine
module Nn_embed = Mapper.Nn_embed
module Ugraph = Graph.Ugraph
module Rng = Prelude.Rng

let topo s = Topology.make (Result.get_ok (Topology.parse s))

let reduce_source =
  {|
algorithm reduceall(n);
nodetype t : 0 .. n-1;
comphase gather { t i -> t 0 volume 10 when i > 0; }
exphase work cost 5;
phases (work; gather)^3;
|}

let reduce_mapping () =
  match map_source ~bindings:[ ("n", 32) ] reduce_source ~topology:"mesh:4x4" with
  | Ok (m, _) -> m
  | Error e -> Alcotest.failf "reduce mapping: %s" e

(* ------------------------------------------------------------------ *)

let test_is_aggregation () =
  let m = reduce_mapping () in
  Alcotest.(check (option int)) "gather aggregates to task 0" (Some 0)
    (Aggregate.is_aggregation m.Mapping.tg "gather");
  let nb = Workloads.task_graph_exn (Workloads.nbody ~n:8 ~s:1) in
  Alcotest.(check (option int)) "ring is not an aggregation" None
    (Aggregate.is_aggregation nb "ring")

let test_aggregate_replan () =
  let m = reduce_mapping () in
  let hot_before = Aggregate.hot_link_volume m "gather" in
  match Aggregate.replan_phase m ~phase:"gather" with
  | Error e -> Alcotest.failf "replan: %s" e
  | Ok m2 ->
    (match Mapping.validate m2 with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid after replan: %s" e);
    let hot_after = Aggregate.hot_link_volume m2 "gather" in
    Alcotest.(check bool)
      (Printf.sprintf "hot link %d -> %d" hot_before hot_after)
      true
      (hot_after < hot_before);
    (* the tree reduction carries one combined message per link *)
    Alcotest.(check int) "tree hot link is one message" 10 hot_after;
    let s_before = (Netsim.run m).Netsim.makespan in
    let s_after = (Netsim.run m2).Netsim.makespan in
    Alcotest.(check bool)
      (Printf.sprintf "makespan %d -> %d" s_before s_after)
      true (s_after < s_before);
    (* other phases untouched *)
    Alcotest.(check bool) "strategy tagged" true
      (m2.Mapping.strategy <> m.Mapping.strategy)

let test_aggregate_rejects_non_aggregation () =
  let spec = Workloads.nbody ~n:8 ~s:1 in
  match
    map_source ~bindings:spec.Workloads.bindings spec.Workloads.source
      ~topology:"hypercube:3"
  with
  | Error e -> Alcotest.failf "map: %s" e
  | Ok (m, _) -> begin
    match Aggregate.replan_phase m ~phase:"ring" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "ring accepted as aggregation"
  end

(* ------------------------------------------------------------------ *)

let test_factor_pairs () =
  Alcotest.(check (list (pair int int))) "12" [ (1, 12); (2, 6); (3, 4); (4, 3); (6, 2); (12, 1) ]
    (Tiled.factor_pairs 12);
  Alcotest.(check (list (pair int int))) "prime" [ (1, 7); (7, 1) ] (Tiled.factor_pairs 7)

let test_tiled_contract () =
  let candidates = Tiled.contract ~rows:6 ~cols:6 ~procs:8 in
  Alcotest.(check int) "two feasible grids (2x4, 4x2)" 2 (List.length candidates);
  List.iter
    (fun (cluster_of, k) ->
      Alcotest.(check int) "k = 8" 8 k;
      Alcotest.(check int) "covers tasks" 36 (Array.length cluster_of);
      (* every tile non-empty; contiguous tiles *)
      let counts = Array.make k 0 in
      Array.iter (fun c -> counts.(c) <- counts.(c) + 1) cluster_of;
      Array.iter (fun n -> Alcotest.(check bool) "non-empty" true (n > 0)) counts)
    candidates;
  Alcotest.(check (list (pair int int))) "infeasible when procs > grid" []
    (List.map (fun (_, k) -> (k, k)) (Tiled.contract ~rows:2 ~cols:2 ~procs:9))

let test_refine_improves_or_equal () =
  let rng = Rng.create 99 in
  for _ = 0 to 20 do
    let t = topo "mesh:3x3" in
    let k = 9 in
    let cg = Ugraph.create k in
    for _ = 0 to 20 do
      let u = Rng.int rng k and v = Rng.int rng k in
      if u <> v then Ugraph.add_edge ~w:(1 + Rng.int rng 9) cg u v
    done;
    let em = Array.init k (fun i -> i) in
    let before = Nn_embed.weighted_hops cg t em in
    let refined = Refine.improve_embedding cg t em in
    let after = Nn_embed.weighted_hops cg t refined in
    Alcotest.(check bool) "no worse" true (after <= before);
    (* still injective *)
    Alcotest.(check (list int)) "permutation" (List.init k (fun i -> i))
      (List.sort compare (Array.to_list refined))
  done

(* ------------------------------------------------------------------ *)

let test_relabeled_canned () =
  (* matmul(4)'s static graph is a 4x4 torus = Q4 under a non-trivial
     isomorphism; the canned hypercube entry must use the relabeling *)
  let spec = Workloads.matmul ~n:4 in
  let c = Workloads.compile_exn spec in
  Alcotest.(check (option string)) "detected as hypercube" (Some "hypercube")
    (Larcs.Analyze.detect_family c.Larcs.Compile.graph);
  match Driver.map_compiled c (topo "hypercube:4") with
  | Error e -> Alcotest.failf "map: %s" e
  | Ok m ->
    Alcotest.(check string) "canned path" "canned:hypercube" m.Mapping.strategy;
    let _, avg, _ = Mapping.dilation_stats m in
    Alcotest.(check bool)
      (Printf.sprintf "dilation 1.0, got %.3f" avg)
      true (avg = 1.0)

let test_family_match_ring_scrambled () =
  (* a ring written with a stride-3 numbering still canonicalizes *)
  let src =
    {|
algorithm scrambled(n);
nodetype t : 0 .. n-1;
comphase step { t i -> t ((i + 3) mod n); }
phases step;
|}
  in
  let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 8) ] src) in
  (* gcd(3,8)=1 so this is an 8-cycle, but not the natural one *)
  match Larcs.Analyze.detect_family_match c.Larcs.Compile.graph with
  | None -> Alcotest.fail "expected a ring match"
  | Some m ->
    Alcotest.(check string) "ring" "ring" m.Larcs.Analyze.fam_name;
    (* relabeling is a bijection and maps the stride cycle to the
       natural cycle *)
    Alcotest.(check (list int)) "bijection" (List.init 8 (fun i -> i))
      (List.sort compare (Array.to_list m.Larcs.Analyze.relabel));
    let r = m.Larcs.Analyze.relabel in
    for i = 0 to 7 do
      let a = r.(i) and b = r.((i + 3) mod 8) in
      let d = min ((a - b + 8) mod 8) ((b - a + 8) mod 8) in
      Alcotest.(check int) "consecutive in canonical order" 1 d
    done

let test_torus_family_detection () =
  (* a 3x4 torus task graph (4-regular, not a hypercube) *)
  let src =
    {|
algorithm wrap(r, c);
nodetype t : (0 .. r-1, 0 .. c-1);
comphase east  { t (i, j) -> t (i, (j + 1) mod c); }
comphase south { t (i, j) -> t ((i + 1) mod r, j); }
phases east; south;
|}
  in
  let c =
    Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("r", 3); ("c", 4) ] src)
  in
  Alcotest.(check (option string)) "torus detected" (Some "torus")
    (Larcs.Analyze.detect_family c.Larcs.Compile.graph)

let test_torus_canned_tiling () =
  (* an 8x8 torus program tiles onto a 4x4 torus with dilation 1 *)
  let src =
    {|
algorithm wrap(n);
family torus;
nodetype t : (0 .. n-1, 0 .. n-1);
comphase east  { t (i, j) -> t (i, (j + 1) mod n); }
comphase south { t (i, j) -> t ((i + 1) mod n, j); }
exphase work cost 2;
phases (east; south; work)^2;
|}
  in
  let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 8) ] src) in
  match Driver.map_compiled c (topo "torus:4x4") with
  | Error e -> Alcotest.failf "map: %s" e
  | Ok m ->
    Alcotest.(check string) "canned torus" "canned:torus" m.Mapping.strategy;
    let mx, _, _ = Mapping.dilation_stats m in
    Alcotest.(check int) "dilation 1 incl. wraps" 1 mx

(* ------------------------------------------------------------------ *)

let test_new_topologies () =
  let db = topo "debruijn:4" in
  Alcotest.(check int) "debruijn nodes" 16 (Topology.node_count db);
  Alcotest.(check bool) "debruijn connected" true
    (Graph.Traverse.is_connected (Topology.graph db));
  (* binary de Bruijn diameter = k *)
  Alcotest.(check int) "debruijn diameter" 4 (Topology.diameter db);
  let se = topo "shuffle:4" in
  Alcotest.(check int) "shuffle nodes" 16 (Topology.node_count se);
  Alcotest.(check bool) "shuffle connected" true
    (Graph.Traverse.is_connected (Topology.graph se));
  (* shuffle-exchange degree <= 3 *)
  Alcotest.(check bool) "shuffle degree <= 3" true
    (Ugraph.max_degree (Topology.graph se) <= 3)

let test_mapping_onto_new_topologies () =
  List.iter
    (fun (spec, t) ->
      let c = Workloads.compile_exn spec in
      match Driver.map_compiled c (topo t) with
      | Error e -> Alcotest.failf "%s on %s: %s" spec.Workloads.w_name t e
      | Ok m -> (
        match Mapping.validate m with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s on %s invalid: %s" spec.Workloads.w_name t e))
    [
      (Workloads.fft ~d:4, "debruijn:4");
      (Workloads.voting ~k:4, "shuffle:4");
      (Workloads.nbody ~n:15 ~s:1, "debruijn:3");
    ]

(* ------------------------------------------------------------------ *)

let qcheck_random_taskgraphs_map_validly =
  QCheck.Test.make ~name:"random task graphs map validly onto random topologies" ~count:40
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 20 in
      let g = Graph.Digraph.create n in
      for _ = 0 to 2 * n do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then Graph.Digraph.add_edge ~w:(1 + Rng.int rng 9) g u v
      done;
      let tg =
        Taskgraph.make_exn ~name:"random" ~n
          ~comm_phases:[ ("p", g) ]
          ~exec_phases:[ ("e", Array.init n (fun i -> 1 + (i mod 5))) ]
          ~expr:
            Phase_expr.(Repeat (Seq (Comm "p", Exec "e"), 1 + Rng.int rng 3))
          ()
      in
      let topos =
        [| "hypercube:3"; "mesh:3x3"; "ring:6"; "torus:3x3"; "bintree:2"; "ccc:3";
           "debruijn:3"; "shuffle:3"; "line:7" |]
      in
      let t = topo topos.(Rng.int rng (Array.length topos)) in
      match Driver.map_taskgraph tg t with
      | Ok m -> Mapping.validate m = Ok ()
      | Error _ ->
        (* only legitimate failure: more tasks than capacity - never
           here since default B adapts *)
        false)

(* ------------------------------------------------------------------ *)
(* phase-shift remapping (§6)                                          *)

let shift_source =
  {|
algorithm shift(n);
nodetype t : 0 .. n-1;
comphase ring { t i -> t ((i+1) mod n) volume 20; }
comphase far  { t i -> t ((i + n/2) mod n) volume 20; }
exphase a cost 2;
exphase b cost 2;
phases (ring; a)^6; (far; b)^6;
|}

let test_split_regimes () =
  let c =
    Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 16) ] shift_source)
  in
  let regimes = Remap.split_regimes c.Larcs.Compile.graph.Taskgraph.expr in
  Alcotest.(check int) "two regimes" 2 (List.length regimes);
  Alcotest.(check (list (list string))) "phases per regime" [ [ "ring" ]; [ "far" ] ]
    (List.map (fun r -> r.Remap.rg_comms) regimes);
  (* a single repeated pattern stays one regime *)
  let nb = Workloads.task_graph_exn (Workloads.nbody ~n:8 ~s:2) in
  Alcotest.(check int) "nbody is one regime" 1
    (List.length (Remap.split_regimes nb.Taskgraph.expr))

let test_remap_worthwhile () =
  let c =
    Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 16) ] shift_source)
  in
  let t = topo "ring:8" in
  match Remap.plan c.Larcs.Compile.graph t with
  | Error e -> Alcotest.failf "plan: %s" e
  | Ok p ->
    Alcotest.(check int) "two regime mappings" 2 (List.length p.Remap.regime_mappings);
    Alcotest.(check bool) "migration happens" true (p.Remap.migration_time > 0);
    Alcotest.(check bool)
      (Printf.sprintf "remap %d < static %d" p.Remap.remap_makespan p.Remap.static_makespan)
      true p.Remap.worthwhile;
    (* each regime mapping is valid *)
    List.iter
      (fun (_, m) ->
        match Mapping.validate m with
        | Ok () -> ()
        | Error e -> Alcotest.failf "regime mapping invalid: %s" e)
      p.Remap.regime_mappings

let test_remap_single_regime_not_worthwhile () =
  let tg = Workloads.task_graph_exn (Workloads.jacobi ~n:4 ~iters:2) in
  match Remap.plan tg (topo "mesh:2x2") with
  | Error e -> Alcotest.failf "plan: %s" e
  | Ok p ->
    Alcotest.(check bool) "single regime" true (List.length p.Remap.regime_mappings = 1);
    Alcotest.(check bool) "not worthwhile" false p.Remap.worthwhile


(* ------------------------------------------------------------------ *)
(* dynamic spawning (§6)                                               *)

let test_spawntree_compile () =
  let spec = Workloads.spawned_divide_and_conquer ~depth:3 in
  let c = Workloads.compile_exn spec in
  let tg = c.Larcs.Compile.graph in
  Alcotest.(check int) "2^4 - 1 tasks" 15 tg.Taskgraph.n;
  Alcotest.(check bool) "implicit spawn phase" true
    (List.mem "node_spawn" (Taskgraph.comm_names tg));
  (* spawn edges: every non-root child receives one *)
  let sp = Option.get (Taskgraph.comm_phase tg "node_spawn") in
  Alcotest.(check int) "14 spawn edges" 14 (Graph.Digraph.edge_count sp.Taskgraph.edges);
  Alcotest.(check bool) "root spawns 1 and 2" true
    (Graph.Digraph.mem_edge sp.Taskgraph.edges 0 1
    && Graph.Digraph.mem_edge sp.Taskgraph.edges 0 2);
  (* activation levels *)
  Alcotest.(check (list int)) "levels" [ 0; 1; 1; 2; 2; 2; 2 ]
    (Array.to_list (Array.sub c.Larcs.Compile.activation 0 7))

let test_spawntree_pretty_roundtrip () =
  let spec = Workloads.spawned_divide_and_conquer ~depth:2 in
  let p = Result.get_ok (Larcs.Parser.parse spec.Workloads.source) in
  Alcotest.(check int) "one spawn" 1 (List.length p.Larcs.Ast.spawns);
  let printed = Larcs.Pretty.program p in
  match Larcs.Parser.parse printed with
  | Error e -> Alcotest.failf "re-parse: %s\n%s" e printed
  | Ok p2 -> Alcotest.(check int) "spawns survive" 1 (List.length p2.Larcs.Ast.spawns)

let test_incremental_generations () =
  let activation = [| 0; 1; 1; 2; 2; 2; 2 |] in
  Alcotest.(check (list (list int))) "generations"
    [ [ 0 ]; [ 1; 2 ]; [ 3; 4; 5; 6 ] ]
    (Mapper.Incremental.generations activation)

let test_incremental_vs_static () =
  let spec = Workloads.spawned_divide_and_conquer ~depth:4 in
  let c = Workloads.compile_exn spec in
  let tg = c.Larcs.Compile.graph in
  let t = topo "mesh:2x4" in
  let static = Taskgraph.static_graph tg in
  let cap = (tg.Taskgraph.n + 7) / 8 in
  let inc = Mapper.Incremental.place static ~activation:c.Larcs.Compile.activation ~cap t in
  (* placement valid: within range, capacity respected *)
  let load = Array.make 8 0 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "in range" true (p >= 0 && p < 8);
      load.(p) <- load.(p) + 1)
    inc;
  Array.iter (fun l -> Alcotest.(check bool) "cap" true (l <= cap)) load;
  (* the clairvoyant static mapping (possible because LaRCS described
     the spawning pattern) is at least as good as online placement *)
  let m_static = Result.get_ok (Driver.map_compiled c t) in
  let hops = Graph.Shortest.all_pairs_hops (Topology.graph t) in
  let weighted placement =
    List.fold_left
      (fun acc (u, v, w) ->
        if placement.(u) <> placement.(v) then acc + (w * hops.(placement.(u)).(placement.(v)))
        else acc)
      0
      (Graph.Ugraph.edges static)
  in
  Alcotest.(check bool) "static no worse in weighted hops" true
    (weighted (Mapping.assignment m_static) <= weighted inc)


(* ------------------------------------------------------------------ *)
(* KL baseline and LPGS partitioning                                   *)

let test_kl_bipartition () =
  (* two cliques joined by one light edge: KL must find the obvious cut *)
  let g = Ugraph.create 8 in
  for u = 0 to 3 do
    for v = u + 1 to 3 do
      Ugraph.add_edge ~w:10 g u v
    done
  done;
  for u = 4 to 7 do
    for v = u + 1 to 7 do
      Ugraph.add_edge ~w:10 g u v
    done
  done;
  Ugraph.add_edge ~w:1 g 1 6;
  let side = Mapper.Kl.bipartition g in
  Alcotest.(check int) "cut weight" 1 (Mapper.Kl.cut_weight g side);
  let zeros = Array.to_list side |> List.filter (( = ) 0) |> List.length in
  Alcotest.(check int) "balanced" 4 zeros

let test_kl_partition_multiway () =
  let rng = Rng.create 21 in
  let n = 24 in
  let g = Ugraph.create n in
  for _ = 0 to 3 * n do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then Ugraph.add_edge ~w:(1 + Rng.int rng 9) g u v
  done;
  List.iter
    (fun parts ->
      let cluster_of = Mapper.Kl.partition g ~parts in
      let k = 1 + Array.fold_left max 0 cluster_of in
      Alcotest.(check bool) "within parts" true (k <= parts);
      (* density: ids 0..k-1 all used *)
      let used = Array.make k false in
      Array.iter (fun c -> used.(c) <- true) cluster_of;
      Alcotest.(check bool) "dense ids" true (Array.for_all (fun b -> b) used);
      (* rough balance from recursive halving *)
      let counts = Array.make k 0 in
      Array.iter (fun c -> counts.(c) <- counts.(c) + 1) cluster_of;
      let mx = Array.fold_left max 0 counts and mn = Array.fold_left min max_int counts in
      Alcotest.(check bool) "roughly balanced" true (mx - mn <= 1 + (n / parts)))
    [ 2; 3; 4; 8 ]

let test_kl_vs_mwm_ablation () =
  (* on the workload suite, MWM-Contract should be at least competitive
     with the KL baseline on total IPC *)
  let better = ref 0 and total = ref 0 in
  List.iter
    (fun spec ->
      let tg = Workloads.task_graph_exn spec in
      let static = Taskgraph.static_graph tg in
      let procs = 8 in
      match Mapper.Mwm_contract.contract static ~procs with
      | Error _ -> ()
      | Ok r ->
        let kl = Mapper.Kl.partition static ~parts:procs in
        let kl_ipc = Mapping.total_ipc static kl in
        incr total;
        if r.Mapper.Mwm_contract.ipc <= kl_ipc then incr better)
    (Workloads.all ());
  Alcotest.(check bool)
    (Printf.sprintf "MWM no worse than KL on %d/%d" !better !total)
    true
    (2 * !better >= !total)

let test_lpgs_partition () =
  let r = Systolic.Recurrence.matmul 8 in
  let d = Result.get_ok (Systolic.Synthesis.synthesize r) in
  match Systolic.Partition.partition_lpgs r d ~max_pes:16 with
  | Error e -> Alcotest.failf "lpgs: %s" e
  | Ok p ->
    Alcotest.(check int) "16 PEs" 16 p.Systolic.Partition.physical_count;
    Alcotest.(check int) "slowdown 4" 4 p.Systolic.Partition.slowdown;
    Alcotest.(check bool) "checked" true (Systolic.Partition.check_lpgs r d p = Ok ());
    (* same arithmetic as LSGP on this symmetric case *)
    let lsgp = Result.get_ok (Systolic.Partition.partition r d ~max_pes:16) in
    Alcotest.(check int) "same slowdown as LSGP" lsgp.Systolic.Partition.slowdown
      p.Systolic.Partition.slowdown

let () =
  Alcotest.run "extensions"
    [
      ( "aggregate",
        [
          Alcotest.test_case "aggregation detection" `Quick test_is_aggregation;
          Alcotest.test_case "tree replan flattens the hot link" `Quick test_aggregate_replan;
          Alcotest.test_case "non-aggregations rejected" `Quick
            test_aggregate_rejects_non_aggregation;
        ] );
      ( "tiled",
        [
          Alcotest.test_case "factor pairs" `Quick test_factor_pairs;
          Alcotest.test_case "tile candidates" `Quick test_tiled_contract;
        ] );
      ( "refine",
        [ Alcotest.test_case "improves or preserves" `Quick test_refine_improves_or_equal ] );
      ( "relabel",
        [
          Alcotest.test_case "canned under isomorphism (matmul/Q4)" `Quick
            test_relabeled_canned;
          Alcotest.test_case "scrambled ring canonicalizes" `Quick
            test_family_match_ring_scrambled;
          Alcotest.test_case "torus detection" `Quick test_torus_family_detection;
          Alcotest.test_case "torus canned tiling" `Quick test_torus_canned_tiling;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "de Bruijn / shuffle-exchange" `Quick test_new_topologies;
          Alcotest.test_case "mapping onto them" `Quick test_mapping_onto_new_topologies;
        ] );
      ( "remap",
        [
          Alcotest.test_case "regime splitting" `Quick test_split_regimes;
          Alcotest.test_case "remapping pays off on a phase shift" `Quick
            test_remap_worthwhile;
          Alcotest.test_case "single regime declines" `Quick
            test_remap_single_regime_not_worthwhile;
        ] );
      ( "baselines2",
        [
          Alcotest.test_case "KL bipartition" `Quick test_kl_bipartition;
          Alcotest.test_case "KL multiway" `Quick test_kl_partition_multiway;
          Alcotest.test_case "MWM vs KL ablation" `Quick test_kl_vs_mwm_ablation;
          Alcotest.test_case "LPGS partition" `Quick test_lpgs_partition;
        ] );
      ( "spawning",
        [
          Alcotest.test_case "spawntree compiles" `Quick test_spawntree_compile;
          Alcotest.test_case "pretty roundtrip" `Quick test_spawntree_pretty_roundtrip;
          Alcotest.test_case "generations" `Quick test_incremental_generations;
          Alcotest.test_case "incremental vs clairvoyant" `Quick test_incremental_vs_static;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_random_taskgraphs_map_validly ] );
    ]
