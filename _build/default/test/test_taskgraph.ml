(* Tests for the task-graph model and phase expressions. *)

module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Digraph = Oregami_graph.Digraph
module Ugraph = Oregami_graph.Ugraph

open Phase_expr

let nbody_expr =
  (* ((ring; compute1)^4; chordal; compute2)^3 *)
  Repeat
    ( seq [ Repeat (Seq (Comm "ring", Exec "compute1"), 4); Comm "chordal"; Exec "compute2" ],
      3 )

let test_trace_structure () =
  let t = trace nbody_expr in
  Alcotest.(check int) "slot count" 30 (List.length t);
  Alcotest.(check int) "length agrees" 30 (length nbody_expr);
  let first = List.hd t in
  Alcotest.(check (list string)) "first slot is ring" [ "ring" ] first.comms;
  Alcotest.(check (list string)) "no execs in first slot" [] first.execs

let test_counts () =
  Alcotest.(check int) "ring count" 12 (count_comm nbody_expr "ring");
  Alcotest.(check int) "chordal count" 3 (count_comm nbody_expr "chordal");
  Alcotest.(check int) "compute1 count" 12 (count_exec nbody_expr "compute1");
  Alcotest.(check int) "compute2 count" 3 (count_exec nbody_expr "compute2");
  Alcotest.(check int) "absent phase" 0 (count_comm nbody_expr "nope")

let test_par_zip () =
  let e = Par (seq [ Comm "a"; Comm "b" ], Comm "c") in
  let t = trace e in
  Alcotest.(check int) "par length is max" 2 (List.length t);
  Alcotest.(check (list string)) "merged slot" [ "a"; "c" ] (List.hd t).comms;
  Alcotest.(check (list string)) "tail from longer side" [ "b" ] (List.nth t 1).comms;
  Alcotest.(check int) "length of par" 2 (length e)

let test_epsilon_and_repeat_zero () =
  Alcotest.(check int) "epsilon empty" 0 (List.length (trace Epsilon));
  Alcotest.(check int) "repeat zero" 0 (List.length (trace (Repeat (Comm "a", 0))));
  Alcotest.check_raises "negative repeat"
    (Invalid_argument "Phase_expr.length: negative repetition") (fun () ->
      ignore (length (Repeat (Comm "a", -1))))

let test_trace_cap () =
  Alcotest.check_raises "trace too long" (Invalid_argument "Phase_expr.trace: trace too long")
    (fun () -> ignore (trace ~max_slots:5 (Repeat (Comm "a", 10))))

let test_well_formed () =
  Alcotest.(check bool) "ok" true
    (well_formed ~comms:[ "ring"; "chordal" ] ~execs:[ "compute1"; "compute2" ] nbody_expr
    = Ok ());
  (match well_formed ~comms:[ "ring" ] ~execs:[ "compute1"; "compute2" ] nbody_expr with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undeclared phase accepted");
  match well_formed ~comms:[ "a" ] ~execs:[] (Repeat (Comm "a", -2)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative repetition accepted"

let test_to_string () =
  Alcotest.(check string) "nbody expression"
    "((ring; compute1)^4; chordal; compute2)^3" (to_string nbody_expr);
  Alcotest.(check string) "par" "a || b" (to_string (Par (Comm "a", Comm "b")));
  Alcotest.(check string) "eps" "eps" (to_string Epsilon);
  Alcotest.(check string) "par in seq parenthesized" "(a || b); c"
    (to_string (Seq (Par (Comm "a", Comm "b"), Comm "c")))

let test_names () =
  Alcotest.(check (list string)) "comm names in order" [ "ring"; "chordal" ]
    (comm_names nbody_expr);
  Alcotest.(check (list string)) "exec names" [ "compute1"; "compute2" ]
    (exec_names nbody_expr)

(* ------------------------------------------------------------------ *)

let two_phase_tg () =
  let ring = Digraph.create 4 in
  for i = 0 to 3 do
    Digraph.add_edge ~w:2 ring i ((i + 1) mod 4)
  done;
  let pairs = Digraph.create 4 in
  Digraph.add_edge ~w:5 pairs 0 2;
  Digraph.add_edge ~w:5 pairs 1 3;
  Taskgraph.make ~name:"two" ~n:4
    ~comm_phases:[ ("ring", ring); ("pairs", pairs) ]
    ~exec_phases:[ ("work", [| 1; 2; 3; 4 |]) ]
    ~expr:(seq [ Comm "ring"; Exec "work"; Repeat (Comm "pairs", 2) ])
    ()

let test_make_validations () =
  let ring = Digraph.create 4 in
  (* duplicate phase names *)
  (match
     Taskgraph.make ~name:"bad" ~n:4
       ~comm_phases:[ ("p", ring); ("p", ring) ]
       ~exec_phases:[] ~expr:(Comm "p") ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate names accepted");
  (* wrong node count *)
  (match
     Taskgraph.make ~name:"bad" ~n:5 ~comm_phases:[ ("p", ring) ] ~exec_phases:[]
       ~expr:(Comm "p") ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "node count mismatch accepted");
  (* undeclared phase in expression *)
  (match
     Taskgraph.make ~name:"bad" ~n:4 ~comm_phases:[ ("p", ring) ] ~exec_phases:[]
       ~expr:(Comm "q") ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undeclared phase accepted");
  (* wrong cost array length *)
  match
    Taskgraph.make ~name:"bad" ~n:4 ~comm_phases:[ ("p", ring) ]
      ~exec_phases:[ ("e", [| 1 |]) ] ~expr:(Comm "p") ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad cost array accepted"

let test_static_graph_scaling () =
  match two_phase_tg () with
  | Error m -> Alcotest.failf "make: %s" m
  | Ok tg ->
    (* ring occurs once (w 2), pairs occurs twice (w 5 each) *)
    let s = Taskgraph.static_graph tg in
    Alcotest.(check int) "ring edge weight" 2 (Ugraph.weight s 0 1);
    Alcotest.(check int) "pairs edge scaled by occurrences" 10 (Ugraph.weight s 0 2);
    let u = Taskgraph.static_graph_unit tg in
    Alcotest.(check int) "unit graph unscaled" 5 (Ugraph.weight u 0 2);
    Alcotest.(check int) "total volume" (8 + 20) (Taskgraph.total_volume tg);
    Alcotest.(check int) "total exec" 10 (Taskgraph.total_exec_cost tg);
    Alcotest.(check int) "max comm degree" 3 (Taskgraph.max_comm_degree tg);
    Alcotest.(check int) "phase volume" 10 (Taskgraph.phase_volume tg "pairs")

let test_lookups () =
  match two_phase_tg () with
  | Error m -> Alcotest.failf "make: %s" m
  | Ok tg ->
    Alcotest.(check (list string)) "comm names" [ "ring"; "pairs" ] (Taskgraph.comm_names tg);
    Alcotest.(check (list string)) "exec names" [ "work" ] (Taskgraph.exec_names tg);
    Alcotest.(check bool) "comm lookup" true (Taskgraph.comm_phase tg "ring" <> None);
    Alcotest.(check bool) "missing lookup" true (Taskgraph.comm_phase tg "zzz" = None)

let () =
  Alcotest.run "taskgraph"
    [
      ( "phase_expr",
        [
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          Alcotest.test_case "occurrence counts" `Quick test_counts;
          Alcotest.test_case "parallel zip" `Quick test_par_zip;
          Alcotest.test_case "epsilon and zero repeats" `Quick test_epsilon_and_repeat_zero;
          Alcotest.test_case "trace cap" `Quick test_trace_cap;
          Alcotest.test_case "well-formedness" `Quick test_well_formed;
          Alcotest.test_case "printing" `Quick test_to_string;
          Alcotest.test_case "name collection" `Quick test_names;
        ] );
      ( "taskgraph",
        [
          Alcotest.test_case "validations" `Quick test_make_validations;
          Alcotest.test_case "static graph scaling" `Quick test_static_graph_scaling;
          Alcotest.test_case "lookups" `Quick test_lookups;
        ] );
    ]
