(* Tests for the two research threads the paper describes as open work
   in its own sections: syntactic Cayley detection (§4.2.2: avoid
   computing cycle notations) and partitioning systolic arrays for
   smaller hardware (§4.2.1). *)

open Oregami
module Analyze = Larcs.Analyze
module Recurrence = Systolic.Recurrence
module Synthesis = Systolic.Synthesis
module Partition = Systolic.Partition

(* ------------------------------------------------------------------ *)
(* syntactic Cayley                                                    *)

let test_syntactic_voting () =
  let c = Workloads.compile_exn (Workloads.voting ~k:3) in
  match Analyze.syntactic_cayley c with
  | None -> Alcotest.fail "expected translations"
  | Some tr ->
    Alcotest.(check int) "modulus" 8 tr.Analyze.tr_modulus;
    Alcotest.(check (list (pair string int))) "offsets"
      [ ("comm1", 1); ("comm2", 2); ("comm3", 4) ]
      tr.Analyze.tr_offsets;
    Alcotest.(check bool) "cayley by gcd" true (Analyze.syntactic_is_cayley tr)

let test_syntactic_agrees_with_closure () =
  (* the O(1) syntactic verdict must agree with the O(n^2) closure on
     translation programs *)
  List.iter
    (fun (n, offsets) ->
      let phases =
        List.mapi
          (fun i c ->
            Printf.sprintf "comphase p%d { t i -> t ((i + %d) mod n); }" i c)
          offsets
      in
      let expr = String.concat "; " (List.mapi (fun i _ -> Printf.sprintf "p%d" i) offsets) in
      let src =
        Printf.sprintf "algorithm g(n);\nnodetype t : 0 .. n-1;\n%s\nphases %s;\n"
          (String.concat "\n" phases) expr
      in
      let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", n) ] src) in
      let syntactic =
        match Analyze.syntactic_cayley c with
        | Some tr -> Analyze.syntactic_is_cayley tr
        | None -> Alcotest.failf "n=%d: expected translations" n
      in
      let closure =
        match (Analyze.analyze c).Analyze.cayley with
        | Some cy -> cy.Analyze.is_cayley
        | None -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d offsets=%s agree" n
           (String.concat "," (List.map string_of_int offsets)))
        closure syntactic)
    [
      (8, [ 1; 2; 4 ]);
      (8, [ 2; 4 ]);
      (* gcd 2: subgroup only, not transitive *)
      (9, [ 3; 6 ]);
      (* gcd 3 *)
      (12, [ 4; 3 ]);
      (* gcd 1 *)
      (15, [ 5 ]);
      (* gcd 5 *)
    ]

let test_syntactic_declines () =
  (* xor-based FFT phases are bijections but not modular translations *)
  let c = Workloads.compile_exn (Workloads.fft ~d:3) in
  Alcotest.(check bool) "fft declined" true (Analyze.syntactic_cayley c = None);
  (* 2-D programs decline *)
  let c = Workloads.compile_exn (Workloads.jacobi ~n:4 ~iters:1) in
  Alcotest.(check bool) "jacobi declined" true (Analyze.syntactic_cayley c = None);
  (* guarded rules decline *)
  let src =
    "algorithm g(n);\nnodetype t : 0 .. n-1;\ncomphase p { t i -> t ((i+1) mod n) when i > 0; }\nphases p;\n"
  in
  let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 6) ] src) in
  Alcotest.(check bool) "guard declined" true (Analyze.syntactic_cayley c = None)

let test_syntactic_subtraction_form () =
  let src =
    "algorithm g(n);\nnodetype t : 0 .. n-1;\ncomphase back { t i -> t ((i - 1) mod n); }\nphases back;\n"
  in
  let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 10) ] src) in
  match Analyze.syntactic_cayley c with
  | Some tr ->
    Alcotest.(check (list (pair string int))) "normalized offset" [ ("back", 9) ]
      tr.Analyze.tr_offsets
  | None -> Alcotest.fail "subtraction form not recognised"

(* ------------------------------------------------------------------ *)
(* LSGP partitioning                                                   *)

let test_partition_matmul () =
  let r = Recurrence.matmul 8 in
  let d = Result.get_ok (Synthesis.synthesize r) in
  match Partition.partition r d ~max_pes:16 with
  | Error e -> Alcotest.failf "partition: %s" e
  | Ok p ->
    Alcotest.(check int) "16 physical PEs" 16 p.Partition.physical_count;
    Alcotest.(check int) "slowdown 4" 4 p.Partition.slowdown;
    Alcotest.(check int) "latency scales" (4 * d.Synthesis.latency) p.Partition.latency;
    Alcotest.(check (list int)) "balanced 2x2 blocks" [ 2; 2 ]
      (Array.to_list p.Partition.block);
    Alcotest.(check bool) "check passes" true (Partition.check r d p = Ok ())

let test_partition_degenerate () =
  let r = Recurrence.matmul 4 in
  let d = Result.get_ok (Synthesis.synthesize r) in
  (* enough PEs: no slowdown *)
  (match Partition.partition r d ~max_pes:64 with
  | Ok p ->
    Alcotest.(check int) "no slowdown" 1 p.Partition.slowdown;
    Alcotest.(check bool) "check" true (Partition.check r d p = Ok ())
  | Error e -> Alcotest.failf "partition: %s" e);
  (* a single PE serializes everything *)
  match Partition.partition r d ~max_pes:1 with
  | Ok p ->
    Alcotest.(check int) "fully sequential" 16 p.Partition.slowdown;
    Alcotest.(check int) "one PE" 1 p.Partition.physical_count;
    Alcotest.(check bool) "check" true (Partition.check r d p = Ok ())
  | Error e -> Alcotest.failf "partition 1: %s" e

let test_partition_bad_args () =
  let r = Recurrence.matmul 3 in
  let d = Result.get_ok (Synthesis.synthesize r) in
  match Partition.partition r d ~max_pes:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "max_pes 0 accepted"

let test_partition_sweep () =
  (* slowdown decreases monotonically as hardware grows *)
  let r = Recurrence.matmul 6 in
  let d = Result.get_ok (Synthesis.synthesize r) in
  let slowdowns =
    List.map
      (fun max_pes ->
        match Partition.partition r d ~max_pes with
        | Ok p ->
          Alcotest.(check bool) "valid" true (Partition.check r d p = Ok ());
          p.Partition.slowdown
        | Error e -> Alcotest.failf "pes=%d: %s" max_pes e)
      [ 1; 4; 9; 18; 36 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %s" (String.concat "," (List.map string_of_int slowdowns)))
    true (non_increasing slowdowns);
  Alcotest.(check int) "full hardware = no slowdown" 1 (List.nth slowdowns 4)

let () =
  Alcotest.run "paper_threads"
    [
      ( "syntactic_cayley",
        [
          Alcotest.test_case "voting offsets" `Quick test_syntactic_voting;
          Alcotest.test_case "agrees with the closure" `Quick
            test_syntactic_agrees_with_closure;
          Alcotest.test_case "declines non-translations" `Quick test_syntactic_declines;
          Alcotest.test_case "subtraction form" `Quick test_syntactic_subtraction_form;
        ] );
      ( "partition",
        [
          Alcotest.test_case "matmul 64 -> 16 PEs" `Quick test_partition_matmul;
          Alcotest.test_case "degenerate sizes" `Quick test_partition_degenerate;
          Alcotest.test_case "bad arguments" `Quick test_partition_bad_args;
          Alcotest.test_case "hardware sweep" `Quick test_partition_sweep;
        ] );
    ]
