The workloads table lists the built-in programs:

  $ oregami workloads | head -4
  name       tasks                                                          description
  ---------  -----  -------------------------------------------------------------------
  nbody         15                               n-body on a chordal ring (paper Fig 2)
  matmul        36             Cannon-style matrix multiplication on an n x n task mesh

Describing a topology:

  $ oregami topo hypercube:2
  hypercube(2): 4 processors, 4 links, degree 2, diameter 2
      0 : 1 2
      1 : 0 3
      2 : 0 3
      3 : 1 2

Mapping a built-in workload prints the mapping and METRICS report:

  $ oregami map voting -t hypercube:2
  mapping "voting" onto hypercube(2) via group-theoretic
    8 tasks -> 4 clusters -> 4 processors
    routed edges: 16, dilation max 2 avg 1.250
  
  metric                             value
  -----------------------  ---------------
  strategy                 group-theoretic
  tasks                                  8
  clusters                               4
  processors                             4
  max tasks/proc                         2
  load imbalance                     1.000
  total IPC volume                      16
  dilation (max)                         2
  dilation (avg)                     1.250
  max link contention                    5
  completion time (model)               24

Analysis of the regular structure (Cayley detection):

  $ oregami analyze voting
  analysis:
    detected family: none
    phase comm1: bijective (0 1 2 3 4 5 6 7)
    phase comm2: bijective (0 2 4 6)(1 3 5 7)
    phase comm3: bijective (0 4)(1 5)(2 6)(3 7)
    group closure: |G| = 8, regular action = true, uniform cycles = true, Cayley = true
    affine communication: no

Unknown topologies produce an error:

  $ oregami map voting -t nosuch:4
  oregami: unknown topology family "nosuch"
  [1]
