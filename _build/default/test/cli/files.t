LaRCS source files parse back to canonical form:

  $ oregami parse ./nbody.larcs | head -3
  algorithm nbody(n, s);
  nodetype body : 0 .. n - 1 nodesymmetric;
  comphase ring {

Compiling a file needs its parameters bound:

  $ oregami dump ./nbody.larcs
  oregami: missing binding for parameter "n"
  [1]

  $ oregami dump ./nbody.larcs -p n=4 -p s=1 | head -6
  (algorithm nbody
    (bindings (s 1) (n 4))
    (tasks 4)
    (nodetype body (offset 0) (count 4) (dims (0 3)))
    (comphase ring
      (edge 0 1 (volume 1))

Mapping a 2-D stencil file onto a mesh uses the canned tiling:

  $ oregami map ./jacobi.larcs -p n=8 -p t=2 -t mesh:4x4 | head -3
  mapping "jacobi" onto mesh(4x4) via canned:mesh
    64 tasks -> 16 clusters -> 16 processors
    routed edges: 96, dilation max 1 avg 1.000

The routed edges of one phase:

  $ oregami routes ./reduce.larcs -p n=8 -t hypercube:3 --phase gather | head -5
  edge    vol       route  links
  ------  ---  ----------  -----
  1 -> 0   10        1->0      0
  2 -> 0   10        2->0      1
  3 -> 0   10        4->0      2

Simulation of the mapping:

  $ oregami simulate ./reduce.larcs -p n=8 -t hypercube:3 | head -3
  metric                 value
  ---------------------  -----
  simulated makespan       147
