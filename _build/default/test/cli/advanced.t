Systolic synthesis from the CLI:

  $ oregami systolic matmul:4 --max-pes 4
  systolic design for matmul(4)
    schedule lambda = (1,1,1)
    projection u = (-1,0,0)
    processors = 16, latency = 10, nearest-neighbour = true
    channel a    offset (0,1) delay 1
    channel b    offset (0,0) delay 1
    channel c    offset (-1,0) delay 1
    verified: injective space-time map, causal dependences
  
  LSGP partition onto 4 PEs: blocks 2x2, slowdown 4, latency 40
  partition checked

  $ oregami systolic fir:8x3
  systolic design for fir(8,3)
    schedule lambda = (2,1)
    projection u = (-1,0)
    processors = 3, latency = 17, nearest-neighbour = true
    channel w    offset (0) delay 2
    channel x    offset (1) delay 1
    channel y    offset (-1) delay 1
    verified: injective space-time map, causal dependences

  $ oregami systolic nosuch:4
  oregami: unknown recurrence (matmul:N, convolution:NxK, fir:NxK)
  [1]

Aggregate re-planning of an all-to-root phase:

  $ oregami aggregate ./reduce.larcs -p n=16 -t hypercube:3 --phase gather | head -4
  mapping                  hot link volume  simulated makespan
  -----------------------  ---------------  ------------------
  naive all-to-root                     60                 228
  spanning-tree reduction               10                  63

Phase-shift remapping report:

  $ oregami remap nbody -t hypercube:3 | tail -1
  remapping does not pay off

The group contraction internalizes comm3 completely (paper Fig 4c), so its
timeline is empty; comm1 crosses processors:

  $ oregami routes voting -t hypercube:2 --phase comm3 --timeline | tail -1
  phase "comm3": no cross-processor traffic

  $ oregami routes voting -t hypercube:2 --phase comm1 --timeline | tail -6
  0->2     ########################################....................
  2->0     ....................####################....................
  1->3     ########################################....................
  3->1     ############################################################
  2->3     ########################################....................
  3->2     ####################........................................
