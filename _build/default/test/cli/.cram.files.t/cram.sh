  $ oregami parse ./nbody.larcs | head -3
  $ oregami dump ./nbody.larcs
  $ oregami dump ./nbody.larcs -p n=4 -p s=1 | head -6
  $ oregami map ./jacobi.larcs -p n=8 -p t=2 -t mesh:4x4 | head -3
  $ oregami routes ./reduce.larcs -p n=8 -t hypercube:3 --phase gather | head -5
  $ oregami simulate ./reduce.larcs -p n=8 -t hypercube:3 | head -3
