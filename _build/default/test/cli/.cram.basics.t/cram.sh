  $ oregami workloads | head -4
  $ oregami topo hypercube:2
  $ oregami map voting -t hypercube:2
  $ oregami analyze voting
  $ oregami map voting -t nosuch:4
