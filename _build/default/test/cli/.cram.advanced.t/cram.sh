  $ oregami systolic matmul:4 --max-pes 4
  $ oregami systolic fir:8x3
  $ oregami systolic nosuch:4
  $ oregami aggregate ./reduce.larcs -p n=16 -t hypercube:3 --phase gather | head -4
  $ oregami remap nbody -t hypercube:3 | tail -1
  $ oregami routes voting -t hypercube:2 --phase comm3 --timeline | tail -1
  $ oregami routes voting -t hypercube:2 --phase comm1 --timeline | tail -6
