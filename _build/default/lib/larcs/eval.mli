(** Evaluation of LaRCS arithmetic expressions and conditions under a
    variable binding (algorithm parameters, imported variables, and
    rule index variables).

    [mod] is Euclidean (always non-negative for positive modulus), so
    [(i - 1) mod n] wraps as ring programs expect; [/] truncates toward
    zero; [pow] requires a non-negative exponent. *)

type env = (string * int) list

val expr : env -> Ast.expr -> (int, string) result

val cond : env -> Ast.cond -> (bool, string) result

val expr_exn : env -> Ast.expr -> int
(** Raises [Failure] with the error message. *)

val cond_exn : env -> Ast.cond -> bool

val builtins : string list
(** Recognized function names: min, max, abs, pow, log2. *)
