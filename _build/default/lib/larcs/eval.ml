type env = (string * int) list

let builtins = [ "min"; "max"; "abs"; "pow"; "log2" ]

let euclid_mod a b =
  if b = 0 then Error "mod by zero"
  else begin
    let m = a mod b in
    Ok (if m < 0 then m + abs b else m)
  end

let pow_int a b =
  if b < 0 then Error "pow with negative exponent"
  else begin
    let rec go acc base b =
      if b = 0 then acc
      else go (if b land 1 = 1 then acc * base else acc) (base * base) (b lsr 1)
    in
    Ok (go 1 a b)
  end

let log2_floor a =
  if a <= 0 then Error "log2 of non-positive value"
  else begin
    let rec go v acc = if v <= 1 then acc else go (v / 2) (acc + 1) in
    Ok (go a 0)
  end

let rec expr env e =
  let ( let* ) = Result.bind in
  match e with
  | Ast.Int v -> Ok v
  | Ast.Var name -> begin
    match List.assoc_opt name env with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "unbound variable %S" name)
  end
  | Ast.Neg a ->
    let* v = expr env a in
    Ok (-v)
  | Ast.Bin (op, a, b) -> begin
    let* va = expr env a in
    let* vb = expr env b in
    match op with
    | Ast.Add -> Ok (va + vb)
    | Ast.Sub -> Ok (va - vb)
    | Ast.Mul -> Ok (va * vb)
    | Ast.Div -> if vb = 0 then Error "division by zero" else Ok (va / vb)
    | Ast.Mod -> euclid_mod va vb
    | Ast.Xor -> Ok (va lxor vb)
    | Ast.Pow -> pow_int va vb
  end
  | Ast.Call (f, args) -> begin
    let* vals =
      List.fold_left
        (fun acc a ->
          let* l = acc in
          let* v = expr env a in
          Ok (v :: l))
        (Ok []) args
    in
    let vals = List.rev vals in
    match (f, vals) with
    | "min", [ a; b ] -> Ok (min a b)
    | "max", [ a; b ] -> Ok (max a b)
    | "abs", [ a ] -> Ok (abs a)
    | "pow", [ a; b ] -> pow_int a b
    | "log2", [ a ] -> log2_floor a
    | ("min" | "max" | "abs" | "pow" | "log2"), _ ->
      Error (Printf.sprintf "wrong number of arguments to %s" f)
    | other, _ -> Error (Printf.sprintf "unknown function %S" other)
  end

let rec cond env c =
  let ( let* ) = Result.bind in
  match c with
  | Ast.Cmp (op, a, b) -> begin
    let* va = expr env a in
    let* vb = expr env b in
    match op with
    | Ast.Eq -> Ok (va = vb)
    | Ast.Ne -> Ok (va <> vb)
    | Ast.Lt -> Ok (va < vb)
    | Ast.Le -> Ok (va <= vb)
    | Ast.Gt -> Ok (va > vb)
    | Ast.Ge -> Ok (va >= vb)
  end
  | Ast.And (a, b) ->
    let* va = cond env a in
    if va then cond env b else Ok false
  | Ast.Or (a, b) ->
    let* va = cond env a in
    if va then Ok true else cond env b
  | Ast.Not a ->
    let* va = cond env a in
    Ok (not va)

let expr_exn env e = match expr env e with Ok v -> v | Error m -> failwith m

let cond_exn env c = match cond env c with Ok v -> v | Error m -> failwith m
