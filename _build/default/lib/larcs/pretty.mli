(** Pretty-printing of LaRCS programs back to concrete syntax. *)

val expr : Ast.expr -> string

val cond : Ast.cond -> string

val pexpr : Ast.pexpr -> string

val program : Ast.program -> string
(** Valid LaRCS source: [parse (program p)] re-parses to an equal AST
    (modulo expression parenthesization). *)
