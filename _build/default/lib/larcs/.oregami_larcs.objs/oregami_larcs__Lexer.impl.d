lib/larcs/lexer.ml: List Printf String
