lib/larcs/pretty.mli: Ast
