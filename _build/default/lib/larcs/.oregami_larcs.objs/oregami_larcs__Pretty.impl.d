lib/larcs/pretty.ml: Ast Buffer List Printf String
