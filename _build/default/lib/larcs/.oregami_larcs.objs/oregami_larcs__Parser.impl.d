lib/larcs/parser.ml: Array Ast Eval Lexer List Printf
