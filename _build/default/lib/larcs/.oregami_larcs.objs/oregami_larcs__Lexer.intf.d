lib/larcs/lexer.mli:
