lib/larcs/eval.mli: Ast
