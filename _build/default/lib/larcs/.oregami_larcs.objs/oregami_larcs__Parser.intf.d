lib/larcs/parser.mli: Ast
