lib/larcs/compile.mli: Ast Oregami_taskgraph
