lib/larcs/analyze.ml: Array Ast Compile Eval Format List Option Oregami_graph Oregami_perm Oregami_taskgraph Oregami_topology
