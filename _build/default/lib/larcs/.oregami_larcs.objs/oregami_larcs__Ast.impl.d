lib/larcs/ast.ml: Hashtbl List
