lib/larcs/compile.ml: Array Ast Buffer Eval List Option Oregami_graph Oregami_taskgraph Parser Printf Result String
