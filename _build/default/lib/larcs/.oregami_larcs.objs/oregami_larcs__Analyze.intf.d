lib/larcs/analyze.mli: Compile Format Oregami_perm Oregami_taskgraph
