lib/larcs/eval.ml: Ast List Printf Result
