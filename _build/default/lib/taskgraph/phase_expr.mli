(** Phase expressions (paper §3, item 6): the dynamic behaviour of a
    computation over its communication and execution phases.

    [((ring; compute1)^((n+1)/2); chordal; compute2)^s] is represented
    with repetition counts already evaluated to integers (the LaRCS
    compiler evaluates parameter expressions before building one). *)

type t =
  | Epsilon  (** idle task *)
  | Comm of string  (** one communication phase, by name *)
  | Exec of string  (** one execution phase, by name *)
  | Seq of t * t
  | Repeat of t * int
  | Par of t * t

type slot = { comms : string list; execs : string list }
(** One synchronous step of the computation: the communication phases
    and execution phases active simultaneously (normally singletons;
    parallel composition merges slots). *)

val seq : t list -> t
(** Right-nested sequence; [seq [] = Epsilon]. *)

val comm_names : t -> string list
(** Distinct communication phase names, in first-occurrence order. *)

val exec_names : t -> string list

val trace : ?max_slots:int -> t -> slot list
(** Flattens to the synchronous slot sequence: [Seq] concatenates,
    [Repeat] unrolls, [Par] zips slot-by-slot (the shorter side idles).
    Raises [Invalid_argument] if the unrolled length would exceed
    [max_slots] (default 100_000) or a repetition count is negative. *)

val length : t -> int
(** Number of slots of {!trace} without materializing it. *)

val count_comm : t -> string -> int
(** Total occurrences of a communication phase across the trace. *)

val count_exec : t -> string -> int

val well_formed : comms:string list -> execs:string list -> t -> (unit, string) result
(** Every referenced phase name is declared and repetition counts are
    non-negative. *)

val to_string : t -> string
(** Concrete syntax, e.g. ["((ring; compute1)^4; chordal; compute2)^10"]. *)

val pp : Format.formatter -> t -> unit
