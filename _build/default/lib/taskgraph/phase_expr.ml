type t =
  | Epsilon
  | Comm of string
  | Exec of string
  | Seq of t * t
  | Repeat of t * int
  | Par of t * t

type slot = { comms : string list; execs : string list }

let seq = function
  | [] -> Epsilon
  | x :: rest -> List.fold_left (fun acc e -> Seq (acc, e)) x rest

let collect pick e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec go = function
    | Epsilon -> ()
    | Comm c -> if pick then add c
    | Exec x -> if not pick then add x
    | Seq (a, b) | Par (a, b) ->
      go a;
      go b
    | Repeat (a, _) -> go a
  in
  go e;
  List.rev !out

let comm_names e = collect true e

let exec_names e = collect false e

let length e =
  let rec go = function
    | Epsilon -> 0
    | Comm _ | Exec _ -> 1
    | Seq (a, b) -> go a + go b
    | Repeat (a, k) ->
      if k < 0 then invalid_arg "Phase_expr.length: negative repetition";
      k * go a
    | Par (a, b) -> max (go a) (go b)
  in
  go e

let trace ?(max_slots = 100_000) e =
  if length e > max_slots then invalid_arg "Phase_expr.trace: trace too long";
  let merge_slot a b = { comms = a.comms @ b.comms; execs = a.execs @ b.execs } in
  let rec zip xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> merge_slot x y :: zip xs ys
  in
  let rec go = function
    | Epsilon -> []
    | Comm c -> [ { comms = [ c ]; execs = [] } ]
    | Exec x -> [ { comms = []; execs = [ x ] } ]
    | Seq (a, b) -> go a @ go b
    | Repeat (a, k) ->
      if k < 0 then invalid_arg "Phase_expr.trace: negative repetition"
      else begin
        let body = go a in
        let rec rep k acc = if k = 0 then acc else rep (k - 1) (body @ acc) in
        rep k []
      end
    | Par (a, b) -> zip (go a) (go b)
  in
  go e

let count_in_trace select e name =
  List.fold_left
    (fun acc slot ->
      acc + List.length (List.filter (( = ) name) (select slot)))
    0 (trace e)

let count_comm e name = count_in_trace (fun s -> s.comms) e name

let count_exec e name = count_in_trace (fun s -> s.execs) e name

let well_formed ~comms ~execs e =
  let rec go = function
    | Epsilon -> Ok ()
    | Comm c ->
      if List.mem c comms then Ok ()
      else Error (Printf.sprintf "undeclared communication phase %S" c)
    | Exec x ->
      if List.mem x execs then Ok ()
      else Error (Printf.sprintf "undeclared execution phase %S" x)
    | Seq (a, b) | Par (a, b) -> ( match go a with Ok () -> go b | Error _ as e -> e)
    | Repeat (a, k) ->
      if k < 0 then Error (Printf.sprintf "negative repetition count %d" k) else go a
  in
  go e

let rec to_string = function
  | Epsilon -> "eps"
  | Comm c -> c
  | Exec x -> x
  | Seq (a, b) -> Printf.sprintf "%s; %s" (seq_part a) (seq_part b)
  | Repeat (a, k) -> Printf.sprintf "%s^%d" (atom_part a) k
  | Par (a, b) -> Printf.sprintf "%s || %s" (atom_part a) (atom_part b)

and seq_part e =
  match e with
  | Par _ -> "(" ^ to_string e ^ ")"
  | Epsilon | Comm _ | Exec _ | Seq _ | Repeat _ -> to_string e

and atom_part e =
  match e with
  | Epsilon | Comm _ | Exec _ | Repeat _ -> to_string e
  | Seq _ | Par _ -> "(" ^ to_string e ^ ")"

let pp fmt e = Format.pp_print_string fmt (to_string e)
