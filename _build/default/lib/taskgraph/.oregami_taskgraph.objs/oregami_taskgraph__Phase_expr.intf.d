lib/taskgraph/phase_expr.mli: Format
