lib/taskgraph/phase_expr.ml: Format Hashtbl List Printf
