lib/taskgraph/taskgraph.ml: Array Format List Oregami_graph Phase_expr Printf Result
