lib/taskgraph/taskgraph.mli: Format Oregami_graph Phase_expr
