let encode i = i lxor (i lsr 1)

let decode g =
  let rec go acc g = if g = 0 then acc else go (acc lxor g) (g lsr 1) in
  go 0 g

let rank_in_cube bits i =
  let g = encode i in
  if g lsr bits <> 0 then invalid_arg "Gray.rank_in_cube: value does not fit"
  else g

let sequence bits = Array.init (1 lsl bits) encode

let differ_bit a b =
  let x = a lxor b in
  if x = 0 then None
  else if x land (x - 1) <> 0 then None
  else begin
    let rec idx x acc = if x = 1 then acc else idx (x lsr 1) (acc + 1) in
    Some (idx x 0)
  end
