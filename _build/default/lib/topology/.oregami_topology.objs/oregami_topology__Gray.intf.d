lib/topology/gray.mli:
