lib/topology/topology.mli: Format Oregami_graph
