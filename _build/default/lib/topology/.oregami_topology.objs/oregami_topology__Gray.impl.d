lib/topology/gray.ml: Array
