lib/topology/routes.mli: Hashtbl Topology
