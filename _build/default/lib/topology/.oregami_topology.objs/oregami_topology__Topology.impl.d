lib/topology/topology.ml: Array Float Format Hashtbl List Option Oregami_graph Printf Result String
