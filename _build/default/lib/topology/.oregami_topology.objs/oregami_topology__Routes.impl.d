lib/topology/routes.ml: Hashtbl List Oregami_graph Topology
