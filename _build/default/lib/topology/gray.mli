(** Binary-reflected Gray codes.

    Used by the canned embeddings: consecutive Gray codewords differ in
    exactly one bit, so a ring (or a mesh row) maps to a hypercube with
    dilation 1. *)

val encode : int -> int
(** [encode i] is the i-th Gray codeword. *)

val decode : int -> int
(** Inverse of {!encode}. *)

val rank_in_cube : int -> int -> int
(** [rank_in_cube bits i] = [encode i] checked to fit in [bits] bits
    (raises [Invalid_argument] otherwise). *)

val sequence : int -> int array
(** [sequence bits] is the full Gray sequence of length [2^bits]. *)

val differ_bit : int -> int -> int option
(** [differ_bit a b] is [Some k] when [a] and [b] differ in exactly bit
    [k], [None] otherwise. *)
