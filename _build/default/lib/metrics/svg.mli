(** SVG rendering of topologies and mappings — the stand-in for the
    paper's colour display ("actual, physical colors are used by
    METRICS to display the phase behavior", §2).

    Pure string generation, no I/O beyond {!save}: processors are
    placed with {!Oregami_topology.Topology.layout}, links drawn with
    stroke width proportional to carried volume, processors shaded by
    execution load, and each communication phase assigned its own
    colour. *)

val topology : Oregami_topology.Topology.t -> string
(** A standalone SVG document of the bare network. *)

val mapping : Oregami_mapper.Mapping.t -> string
(** The mapped computation: processors labelled with their task lists
    and shaded by execution load; every link's stroke scaled by the
    total volume it carries over the trace; one colour per
    communication phase (mixed links get the heavier phase's colour);
    a legend of phases. *)

val save : string -> string -> unit
(** [save path svg] writes the document to a file. *)
