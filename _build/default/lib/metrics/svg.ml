module Mapping = Oregami_mapper.Mapping
module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Ugraph = Oregami_graph.Ugraph

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b"; "#e377c2";
     "#17becf" |]

let phase_colour i = palette.(i mod Array.length palette)

(* scale layout coordinates into a canvas with margins *)
let scaled_positions topo =
  let layout = Topology.layout topo in
  let xs = Array.map fst layout and ys = Array.map snd layout in
  let min_a = Array.fold_left min infinity and max_a = Array.fold_left max neg_infinity in
  let x0 = min_a xs and x1 = max_a xs and y0 = min_a ys and y1 = max_a ys in
  let spanx = Float.max 1e-6 (x1 -. x0) and spany = Float.max 1e-6 (y1 -. y0) in
  let side = 520.0 and margin = 60.0 in
  ( Array.map
      (fun (x, y) ->
        ( margin +. ((x -. x0) /. spanx *. side),
          margin +. ((y -. y0) /. spany *. side) ))
      layout,
    side +. (2.0 *. margin) )

let header size extra_height =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n\
     <rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n"
    size (size +. extra_height) size (size +. extra_height)

let footer = "</svg>\n"

let line buf ?(colour = "#999") ?(width = 1.5) (x1, y1) (x2, y2) =
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"%.1f\"/>\n"
       x1 y1 x2 y2 colour width)

let circle buf ?(fill = "#eef") ?(r = 16.0) (x, y) =
  Buffer.add_string buf
    (Printf.sprintf
       "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\" stroke=\"#333\" stroke-width=\"1\"/>\n"
       x y r fill)

let text buf ?(size = 11) ?(fill = "#111") ?(anchor = "middle") (x, y) s =
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%d\" fill=\"%s\" text-anchor=\"%s\" font-family=\"monospace\">%s</text>\n"
       x y size fill anchor s)

let topology topo =
  let pos, size = scaled_positions topo in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header size 0.0);
  for l = 0 to Topology.link_count topo - 1 do
    let u, v = Topology.link_endpoints topo l in
    line buf pos.(u) pos.(v)
  done;
  Array.iteri
    (fun p xy ->
      circle buf xy;
      text buf xy (string_of_int p))
    pos;
  text buf ~anchor:"start" ~size:14 (10.0, 20.0) (Topology.name topo);
  Buffer.add_string buf footer;
  Buffer.contents buf

let mapping (m : Mapping.t) =
  let topo = m.Mapping.topo in
  let tg = m.Mapping.tg in
  let pos, size = scaled_positions topo in
  let buf = Buffer.create 8192 in
  let phases = Taskgraph.comm_names tg in
  let legend_height = 24.0 +. (16.0 *. float_of_int (List.length phases)) in
  Buffer.add_string buf (header size legend_height);
  (* per-link dominant phase and volume *)
  let nlinks = Topology.link_count topo in
  let nphases = List.length phases in
  let per_phase = Array.make_matrix nlinks (max 1 nphases) 0 in
  List.iteri
    (fun pi phase ->
      match List.find_opt (fun pr -> pr.Mapping.pr_phase = phase) m.Mapping.routings with
      | None -> ()
      | Some pr ->
        List.iter
          (fun re ->
            List.iter
              (fun l -> per_phase.(l).(pi) <- per_phase.(l).(pi) + re.Mapping.re_volume)
              re.Mapping.re_route.Routes.links)
          pr.Mapping.pr_edges)
    phases;
  let volume = Array.map (Array.fold_left ( + ) 0) per_phase in
  let dominant =
    Array.map
      (fun row ->
        let best = ref (-1) and best_v = ref 0 in
        Array.iteri
          (fun pi v ->
            if v > !best_v then begin
              best := pi;
              best_v := v
            end)
          row;
        !best)
      per_phase
  in
  let max_volume = Array.fold_left max 1 volume in
  for l = 0 to nlinks - 1 do
    let u, v = Topology.link_endpoints topo l in
    let colour = if dominant.(l) >= 0 then phase_colour dominant.(l) else "#bbb" in
    let width = 1.0 +. (6.0 *. float_of_int volume.(l) /. float_of_int max_volume) in
    line buf ~colour ~width pos.(u) pos.(v)
  done;
  (* processors shaded by execution load *)
  let load = Metrics.load_metrics m in
  let max_load = Array.fold_left max 1 load.Metrics.exec_per_proc in
  let tasks = Mapping.tasks_on_proc m in
  Array.iteri
    (fun p xy ->
      let frac = float_of_int load.Metrics.exec_per_proc.(p) /. float_of_int max_load in
      let shade = 240 - int_of_float (140.0 *. frac) in
      circle buf ~r:18.0 ~fill:(Printf.sprintf "rgb(%d,%d,255)" shade shade) xy;
      text buf (fst xy, snd xy -. 2.0) (string_of_int p);
      let label =
        match tasks.(p) with
        | [] -> "-"
        | l ->
          let s = String.concat "," (List.map string_of_int l) in
          if String.length s > 12 then String.sub s 0 11 ^ ".." else s
      in
      text buf ~size:9 ~fill:"#444" (fst xy, snd xy +. 10.0) label)
    pos;
  text buf ~anchor:"start" ~size:14 (10.0, 20.0)
    (Printf.sprintf "%s on %s (%s)" tg.Taskgraph.tg_name (Topology.name topo)
       m.Mapping.strategy);
  (* legend *)
  List.iteri
    (fun pi phase ->
      let y = size +. 10.0 +. (16.0 *. float_of_int pi) in
      line buf ~colour:(phase_colour pi) ~width:4.0 (20.0, y) (60.0, y);
      text buf ~anchor:"start" (70.0, y +. 4.0) phase)
    phases;
  Buffer.add_string buf footer;
  Buffer.contents buf

let save path svg =
  let oc = open_out path in
  output_string oc svg;
  close_out oc
