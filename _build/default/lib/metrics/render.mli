(** ASCII rendering of mappings — the stand-in for the METRICS colour
    display on the Mac II.  Everything returns plain strings suitable
    for a terminal. *)

val topology : Oregami_topology.Topology.t -> string
(** The network: mesh-like topologies as a grid with link glyphs,
    others as an adjacency list. *)

val mapping : Oregami_mapper.Mapping.t -> string
(** Processors with their task lists; meshes drawn as a grid of cells. *)

val link_loads : Oregami_mapper.Mapping.t -> string
(** Per-link volume bar chart with endpoint labels. *)

val phase_edges : Oregami_mapper.Mapping.t -> string -> string
(** One communication phase's routed edges:
    [task -> task : proc path (links)]. *)

val timeline : ?width:int -> Oregami_mapper.Mapping.t -> string -> string
(** ASCII Gantt of one occurrence of a communication phase: one row per
    busy directed channel, blocks marking transmission intervals under
    the store-and-forward simulator — METRICS' "focus on specific
    links" view over time. *)

val task_graph : Oregami_taskgraph.Taskgraph.t -> string
(** Per-phase edge lists of the (uncompiled) task graph. *)
