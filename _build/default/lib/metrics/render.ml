module Mapping = Oregami_mapper.Mapping
module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Ugraph = Oregami_graph.Ugraph
module Digraph = Oregami_graph.Digraph
module Tab = Oregami_prelude.Tab

let mesh_like topo =
  match Topology.kind topo with
  | Topology.Mesh (r, c) | Topology.Torus (r, c) | Topology.Hex_mesh (r, c) -> Some (r, c)
  | Topology.Line _ | Topology.Ring _ | Topology.Hypercube _ | Topology.Complete _
  | Topology.Binary_tree _ | Topology.Binomial_tree _ | Topology.Butterfly _
  | Topology.Cube_connected_cycles _ | Topology.Star_graph _ | Topology.De_bruijn _
  | Topology.Shuffle_exchange _ ->
    None

let grid_render rows cols cell =
  let buf = Buffer.create 256 in
  let width =
    let w = ref 1 in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        w := max !w (String.length (cell i j))
      done
    done;
    !w
  in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let s = cell i j in
      Buffer.add_string buf (Printf.sprintf "[%-*s]" width s);
      if j < cols - 1 then Buffer.add_string buf "--"
    done;
    Buffer.add_char buf '\n';
    if i < rows - 1 then begin
      for j = 0 to cols - 1 do
        Buffer.add_string buf (Printf.sprintf " %*s " (width / 2) "|");
        Buffer.add_string buf (String.make ((width + 1) / 2) ' ');
        if j < cols - 1 then Buffer.add_string buf "  "
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf

let topology topo =
  let header = Format.asprintf "%a\n" Topology.pp topo in
  match mesh_like topo with
  | Some (r, c) -> header ^ grid_render r c (fun i j -> string_of_int ((i * c) + j))
  | None ->
    let g = Topology.graph topo in
    let buf = Buffer.create 256 in
    Buffer.add_string buf header;
    for v = 0 to Ugraph.node_count g - 1 do
      let ns = List.map (fun (u, _) -> string_of_int u) (Ugraph.neighbors g v) in
      Buffer.add_string buf (Printf.sprintf "  %3d : %s\n" v (String.concat " " ns))
    done;
    Buffer.contents buf

let tasks_label m p =
  let tasks = Mapping.tasks_on_proc m in
  match tasks.(p) with
  | [] -> "-"
  | l -> String.concat "," (List.map string_of_int l)

let mapping m =
  let topo = m.Mapping.topo in
  let header =
    Printf.sprintf "%s on %s (%s)\n" m.Mapping.tg.Taskgraph.tg_name (Topology.name topo)
      m.Mapping.strategy
  in
  match mesh_like topo with
  | Some (r, c) -> header ^ grid_render r c (fun i j -> tasks_label m ((i * c) + j))
  | None ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf header;
    for p = 0 to Topology.node_count topo - 1 do
      Buffer.add_string buf (Printf.sprintf "  proc %3d : tasks %s\n" p (tasks_label m p))
    done;
    Buffer.contents buf

let link_loads m =
  let topo = m.Mapping.topo in
  let report = Metrics.link_metrics m in
  let volumes = report.Metrics.volume_per_link in
  let max_volume = Array.fold_left max 1 volumes in
  let rows =
    List.init (Array.length volumes) (fun l ->
        let u, v = Topology.link_endpoints topo l in
        [
          Printf.sprintf "link %d (%d-%d)" l u v;
          string_of_int volumes.(l);
          Tab.bar ~width:30 (float_of_int volumes.(l)) (float_of_int max_volume);
        ])
  in
  Tab.render ~header:[ "link"; "volume"; "" ] rows

let phase_edges m name =
  match List.find_opt (fun pr -> pr.Mapping.pr_phase = name) m.Mapping.routings with
  | None -> Printf.sprintf "no routing for phase %S" name
  | Some pr ->
    let rows =
      List.map
        (fun re ->
          let path =
            String.concat "->" (List.map string_of_int re.Mapping.re_route.Routes.nodes)
          in
          let links =
            String.concat "," (List.map string_of_int re.Mapping.re_route.Routes.links)
          in
          [
            Printf.sprintf "%d -> %d" re.Mapping.re_src re.Mapping.re_dst;
            string_of_int re.Mapping.re_volume;
            (if re.Mapping.re_route.Routes.links = [] then "local" else path);
            links;
          ])
        pr.Mapping.pr_edges
    in
    Tab.render ~header:[ "edge"; "vol"; "route"; "links" ] rows

let timeline ?(width = 60) m phase =
  let topo = m.Mapping.topo in
  let spans = Netsim.spans m phase in
  if spans = [] then Printf.sprintf "phase %S: no cross-processor traffic" phase
  else begin
    let horizon = List.fold_left (fun acc s -> max acc s.Netsim.sp_finish) 1 spans in
    let by_channel = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_channel s.Netsim.sp_channel) in
        Hashtbl.replace by_channel s.Netsim.sp_channel (s :: cur))
      spans;
    let channels = Hashtbl.fold (fun ch _ acc -> ch :: acc) by_channel [] |> List.sort compare in
    let rows =
      List.map
        (fun ch ->
          let cells = Bytes.make width '.' in
          List.iter
            (fun s ->
              let a = s.Netsim.sp_start * width / horizon in
              let b = max (a + 1) (s.Netsim.sp_finish * width / horizon) in
              for i = a to min (width - 1) (b - 1) do
                Bytes.set cells i '#'
              done)
            (Hashtbl.find by_channel ch);
          [ Netsim.channel_name topo ch; Bytes.to_string cells ])
        channels
    in
    Printf.sprintf "phase %S timeline (0 .. %d):\n%s" phase horizon
      (Tab.render ~header:[ "channel"; "busy" ] rows)
  end

let task_graph tg =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Format.asprintf "%a\n" Taskgraph.pp_summary tg);
  List.iter
    (fun (cp : Taskgraph.comm_phase) ->
      Buffer.add_string buf (Printf.sprintf "phase %s:\n" cp.Taskgraph.cp_name);
      List.iter
        (fun (u, v, w) ->
          Buffer.add_string buf (Printf.sprintf "  %d -> %d (volume %d)\n" u v w))
        (Digraph.edges cp.Taskgraph.edges))
    tg.Taskgraph.comm_phases;
  Buffer.contents buf
