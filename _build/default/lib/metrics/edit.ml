module Mapping = Oregami_mapper.Mapping
module Route = Oregami_mapper.Route
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes

let with_suffix m = if String.length m.Mapping.strategy > 5 && String.sub m.Mapping.strategy (String.length m.Mapping.strategy - 5) 5 = "+edit" then m.Mapping.strategy else m.Mapping.strategy ^ "+edit"

let rebuild (m : Mapping.t) cluster_of proc_of_cluster =
  let proc_of_task =
    Array.init m.Mapping.tg.Oregami_taskgraph.Taskgraph.n (fun t ->
        proc_of_cluster.(cluster_of.(t)))
  in
  let routings, _ = Route.mm_route m.Mapping.tg m.Mapping.topo ~proc_of_task in
  let candidate =
    {
      m with
      Mapping.cluster_of;
      proc_of_cluster;
      routings;
      strategy = with_suffix m;
    }
  in
  match Mapping.validate candidate with
  | Ok () -> Ok candidate
  | Error e -> Error e

let move_task (m : Mapping.t) ~task ~proc =
  let n = m.Mapping.tg.Oregami_taskgraph.Taskgraph.n in
  if task < 0 || task >= n then Error (Printf.sprintf "no task %d" task)
  else if proc < 0 || proc >= Topology.node_count m.Mapping.topo then
    Error (Printf.sprintf "no processor %d" proc)
  else begin
    let assignment = Mapping.assignment m in
    if assignment.(task) = proc then Ok m
    else begin
      (* recluster from the assignment: clusters become the non-empty
         processors, so singleton moves stay simple *)
      assignment.(task) <- proc;
      let procs = Topology.node_count m.Mapping.topo in
      let cluster_ids = Array.make procs (-1) in
      let next = ref 0 in
      Array.iter
        (fun p ->
          if cluster_ids.(p) = -1 then begin
            cluster_ids.(p) <- !next;
            incr next
          end)
        assignment;
      let cluster_of = Array.map (fun p -> cluster_ids.(p)) assignment in
      let proc_of_cluster = Array.make !next 0 in
      Array.iteri (fun p c -> if c >= 0 then proc_of_cluster.(c) <- p) cluster_ids;
      rebuild m cluster_of proc_of_cluster
    end
  end

let swap_processors (m : Mapping.t) a b =
  let procs = Topology.node_count m.Mapping.topo in
  if a < 0 || a >= procs || b < 0 || b >= procs then Error "processor out of range"
  else begin
    let proc_of_cluster =
      Array.map
        (fun p -> if p = a then b else if p = b then a else p)
        m.Mapping.proc_of_cluster
    in
    rebuild m (Array.copy m.Mapping.cluster_of) proc_of_cluster
  end

let reroute_edge (m : Mapping.t) ~phase ~src ~dst ~path =
  let topo = m.Mapping.topo in
  match List.find_opt (fun pr -> pr.Mapping.pr_phase = phase) m.Mapping.routings with
  | None -> Error (Printf.sprintf "no phase %S" phase)
  | Some pr ->
    (match
       List.find_opt (fun re -> re.Mapping.re_src = src && re.Mapping.re_dst = dst) pr.Mapping.pr_edges
     with
    | None -> Error (Printf.sprintf "phase %S has no edge %d -> %d" phase src dst)
    | Some re ->
      let pu = Mapping.proc_of_task m src and pv = Mapping.proc_of_task m dst in
      let valid =
        match (path, List.rev path) with
        | first :: _, last :: _ when first = pu && last = pv -> true
        | _, _ -> false
      in
      if not valid then Error "path endpoints do not match the task placement"
      else begin
        match Topology.links_of_path topo path with
        | exception Invalid_argument msg -> Error msg
        | links ->
          let new_route = { Routes.nodes = path; links } in
          let pr_edges =
            List.map
              (fun e -> if e == re then { e with Mapping.re_route = new_route } else e)
              pr.Mapping.pr_edges
          in
          let routings =
            List.map
              (fun p -> if p.Mapping.pr_phase = phase then { p with Mapping.pr_edges } else p)
              m.Mapping.routings
          in
          let candidate = { m with Mapping.routings; strategy = with_suffix m } in
          (match Mapping.validate candidate with Ok () -> Ok candidate | Error e -> Error e)
      end)
