lib/metrics/edit.mli: Oregami_mapper
