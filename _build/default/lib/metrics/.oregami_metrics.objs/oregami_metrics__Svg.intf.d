lib/metrics/svg.mli: Oregami_mapper Oregami_topology
