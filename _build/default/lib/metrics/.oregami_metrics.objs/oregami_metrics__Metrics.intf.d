lib/metrics/metrics.mli: Oregami_mapper
