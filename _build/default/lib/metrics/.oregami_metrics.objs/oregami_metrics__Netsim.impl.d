lib/metrics/netsim.ml: Array List Oregami_mapper Oregami_prelude Oregami_taskgraph Oregami_topology Printf
