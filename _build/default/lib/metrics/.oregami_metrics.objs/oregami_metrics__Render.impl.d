lib/metrics/render.ml: Array Buffer Bytes Format Hashtbl List Metrics Netsim Option Oregami_graph Oregami_mapper Oregami_prelude Oregami_taskgraph Oregami_topology Printf String
