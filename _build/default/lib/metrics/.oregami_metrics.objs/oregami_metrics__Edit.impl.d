lib/metrics/edit.ml: Array List Oregami_mapper Oregami_taskgraph Oregami_topology Printf String
