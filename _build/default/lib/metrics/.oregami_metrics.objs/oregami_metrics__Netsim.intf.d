lib/metrics/netsim.mli: Oregami_mapper Oregami_topology
