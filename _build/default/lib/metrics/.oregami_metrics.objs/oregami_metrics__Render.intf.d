lib/metrics/render.mli: Oregami_mapper Oregami_taskgraph Oregami_topology
