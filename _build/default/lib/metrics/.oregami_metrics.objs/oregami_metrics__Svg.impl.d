lib/metrics/svg.ml: Array Buffer Float List Metrics Oregami_graph Oregami_mapper Oregami_taskgraph Oregami_topology Printf String
