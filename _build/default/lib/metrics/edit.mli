(** Programmatic mapping modification — the METRICS "click and drag"
    loop (paper §5): the user can reassign tasks to processors or
    re-route communication edges, and the metrics are recomputed on the
    modified mapping. *)

val move_task :
  Oregami_mapper.Mapping.t -> task:int -> proc:int -> (Oregami_mapper.Mapping.t, string) result
(** Moves one task to the cluster living on the target processor (a new
    cluster is created when that processor is empty); all phases are
    re-routed with MM-Route.  The strategy tag gains a ["+edit"]
    suffix. *)

val swap_processors :
  Oregami_mapper.Mapping.t -> int -> int -> (Oregami_mapper.Mapping.t, string) result
(** Exchanges the contents of two processors, re-routing. *)

val reroute_edge :
  Oregami_mapper.Mapping.t ->
  phase:string ->
  src:int ->
  dst:int ->
  path:int list ->
  (Oregami_mapper.Mapping.t, string) result
(** Replaces one routed edge's path with an explicit processor path
    (validated: adjacent hops, correct endpoints). *)
