lib/workloads/workloads.ml: Buffer List Oregami_larcs Printf String
