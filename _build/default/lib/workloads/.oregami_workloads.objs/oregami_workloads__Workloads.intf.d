lib/workloads/workloads.mli: Oregami_larcs Oregami_taskgraph
