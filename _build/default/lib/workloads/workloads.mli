(** The paper's workload suite as LaRCS programs (§3 lists LaRCS
    descriptions of the n-body problem, matrix multiplication, FFT,
    topological sort, divide and conquer on binomial trees, simulated
    annealing, Jacobi, SOR, and perfect-broadcast distributed voting).

    Programs whose phase count depends on a parameter (FFT stages,
    broadcast rounds) are generated textually for the given size —
    LaRCS itself stays first-order. *)

type spec = {
  w_name : string;
  description : string;
  source : string;  (** LaRCS source text *)
  bindings : (string * int) list;  (** parameter values *)
}

val nbody : n:int -> s:int -> spec
(** The running example (Fig 2): ring + chordal phases, [s] outer
    iterations. *)

val matmul : n:int -> spec
(** Cannon-style mesh matrix multiplication on an n×n task mesh. *)

val fft : d:int -> spec
(** Butterfly FFT on [2^d] tasks: one exchange phase per stage. *)

val topsort : levels:int -> width:int -> spec
(** Layered-DAG wavefront (parallel topological sort sweep). *)

val divide_and_conquer : k:int -> spec
(** Binomial-tree combine over [2^k] tasks (the paper's D&C shape). *)

val annealing : n:int -> sweeps:int -> spec
(** Simulated annealing sweeps on an n×n exchange grid. *)

val jacobi : n:int -> iters:int -> spec
(** Jacobi iteration for Laplace's equation on an n×n grid
    (4-neighbour stencil). *)

val sor : n:int -> iters:int -> spec
(** Red/black successive over-relaxation on an n×n grid. *)

val voting : k:int -> spec
(** Perfect-broadcast distributed voting on [2^k] tasks (the Fig 4
    example at [k = 3]): round [r] sends [i → (i + 2^r) mod n]. *)

val matmul3d : n:int -> spec
(** The matrix product as a 3-D uniform recurrence on an n³ lattice —
    exercises the systolic projection path of the dispatch (§4.2.1). *)

val spawned_divide_and_conquer : depth:int -> spec
(** Divide and conquer over a [spawntree] (the §6 dynamic-spawning
    extension): tasks appear generation by generation. *)

val all : unit -> spec list
(** One moderate instance of every workload. *)

val compile : spec -> (Oregami_larcs.Compile.compiled, string) result

val compile_exn : spec -> Oregami_larcs.Compile.compiled

val task_graph_exn : spec -> Oregami_taskgraph.Taskgraph.t
