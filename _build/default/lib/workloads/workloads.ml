type spec = {
  w_name : string;
  description : string;
  source : string;
  bindings : (string * int) list;
}

let nbody ~n ~s =
  {
    w_name = "nbody";
    description = "n-body on a chordal ring (paper Fig 2)";
    bindings = [ ("n", n); ("s", s) ];
    source =
      {|
algorithm nbody(n, s);

nodetype body : 0 .. n-1 nodesymmetric;

comphase ring    { body i -> body ((i+1) mod n); }
comphase chordal { body i -> body ((i + (n+1)/2) mod n); }

exphase compute1 cost 10;
exphase compute2 cost 20;

phases ((ring; compute1)^((n+1)/2); chordal; compute2)^s;
|};
  }

let matmul ~n =
  {
    w_name = "matmul";
    description = "Cannon-style matrix multiplication on an n x n task mesh";
    bindings = [ ("n", n) ];
    source =
      {|
algorithm matmul(n);

nodetype cell : (0 .. n-1, 0 .. n-1) nodesymmetric;

comphase shiftleft { cell (i, j) -> cell (i, (j - 1) mod n) volume n; }
comphase shiftup   { cell (i, j) -> cell ((i - 1) mod n, j) volume n; }

exphase multiply cost 50;

phases (shiftleft; shiftup; multiply)^n;
|};
  }

(* phase-per-stage programs are generated textually *)
let staged_source ~name ~params ~nodetype ~stage ~stages ~exphases ~phase_tail =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "algorithm %s(%s);\n\n" name params);
  Buffer.add_string buf (nodetype ^ "\n");
  List.iteri (fun r () -> Buffer.add_string buf (stage r)) (List.init stages (fun _ -> ()));
  Buffer.add_string buf ("\n" ^ exphases ^ "\n");
  Buffer.add_string buf (Printf.sprintf "phases %s;\n" phase_tail);
  Buffer.contents buf

let fft ~d =
  if d < 1 then invalid_arg "Workloads.fft: need d >= 1";
  let stage r =
    Printf.sprintf "comphase stage%d { pt i -> pt (i xor %d) volume 1; }\n" r (1 lsl r)
  in
  let phase_tail =
    String.concat "; "
      (List.init d (fun r -> Printf.sprintf "stage%d; butterfly" r))
  in
  {
    w_name = "fft";
    description = "butterfly FFT exchange pattern on 2^d tasks";
    bindings = [ ("n", 1 lsl d) ];
    source =
      staged_source ~name:"fft" ~params:"n"
        ~nodetype:"nodetype pt : 0 .. n-1 nodesymmetric;\n" ~stage ~stages:d
        ~exphases:"exphase butterfly cost 5;" ~phase_tail;
  }

let topsort ~levels ~width =
  {
    w_name = "topsort";
    description = "layered-DAG wavefront sweep (parallel topological sort)";
    bindings = [ ("l", levels); ("w", width) ];
    source =
      {|
algorithm topsort(l, w);

nodetype node : (0 .. l-1, 0 .. w-1);

comphase straight { node (i, j) -> node (i+1, j) when i < l-1; }
comphase diagonal { node (i, j) -> node (i+1, (j+1) mod w) when i < l-1; }

exphase visit cost 3;

phases (straight || diagonal; visit)^(l-1);
|};
  }

let divide_and_conquer ~k =
  if k < 1 then invalid_arg "Workloads.divide_and_conquer: need k >= 1";
  (* combine round r: the node holding a 2^r-block boundary reports to
     its partner 2^r below *)
  let stage r =
    Printf.sprintf
      "comphase combine%d { node i -> node (i - %d) when (i mod %d) = %d; }\n" r (1 lsl r)
      (1 lsl (r + 1))
      (1 lsl r)
  in
  let phase_tail =
    String.concat "; "
      (List.init k (fun r -> Printf.sprintf "solve%d; combine%d" r r))
  in
  let exphases =
    String.concat "\n" (List.init k (fun r -> Printf.sprintf "exphase solve%d cost %d;" r (4 * (r + 1))))
  in
  {
    w_name = "divconq";
    description = "divide-and-conquer combine along a binomial tree";
    bindings = [ ("n", 1 lsl k) ];
    source =
      staged_source ~name:"divconq" ~params:"n" ~nodetype:"nodetype node : 0 .. n-1;\n"
        ~stage ~stages:k ~exphases ~phase_tail;
  }

let annealing ~n ~sweeps =
  {
    w_name = "annealing";
    description = "simulated annealing exchange sweeps on an n x n grid";
    bindings = [ ("n", n); ("s", sweeps) ];
    source =
      {|
algorithm annealing(n, s);

nodetype site : (0 .. n-1, 0 .. n-1);

comphase east  { site (i, j) -> site (i, j+1) volume 2 when j < n-1; }
comphase west  { site (i, j) -> site (i, j-1) volume 2 when j > 0; }
comphase south { site (i, j) -> site (i+1, j) volume 2 when i < n-1; }
comphase north { site (i, j) -> site (i-1, j) volume 2 when i > 0; }

exphase anneal cost 8;

phases (east || west; north || south; anneal)^s;
|};
  }

let jacobi ~n ~iters =
  {
    w_name = "jacobi";
    description = "Jacobi iteration for Laplace's equation on an n x n grid";
    bindings = [ ("n", n); ("t", iters) ];
    source =
      {|
algorithm jacobi(n, t);

nodetype cell : (0 .. n-1, 0 .. n-1);

comphase east  { cell (i, j) -> cell (i, j+1) when j < n-1; }
comphase west  { cell (i, j) -> cell (i, j-1) when j > 0; }
comphase south { cell (i, j) -> cell (i+1, j) when i < n-1; }
comphase north { cell (i, j) -> cell (i-1, j) when i > 0; }

exphase relax cost 6;

phases (east || west || north || south; relax)^t;
|};
  }

let sor ~n ~iters =
  {
    w_name = "sor";
    description = "red/black successive over-relaxation on an n x n grid";
    bindings = [ ("n", n); ("t", iters) ];
    source =
      {|
algorithm sor(n, t);

nodetype cell : (0 .. n-1, 0 .. n-1);

-- red cells (i+j even) push to black neighbours, then black push back
comphase red2black {
  cell (i, j) -> cell (i, j+1) when ((i + j) mod 2 = 0) and (j < n-1);
  cell (i, j) -> cell (i+1, j) when ((i + j) mod 2 = 0) and (i < n-1);
}
comphase black2red {
  cell (i, j) -> cell (i, j+1) when ((i + j) mod 2 = 1) and (j < n-1);
  cell (i, j) -> cell (i+1, j) when ((i + j) mod 2 = 1) and (i < n-1);
}

exphase relaxred cost 5;
exphase relaxblack cost 5;

phases (red2black; relaxblack; black2red; relaxred)^t;
|};
  }

let voting ~k =
  if k < 1 then invalid_arg "Workloads.voting: need k >= 1";
  let stage r =
    Printf.sprintf "comphase comm%d { voter i -> voter ((i + %d) mod n) volume 1; }\n"
      (r + 1) (1 lsl r)
  in
  let phase_tail =
    String.concat "; " (List.init k (fun r -> Printf.sprintf "comm%d; tally" (r + 1)))
  in
  {
    w_name = "voting";
    description = "perfect-broadcast distributed voting (paper Fig 4 at k = 3)";
    bindings = [ ("n", 1 lsl k) ];
    source =
      staged_source ~name:"voting" ~params:"n"
        ~nodetype:"nodetype voter : 0 .. n-1 nodesymmetric;\n" ~stage ~stages:k
        ~exphases:"exphase tally cost 2;" ~phase_tail;
  }

let matmul3d ~n =
  {
    w_name = "matmul3d";
    description = "3-D uniform-recurrence matrix product (systolic projection path)";
    bindings = [ ("n", n) ];
    source =
      {|
algorithm matmul3d(n);

nodetype p : (0 .. n-1, 0 .. n-1, 0 .. n-1);

comphase a { p (i, j, k) -> p (i, j+1, k) when j < n-1; }
comphase b { p (i, j, k) -> p (i+1, j, k) when i < n-1; }
comphase c { p (i, j, k) -> p (i, j, k+1) when k < n-1; }

exphase mac cost 1;

phases (a || b || c; mac)^n;
|};
  }

let spawned_divide_and_conquer ~depth =
  {
    w_name = "spawned";
    description = "divide & conquer with a dynamically spawned binary tree (section 6)";
    bindings = [ ("d", depth) ];
    source =
      {|
algorithm spawned(d);

spawntree node : depth d;

comphase report { node i -> node ((i - 1) / 2) volume 4 when i > 0; }

exphase solve : node i cost 3;

phases (node_spawn; solve)^d; report; solve;
|};
  }

let all () =
  [
    nbody ~n:15 ~s:2;
    matmul ~n:6;
    fft ~d:4;
    topsort ~levels:6 ~width:8;
    divide_and_conquer ~k:4;
    annealing ~n:6 ~sweeps:3;
    jacobi ~n:8 ~iters:4;
    sor ~n:6 ~iters:3;
    voting ~k:3;
    spawned_divide_and_conquer ~depth:4;
    matmul3d ~n:4;
  ]

let compile spec = Oregami_larcs.Compile.compile_source ~bindings:spec.bindings spec.source

let compile_exn spec =
  match compile spec with
  | Ok c -> c
  | Error m -> invalid_arg (Printf.sprintf "Workloads.compile_exn(%s): %s" spec.w_name m)

let task_graph_exn spec = (compile_exn spec).Oregami_larcs.Compile.graph
