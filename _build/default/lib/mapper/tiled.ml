let factor_pairs n =
  let rec go a acc =
    if a > n then List.rev acc
    else if n mod a = 0 then go (a + 1) ((a, n / a) :: acc)
    else go (a + 1) acc
  in
  go 1 []

let contract ~rows ~cols ~procs =
  factor_pairs procs
  |> List.filter (fun (tr, tc) -> tr <= rows && tc <= cols)
  |> List.map (fun (tr, tc) ->
         let cluster_of =
           Array.init (rows * cols) (fun id ->
               let i = id / cols and j = id mod cols in
               ((i * tr / rows) * tc) + (j * tc / cols))
         in
         (cluster_of, tr * tc))
