(** Aggregate-topology selection (paper §6): "many parallel algorithms
    use a specific tree topology to aggregate results when a variety of
    alternate communication topologies will suffice … we would like to
    automatically select the aggregate topology that is compatible with
    the communication topologies of other phases".

    Given a mapping whose phase is an {e aggregation} (every task sends
    to one root task), this module re-plans that phase: values combine
    on each processor, and one combined message per processor flows
    down a shortest-path spanning tree of the network towards the
    root's processor.  Each tree link carries exactly one message per
    step, so the root's links stop being a hot spot. *)

val is_aggregation : Oregami_taskgraph.Taskgraph.t -> string -> int option
(** [Some root] when every edge of the phase points at the single task
    [root] (and the phase is non-empty). *)

val replan_phase : Mapping.t -> phase:string -> (Mapping.t, string) result
(** Replaces the aggregation phase's task edges by the spanning-tree
    reduction: tasks forward to a co-located representative for free;
    each non-root processor's representative sends one combined message
    (reduction modelled as size-preserving: volume = max entering the
    subtree) to the nearest task-bearing ancestor on the tree.  The
    task graph inside the mapping is rebuilt and the phase routed along
    the tree paths.  Fails when the phase is not an aggregation. *)

val hot_link_volume : Mapping.t -> string -> int
(** The busiest link's volume in one occurrence of the phase — the
    quantity tree aggregation is meant to flatten. *)
