type layout = {
  k : int;
  rows : int;
  cols : int;
  pos : (int * int) array;
  total_dilation : int;
}

type flip = { fh : bool; fv : bool }

type entry = {
  e_rows : int;
  e_cols : int;
  e_root : int * int;
  e_dil : int;
  e_parts : parts;
}

and parts =
  | Leaf
  | Combine of {
      a : entry;  (** keeps the root (low node ids) *)
      b : entry;  (** shifted copy (ids + 2^(level-1)) *)
      fa : flip;
      fb : flip;
      vertical : bool;  (** b below a (else b right of a) *)
    }

let apply_flip f ~rows ~cols (r, c) =
  ((if f.fv then rows - 1 - r else r), if f.fh then cols - 1 - c else c)

let flips = [ { fh = false; fv = false }; { fh = true; fv = false };
              { fh = false; fv = true }; { fh = true; fv = true } ]

let manhattan (r1, c1) (r2, c2) = abs (r1 - r2) + abs (c1 - c2)

(* Beam of layout candidates per level: best total dilation per
   distinct root position, trimmed to [beam] by dilation. *)
let levels ~beam k =
  let leaf = { e_rows = 1; e_cols = 1; e_root = (0, 0); e_dil = 0; e_parts = Leaf } in
  let rec go level pool acc =
    if level > k then List.rev acc
    else begin
      let vertical = level mod 2 = 0 in
      let best = Hashtbl.create 64 in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              List.iter
                (fun fa ->
                  let ra = apply_flip fa ~rows:a.e_rows ~cols:a.e_cols a.e_root in
                  List.iter
                    (fun fb ->
                      let rb0 = apply_flip fb ~rows:b.e_rows ~cols:b.e_cols b.e_root in
                      let rb =
                        if vertical then (fst rb0 + a.e_rows, snd rb0)
                        else (fst rb0, snd rb0 + a.e_cols)
                      in
                      let d = manhattan ra rb in
                      let dil = a.e_dil + b.e_dil + d in
                      let rows = if vertical then 2 * a.e_rows else a.e_rows in
                      let cols = if vertical then a.e_cols else 2 * a.e_cols in
                      let key = ra in
                      let better =
                        match Hashtbl.find_opt best key with
                        | Some e -> dil < e.e_dil
                        | None -> true
                      in
                      if better then
                        Hashtbl.replace best key
                          {
                            e_rows = rows;
                            e_cols = cols;
                            e_root = ra;
                            e_dil = dil;
                            e_parts = Combine { a; b; fa; fb; vertical };
                          })
                    flips)
                flips)
            pool)
        pool;
      let candidates =
        Hashtbl.fold (fun _ e acc -> e :: acc) best []
        |> List.sort (fun x y -> compare (x.e_dil, x.e_root) (y.e_dil, y.e_root))
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      let pool = take beam candidates in
      go (level + 1) pool (pool :: acc)
    end
  in
  go 1 [ leaf ] [ [ leaf ] ]

let best_entry ~beam k =
  let all = levels ~beam k in
  match List.nth_opt all k with
  | Some (e :: _) -> e
  | Some [] | None -> invalid_arg "Binomial_mesh: no layout found"

let average_dilation ?(beam = 64) k =
  if k < 0 then invalid_arg "Binomial_mesh.average_dilation: negative order";
  if k = 0 then 0.0
  else begin
    let e = best_entry ~beam k in
    float_of_int e.e_dil /. float_of_int ((1 lsl k) - 1)
  end

(* Materialize node positions by replaying the combine decisions.
   Copy [a] holds ids [0 .. 2^(l-1)-1], copy [b] the rest. *)
let rec materialize e =
  match e.e_parts with
  | Leaf -> [| (0, 0) |]
  | Combine { a; b; fa; fb; vertical } ->
    let pa = materialize a and pb = materialize b in
    let na = Array.length pa in
    let place_a p = apply_flip fa ~rows:a.e_rows ~cols:a.e_cols p in
    let place_b p =
      let r, c = apply_flip fb ~rows:b.e_rows ~cols:b.e_cols p in
      if vertical then (r + a.e_rows, c) else (r, c + a.e_cols)
    in
    Array.append (Array.map place_a pa) (Array.map place_b pb) |> fun arr ->
    assert (Array.length arr = 2 * na);
    arr

let embed ?(beam = 64) k =
  if k < 0 then invalid_arg "Binomial_mesh.embed: negative order";
  if k = 0 then { k; rows = 1; cols = 1; pos = [| (0, 0) |]; total_dilation = 0 }
  else begin
    let e = best_entry ~beam k in
    { k; rows = e.e_rows; cols = e.e_cols; pos = materialize e; total_dilation = e.e_dil }
  end

let check l =
  let n = Array.length l.pos in
  n = 1 lsl l.k
  && n = l.rows * l.cols
  && begin
       let seen = Array.make n false in
       Array.for_all
         (fun (r, c) ->
           r >= 0 && r < l.rows && c >= 0 && c < l.cols
           &&
           let idx = (r * l.cols) + c in
           if seen.(idx) then false
           else begin
             seen.(idx) <- true;
             true
           end)
         l.pos
     end
  &&
  let total = ref 0 in
  for i = 1 to n - 1 do
    total := !total + manhattan l.pos.(i) l.pos.(i land (i - 1))
  done;
  !total = l.total_dilation
