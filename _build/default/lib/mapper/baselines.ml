module Rng = Oregami_prelude.Rng

let identity_embedding k = Array.init k (fun c -> c)

let block ~n ~procs =
  let k = min n procs in
  (Array.init n (fun i -> i * k / n), identity_embedding k)

let round_robin ~n ~procs =
  let k = min n procs in
  (Array.init n (fun i -> i mod k), identity_embedding k)

let random rng ~n ~procs =
  let k = min n procs in
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let cluster_of = Array.make n 0 in
  Array.iteri (fun rank task -> cluster_of.(task) <- rank * k / n) order;
  (cluster_of, identity_embedding k)
