(** Embedding binomial trees into square-ish meshes (paper §4.1).

    The paper's contribution is an embedding of the binomial tree [B_k]
    (2^k nodes, node [i]'s parent clears [i]'s lowest set bit) into the
    [2^⌈k/2⌉ × 2^⌊k/2⌋] mesh with average dilation bounded by ≈1.2 for
    arbitrarily large [k] (their tech report is unavailable, so this is
    an independent construction targeting the same bound).

    The construction is recursive — [B_k] is two copies of [B_{k-1}]
    plus one root–root edge — with a beam-search dynamic program over
    (root position, total dilation) layout candidates: at each level
    every pair of retained sub-layouts is combined under all 16
    reflection choices, letting one copy specialize for a
    boundary-accessible root and the other for low internal dilation. *)

type layout = {
  k : int;
  rows : int;
  cols : int;
  pos : (int * int) array;  (** binomial node id → mesh cell *)
  total_dilation : int;  (** sum of Manhattan lengths over tree edges *)
}

val embed : ?beam:int -> int -> layout
(** [embed k] materializes the best found embedding of [B_k]
    ([beam] defaults to 64; deterministic).  [k ≤ 24] is practical. *)

val average_dilation : ?beam:int -> int -> float
(** Average dilation of the best embedding without materializing node
    positions — usable for large [k]. *)

val check : layout -> bool
(** The positions are a bijection onto the mesh and [total_dilation]
    matches the recomputed sum. *)
