lib/mapper/tiled.ml: Array List
