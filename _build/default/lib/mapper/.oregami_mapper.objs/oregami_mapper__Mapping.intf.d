lib/mapper/mapping.mli: Format Oregami_graph Oregami_taskgraph Oregami_topology
