lib/mapper/route.mli: Mapping Oregami_taskgraph Oregami_topology
