lib/mapper/kl.ml: Array Hashtbl List Oregami_graph
