lib/mapper/group_contract.mli: Oregami_perm Oregami_taskgraph
