lib/mapper/baselines.ml: Array Oregami_prelude
