lib/mapper/refine.ml: Array List Nn_embed Oregami_graph Oregami_topology
