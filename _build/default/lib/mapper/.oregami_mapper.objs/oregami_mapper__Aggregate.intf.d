lib/mapper/aggregate.mli: Mapping Oregami_taskgraph
