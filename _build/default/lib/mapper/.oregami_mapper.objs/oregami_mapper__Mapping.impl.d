lib/mapper/mapping.ml: Array Format List Oregami_graph Oregami_taskgraph Oregami_topology Printf Result
