lib/mapper/binomial_mesh.ml: Array Hashtbl List
