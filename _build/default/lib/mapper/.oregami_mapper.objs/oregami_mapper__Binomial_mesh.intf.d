lib/mapper/binomial_mesh.mli:
