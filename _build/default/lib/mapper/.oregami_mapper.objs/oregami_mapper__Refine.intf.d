lib/mapper/refine.mli: Oregami_graph Oregami_topology
