lib/mapper/nn_embed.ml: Array List Oregami_graph Oregami_topology
