lib/mapper/mwm_contract.ml: Array Hashtbl List Mapping Oregami_graph Oregami_matching Oregami_prelude Printf
