lib/mapper/baselines.mli: Oregami_prelude
