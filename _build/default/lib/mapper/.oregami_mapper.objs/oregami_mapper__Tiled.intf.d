lib/mapper/tiled.mli:
