lib/mapper/mwm_contract.mli: Oregami_graph
