lib/mapper/incremental.ml: Array List Oregami_graph Oregami_topology Seq
