lib/mapper/canned.ml: Array Binomial_mesh Option Oregami_topology
