lib/mapper/stone.mli: Oregami_graph
