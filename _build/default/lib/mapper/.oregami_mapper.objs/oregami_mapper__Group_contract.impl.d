lib/mapper/group_contract.ml: Array List Option Oregami_graph Oregami_perm Oregami_taskgraph Printf Result
