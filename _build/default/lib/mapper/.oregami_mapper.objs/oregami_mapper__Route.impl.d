lib/mapper/route.ml: Array Hashtbl List Mapping Oregami_graph Oregami_matching Oregami_taskgraph Oregami_topology
