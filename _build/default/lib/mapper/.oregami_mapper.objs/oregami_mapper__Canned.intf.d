lib/mapper/canned.mli: Oregami_topology
