lib/mapper/nn_embed.mli: Oregami_graph Oregami_topology
