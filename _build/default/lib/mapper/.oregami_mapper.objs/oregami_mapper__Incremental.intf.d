lib/mapper/incremental.mli: Oregami_graph Oregami_topology
