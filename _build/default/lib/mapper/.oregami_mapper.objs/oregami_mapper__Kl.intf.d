lib/mapper/kl.mli: Oregami_graph
