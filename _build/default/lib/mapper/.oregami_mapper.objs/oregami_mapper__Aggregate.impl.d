lib/mapper/aggregate.ml: Array Hashtbl List Mapping Option Oregami_graph Oregami_taskgraph Oregami_topology Printf
