lib/mapper/stone.ml: Array Hashtbl List Oregami_graph Oregami_matching
