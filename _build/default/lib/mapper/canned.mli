(** Canned contractions/embeddings for nameable task graphs
    (paper §4.1): constant-time lookup keyed by (family, topology).

    Each entry contracts the tasks along the family's natural order
    when there are more tasks than processors (blocks of a ring,
    tiles of a mesh, subcubes of a hypercube, low-bit groups of a
    binomial tree) and places the clusters with a known-good
    embedding:

    - ring/line → ring/line/mesh/torus (snake order), hypercube
      (Gray code, dilation 1);
    - mesh → mesh/torus (tiling), hypercube (per-axis Gray codes,
      dilation 1 for power-of-two sides);
    - hypercube → hypercube (identity on subcubes, dilation 1);
    - binomial tree → hypercube (node id is its corner, dilation 1),
      mesh (the §4.1 construction, see {!Binomial_mesh});
    - full binary tree → hypercube (inorder labelling, dilation ≤ 2);
    - complete graph → anything (all placements equivalent).

    The [dims] hint carries the task-side mesh shape (from the LaRCS
    node-type ranges) for the mesh family. *)

type t = {
  cluster_of : int array;
  proc_of_cluster : int array;
  note : string;  (** which canned entry fired *)
}

val lookup :
  ?dims:int list ->
  family:string ->
  n:int ->
  Oregami_topology.Topology.t ->
  t option
(** [lookup ~family ~n topo] is [None] when no canned mapping covers
    the pair (caller falls back to the general algorithms).  Requires
    [n ≥ procs] compatibility: when sizes do not divide evenly the
    entry may decline. *)

val families : string list
(** Families with at least one canned entry. *)
