(** Naive placements used as experiment baselines: what a programmer
    gets from "manual task assignment ... and message routing that does
    not utilize information about the communication patterns of the
    computation" (paper §1). *)

val random :
  Oregami_prelude.Rng.t -> n:int -> procs:int -> int array * int array
(** Random balanced placement: tasks shuffled, dealt into [procs]
    blocks.  Returns [(cluster_of, proc_of_cluster)]. *)

val block : n:int -> procs:int -> int array * int array
(** Task [i] → cluster [i·procs/n], cluster [c] → processor [c]
    (the common "consecutive ranks" default). *)

val round_robin : n:int -> procs:int -> int array * int array
(** Task [i] → cluster [i mod procs]. *)
