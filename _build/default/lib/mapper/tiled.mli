(** Tile contraction for grid-shaped computations.

    When the LaRCS program declares a single 2-D node type, the natural
    contraction is a block tiling of the task lattice (the SCMD / data
    parallel decomposition of paper §2), not edge-greedy merging.  This
    module produces the tiling candidates; the driver compares them
    against MWM-Contract under the METRICS completion model and keeps
    the better mapping. *)

val factor_pairs : int -> (int * int) list
(** All [(a, b)] with [a·b = n], [a, b ≥ 1], in increasing [a]. *)

val contract :
  rows:int -> cols:int -> procs:int -> (int array * int) list
(** [contract ~rows ~cols ~procs] returns candidate tilings of the
    row-major [rows×cols] task lattice, one per feasible processor-grid
    factorization [(tr, tc)] with [tr ≤ rows], [tc ≤ cols]: the array
    maps task id → tile id (tiles numbered row-major over the [tr×tc]
    grid), paired with the tile count [tr·tc].  Tile boundaries are the
    balanced splits [⌊i·tr/rows⌋].  Empty when [procs] has no feasible
    factorization. *)
