module Topology = Oregami_topology.Topology
module Gray = Oregami_topology.Gray

type t = { cluster_of : int array; proc_of_cluster : int array; note : string }

let families =
  [ "ring"; "line"; "mesh"; "torus"; "hypercube"; "binomial"; "bintree"; "complete" ]

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  let rec go v acc = if v <= 1 then acc else go (v / 2) (acc + 1) in
  go v 0

(* Balanced consecutive blocks: task i -> cluster i*k/n. *)
let block_contract n k = Array.init n (fun i -> i * k / n)

(* Processors of a topology in an order where consecutive entries are
   adjacent (up to the snake turns): the target order for ring/line
   style placements. *)
let linear_proc_order topo =
  let p = Topology.node_count topo in
  match Topology.kind topo with
  | Topology.Line _ | Topology.Ring _ -> Some (Array.init p (fun i -> i))
  | Topology.Mesh (_, c) | Topology.Torus (_, c) ->
    Some
      (Array.init p (fun rank ->
           let i = rank / c in
           let j = rank mod c in
           let j = if i mod 2 = 0 then j else c - 1 - j in
           (i * c) + j))
  | Topology.Hypercube d -> Some (Array.init p (fun rank -> Gray.rank_in_cube d rank))
  | Topology.Complete _ -> Some (Array.init p (fun i -> i))
  | Topology.Binary_tree _ | Topology.Binomial_tree _ | Topology.Butterfly _
  | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _ | Topology.Star_graph _
  | Topology.De_bruijn _ | Topology.Shuffle_exchange _ ->
    None

let ring_like ~n topo note =
  match linear_proc_order topo with
  | None -> None
  | Some order ->
    let p = Array.length order in
    let k = min n p in
    Some
      {
        cluster_of = block_contract n k;
        proc_of_cluster = Array.init k (fun c -> order.(c));
        note;
      }

(* mesh tasks (R x C) tiled onto a mesh/torus of processors *)
let mesh_to_mesh ~rows ~cols ~prows ~pcols topo_nodes =
  if rows mod prows = 0 && cols mod pcols = 0 then begin
    let n = rows * cols in
    let th = rows / prows and tw = cols / pcols in
    let cluster_of =
      Array.init n (fun id ->
          let i = id / cols and j = id mod cols in
          ((i / th) * pcols) + (j / tw))
    in
    let k = prows * pcols in
    if k <= topo_nodes then
      Some (cluster_of, Array.init k (fun c -> c))
    else None
  end
  else None

let mesh_to_hypercube ~rows ~cols d =
  if not (is_pow2 rows && is_pow2 cols) then None
  else begin
    let rb = log2 rows and cb = log2 cols in
    if d > rb + cb then None
    else begin
      (* split the cube's d dimensions between the two mesh axes,
         as evenly as each axis' size allows *)
      let a = max (d - cb) (min rb ((d + 1) / 2)) in
      let b = d - a in
      let n = rows * cols in
      let th = rows / (1 lsl a) and tw = cols / (1 lsl b) in
      let cluster_of =
        Array.init n (fun id ->
            let i = id / cols and j = id mod cols in
            ((i / th) lsl b) lor (j / tw))
      in
      let k = 1 lsl (a + b) in
      let proc_of_cluster =
        Array.init k (fun cl ->
            let ti = cl lsr b and tj = cl land ((1 lsl b) - 1) in
            (Gray.rank_in_cube a ti lsl b) lor Gray.rank_in_cube b tj)
      in
      Some
        {
          cluster_of;
          proc_of_cluster;
          note = "canned: mesh tiles -> hypercube via per-axis Gray codes";
        }
    end
  end

(* inorder index of each node of a complete binary tree in heap
   numbering (root 0, children 2i+1 / 2i+2) *)
let inorder_indices n =
  let out = Array.make n 0 in
  let counter = ref 0 in
  let rec visit v =
    if v < n then begin
      visit ((2 * v) + 1);
      out.(v) <- !counter;
      incr counter;
      visit ((2 * v) + 2)
    end
  in
  visit 0;
  out

let lookup ?dims ~family ~n topo =
  let procs = Topology.node_count topo in
  if n <= 0 || procs <= 0 then None
  else
    match family with
    | "ring" -> ring_like ~n topo "canned: ring blocks along the topology's linear order"
    | "line" -> ring_like ~n topo "canned: line blocks along the topology's linear order"
    | "complete" ->
      let k = min n procs in
      Some
        {
          cluster_of = block_contract n k;
          proc_of_cluster = Array.init k (fun c -> c);
          note = "canned: complete graph (all placements equivalent)";
        }
    | "hypercube" ->
      if not (is_pow2 n) then None
      else begin
        let kbits = log2 n in
        match Topology.kind topo with
        | Topology.Hypercube d when d <= kbits ->
          let s = kbits - d in
          Some
            {
              cluster_of = Array.init n (fun i -> i lsr s);
              proc_of_cluster = Array.init (1 lsl d) (fun c -> c);
              note = "canned: hypercube subcubes -> hypercube (dilation 1)";
            }
        | Topology.Hypercube _ | Topology.Line _ | Topology.Ring _ | Topology.Mesh _
        | Topology.Torus _ | Topology.Complete _ | Topology.Binary_tree _
        | Topology.Binomial_tree _ | Topology.Butterfly _
        | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _ | Topology.Star_graph _
        | Topology.De_bruijn _ | Topology.Shuffle_exchange _ -> None
      end
    | "binomial" ->
      if not (is_pow2 n) then None
      else begin
        let kbits = log2 n in
        match Topology.kind topo with
        | Topology.Hypercube d when d <= kbits ->
          let s = kbits - d in
          Some
            {
              cluster_of = Array.init n (fun i -> i lsr s);
              proc_of_cluster = Array.init (1 lsl d) (fun c -> c);
              note = "canned: binomial tree is a hypercube subgraph (dilation 1)";
            }
        | Topology.Mesh (r, c) when is_pow2 r && is_pow2 c && r * c <= n ->
          let kp = log2 (r * c) in
          let layout = Binomial_mesh.embed kp in
          let rows, cols = (layout.Binomial_mesh.rows, layout.Binomial_mesh.cols) in
          let orient =
            if rows = r && cols = c then Some (fun (i, j) -> (i * c) + j)
            else if rows = c && cols = r then Some (fun (i, j) -> (j * c) + i)
            else None
          in
          Option.map
            (fun place ->
              let s = kbits - kp in
              {
                cluster_of = Array.init n (fun i -> i lsr s);
                proc_of_cluster =
                  Array.init (1 lsl kp) (fun cl -> place layout.Binomial_mesh.pos.(cl));
                note = "canned: binomial tree -> mesh (recursive layout, avg dilation <= 1.2)";
              })
            orient
        | Topology.Hypercube _ | Topology.Mesh _ | Topology.Line _ | Topology.Ring _
        | Topology.Torus _ | Topology.Complete _ | Topology.Binary_tree _
        | Topology.Binomial_tree _ | Topology.Butterfly _
        | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _ | Topology.Star_graph _
        | Topology.De_bruijn _ | Topology.Shuffle_exchange _ -> None
      end
    | "bintree" ->
      if not (is_pow2 (n + 1)) then None
      else begin
        match Topology.kind topo with
        | Topology.Hypercube d when 1 lsl d >= n ->
          let inorder = inorder_indices n in
          Some
            {
              cluster_of = Array.init n (fun i -> i);
              proc_of_cluster = Array.init n (fun v -> inorder.(v));
              note = "canned: binary tree -> hypercube via inorder labels (dilation <= 2)";
            }
        | Topology.Hypercube _ | Topology.Line _ | Topology.Ring _ | Topology.Mesh _
        | Topology.Torus _ | Topology.Complete _ | Topology.Binary_tree _
        | Topology.Binomial_tree _ | Topology.Butterfly _
        | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _ | Topology.Star_graph _
        | Topology.De_bruijn _ | Topology.Shuffle_exchange _ -> None
      end
    | "mesh" | "torus" -> begin
      (* torus task graphs tile exactly like meshes; the Gray-code
         hypercube entry even keeps the wrap edges at dilation 1 *)
      let dims =
        match dims with
        | Some [ r; c ] -> Some (r, c)
        | Some _ -> None
        | None ->
          let rec sq r = if r * r >= n then r else sq (r + 1) in
          let r = sq 1 in
          if r * r = n then Some (r, r) else None
      in
      match dims with
      | None -> None
      | Some (rows, cols) when rows * cols = n -> begin
        match Topology.kind topo with
        | Topology.Mesh (pr, pc) | Topology.Torus (pr, pc) ->
          Option.map
            (fun (cluster_of, proc_of_cluster) ->
              { cluster_of; proc_of_cluster; note = "canned: mesh tiled onto mesh" })
            (mesh_to_mesh ~rows ~cols ~prows:pr ~pcols:pc procs)
        | Topology.Hypercube d -> mesh_to_hypercube ~rows ~cols d
        | Topology.Line _ | Topology.Ring _ | Topology.Complete _
        | Topology.Binary_tree _ | Topology.Binomial_tree _ | Topology.Butterfly _
        | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _ | Topology.Star_graph _
        | Topology.De_bruijn _ | Topology.Shuffle_exchange _ -> None
      end
      | Some _ -> None
    end
    | _ -> None
