lib/sched/synchrony.mli: Oregami_mapper Oregami_metrics
