lib/sched/synchrony.ml: Array Hashtbl List Option Oregami_graph Oregami_mapper Oregami_metrics Oregami_taskgraph Oregami_topology
