(** Task synchrony sets and local scheduling directives — the paper's
    §6 scheduling extension.

    When several tasks share a processor, the order a processor runs
    its tasks in staggers when their messages depart.  A {e task
    synchrony set} is "a set of tasks, one on each processor, that
    should be executing at the same time"; aligning the local orders so
    heavy senders run early lets each communication phase start
    draining sooner. *)

type directive = {
  proc : int;
  order : int list;  (** the processor's tasks in execution order *)
}

val synchrony_sets : Oregami_mapper.Mapping.t -> directive list -> int list list
(** Rank-aligned sets: the r-th set holds the r-th task of every
    processor's directive (processors with fewer tasks drop out). *)

val default_directives : Oregami_mapper.Mapping.t -> directive list
(** Task-id order — what an oblivious runtime does. *)

val synchronized_directives : Oregami_mapper.Mapping.t -> directive list
(** Sends-first ordering: each processor runs tasks in decreasing
    cross-processor outgoing volume, so messages enter the network as
    early as possible. *)

val staggered_makespan :
  ?params:Oregami_metrics.Netsim.params ->
  Oregami_mapper.Mapping.t ->
  directive list ->
  int
(** Simulated makespan of the whole trace where an execution slot runs
    each processor's tasks in directive order and the following
    communication slot releases each message when its sender finished
    (messages of tasks earlier in the order depart earlier). *)
