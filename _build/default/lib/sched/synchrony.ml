module Mapping = Oregami_mapper.Mapping
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Netsim = Oregami_metrics.Netsim

type directive = { proc : int; order : int list }

let default_directives m =
  Mapping.tasks_on_proc m
  |> Array.to_list
  |> List.mapi (fun proc tasks -> { proc; order = tasks })
  |> List.filter (fun d -> d.order <> [])

let outgoing_volume (m : Mapping.t) task =
  let tg = m.Mapping.tg in
  List.fold_left
    (fun acc (cp : Taskgraph.comm_phase) ->
      List.fold_left
        (fun acc (v, w) ->
          if Mapping.proc_of_task m v <> Mapping.proc_of_task m task then acc + w else acc)
        acc
        (Oregami_graph.Digraph.succ cp.Taskgraph.edges task))
    0 tg.Taskgraph.comm_phases

let synchronized_directives m =
  default_directives m
  |> List.map (fun d ->
         let keyed =
           List.map (fun t -> (-outgoing_volume m t, t)) d.order |> List.sort compare
         in
         { d with order = List.map snd keyed })

let synchrony_sets _m directives =
  let max_rank =
    List.fold_left (fun acc d -> max acc (List.length d.order)) 0 directives
  in
  List.init max_rank (fun r ->
      List.filter_map (fun d -> List.nth_opt d.order r) directives)

(* finish time of each task when its processor runs the tasks that
   participate in the slot's exec phases sequentially in directive
   order *)
let exec_finish_times (m : Mapping.t) directives slot =
  let tg = m.Mapping.tg in
  let cost_in_slot task =
    List.fold_left
      (fun acc name ->
        match Taskgraph.exec_phase tg name with
        | Some ep -> acc + ep.Taskgraph.costs.(task)
        | None -> acc)
      0 slot.Phase_expr.execs
  in
  let fin = Hashtbl.create 64 in
  let slot_max = ref 0 in
  List.iter
    (fun d ->
      let t = ref 0 in
      List.iter
        (fun task ->
          let c = cost_in_slot task in
          if c > 0 then begin
            t := !t + c;
            Hashtbl.replace fin task !t
          end)
        d.order;
      slot_max := max !slot_max !t)
    directives;
  (fin, !slot_max)

let comm_messages (m : Mapping.t) slot releases =
  List.concat_map
    (fun name ->
      match List.find_opt (fun pr -> pr.Mapping.pr_phase = name) m.Mapping.routings with
      | None -> []
      | Some pr ->
        List.filter_map
          (fun re ->
            if re.Mapping.re_route.Routes.links = [] then None
            else begin
              let release =
                Option.value ~default:0 (Hashtbl.find_opt releases re.Mapping.re_src)
              in
              Some (re.Mapping.re_route, re.Mapping.re_volume, release)
            end)
          pr.Mapping.pr_edges)
    slot.Phase_expr.comms

let staggered_makespan ?(params = Netsim.default_params) (m : Mapping.t) directives =
  let trace = Phase_expr.trace m.Mapping.tg.Taskgraph.expr in
  let empty_releases = Hashtbl.create 1 in
  let is_exec_only slot = slot.Phase_expr.execs <> [] && slot.Phase_expr.comms = [] in
  let is_comm_only slot = slot.Phase_expr.comms <> [] && slot.Phase_expr.execs = [] in
  let rec walk total = function
    | [] -> total
    | e :: c :: rest when is_exec_only e && is_comm_only c ->
      (* overlap: a message departs as soon as its sender finishes *)
      let fin, exec_max = exec_finish_times m directives e in
      let comm_finish, _ = Netsim.simulate_released params m.Mapping.topo (comm_messages m c fin) in
      walk (total + max exec_max comm_finish) rest
    | slot :: rest ->
      let _, exec_max = exec_finish_times m directives slot in
      let comm_finish, _ =
        Netsim.simulate_released params m.Mapping.topo (comm_messages m slot empty_releases)
      in
      walk (total + exec_max + comm_finish) rest
  in
  walk 0 trace
