type t = int array

let degree p = Array.length p

let identity n = Array.init n (fun i -> i)

let validate a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Perm: image out of range"
      else if seen.(v) then invalid_arg "Perm: not injective"
      else seen.(v) <- true)
    a

let of_array a =
  validate a;
  Array.copy a

let to_array p = Array.copy p

let is_bijection n f =
  n >= 0
  &&
  let seen = Array.make (max n 1) false in
  let rec go i =
    i >= n
    ||
    let v = f i in
    v >= 0 && v < n && (not seen.(v))
    && begin
         seen.(v) <- true;
         go (i + 1)
       end
  in
  go 0

let of_function n f =
  if not (is_bijection n f) then invalid_arg "Perm.of_function: not a bijection";
  Array.init n f

let apply p i = p.(i)

let compose p q =
  if Array.length p <> Array.length q then invalid_arg "Perm.compose: degree mismatch";
  Array.init (Array.length p) (fun i -> q.(p.(i)))

let inverse p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  for i = 0 to n - 1 do
    inv.(p.(i)) <- i
  done;
  inv

let equal p q = p = (q : int array)

let compare p q = Stdlib.compare (p : int array) q

let is_identity p =
  let rec go i = i >= Array.length p || (p.(i) = i && go (i + 1)) in
  go 0

let power p k =
  let n = Array.length p in
  let base = if k >= 0 then Array.copy p else inverse p in
  let rec go acc base k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then compose acc base else acc in
      go acc (compose base base) (k lsr 1)
    end
  in
  go (identity n) base (abs k)

let cycles p =
  let n = Array.length p in
  let seen = Array.make n false in
  let out = ref [] in
  for start = 0 to n - 1 do
    if not seen.(start) then begin
      let rec walk v acc =
        if v = start && acc <> [] then List.rev acc
        else begin
          seen.(v) <- true;
          walk p.(v) (v :: acc)
        end
      in
      out := walk start [] :: !out
    end
  done;
  List.rev !out

let cycle_type p =
  cycles p |> List.map List.length |> List.sort (fun a b -> Stdlib.compare b a)

let uniform_cycle_length p =
  match cycles p with
  | [] -> Some 1
  | first :: rest ->
    let l = List.length first in
    if List.for_all (fun c -> List.length c = l) rest then Some l else None

let order p =
  cycle_type p
  |> List.fold_left
       (fun acc l ->
         let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
         acc / gcd acc l * l)
       1

let of_cycles n cs =
  let a = Array.init n (fun i -> i) in
  let assigned = Array.make n false in
  let place i v =
    if i < 0 || i >= n || v < 0 || v >= n then invalid_arg "Perm.of_cycles: member out of range";
    if assigned.(i) then invalid_arg "Perm.of_cycles: cycles not disjoint";
    assigned.(i) <- true;
    a.(i) <- v
  in
  List.iter
    (fun c ->
      match c with
      | [] -> ()
      | [ x ] -> place x x
      | first :: _ ->
        let rec link = function
          | [ last ] -> place last first
          | x :: (y :: _ as rest) ->
            place x y;
            link rest
          | [] -> ()
        in
        link c)
    cs;
  validate a;
  a

let to_string p =
  if is_identity p then "()"
  else
    cycles p
    |> List.filter (fun c -> List.length c > 1)
    |> List.map (fun c -> "(" ^ String.concat " " (List.map string_of_int c) ^ ")")
    |> String.concat ""

let of_string n s =
  let fail msg = Error (Printf.sprintf "Perm.of_string: %s in %S" msg s) in
  let len = String.length s in
  let rec skip i = if i < len && (s.[i] = ' ' || s.[i] = ',') then skip (i + 1) else i in
  let rec parse_int i acc started =
    if i < len && s.[i] >= '0' && s.[i] <= '9' then
      parse_int (i + 1) ((acc * 10) + Char.code s.[i] - Char.code '0') true
    else if started then Ok (i, acc)
    else fail "expected integer"
  in
  let rec parse_cycle i acc =
    let i = skip i in
    if i >= len then fail "unterminated cycle"
    else if s.[i] = ')' then Ok (i + 1, List.rev acc)
    else
      match parse_int i 0 false with
      | Ok (i, v) -> parse_cycle i (v :: acc)
      | Error e -> Error e
  in
  let rec parse_all i acc =
    let i = skip i in
    if i >= len then Ok (List.rev acc)
    else if s.[i] = '(' then
      match parse_cycle (i + 1) [] with
      | Ok (i, c) -> parse_all i (c :: acc)
      | Error e -> Error e
    else fail "expected '('"
  in
  match parse_all 0 [] with
  | Error e -> Error e
  | Ok cs -> ( try Ok (of_cycles n cs) with Invalid_argument m -> Error m)

let pp fmt p = Format.pp_print_string fmt (to_string p)
