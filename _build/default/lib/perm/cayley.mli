(** Cayley graphs of permutation groups and their quotients.

    Nodes of the Cayley graph are group-element indices; each generator
    [c] contributes the coloured edge set [{g → g·c}].  When the group
    acts regularly on the task labels the Cayley graph is isomorphic to
    the task graph via [g ↦ g(x₀)] (paper: x₀ = smallest label), and a
    coset partition of the group induces a balanced contraction. *)

val graphs : Group.t -> Oregami_graph.Digraph.t list
(** One digraph per generator, over group-element indices. *)

val combined : Group.t -> Oregami_graph.Ugraph.t
(** Undirected union of all generator edge sets (unit weights). *)

val correspondence : Group.t -> int array
(** [correspondence g] maps element index [i] to the task label
    [elements.(i)(x₀)] with [x₀ = 0].  When the action is regular this
    is a bijection G → X.  Raises [Invalid_argument] when the action is
    not regular. *)

val task_partition : Group.t -> int list list -> int list list
(** Pushes a partition of the element indices (e.g. cosets) through
    {!correspondence}, yielding a partition of task labels; blocks keep
    their order, members sorted. *)

val internalized_per_block : Group.t -> int list list -> Perm.t -> int
(** For a generator and a coset partition, the number of that
    generator's edges that stay inside each block — uniform across
    blocks for coset partitions, hence a single number.  (A generator of
    cycle length [l] whose cyclic group is contained in the subgroup
    internalizes its edges completely.) *)

val quotient_multigraph : Group.t -> int list list -> Oregami_graph.Digraph.t list
(** Per-generator quotient graphs over block indices: edge [B → B']
    with weight = number of group elements [g ∈ B] with [g·c ∈ B']
    (self-loops record internalized messages). *)
