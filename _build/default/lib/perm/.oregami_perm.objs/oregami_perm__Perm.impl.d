lib/perm/perm.ml: Array Char Format List Printf Stdlib String
