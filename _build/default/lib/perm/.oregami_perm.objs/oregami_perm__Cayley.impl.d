lib/perm/cayley.ml: Array Group Hashtbl List Option Oregami_graph Perm Printf
