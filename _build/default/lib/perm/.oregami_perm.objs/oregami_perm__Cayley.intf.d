lib/perm/cayley.mli: Group Oregami_graph Perm
