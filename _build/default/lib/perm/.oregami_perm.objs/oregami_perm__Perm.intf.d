lib/perm/perm.mli: Format
