lib/perm/group.mli: Format Perm
