lib/perm/group.ml: Array Format Hashtbl List Option Oregami_prelude Perm Queue
