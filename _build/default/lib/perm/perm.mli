(** Permutations of [{0, .., n-1}].

    The paper views each bijective LaRCS communication function as a
    permutation of the task labels and works with the group those
    permutations generate.  Composition is {e left-to-right}, following
    the paper's convention: [(123)] composed with [(13)(2)] is
    [(12)(3)]. *)

type t

val degree : t -> int

val identity : int -> t

val of_array : int array -> t
(** [of_array a] uses [a.(i)] as the image of [i]; raises
    [Invalid_argument] when [a] is not a permutation. *)

val to_array : t -> int array
(** A fresh copy of the image array. *)

val of_function : int -> (int -> int) -> t
(** [of_function n f] tabulates [f] on [0 .. n-1]; raises
    [Invalid_argument] when [f] is not a bijection on that set. *)

val is_bijection : int -> (int -> int) -> bool

val apply : t -> int -> int

val compose : t -> t -> t
(** [compose p q] applies [p] first, then [q] (left-to-right). *)

val inverse : t -> t

val power : t -> int -> t
(** [power p k] for any [k] (negative powers use the inverse). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val is_identity : t -> bool

val order : t -> int
(** Least positive [k] with [p^k = identity]. *)

val cycles : t -> int list list
(** Cycle decomposition including fixed points, each cycle starting at
    its smallest member, cycles ordered by first member:
    [(0 2 4 6)(1 3 5 7)] is [[[0;2;4;6]; [1;3;5;7]]]. *)

val cycle_type : t -> int list
(** Multiset of cycle lengths, sorted decreasingly. *)

val uniform_cycle_length : t -> int option
(** [Some l] when every cycle (fixed points included) has length [l] —
    the paper's Cayley-graph condition on group elements. *)

val of_cycles : int -> int list list -> t
(** Builds a permutation of the given degree from disjoint cycles
    (fixed points may be omitted). *)

val to_string : t -> string
(** Cycle notation, e.g. ["(0 2 4 6)(1 3 5 7)"]; the identity prints as
    ["()"] prefixed forms like ["(0)(1)..."] are avoided. *)

val of_string : int -> string -> (t, string) result
(** Parses cycle notation with whitespace- or comma-separated members,
    e.g. ["(0 4)(1 5)(2 6)(3 7)"]. *)

val pp : Format.formatter -> t -> unit
