module Digraph = Oregami_graph.Digraph
module Ugraph = Oregami_graph.Ugraph

let graphs g =
  let n = Group.order g in
  List.map
    (fun c ->
      let dg = Digraph.create n in
      let ci =
        match Group.index_of g c with
        | Some i -> i
        | None -> invalid_arg "Cayley.graphs: generator not in group"
      in
      for i = 0 to n - 1 do
        Digraph.add_edge dg i (Group.mul g i ci)
      done;
      dg)
    (Group.generators g)

let combined g =
  let n = Group.order g in
  let u = Ugraph.create n in
  List.iter
    (fun dg ->
      List.iter (fun (a, b, _) -> if a <> b && not (Ugraph.mem_edge u a b) then Ugraph.add_edge u a b)
        (Digraph.edges dg))
    (graphs g);
  u

let correspondence g =
  if not (Group.acts_regularly g) then
    invalid_arg "Cayley.correspondence: action is not regular";
  Array.init (Group.order g) (fun i -> Perm.apply (Group.element g i) 0)

let task_partition g blocks =
  let corr = correspondence g in
  List.map (fun block -> List.map (fun i -> corr.(i)) block |> List.sort compare) blocks

let block_of g blocks =
  let n = Group.order g in
  let owner = Array.make n (-1) in
  List.iteri (fun b members -> List.iter (fun i -> owner.(i) <- b) members) blocks;
  Array.iteri
    (fun i b -> if b = -1 then invalid_arg (Printf.sprintf "Cayley: element %d not in any block" i))
    owner;
  owner

let internalized_per_block g blocks c =
  let owner = block_of g blocks in
  let ci =
    match Group.index_of g c with
    | Some i -> i
    | None -> invalid_arg "Cayley.internalized_per_block: generator not in group"
  in
  let counts = Array.make (List.length blocks) 0 in
  for i = 0 to Group.order g - 1 do
    let j = Group.mul g i ci in
    if owner.(i) = owner.(j) then counts.(owner.(i)) <- counts.(owner.(i)) + 1
  done;
  Array.fold_left max 0 counts

let quotient_multigraph g blocks =
  let owner = block_of g blocks in
  let nb = List.length blocks in
  List.map
    (fun c ->
      let ci =
        match Group.index_of g c with
        | Some i -> i
        | None -> invalid_arg "Cayley.quotient_multigraph: generator not in group"
      in
      let counts = Hashtbl.create 16 in
      for i = 0 to Group.order g - 1 do
        let j = Group.mul g i ci in
        let key = (owner.(i), owner.(j)) in
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      done;
      let dg = Digraph.create nb in
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
      |> List.sort compare
      |> List.iter (fun ((a, b), w) -> Digraph.add_edge ~w dg a b);
      dg)
    (Group.generators g)
