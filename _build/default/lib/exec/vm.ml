module Mapping = Oregami_mapper.Mapping
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Digraph = Oregami_graph.Digraph

type outcome = {
  digest : int;
  messages_delivered : int;
  hops_traversed : int;
  slots_executed : int;
}

(* mixing must be deterministic and, across the messages of one slot,
   commutative: receivers sum mixed payloads *)
let mix a b = (a * 0x9E3779B1) lxor (b + 0x7F4A7C15) land max_int

let initial_state task = mix 0x12345 task

let exec_step tg states names =
  List.iter
    (fun name ->
      match Taskgraph.exec_phase tg name with
      | None -> ()
      | Some ep ->
        Array.iteri
          (fun task cost ->
            if cost > 0 then states.(task) <- mix states.(task) cost)
          ep.Taskgraph.costs)
    names

(* payloads captured before any delivery so intra-slot order cannot
   matter; receivers accumulate commutatively *)
let comm_payloads tg names states =
  List.concat_map
    (fun name ->
      match Taskgraph.comm_phase tg name with
      | None -> []
      | Some cp ->
        Digraph.edges cp.Taskgraph.edges
        |> List.filter (fun (u, v, _) -> u <> v)
        |> List.map (fun (u, v, w) -> (name, u, v, w, mix states.(u) w)))
    names

let run (m : Mapping.t) =
  let tg = m.Mapping.tg in
  let topo = m.Mapping.topo in
  let n = tg.Taskgraph.n in
  let states = Array.init n initial_state in
  let messages_delivered = ref 0 in
  let hops_traversed = ref 0 in
  let slots_executed = ref 0 in
  let routing_of phase =
    List.find_opt (fun pr -> pr.Mapping.pr_phase = phase) m.Mapping.routings
  in
  let deliver (phase, u, v, _w, payload) =
    match routing_of phase with
    | None -> Error (Printf.sprintf "phase %S has no routing" phase)
    | Some pr -> begin
      match
        List.find_opt (fun re -> re.Mapping.re_src = u && re.Mapping.re_dst = v) pr.Mapping.pr_edges
      with
      | None -> Error (Printf.sprintf "phase %S: edge %d->%d not routed" phase u v)
      | Some re ->
        let pu = Mapping.proc_of_task m u and pv = Mapping.proc_of_task m v in
        let route = re.Mapping.re_route in
        if pu = pv then
          if route.Routes.links = [] then Ok payload
          else Error (Printf.sprintf "co-located %d->%d has a route" u v)
        else begin
          (* walk hop by hop, checking each hop is a real link *)
          let rec walk position nodes =
            match nodes with
            | [] -> Error (Printf.sprintf "empty route for %d->%d" u v)
            | [ last ] ->
              if last = pv then Ok payload
              else Error (Printf.sprintf "route for %d->%d ends at processor %d" u v last)
            | a :: (b :: _ as rest) ->
              if a <> position then
                Error (Printf.sprintf "route for %d->%d teleports" u v)
              else begin
                match Topology.link_between topo a b with
                | None ->
                  Error (Printf.sprintf "route for %d->%d uses missing link %d-%d" u v a b)
                | Some _ ->
                  incr hops_traversed;
                  walk b rest
              end
          in
          match route.Routes.nodes with
          | first :: _ when first = pu -> walk pu route.Routes.nodes
          | _ -> Error (Printf.sprintf "route for %d->%d does not start at %d" u v pu)
        end
    end
  in
  let trace = Phase_expr.trace tg.Taskgraph.expr in
  let rec run_slots = function
    | [] -> Ok ()
    | slot :: rest ->
      incr slots_executed;
      let payloads = comm_payloads tg slot.Phase_expr.comms states in
      let rec deliver_all = function
        | [] -> Ok ()
        | msg :: more -> begin
          match deliver msg with
          | Error e -> Error e
          | Ok payload ->
            let _, _, v, _, _ = msg in
            states.(v) <- states.(v) + payload;
            incr messages_delivered;
            deliver_all more
        end
      in
      (match deliver_all payloads with
      | Error e -> Error e
      | Ok () ->
        exec_step tg states slot.Phase_expr.execs;
        run_slots rest)
  in
  match run_slots trace with
  | Error e -> Error e
  | Ok () ->
    let digest = Array.fold_left ( + ) 0 states land max_int in
    Ok
      {
        digest;
        messages_delivered = !messages_delivered;
        hops_traversed = !hops_traversed;
        slots_executed = !slots_executed;
      }

let reference_digest tg =
  let n = tg.Taskgraph.n in
  let states = Array.init n initial_state in
  List.iter
    (fun slot ->
      let payloads = comm_payloads tg slot.Phase_expr.comms states in
      List.iter (fun (_, _, v, _, payload) -> states.(v) <- states.(v) + payload) payloads;
      exec_step tg states slot.Phase_expr.execs)
    (Phase_expr.trace tg.Taskgraph.expr);
  Array.fold_left ( + ) 0 states land max_int
