(** A reference executor for mapped computations.

    Runs the phase-expression trace as an actual message-passing
    program: every task holds an integer state; an execution slot folds
    the task's cost into its state; a communication slot sends each
    task-graph edge's message — tagged with the sender's current state
    — hop by hop along the mapping's chosen route, and receivers fold
    arrived payloads in with a commutative combiner.

    Because slots are synchronous and the combiner is commutative, the
    final global digest depends only on the LaRCS program — {e not} on
    the mapping.  Executing the same program under two different valid
    mappings must give identical digests; a mapping that corrupts,
    drops, duplicates, or misroutes a message is caught either by a hop
    check or by a digest mismatch.  This is the dynamic counterpart of
    {!Oregami_mapper.Mapping.validate}'s static checks. *)

type outcome = {
  digest : int;  (** order-independent fold of all final task states *)
  messages_delivered : int;
  hops_traversed : int;
  slots_executed : int;
}

val run : Oregami_mapper.Mapping.t -> (outcome, string) result
(** Executes the whole trace.  Errors on: a route hop that is not a
    network link, a route that does not start/end at the placed
    sender/receiver, or a co-located edge with a non-empty route. *)

val reference_digest : Oregami_taskgraph.Taskgraph.t -> int
(** The digest the program must produce under {e any} valid mapping
    (computed directly on the task graph, no network involved). *)
