lib/exec/vm.ml: Array List Oregami_graph Oregami_mapper Oregami_taskgraph Oregami_topology Printf
