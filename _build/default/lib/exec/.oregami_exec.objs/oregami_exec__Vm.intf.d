lib/exec/vm.mli: Oregami_mapper Oregami_taskgraph
