(** Plain-text table rendering for the benchmark harness and METRICS
    reports: aligned columns, a header rule, and simple bar charts. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out under the header with
    column-wise alignment (default: first column left, rest right) and a
    separator rule.  Ragged rows are padded with empty cells. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit

val bar : width:int -> float -> float -> string
(** [bar ~width value max] is a textual bar of length proportional to
    [value / max] (clamped to [0, 1]), e.g. ["#####     "]. *)

val fixed : int -> float -> string
(** [fixed d x] formats [x] with [d] decimal places. *)

val section : string -> unit
(** Prints a prominent section banner (used to delimit experiments in
    the benchmark output). *)
