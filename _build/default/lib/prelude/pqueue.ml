type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] slots >= [size] are stale; a dummy entry fills slot 0 of a
     fresh queue only after the first push. *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap h i j =
  let t = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.(i) h.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < size && before h.(l) h.(i) then l else i in
  let smallest = if r < size && before h.(r) h.(smallest) then r else smallest in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h size smallest
  end

let grow q entry =
  let cap = Array.length q.heap in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nh = Array.make ncap entry in
    Array.blit q.heap 0 nh 0 q.size;
    q.heap <- nh
  end

let push q prio value =
  let entry = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q.heap (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q.heap q.size 0
    end;
    Some (top.prio, top.value)
  end

let peek q = if q.size = 0 then None else Some (q.heap.(0).prio, q.heap.(0).value)

let clear q = q.size <- 0

let of_list xs =
  let q = create () in
  List.iter (fun (prio, v) -> push q prio v) xs;
  q

let to_sorted_list q =
  let copy = { heap = Array.copy q.heap; size = q.size; next_seq = q.next_seq } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some pv -> drain (pv :: acc)
  in
  drain []
