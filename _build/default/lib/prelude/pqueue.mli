(** Imperative binary-heap priority queue with integer priorities.

    Lower priority values are popped first.  Used by the mapping
    heuristics (greedy merges, Dijkstra, NN-Embed candidate selection). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val length : 'a t -> int
(** Number of elements currently queued. *)

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes and returns a minimum-priority element, or [None]
    when the queue is empty.  Ties are broken by insertion order
    (earlier insertions first), which keeps the mapping algorithms
    deterministic. *)

val peek : 'a t -> (int * 'a) option
(** Like {!pop} without removal. *)

val clear : 'a t -> unit

val of_list : (int * 'a) list -> 'a t

val to_sorted_list : 'a t -> (int * 'a) list
(** Drains a copy of the queue into a priority-sorted list; [q] itself
    is not modified. *)
