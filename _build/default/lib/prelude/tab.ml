type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(aligns = []) ~header rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows
  in
  let norm r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let header = norm header and rows = List.map norm rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let align_of i =
    match List.nth_opt aligns i with
    | Some a -> a
    | None -> if i = 0 then Left else Right
  in
  let line row =
    row
    |> List.mapi (fun i cell -> pad (align_of i) widths.(i) cell)
    |> String.concat "  "
    |> fun s -> String.trim (" " ^ s) |> fun s -> s
  in
  let rule =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ?aligns ~header rows =
  print_endline (render ?aligns ~header rows)

let bar ~width value max_value =
  let frac =
    if max_value <= 0.0 then 0.0 else Float.max 0.0 (Float.min 1.0 (value /. max_value))
  in
  let n = int_of_float (Float.round (frac *. float_of_int width)) in
  String.make n '#' ^ String.make (width - n) ' '

let fixed d x = Printf.sprintf "%.*f" d x

let section title =
  let rule = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" rule title rule
