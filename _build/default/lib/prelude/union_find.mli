(** Disjoint-set forest with union by rank and path compression.

    Used by the contraction algorithms to maintain task clusters and by
    graph utilities (spanning structures, connectivity). *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]; returns [false] when
    they were already the same set. *)

val same : t -> int -> int -> bool

val size : t -> int -> int
(** Number of elements in the set containing the given element. *)

val count_sets : t -> int
(** Number of distinct sets. *)

val groups : t -> int list array
(** [groups t] lists the members of each set, indexed by representative;
    non-representative indices map to the empty list.  Members appear in
    increasing order. *)
