(** Fixed-capacity bitsets over [0 .. n-1], backed by [int] words.

    Used for visited sets in graph traversals, occupancy grids in the
    embedding algorithms, and element sets in the group computations. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val clear : t -> unit

val copy : t -> t

val full : int -> t
(** [full n] contains every element of [0 .. n-1]. *)

val iter : (int -> unit) -> t -> unit
(** Iterates members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst].  The two
    sets must have the same capacity. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] removes from [dst] everything not in [src]. *)

val equal : t -> t -> bool

val choose : t -> int option
(** Smallest member, if any. *)
