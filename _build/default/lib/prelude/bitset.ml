type t = { words : int array; n : int }

let bits_per_word = Sys.int_size

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n = { words = Array.make (max 1 (word_count n)) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.n)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let copy t = { words = Array.copy t.words; n = t.n }

let full n =
  let t = create n in
  for i = 0 to n - 1 do
    add t i
  done;
  t

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let low = !word land - !word in
      let bit =
        (* index of the single set bit in [low] *)
        let rec idx b acc = if b = 1 then acc else idx (b lsr 1) (acc + 1) in
        idx low 0
      in
      f ((w * bits_per_word) + bit);
      word := !word land lnot low
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let equal a b = a.n = b.n && Array.for_all2 (fun x y -> x = y) a.words b.words

let choose t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i
