(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized algorithm and benchmark in this repository takes an
    explicit [Rng.t] so results are reproducible across runs. *)

type t

val create : int -> t
(** [create seed] is a generator seeded deterministically from [seed]. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample : t -> int -> int -> int list
(** [sample t n k] draws [k] distinct values from [0 .. n-1]
    (requires [k <= n]); result is in increasing order. *)
