lib/prelude/pqueue.mli:
