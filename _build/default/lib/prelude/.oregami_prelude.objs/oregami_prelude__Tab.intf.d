lib/prelude/tab.mli:
