lib/prelude/tab.ml: Array Float List Printf String
