lib/prelude/rng.mli:
