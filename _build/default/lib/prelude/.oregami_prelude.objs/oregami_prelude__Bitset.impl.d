lib/prelude/bitset.ml: Array List Printf Sys
