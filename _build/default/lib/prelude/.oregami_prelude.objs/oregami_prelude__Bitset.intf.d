lib/prelude/bitset.mli:
