(** The MAPPER dispatch (paper Fig 3): pick the mapping strategy from
    the LaRCS analyses and produce a complete routed mapping.

    Priority: declared/detected nameable family → canned lookup;
    affine communication on a lattice + mesh-like target → systolic
    space-time placement; bijective phases forming a Cayley graph →
    group-theoretic contraction; otherwise MWM-Contract.  Embedding
    uses the canned placement or NN-Embed, and routing uses MM-Route
    (or the oblivious deterministic router on request). *)

type routing = Mm_route | Oblivious

type options = {
  b : int option;  (** load-balance bound B for MWM-Contract *)
  routing : routing;
  route_cap : int;  (** candidate shortest routes per pair *)
  allow_canned : bool;
  allow_group : bool;
  allow_systolic : bool;
  refine : bool;  (** pairwise-interchange improvement of the embedding *)
}

val default_options : options

val map_compiled :
  ?options:options ->
  Oregami_larcs.Compile.compiled ->
  Oregami_topology.Topology.t ->
  (Oregami_mapper.Mapping.t, string) result
(** Full pipeline from a compiled LaRCS program.  The produced mapping
    always passes [Mapping.validate]. *)

val map_taskgraph :
  ?options:options ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  (Oregami_mapper.Mapping.t, string) result
(** Same dispatch for a bare task graph (no AST-level affine analysis;
    family detection and the group path still apply). *)

val strategy_preview :
  Oregami_larcs.Compile.compiled -> Oregami_topology.Topology.t -> string
(** Which strategy the dispatch would choose, without running it. *)
