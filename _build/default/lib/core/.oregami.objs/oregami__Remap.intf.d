lib/core/remap.mli: Driver Oregami_mapper Oregami_taskgraph Oregami_topology
