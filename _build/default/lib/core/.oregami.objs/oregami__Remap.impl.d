lib/core/remap.ml: Array Driver List Oregami_mapper Oregami_metrics Oregami_taskgraph Oregami_topology Result
