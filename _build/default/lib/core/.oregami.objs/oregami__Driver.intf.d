lib/core/driver.mli: Oregami_larcs Oregami_mapper Oregami_taskgraph Oregami_topology
