lib/core/driver.ml: Array Hashtbl List Option Oregami_graph Oregami_larcs Oregami_mapper Oregami_metrics Oregami_systolic Oregami_taskgraph Oregami_topology Printf
