(** Directed graphs with integer-weighted edges over nodes [0 .. n-1].

    This is the base representation for task-graph phases (each LaRCS
    communication phase compiles to one digraph) and for directed
    network links.  Parallel edges are allowed; [weight] sums them. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on nodes [0 .. n-1]. *)

val node_count : t -> int

val edge_count : t -> int
(** Number of stored (parallel edges counted separately) edges. *)

val add_edge : ?w:int -> t -> int -> int -> unit
(** [add_edge ~w g u v] adds the edge [u -> v] with weight [w]
    (default 1).  Self loops are permitted but ignored by the mapping
    algorithms. *)

val succ : t -> int -> (int * int) list
(** [(v, w)] pairs for edges leaving the node, in insertion order. *)

val pred : t -> int -> (int * int) list

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val weight : t -> int -> int -> int
(** Total weight of all parallel [u -> v] edges (0 when absent). *)

val mem_edge : t -> int -> int -> bool

val edges : t -> (int * int * int) list
(** All [(u, v, w)] triples, grouped by source in increasing order. *)

val total_weight : t -> int

val map_weights : (int -> int -> int -> int) -> t -> t
(** [map_weights f g] is [g] with each edge weight [w] on [u -> v]
    replaced by [f u v w]. *)

val transpose : t -> t

val copy : t -> t

val union : t -> t -> t
(** Edge-union of two graphs on the same node set. *)

val to_undirected : t -> Ugraph.t
(** Forgets orientation; weights of antiparallel/parallel edges sum. *)

val of_edges : int -> (int * int * int) list -> t

val equal : t -> t -> bool
(** Same node count and same total weight between every ordered pair. *)

val pp : Format.formatter -> t -> unit
