lib/graph/shortest.ml: Array List Oregami_prelude Traverse Ugraph
