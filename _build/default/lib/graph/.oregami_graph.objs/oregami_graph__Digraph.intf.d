lib/graph/digraph.mli: Format Ugraph
