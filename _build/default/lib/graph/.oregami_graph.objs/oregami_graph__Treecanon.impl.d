lib/graph/treecanon.ml: Array List String Traverse Ugraph
