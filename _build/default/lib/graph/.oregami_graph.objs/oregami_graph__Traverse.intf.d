lib/graph/traverse.mli: Digraph Ugraph
