lib/graph/treecanon.mli: Ugraph
