lib/graph/digraph.ml: Array Format Hashtbl List Option Printf Ugraph
