lib/graph/ugraph.ml: Array Format Hashtbl List Printf
