lib/graph/iso.ml: Array Digraph List Option Traverse Ugraph
