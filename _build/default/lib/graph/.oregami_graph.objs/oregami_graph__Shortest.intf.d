lib/graph/shortest.mli: Ugraph
