lib/graph/iso.mli: Digraph Ugraph
