lib/graph/traverse.ml: Array Digraph List Option Oregami_prelude Queue Ugraph
