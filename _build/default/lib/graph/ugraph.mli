(** Undirected graphs with integer-weighted edges over nodes [0 .. n-1].

    Network topologies and the cluster graphs built during contraction
    are undirected.  Parallel edges are merged: adding an edge that
    already exists accumulates its weight. *)

type t

val create : int -> t

val node_count : t -> int

val edge_count : t -> int
(** Number of distinct (unordered) adjacent pairs. *)

val add_edge : ?w:int -> t -> int -> int -> unit
(** [add_edge ~w g u v] adds [w] (default 1) to the weight of the
    undirected edge [{u, v}].  [u <> v] is required. *)

val neighbors : t -> int -> (int * int) list
(** [(v, w)] pairs adjacent to the node, in first-insertion order. *)

val degree : t -> int -> int

val weight : t -> int -> int -> int
(** Weight of edge [{u, v}], or 0 when absent. *)

val mem_edge : t -> int -> int -> bool

val edges : t -> (int * int * int) list
(** All [(u, v, w)] with [u < v], sorted lexicographically. *)

val total_weight : t -> int

val copy : t -> t

val of_edges : int -> (int * int * int) list -> t

val complete : int -> t
(** Unit-weight complete graph [K_n]. *)

val max_degree : t -> int

val is_regular : t -> bool
(** All nodes have equal degree. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
