(** Shortest-path computations used by the embedding and routing
    algorithms: unweighted all-pairs hop counts, Dijkstra, and
    enumeration of all shortest paths between a pair of nodes. *)

val all_pairs_hops : Ugraph.t -> int array array
(** [all_pairs_hops g] gives hop distance between every pair of nodes
    ([max_int] when unreachable).  O(V·(V+E)). *)

val dijkstra : Ugraph.t -> int -> int array * int array
(** [dijkstra g s] returns [(dist, parent)] using edge weights as
    lengths (weights must be non-negative); [parent.(s) = s] and
    [parent.(v) = -1] for unreachable [v]. *)

val path_to : parent:int array -> int -> int list option
(** Reconstructs the path from the Dijkstra/BFS source to the node
    (inclusive); [None] if unreachable. *)

val all_shortest_paths : ?cap:int -> Ugraph.t -> int -> int -> int list list
(** [all_shortest_paths g u v] enumerates every minimum-hop path from
    [u] to [v] as node lists (both endpoints included), up to [cap]
    paths (default 64).  Paths are produced in lexicographic order of
    node ids.  Empty when [v] is unreachable; [[ [u] ]] when [u = v]. *)

val count_shortest_paths : Ugraph.t -> int -> int -> int
(** Number of distinct minimum-hop paths (not capped; may be large but
    fits an [int] for the network sizes used here). *)
