(** Graph traversals: breadth-first and depth-first search, connected
    components, and topological sorting. *)

val bfs_order : Ugraph.t -> int -> int list
(** Nodes reachable from the start, in BFS order (start first).
    Neighbours are visited in adjacency-list order. *)

val bfs_dist : Ugraph.t -> int -> int array
(** Hop distances from the start; unreachable nodes get [max_int]. *)

val bfs_dist_digraph : Digraph.t -> int -> int array
(** Hop distances following edge direction. *)

val dfs_order : Ugraph.t -> int -> int list
(** Preorder DFS from the start. *)

val components : Ugraph.t -> int list list
(** Connected components, each sorted increasingly, ordered by their
    smallest member. *)

val is_connected : Ugraph.t -> bool

val topological_sort : Digraph.t -> int list option
(** Kahn's algorithm; [None] when the graph has a directed cycle.
    Ties are broken by smallest node id, so the result is canonical. *)

val is_dag : Digraph.t -> bool

val eccentricity : Ugraph.t -> int -> int
(** Greatest hop distance from the node to any reachable node. *)

val diameter : Ugraph.t -> int
(** Maximum eccentricity over all nodes; [max_int] if disconnected,
    0 for graphs with fewer than two nodes. *)
