type t = {
  n : int;
  succ : (int * int) list array; (* insertion order, reversed internally *)
  pred : (int * int) list array;
  mutable edge_count : int;
}

let create n = { n; succ = Array.make n []; pred = Array.make n []; edge_count = 0 }

let node_count g = g.n

let edge_count g = g.edge_count

let check g u =
  if u < 0 || u >= g.n then
    invalid_arg (Printf.sprintf "Digraph: node %d out of [0,%d)" u g.n)

let add_edge ?(w = 1) g u v =
  check g u;
  check g v;
  g.succ.(u) <- (v, w) :: g.succ.(u);
  g.pred.(v) <- (u, w) :: g.pred.(v);
  g.edge_count <- g.edge_count + 1

let succ g u =
  check g u;
  List.rev g.succ.(u)

let pred g v =
  check g v;
  List.rev g.pred.(v)

let out_degree g u =
  check g u;
  List.length g.succ.(u)

let in_degree g v =
  check g v;
  List.length g.pred.(v)

let weight g u v =
  check g u;
  check g v;
  List.fold_left (fun acc (v', w) -> if v' = v then acc + w else acc) 0 g.succ.(u)

let mem_edge g u v =
  check g u;
  check g v;
  List.exists (fun (v', _) -> v' = v) g.succ.(u)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun (v, w) -> acc := (u, v, w) :: !acc) g.succ.(u)
  done;
  !acc

let total_weight g =
  Array.fold_left (fun acc l -> List.fold_left (fun a (_, w) -> a + w) acc l) 0 g.succ

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v, w) -> add_edge ~w g u v) es;
  g

let map_weights f g = of_edges g.n (List.map (fun (u, v, w) -> (u, v, f u v w)) (edges g))

let transpose g = of_edges g.n (List.map (fun (u, v, w) -> (v, u, w)) (edges g))

let copy g = of_edges g.n (edges g)

let union a b =
  if a.n <> b.n then invalid_arg "Digraph.union: node count mismatch";
  of_edges a.n (edges a @ edges b)

let to_undirected g =
  let u = Ugraph.create g.n in
  List.iter (fun (a, b, w) -> if a <> b then Ugraph.add_edge ~w u a b) (edges g);
  u

let aggregate g =
  (* total weight per ordered pair, for structural equality *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (u, v, w) ->
      let k = (u * g.n) + v in
      Hashtbl.replace tbl k (w + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (edges g);
  Hashtbl.fold (fun k w acc -> if w = 0 then acc else (k, w) :: acc) tbl []
  |> List.sort compare

let equal a b = a.n = b.n && aggregate a = aggregate b

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph %d nodes %d edges" g.n g.edge_count;
  List.iter (fun (u, v, w) -> Format.fprintf fmt "@,  %d -> %d (w=%d)" u v w) (edges g);
  Format.fprintf fmt "@]"
