module Pqueue = Oregami_prelude.Pqueue

let all_pairs_hops g =
  Array.init (Ugraph.node_count g) (fun u -> Traverse.bfs_dist g u)

let dijkstra g s =
  let n = Ugraph.node_count g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let done_ = Array.make n false in
  dist.(s) <- 0;
  parent.(s) <- s;
  let pq = Pqueue.create () in
  Pqueue.push pq 0 s;
  let rec loop () =
    match Pqueue.pop pq with
    | None -> ()
    | Some (d, u) ->
      if not done_.(u) then begin
        done_.(u) <- true;
        let relax (v, w) =
          if w < 0 then invalid_arg "Shortest.dijkstra: negative weight";
          if (not done_.(v)) && d + w < dist.(v) then begin
            dist.(v) <- d + w;
            parent.(v) <- u;
            Pqueue.push pq dist.(v) v
          end
        in
        List.iter relax (Ugraph.neighbors g u)
      end;
      loop ()
  in
  loop ();
  (dist, parent)

let path_to ~parent v =
  if v < 0 || v >= Array.length parent || parent.(v) = -1 then None
  else begin
    let rec build v acc = if parent.(v) = v then v :: acc else build parent.(v) (v :: acc) in
    Some (build v [])
  end

let all_shortest_paths ?(cap = 64) g u v =
  let dist = Traverse.bfs_dist g v in
  if dist.(u) = max_int then []
  else begin
    (* Walk from [u] towards [v], only along edges that decrease the
       BFS distance to [v]; every maximal walk is a shortest path. *)
    let out = ref [] and count = ref 0 in
    let rec go node acc =
      if !count < cap then
        if node = v then begin
          out := List.rev (v :: acc) :: !out;
          incr count
        end
        else begin
          let nexts =
            Ugraph.neighbors g node
            |> List.filter_map (fun (w, _) ->
                   if dist.(w) = dist.(node) - 1 then Some w else None)
            |> List.sort_uniq compare
          in
          List.iter (fun w -> go w (node :: acc)) nexts
        end
    in
    go u [];
    List.rev !out
  end

let count_shortest_paths g u v =
  let dist = Traverse.bfs_dist g u in
  if dist.(v) = max_int then 0
  else begin
    let n = Ugraph.node_count g in
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare dist.(a) dist.(b)) order;
    let ways = Array.make n 0 in
    ways.(u) <- 1;
    Array.iter
      (fun node ->
        if dist.(node) < max_int && ways.(node) > 0 then
          List.iter
            (fun (w, _) -> if dist.(w) = dist.(node) + 1 then ways.(w) <- ways.(w) + ways.(node))
            (Ugraph.neighbors g node))
      order;
    ways.(v)
  end
