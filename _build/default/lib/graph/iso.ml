let degree_multiset g =
  List.sort compare (List.init (Ugraph.node_count g) (Ugraph.degree g))

(* Generic backtracking node-map search.  [compatible u v] filters
   candidate images, [consistent mapping u v] checks edges against all
   previously mapped nodes. *)
let search n ~candidates ~consistent ~fixed =
  let mapping = Array.make n (-1) in
  let used = Array.make n false in
  let ok_fixed =
    match fixed with
    | None -> true
    | Some (u, v) ->
      mapping.(u) <- v;
      used.(v) <- true;
      true
  in
  if not ok_fixed then None
  else begin
    let order =
      (* map the fixed node first (already done), then the rest *)
      List.init n (fun i -> i) |> List.filter (fun u -> mapping.(u) = -1)
    in
    let rec go = function
      | [] -> true
      | u :: rest ->
        List.exists
          (fun v ->
            (not used.(v))
            && consistent mapping u v
            &&
            begin
              mapping.(u) <- v;
              used.(v) <- true;
              if go rest then true
              else begin
                mapping.(u) <- -1;
                used.(v) <- false;
                false
              end
            end)
          (candidates u)
    in
    if go order then Some mapping else None
  end

let isomorphism a b =
  let n = Ugraph.node_count a in
  if n <> Ugraph.node_count b || Ugraph.edge_count a <> Ugraph.edge_count b then None
  else if degree_multiset a <> degree_multiset b then None
  else begin
    let candidates u =
      let d = Ugraph.degree a u in
      List.init n (fun v -> v) |> List.filter (fun v -> Ugraph.degree b v = d)
    in
    let consistent mapping u v =
      let rec ok us =
        match us with
        | [] -> true
        | u' :: rest ->
          (mapping.(u') = -1
          || Ugraph.mem_edge a u u' = Ugraph.mem_edge b v mapping.(u'))
          && ok rest
      in
      ok (List.init n (fun i -> i))
    in
    search n ~candidates ~consistent ~fixed:None
  end

let isomorphic a b = Option.is_some (isomorphism a b)

let isomorphism_distance_pruned a b =
  let n = Ugraph.node_count a in
  if n <> Ugraph.node_count b || Ugraph.edge_count a <> Ugraph.edge_count b then None
  else begin
    let da = Array.init n (fun u -> Traverse.bfs_dist a u) in
    let db = Array.init n (fun v -> Traverse.bfs_dist b v) in
    let profile d x = List.sort compare (Array.to_list d.(x)) in
    let profiles_a = Array.init n (profile da) in
    let profiles_b = Array.init n (profile db) in
    (* global invariant: the multiset of distance profiles must agree *)
    let sorted arr = List.sort compare (Array.to_list arr) in
    if sorted profiles_a <> sorted profiles_b then None
    else begin
      let candidates u =
        List.init n (fun v -> v) |> List.filter (fun v -> profiles_b.(v) = profiles_a.(u))
      in
      let consistent mapping u v =
        let rec ok us =
          match us with
          | [] -> true
          | u' :: rest ->
            (mapping.(u') = -1 || da.(u).(u') = db.(v).(mapping.(u'))) && ok rest
        in
        ok (List.init n (fun i -> i))
      in
      search n ~candidates ~consistent ~fixed:None
    end
  end

let digraph_isomorphism a b =
  let n = Digraph.node_count a in
  if n <> Digraph.node_count b then None
  else begin
    let distinct_degrees g u =
      (List.length (List.sort_uniq compare (List.map fst (Digraph.succ g u))),
       List.length (List.sort_uniq compare (List.map fst (Digraph.pred g u))))
    in
    let candidates u =
      let d = distinct_degrees a u in
      List.init n (fun v -> v) |> List.filter (fun v -> distinct_degrees b v = d)
    in
    let consistent mapping u v =
      let rec ok us =
        match us with
        | [] -> true
        | u' :: rest ->
          (mapping.(u') = -1
          || Digraph.weight a u u' = Digraph.weight b v mapping.(u')
             && Digraph.weight a u' u = Digraph.weight b mapping.(u') v)
          && ok rest
      in
      ok (List.init n (fun i -> i))
    in
    search n ~candidates ~consistent ~fixed:None
  end

let is_automorphism g f =
  let n = Ugraph.node_count g in
  Array.length f = n
  && begin
       let seen = Array.make n false in
       Array.for_all
         (fun v ->
           v >= 0 && v < n
           &&
           if seen.(v) then false
           else begin
             seen.(v) <- true;
             true
           end)
         f
     end
  && List.for_all
       (fun (u, v, _) -> Ugraph.mem_edge g f.(u) f.(v))
       (Ugraph.edges g)

let automorphism_fixing g u v =
  let n = Ugraph.node_count g in
  if Ugraph.degree g u <> Ugraph.degree g v then None
  else begin
    let candidates x =
      let d = Ugraph.degree g x in
      List.init n (fun y -> y) |> List.filter (fun y -> Ugraph.degree g y = d)
    in
    let consistent mapping x y =
      let rec ok xs =
        match xs with
        | [] -> true
        | x' :: rest ->
          (mapping.(x') = -1 || Ugraph.mem_edge g x x' = Ugraph.mem_edge g y mapping.(x'))
          && ok rest
      in
      ok (List.init n (fun i -> i))
    in
    search n ~candidates ~consistent ~fixed:(Some (u, v))
  end

let is_node_symmetric g =
  let n = Ugraph.node_count g in
  n <= 1
  ||
  let rec go v = v >= n || (Option.is_some (automorphism_fixing g 0 v) && go (v + 1)) in
  go 1
