(** Canonical forms for free trees (AHU encoding rooted at the tree
    centre), giving linear-ish-time tree isomorphism.  Used to detect
    nameable tree-shaped task graphs (full binary trees, binomial
    trees) of any size. *)

val is_tree : Ugraph.t -> bool
(** Connected with exactly [n - 1] edges. *)

val canonical : Ugraph.t -> string option
(** Canonical string of the tree (independent of labelling); [None]
    when the graph is not a tree. *)

val isomorphic_trees : Ugraph.t -> Ugraph.t -> bool
