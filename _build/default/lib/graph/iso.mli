(** Graph isomorphism for small graphs (backtracking with degree and
    adjacency pruning).  Used to detect nameable task-graph families
    and to validate the group-theoretic Cayley-graph construction. *)

val isomorphism : Ugraph.t -> Ugraph.t -> int array option
(** [isomorphism a b] is a bijection [f] (as an array indexed by nodes
    of [a]) with [{u,v} ∈ a ⟺ {f u, f v} ∈ b], ignoring weights, or
    [None].  Exponential in the worst case; intended for graphs with at
    most a few dozen nodes. *)

val isomorphic : Ugraph.t -> Ugraph.t -> bool

val isomorphism_distance_pruned : Ugraph.t -> Ugraph.t -> int array option
(** Like {!isomorphism} but for regular, highly symmetric graphs
    (tori, circulants) where degree pruning is useless: compares
    all-pairs distance multisets first (isomorphic graphs must agree)
    and prunes the backtracking with distance consistency — a partial
    mapping must preserve every pairwise distance, not just adjacency.
    Equivalent result to {!isomorphism}, vastly faster on such
    graphs. *)

val digraph_isomorphism : Digraph.t -> Digraph.t -> int array option
(** Directed variant; compares aggregated edge weights, so parallel
    edges with equal total weight are identified. *)

val is_automorphism : Ugraph.t -> int array -> bool
(** Checks that a permutation preserves adjacency. *)

val is_node_symmetric : Ugraph.t -> bool
(** True when the automorphism group is transitive on nodes, i.e. for
    every node [v] some automorphism maps node 0 to [v].  Exponential in
    the worst case; intended for small graphs (≤ ~32 nodes). *)
