module Bitset = Oregami_prelude.Bitset

let bfs_order g start =
  let n = Ugraph.node_count g in
  let seen = Bitset.create n in
  let q = Queue.create () in
  Bitset.add seen start;
  Queue.add start q;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    acc := u :: !acc;
    List.iter
      (fun (v, _) ->
        if not (Bitset.mem seen v) then begin
          Bitset.add seen v;
          Queue.add v q
        end)
      (Ugraph.neighbors g u)
  done;
  List.rev !acc

let generic_bfs_dist n neighbors start =
  let dist = Array.make n max_int in
  dist.(start) <- 0;
  let q = Queue.create () in
  Queue.add start q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      (neighbors u)
  done;
  dist

let bfs_dist g start =
  generic_bfs_dist (Ugraph.node_count g) (fun u -> List.map fst (Ugraph.neighbors g u)) start

let bfs_dist_digraph g start =
  generic_bfs_dist (Digraph.node_count g) (fun u -> List.map fst (Digraph.succ g u)) start

let dfs_order g start =
  let n = Ugraph.node_count g in
  let seen = Bitset.create n in
  let acc = ref [] in
  let rec visit u =
    if not (Bitset.mem seen u) then begin
      Bitset.add seen u;
      acc := u :: !acc;
      List.iter (fun (v, _) -> visit v) (Ugraph.neighbors g u)
    end
  in
  visit start;
  List.rev !acc

let components g =
  let n = Ugraph.node_count g in
  let seen = Bitset.create n in
  let comps = ref [] in
  for start = 0 to n - 1 do
    if not (Bitset.mem seen start) then begin
      let comp = bfs_order g start in
      List.iter (Bitset.add seen) comp;
      comps := List.sort compare comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g = Ugraph.node_count g <= 1 || List.length (components g) = 1

let topological_sort g =
  let n = Digraph.node_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let pq = Oregami_prelude.Pqueue.create () in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then Oregami_prelude.Pqueue.push pq u u
  done;
  let rec go acc count =
    match Oregami_prelude.Pqueue.pop pq with
    | None -> if count = n then Some (List.rev acc) else None
    | Some (_, u) ->
      List.iter
        (fun (v, _) ->
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Oregami_prelude.Pqueue.push pq v v)
        (Digraph.succ g u);
      go (u :: acc) (count + 1)
  in
  go [] 0

let is_dag g = Option.is_some (topological_sort g)

let eccentricity g u =
  let dist = bfs_dist g u in
  Array.fold_left
    (fun acc d -> if d = max_int then max_int else max acc d)
    0 dist

let diameter g =
  let n = Ugraph.node_count g in
  if n <= 1 then 0
  else begin
    let best = ref 0 in
    (try
       for u = 0 to n - 1 do
         let e = eccentricity g u in
         if e = max_int then begin
           best := max_int;
           raise Exit
         end;
         best := max !best e
       done
     with Exit -> ());
    !best
  end
