let is_tree g =
  Ugraph.node_count g > 0
  && Ugraph.edge_count g = Ugraph.node_count g - 1
  && Traverse.is_connected g

(* Centre(s) of a tree: repeatedly strip leaves; one or two remain. *)
let centers g =
  let n = Ugraph.node_count g in
  if n = 1 then [ 0 ]
  else begin
    let degree = Array.init n (Ugraph.degree g) in
    let removed = Array.make n false in
    let leaves = ref [] in
    for v = 0 to n - 1 do
      if degree.(v) <= 1 then leaves := v :: !leaves
    done;
    let remaining = ref n in
    let frontier = ref !leaves in
    while !remaining > 2 do
      let next = ref [] in
      List.iter
        (fun v ->
          removed.(v) <- true;
          decr remaining;
          List.iter
            (fun (u, _) ->
              if not removed.(u) then begin
                degree.(u) <- degree.(u) - 1;
                if degree.(u) = 1 then next := u :: !next
              end)
            (Ugraph.neighbors g v))
        !frontier;
      frontier := !next
    done;
    let out = ref [] in
    for v = n - 1 downto 0 do
      if not removed.(v) then out := v :: !out
    done;
    !out
  end

let rec encode g parent v =
  let children =
    Ugraph.neighbors g v
    |> List.filter_map (fun (u, _) -> if u <> parent then Some (encode g v u) else None)
    |> List.sort compare
  in
  "(" ^ String.concat "" children ^ ")"

let canonical g =
  if not (is_tree g) then None
  else begin
    let encodings = List.map (fun c -> encode g (-1) c) (centers g) in
    Some (String.concat "|" (List.sort compare encodings))
  end

let isomorphic_trees a b =
  match (canonical a, canonical b) with
  | Some ca, Some cb -> ca = cb
  | None, _ | _, None -> false
