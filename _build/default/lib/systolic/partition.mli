(** Partitioning systolic designs onto fixed-size hardware.

    Paper §4.2.1: "many of the systolic array synthesis algorithms,
    together with the results on partitioning large systolic arrays for
    smaller sized hardware, can be used to perform the mappings".

    This module implements LSGP partitioning (locally sequential,
    globally parallel): the virtual processor space of a design is
    tiled by a block grid; each physical processor executes its block's
    virtual processors sequentially, so a time step of the virtual
    array costs [block size] steps on the partitioned one. *)

type partitioned = {
  design : Synthesis.design;
  block : int array;  (** per-dimension block edge lengths *)
  physical : int array;  (** physical array extents per dimension *)
  physical_count : int;
  slowdown : int;  (** virtual processors per physical = Π block *)
  latency : int;  (** design latency × slowdown (LSGP bound) *)
}

val partition :
  Recurrence.t -> Synthesis.design -> max_pes:int -> (partitioned, string) result
(** Chooses the most balanced block grid fitting [max_pes] physical
    processors (exhaustive over divisor-ish block shapes of the
    virtual extents).  Fails when the design's processor space is
    empty. *)

val virtual_extents : Recurrence.t -> Synthesis.design -> int array * int array
(** [(lows, highs)] of the design's processor coordinates over the
    domain points. *)

val check : Recurrence.t -> Synthesis.design -> partitioned -> (unit, string) result
(** Validates the partition: every virtual processor falls in exactly
    one block, block count ≤ [max], and the latency bound holds
    against a direct simulation of the LSGP schedule (each physical
    processor serialises its block's firings in virtual-time order). *)

val partition_lpgs :
  Recurrence.t -> Synthesis.design -> max_pes:int -> (partitioned, string) result
(** The dual LPGS scheme (locally parallel, globally sequential):
    virtual processors are dealt round-robin (by coordinate modulo the
    physical extents), so each physical processor hosts a {e strided}
    subset instead of a contiguous block.  Same slowdown arithmetic;
    different communication locality — LPGS keeps neighbouring virtual
    PEs on distinct physical PEs (good for pipelining), LSGP keeps them
    together (good for internalizing traffic). *)

val lpgs_owner : partitioned -> lows:int array -> int array -> int
(** Physical processor owning a virtual PE coordinate under LPGS. *)

val check_lpgs :
  Recurrence.t -> Synthesis.design -> partitioned -> (unit, string) result
(** Macro-step validation of an LPGS partition (each physical PE fires
    at most [slowdown] virtual events per virtual time step). *)
