(** Small exact integer linear algebra for space-time mapping. *)

val dot : int array -> int array -> int

val mat_vec : int array array -> int array -> int array

val gcd : int -> int -> int
(** Non-negative gcd; [gcd 0 0 = 0]. *)

val gcd_vec : int array -> int

val primitive : int array -> int array
(** Divides by the gcd (identity on the zero vector). *)

val orthogonal_basis : int array -> int array array
(** For a non-zero [u] of dimension [d], a basis of [d-1] primitive
    integer vectors spanning a lattice complement to [u] (rows of the
    allocation matrix).  Supported for [d ≤ 3]. *)

val enum_vectors : dims:int -> bound:int -> int array list
(** All non-zero integer vectors with entries in [-bound..bound],
    lexicographically ordered. *)
