type domain = {
  lower : int array;
  upper : int array;
  halfspaces : (int array * int) list;
}

type dependence = { dep_name : string; vector : int array }

type t = { name : string; domain : domain; deps : dependence list }

let dims t = Array.length t.domain.lower

let mem d x =
  Array.length x = Array.length d.lower
  && begin
       let ok = ref true in
       Array.iteri (fun i v -> if v < d.lower.(i) || v > d.upper.(i) then ok := false) x;
       !ok
     end
  && List.for_all (fun (a, b) -> Linalg.dot a x <= b) d.halfspaces

let points ?(cap = 200_000) d =
  let dim = Array.length d.lower in
  let out = ref [] in
  let count = ref 0 in
  let x = Array.copy d.lower in
  let rec go i =
    if i = dim then begin
      if List.for_all (fun (a, b) -> Linalg.dot a x <= b) d.halfspaces then begin
        incr count;
        if !count > cap then invalid_arg "Recurrence.points: domain too large";
        out := Array.copy x :: !out
      end
    end
    else
      for v = d.lower.(i) to d.upper.(i) do
        x.(i) <- v;
        go (i + 1)
      done
  in
  go 0;
  List.rev !out

let point_count ?cap d = List.length (points ?cap d)

let validate t =
  let dim = dims t in
  let ( let* ) = Result.bind in
  let* () =
    if Array.length t.domain.upper = dim then Ok ()
    else Error "domain bound arrays differ in dimension"
  in
  let* () =
    let ok = ref true in
    Array.iteri (fun i lo -> if lo > t.domain.upper.(i) then ok := false) t.domain.lower;
    if !ok then Ok () else Error "empty domain box"
  in
  List.fold_left
    (fun acc dep ->
      let* () = acc in
      if Array.length dep.vector <> dim then
        Error (Printf.sprintf "dependence %S has wrong dimension" dep.dep_name)
      else if Array.for_all (( = ) 0) dep.vector then
        Error (Printf.sprintf "dependence %S is the zero vector" dep.dep_name)
      else Ok ())
    (Ok ()) t.deps

let matmul n =
  {
    name = Printf.sprintf "matmul(%d)" n;
    domain = { lower = [| 0; 0; 0 |]; upper = [| n - 1; n - 1; n - 1 |]; halfspaces = [] };
    deps =
      [
        { dep_name = "a"; vector = [| 0; 1; 0 |] };
        { dep_name = "b"; vector = [| 1; 0; 0 |] };
        { dep_name = "c"; vector = [| 0; 0; 1 |] };
      ];
  }

let convolution n k =
  {
    name = Printf.sprintf "convolution(%d,%d)" n k;
    domain = { lower = [| 0; 0 |]; upper = [| n - 1; k - 1 |]; halfspaces = [] };
    deps =
      [
        { dep_name = "w"; vector = [| 1; 0 |] };
        { dep_name = "x"; vector = [| 1; -1 |] };
        { dep_name = "y"; vector = [| 0; 1 |] };
      ];
  }

let fir n taps =
  { (convolution n taps) with name = Printf.sprintf "fir(%d,%d)" n taps }
