type partitioned = {
  design : Synthesis.design;
  block : int array;
  physical : int array;
  physical_count : int;
  slowdown : int;
  latency : int;
}

let virtual_extents r design =
  let points = Recurrence.points r.Recurrence.domain in
  let pes = List.map (fun x -> Linalg.mat_vec design.Synthesis.allocation x) points in
  match pes with
  | [] -> ([||], [||])
  | first :: rest ->
    let lows = Array.copy first and highs = Array.copy first in
    List.iter
      (fun pe ->
        Array.iteri
          (fun i v ->
            if v < lows.(i) then lows.(i) <- v;
            if v > highs.(i) then highs.(i) <- v)
          pe)
      rest;
    (lows, highs)

let partition r design ~max_pes =
  if max_pes < 1 then Error "need at least one physical processor"
  else begin
    let lows, highs = virtual_extents r design in
    if Array.length lows = 0 then Error "design has an empty processor space"
    else begin
      let dims = Array.length lows in
      let sizes = Array.init dims (fun i -> highs.(i) - lows.(i) + 1) in
      (* enumerate block shapes; keep the feasible one with the least
         slowdown, then the most balanced *)
      let best = ref None in
      let rec enum i block =
        if i = dims then begin
          let block = Array.of_list (List.rev block) in
          let physical = Array.init dims (fun j -> (sizes.(j) + block.(j) - 1) / block.(j)) in
          let count = Array.fold_left ( * ) 1 physical in
          if count <= max_pes then begin
            let slowdown = Array.fold_left ( * ) 1 block in
            let spread =
              Array.fold_left max 1 block - Array.fold_left min max_int block
            in
            let key = (slowdown, spread, Array.to_list block) in
            match !best with
            | Some (bk, _, _, _) when bk <= key -> ()
            | Some _ | None -> best := Some (key, block, physical, count)
          end
        end
        else
          for b = 1 to sizes.(i) do
            enum (i + 1) (b :: block)
          done
      in
      enum 0 [];
      match !best with
      | None -> Error "no feasible block shape (max_pes too small?)"
      | Some (_, block, physical, physical_count) ->
        let slowdown = Array.fold_left ( * ) 1 block in
        Ok
          {
            design;
            block;
            physical;
            physical_count;
            slowdown;
            latency = design.Synthesis.latency * slowdown;
          }
    end
  end

let check r design p =
  let ( let* ) = Result.bind in
  let lows, _ = virtual_extents r design in
  let dims = Array.length lows in
  let* () =
    if Array.length p.block = dims then Ok () else Error "block dimension mismatch"
  in
  let points = Recurrence.points r.Recurrence.domain in
  let physical_of pe =
    let rec go i acc =
      if i = dims then acc
      else begin
        let b = (pe.(i) - lows.(i)) / p.block.(i) in
        go (i + 1) ((acc * p.physical.(i)) + b)
      end
    in
    go 0 0
  in
  let* () =
    let count = Array.fold_left ( * ) 1 p.physical in
    if count = p.physical_count then Ok () else Error "physical count mismatch"
  in
  (* group events by (physical processor, virtual time); LSGP
     serialises each group within a macro-step of length [slowdown] *)
  let groups = Hashtbl.create 64 in
  List.iter
    (fun x ->
      let pe = Linalg.mat_vec design.Synthesis.allocation x in
      let t = Linalg.dot design.Synthesis.schedule x in
      let key = (physical_of pe, t) in
      Hashtbl.replace groups key (1 + Option.value ~default:0 (Hashtbl.find_opt groups key)))
    points;
  let* () =
    Hashtbl.fold
      (fun (_, _) k acc ->
        let* () = acc in
        if k <= p.slowdown then Ok ()
        else Error (Printf.sprintf "a macro-step holds %d firings > slowdown %d" k p.slowdown))
      groups (Ok ())
  in
  (* realised makespan under the macro-step schedule *)
  let times = List.map (fun x -> Linalg.dot design.Synthesis.schedule x) points in
  let lo = List.fold_left min max_int times and hi = List.fold_left max min_int times in
  let realized = (hi - lo + 1) * p.slowdown in
  if realized <= p.latency then Ok ()
  else Error "realised makespan exceeds the LSGP latency bound"

(* ------------------------------------------------------------------ *)
(* LPGS: round-robin dealing of virtual PEs onto the physical grid     *)

let lpgs_owner p ~lows pe =
  let dims = Array.length p.physical in
  let rec go i acc =
    if i = dims then acc
    else go (i + 1) ((acc * p.physical.(i)) + ((pe.(i) - lows.(i)) mod p.physical.(i)))
  in
  go 0 0

let partition_lpgs r design ~max_pes =
  if max_pes < 1 then Error "need at least one physical processor"
  else begin
    let lows, highs = virtual_extents r design in
    if Array.length lows = 0 then Error "design has an empty processor space"
    else begin
      let dims = Array.length lows in
      let sizes = Array.init dims (fun i -> highs.(i) - lows.(i) + 1) in
      (* choose physical extents directly (each <= virtual extent),
         maximizing use of the budget, then balance *)
      let best = ref None in
      let rec enum i phys =
        if i = dims then begin
          let physical = Array.of_list (List.rev phys) in
          let count = Array.fold_left ( * ) 1 physical in
          if count <= max_pes then begin
            let per_dim_slow =
              Array.init dims (fun j -> (sizes.(j) + physical.(j) - 1) / physical.(j))
            in
            let slowdown = Array.fold_left ( * ) 1 per_dim_slow in
            let spread =
              Array.fold_left max 1 per_dim_slow - Array.fold_left min max_int per_dim_slow
            in
            let key = (slowdown, spread, Array.to_list physical) in
            match !best with
            | Some (bk, _, _) when bk <= key -> ()
            | Some _ | None -> best := Some (key, physical, per_dim_slow)
          end
        end
        else
          for v = 1 to sizes.(i) do
            enum (i + 1) (v :: phys)
          done
      in
      enum 0 [];
      match !best with
      | None -> Error "no feasible physical shape"
      | Some (_, physical, per_dim_slow) ->
        let slowdown = Array.fold_left ( * ) 1 per_dim_slow in
        Ok
          {
            design;
            block = per_dim_slow;
            (* strides per dimension under LPGS *)
            physical;
            physical_count = Array.fold_left ( * ) 1 physical;
            slowdown;
            latency = design.Synthesis.latency * slowdown;
          }
    end
  end

let check_lpgs r design p =
  let ( let* ) = Result.bind in
  let lows, _ = virtual_extents r design in
  let points = Recurrence.points r.Recurrence.domain in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun x ->
      let pe = Linalg.mat_vec design.Synthesis.allocation x in
      let t = Linalg.dot design.Synthesis.schedule x in
      let key = (lpgs_owner p ~lows pe, t) in
      Hashtbl.replace groups key (1 + Option.value ~default:0 (Hashtbl.find_opt groups key)))
    points;
  let* () =
    Hashtbl.fold
      (fun _ k acc ->
        let* () = acc in
        if k <= p.slowdown then Ok ()
        else
          Error
            (Printf.sprintf "an LPGS macro-step holds %d firings > slowdown %d" k p.slowdown))
      groups (Ok ())
  in
  let times = List.map (fun x -> Linalg.dot design.Synthesis.schedule x) points in
  let lo = List.fold_left min max_int times and hi = List.fold_left max min_int times in
  if (hi - lo + 1) * p.slowdown <= p.latency then Ok ()
  else Error "realised LPGS makespan exceeds the latency bound"
