(** Space-time mapping of uniform recurrences to systolic arrays
    (paper §4.2.1, after Kung–Leiserson / Moldovan / Rajopadhye–
    Fujimoto).

    A design is a linear {e schedule} λ (point [x] fires at time λ·x,
    causal when λ·d ≥ 1 for every dependence d) and a {e projection}
    direction u with λ·u ≠ 0 (points along u share a processor; the
    allocation matrix maps a point to its processor coordinates).
    Validity: no processor fires twice at one time — guaranteed by
    λ·u ≠ 0 for linear schedules on integer lattices when u is
    primitive and points are projected along u. *)

type design = {
  schedule : int array;  (** λ *)
  projection : int array;  (** u, primitive *)
  allocation : int array array;  (** (d-1)×d matrix σ; PE = σ·x *)
  latency : int;  (** makespan: max λ·x − min λ·x + 1 over the domain *)
  pe_count : int;
  channels : (string * int array * int) list;
      (** per dependence: PE offset σ·d and register delay λ·d *)
  nearest_neighbour : bool;
      (** every channel offset has ∞-norm ≤ 1 *)
}

val schedules : ?bound:int -> Recurrence.t -> int array list
(** All causal schedule vectors with entries in [-bound..bound]
    (default 2), ordered by increasing makespan then lexicographically. *)

val synthesize : ?bound:int -> Recurrence.t -> (design, string) result
(** Best design: minimal-makespan causal schedule, then the projection
    (among small vectors with λ·u ≠ 0) minimizing processor count with
    nearest-neighbour channels preferred. *)

val verify : Recurrence.t -> design -> (unit, string) result
(** Exhaustive check on the domain points: injectivity of
    (time, processor), causality of every intra-domain dependence, and
    the reported latency/PE count. *)

val describe : Recurrence.t -> design -> string
