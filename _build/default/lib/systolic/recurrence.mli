(** Systems of uniform recurrence equations over integer polytope
    domains — the input class of the systolic-array synthesis path
    (paper §4.2.1).

    A computation point is a lattice point of the domain; each
    dependence says point [x] consumes the value produced at
    [x - vector]. *)

type domain = {
  lower : int array;
  upper : int array;  (** inclusive box bounds *)
  halfspaces : (int array * int) list;
      (** extra constraints [a·x ≤ b] carving the box into a polytope *)
}

type dependence = { dep_name : string; vector : int array }

type t = {
  name : string;
  domain : domain;
  deps : dependence list;
}

val dims : t -> int

val mem : domain -> int array -> bool

val points : ?cap:int -> domain -> int array list
(** Lattice points (row-major order); raises [Invalid_argument] past
    [cap] (default 200_000). *)

val point_count : ?cap:int -> domain -> int

val validate : t -> (unit, string) result
(** Dimensions agree; every dependence stays inside or enters the
    domain boundary correctly (a dependence leaving the domain at some
    points is fine — those are inputs — but the vector must be
    non-zero). *)

(** Classic instances. *)

val matmul : int -> t
(** n×n matrix product: domain [n³], dependences
    a:(0,1,0), b:(1,0,0), c:(0,0,1). *)

val convolution : int -> int -> t
(** 1-D convolution of an n-signal with a k-tap kernel: 2-D domain,
    dependences w:(1,0), x:(1,-1), y:(0,1). *)

val fir : int -> int -> t
(** FIR filter (same shape as convolution, kept separate for the
    example suite). *)
