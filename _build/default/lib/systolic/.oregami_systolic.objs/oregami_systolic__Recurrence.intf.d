lib/systolic/recurrence.mli:
