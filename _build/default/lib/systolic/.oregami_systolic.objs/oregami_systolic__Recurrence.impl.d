lib/systolic/recurrence.ml: Array Linalg List Printf Result
