lib/systolic/synthesis.mli: Recurrence
