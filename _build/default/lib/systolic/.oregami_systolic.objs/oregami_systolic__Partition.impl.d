lib/systolic/partition.ml: Array Hashtbl Linalg List Option Printf Recurrence Result Synthesis
