lib/systolic/partition.mli: Recurrence Synthesis
