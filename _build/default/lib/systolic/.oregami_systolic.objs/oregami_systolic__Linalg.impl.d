lib/systolic/linalg.ml: Array List
