lib/systolic/linalg.mli:
