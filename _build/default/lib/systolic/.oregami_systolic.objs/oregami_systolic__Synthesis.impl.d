lib/systolic/synthesis.ml: Array Buffer Hashtbl Linalg List Printf Recurrence Result String
