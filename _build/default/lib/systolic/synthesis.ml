type design = {
  schedule : int array;
  projection : int array;
  allocation : int array array;
  latency : int;
  pe_count : int;
  channels : (string * int array * int) list;
  nearest_neighbour : bool;
}

let makespan domain lambda =
  (* extremes of λ·x over the box corners (exact for boxes; for carved
     polytopes the box bound is an upper bound, refined on points when
     small) *)
  let d = Array.length domain.Recurrence.lower in
  let lo = ref 0 and hi = ref 0 in
  for i = 0 to d - 1 do
    let a = lambda.(i) * domain.Recurrence.lower.(i)
    and b = lambda.(i) * domain.Recurrence.upper.(i) in
    lo := !lo + min a b;
    hi := !hi + max a b
  done;
  !hi - !lo + 1

let schedules ?(bound = 2) r =
  let d = Recurrence.dims r in
  Linalg.enum_vectors ~dims:d ~bound
  |> List.filter (fun lambda ->
         List.for_all (fun dep -> Linalg.dot lambda dep.Recurrence.vector >= 1) r.Recurrence.deps)
  |> List.map (fun lambda -> (makespan r.Recurrence.domain lambda, lambda))
  |> List.sort (fun (m1, l1) (m2, l2) -> compare (m1, l1) (m2, l2))
  |> List.map snd

let project_count r allocation =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun x ->
      let pe = Linalg.mat_vec allocation x in
      Hashtbl.replace seen (Array.to_list pe) ())
    (Recurrence.points r.Recurrence.domain);
  Hashtbl.length seen

let design_for r lambda u =
  let allocation = Linalg.orthogonal_basis u in
  let channels =
    List.map
      (fun dep ->
        ( dep.Recurrence.dep_name,
          Linalg.mat_vec allocation dep.Recurrence.vector,
          Linalg.dot lambda dep.Recurrence.vector ))
      r.Recurrence.deps
  in
  let nearest_neighbour =
    List.for_all (fun (_, off, _) -> Array.for_all (fun v -> abs v <= 1) off) channels
  in
  {
    schedule = lambda;
    projection = u;
    allocation;
    latency = makespan r.Recurrence.domain lambda;
    pe_count = project_count r allocation;
    channels;
    nearest_neighbour;
  }

let synthesize ?(bound = 2) r =
  match Recurrence.validate r with
  | Error e -> Error e
  | Ok () -> begin
    match schedules ~bound r with
    | [] -> Error "no causal linear schedule within the search bound"
    | lambda :: _ ->
      let d = Recurrence.dims r in
      if d < 2 then Error "systolic synthesis needs a domain of dimension >= 2"
      else begin
        let candidates =
          Linalg.enum_vectors ~dims:d ~bound:1
          |> List.map Linalg.primitive
          |> List.sort_uniq compare
          |> List.filter (fun u -> Linalg.dot lambda u <> 0)
        in
        let designs = List.map (design_for r lambda) candidates in
        let better a b =
          (* fewer PEs, then nearest-neighbour, then lexicographic *)
          compare
            (a.pe_count, not a.nearest_neighbour, a.projection)
            (b.pe_count, not b.nearest_neighbour, b.projection)
        in
        match List.sort better designs with
        | best :: _ -> Ok best
        | [] -> Error "no valid projection direction"
      end
  end

let verify r design =
  let ( let* ) = Result.bind in
  let points = Recurrence.points r.Recurrence.domain in
  let time x = Linalg.dot design.schedule x in
  let pe x = Array.to_list (Linalg.mat_vec design.allocation x) in
  (* (time, PE) injective *)
  let seen = Hashtbl.create 256 in
  let* () =
    List.fold_left
      (fun acc x ->
        let* () = acc in
        let key = (time x, pe x) in
        if Hashtbl.mem seen key then
          Error
            (Printf.sprintf "two points fire on the same processor at time %d" (time x))
        else begin
          Hashtbl.add seen key ();
          Ok ()
        end)
      (Ok ()) points
  in
  (* causality on intra-domain dependences *)
  let* () =
    List.fold_left
      (fun acc x ->
        let* () = acc in
        List.fold_left
          (fun acc dep ->
            let* () = acc in
            let src = Array.mapi (fun i v -> v - dep.Recurrence.vector.(i)) x in
            if Recurrence.mem r.Recurrence.domain src && time src >= time x then
              Error (Printf.sprintf "dependence %S violates causality" dep.Recurrence.dep_name)
            else Ok ())
          (Ok ()) r.Recurrence.deps)
      (Ok ()) points
  in
  (* reported counts *)
  let pes = Hashtbl.create 64 in
  List.iter (fun x -> Hashtbl.replace pes (pe x) ()) points;
  let* () =
    if Hashtbl.length pes = design.pe_count then Ok ()
    else Error "PE count mismatch"
  in
  let times = List.map time points in
  let lo = List.fold_left min max_int times and hi = List.fold_left max min_int times in
  if hi - lo + 1 <= design.latency then Ok ()
  else Error "latency below the observed makespan"

let describe r design =
  let vec v = "(" ^ String.concat "," (List.map string_of_int (Array.to_list v)) ^ ")" in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "systolic design for %s\n" r.Recurrence.name);
  Buffer.add_string buf (Printf.sprintf "  schedule lambda = %s\n" (vec design.schedule));
  Buffer.add_string buf (Printf.sprintf "  projection u = %s\n" (vec design.projection));
  Buffer.add_string buf
    (Printf.sprintf "  processors = %d, latency = %d, nearest-neighbour = %b\n"
       design.pe_count design.latency design.nearest_neighbour);
  List.iter
    (fun (name, off, delay) ->
      Buffer.add_string buf
        (Printf.sprintf "  channel %-4s offset %s delay %d\n" name (vec off) delay))
    design.channels;
  Buffer.contents buf
