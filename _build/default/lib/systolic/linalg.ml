let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Linalg.dot: dimension mismatch";
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * b.(i))) a;
  !acc

let mat_vec m v = Array.map (fun row -> dot row v) m

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let gcd_vec v = Array.fold_left gcd 0 v

let primitive v =
  let g = gcd_vec v in
  if g = 0 then Array.copy v else Array.map (fun x -> x / g) v

let orthogonal_basis u =
  let d = Array.length u in
  if Array.for_all (( = ) 0) u then invalid_arg "Linalg.orthogonal_basis: zero vector";
  match d with
  | 1 -> [||]
  | 2 -> [| primitive [| -u.(1); u.(0) |] |]
  | 3 ->
    (* two independent vectors orthogonal to u: cross u with two unit
       vectors not parallel to it *)
    let cross a b =
      [|
        (a.(1) * b.(2)) - (a.(2) * b.(1));
        (a.(2) * b.(0)) - (a.(0) * b.(2));
        (a.(0) * b.(1)) - (a.(1) * b.(0));
      |]
    in
    let units = [ [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] ] in
    let candidates =
      List.filter_map
        (fun e ->
          let c = cross u e in
          if Array.for_all (( = ) 0) c then None else Some (primitive c))
        units
    in
    let rec pick_two = function
      | a :: rest ->
        let independent b = Array.exists (( <> ) 0) (cross a b) in
        (match List.find_opt independent rest with
        | Some b -> [| a; b |]
        | None -> pick_two rest)
      | [] -> invalid_arg "Linalg.orthogonal_basis: could not build basis"
    in
    pick_two candidates
  | _ -> invalid_arg "Linalg.orthogonal_basis: only dimensions 1-3 supported"

let enum_vectors ~dims ~bound =
  let rec go d =
    if d = 0 then [ [] ]
    else begin
      let tails = go (d - 1) in
      List.concat_map
        (fun v -> List.map (fun tail -> v :: tail) tails)
        (List.init ((2 * bound) + 1) (fun i -> i - bound))
    end
  in
  go dims
  |> List.map Array.of_list
  |> List.filter (fun v -> Array.exists (( <> ) 0) v)
