(* Edmonds' maximum-weight matching, following the primal-dual O(V^3)
   formulation popularized by Galil (1986) and van Rantwijk's reference
   implementation.  Vertices 0..n-1; blossoms n..2n-1.  Labels: 0 free,
   1 = S, 2 = T; 5 marks a breadcrumb during scanBlossom.  Edge "slack"
   uses weights doubled internally so every slack and dual stays an
   even integer and delta-type-3 halving is exact. *)

let max_weight_matching ?(max_cardinality = false) ~n edges_in =
  (* Deduplicate parallel edges (keep the first occurrence). *)
  let seen_pair = Hashtbl.create 16 in
  let edges =
    List.filter
      (fun (i, j, _) ->
        if i = j then invalid_arg "Blossom: self loop";
        if i < 0 || j < 0 || i >= n || j >= n then invalid_arg "Blossom: vertex out of range";
        let key = (min i j, max i j) in
        if Hashtbl.mem seen_pair key then false
        else begin
          Hashtbl.add seen_pair key ();
          true
        end)
      edges_in
    |> List.map (fun (i, j, w) -> (i, j, 2 * w))
    |> Array.of_list
  in
  let nedge = Array.length edges in
  if nedge = 0 || n = 0 then Array.make (max n 0) (-1)
  else begin
    let nvertex = n in
    let maxweight = Array.fold_left (fun acc (_, _, w) -> max acc w) 0 edges in
    (* endpoint.(p) = vertex at endpoint p; edge k has endpoints 2k, 2k+1 *)
    let endpoint =
      Array.init (2 * nedge) (fun p ->
          let i, j, _ = edges.(p / 2) in
          if p land 1 = 0 then i else j)
    in
    let neighbend = Array.make nvertex [] in
    Array.iteri
      (fun k (i, j, _) ->
        neighbend.(i) <- ((2 * k) + 1) :: neighbend.(i);
        neighbend.(j) <- (2 * k) :: neighbend.(j))
      edges;
    Array.iteri (fun v l -> neighbend.(v) <- List.rev l) neighbend;
    let mate = Array.make nvertex (-1) in
    let label = Array.make (2 * nvertex) 0 in
    let labelend = Array.make (2 * nvertex) (-1) in
    let inblossom = Array.init nvertex (fun v -> v) in
    let blossomparent = Array.make (2 * nvertex) (-1) in
    let blossomchilds : int array array = Array.make (2 * nvertex) [||] in
    let has_childs = Array.make (2 * nvertex) false in
    let blossombase = Array.init (2 * nvertex) (fun b -> if b < nvertex then b else -1) in
    let blossomendps : int array array = Array.make (2 * nvertex) [||] in
    let bestedge = Array.make (2 * nvertex) (-1) in
    let blossombestedges : int list option array = Array.make (2 * nvertex) None in
    let unusedblossoms = ref (List.init nvertex (fun i -> nvertex + i)) in
    let dualvar =
      Array.init (2 * nvertex) (fun b -> if b < nvertex then maxweight else 0)
    in
    let allowedge = Array.make nedge false in
    let queue = ref [] in

    let slack k =
      let i, j, wt = edges.(k) in
      dualvar.(i) + dualvar.(j) - (2 * wt)
    in

    let rec blossom_leaves b acc =
      if b < nvertex then b :: acc
      else Array.fold_right (fun t acc -> blossom_leaves t acc) blossomchilds.(b) acc
    in
    let leaves b = blossom_leaves b [] in

    let rec assign_label w t p =
      let b = inblossom.(w) in
      assert (label.(w) = 0 && label.(b) = 0);
      label.(w) <- t;
      label.(b) <- t;
      labelend.(w) <- p;
      labelend.(b) <- p;
      bestedge.(w) <- -1;
      bestedge.(b) <- -1;
      if t = 1 then queue := leaves b @ !queue
      else if t = 2 then begin
        let base = blossombase.(b) in
        assert (mate.(base) >= 0);
        assign_label endpoint.(mate.(base)) 1 (mate.(base) lxor 1)
      end
    in

    let scan_blossom v w =
      (* Trace back from both endpoints, dropping breadcrumbs; the
         first blossom reached twice is the LCA base (or -1). *)
      let path = ref [] in
      let base = ref (-1) in
      let v = ref v and w = ref w in
      (try
         while !v <> -1 || !w <> -1 do
           let b = inblossom.(!v) in
           if label.(b) land 4 <> 0 then begin
             base := blossombase.(b);
             raise Exit
           end;
           assert (label.(b) = 1);
           path := b :: !path;
           label.(b) <- 5;
           assert (labelend.(b) = mate.(blossombase.(b)));
           if labelend.(b) = -1 then v := -1
           else begin
             v := endpoint.(labelend.(b));
             let b = inblossom.(!v) in
             assert (label.(b) = 2);
             assert (labelend.(b) >= 0);
             v := endpoint.(labelend.(b))
           end;
           if !w <> -1 then begin
             let t = !v in
             v := !w;
             w := t
           end
         done
       with Exit -> ());
      List.iter (fun b -> label.(b) <- 1) !path;
      !base
    in

    let add_blossom base k =
      let v0, w0, _ = edges.(k) in
      let bb = inblossom.(base) in
      let bv = ref inblossom.(v0) and bw = ref inblossom.(w0) in
      let b =
        match !unusedblossoms with
        | x :: rest ->
          unusedblossoms := rest;
          x
        | [] -> assert false
      in
      blossombase.(b) <- base;
      blossomparent.(b) <- -1;
      blossomparent.(bb) <- b;
      let path = ref [] and endps = ref [] in
      let v = ref v0 in
      while !bv <> bb do
        blossomparent.(!bv) <- b;
        path := !bv :: !path;
        endps := labelend.(!bv) :: !endps;
        assert (labelend.(!bv) >= 0);
        v := endpoint.(labelend.(!bv));
        bv := inblossom.(!v)
      done;
      path := bb :: !path;
      (* path/endps were accumulated reversed; restore and extend. *)
      let path_fwd = !path and endps_fwd = !endps in
      let path = ref path_fwd and endps = ref (endps_fwd @ [ 2 * k ]) in
      let w = ref w0 in
      while !bw <> bb do
        blossomparent.(!bw) <- b;
        path := !path @ [ !bw ];
        endps := !endps @ [ labelend.(!bw) lxor 1 ];
        assert (labelend.(!bw) >= 0);
        w := endpoint.(labelend.(!bw));
        bw := inblossom.(!w)
      done;
      assert (label.(bb) = 1);
      label.(b) <- 1;
      labelend.(b) <- labelend.(bb);
      dualvar.(b) <- 0;
      blossomchilds.(b) <- Array.of_list !path;
      has_childs.(b) <- true;
      blossomendps.(b) <- Array.of_list !endps;
      List.iter
        (fun v ->
          if label.(inblossom.(v)) = 2 then queue := v :: !queue;
          inblossom.(v) <- b)
        (leaves b);
      (* recompute best-edge lists for delta-3 *)
      let bestedgeto = Array.make (2 * nvertex) (-1) in
      Array.iter
        (fun bv ->
          let nblists =
            match blossombestedges.(bv) with
            | None -> List.map (fun v -> List.map (fun p -> p / 2) neighbend.(v)) (leaves bv)
            | Some l -> [ l ]
          in
          List.iter
            (fun nblist ->
              List.iter
                (fun k ->
                  let i, j, _ = edges.(k) in
                  let j = if inblossom.(j) = b then i else j in
                  let bj = inblossom.(j) in
                  if
                    bj <> b && label.(bj) = 1
                    && (bestedgeto.(bj) = -1 || slack k < slack bestedgeto.(bj))
                  then bestedgeto.(bj) <- k)
                nblist)
            nblists;
          blossombestedges.(bv) <- None;
          bestedge.(bv) <- -1)
        blossomchilds.(b);
      let best = Array.to_list bestedgeto |> List.filter (fun k -> k <> -1) in
      blossombestedges.(b) <- Some best;
      bestedge.(b) <- -1;
      List.iter
        (fun k -> if bestedge.(b) = -1 || slack k < slack bestedge.(b) then bestedge.(b) <- k)
        best
    in

    (* Python-style wraparound indexing into a blossom's child list. *)
    let nth a j =
      let len = Array.length a in
      a.(((j mod len) + len) mod len)
    in

    let rec expand_blossom b endstage =
      Array.iter
        (fun s ->
          blossomparent.(s) <- -1;
          if s < nvertex then inblossom.(s) <- s
          else if endstage && dualvar.(s) = 0 then expand_blossom s endstage
          else List.iter (fun v -> inblossom.(v) <- s) (leaves s))
        blossomchilds.(b);
      if (not endstage) && label.(b) = 2 then begin
        assert (labelend.(b) >= 0);
        let entrychild = inblossom.(endpoint.(labelend.(b) lxor 1)) in
        let childs = blossomchilds.(b) in
        let len = Array.length childs in
        let idx =
          let rec find i = if childs.(i) = entrychild then i else find (i + 1) in
          find 0
        in
        let j = ref idx and jstep = ref 0 and endptrick = ref 0 in
        if idx land 1 <> 0 then begin
          j := idx - len;
          jstep := 1;
          endptrick := 0
        end
        else begin
          jstep := -1;
          endptrick := 1
        end;
        let p = ref labelend.(b) in
        while !j <> 0 do
          label.(endpoint.(!p lxor 1)) <- 0;
          label.(endpoint.(nth blossomendps.(b) (!j - !endptrick) lxor !endptrick lxor 1)) <- 0;
          assign_label endpoint.(!p lxor 1) 2 !p;
          allowedge.(nth blossomendps.(b) (!j - !endptrick) / 2) <- true;
          j := !j + !jstep;
          p := nth blossomendps.(b) (!j - !endptrick) lxor !endptrick;
          allowedge.(!p / 2) <- true;
          j := !j + !jstep
        done;
        let bv = nth childs !j in
        label.(endpoint.(!p lxor 1)) <- 2;
        label.(bv) <- 2;
        labelend.(endpoint.(!p lxor 1)) <- !p;
        labelend.(bv) <- !p;
        bestedge.(bv) <- -1;
        j := !j + !jstep;
        while nth childs !j <> entrychild do
          let bv = nth childs !j in
          if label.(bv) = 1 then j := !j + !jstep
          else begin
            let rec first_labelled = function
              | [] -> None
              | v :: rest -> if label.(v) <> 0 then Some v else first_labelled rest
            in
            (match first_labelled (leaves bv) with
            | None -> ()
            | Some v ->
              assert (label.(v) = 2);
              assert (inblossom.(v) = bv);
              label.(v) <- 0;
              label.(endpoint.(mate.(blossombase.(bv)))) <- 0;
              assign_label v 2 labelend.(v));
            j := !j + !jstep
          end
        done
      end;
      label.(b) <- -1;
      labelend.(b) <- -1;
      blossomchilds.(b) <- [||];
      has_childs.(b) <- false;
      blossomendps.(b) <- [||];
      blossombase.(b) <- -1;
      blossombestedges.(b) <- None;
      bestedge.(b) <- -1;
      unusedblossoms := b :: !unusedblossoms
    in

    let rec augment_blossom b v =
      let t = ref v in
      while blossomparent.(!t) <> b do
        t := blossomparent.(!t)
      done;
      if !t >= nvertex then augment_blossom !t v;
      let childs = blossomchilds.(b) in
      let len = Array.length childs in
      let i =
        let rec find k = if childs.(k) = !t then k else find (k + 1) in
        find 0
      in
      let j = ref i and jstep = ref 0 and endptrick = ref 0 in
      if i land 1 <> 0 then begin
        j := i - len;
        jstep := 1;
        endptrick := 0
      end
      else begin
        jstep := -1;
        endptrick := 1
      end;
      while !j <> 0 do
        j := !j + !jstep;
        let t = nth childs !j in
        let p = nth blossomendps.(b) (!j - !endptrick) lxor !endptrick in
        if t >= nvertex then augment_blossom t endpoint.(p);
        j := !j + !jstep;
        let t = nth childs !j in
        if t >= nvertex then augment_blossom t endpoint.(p lxor 1);
        mate.(endpoint.(p)) <- p lxor 1;
        mate.(endpoint.(p lxor 1)) <- p
      done;
      let rotate a k =
        let len = Array.length a in
        Array.init len (fun x -> a.((x + k) mod len))
      in
      blossomchilds.(b) <- rotate childs i;
      blossomendps.(b) <- rotate blossomendps.(b) i;
      blossombase.(b) <- blossombase.(blossomchilds.(b).(0));
      assert (blossombase.(b) = v)
    in

    let augment_matching k =
      let v, w, _ = edges.(k) in
      List.iter
        (fun (s0, p0) ->
          let s = ref s0 and p = ref p0 in
          let continue_ = ref true in
          while !continue_ do
            let bs = inblossom.(!s) in
            assert (label.(bs) = 1);
            assert (labelend.(bs) = mate.(blossombase.(bs)));
            if bs >= nvertex then augment_blossom bs !s;
            mate.(!s) <- !p;
            if labelend.(bs) = -1 then continue_ := false
            else begin
              let t = endpoint.(labelend.(bs)) in
              let bt = inblossom.(t) in
              assert (label.(bt) = 2);
              assert (labelend.(bt) >= 0);
              s := endpoint.(labelend.(bt));
              let j = endpoint.(labelend.(bt) lxor 1) in
              assert (blossombase.(bt) = t);
              if bt >= nvertex then augment_blossom bt j;
              mate.(j) <- labelend.(bt);
              p := labelend.(bt) lxor 1
            end
          done)
        [ (v, (2 * k) + 1); (w, 2 * k) ]
    in

    (* main loop: one stage per augmentation opportunity *)
    (try
       for _stage = 0 to nvertex - 1 do
         Array.fill label 0 (2 * nvertex) 0;
         Array.fill bestedge 0 (2 * nvertex) (-1);
         for i = nvertex to (2 * nvertex) - 1 do
           blossombestedges.(i) <- None
         done;
         Array.fill allowedge 0 nedge false;
         queue := [];
         for v = 0 to nvertex - 1 do
           if mate.(v) = -1 && label.(inblossom.(v)) = 0 then assign_label v 1 (-1)
         done;
         let augmented = ref false in
         let stage_done = ref false in
         while not !stage_done do
           (* scan S-vertices *)
           while !queue <> [] && not !augmented do
             let v =
               match !queue with
               | x :: rest ->
                 queue := rest;
                 x
               | [] -> assert false
             in
             assert (label.(inblossom.(v)) = 1);
             List.iter
               (fun p ->
                 if not !augmented then begin
                   let k = p / 2 in
                   let w = endpoint.(p) in
                   if inblossom.(v) = inblossom.(w) then ()
                   else begin
                     let kslack = slack k in
                     if (not allowedge.(k)) && kslack <= 0 then allowedge.(k) <- true;
                     if allowedge.(k) then begin
                       if label.(inblossom.(w)) = 0 then assign_label w 2 (p lxor 1)
                       else if label.(inblossom.(w)) = 1 then begin
                         let base = scan_blossom v w in
                         if base >= 0 then add_blossom base k
                         else begin
                           augment_matching k;
                           augmented := true
                         end
                       end
                       else if label.(w) = 0 then begin
                         assert (label.(inblossom.(w)) = 2);
                         label.(w) <- 2;
                         labelend.(w) <- p lxor 1
                       end
                     end
                     else if label.(inblossom.(w)) = 1 then begin
                       let b = inblossom.(v) in
                       if bestedge.(b) = -1 || kslack < slack bestedge.(b) then
                         bestedge.(b) <- k
                     end
                     else if label.(w) = 0 then
                       if bestedge.(w) = -1 || kslack < slack bestedge.(w) then
                         bestedge.(w) <- k
                   end
                 end)
               neighbend.(v)
           done;
           if !augmented then stage_done := true
           else begin
             (* compute delta *)
             let deltatype = ref (-1) in
             let delta = ref 0 in
             let deltaedge = ref (-1) in
             let deltablossom = ref (-1) in
             if not max_cardinality then begin
               deltatype := 1;
               delta := Array.fold_left min max_int (Array.sub dualvar 0 nvertex)
             end;
             for v = 0 to nvertex - 1 do
               if label.(inblossom.(v)) = 0 && bestedge.(v) <> -1 then begin
                 let d = slack bestedge.(v) in
                 if !deltatype = -1 || d < !delta then begin
                   delta := d;
                   deltatype := 2;
                   deltaedge := bestedge.(v)
                 end
               end
             done;
             for b = 0 to (2 * nvertex) - 1 do
               if blossomparent.(b) = -1 && label.(b) = 1 && bestedge.(b) <> -1 then begin
                 let kslack = slack bestedge.(b) in
                 assert (kslack mod 2 = 0);
                 let d = kslack / 2 in
                 if !deltatype = -1 || d < !delta then begin
                   delta := d;
                   deltatype := 3;
                   deltaedge := bestedge.(b)
                 end
               end
             done;
             for b = nvertex to (2 * nvertex) - 1 do
               if
                 blossombase.(b) >= 0 && blossomparent.(b) = -1 && label.(b) = 2
                 && (!deltatype = -1 || dualvar.(b) < !delta)
               then begin
                 delta := dualvar.(b);
                 deltatype := 4;
                 deltablossom := b
               end
             done;
             if !deltatype = -1 then begin
               (* max-cardinality mode with no tight structure left *)
               deltatype := 1;
               delta := max 0 (Array.fold_left min max_int (Array.sub dualvar 0 nvertex))
             end;
             for v = 0 to nvertex - 1 do
               let l = label.(inblossom.(v)) in
               if l = 1 then dualvar.(v) <- dualvar.(v) - !delta
               else if l = 2 then dualvar.(v) <- dualvar.(v) + !delta
             done;
             for b = nvertex to (2 * nvertex) - 1 do
               if blossombase.(b) >= 0 && blossomparent.(b) = -1 then
                 if label.(b) = 1 then dualvar.(b) <- dualvar.(b) + !delta
                 else if label.(b) = 2 then dualvar.(b) <- dualvar.(b) - !delta
             done;
             match !deltatype with
             | 1 -> stage_done := true (* optimum reached *)
             | 2 ->
               allowedge.(!deltaedge) <- true;
               let i, j, _ = edges.(!deltaedge) in
               let i = if label.(inblossom.(i)) = 0 then j else i in
               assert (label.(inblossom.(i)) = 1);
               queue := i :: !queue
             | 3 ->
               allowedge.(!deltaedge) <- true;
               let i, _, _ = edges.(!deltaedge) in
               assert (label.(inblossom.(i)) = 1);
               queue := i :: !queue
             | 4 -> expand_blossom !deltablossom false
             | _ -> assert false
           end
         done;
         if not !augmented then raise Exit;
         (* expand tight S-blossoms at end of stage *)
         for b = nvertex to (2 * nvertex) - 1 do
           if
             blossomparent.(b) = -1 && blossombase.(b) >= 0 && label.(b) = 1
             && dualvar.(b) = 0 && has_childs.(b)
           then expand_blossom b true
         done
       done
     with Exit -> ());
    for v = 0 to nvertex - 1 do
      if mate.(v) >= 0 then mate.(v) <- endpoint.(mate.(v))
    done;
    mate
  end

let matching_weight edges mate =
  (* each unordered pair occurs once in [edges] (duplicates were
     dropped), so [mate.(u) = v] counts every matched edge exactly once
     regardless of the orientation it was listed with *)
  let n = Array.length mate in
  List.fold_left
    (fun acc (u, v, w) -> if u < n && v < n && mate.(u) = v then acc + w else acc)
    0 edges

let matched_pairs mate =
  let acc = ref [] in
  Array.iteri (fun v m -> if m > v then acc := (v, m) :: !acc) mate;
  List.rev !acc
