(** Maximum-weight matching in general graphs (Edmonds' blossom
    algorithm, O(V³) formulation after Galil 1986 / van Rantwijk).

    This is the combinatorial engine of Algorithm MWM-Contract (paper
    §4.3): pairing task clusters so that the total weight of matched
    (hence internalized) communication is maximum.

    Weights may be any integers; the algorithm maximizes the total
    weight of matched edges.  With [max_cardinality] set it returns a
    maximum-weight matching among maximum-cardinality matchings. *)

val max_weight_matching :
  ?max_cardinality:bool -> n:int -> (int * int * int) list -> int array
(** [max_weight_matching ~n edges] with edges [(u, v, w)], [u ≠ v],
    [0 ≤ u, v < n].  Result [mate] has [mate.(v)] = partner of [v] or
    [-1]; it is symmetric.  Later duplicate edges between the same pair
    are ignored (the first is kept). *)

val matching_weight : (int * int * int) list -> int array -> int
(** Total weight of the matched edges under a mate array. *)

val matched_pairs : int array -> (int * int) list
(** Pairs [(u, v)] with [u < v] from a mate array. *)
