type t = { pair_x : int array; pair_y : int array; size : int }

let adjacency nx edges =
  let adj = Array.make nx [] in
  List.iter
    (fun (x, y) ->
      if x < 0 || x >= nx then invalid_arg "Bipartite: left node out of range";
      adj.(x) <- y :: adj.(x))
    edges;
  Array.map List.rev adj

let check_right ny edges =
  List.iter
    (fun (_, y) -> if y < 0 || y >= ny then invalid_arg "Bipartite: right node out of range")
    edges

let greedy_maximal ~nx ~ny edges =
  check_right ny edges;
  let adj = adjacency nx edges in
  let pair_x = Array.make nx (-1) and pair_y = Array.make ny (-1) in
  let size = ref 0 in
  for x = 0 to nx - 1 do
    if pair_x.(x) = -1 then begin
      let rec try_list = function
        | [] -> ()
        | y :: rest ->
          if pair_y.(y) = -1 then begin
            pair_x.(x) <- y;
            pair_y.(y) <- x;
            incr size
          end
          else try_list rest
      in
      try_list adj.(x)
    end
  done;
  { pair_x; pair_y; size = !size }

let hopcroft_karp ~nx ~ny edges =
  check_right ny edges;
  let adj = adjacency nx edges in
  let pair_x = Array.make nx (-1) and pair_y = Array.make ny (-1) in
  let dist = Array.make nx max_int in
  let inf = max_int in
  let bfs () =
    let q = Queue.create () in
    let found_free = ref false in
    for x = 0 to nx - 1 do
      if pair_x.(x) = -1 then begin
        dist.(x) <- 0;
        Queue.add x q
      end
      else dist.(x) <- inf
    done;
    while not (Queue.is_empty q) do
      let x = Queue.pop q in
      List.iter
        (fun y ->
          match pair_y.(y) with
          | -1 -> found_free := true
          | x' ->
            if dist.(x') = inf then begin
              dist.(x') <- dist.(x) + 1;
              Queue.add x' q
            end)
        adj.(x)
    done;
    !found_free
  in
  let rec dfs x =
    let rec try_list = function
      | [] ->
        dist.(x) <- inf;
        false
      | y :: rest ->
        let ok =
          match pair_y.(y) with
          | -1 -> true
          | x' -> dist.(x') = dist.(x) + 1 && dfs x'
        in
        if ok then begin
          pair_x.(x) <- y;
          pair_y.(y) <- x;
          true
        end
        else try_list rest
    in
    try_list adj.(x)
  in
  let size = ref 0 in
  while bfs () do
    for x = 0 to nx - 1 do
      if pair_x.(x) = -1 && dfs x then incr size
    done
  done;
  { pair_x; pair_y; size = !size }

let is_matching ~nx ~ny edges m =
  let edge_set = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace edge_set e ()) edges;
  Array.length m.pair_x = nx
  && Array.length m.pair_y = ny
  && begin
       let ok = ref true and count = ref 0 in
       Array.iteri
         (fun x y ->
           if y <> -1 then begin
             incr count;
             if not (Hashtbl.mem edge_set (x, y)) then ok := false
             else if m.pair_y.(y) <> x then ok := false
           end)
         m.pair_x;
       Array.iteri (fun y x -> if x <> -1 && m.pair_x.(x) <> y then ok := false) m.pair_y;
       !ok && !count = m.size
     end

let is_maximal ~nx ~ny edges m =
  is_matching ~nx ~ny edges m
  && List.for_all (fun (x, y) -> m.pair_x.(x) <> -1 || m.pair_y.(y) <> -1) edges
