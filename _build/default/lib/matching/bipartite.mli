(** Bipartite matchings.

    Algorithm MM-Route (paper §4.4) repeatedly computes a {e maximal}
    matching between pending task edges and network links; we provide
    both the greedy maximal matching the paper's complexity bound
    O(|X|²|Y|) implies and a maximum (Hopcroft–Karp) matching as an
    upgraded alternative. *)

type t = {
  pair_x : int array;  (** for each left node, its right partner or -1 *)
  pair_y : int array;  (** for each right node, its left partner or -1 *)
  size : int;
}

val greedy_maximal : nx:int -> ny:int -> (int * int) list -> t
(** First-fit maximal matching: scans left nodes in increasing order
    and matches each to its first unmatched neighbour (adjacency in the
    given order).  Maximal: no edge can be added. *)

val hopcroft_karp : nx:int -> ny:int -> (int * int) list -> t
(** Maximum-cardinality bipartite matching in O(E√V). *)

val is_matching : nx:int -> ny:int -> (int * int) list -> t -> bool
(** All pairs are edges and no endpoint repeats. *)

val is_maximal : nx:int -> ny:int -> (int * int) list -> t -> bool
(** No edge joins two unmatched endpoints. *)
