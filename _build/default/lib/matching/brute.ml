let max_weight_matching ~n edges =
  let edges = Array.of_list edges in
  let best = ref 0 in
  let used = Array.make n false in
  let rec go k acc =
    if k >= Array.length edges then best := max !best acc
    else begin
      (* skip edge k *)
      go (k + 1) acc;
      let u, v, w = edges.(k) in
      if (not used.(u)) && not used.(v) then begin
        used.(u) <- true;
        used.(v) <- true;
        go (k + 1) (acc + w);
        used.(u) <- false;
        used.(v) <- false
      end
    end
  in
  go 0 0;
  !best

let max_cardinality_matching ~n edges =
  max_weight_matching ~n (List.map (fun (u, v) -> (u, v, 1)) edges)

let best_partition ~n ~parts ~cap edges =
  if parts * cap < n then invalid_arg "Brute.best_partition: infeasible";
  let block = Array.make n (-1) in
  let counts = Array.make parts 0 in
  let best_cut = ref max_int in
  let best_block = Array.make n (-1) in
  let cut_of () =
    List.fold_left
      (fun acc (u, v, w) -> if block.(u) <> block.(v) then acc + w else acc)
      0 edges
  in
  (* canonical assignment: item i may open block (max used block + 1),
     killing permutation symmetry among blocks *)
  let rec go i max_used =
    if i >= n then begin
      let c = cut_of () in
      if c < !best_cut then begin
        best_cut := c;
        Array.blit block 0 best_block 0 n
      end
    end
    else begin
      let limit = min (parts - 1) (max_used + 1) in
      for b = 0 to limit do
        if counts.(b) < cap then begin
          block.(i) <- b;
          counts.(b) <- counts.(b) + 1;
          go (i + 1) (max max_used b);
          counts.(b) <- counts.(b) - 1;
          block.(i) <- -1
        end
      done
    end
  in
  go 0 (-1);
  (!best_cut, best_block)
