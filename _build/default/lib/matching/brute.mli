(** Exhaustive reference solvers, used as test oracles and in the
    E6 optimality experiment.  Exponential — small inputs only. *)

val max_weight_matching : n:int -> (int * int * int) list -> int
(** Weight of a maximum-weight matching (graphs up to ~10 nodes). *)

val max_cardinality_matching : n:int -> (int * int) list -> int
(** Size of a maximum matching. *)

val best_partition :
  n:int -> parts:int -> cap:int -> (int * int * int) list -> int * int array
(** [best_partition ~n ~parts ~cap edges] finds a partition of [n]
    items into at most [parts] blocks of at most [cap] items each,
    minimizing the total weight of edges crossing between blocks.
    Returns [(cut_weight, block_of)].  Feasibility requires
    [parts * cap >= n]. *)
