(** Maximum flow / minimum cut (Dinic's algorithm).

    Substrate for the Stone-style network-flow task assignment the
    paper cites as the foundation of its arbitrary-graph mapping
    ([Sto77], [Bok87]): a minimum s–t cut of the "commodity" graph is
    an optimal two-processor assignment. *)

type t

val create : int -> t
(** [create n] is a flow network on nodes [0 .. n-1] with no arcs. *)

val add_edge : t -> int -> int -> cap:int -> unit
(** Adds a directed arc with the given capacity (and a residual
    reverse arc of capacity 0).  Call once per arc; parallel arcs are
    allowed. *)

val add_bidirectional : t -> int -> int -> cap:int -> unit
(** Adds capacity in both directions (an undirected edge). *)

val max_flow : t -> src:int -> dst:int -> int
(** Computes the maximum flow.  Mutates the network (flows persist);
    call on a freshly built network. *)

val min_cut_side : t -> src:int -> int array
(** After {!max_flow}: characteristic vector of the source side of a
    minimum cut (1 = reachable from [src] in the residual graph). *)
