type arc = { dst : int; mutable cap : int; rev : int }

type t = { n : int; adj : arc array ref array; level : int array; iter : int array }

let create n =
  {
    n;
    adj = Array.init n (fun _ -> ref [||]);
    level = Array.make n (-1);
    iter = Array.make n 0;
  }

let push t u arc =
  let a = t.adj.(u) in
  a := Array.append !a [| arc |]

let add_edge t u v ~cap =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Maxflow: node out of range";
  if cap < 0 then invalid_arg "Maxflow: negative capacity";
  let iu = Array.length !(t.adj.(u)) and iv = Array.length !(t.adj.(v)) in
  push t u { dst = v; cap; rev = iv };
  push t v { dst = u; cap = 0; rev = iu }

let add_bidirectional t u v ~cap =
  let iu = Array.length !(t.adj.(u)) and iv = Array.length !(t.adj.(v)) in
  push t u { dst = v; cap; rev = iv };
  push t v { dst = u; cap; rev = iu }

let bfs t src =
  Array.fill t.level 0 t.n (-1);
  t.level.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun arc ->
        if arc.cap > 0 && t.level.(arc.dst) = -1 then begin
          t.level.(arc.dst) <- t.level.(u) + 1;
          Queue.add arc.dst q
        end)
      !(t.adj.(u))
  done

let rec dfs t u dst f =
  if u = dst then f
  else begin
    let arcs = !(t.adj.(u)) in
    let result = ref 0 in
    while !result = 0 && t.iter.(u) < Array.length arcs do
      let arc = arcs.(t.iter.(u)) in
      if arc.cap > 0 && t.level.(arc.dst) = t.level.(u) + 1 then begin
        let d = dfs t arc.dst dst (min f arc.cap) in
        if d > 0 then begin
          arc.cap <- arc.cap - d;
          let back = !(t.adj.(arc.dst)).(arc.rev) in
          back.cap <- back.cap + d;
          result := d
        end
        else t.iter.(u) <- t.iter.(u) + 1
      end
      else t.iter.(u) <- t.iter.(u) + 1
    done;
    !result
  end

let max_flow t ~src ~dst =
  if src = dst then invalid_arg "Maxflow: src = dst";
  let flow = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    bfs t src;
    if t.level.(dst) = -1 then continue_ := false
    else begin
      Array.fill t.iter 0 t.n 0;
      let rec pump () =
        let f = dfs t src dst max_int in
        if f > 0 then begin
          flow := !flow + f;
          pump ()
        end
      in
      pump ()
    end
  done;
  !flow

let min_cut_side t ~src =
  bfs t src;
  Array.map (fun l -> if l >= 0 then 1 else 0) (Array.sub t.level 0 t.n)
