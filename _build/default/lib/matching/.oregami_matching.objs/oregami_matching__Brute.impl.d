lib/matching/brute.ml: Array List
