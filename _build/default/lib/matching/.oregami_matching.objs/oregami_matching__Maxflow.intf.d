lib/matching/maxflow.mli:
