lib/matching/blossom.ml: Array Hashtbl List
