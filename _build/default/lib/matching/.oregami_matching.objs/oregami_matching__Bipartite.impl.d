lib/matching/bipartite.ml: Array Hashtbl List Queue
