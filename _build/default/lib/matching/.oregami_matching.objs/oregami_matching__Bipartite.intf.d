lib/matching/bipartite.mli:
