lib/matching/brute.mli:
