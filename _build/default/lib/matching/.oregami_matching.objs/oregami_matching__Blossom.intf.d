lib/matching/blossom.mli:
