lib/matching/maxflow.ml: Array Queue
