(* The paper's running example, end to end: the 15-body problem mapped
   onto an 8-processor hypercube (Fig 2 and Fig 6).

   Shows the LaRCS compilation, the contraction/embedding, and how
   MM-Route spreads the chordal phase over distinct links.

     dune exec examples/nbody_hypercube.exe *)

open Oregami

let () =
  let spec = Workloads.nbody ~n:15 ~s:1 in
  let compiled =
    match Larcs.Compile.compile_source ~bindings:spec.Workloads.bindings spec.Workloads.source with
    | Ok c -> c
    | Error e ->
      prerr_endline e;
      exit 1
  in
  let tg = compiled.Larcs.Compile.graph in
  print_endline "=== compiled task graph (Fig 2) ===";
  Format.printf "%a@.@." Taskgraph.pp_summary tg;

  let topo = Topology.make (Topology.Hypercube 3) in
  let mapping =
    match Driver.map_compiled compiled topo with
    | Ok m -> m
    | Error e ->
      prerr_endline e;
      exit 1
  in
  print_endline "=== assignment on the 8-node hypercube ===";
  print_string (Render.mapping mapping);
  print_newline ();

  print_endline "=== chordal phase routing (Fig 6) ===";
  print_endline (Render.phase_edges mapping "chordal");
  print_newline ();

  print_endline "=== metrics ===";
  Metrics.print_summary (Metrics.summary mapping);
  print_newline ();

  (* contrast MM-Route with oblivious e-cube routing on link contention *)
  let oblivious =
    match
      Driver.map_compiled
        ~options:{ Driver.default_options with Driver.routing = Driver.Oblivious }
        compiled topo
    with
    | Ok m -> m
    | Error e ->
      prerr_endline e;
      exit 1
  in
  let contention m =
    (Metrics.summary m).Metrics.max_link_contention
  in
  Printf.printf "max link contention: MM-Route %d vs e-cube %d\n" (contention mapping)
    (contention oblivious);
  let sim_mm = Netsim.run mapping and sim_ob = Netsim.run oblivious in
  Printf.printf "simulated makespan:  MM-Route %d vs e-cube %d\n" sim_mm.Netsim.makespan
    sim_ob.Netsim.makespan
