(* Jacobi iteration on a 16x16 grid of tasks mapped onto a 4x4 mesh —
   the data-parallel (SCMD) scenario of paper §2: OREGAMI's canned
   mesh tiling against naive baselines, measured with the network
   simulator.

     dune exec examples/jacobi_mesh.exe *)

open Oregami

let () =
  let spec = Workloads.jacobi ~n:16 ~iters:4 in
  let compiled =
    match Larcs.Compile.compile_source ~bindings:spec.Workloads.bindings spec.Workloads.source with
    | Ok c -> c
    | Error e ->
      prerr_endline e;
      exit 1
  in
  let tg = compiled.Larcs.Compile.graph in
  let topo = Topology.make (Topology.Mesh (4, 4)) in

  let routed name cluster_of proc_of_cluster =
    let proc_of_task =
      Array.init tg.Taskgraph.n (fun t -> proc_of_cluster.(cluster_of.(t)))
    in
    let routings, _ = Mapper.Route.mm_route tg topo ~proc_of_task in
    { Mapping.tg; topo; cluster_of; proc_of_cluster; routings; strategy = name }
  in

  let oregami =
    match Driver.map_compiled compiled topo with
    | Ok m -> m
    | Error e ->
      prerr_endline e;
      exit 1
  in
  let rng = Prelude.Rng.create 2024 in
  let rc, rp = Mapper.Baselines.random rng ~n:tg.Taskgraph.n ~procs:16 in
  let bc, bp = Mapper.Baselines.block ~n:tg.Taskgraph.n ~procs:16 in
  let candidates =
    [ oregami; routed "random" rc rp; routed "block" bc bp ]
  in
  print_endline "Jacobi 16x16 grid -> 4x4 processor mesh";
  Prelude.Tab.print
    ~header:[ "strategy"; "IPC"; "avg dil"; "contention"; "simulated makespan" ]
    (List.map
       (fun m ->
         let s = Metrics.summary m in
         let sim = Netsim.run m in
         [
           m.Mapping.strategy;
           string_of_int s.Metrics.total_ipc;
           Prelude.Tab.fixed 2 s.Metrics.dilation_avg;
           string_of_int s.Metrics.max_link_contention;
           string_of_int sim.Netsim.makespan;
         ])
       candidates);
  print_newline ();
  print_endline "OREGAMI tiling on the mesh:";
  print_string (Render.mapping oregami)
