examples/quickstart.mli:
