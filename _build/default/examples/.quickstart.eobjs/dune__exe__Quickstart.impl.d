examples/quickstart.ml: Metrics Oregami Render
