examples/jacobi_mesh.mli:
