examples/divide_and_conquer_mesh.mli:
