examples/jacobi_mesh.ml: Array Driver Larcs List Mapper Mapping Metrics Netsim Oregami Prelude Render Taskgraph Topology Workloads
