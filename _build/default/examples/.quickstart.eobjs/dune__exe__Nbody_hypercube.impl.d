examples/nbody_hypercube.ml: Driver Format Larcs Metrics Netsim Oregami Printf Render Taskgraph Topology Workloads
