examples/metrics_edit.mli:
