examples/reduce_tree.ml: Mapper Netsim Oregami Printf Render
