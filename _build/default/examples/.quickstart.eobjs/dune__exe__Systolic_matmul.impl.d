examples/systolic_matmul.ml: List Oregami Printf Systolic
