examples/divide_and_conquer_mesh.ml: List Mapper Mapping Metrics Oregami Prelude Printf Render Workloads
