examples/nbody_hypercube.mli:
