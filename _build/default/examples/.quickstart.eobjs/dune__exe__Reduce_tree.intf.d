examples/reduce_tree.mli:
