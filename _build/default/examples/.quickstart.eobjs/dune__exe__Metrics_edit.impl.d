examples/metrics_edit.ml: Edit Gray List Mapping Metrics Oregami Printf Render String Workloads
