(* The METRICS modify-and-recompute loop (paper §5): inspect a
   mapping, move a task, re-route an edge, and watch the metrics
   change.

     dune exec examples/metrics_edit.exe *)

open Oregami

let () =
  let spec = Workloads.voting ~k:3 in
  let mapping, summary =
    match
      map_source ~bindings:spec.Workloads.bindings spec.Workloads.source ~topology:"hypercube:2"
    with
    | Ok r -> r
    | Error e ->
      prerr_endline e;
      exit 1
  in
  print_endline "initial mapping (8 voters on a 4-processor hypercube):";
  print_string (Render.mapping mapping);
  Printf.printf "completion time %d, IPC %d\n\n" summary.Metrics.completion_time
    summary.Metrics.total_ipc;

  (* user drags task 3 to processor 0 *)
  (match Edit.move_task mapping ~task:3 ~proc:0 with
  | Error e -> Printf.printf "move rejected: %s\n" e
  | Ok moved ->
    let s = Metrics.summary moved in
    print_endline "after moving task 3 to processor 0:";
    print_string (Render.mapping moved);
    Printf.printf "completion time %d, IPC %d\n\n" s.Metrics.completion_time
      s.Metrics.total_ipc);

  (* user re-routes one edge of comm3 the long way round *)
  let pr =
    List.find (fun pr -> pr.Mapping.pr_phase = "comm3") mapping.Mapping.routings
  in
  let re = List.hd pr.Mapping.pr_edges in
  let pu = Mapping.proc_of_task mapping re.Mapping.re_src in
  let pv = Mapping.proc_of_task mapping re.Mapping.re_dst in
  if pu <> pv then begin
    (* detour through the remaining processors of the 2-cube *)
    let detour = List.filter (fun p -> p <> pu && p <> pv) [ 0; 1; 2; 3 ] in
    let path =
      match detour with
      | [ a; b ] ->
        (* pick an order that is a valid cube walk *)
        if pu lxor a land 3 <> 0 && Gray.differ_bit pu a <> None then [ pu; a; b; pv ]
        else [ pu; b; a; pv ]
      | _ -> [ pu; pv ]
    in
    match
      Edit.reroute_edge mapping ~phase:"comm3" ~src:re.Mapping.re_src
        ~dst:re.Mapping.re_dst ~path
    with
    | Error e -> Printf.printf "reroute rejected: %s\n" e
    | Ok rerouted ->
      let s = Metrics.summary rerouted in
      Printf.printf
        "after rerouting %d->%d over %s: dilation avg %.3f (was %.3f), completion %d\n"
        re.Mapping.re_src re.Mapping.re_dst
        (String.concat "-" (List.map string_of_int path))
        s.Metrics.dilation_avg summary.Metrics.dilation_avg s.Metrics.completion_time
  end
