(* Divide and conquer on binomial trees (paper §4.1 and [LRG+89]):
   the canned binomial-tree-to-mesh embedding and its average
   dilation against the paper's <= 1.2 claim.

     dune exec examples/divide_and_conquer_mesh.exe *)

open Oregami

let () =
  print_endline "binomial tree B_k -> 2^ceil(k/2) x 2^floor(k/2) mesh";
  Prelude.Tab.print
    ~header:[ "k"; "nodes"; "mesh"; "avg dilation"; "paper bound" ]
    (List.map
       (fun k ->
         let l = Mapper.Binomial_mesh.embed k in
         [
           string_of_int k;
           string_of_int (1 lsl k);
           Printf.sprintf "%dx%d" l.Mapper.Binomial_mesh.rows l.Mapper.Binomial_mesh.cols;
           Prelude.Tab.fixed 4
             (float_of_int l.Mapper.Binomial_mesh.total_dilation
             /. float_of_int ((1 lsl k) - 1));
           "1.2";
         ])
       [ 2; 4; 6; 8; 10; 12 ]);
  print_newline ();

  (* a full divide-and-conquer workload mapped via the canned entry *)
  let spec = Workloads.divide_and_conquer ~k:6 in
  match
    map_source ~bindings:spec.Workloads.bindings spec.Workloads.source ~topology:"mesh:4x4"
  with
  | Error e ->
    prerr_endline e;
    exit 1
  | Ok (m, s) ->
    Printf.printf "divconq 64 tasks on mesh:4x4 via %s\n" m.Mapping.strategy;
    Printf.printf "  avg dilation %.3f, completion %d\n" s.Metrics.dilation_avg
      s.Metrics.completion_time;
    print_string (Render.mapping m)
