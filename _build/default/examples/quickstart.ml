(* Quickstart: describe a parallel computation in LaRCS, map it onto a
   topology, and read the METRICS report.

     dune exec examples/quickstart.exe *)

open Oregami

let source =
  {|
algorithm pipeline(n);

nodetype stage : 0 .. n-1;

comphase forward { stage i -> stage (i+1) volume 4 when i < n-1; }

exphase work : stage i cost 10 + i;

phases (forward; work)^8;
|}

let () =
  match map_source ~bindings:[ ("n", 12) ] source ~topology:"mesh:3x4" with
  | Error e ->
    prerr_endline ("mapping failed: " ^ e);
    exit 1
  | Ok (mapping, summary) ->
    print_endline "=== mapping ===";
    print_string (Render.mapping mapping);
    print_newline ();
    print_endline "=== metrics ===";
    Metrics.print_summary summary;
    print_newline ();
    print_endline "=== link loads ===";
    print_endline (Render.link_loads mapping)
