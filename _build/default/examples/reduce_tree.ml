(* Aggregate-topology selection (paper §6): a naive all-to-root
   reduction concentrates every message onto the root's links; the
   Mapper.Aggregate re-planner combines values per processor and sends
   one message per spanning-tree link instead.

     dune exec examples/reduce_tree.exe *)

open Oregami

let source =
  {|
algorithm reduceall(n);
nodetype t : 0 .. n-1;
comphase gather { t i -> t 0 volume 10 when i > 0; }
exphase work cost 5;
phases (work; gather)^3;
|}

let () =
  let mapping =
    match map_source ~bindings:[ ("n", 32) ] source ~topology:"mesh:4x4" with
    | Ok (m, _) -> m
    | Error e ->
      prerr_endline e;
      exit 1
  in
  print_endline "naive all-to-root gather (32 tasks, 4x4 mesh):";
  Printf.printf "  hottest link carries volume %d; simulated makespan %d\n"
    (Mapper.Aggregate.hot_link_volume mapping "gather")
    (Netsim.run mapping).Netsim.makespan;

  match Mapper.Aggregate.replan_phase mapping ~phase:"gather" with
  | Error e ->
    prerr_endline ("replan failed: " ^ e);
    exit 1
  | Ok tree ->
    print_endline "after spanning-tree re-planning:";
    Printf.printf "  hottest link carries volume %d; simulated makespan %d\n"
      (Mapper.Aggregate.hot_link_volume tree "gather")
      (Netsim.run tree).Netsim.makespan;
    print_newline ();
    print_endline "tree-phase routes (one combined message per tree edge):";
    print_endline (Render.phase_edges tree "gather")
