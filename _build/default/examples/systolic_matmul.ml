(* Affine recurrences to systolic arrays (paper §4.2.1): synthesize
   space-time mappings for matrix multiplication and convolution and
   verify them exhaustively.

     dune exec examples/systolic_matmul.exe *)

open Oregami

let show r =
  match Systolic.Synthesis.synthesize r with
  | Error e -> Printf.printf "%s: synthesis failed: %s\n" r.Systolic.Recurrence.name e
  | Ok d ->
    print_string (Systolic.Synthesis.describe r d);
    (match Systolic.Synthesis.verify r d with
    | Ok () -> print_endline "  verified: injective space-time map, causal dependences"
    | Error e -> Printf.printf "  VERIFICATION FAILED: %s\n" e);
    print_newline ()

let () =
  show (Systolic.Recurrence.matmul 6);
  show (Systolic.Recurrence.convolution 12 4);
  show (Systolic.Recurrence.fir 16 5);
  (* the classic latency law: matmul latency is 3n-2 under λ=(1,1,1) *)
  print_endline "matmul latency sweep (expect 3n-2):";
  List.iter
    (fun n ->
      match Systolic.Synthesis.synthesize (Systolic.Recurrence.matmul n) with
      | Ok d ->
        Printf.printf "  n=%2d latency=%3d pe=%3d (3n-2 = %3d)\n" n
          d.Systolic.Synthesis.latency d.Systolic.Synthesis.pe_count ((3 * n) - 2)
      | Error e -> Printf.printf "  n=%2d failed: %s\n" n e)
    [ 2; 4; 8; 12 ]
