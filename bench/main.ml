(* The OREGAMI experiment harness.

   Reproduces every figure and quantitative claim of the paper
   (DESIGN.md maps experiment ids E1..E13 to paper sections) and then
   runs Bechamel timing benchmarks for the complexity claims (E7).
   Everything is deterministic except wall-clock timings. *)

open Oregami
module Tab = Prelude.Tab
module Rng = Prelude.Rng
module Ugraph = Graph.Ugraph
module Digraph = Graph.Digraph
module Mwm = Mapper.Mwm_contract
module Group_contract = Mapper.Group_contract
module Canned = Mapper.Canned
module Route = Mapper.Route
module Refine = Mapper.Refine
module Nn_embed = Mapper.Nn_embed
module Baselines = Mapper.Baselines
module Binomial_mesh = Mapper.Binomial_mesh
module Blossom = Matching.Blossom
module Brute = Matching.Brute
module Compile = Larcs.Compile
module Analyze = Larcs.Analyze

let topo s = Topology.make (Result.get_ok (Topology.parse s))

let mapping_with_placement tg topology strategy cluster_of proc_of_cluster =
  let proc_of_task =
    Array.init tg.Taskgraph.n (fun t -> proc_of_cluster.(cluster_of.(t)))
  in
  let routings, _ = Route.mm_route tg topology ~proc_of_task in
  { Mapping.tg; topo = topology; cluster_of; proc_of_cluster; routings; strategy }

let map_spec ?options spec topo_s =
  let compiled = Workloads.compile_exn spec in
  match Driver.map_compiled ?options compiled (topo topo_s) with
  | Ok m -> m
  | Error e -> failwith (Printf.sprintf "%s on %s: %s" spec.Workloads.w_name topo_s e)

(* ================================================================== *)
(* machine-readable records (--json FILE): every quantitative headline
   an experiment prints can also land here, so CI and scripts do not
   have to scrape the tables *)

type record = {
  rec_experiment : string;  (* E-id, e.g. "E18" *)
  rec_case : string;
  rec_seconds : float;  (* wall-clock of the measured step *)
  rec_completion : int option;  (* METRICS completion-time model *)
  rec_speedup : float option;
  rec_extra : (string * float) list;  (* experiment-specific numbers *)
}

let records : record list ref = ref []

let record ?completion ?speedup ?(extra = []) ~experiment ~case seconds =
  records :=
    {
      rec_experiment = experiment;
      rec_case = case;
      rec_seconds = seconds;
      rec_completion = completion;
      rec_speedup = speedup;
      rec_extra = extra;
    }
    :: !records

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* [--json FILE] merges with an existing FILE instead of truncating
   it: a partial run (--smoke, --only E19) used to silently wipe every
   record of the full suite.  Records are keyed by (experiment, case);
   fresh records win, all others are carried over verbatim. *)

let json_string_field line key =
  let pat = Printf.sprintf {|"%s": "|} key in
  let plen = String.length pat and len = String.length line in
  let rec find i =
    if i + plen > len then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    (* value kept in escaped form, for comparison against [json_escape]
       output of the fresh records *)
    let b = Buffer.create 16 in
    let rec scan j =
      if j >= len then None
      else
        match line.[j] with
        | '"' -> Some (Buffer.contents b)
        | '\\' when j + 1 < len ->
          Buffer.add_char b '\\';
          Buffer.add_char b line.[j + 1];
          scan (j + 2)
        | c ->
          Buffer.add_char b c;
          scan (j + 1)
    in
    scan start

let carried_records file fresh_keys =
  if not (Sys.file_exists file) then []
  else
    In_channel.with_open_text file In_channel.input_lines
    |> List.filter_map (fun line ->
           let line = String.trim line in
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ',' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           if String.length line > 0 && line.[0] = '{' then
             match
               (json_string_field line "experiment", json_string_field line "case")
             with
             | Some e, Some c when not (List.mem (e, c) fresh_keys) -> Some line
             | _ -> None
           else None)

let write_json file =
  let fresh = List.rev !records in
  let fresh_keys =
    List.map (fun r -> (json_escape r.rec_experiment, json_escape r.rec_case)) fresh
  in
  let kept = carried_records file fresh_keys in
  let oc = open_out file in
  let fields r =
    [
      Printf.sprintf {|"experiment": "%s"|} (json_escape r.rec_experiment);
      Printf.sprintf {|"case": "%s"|} (json_escape r.rec_case);
      Printf.sprintf {|"seconds": %.6f|} r.rec_seconds;
    ]
    @ (match r.rec_completion with
      | Some c -> [ Printf.sprintf {|"completion": %d|} c ]
      | None -> [])
    @ (match r.rec_speedup with
      | Some s -> [ Printf.sprintf {|"speedup": %.3f|} s ]
      | None -> [])
    @ List.map
        (fun (k, v) -> Printf.sprintf {|"%s": %.3f|} (json_escape k) v)
        r.rec_extra
  in
  let lines =
    kept @ List.map (fun r -> "{ " ^ String.concat ", " (fields r) ^ " }") fresh
  in
  output_string oc "[\n";
  List.iteri
    (fun i line ->
      if i > 0 then output_string oc ",\n";
      output_string oc ("  " ^ line))
    lines;
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "\nwrote %d record(s) to %s (%d carried over from the previous file)\n"
    (List.length lines) file (List.length kept)

(* ================================================================== *)

let e1_nbody_larcs () =
  Tab.section "E1  LaRCS compilation of the n-body program (Fig 2)";
  let spec = Workloads.nbody ~n:15 ~s:1 in
  let compiled = Workloads.compile_exn spec in
  let tg = compiled.Compile.graph in
  Format.printf "%a@.@." Taskgraph.pp_summary tg;
  let trace = Phase_expr.trace tg.Taskgraph.expr in
  Printf.printf "trace: %d synchronous slots; ring occurs %d times, chordal %d times\n\n"
    (List.length trace)
    (Phase_expr.count_comm tg.Taskgraph.expr "ring")
    (Phase_expr.count_comm tg.Taskgraph.expr "chordal");
  (* the compactness claim: the LaRCS text stays constant while the
     compiled structures grow with n *)
  print_endline "LaRCS source size vs compiled task-graph dump size:";
  Tab.print
    ~header:[ "n"; "source bytes"; "dump bytes"; "ratio" ]
    (List.map
       (fun n ->
         let spec = Workloads.nbody ~n ~s:1 in
         let c = Workloads.compile_exn spec in
         let src = String.length spec.Workloads.source in
         let dump = String.length (Compile.dump c) in
         [
           string_of_int n; string_of_int src; string_of_int dump;
           Tab.fixed 1 (float_of_int dump /. float_of_int src);
         ])
       [ 15; 63; 255 ])

(* ================================================================== *)

let e2_group_contraction () =
  Tab.section "E2  Group-theoretic contraction of 8-task perfect broadcast (Fig 4)";
  let c = Workloads.compile_exn (Workloads.voting ~k:3) in
  let a = Analyze.analyze c in
  print_endline "communication functions as permutations (Fig 4a):";
  List.iter
    (fun (name, kind) ->
      match kind with
      | Analyze.Bijective p -> Printf.printf "  %s = %s\n" name (Perm.to_string p)
      | Analyze.Functional | Analyze.General -> Printf.printf "  %s: not bijective\n" name)
    a.Analyze.comm_kinds;
  (match a.Analyze.cayley with
  | None -> print_endline "no Cayley structure found (unexpected)"
  | Some cy ->
    let g = cy.Analyze.group in
    Printf.printf "\ngroup closure: |G| = %d = |X|, uniform cycle lengths = %b => Cayley\n"
      (Group.order g) cy.Analyze.uniform_cycles;
    print_endline "elements (paper's E0..E7):";
    Array.iteri
      (fun i p ->
        let s = Perm.to_string p in
        let s = if s = "()" then "(0)(1)(2)(3)(4)(5)(6)(7)" else s in
        Printf.printf "  E%d = %s\n" i s)
      (Group.elements g));
  match Group_contract.contract c.Compile.graph ~procs:4 with
  | Error e -> Printf.printf "contract failed: %s\n" e
  | Ok r ->
    Printf.printf
      "\ncontraction to 4 processors: |T|/|A| = 2 is prime => balanced contraction exists\n";
    Printf.printf "subgroup chosen: {%s} (normal = %b)\n"
      (String.concat ", "
         (List.map (fun i -> Printf.sprintf "E%d" i) r.Group_contract.subgroup))
      r.Group_contract.normal;
    Tab.print
      ~header:[ "cluster"; "tasks"; "messages internalized" ]
      (Array.to_list
         (Array.mapi
            (fun i members ->
              [
                string_of_int i;
                String.concat "," (List.map string_of_int members);
                string_of_int r.Group_contract.internalized;
              ])
            r.Group_contract.clusters));
    print_endline
      "(matches the paper: the subgroup generated by comm3, {identity, (04)(15)(26)(37)},\n\
      \ internalizes 2 messages per cluster; the paper numbers that element E4,\n\
      \ our closure enumeration reaches it as E3)"

(* ================================================================== *)

let e3_mwm_contract () =
  Tab.section "E3  Algorithm MWM-Contract on a 12-task graph (Fig 5)";
  let edges =
    [
      (0, 1, 20); (2, 3, 18); (1, 2, 15); (4, 5, 16); (6, 7, 12); (8, 9, 10);
      (10, 11, 8); (3, 4, 2); (5, 6, 3); (7, 8, 1); (9, 10, 2); (11, 0, 1);
    ]
  in
  let g = Ugraph.of_edges 12 edges in
  print_endline
    "12 tasks, 3 processors, load-balance bound B = 4 (so B/2 = 2 in the greedy phase):";
  match Mwm.contract ~b:4 g ~procs:3 with
  | Error e -> Printf.printf "failed: %s\n" e
  | Ok r ->
    Printf.printf "greedy merges: %d, matched pairs: %d\n" r.Mwm.greedy_merges
      r.Mwm.matched_pairs;
    Tab.print
      ~header:[ "cluster"; "tasks" ]
      (Array.to_list
         (Array.mapi
            (fun i members ->
              [ string_of_int i; String.concat "," (List.map string_of_int members) ])
            r.Mwm.clusters));
    let best, _ = Brute.best_partition ~n:12 ~parts:3 ~cap:4 edges in
    Printf.printf "total IPC = %d (exhaustive optimum = %d)%s\n" r.Mwm.ipc best
      (if r.Mwm.ipc = best then
         "  -- optimal on this instance, as the paper reports for its Fig 5 instance"
       else "");
    Printf.printf
      "the weight-15 edge (tasks 1-2) was rejected by the greedy phase (cluster would exceed B/2)\n"

(* ================================================================== *)

let e4_mm_route () =
  Tab.section "E4  Algorithm MM-Route: 15-body chordal phase on an 8-node hypercube (Fig 6)";
  let tg = Workloads.task_graph_exn (Workloads.nbody ~n:15 ~s:1) in
  let cube = topo "hypercube:3" in
  let cluster_of = Array.init 15 (fun t -> t / 2) in
  let proc_of_cluster = Array.init 8 (fun c -> Gray.rank_in_cube 3 c) in
  let proc_of_task = Array.init 15 (fun t -> proc_of_cluster.(cluster_of.(t))) in
  print_endline "embedding: tasks 2i,2i+1 on the i-th Gray-coded processor\n";
  print_endline "possible shortest routes for the first chordal messages (Fig 6b):";
  let chordal = Option.get (Taskgraph.comm_phase tg "chordal") in
  let rows =
    Digraph.edges chordal.Taskgraph.edges
    |> List.filteri (fun i _ -> i < 6)
    |> List.map (fun (u, v, _) ->
           let pu = proc_of_task.(u) and pv = proc_of_task.(v) in
           let routes = Routes.shortest_routes cube pu pv in
           [
             Printf.sprintf "%d-%d" u v;
             Printf.sprintf "%d->%d" pu pv;
             string_of_int (List.length routes);
             String.concat " | "
               (List.map
                  (fun r -> String.concat "," (List.map string_of_int r.Routes.links))
                  routes);
           ])
  in
  Tab.print ~header:[ "edge"; "procs"; "#routes"; "link choices" ] rows;
  let mm, stats = Route.mm_route tg cube ~proc_of_task in
  let ob = Route.deterministic_route tg cube ~proc_of_task in
  let contention routings phase =
    let counts = Array.make (Topology.link_count cube) 0 in
    let pr = List.find (fun pr -> pr.Mapping.pr_phase = phase) routings in
    List.iter
      (fun re ->
        List.iter (fun l -> counts.(l) <- counts.(l) + 1) re.Mapping.re_route.Routes.links)
      pr.Mapping.pr_edges;
    counts
  in
  print_newline ();
  Tab.print
    ~header:[ "phase"; "router"; "max link contention"; "links used"; "matching rounds" ]
    (List.concat_map
       (fun phase ->
         let cm = contention mm phase and co = contention ob phase in
         let used c = List.length (List.filter (( <> ) 0) (Array.to_list c)) in
         [
           [
             phase; "MM-Route";
             string_of_int (Array.fold_left max 0 cm);
             string_of_int (used cm);
             string_of_int (List.assoc phase stats.Route.phases);
           ];
           [
             phase; "e-cube";
             string_of_int (Array.fold_left max 0 co);
             string_of_int (used co); "-";
           ];
         ])
       [ "ring"; "chordal" ])

(* ================================================================== *)

let e5_binomial_mesh () =
  Tab.section "E5  Binomial tree -> mesh embedding: average dilation vs the 1.2 bound";
  Tab.print
    ~header:[ "k"; "nodes"; "mesh"; "avg dilation"; "<= 1.2" ]
    (List.map
       (fun k ->
         let avg = Binomial_mesh.average_dilation k in
         let rows = 1 lsl ((k + 1) / 2) and cols = 1 lsl (k / 2) in
         [
           string_of_int k;
           string_of_int (1 lsl k);
           Printf.sprintf "%dx%d" rows cols;
           Tab.fixed 4 avg;
           (if avg <= 1.2 then "yes" else "NO");
         ])
       [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16 ]);
  print_endline
    "(paper, section 4.1: \"average dilation bounded by 1.2 for arbitrarily large\n\
    \ binomial tree and mesh\"; the sequence above converges below the bound)"

(* ================================================================== *)

let e6_mwm_optimality () =
  Tab.section "E6  MWM-Contract optimality (|V| <= 2P exact; heuristic gap beyond)";
  let rng = Rng.create 2026 in
  let trial n procs b =
    let g = Ugraph.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Rng.int rng 3 > 0 then Ugraph.add_edge ~w:(1 + Rng.int rng 9) g u v
      done
    done;
    match Mwm.contract ~b g ~procs with
    | Error _ -> None
    | Ok r ->
      let best, _ = Brute.best_partition ~n ~parts:procs ~cap:b (Ugraph.edges g) in
      Some (r.Mwm.ipc, best)
  in
  let summarize n procs b trials =
    let optimal = ref 0 and total = ref 0 and gap = ref 0.0 in
    for _ = 1 to trials do
      match trial n procs b with
      | None -> ()
      | Some (got, best) ->
        incr total;
        if got = best then incr optimal;
        if best > 0 then gap := !gap +. (float_of_int (got - best) /. float_of_int best)
    done;
    [
      string_of_int n; string_of_int procs; string_of_int b;
      Printf.sprintf "%d/%d" !optimal !total;
      Tab.fixed 2 (100.0 *. !gap /. float_of_int (max 1 !total));
    ]
  in
  Tab.print
    ~header:[ "tasks"; "procs"; "B"; "optimal"; "mean gap %" ]
    [
      summarize 5 3 2 60;
      summarize 6 3 2 60;
      summarize 7 4 2 60;
      summarize 8 4 2 60;
      summarize 9 3 4 40;
      summarize 10 3 4 40;
      summarize 12 3 4 25;
    ];
  print_endline
    "(paper, section 4.3: optimal when tasks <= 2 x processors; rows 1-4 are that regime)"

(* ================================================================== *)

let e8_end_to_end () =
  Tab.section "E8  End-to-end mapping quality (simulated makespans)";
  let topologies = [ "hypercube:3"; "mesh:4x4"; "torus:4x4"; "ring:8" ] in
  let rng = Rng.create 7 in
  let rows = ref [] in
  let wins = ref 0 and total = ref 0 in
  List.iter
    (fun spec ->
      List.iter
        (fun topo_s ->
          let m = map_spec spec topo_s in
          let tg = m.Mapping.tg in
          let procs = Topology.node_count m.Mapping.topo in
          let baseline name (cluster_of, proc_of_cluster) =
            mapping_with_placement tg m.Mapping.topo name cluster_of proc_of_cluster
          in
          let random_m = baseline "random" (Baselines.random rng ~n:tg.Taskgraph.n ~procs) in
          let block_m = baseline "block" (Baselines.block ~n:tg.Taskgraph.n ~procs) in
          let ms x = (Netsim.run x).Netsim.makespan in
          let o = ms m and r = ms random_m and b = ms block_m in
          incr total;
          if o <= min r b then incr wins;
          rows :=
            [
              spec.Workloads.w_name; topo_s; m.Mapping.strategy; string_of_int o;
              string_of_int r; string_of_int b;
              Tab.fixed 2 (float_of_int r /. float_of_int o);
            ]
            :: !rows)
        topologies)
    (Workloads.all ());
  Tab.print
    ~header:
      [ "workload"; "topology"; "strategy"; "OREGAMI"; "random"; "block"; "random/OREGAMI" ]
    (List.rev !rows);
  Printf.printf "\nOREGAMI best or tied on %d/%d cases\n" !wins !total

(* ================================================================== *)

let e9_systolic () =
  Tab.section "E9  Affine recurrences -> systolic arrays (classic results)";
  Tab.print
    ~header:[ "system"; "schedule"; "PEs"; "latency"; "expected"; "NN"; "verified" ]
    (List.map
       (fun (r, expected_pe, expected_lat) ->
         match Systolic.Synthesis.synthesize r with
         | Error e -> [ r.Systolic.Recurrence.name; "FAILED: " ^ e ]
         | Ok d ->
           [
             r.Systolic.Recurrence.name;
             "("
             ^ String.concat ","
                 (List.map string_of_int (Array.to_list d.Systolic.Synthesis.schedule))
             ^ ")";
             string_of_int d.Systolic.Synthesis.pe_count;
             string_of_int d.Systolic.Synthesis.latency;
             Printf.sprintf "%s PEs, %s steps" expected_pe expected_lat;
             string_of_bool d.Systolic.Synthesis.nearest_neighbour;
             (match Systolic.Synthesis.verify r d with Ok () -> "yes" | Error _ -> "NO");
           ])
       [
         (Systolic.Recurrence.matmul 4, "n^2=16", "3n-2=10");
         (Systolic.Recurrence.matmul 8, "n^2=64", "3n-2=22");
         (Systolic.Recurrence.convolution 16 4, "k=4", "-");
         (Systolic.Recurrence.fir 32 8, "k=8", "-");
       ])

(* ================================================================== *)

let e10_canned_dilation () =
  Tab.section "E10  Canned embedding library: measured dilation";
  let measure family n topo_s edges dims =
    let t = topo topo_s in
    match Canned.lookup ?dims ~family ~n t with
    | None -> [ family; topo_s; string_of_int n; "no entry"; "" ]
    | Some c ->
      let dc = Distcache.hops t in
      let ds =
        List.filter_map
          (fun (u, v) ->
            let pu = c.Canned.proc_of_cluster.(c.Canned.cluster_of.(u)) in
            let pv = c.Canned.proc_of_cluster.(c.Canned.cluster_of.(v)) in
            if pu = pv then None else Some (Distcache.hop dc pu pv))
          edges
      in
      let mx = List.fold_left max 0 ds in
      let avg =
        if ds = [] then 0.0
        else float_of_int (List.fold_left ( + ) 0 ds) /. float_of_int (List.length ds)
      in
      [ family; topo_s; string_of_int n; string_of_int mx; Tab.fixed 3 avg ]
  in
  let ring_edges n = List.init n (fun i -> (i, (i + 1) mod n)) in
  let binomial_edges n = List.init (n - 1) (fun i -> (i + 1, (i + 1) land i)) in
  let bintree_edges n =
    List.init n (fun v -> v)
    |> List.concat_map (fun v ->
           List.filter (fun (_, c) -> c < n) [ (v, (2 * v) + 1); (v, (2 * v) + 2) ])
  in
  let mesh_edges r c =
    List.concat
      (List.init r (fun i ->
           List.concat
             (List.init c (fun j ->
                  let u = (i * c) + j in
                  (if j < c - 1 then [ (u, u + 1) ] else [])
                  @ if i < r - 1 then [ (u, u + c) ] else []))))
  in
  Tab.print
    ~header:[ "family"; "target"; "tasks"; "max dil"; "avg dil" ]
    [
      measure "ring" 16 "hypercube:4" (ring_edges 16) None;
      measure "ring" 32 "hypercube:4" (ring_edges 32) None;
      measure "ring" 16 "mesh:4x4" (ring_edges 16) None;
      measure "mesh" 16 "hypercube:4" (mesh_edges 4 4) (Some [ 4; 4 ]);
      measure "mesh" 64 "mesh:4x4" (mesh_edges 8 8) (Some [ 8; 8 ]);
      measure "binomial" 16 "hypercube:4" (binomial_edges 16) None;
      measure "binomial" 64 "mesh:4x4" (binomial_edges 64) None;
      measure "bintree" 15 "hypercube:4" (bintree_edges 15) None;
    ];
  print_endline
    "(ring/mesh/binomial -> hypercube are the classical dilation-1 results;\n\
    \ binary tree -> hypercube via inorder labels has dilation 2)"

(* ================================================================== *)

let e11_dispatch () =
  Tab.section "E11  MAPPER dispatch (Fig 3): strategy chosen per workload x topology";
  let topologies = [ "hypercube:3"; "mesh:4x4"; "torus:4x4"; "ring:8" ] in
  Tab.print
    ~header:("workload" :: topologies)
    (List.map
       (fun spec ->
         spec.Workloads.w_name
         :: List.map
              (fun topo_s ->
                let compiled = Workloads.compile_exn spec in
                Driver.strategy_preview compiled (topo topo_s))
              topologies)
       (Workloads.all ()))

(* ================================================================== *)

let e12_metrics () =
  Tab.section "E12  METRICS: inspect, modify, recompute (section 5)";
  let m = map_spec (Workloads.voting ~k:3) "hypercube:2" in
  let s0 = Metrics.summary m in
  let line label s =
    [
      label; s.Metrics.strategy;
      string_of_int s.Metrics.total_ipc;
      Tab.fixed 3 s.Metrics.dilation_avg;
      string_of_int s.Metrics.max_link_contention;
      string_of_int s.Metrics.completion_time;
    ]
  in
  let rows = ref [ line "initial" s0 ] in
  (match Edit.move_task m ~task:3 ~proc:0 with
  | Ok m2 -> rows := line "move task 3 -> proc 0" (Metrics.summary m2) :: !rows
  | Error e -> Printf.printf "move failed: %s\n" e);
  (match Edit.swap_processors m 0 3 with
  | Ok m3 -> rows := line "swap procs 0 and 3" (Metrics.summary m3) :: !rows
  | Error e -> Printf.printf "swap failed: %s\n" e);
  Tab.print
    ~header:[ "edit"; "strategy"; "IPC"; "avg dil"; "contention"; "completion" ]
    (List.rev !rows)

(* ================================================================== *)

let skew_spec =
  (* heavy boundary senders with the largest compute cost: local order
     matters, so the synchrony-aware schedule wins visibly *)
  {
    Workloads.w_name = "skewring";
    description = "ring with cost-skewed tasks (senders last in task order)";
    bindings = [ ("n", 32) ];
    source =
      {|
algorithm skewring(n);
nodetype t : 0 .. n-1;
comphase fwd { t i -> t ((i+1) mod n) volume 40; }
exphase work : t i cost 2 + 3 * (i mod 8);
phases (fwd; work)^4;
|};
  }

let e13_synchrony () =
  Tab.section "E13  Task synchrony sets (section 6 extension)";
  Tab.print
    ~header:
      [ "workload"; "topology"; "barrier (netsim)"; "overlap, task order";
        "overlap, sends-first"; "gain %" ]
    (List.map
       (fun (spec, topo_s) ->
         let m = map_spec spec topo_s in
         let barrier = (Netsim.run m).Netsim.makespan in
         let base = Sched.staggered_makespan m (Sched.default_directives m) in
         let sync = Sched.staggered_makespan m (Sched.synchronized_directives m) in
         [
           spec.Workloads.w_name; topo_s; string_of_int barrier; string_of_int base;
           string_of_int sync;
           Tab.fixed 1 (100.0 *. float_of_int (base - sync) /. float_of_int (max 1 base));
         ])
       [
         (Workloads.nbody ~n:16 ~s:1, "hypercube:2");
         (Workloads.jacobi ~n:8 ~iters:2, "mesh:2x2");
         (Workloads.voting ~k:4, "hypercube:2");
         (Workloads.matmul ~n:6, "mesh:3x3");
         (skew_spec, "ring:4");
       ])

(* ================================================================== *)
(* ablations called out in DESIGN.md                                   *)

let ablation_refinement () =
  Tab.section "Ablation  NN-Embed objective, before and after pairwise interchange";
  Tab.print
    ~header:[ "workload"; "topology"; "weighted hops (NN)"; "after refine"; "gain %" ]
    (List.map
       (fun (spec, topo_s) ->
         let tg = Workloads.task_graph_exn spec in
         let t = topo topo_s in
         let static = Taskgraph.static_graph tg in
         let procs = Topology.node_count t in
         match Mwm.contract static ~procs with
         | Error e -> [ spec.Workloads.w_name; topo_s; "error: " ^ e ]
         | Ok r ->
           let k = Array.length r.Mwm.clusters in
           let cg = Ugraph.create k in
           List.iter
             (fun (u, v, w) ->
               let cu = r.Mwm.cluster_of.(u) and cv = r.Mwm.cluster_of.(v) in
               if cu <> cv then Ugraph.add_edge ~w cg cu cv)
             (Ugraph.edges static);
           let nn = Nn_embed.embed cg t in
           let refined = Refine.improve_embedding cg t nn in
           let before = Nn_embed.weighted_hops cg t nn in
           let after = Nn_embed.weighted_hops cg t refined in
           [
             spec.Workloads.w_name; topo_s; string_of_int before; string_of_int after;
             Tab.fixed 1
               (100.0 *. float_of_int (before - after) /. float_of_int (max 1 before));
           ])
       [
         (Workloads.nbody ~n:15 ~s:1, "hypercube:3");
         (Workloads.sor ~n:6 ~iters:3, "hypercube:3");
         (Workloads.annealing ~n:6 ~sweeps:3, "mesh:4x4");
         (Workloads.topsort ~levels:6 ~width:8, "torus:4x4");
         (Workloads.matmul ~n:6, "torus:4x4");
       ])

let ablation_routing () =
  Tab.section "Ablation  MM-Route vs oblivious routing (simulated comm time)";
  Tab.print
    ~header:[ "workload"; "topology"; "MM-Route"; "oblivious"; "contention MM/obl" ]
    (List.map
       (fun (spec, topo_s) ->
         let mm = map_spec spec topo_s in
         let ob =
           map_spec
             ~options:{ Driver.default_options with Driver.routing = Driver.Oblivious }
             spec topo_s
         in
         let cm = (Metrics.summary mm).Metrics.max_link_contention in
         let co = (Metrics.summary ob).Metrics.max_link_contention in
         [
           spec.Workloads.w_name; topo_s;
           string_of_int (Netsim.run mm).Netsim.comm_time;
           string_of_int (Netsim.run ob).Netsim.comm_time;
           Printf.sprintf "%d/%d" cm co;
         ])
       [
         (Workloads.nbody ~n:15 ~s:1, "hypercube:3");
         (Workloads.fft ~d:4, "hypercube:4");
         (Workloads.jacobi ~n:8 ~iters:2, "mesh:4x4");
         (Workloads.matmul ~n:6, "torus:4x4");
       ])

let ablation_route_cap () =
  Tab.section "Ablation  MM-Route candidate-route cap";
  Tab.print
    ~header:[ "cap"; "max contention"; "comm time" ]
    (List.map
       (fun cap ->
         let m =
           map_spec
             ~options:{ Driver.default_options with Driver.route_cap = cap }
             (Workloads.nbody ~n:15 ~s:1) "hypercube:3"
         in
         [
           string_of_int cap;
           string_of_int (Metrics.summary m).Metrics.max_link_contention;
           string_of_int (Netsim.run m).Netsim.comm_time;
         ])
       [ 1; 2; 4; 16; 64 ])

let ablation_aggregate () =
  Tab.section "Ablation  Aggregate phase: naive all-to-root vs spanning-tree reduction";
  let source =
    {|
algorithm reduceall(n);
nodetype t : 0 .. n-1;
comphase gather { t i -> t 0 volume 10 when i > 0; }
exphase work cost 5;
phases (work; gather)^3;
|}
  in
  Tab.print
    ~header:[ "tasks"; "topology"; "hot link (naive)"; "hot link (tree)";
              "makespan (naive)"; "makespan (tree)" ]
    (List.filter_map
       (fun (n, topo_s) ->
         match map_source ~bindings:[ ("n", n) ] source ~topology:topo_s with
         | Error _ -> None
         | Ok (m, _) -> begin
           match Mapper.Aggregate.replan_phase m ~phase:"gather" with
           | Error _ -> None
           | Ok m2 ->
             Some
               [
                 string_of_int n; topo_s;
                 string_of_int (Mapper.Aggregate.hot_link_volume m "gather");
                 string_of_int (Mapper.Aggregate.hot_link_volume m2 "gather");
                 string_of_int (Netsim.run m).Netsim.makespan;
                 string_of_int (Netsim.run m2).Netsim.makespan;
               ]
         end)
       [ (16, "hypercube:3"); (32, "mesh:4x4"); (64, "torus:4x4"); (32, "ring:8") ]);
  print_endline
    "(paper, section 6: automatically selecting an aggregate topology compatible\n\
    \ with the embedding, instead of the declared all-to-root pattern)"

let extension_remap () =
  Tab.section "Extension  Phase-shift remapping (section 6): static vs per-regime mappings";
  let shift n =
    Printf.sprintf
      {|
algorithm shift(n);
nodetype t : 0 .. n-1;
comphase ring { t i -> t ((i+1) mod n) volume 20; }
comphase far  { t i -> t ((i + n/2) mod n) volume 20; }
exphase a cost 2;
exphase b cost 2;
phases (ring; a)^%d; (far; b)^%d;
|}
      n n
  in
  Tab.print
    ~header:[ "workload"; "topology"; "regimes"; "static"; "regimes+migration"; "remap?" ]
    (List.filter_map
       (fun (name, source, bindings, topo_s) ->
         match Larcs.Compile.compile_source ~bindings source with
         | Error _ -> None
         | Ok c -> begin
           match Remap.plan c.Compile.graph (topo topo_s) with
           | Error _ -> None
           | Ok p ->
             Some
               [
                 name; topo_s;
                 string_of_int (List.length p.Remap.regime_mappings);
                 string_of_int p.Remap.static_makespan;
                 Printf.sprintf "%s + %d = %d"
                   (String.concat "+" (List.map string_of_int p.Remap.regime_makespans))
                   p.Remap.migration_time p.Remap.remap_makespan;
                 (if p.Remap.worthwhile then "yes" else "no");
               ]
         end)
       [
         ("shift(16)", shift 6, [ ("n", 16) ], "ring:8");
         ("shift(32)", shift 8, [ ("n", 32) ], "mesh:4x4");
         ("nbody", (Workloads.nbody ~n:16 ~s:2).Workloads.source,
          [ ("n", 16); ("s", 2) ], "hypercube:3");
       ])

let extension_spawning () =
  Tab.section "Extension  Dynamic spawning (section 6): clairvoyant static vs online placement";
  Tab.print
    ~header:[ "depth"; "tasks"; "topology"; "static makespan"; "incremental makespan";
              "penalty %" ]
    (List.map
       (fun (depth, topo_s) ->
         let spec = Workloads.spawned_divide_and_conquer ~depth in
         let c = Workloads.compile_exn spec in
         let tg = c.Compile.graph in
         let t = topo topo_s in
         let procs = Topology.node_count t in
         let cap = (tg.Taskgraph.n + procs - 1) / procs in
         let static_graph = Taskgraph.static_graph tg in
         let inc =
           Mapper.Incremental.place static_graph ~activation:c.Compile.activation ~cap t
         in
         let m_static = Result.get_ok (Driver.map_compiled c t) in
         let m_inc = mapping_with_placement tg t "incremental" inc (Array.init procs (fun p -> p)) in
         let a = (Netsim.run m_static).Netsim.makespan in
         let b = (Netsim.run m_inc).Netsim.makespan in
         [
           string_of_int depth;
           string_of_int tg.Taskgraph.n;
           topo_s;
           string_of_int a;
           string_of_int b;
           Tab.fixed 1 (100.0 *. float_of_int (b - a) /. float_of_int (max 1 a));
         ])
       [ (3, "mesh:2x4"); (4, "mesh:2x4"); (5, "hypercube:3"); (6, "mesh:4x4") ]);
  print_endline
    "(the static mapping is only possible because LaRCS describes the spawning\n\
    \ pattern in advance -- the paper's motivation for the extension)"

let ablation_switching () =
  Tab.section
    "Ablation  Switching discipline: store-and-forward (iPSC/1) vs wormhole (iPSC/2)";
  let rng = Rng.create 99 in
  Tab.print
    ~header:
      [ "workload"; "topology"; "SAF oregami"; "SAF random"; "WH oregami"; "WH random" ]
    (List.map
       (fun (spec, topo_s) ->
         let m = map_spec spec topo_s in
         let tg = m.Mapping.tg in
         let procs = Topology.node_count m.Mapping.topo in
         let rc, rp = Baselines.random rng ~n:tg.Taskgraph.n ~procs in
         let random_m = mapping_with_placement tg m.Mapping.topo "random" rc rp in
         let ms params x = (Netsim.run ~params x).Netsim.makespan in
         [
           spec.Workloads.w_name; topo_s;
           string_of_int (ms Netsim.default_params m);
           string_of_int (ms Netsim.default_params random_m);
           string_of_int (ms Netsim.wormhole_params m);
           string_of_int (ms Netsim.wormhole_params random_m);
         ])
       [
         (Workloads.nbody ~n:15 ~s:1, "hypercube:3");
         (Workloads.jacobi ~n:8 ~iters:2, "mesh:4x4");
         (Workloads.fft ~d:4, "hypercube:4");
         (Workloads.voting ~k:4, "hypercube:2");
       ]);
  print_endline
    "(wormhole makes dilation cheap and contention expensive -- the structure\n\
    \ MM-Route optimizes; informed mapping wins under both disciplines)"

let ablation_contraction_engines () =
  Tab.section "Ablation  Contraction engines: MWM-Contract vs Kernighan-Lin (total IPC)";
  Tab.print
    ~header:[ "workload"; "tasks"; "procs"; "MWM ipc"; "KL ipc"; "winner" ]
    (List.filter_map
       (fun spec ->
         let tg = Workloads.task_graph_exn spec in
         let static = Taskgraph.static_graph tg in
         let procs = 8 in
         match Mwm.contract static ~procs with
         | Error _ -> None
         | Ok r ->
           let kl = Mapper.Kl.partition static ~parts:procs in
           let kl_ipc = Mapping.total_ipc static kl in
           Some
             [
               spec.Workloads.w_name;
               string_of_int tg.Taskgraph.n;
               string_of_int procs;
               string_of_int r.Mwm.ipc;
               string_of_int kl_ipc;
               (if r.Mwm.ipc < kl_ipc then "MWM"
                else if r.Mwm.ipc > kl_ipc then "KL"
                else "tie");
             ])
       (Workloads.all ()))

let extension_lsgp_lpgs () =
  Tab.section "Extension  LSGP vs LPGS partitioning (matmul(8), 64 virtual PEs)";
  let r = Systolic.Recurrence.matmul 8 in
  match Systolic.Synthesis.synthesize r with
  | Error e -> Printf.printf "synthesis failed: %s\n" e
  | Ok d ->
    Tab.print
      ~header:[ "max PEs"; "LSGP block/slowdown"; "LPGS phys/slowdown" ]
      (List.map
         (fun max_pes ->
           let lsgp =
             match Systolic.Partition.partition r d ~max_pes with
             | Ok p ->
               Printf.sprintf "%s / %d"
                 (String.concat "x"
                    (List.map string_of_int (Array.to_list p.Systolic.Partition.block)))
                 p.Systolic.Partition.slowdown
             | Error _ -> "-"
           in
           let lpgs =
             match Systolic.Partition.partition_lpgs r d ~max_pes with
             | Ok p ->
               Printf.sprintf "%s / %d"
                 (String.concat "x"
                    (List.map string_of_int (Array.to_list p.Systolic.Partition.physical)))
                 p.Systolic.Partition.slowdown
             | Error _ -> "-"
           in
           [ string_of_int max_pes; lsgp; lpgs ])
         [ 64; 16; 8; 4; 1 ])

let extension_syntactic_cayley () =
  Tab.section
    "Extension  Syntactic Cayley detection (section 4.2.2 wishlist) vs group closure";
  let translation_program n =
    Printf.sprintf
      "algorithm g(n);\nnodetype t : 0 .. n-1;\ncomphase a { t i -> t ((i+1) mod n); }\ncomphase b { t i -> t ((i + n/2 + 1) mod n); }\nphases a; b;\n"
    |> fun s -> (s, [ ("n", n) ])
  in
  Tab.print
    ~header:[ "n"; "syntactic (us)"; "closure (us)"; "speedup"; "verdicts agree" ]
    (List.map
       (fun n ->
         let src, bindings = translation_program n in
         let c = Result.get_ok (Larcs.Compile.compile_source ~bindings src) in
         let time f =
           let r, s = Prelude.Clock.time f in
           (r, 1e6 *. s)
         in
         let sv, st =
           time (fun () ->
               match Analyze.syntactic_cayley c with
               | Some tr -> Analyze.syntactic_is_cayley tr
               | None -> false)
         in
         let cv, ct =
           time (fun () ->
               match (Analyze.analyze c).Analyze.cayley with
               | Some cy -> cy.Analyze.is_cayley
               | None -> false)
         in
         [
           string_of_int n; Tab.fixed 1 st; Tab.fixed 1 ct;
           Printf.sprintf "%.0fx" (ct /. Float.max 0.1 st);
           string_of_bool (sv = cv);
         ])
       [ 64; 256; 1024 ])

let extension_partition () =
  Tab.section "Extension  LSGP partitioning of systolic arrays (section 4.2.1)";
  let r = Systolic.Recurrence.matmul 8 in
  match Systolic.Synthesis.synthesize r with
  | Error e -> Printf.printf "synthesis failed: %s\n" e
  | Ok d ->
    Tab.print
      ~header:[ "physical PEs"; "block"; "slowdown"; "latency"; "checked" ]
      (List.filter_map
         (fun max_pes ->
           match Systolic.Partition.partition r d ~max_pes with
           | Error _ -> None
           | Ok p ->
             Some
               [
                 string_of_int p.Systolic.Partition.physical_count;
                 String.concat "x"
                   (List.map string_of_int (Array.to_list p.Systolic.Partition.block));
                 string_of_int p.Systolic.Partition.slowdown;
                 string_of_int p.Systolic.Partition.latency;
                 (match Systolic.Partition.check r d p with Ok () -> "yes" | Error _ -> "NO");
               ])
         [ 64; 32; 16; 8; 4; 1 ]);
    Printf.printf "(matmul(8): 64 virtual PEs, unpartitioned latency %d)\n"
      d.Systolic.Synthesis.latency

(* ================================================================== *)
(* E15: the full strategy portfolio competing head-to-head             *)

let e15_strategy_wins () =
  Tab.section
    "E15  Strategy portfolio: per-strategy win counts under the completion model";
  let topologies = [ "hypercube:3"; "mesh:4x4"; "torus:4x4"; "ring:8" ] in
  (* every registered strategy competes (--only <all> disables the
     dispatch short-circuit), including the off-by-default KL, Stone,
     and naive baselines *)
  let options = { Driver.default_options with Driver.only = Strategy.names () } in
  let names = Strategy.names () in
  let wins = Hashtbl.create 16 in
  let produced = Hashtbl.create 16 in
  let count tbl name = Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)) in
  let cases = ref 0 in
  List.iter
    (fun spec ->
      let compiled = Workloads.compile_exn spec in
      List.iter
        (fun topo_s ->
          match Driver.report ~options compiled (topo topo_s) with
          | Error e, _ ->
            Printf.printf "  (%s on %s: %s)\n" spec.Workloads.w_name topo_s e
          | Ok _, stats ->
            incr cases;
            (match Stats.winner stats with
            | Some (name, _) -> count wins name
            | None -> ());
            List.iter
              (fun (a : Stats.attempt) ->
                match a.Stats.at_outcome with
                | Stats.Produced _ -> count produced a.Stats.at_strategy
                | Stats.Rejected _ | Stats.Skipped _ | Stats.Crashed _ -> ())
              (Stats.attempts stats))
        topologies)
    (Workloads.all ());
  Tab.print
    ~header:[ "strategy"; "wins"; "applicable" ]
    (List.map
       (fun name ->
         [
           name;
           string_of_int (Option.value ~default:0 (Hashtbl.find_opt wins name));
           Printf.sprintf "%d/%d"
             (Option.value ~default:0 (Hashtbl.find_opt produced name))
             !cases;
         ])
       names);
  Printf.printf
    "(%d workload x topology cases; every strategy scored by the METRICS\n\
    \ completion model -- the dispatch short-circuit is disabled here)\n"
    !cases

(* ================================================================== *)
(* E7: Bechamel timing suite                                           *)

let timing_suite () =
  Tab.section "E7  Timing benchmarks (Bechamel; ns per run)";
  let open Bechamel in
  let open Toolkit in
  let random_graph_edges rng n m =
    let edges = ref [] and seen = Hashtbl.create 16 in
    let count = ref 0 in
    while !count < m do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v && not (Hashtbl.mem seen (min u v, max u v)) then begin
        Hashtbl.add seen (min u v, max u v) ();
        edges := (u, v, 1 + Rng.int rng 20) :: !edges;
        incr count
      end
    done;
    !edges
  in
  let blossom_test n =
    let rng = Rng.create n in
    let edges = random_graph_edges rng n (3 * n) in
    Test.make
      ~name:(Printf.sprintf "blossom n=%d" n)
      (Staged.stage (fun () -> ignore (Blossom.max_weight_matching ~n edges)))
  in
  let closure_test n =
    let gens = [ Perm.of_function n (fun i -> (i + 1) mod n) ] in
    Test.make
      ~name:(Printf.sprintf "group closure Z%d" n)
      (Staged.stage (fun () -> ignore (Group.generate ~bound:n gens)))
  in
  let mwm_test n =
    let rng = Rng.create (n * 7) in
    let g = Ugraph.of_edges n (random_graph_edges rng n (3 * n)) in
    Test.make
      ~name:(Printf.sprintf "mwm-contract n=%d p=%d" n (n / 8))
      (Staged.stage (fun () -> ignore (Mwm.contract g ~procs:(max 1 (n / 8)))))
  in
  let route_test d =
    let tg = Workloads.task_graph_exn (Workloads.fft ~d) in
    let cube = topo (Printf.sprintf "hypercube:%d" d) in
    let proc_of_task = Array.init (1 lsl d) (fun t -> t) in
    Test.make
      ~name:(Printf.sprintf "mm-route fft d=%d" d)
      (Staged.stage (fun () -> ignore (Route.mm_route tg cube ~proc_of_task)))
  in
  let binomial_test k =
    Test.make
      ~name:(Printf.sprintf "binomial embed k=%d" k)
      (Staged.stage (fun () -> ignore (Binomial_mesh.average_dilation k)))
  in
  let tests =
    [
      blossom_test 32; blossom_test 64; blossom_test 128;
      closure_test 64; closure_test 128; closure_test 256;
      mwm_test 64; mwm_test 128;
      route_test 3; route_test 4; route_test 5;
      binomial_test 8; binomial_test 12;
    ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Instance.monotonic_clock in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let ols =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
            instance results
        in
        Hashtbl.fold
          (fun name ols acc ->
            let ns =
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Printf.sprintf "%.0f" est
              | Some _ | None -> "-"
            in
            [ name; ns ] :: acc)
          ols [])
      tests
  in
  Tab.print ~header:[ "benchmark"; "ns/run" ] rows

(* ================================================================== *)
(* E14: the topology-resident distance/route cache                     *)

let e14_distcache () =
  Tab.section "E14  Distance cache: NN-Embed + MM-Route, cached vs seed data flow";
  let topo_s = "torus:32x32" in
  let tg = Workloads.task_graph_exn (Workloads.nbody ~n:255 ~s:1) in
  let cg = Taskgraph.static_graph tg in
  let time f = Prelude.Clock.time f in
  let run_pipeline t =
    let pc = Nn_embed.embed cg t in
    let proc_of_task = Array.init tg.Taskgraph.n (fun i -> pc.(i)) in
    let (_ : Mapping.phase_routing list * Route.stats) = Route.mm_route tg t ~proc_of_task in
    proc_of_task
  in
  (* cached path, cold: one CSR hop matrix (built in parallel) feeds
     the embedding and the route enumeration *)
  let cold = topo topo_s in
  let proc_of_task, t_cached = time (fun () -> run_pipeline cold) in
  let builds = Distcache.hop_builds cold in
  (* seed data flow, reconstructed: the same greedy-embed and matching
     work (run against the now-warm cache, so its distance lookups are
     the O(1) array reads the seed also did), plus the machinery the
     seed rebuilt each time — a list-based hop matrix per stage
     (embed, objective) and a per-pair BFS shortest-route enumeration
     inside MM-Route *)
  let (), t_algo = time (fun () -> ignore (run_pipeline cold)) in
  let pairs = Hashtbl.create 256 in
  List.iter
    (fun (cp : Taskgraph.comm_phase) ->
      List.iter
        (fun (u, v, _) ->
          let pu = proc_of_task.(u) and pv = proc_of_task.(v) in
          if pu <> pv then Hashtbl.replace pairs (pu, pv) ())
        (Digraph.edges cp.Taskgraph.edges))
    tg.Taskgraph.comm_phases;
  let (), t_machinery =
    time (fun () ->
        let t = topo topo_s in
        let g = Topology.graph t in
        for _ = 1 to 2 do
          ignore (Graph.Shortest.all_pairs_hops g)
        done;
        Hashtbl.iter (fun (pu, pv) () -> ignore (Routes.shortest_routes t pu pv)) pairs)
  in
  let t_seed = t_algo +. t_machinery in
  Tab.print
    ~header:[ "path"; "seconds" ]
    [
      [ "seed path (reconstructed)"; Printf.sprintf "%.3f" t_seed ];
      [ "  of which distance machinery"; Printf.sprintf "%.3f" t_machinery ];
      [ "cached path, cold cache"; Printf.sprintf "%.3f" t_cached ];
      [ "speedup"; Printf.sprintf "%.1fx" (t_seed /. t_cached) ];
    ];
  Printf.printf
    "%s (1024 procs), nbody n=255, %d distinct routed pairs;\n\
     hop matrix built %d time(s) across embed + route on the cached path\n"
    topo_s (Hashtbl.length pairs) builds;
  record ~experiment:"E14"
    ~case:(Printf.sprintf "nbody(255) on %s, cached vs seed data flow" topo_s)
    ~speedup:(t_seed /. t_cached) t_cached

let e16_fault_recovery () =
  Tab.section
    "E16  Fault recovery: minimum-disruption repair vs. from-scratch remap";
  (* 1..3 random faults on the machines where both paths are live;
     seeded so the table is reproducible *)
  let cases =
    [ ("hypercube:4", Workloads.nbody ~n:16 ~s:2); ("torus:4x4", Workloads.jacobi ~n:8 ~iters:2) ]
  in
  let rows = ref [] in
  List.iter
    (fun (topo_s, spec) ->
      let compiled = Workloads.compile_exn spec in
      let tg = compiled.Compile.graph in
      List.iter
        (fun n_faults ->
          let base = topo topo_s in
          let rng = Rng.create (97 + n_faults) in
          let faults =
            Result.get_ok (Faults.random rng ~procs:n_faults ~links:(n_faults - 1) base)
          in
          match Remap.recover ~compiled tg base faults with
          | Error e ->
            Printf.printf "  (%s, %d faults: %s)\n" topo_s n_faults e
          | Ok r ->
            rows :=
              [
                Printf.sprintf "%s %s" spec.Workloads.w_name topo_s;
                Faults.describe faults;
                Printf.sprintf "%d/%d" (Repair.moved r.Remap.rc_repair) r.Remap.rc_remap_moved;
                Printf.sprintf "%d/%d" r.Remap.rc_repair_migration r.Remap.rc_remap_migration;
                Printf.sprintf "%d/%d" r.Remap.rc_repair_makespan r.Remap.rc_remap_makespan;
                (if r.Remap.rc_repair_wins then "repair" else "remap");
              ]
              :: !rows)
        [ 1; 2; 3 ])
    cases;
  Tab.print
    ~header:[ "workload"; "faults"; "moved r/f"; "migration r/f"; "makespan r/f"; "winner" ]
    (List.rev !rows);
  print_endline
    "r/f = minimum-disruption repair / from-scratch remap on the degraded machine"

let e17_budget_curve () =
  Tab.section
    "E17  Quality vs. budget: makespan under shrinking fuel (anytime contract)";
  (* measure the full run's fuel F (metered even on unlimited budgets),
     then rerun at fractions of it and watch the quality degrade *)
  let cases =
    [
      (Workloads.nbody ~n:64 ~s:2, "torus:8x8");
      (Workloads.sor ~n:12 ~iters:2, "mesh:6x6");
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (spec, topo_s) ->
      let compiled = Workloads.compile_exn spec in
      let t = topo topo_s in
      let full_ctx = Ctx.of_compiled compiled t in
      let full =
        match Driver.run full_ctx with
        | Ok (m, _) -> m
        | Error e -> failwith ("E17 full run: " ^ e)
      in
      let full_fuel = Budget.fuel_used full_ctx.Ctx.budget in
      let base = max 1 (full_fuel / 10) in
      let row mult =
        let fuel = base * mult in
        let options =
          { Driver.default_options with Driver.fuel = Some fuel }
        in
        let ctx = Ctx.of_compiled ~options compiled t in
        match Driver.run ctx with
        | Error e -> failwith (Printf.sprintf "E17 at %dx: %s" mult e)
        | Ok (m, deg) ->
          [
            Printf.sprintf "%s %s" spec.Workloads.w_name topo_s;
            Printf.sprintf "%d (%d%%)" fuel (100 * fuel / full_fuel);
            string_of_int (Netsim.run m).Netsim.makespan;
            Stats.degradation_string deg;
          ]
      in
      rows :=
        !rows
        @ List.map row [ 1; 2; 5; 10 ]
        @ [
            [
              Printf.sprintf "%s %s" spec.Workloads.w_name topo_s;
              Printf.sprintf "%d (unlimited)" full_fuel;
              string_of_int (Netsim.run full).Netsim.makespan;
              "full";
            ];
          ])
    cases;
  Tab.print
    ~header:[ "workload"; "fuel"; "simulated makespan"; "degradation" ]
    !rows;
  print_endline
    "fuel fractions of the measured full-run cost; every row is a valid mapping"

(* ================================================================== *)
(* E18: batch-service throughput under the domain pool + shared caches *)

(* run a request batch through Service.serve at a given pool width,
   returning (exit code, wall-clock seconds, normalized output lines).
   The service reads/writes channels, so the batch goes through temp
   files; the wall-clock elapsed-ms column (index 7) is masked before
   comparing runs. *)
let run_batch ~jobs requests =
  let req_file = Filename.temp_file "oregami-batch" ".req" in
  let out_file = Filename.temp_file "oregami-batch" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req_file;
      Sys.remove out_file)
    (fun () ->
      Out_channel.with_open_text req_file (fun oc ->
          List.iter (fun r -> output_string oc (r ^ "\n")) requests);
      let code, seconds =
        In_channel.with_open_text req_file (fun ic ->
            Out_channel.with_open_text out_file (fun oc ->
                Prelude.Clock.time (fun () -> Service.serve ~jobs ic oc)))
      in
      let mask line =
        String.split_on_char '\t' line
        |> List.mapi (fun i col -> if i = 7 then "*" else col)
        |> String.concat "\t"
      in
      let lines =
        In_channel.with_open_text out_file In_channel.input_lines
        |> List.map mask
      in
      (code, seconds, lines))

let e18_requests =
  (* 32 budgeted requests over 4 distinct program x topology pairs:
     the shape an anytime parameter sweep produces.  Per request the
     fuel budget caps the pipeline at a few ms, but jobs=1 still pays
     the full setup -- compile + topology + 1300..1800-node hop matrix
     (~40-60 ms) -- every time, where the cached pool pays each pair's
     setup exactly once.  Fuel truncation is op-counted, so the
     mappings are deterministic at any pool width. *)
  let pairs =
    [
      ("voting", "torus:40x40"); ("nbody", "torus:36x36");
      ("fft", "torus:38x38"); ("divconq", "torus:42x42");
    ]
  in
  List.concat_map
    (fun seed ->
      List.map
        (fun (prog, topo_s) ->
          Printf.sprintf "%s %s seed=%d fuel=800 retries=0" prog topo_s seed)
        pairs)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* E18's child mode: serve the request file at the given pool width,
   results to [out_file], wall-clock seconds on stdout.  Each
   measurement runs in a fresh process because multicore runtime state
   is sticky: a heap churned by an earlier single-domain batch taxes
   every later multi-domain run's GC (and vice versa), which is
   exactly the cross-talk a real `oregami batch --jobs N` invocation
   never sees.  `Gc.compact` does not undo it; process isolation
   does. *)
let e18_serve jobs req_file out_file =
  let code, seconds =
    In_channel.with_open_text req_file (fun ic ->
        Out_channel.with_open_text out_file (fun oc ->
            Prelude.Clock.time (fun () -> Service.serve ~jobs ic oc)))
  in
  Printf.printf "%.6f\n" seconds;
  exit code

let e18_batch_throughput () =
  Tab.section
    "E18  Batch service throughput: --jobs 4 (shared caches) vs --jobs 1";
  let requests = e18_requests in
  let n = List.length requests in
  let mask line =
    String.split_on_char '\t' line
    |> List.mapi (fun i col -> if i = 7 then "*" else col)
    |> String.concat "\t"
  in
  let run_in_child ~jobs =
    let req_file = Filename.temp_file "oregami-e18" ".req" in
    let out_file = Filename.temp_file "oregami-e18" ".out" in
    let sec_file = Filename.temp_file "oregami-e18" ".sec" in
    Fun.protect
      ~finally:(fun () ->
        List.iter Sys.remove [ req_file; out_file; sec_file ])
      (fun () ->
        Out_channel.with_open_text req_file (fun oc ->
            List.iter (fun r -> output_string oc (r ^ "\n")) requests);
        let cmd =
          Printf.sprintf "%s --e18-serve %d %s %s > %s"
            (Filename.quote Sys.executable_name)
            jobs (Filename.quote req_file) (Filename.quote out_file)
            (Filename.quote sec_file)
        in
        let code = Sys.command cmd in
        let seconds =
          In_channel.with_open_text sec_file In_channel.input_all
          |> String.trim |> float_of_string
        in
        let lines =
          In_channel.with_open_text out_file In_channel.input_lines
          |> List.map mask
        in
        (code, seconds, lines))
  in
  let code1, t1, out1 = run_in_child ~jobs:1 in
  let code4, t4, out4 = run_in_child ~jobs:4 in
  if code1 <> 0 || code4 <> 0 then
    failwith
      (Printf.sprintf "E18: batch reported failures (exit %d / %d)" code1 code4);
  if out1 <> out4 then failwith "E18: --jobs 4 output differs from --jobs 1";
  let speedup = t1 /. t4 in
  let throughput t = float_of_int n /. t in
  Tab.print
    ~header:[ "jobs"; "seconds"; "requests/s"; "speedup" ]
    [
      [ "1"; Tab.fixed 3 t1; Tab.fixed 1 (throughput t1); "1.0x" ];
      [ "4"; Tab.fixed 3 t4; Tab.fixed 1 (throughput t4);
        Printf.sprintf "%.1fx" speedup ];
    ];
  Printf.printf
    "%d budgeted requests, 4 distinct program x topology pairs, outputs\n\
     byte-identical (elapsed-ms column aside); the win is setup amortization --\n\
     each pair's compile + topology + hop matrix built once instead of %d times\n"
    n (n / 4);
  record ~experiment:"E18" ~case:(Printf.sprintf "%d-request batch, jobs=1" n) t1;
  record ~experiment:"E18"
    ~case:(Printf.sprintf "%d-request batch, jobs=4" n)
    ~speedup t4

(* ================================================================== *)
(* E19: the multilevel tier vs the flat strategies at scale            *)

let e19_multilevel ~large () =
  Tab.section
    "E19  Multilevel tier: quality and wall-clock vs the flat strategies";
  (* synthetic grids (Synth.generate, seed 1) at sizes the LaRCS
     workloads cannot reach; processor counts scale with the instance.
     KL is quadratic-ish and infeasible beyond n=10^3 (>5 min at
     n=10^4), so it only appears on the smallest instance; MWM-Contract
     holds on until n=10^5.  n=10^6 runs with --large only. *)
  let cases =
    [
      (Synth.Grid, 1_000, "torus:8x8", [ "multilevel"; "mwm"; "kl" ]);
      (Synth.Grid, 10_000, "torus:16x16", [ "multilevel"; "mwm" ]);
      (* power-law degrees break the flat tier much earlier: MWM
         exceeds 3 min on this instance, KL 5 min at a tenth the size *)
      (Synth.Rmat, 10_000, "torus:16x16", [ "multilevel" ]);
      (Synth.Grid, 100_000, "torus:32x32", [ "multilevel"; "mwm" ]);
    ]
    @ if large then [ (Synth.Grid, 1_000_000, "torus:32x32", [ "multilevel" ]) ] else []
  in
  let rows = ref [] in
  List.iter
    (fun (family, n, topo_s, strategies) ->
      let tg = Synth.generate family ~n ~seed:1 in
      let fam = Synth.string_of_family family in
      let t = topo topo_s in
      let best_flat = ref None in
      List.iter
        (fun s ->
          let options = { Driver.default_options with Driver.only = [ s ] } in
          let result, seconds =
            Prelude.Clock.time (fun () -> Driver.map_taskgraph ~options tg t)
          in
          match result with
          | Error e ->
            rows := [ fam; string_of_int n; topo_s; s; "error: " ^ e; "-"; "-" ] :: !rows
          | Ok m ->
            let completion = (Metrics.summary m).Metrics.completion_time in
            if s <> "multilevel" then
              best_flat :=
                Some
                  (match !best_flat with
                  | None -> completion
                  | Some b -> min b completion);
            let vs_flat =
              match (s, !best_flat) with
              | "multilevel", Some b ->
                Printf.sprintf "%+.1f%%"
                  (100.0 *. float_of_int (completion - b) /. float_of_int b)
              | _ -> "-"
            in
            record ~experiment:"E19"
              ~case:(Printf.sprintf "%s n=%d on %s via %s" fam n topo_s s)
              ~completion seconds;
            rows :=
              [
                fam; string_of_int n; topo_s; s; string_of_int completion;
                Tab.fixed 3 seconds; vs_flat;
              ]
              :: !rows)
        (* flat strategies first so the multilevel row can quote the
           quality gap against the best flat completion time *)
        (List.filter (fun s -> s <> "multilevel") strategies
        @ List.filter (fun s -> s = "multilevel") strategies))
    cases;
  Tab.print
    ~header:
      [ "family"; "tasks"; "topology"; "strategy"; "completion"; "seconds";
        "vs best flat" ]
    (List.rev !rows);
  print_endline
    "(absent flat rows are infeasible: KL >5 min at grid n=10^4, MWM >3 min at";
  print_endline
    (if large then " rmat n=10^4)"
     else " rmat n=10^4; rerun with --large for the n=10^6 instance)")

(* ================================================================== *)
(* E20: the price of placement constraints                             *)

let e20_constraints () =
  Tab.section
    "E20  Placement constraints: completion premium over the unconstrained map";
  (* a classed torus (processors 0-3 carry the mem tag) and one fixed
     rule set per workload: pin task 0 to processor 5, keep task 2 off
     processor 5, and require task 1 to land on a mem processor.  The
     constrained run competes with fallback enabled so a workload whose
     only feasible producer is the greedy-feasible baseline still
     yields a row; validate-drc re-checks every rule on the result *)
  let t = Result.get_ok (Topology.of_string "torus:4x4:classes=mem@0-3") in
  let spec_rules =
    {
      Mapper.Constraints.pins = [ (0, 5) ];
      forbids = [ (2, 5) ];
      requires = [ (1, "mem") ];
      skip_classes = [];
    }
  in
  let rows = ref [] in
  List.iter
    (fun spec ->
      let compiled = Workloads.compile_exn spec in
      let name = spec.Workloads.w_name in
      let base = Driver.map_compiled compiled t in
      let constrained_r, seconds =
        let options =
          { Driver.default_options with
            Driver.constraints = spec_rules;
            Driver.fallback = true;
          }
        in
        Prelude.Clock.time (fun () -> Driver.map_compiled ~options compiled t)
      in
      match (base, constrained_r) with
      | Error e, _ | _, Error e ->
        rows := [ name; "-"; "-"; "-"; "-"; "error: " ^ e ] :: !rows
      | Ok b, Ok c ->
        let bc = (Metrics.summary b).Metrics.completion_time in
        let cc = (Metrics.summary c).Metrics.completion_time in
        let cons = Mapper.Constraints.compile spec_rules c.Mapping.tg t in
        let drc =
          match Mapper.Constraints.drc cons (Mapping.assignment c) with
          | [] -> "clean"
          | v -> Printf.sprintf "%d violation(s)" (List.length v)
        in
        record ~experiment:"E20"
          ~case:(Printf.sprintf "%s constrained on torus:4x4+classes" name)
          ~completion:cc seconds;
        rows :=
          [
            name; string_of_int bc; string_of_int cc;
            Printf.sprintf "%+.1f%%"
              (100.0 *. float_of_int (cc - bc) /. float_of_int bc);
            c.Mapping.strategy; drc;
          ]
          :: !rows)
    (Workloads.all ());
  Tab.print
    ~header:
      [ "workload"; "unconstrained"; "constrained"; "premium"; "strategy";
        "validate-drc" ]
    (List.rev !rows);
  print_endline
    "(rules: pin 0=5, forbid 2=5, require 1=mem on torus:4x4:classes=mem@0-3;";
  print_endline
    " constraint-unaware strategies decline, so the embedding tier or the";
  print_endline " greedy-feasible fallback answers)"

(* ================================================================== *)
(* E21: the daemon under sustained open-loop load and overload         *)

(* E21's child mode: a real daemon process behind a Unix socket, so the
   measurements cross a genuine socket + process boundary and SIGTERM
   drain runs with real signal handlers (not an in-process controller) *)
let e21_daemon socket jobs queue_bound cache_bound =
  exit
    (Daemon.run
       { (Daemon.default_config (Daemon.Unix_socket socket)) with
         Daemon.d_jobs = jobs;
         d_queue_bound = queue_bound;
         (* open-loop phases keep many requests in flight on one
            connection: only the admission queue may shed here *)
         d_max_inflight = 4096;
         d_cache_bound = Some cache_bound;
       })

let e21_daemon_load () =
  Tab.section
    "E21  Daemon: sustained open-loop load, overload shedding, SIGTERM drain";
  (* sun_path caps Unix socket paths at ~108 bytes: keep them in /tmp *)
  let sock = Printf.sprintf "/tmp/oregami-e21-%d.sock" (Unix.getpid ()) in
  (* queue bound 2 on 4 workers: an accepted 40 ms job waits at most
     ~20 ms in the queue, keeping the accepted p99 well inside the 2x
     contract while the overload excess sheds *)
  let jobs = 4 and queue_bound = 2 and cache_bound = 4 in
  let pid =
    Unix.create_process Sys.executable_name
      [|
        Sys.executable_name; "--e21-daemon"; sock; string_of_int jobs;
        string_of_int queue_bound; string_of_int cache_bound;
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  (* dial with retry: the child is still binding when we get here *)
  let fd =
    let rec go n =
      match Daemon.connect (Daemon.Unix_socket sock) with
      | fd -> fd
      | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when n > 0 ->
        Unix.sleepf 0.02;
        go (n - 1)
    in
    go 250
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr (Unix.dup fd) in
  let say line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let hear () = input_line ic in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (* server-side latency: the elapsed-ms column (admission to answer) *)
  let elapsed_of line =
    match String.split_on_char '\t' line with
    | _ :: _ :: _ :: _ :: _ :: _ :: _ :: e :: _ -> float_of_string e
    | _ -> failwith (Printf.sprintf "E21: no elapsed column in %S" line)
  in
  let percentile xs p =
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    a.(max 0 (min (n - 1) (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1)))
  in
  (* phase 0, correctness + cache bound: six distinct topologies through
     a bound-4 cache must evict rather than grow *)
  List.iter
    (fun n ->
      (* one at a time: the warmup must not trip its own admission queue *)
      say (Printf.sprintf "nbody ring:%d fuel=200 retries=0" n);
      let line = hear () in
      if not (contains line "\tok\t") then
        failwith (Printf.sprintf "E21: warmup mapping failed: %S" line))
    [ 4; 5; 6; 7; 8; 9 ];
  say "stats";
  let s = hear () in
  let topo_size =
    let marker = "(topologies (size " in
    let rec find i =
      if i + String.length marker > String.length s then
        failwith (Printf.sprintf "E21: no topology stats in %S" s)
      else if String.sub s i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    let idx = find 0 in
    let j = String.index_from s idx ')' in
    int_of_string (String.sub s idx (j - idx))
  in
  if topo_size > cache_bound then
    failwith
      (Printf.sprintf "E21: topology cache grew to %d (bound %d)" topo_size cache_bound);
  (* fixed-duration jobs so latency shifts are pure queueing: 4 workers
     x 40 ms sleeps = 100 jobs/s service capacity *)
  let unloaded =
    List.init 15 (fun _ ->
        say "sleep 40";
        elapsed_of (hear ()))
  in
  let p50_u = percentile unloaded 50.0 and p99_u = percentile unloaded 99.0 in
  let phase n interval =
    Prelude.Clock.time (fun () ->
        for _ = 1 to n do
          say "sleep 40";
          Unix.sleepf interval
        done;
        let ok = ref [] and shed = ref 0 in
        for _ = 1 to n do
          let line = hear () in
          if contains line "overload: admission queue full" then incr shed
          else if contains line "\tok\t" then ok := elapsed_of line :: !ok
          else failwith (Printf.sprintf "E21: unexpected answer %S" line)
        done;
        (!ok, !shed))
  in
  (* sustained: arrivals at ~0.9x capacity, nothing should queue long *)
  let (sus_ok, sus_shed), t_sus = phase 120 0.011 in
  (* overload: arrivals at ~2x capacity against a 4-deep queue; the
     excess must shed by name so the accepted tail stays bounded *)
  let (over_ok, over_shed), t_over = phase 80 0.005 in
  if over_shed = 0 then failwith "E21: overload shed nothing";
  if List.length over_ok < 10 then
    failwith
      (Printf.sprintf "E21: only %d accepted overload jobs" (List.length over_ok));
  let p50_s = percentile sus_ok 50.0 and p99_s = percentile sus_ok 99.0 in
  let p99_o = percentile over_ok 99.0 in
  if p99_o > 2.0 *. p99_u then
    failwith
      (Printf.sprintf "E21: accepted p99 %.1f ms exceeds 2x unloaded p99 %.1f ms"
         p99_o p99_u);
  (* graceful drain: SIGTERM, every admitted request answered (none are
     pending here), connection closed, exit 0, socket file removed *)
  Unix.kill pid Sys.sigterm;
  (try
     while true do
       ignore (hear ())
     done
   with End_of_file -> ());
  close_out_noerr oc;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> failwith (Printf.sprintf "E21: daemon exited %d" n)
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> failwith "E21: daemon died of a signal");
  if Sys.file_exists sock then failwith "E21: socket file left behind";
  let thr_sus = float_of_int (List.length sus_ok) /. t_sus in
  let thr_over = float_of_int (List.length over_ok) /. t_over in
  Tab.print
    ~header:[ "phase"; "jobs"; "accepted"; "shed"; "req/s"; "p50 ms"; "p99 ms" ]
    [
      [ "unloaded"; "15"; "15"; "0"; "-"; Tab.fixed 1 p50_u; Tab.fixed 1 p99_u ];
      [
        "sustained ~0.9x"; "120"; string_of_int (List.length sus_ok);
        string_of_int sus_shed; Tab.fixed 1 thr_sus; Tab.fixed 1 p50_s;
        Tab.fixed 1 p99_s;
      ];
      [
        "overload ~2x"; "80"; string_of_int (List.length over_ok);
        string_of_int over_shed; Tab.fixed 1 thr_over; "-"; Tab.fixed 1 p99_o;
      ];
    ];
  Printf.printf
    "4 workers x 40 ms jobs (100 jobs/s capacity), queue bound %d; overload\n\
     sheds by name and the accepted p99 stays within 2x the unloaded p99\n\
     (%.1f vs %.1f ms); SIGTERM drained with exit 0 and removed the socket\n"
    queue_bound p99_o p99_u;
  record ~experiment:"E21" ~case:"unloaded (15 sequential 40 ms jobs)"
    ~extra:[ ("p50_ms", p50_u); ("p99_ms", p99_u) ]
    (List.fold_left ( +. ) 0.0 unloaded /. 1e3);
  record ~experiment:"E21" ~case:"sustained (120 jobs at ~0.9x capacity)"
    ~extra:
      [
        ("p50_ms", p50_s); ("p99_ms", p99_s); ("requests_per_s", thr_sus);
        ("shed", float_of_int sus_shed);
      ]
    t_sus;
  record ~experiment:"E21"
    ~case:(Printf.sprintf "overload (80 jobs at ~2x capacity, queue bound %d)" queue_bound)
    ~extra:
      [
        ("p99_ms", p99_o); ("p99_vs_unloaded", p99_o /. Float.max 0.001 p99_u);
        ("accepted", float_of_int (List.length over_ok));
        ("shed", float_of_int over_shed);
        ("requests_per_s", thr_over);
      ]
    t_over

(* ================================================================== *)
(* E22: online cluster lifecycle under sustained arrivals and chaos    *)

let e22_cluster_lifecycle () =
  Tab.section
    "E22  Online cluster: leased regions, chaos healing, repair-vs-remap pricing";
  let machine = topo "torus:8x8" in
  let n_events = 240 in
  let events = Cluster.synth_trace ~events:n_events ~seed:42 machine in
  let chaos =
    match
      Cluster.parse_chaos
        "60:kill-procs=9;90:revive-procs=9;120:kill-procs=27,36;150:kill-links=0,1;180:revive-procs=27,36;200:revive-links=0,1"
    with
    | Ok c -> c
    | Error e -> failwith ("E22: chaos spec: " ^ e)
  in
  let r, secs =
    Prelude.Clock.time (fun () ->
        match Cluster.run ~chaos machine events with
        | Ok r -> r
        | Error e -> failwith ("E22: " ^ e))
  in
  if r.Cluster.rp_chaos_applied < 1 then
    failwith "E22: no chaos event landed mid-trace";
  if r.Cluster.rp_repairs + r.Cluster.rp_remaps + r.Cluster.rp_evictions < 1
  then failwith "E22: chaos never touched a lease; trace too idle";
  (* utilization / fragmentation over time, by trace quarter *)
  let samples = Array.of_list r.Cluster.rp_samples in
  let n = Array.length samples in
  let quarter q =
    let lo = q * n / 4 and hi = (q + 1) * n / 4 in
    let slice = Array.sub samples lo (hi - lo) in
    let mean f =
      Array.fold_left (fun a s -> a +. f s) 0.0 slice
      /. float_of_int (max 1 (Array.length slice))
    in
    let peak f = Array.fold_left (fun a s -> Float.max a (f s)) 0.0 slice in
    ( mean (fun s -> s.Cluster.s_utilization),
      mean (fun s -> s.Cluster.s_fragmentation),
      peak (fun s -> s.Cluster.s_fragmentation),
      hi - lo )
  in
  Tab.print
    ~header:
      [ "trace quarter"; "events"; "mean util"; "mean frag"; "peak frag" ]
    (List.map
       (fun q ->
         let u, f, pf, len = quarter q in
         [
           Printf.sprintf "Q%d" (q + 1); string_of_int len; Tab.fixed 2 u;
           Tab.fixed 2 f; Tab.fixed 2 pf;
         ])
       [ 0; 1; 2; 3 ]);
  Printf.printf
    "%d trace events + %d chaos events on torus:8x8 (%.2f s): %d admitted,\n\
     %d completed, %d refused, %d shed; healing chose repair %d / remap %d /\n\
     evict %d times, total migration %d, re-packs %d (declined %d)\n"
    n_events
    (r.Cluster.rp_chaos_applied + r.Cluster.rp_chaos_refused)
    secs r.Cluster.rp_admitted r.Cluster.rp_completed
    (List.length r.Cluster.rp_refused)
    (List.length r.Cluster.rp_shed)
    r.Cluster.rp_repairs r.Cluster.rp_remaps r.Cluster.rp_evictions
    r.Cluster.rp_migration_total r.Cluster.rp_repacks
    r.Cluster.rp_repacks_declined;
  List.iter
    (fun q ->
      let u, f, pf, len = quarter q in
      record ~experiment:"E22"
        ~case:(Printf.sprintf "quarter %d (%d events)" (q + 1) len)
        ~extra:
          [
            ("mean_utilization", u); ("mean_fragmentation", f);
            ("peak_fragmentation", pf);
          ]
        secs)
    [ 0; 1; 2; 3 ];
  record ~experiment:"E22"
    ~case:
      (Printf.sprintf "healing (%d trace + %d chaos events)" n_events
         r.Cluster.rp_chaos_applied)
    ~extra:
      [
        ("admitted", float_of_int r.Cluster.rp_admitted);
        ("refused", float_of_int (List.length r.Cluster.rp_refused));
        ("repairs", float_of_int r.Cluster.rp_repairs);
        ("remaps", float_of_int r.Cluster.rp_remaps);
        ("evictions", float_of_int r.Cluster.rp_evictions);
        ("repacks", float_of_int r.Cluster.rp_repacks);
        ("migration_total", float_of_int r.Cluster.rp_migration_total);
        ("chaos_applied", float_of_int r.Cluster.rp_chaos_applied);
      ]
    secs

(* ================================================================== *)
(* Smoke mode: a fast end-to-end slice wired into `dune runtest`       *)

(* ================================================================== *)
(* E23: coarse routing — traffic-aggregated MM-Route for the large tier *)

let e23_coarse_routing () =
  Tab.section
    "E23  Coarse routing: traffic-aggregated MM-Route vs full MM-Route";
  (* end-to-end multilevel runs at the sizes where routing dominates:
     the full-MM-Route rows are the E19 baselines, the coarse rows the
     same run with --routing coarse *)
  let cases =
    [
      (Synth.Grid, 100_000, "torus:32x32"); (Synth.Rmat, 10_000, "torus:16x16");
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (family, n, topo_s) ->
      let tg = Synth.generate family ~n ~seed:1 in
      let fam = Synth.string_of_family family in
      let t = topo topo_s in
      let run routing jobs =
        let options =
          { Driver.default_options with
            Driver.only = [ "multilevel" ];
            Driver.routing;
            Driver.jobs = jobs;
          }
        in
        Prelude.Clock.time (fun () -> Driver.map_taskgraph ~options tg t)
      in
      let full, full_s = run Driver.Mm_route 1 in
      let coarse, coarse_s = run Driver.Coarse 1 in
      let coarse4, _ = run Driver.Coarse 4 in
      match (full, coarse, coarse4) with
      | Error e, _, _ | _, Error e, _ | _, _, Error e ->
        failwith (Printf.sprintf "E23: %s n=%d on %s: %s" fam n topo_s e)
      | Ok fm, Ok cm, Ok cm4 ->
        (* byte-identical across pool widths: same placement, same
           routes, message for message *)
        if cm.Mapping.routings <> cm4.Mapping.routings
           || Mapping.assignment cm <> Mapping.assignment cm4
        then
          failwith
            (Printf.sprintf "E23: %s n=%d coarse jobs=1 and jobs=4 differ" fam n);
        let fs = Metrics.summary fm and cs = Metrics.summary cm in
        let speedup = full_s /. coarse_s in
        let ratio =
          float_of_int cs.Metrics.max_link_contention
          /. float_of_int (max 1 fs.Metrics.max_link_contention)
        in
        record ~experiment:"E23"
          ~case:(Printf.sprintf "%s n=%d on %s via multilevel+mm-route" fam n topo_s)
          ~completion:fs.Metrics.completion_time
          ~extra:[ ("max-contention", float_of_int fs.Metrics.max_link_contention) ]
          full_s;
        record ~experiment:"E23"
          ~case:(Printf.sprintf "%s n=%d on %s via multilevel+coarse" fam n topo_s)
          ~completion:cs.Metrics.completion_time ~speedup
          ~extra:
            [
              ("max-contention", float_of_int cs.Metrics.max_link_contention);
              ("contention-ratio", ratio);
              ("jobs-identical", 1.0);
            ]
          coarse_s;
        List.iter
          (fun (router, s, seconds, sp) ->
            rows :=
              [
                fam; string_of_int n; topo_s; router;
                string_of_int s.Metrics.completion_time;
                string_of_int s.Metrics.max_link_contention;
                Tab.fixed 3 seconds; sp;
              ]
              :: !rows)
          [
            ("mm-route", fs, full_s, "-");
            ("coarse", cs, coarse_s, Printf.sprintf "%.1fx" speedup);
          ])
    cases;
  Tab.print
    ~header:
      [ "family"; "tasks"; "topology"; "routing"; "completion";
        "max contention"; "seconds"; "speedup" ]
    (List.rev !rows);
  (* contention guard on the small E4/E15 suite: aggregating messages
     into per-pair demands must not concentrate a phase's traffic —
     coarse max link contention stays within 1.5x of full MM-Route on
     every workload x topology case *)
  let topologies = [ "hypercube:3"; "mesh:4x4"; "torus:4x4"; "ring:8" ] in
  let worst = ref 0.0 and worst_case = ref "-" and checked = ref 0 in
  List.iter
    (fun spec ->
      let compiled = Workloads.compile_exn spec in
      List.iter
        (fun topo_s ->
          let t = topo topo_s in
          let run routing =
            Driver.map_compiled
              ~options:{ Driver.default_options with Driver.routing }
              compiled t
          in
          match (run Driver.Mm_route, run Driver.Coarse) with
          | Error _, _ | _, Error _ -> ()
          | Ok fm, Ok cm ->
            incr checked;
            let fc = (Metrics.summary fm).Metrics.max_link_contention in
            let cc = (Metrics.summary cm).Metrics.max_link_contention in
            let ratio = float_of_int cc /. float_of_int (max 1 fc) in
            if ratio > !worst then begin
              worst := ratio;
              worst_case :=
                Printf.sprintf "%s on %s (%d vs %d)" spec.Workloads.w_name
                  topo_s cc fc
            end)
        topologies)
    (Workloads.all ());
  Printf.printf
    "\ncontention guard: %d E4/E15-style cases, worst coarse/full ratio %.2fx (%s)\n"
    !checked !worst !worst_case;
  record ~experiment:"E23" ~case:"contention guard worst ratio (E4/E15 suite)"
    ~extra:[ ("worst-ratio", !worst); ("cases", float_of_int !checked) ]
    0.0;
  if !worst > 1.5 then
    failwith
      (Printf.sprintf "E23: coarse contention %.2fx full MM-Route on %s"
         !worst !worst_case)

(* ================================================================== *)

let smoke () =
  print_endline "OREGAMI bench --smoke";
  (* CSR fast path agrees with the reference traversal *)
  List.iter
    (fun s ->
      let t = topo s in
      let g = Topology.graph t in
      let csr = Graph.Csr.of_ugraph g in
      let n = Graph.Ugraph.node_count g in
      let flat = Graph.Csr.all_pairs_hops csr in
      let reference = Graph.Shortest.all_pairs_hops g in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if flat.((u * n) + v) <> reference.(u).(v) then
            failwith (Printf.sprintf "smoke: CSR mismatch on %s at (%d,%d)" s u v)
        done
      done)
    [ "mesh:4x4"; "hypercube:4"; "ccc:3" ];
  (* one end-to-end mapping through the pipeline with its stats sink
     (the `oregami map --explain` payload); the hop matrix must be
     built exactly once *)
  let t = topo "torus:4x4" in
  let compiled = Workloads.compile_exn (Workloads.nbody ~n:15 ~s:1) in
  (match Driver.report compiled t with
  | Error e, _ -> failwith ("smoke: driver failed: " ^ e)
  | Ok m, stats ->
    let s = Metrics.summary m in
    if Distcache.hop_builds t <> 1 then
      failwith
        (Printf.sprintf "smoke: expected 1 hop-matrix build, got %d" (Distcache.hop_builds t));
    if Stats.hop_builds stats <> 1 then
      failwith
        (Printf.sprintf "smoke: stats recorded %d hop-matrix builds" (Stats.hop_builds stats));
    if s.Metrics.route_stretch > 1.0 +. 1e-9 then
      failwith (Printf.sprintf "smoke: MM-Route stretch %.3f > 1" s.Metrics.route_stretch);
    if Stats.attempts stats = [] then failwith "smoke: pipeline recorded no attempts";
    (match Stats.winner stats with
    | Some (_, label) when label = m.Mapping.strategy -> ()
    | Some (_, label) ->
      failwith
        (Printf.sprintf "smoke: stats winner %S but mapping strategy %S" label
           m.Mapping.strategy)
    | None -> failwith "smoke: stats recorded no winner");
    Printf.printf "nbody(15) on torus:4x4 -> %s, completion %d, stretch %.3f\n"
      s.Metrics.strategy s.Metrics.completion_time s.Metrics.route_stretch;
    print_string (Stats.to_table stats));
  (* a selection with no applicable strategy must fail loudly, with the
     per-strategy rejection reasons on the stats sink *)
  (match
     Driver.report
       ~options:{ Driver.default_options with Driver.only = [ "canned" ] }
       compiled (topo "ring:8")
   with
  | Ok m, _ ->
    failwith
      (Printf.sprintf "smoke: --only canned unexpectedly mapped nbody via %s"
         m.Mapping.strategy)
  | Error _, stats ->
    if Stats.rejections stats = [] then
      failwith "smoke: failed selection recorded no rejection reasons");
  (* fault injection: kill one processor, repair, and the repaired
     mapping must avoid it while moving only its tasks *)
  (let base = topo "hypercube:3" in
   let compiled = Workloads.compile_exn (Workloads.nbody ~n:8 ~s:1) in
   match Driver.map_compiled compiled base with
   | Error e -> failwith ("smoke: pristine mapping failed: " ^ e)
   | Ok m -> begin
     let faults =
       match Faults.make ~procs:[ 5 ] base with
       | Ok f -> f
       | Error e -> failwith ("smoke: fault set: " ^ e)
     in
     match Result.bind (Faults.degrade base faults) (fun view ->
               Repair.repair m view.Faults.topo)
     with
     | Error e -> failwith ("smoke: repair failed: " ^ e)
     | Ok r ->
       let repaired = r.Repair.rp_mapping in
       Array.iter
         (fun p ->
           if p = 5 then failwith "smoke: repaired mapping still uses the dead processor")
         (Mapping.assignment repaired);
       (match Mapping.validate repaired with
       | Ok () -> ()
       | Error e -> failwith ("smoke: repaired mapping invalid: " ^ e));
       List.iter
         (fun mv ->
           if mv.Repair.mv_from <> 5 then
             failwith "smoke: repair moved a task off a surviving processor")
         r.Repair.rp_moves;
       Printf.printf "fault smoke: killed proc 5 on hypercube(3), evacuated %d task(s)\n"
         (Repair.moved r)
   end);
  (* anytime contract: a tiny fuel budget still yields a valid mapping,
     tagged as degraded *)
  (let compiled = Workloads.compile_exn (Workloads.nbody ~n:16 ~s:2) in
   let options = { Driver.default_options with Driver.fuel = Some 5 } in
   let ctx = Ctx.of_compiled ~options compiled (topo "torus:4x4") in
   match Driver.run ctx with
   | Error e -> failwith ("smoke: budgeted mapping failed: " ^ e)
   | Ok (m, deg) ->
     (match Mapping.validate m with
     | Ok () -> ()
     | Error e -> failwith ("smoke: budgeted mapping invalid: " ^ e));
     if deg = Stats.Full then
       failwith "smoke: 5 fuel units reported as a full run";
     if not (Budget.exhausted ctx.Ctx.budget) then
       failwith "smoke: tiny fuel budget never tripped";
     Printf.printf "budget smoke: 5 fuel units -> valid %s mapping (%s)\n"
       m.Mapping.strategy
       (Stats.degradation_string deg));
  (* the parallel batch service must agree with the sequential one line
     for line (elapsed-ms masked), poisoned request included *)
  (let requests =
     [
       "voting hypercube:2"; "voting hypercube:2 seed=7"; "nbody ring:8";
       "./no-such.larcs ring:4"; "voting hypercube:2"; "nbody ring:8 seed=3";
     ]
   in
   let code1, _, out1 = run_batch ~jobs:1 requests in
   let code3, _, out3 = run_batch ~jobs:3 requests in
   if code1 <> 1 || code3 <> 1 then
     failwith "smoke: poisoned batch should exit 1 under both pool widths";
   if out1 <> out3 then
     failwith "smoke: --jobs 3 batch output differs from --jobs 1";
   Printf.printf "serve smoke: %d-request batch identical at jobs=1 and jobs=3\n"
     (List.length requests));
  (* multilevel tier: a 10^4-task synthetic grid onto 4096 processors —
     far beyond the flat sweet spot, exercising coarsening, the
     identity coarsest placement, and projected refinement *)
  (let tg = Synth.generate Synth.Grid ~n:10_000 ~seed:1 in
   let t = topo "torus:64x64" in
   let options = { Driver.default_options with Driver.only = [ "multilevel" ] } in
   match Driver.report_taskgraph ~options tg t with
   | Error e, _ -> failwith ("smoke: multilevel failed: " ^ e)
   | Ok m, stats ->
     (match Mapping.validate m with
     | Ok () -> ()
     | Error e -> failwith ("smoke: multilevel mapping invalid: " ^ e));
     if m.Mapping.strategy <> "multilevel" then
       failwith
         (Printf.sprintf "smoke: expected the multilevel strategy, got %s"
            m.Mapping.strategy);
     let levels =
       Option.value ~default:0
         (List.assoc_opt "multilevel levels" (Stats.extra_counters stats))
     in
     if levels < 2 then
       failwith (Printf.sprintf "smoke: multilevel recorded %d level(s)" levels);
     Printf.printf
       "multilevel smoke: grid(10000) on torus:64x64 -> %d clusters, %d levels, completion %d\n"
       (Array.length m.Mapping.proc_of_cluster) levels
       (Metrics.summary m).Metrics.completion_time);
  (* coarse routing: valid mapping, per-message endpoints agree with
     full MM-Route, byte-identical across pool widths *)
  (let tg = Synth.generate Synth.Rmat ~n:3_000 ~seed:1 in
   let t = topo "torus:8x8" in
   let run routing jobs =
     let options =
       { Driver.default_options with
         Driver.only = [ "multilevel" ];
         Driver.routing;
         Driver.jobs = jobs;
       }
     in
     match Driver.map_taskgraph ~options tg t with
     | Ok m -> m
     | Error e -> failwith ("smoke: coarse routing run failed: " ^ e)
   in
   let full = run Driver.Mm_route 1 in
   let coarse = run Driver.Coarse 1 in
   let coarse4 = run Driver.Coarse 4 in
   (match Mapping.validate coarse with
   | Ok () -> ()
   | Error e -> failwith ("smoke: coarse mapping invalid: " ^ e));
   if coarse.Mapping.routings <> coarse4.Mapping.routings then
     failwith "smoke: coarse routing differs between jobs=1 and jobs=4";
   (* same placement, so every message must connect the same processor
      pair under both routers *)
   let endpoints m =
     List.concat_map
       (fun pr ->
         List.map
           (fun re ->
             ( pr.Mapping.pr_phase, re.Mapping.re_src, re.Mapping.re_dst,
               re.Mapping.re_route.Routes.nodes <> [] ))
           pr.Mapping.pr_edges)
       m.Mapping.routings
   in
   if endpoints full <> endpoints coarse then
     failwith "smoke: coarse routing disagrees with MM-Route on message endpoints";
   Printf.printf
     "coarse smoke: rmat(3000) on torus:8x8 -> %d routed edges, jobs=1/4 identical\n"
     (List.fold_left
        (fun acc pr -> acc + List.length pr.Mapping.pr_edges)
        0 coarse.Mapping.routings));
  print_endline "smoke ok"

let experiments ~large =
  [
    ("E1", e1_nbody_larcs);
    ("E2", e2_group_contraction);
    ("E3", e3_mwm_contract);
    ("E4", e4_mm_route);
    ("E5", e5_binomial_mesh);
    ("E6", e6_mwm_optimality);
    ("E8", e8_end_to_end);
    ("E9", e9_systolic);
    ("E10", e10_canned_dilation);
    ("E11", e11_dispatch);
    ("E12", e12_metrics);
    ("E13", e13_synchrony);
    ("E14", e14_distcache);
    ("E15", e15_strategy_wins);
    ("E16", e16_fault_recovery);
    ("E17", e17_budget_curve);
    ("E18", e18_batch_throughput);
    ("E19", e19_multilevel ~large);
    ("E20", e20_constraints);
    ("E21", e21_daemon_load);
    ("E22", e22_cluster_lifecycle);
    ("E23", e23_coarse_routing);
    ("ablation-refinement", ablation_refinement);
    ("ablation-routing", ablation_routing);
    ("ablation-route-cap", ablation_route_cap);
    ("ablation-aggregate", ablation_aggregate);
    ("ablation-switching", ablation_switching);
    ("extension-remap", extension_remap);
    ("extension-spawning", extension_spawning);
    ("ablation-contraction-engines", ablation_contraction_engines);
    ("extension-syntactic-cayley", extension_syntactic_cayley);
    ("extension-partition", extension_partition);
    ("extension-lsgp-lpgs", extension_lsgp_lpgs);
    ("E7", timing_suite);
  ]

let usage () =
  prerr_endline
    "usage: main.exe [--smoke] [--json FILE] [--only ID]... [--large]";
  prerr_endline
    "  --only ID   run one experiment (repeatable; E1..E23, ablation-*, extension-*)";
  prerr_endline "  --large     include the n=10^6 instances in E19";
  prerr_endline "  --json FILE merge machine-readable records into FILE";
  exit 2

let () =
  (* E18/E21's fresh-process workers; not part of the public interface *)
  (match Array.to_list Sys.argv with
  | [ _; "--e18-serve"; jobs; req_file; out_file ] ->
    e18_serve (int_of_string jobs) req_file out_file
  | [ _; "--e21-daemon"; socket; jobs; queue_bound; cache_bound ] ->
    e21_daemon socket (int_of_string jobs) (int_of_string queue_bound)
      (int_of_string cache_bound)
  | _ -> ());
  let smoke_mode = ref false
  and json_file = ref None
  and only = ref []
  and large = ref false in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke_mode := true; parse rest
    | "--json" :: file :: rest -> json_file := Some file; parse rest
    | "--only" :: id :: rest -> only := !only @ [ id ]; parse rest
    | "--large" :: rest -> large := true; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke_mode then smoke ()
  else begin
    let all = experiments ~large:!large in
    let selected =
      match !only with
      | [] -> all
      | ids ->
        List.iter
          (fun id ->
            if not (List.mem_assoc id all) then begin
              Printf.eprintf "unknown experiment %S (known: %s)\n" id
                (String.concat ", " (List.map fst all));
              exit 2
            end)
          ids;
        List.filter (fun (id, _) -> List.mem id ids) all
    in
    print_endline "OREGAMI experiment harness (DESIGN.md maps E-ids to paper sections)";
    List.iter (fun (_, run) -> run ()) selected;
    print_endline "\nall experiments complete"
  end;
  match !json_file with None -> () | Some file -> write_json file
