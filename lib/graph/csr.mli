(** Compressed-sparse-row view of an undirected graph.

    A {!Ugraph.t} stores adjacency as linked lists of [(node, weight
    ref)] pairs; every BFS over it allocates.  This module freezes a
    graph into three flat [int array]s (offsets / targets / weights) so
    the traversals that drive the mapping algorithms — per-source BFS
    and the all-pairs hop matrix — run allocation-free over contiguous
    memory.  Neighbour order matches [Ugraph.neighbors]
    (first-insertion order), so traversals visit nodes in the same
    order as the list-based code paths. *)

type t

val of_ugraph : Ugraph.t -> t
(** Snapshot of the graph's current adjacency; later mutations of the
    source graph are not reflected. *)

val node_count : t -> int

val arc_count : t -> int
(** Directed arc slots: twice the undirected edge count. *)

val degree : t -> int -> int

val neighbors_iter : t -> int -> (int -> int -> unit) -> unit
(** [neighbors_iter t u f] calls [f v w] for each neighbour [v] of [u]
    with edge weight [w], in first-insertion order. *)

val unreachable : int
(** Distance value for unreachable nodes ([max_int]), matching
    {!Traverse.bfs_dist}. *)

val bfs_dist : t -> int -> int array
(** Hop distances from the source; unreachable nodes get
    {!unreachable}.  Agrees with [Traverse.bfs_dist] on the source
    graph. *)

val all_pairs_hops : ?parallel:bool -> t -> int array
(** Flat row-major hop matrix: entry [u * n + v] is the hop distance
    from [u] to [v] ({!unreachable} when disconnected).  With
    [~parallel:true] the per-source BFS rows are fanned out across
    OCaml 5 domains (each domain writes a disjoint block of rows);
    the result is identical to the sequential computation. *)
