type t = {
  n : int;
  offsets : int array; (* length n + 1; arcs of u at offsets.(u) .. offsets.(u+1)-1 *)
  targets : int array;
  weights : int array;
}

let unreachable = max_int

let node_count t = t.n

let arc_count t = Array.length t.targets

let degree t u = t.offsets.(u + 1) - t.offsets.(u)

let of_ugraph g =
  let n = Ugraph.node_count g in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + Ugraph.degree g u
  done;
  let m = offsets.(n) in
  let targets = Array.make m 0 and weights = Array.make m 0 in
  for u = 0 to n - 1 do
    let i = ref offsets.(u) in
    List.iter
      (fun (v, w) ->
        targets.(!i) <- v;
        weights.(!i) <- w;
        incr i)
      (Ugraph.neighbors g u)
  done;
  { n; offsets; targets; weights }

let neighbors_iter t u f =
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f t.targets.(i) t.weights.(i)
  done

(* One BFS row: distances from [src] written into
   [dist.(base) .. dist.(base + n - 1)], with [queue] as scratch (length
   >= n).  Unreached slots are left at [unreachable]. *)
let bfs_into t src dist base queue =
  Array.fill dist base t.n unreachable;
  dist.(base + src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(base + u) + 1 in
    for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
      let v = t.targets.(i) in
      if dist.(base + v) = unreachable then begin
        dist.(base + v) <- du;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done

let bfs_dist t src =
  if src < 0 || src >= t.n then invalid_arg "Csr.bfs_dist: source out of range";
  let dist = Array.make t.n unreachable in
  bfs_into t src dist 0 (Array.make (max 1 t.n) 0);
  dist

let rows_into t ~lo ~hi hops =
  let queue = Array.make (max 1 t.n) 0 in
  for src = lo to hi - 1 do
    bfs_into t src hops (src * t.n) queue
  done

let all_pairs_hops ?(parallel = false) t =
  let n = t.n in
  let hops = Array.make (max 1 (n * n)) unreachable in
  let domains =
    if not parallel then 1 else min (Domain.recommended_domain_count ()) 8
  in
  if domains <= 1 || n < 2 * domains then rows_into t ~lo:0 ~hi:n hops
  else begin
    (* Each domain owns a contiguous block of sources; rows are disjoint
       slices of [hops], so the writes never race. *)
    let chunk = (n + domains - 1) / domains in
    let workers =
      List.init (domains - 1) (fun i ->
          let lo = (i + 1) * chunk in
          let hi = min n (lo + chunk) in
          Domain.spawn (fun () -> rows_into t ~lo ~hi hops))
    in
    rows_into t ~lo:0 ~hi:(min n chunk) hops;
    List.iter Domain.join workers
  end;
  hops
