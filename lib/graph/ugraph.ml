type t = {
  n : int;
  adj : (int * int ref) list array;
  (* [adj.(u)] holds [(v, w)] with [w] shared with the entry in
     [adj.(v)], so weight accumulation stays consistent on both sides.
     Stored in reverse insertion order so insertion is O(1); [neighbors]
     reverses on read to keep the documented first-insertion order. *)
  weights : (int, int ref) Hashtbl.t; (* key: u * n + v with u < v *)
  mutable edge_count : int;
}

let create n = { n; adj = Array.make n []; weights = Hashtbl.create 16; edge_count = 0 }

let node_count g = g.n

let edge_count g = g.edge_count

let check g u =
  if u < 0 || u >= g.n then invalid_arg (Printf.sprintf "Ugraph: node %d out of [0,%d)" u g.n)

let key g u v = if u < v then (u * g.n) + v else (v * g.n) + u

let add_edge ?(w = 1) g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Ugraph.add_edge: self loop";
  match Hashtbl.find_opt g.weights (key g u v) with
  | Some r -> r := !r + w
  | None ->
    let r = ref w in
    Hashtbl.add g.weights (key g u v) r;
    g.adj.(u) <- (v, r) :: g.adj.(u);
    g.adj.(v) <- (u, r) :: g.adj.(v);
    g.edge_count <- g.edge_count + 1

let neighbors g u =
  check g u;
  List.rev_map (fun (v, r) -> (v, !r)) g.adj.(u)

let degree g u =
  check g u;
  List.length g.adj.(u)

let weight g u v =
  check g u;
  check g v;
  if u = v then 0
  else match Hashtbl.find_opt g.weights (key g u v) with Some r -> !r | None -> 0

let mem_edge g u v = weight g u v <> 0 || (u <> v && Hashtbl.mem g.weights (key g u v))

let edges g =
  Hashtbl.fold (fun k r acc -> (k / g.n, k mod g.n, !r) :: acc) g.weights []
  |> List.sort compare

let total_weight g = Hashtbl.fold (fun _ r acc -> acc + !r) g.weights 0

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v, w) -> add_edge ~w g u v) es;
  g

let copy g = of_edges g.n (edges g)

let complete n =
  let g = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge g u v
    done
  done;
  g

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (List.length g.adj.(u))
  done;
  !best

let is_regular g =
  g.n = 0
  ||
  let d = degree g 0 in
  let rec go u = u >= g.n || (degree g u = d && go (u + 1)) in
  go 1

let equal a b = a.n = b.n && edges a = edges b

let pp fmt g =
  Format.fprintf fmt "@[<v>ugraph %d nodes %d edges" g.n g.edge_count;
  List.iter (fun (u, v, w) -> Format.fprintf fmt "@,  %d -- %d (w=%d)" u v w) (edges g);
  Format.fprintf fmt "@]"
