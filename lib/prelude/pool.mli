(** Bounded OCaml 5 domain pool with deterministic, in-order result
    delivery.

    The batch mapping service (and anything else with an indexed bag
    of independent jobs) fans work out over a fixed set of domains:
    each worker repeatedly claims the next unclaimed task index from a
    shared atomic dispenser, so the queue drains in work-stealing
    fashion with no per-item spawn cost.  Results flow back through an
    {e ordered collector}: the calling domain hands them to [emit] in
    strict index order regardless of completion order, which is what
    makes parallel output byte-identical to a sequential run. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool width to use when
    the caller expressed no preference. *)

val run : jobs:int -> n:int -> task:(int -> 'a) -> emit:(int -> 'a -> unit) -> unit
(** [run ~jobs ~n ~task ~emit] evaluates [task i] for every
    [0 <= i < n] on at most [jobs] worker domains and calls [emit i
    (task i)] from the {e calling} domain in increasing [i], as soon as
    each prefix is complete (so emission streams, it does not wait for
    the whole batch).  With [jobs <= 1] everything runs sequentially in
    the caller and no domain is spawned.

    [task] runs on a worker domain and must only touch domain-safe
    state; [emit] always runs on the calling domain.  If a task or
    [emit] raises, the pool stops handing out new indices, waits for
    in-flight tasks, joins every worker, and re-raises the first
    failure in index order — matching where a sequential run would
    have stopped (later tasks may or may not have executed). *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] is [Array.map f arr] computed on the pool, in
    input order. *)

(** {2 Persistent pool with a bounded admission queue}

    {!run} is batch-shaped (task count known up front).  A long-lived
    service instead feeds jobs as clients produce them: {!feeder}
    keeps [jobs] worker domains alive across jobs, and admission is
    explicit — {!offer} either enqueues within the bound or returns
    [false] {e immediately}, so the caller can shed the load with a
    named rejection instead of blocking.  This is the backpressure
    primitive under the network daemon's admission control. *)

type 'a feeder

val feeder : jobs:int -> bound:int -> ('a -> unit) -> 'a feeder
(** [feeder ~jobs ~bound handler] spawns [jobs] worker domains that
    pull accepted jobs and run [handler] on each.  Jobs are drained
    {e round-robin over admission keys} (see {!offer_keyed}): one job
    from each key's FIFO lane in rotation, so no key can starve the
    others; within a key, order is FIFO.  At most [bound] jobs wait
    across all lanes (jobs being processed do not count).  The handler
    owns its own error reporting: if it raises, the exception is
    swallowed and the worker keeps serving.  [jobs] must be at least
    1; [bound] at least 0 ([0] sheds every offer — useful for
    tests). *)

val offer_keyed : 'a feeder -> key:int -> 'a -> bool
(** Non-blocking admission under a caller-chosen key (one per client,
    say): [true] if the job was enqueued, [false] if the total queue
    is at its bound (or the feeder is draining) — the caller should
    reject the job by name.  Safe from any thread or domain. *)

val offer : 'a feeder -> 'a -> bool
(** {!offer_keyed} under key [0] — single-lane callers get plain FIFO,
    exactly the old behaviour. *)

val depth : 'a feeder -> int
(** Jobs currently waiting in the queue (excludes jobs being
    processed). *)

val inflight : 'a feeder -> int
(** Jobs currently being processed by a worker. *)

val drain : 'a feeder -> unit
(** Stop admitting ([offer] returns [false] from now on), let the
    workers finish every job already accepted, and join them.  Blocks
    until the queue is empty and every worker has exited. *)
