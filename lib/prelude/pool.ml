(* Bounded domain pool with a work-queue and an ordered collector.

   Workers pull task indices from a shared atomic dispenser (so a slow
   task never stalls the queue behind it) and publish results under a
   mutex; the calling domain replays the results to [emit] strictly in
   index order, whatever order they completed in.  With [jobs <= 1] no
   domain is spawned and the tasks run sequentially in the caller,
   which keeps single-job runs bit-identical to the pre-pool code
   path. *)

let default_jobs () = Domain.recommended_domain_count ()

let sequential ~n ~task ~emit =
  for i = 0 to n - 1 do
    emit i (task i)
  done

let run ~jobs ~n ~task ~emit =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then sequential ~n ~task ~emit
  else begin
    let jobs = min jobs n in
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    let lock = Mutex.create () in
    let ready = Condition.create () in
    (* slot i holds task i's result (or its exception) until the
       collector consumes it; publishing under [lock] gives the
       happens-before edge the collector needs *)
    let slots = Array.make n None in
    let worker () =
      let running = ref true in
      while !running do
        if Atomic.get stop then running := false
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then running := false
          else begin
            let r = match task i with v -> Ok v | exception e -> Error e in
            Mutex.lock lock;
            slots.(i) <- Some r;
            Condition.broadcast ready;
            Mutex.unlock lock
          end
        end
      done
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    let failure = ref None in
    (try
       for i = 0 to n - 1 do
         Mutex.lock lock;
         while slots.(i) = None do
           Condition.wait ready lock
         done;
         let r = Option.get slots.(i) in
         slots.(i) <- None;
         Mutex.unlock lock;
         match r with
         | Ok v -> emit i v
         | Error e ->
           failure := Some e;
           raise Exit
       done
     with e ->
       if !failure = None then failure := Some e;
       Atomic.set stop true);
    List.iter Domain.join domains;
    match !failure with Some e -> raise e | None -> ()
  end

let map ~jobs f arr =
  let out = Array.map (fun _ -> None) arr in
  run ~jobs ~n:(Array.length arr)
    ~task:(fun i -> f arr.(i))
    ~emit:(fun i v -> out.(i) <- Some v);
  Array.map Option.get out
