(* Bounded domain pool with a work-queue and an ordered collector.

   Workers pull task indices from a shared atomic dispenser (so a slow
   task never stalls the queue behind it) and publish results under a
   mutex; the calling domain replays the results to [emit] strictly in
   index order, whatever order they completed in.  With [jobs <= 1] no
   domain is spawned and the tasks run sequentially in the caller,
   which keeps single-job runs bit-identical to the pre-pool code
   path. *)

let default_jobs () = Domain.recommended_domain_count ()

let sequential ~n ~task ~emit =
  for i = 0 to n - 1 do
    emit i (task i)
  done

let run ~jobs ~n ~task ~emit =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then sequential ~n ~task ~emit
  else begin
    let jobs = min jobs n in
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    let lock = Mutex.create () in
    let ready = Condition.create () in
    (* slot i holds task i's result (or its exception) until the
       collector consumes it; publishing under [lock] gives the
       happens-before edge the collector needs *)
    let slots = Array.make n None in
    let worker () =
      let running = ref true in
      while !running do
        if Atomic.get stop then running := false
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then running := false
          else begin
            let r = match task i with v -> Ok v | exception e -> Error e in
            Mutex.lock lock;
            slots.(i) <- Some r;
            Condition.broadcast ready;
            Mutex.unlock lock
          end
        end
      done
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    let failure = ref None in
    (try
       for i = 0 to n - 1 do
         Mutex.lock lock;
         while slots.(i) = None do
           Condition.wait ready lock
         done;
         let r = Option.get slots.(i) in
         slots.(i) <- None;
         Mutex.unlock lock;
         match r with
         | Ok v -> emit i v
         | Error e ->
           failure := Some e;
           raise Exit
       done
     with e ->
       if !failure = None then failure := Some e;
       Atomic.set stop true);
    List.iter Domain.join domains;
    match !failure with Some e -> raise e | None -> ()
  end

let map ~jobs f arr =
  let out = Array.map (fun _ -> None) arr in
  run ~jobs ~n:(Array.length arr)
    ~task:(fun i -> f arr.(i))
    ~emit:(fun i v -> out.(i) <- Some v);
  Array.map Option.get out

(* ------------------------------------------------------------------ *)
(* Persistent pool over a bounded admission queue.

   [run] is batch-shaped: it needs the task count up front.  A
   long-lived service instead feeds jobs as they arrive, so [feeder]
   keeps the worker domains alive across jobs and makes admission
   explicit: [offer] either enqueues (within the bound) or returns
   [false] immediately — the caller sheds the load by name instead of
   blocking, which is what keeps a server responsive when the queue
   is full.  [drain] stops admission, lets the workers finish every
   job already accepted, and joins them.

   Admission is keyed: jobs enqueue under a caller-chosen key (one per
   client, say) and the workers drain the keys round-robin, one job
   from each key in rotation — a client flooding the queue under its
   own key cannot starve the others, it only lengthens its own lane.
   [offer] is [offer_keyed] under key 0; with a single key the drain
   order is plain FIFO, exactly as before. *)

type 'a feeder = {
  f_lock : Mutex.t;
  f_nonempty : Condition.t;
  f_queues : (int, 'a Queue.t) Hashtbl.t;  (* per-key lanes, all non-empty *)
  mutable f_order : int list;  (* round-robin rotation over the lanes *)
  mutable f_len : int;  (* total queued, across lanes *)
  f_bound : int;
  mutable f_stop : bool;
  mutable f_active : int;  (* jobs a worker is processing right now *)
  mutable f_workers : unit Domain.t list;
}

(* caller holds the lock and guarantees f_len > 0 *)
let pop_round_robin f =
  match f.f_order with
  | [] -> assert false
  | k :: rest ->
    let q = Hashtbl.find f.f_queues k in
    let x = Queue.pop q in
    f.f_len <- f.f_len - 1;
    if Queue.is_empty q then begin
      Hashtbl.remove f.f_queues k;
      f.f_order <- rest
    end
    else f.f_order <- rest @ [ k ];
    x

let feeder ~jobs ~bound handler =
  if jobs < 1 then invalid_arg "Pool.feeder: jobs must be >= 1";
  if bound < 0 then invalid_arg "Pool.feeder: bound must be >= 0";
  let f =
    {
      f_lock = Mutex.create ();
      f_nonempty = Condition.create ();
      f_queues = Hashtbl.create 16;
      f_order = [];
      f_len = 0;
      f_bound = bound;
      f_stop = false;
      f_active = 0;
      f_workers = [];
    }
  in
  let worker () =
    let running = ref true in
    while !running do
      Mutex.lock f.f_lock;
      while f.f_len = 0 && not f.f_stop do
        Condition.wait f.f_nonempty f.f_lock
      done;
      if f.f_len = 0 then begin
        (* stop requested and nothing left: done *)
        running := false;
        Mutex.unlock f.f_lock
      end
      else begin
        let x = pop_round_robin f in
        f.f_active <- f.f_active + 1;
        Mutex.unlock f.f_lock;
        (* the handler owns its own error reporting; a raise here must
           not kill the worker domain *)
        (try handler x with _ -> ());
        Mutex.lock f.f_lock;
        f.f_active <- f.f_active - 1;
        Mutex.unlock f.f_lock
      end
    done
  in
  f.f_workers <- List.init jobs (fun _ -> Domain.spawn worker);
  f

let offer_keyed f ~key x =
  Mutex.protect f.f_lock (fun () ->
      if f.f_stop || f.f_len >= f.f_bound then false
      else begin
        (match Hashtbl.find_opt f.f_queues key with
        | Some q -> Queue.push x q
        | None ->
          let q = Queue.create () in
          Queue.push x q;
          Hashtbl.replace f.f_queues key q;
          f.f_order <- f.f_order @ [ key ]);
        f.f_len <- f.f_len + 1;
        Condition.signal f.f_nonempty;
        true
      end)

let offer f x = offer_keyed f ~key:0 x

let depth f = Mutex.protect f.f_lock (fun () -> f.f_len)

let inflight f = Mutex.protect f.f_lock (fun () -> f.f_active)

let drain f =
  Mutex.lock f.f_lock;
  f.f_stop <- true;
  Condition.broadcast f.f_nonempty;
  Mutex.unlock f.f_lock;
  List.iter Domain.join f.f_workers;
  f.f_workers <- []
