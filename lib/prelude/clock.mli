(** Monotonic wall-clock helpers.

    All timing in the mapper (budget deadlines, phase timings, bench
    measurements) goes through this module so the time source is
    monotonic — immune to NTP steps and {!Unix.gettimeofday}
    adjustments — and so call sites never repeat unit conversions. *)

val now : unit -> float
(** Monotonic time in seconds since an arbitrary epoch.  Only
    differences between two [now] readings are meaningful. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is the seconds elapsed since the reading [t0]. *)

val elapsed_ms : float -> float
(** [elapsed_ms t0] is the milliseconds elapsed since the reading [t0]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the
    elapsed wall-clock seconds. *)
