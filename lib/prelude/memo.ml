type 'v entry = Ready of { value : 'v; mutable stamp : int } | Building

type ('k, 'v) t = {
  lock : Mutex.t;
  changed : Condition.t;
  tbl : ('k, 'v entry) Hashtbl.t;
  bound : int option;
  mutable tick : int;  (* recency clock; larger stamp = used more recently *)
  mutable ready : int;  (* published entries (Building claims excluded) *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  mc_size : int;
  mc_bound : int option;
  mc_hits : int;
  mc_misses : int;
  mc_evictions : int;
}

let create ?(size = 16) ?bound () =
  (match bound with
  | Some b when b < 1 -> invalid_arg "Memo.create: bound must be >= 1"
  | _ -> ());
  {
    lock = Mutex.create ();
    changed = Condition.create ();
    tbl = Hashtbl.create size;
    bound;
    tick = 0;
    ready = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* caller holds [t.lock].  Building claims are never evicted: their
   builder still expects to publish, and a waiter is parked on them. *)
let evict_over_bound t =
  match t.bound with
  | None -> ()
  | Some b ->
    while t.ready > b do
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match (e, acc) with
            | Building, _ -> acc
            | Ready r, Some (_, best) when best <= r.stamp -> acc
            | Ready r, _ -> Some (k, r.stamp))
          t.tbl None
      in
      match victim with
      | None -> t.ready <- 0 (* unreachable: ready > 0 implies a Ready entry *)
      | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.ready <- t.ready - 1;
        t.evictions <- t.evictions + 1
    done

let get t key build =
  Mutex.lock t.lock;
  let rec claim () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready r) ->
      t.tick <- t.tick + 1;
      r.stamp <- t.tick;
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      r.value
    | Some Building ->
      (* someone else is building this key; sleep until the table
         changes rather than duplicating the work *)
      Condition.wait t.changed t.lock;
      claim ()
    | None ->
      t.misses <- t.misses + 1;
      Hashtbl.replace t.tbl key Building;
      Mutex.unlock t.lock;
      (match build () with
      | v ->
        Mutex.lock t.lock;
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl key (Ready { value = v; stamp = t.tick });
        t.ready <- t.ready + 1;
        (* the fresh entry holds the newest stamp, so under any bound
           >= 1 the eviction scan always picks an older key *)
        evict_over_bound t;
        Condition.broadcast t.changed;
        Mutex.unlock t.lock;
        v
      | exception e ->
        (* never leave a Building tombstone behind: drop the claim so a
           waiter can retry (or fail) on its own *)
        Mutex.lock t.lock;
        Hashtbl.remove t.tbl key;
        Condition.broadcast t.changed;
        Mutex.unlock t.lock;
        raise e)
  in
  claim ()

let find_opt t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready r) -> Some r.value
    | Some Building | None -> None
  in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        mc_size = t.ready;
        mc_bound = t.bound;
        mc_hits = t.hits;
        mc_misses = t.misses;
        mc_evictions = t.evictions;
      })
