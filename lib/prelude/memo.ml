type 'v entry = Ready of 'v | Building

type ('k, 'v) t = {
  lock : Mutex.t;
  changed : Condition.t;
  tbl : ('k, 'v entry) Hashtbl.t;
}

let create ?(size = 16) () =
  { lock = Mutex.create (); changed = Condition.create (); tbl = Hashtbl.create size }

let get t key build =
  Mutex.lock t.lock;
  let rec claim () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready v) ->
      Mutex.unlock t.lock;
      v
    | Some Building ->
      (* someone else is building this key; sleep until the table
         changes rather than duplicating the work *)
      Condition.wait t.changed t.lock;
      claim ()
    | None ->
      Hashtbl.replace t.tbl key Building;
      Mutex.unlock t.lock;
      (match build () with
      | v ->
        Mutex.lock t.lock;
        Hashtbl.replace t.tbl key (Ready v);
        Condition.broadcast t.changed;
        Mutex.unlock t.lock;
        v
      | exception e ->
        (* never leave a Building tombstone behind: drop the claim so a
           waiter can retry (or fail) on its own *)
        Mutex.lock t.lock;
        Hashtbl.remove t.tbl key;
        Condition.broadcast t.changed;
        Mutex.unlock t.lock;
        raise e)
  in
  claim ()

let find_opt t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready v) -> Some v
    | Some Building | None -> None
  in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n
