(* Monotonic clock built on the CLOCK_MONOTONIC binding shipped with
   bechamel; the unix library bundled with this compiler does not
   expose [Unix.clock_gettime]. *)

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let elapsed_s t0 = now () -. t0

let elapsed_ms t0 = (now () -. t0) *. 1e3

let time f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
