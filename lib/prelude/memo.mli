(** Domain-safe build-once table.

    A [('k, 'v) t] maps keys to values that are expensive to build and
    immutable once built (compiled programs, topologies with warmed
    distance caches).  {!get} guarantees the build function runs {e at
    most once per key} even when many domains race on the same key:
    the first claimant installs a pending marker and builds outside the
    lock; latecomers block on a condition variable until the value is
    published.  If the build raises, the claim is released, the
    exception propagates to the builder, and a waiting domain retries
    the build itself. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [get t key build] returns the cached value for [key], building and
    publishing it with [build ()] on first use.  [build] runs outside
    the table lock, so independent keys build concurrently. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** The cached value, if already published ([None] while building). *)

val length : ('k, 'v) t -> int
(** Number of keys present (published or building). *)
