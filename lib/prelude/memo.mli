(** Domain-safe build-once table, optionally bounded with LRU eviction.

    A [('k, 'v) t] maps keys to values that are expensive to build and
    immutable once built (compiled programs, topologies with warmed
    distance caches).  {!get} guarantees the build function runs {e at
    most once per key} even when many domains race on the same key:
    the first claimant installs a pending marker and builds outside the
    lock; latecomers block on a condition variable until the value is
    published.  If the build raises, the claim is released, the
    exception propagates to the builder, and a waiting domain retries
    the build itself.

    With [~bound:n] the table keeps at most [n] {e published} values:
    publishing a fresh value beyond the bound evicts the least
    recently used key(s) first (every {!get} refreshes its key's
    recency).  Pending builds do not count toward the bound and are
    never evicted.  An evicted key is rebuilt on its next {!get} — the
    at-most-once guarantee is per residency, not per lifetime — which
    is what keeps a long-lived service's artifact caches from growing
    without limit under sustained many-key traffic. *)

type ('k, 'v) t

type stats = {
  mc_size : int;  (** published values currently resident *)
  mc_bound : int option;  (** the configured LRU bound, if any *)
  mc_hits : int;  (** {!get} calls answered from the table *)
  mc_misses : int;  (** {!get} calls that claimed a build *)
  mc_evictions : int;  (** values dropped by the LRU bound *)
}

val create : ?size:int -> ?bound:int -> unit -> ('k, 'v) t
(** [size] is the initial hash-table sizing hint.  [bound], when
    given, caps the number of published values (LRU eviction); it must
    be at least 1 or [Invalid_argument] is raised. *)

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [get t key build] returns the cached value for [key], building and
    publishing it with [build ()] on first use.  [build] runs outside
    the table lock, so independent keys build concurrently. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** The cached value, if already published ([None] while building).
    A pure peek: touches neither the recency order nor the counters. *)

val length : ('k, 'v) t -> int
(** Number of keys present (published or building). *)

val stats : ('k, 'v) t -> stats
(** Hit/miss/eviction counters and current size, read atomically. *)
