(** Routing tables: enumeration of candidate routes between processor
    pairs.

    MM-Route consumes "possible choices for the shortest routes" (paper
    §4.4, Fig 6b); this module provides them, either enumerated from the
    shortest-path DAG of an arbitrary topology or by the classical
    deterministic schemes (e-cube for hypercubes, dimension-order for
    meshes) used as routing baselines. *)

type route = { nodes : int list; links : int list }
(** A route records both the processor path (endpoints included) and
    the link ids traversed, so [List.length links = hops]. *)

val of_nodes : Topology.t -> int list -> route
(** Route from an explicit node path; computes the traversed link ids.
    Raises [Invalid_argument] when consecutive nodes are not
    adjacent. *)

val shortest_routes : ?cap:int -> Topology.t -> int -> int -> route list
(** All minimum-hop routes between two processors, up to [cap]
    (default 64), lexicographically ordered by node path.  Returns the
    single empty-link route when source equals destination. *)

val route_table : ?cap:int -> Topology.t -> (int * int, route list) Hashtbl.t
(** Routes for every ordered pair, computed eagerly.  Prefer
    [Distcache.routes], which enumerates on demand from the cached hop
    matrix and memoises per pair on the topology itself. *)

val ecube : Topology.t -> int -> int -> route
(** Deterministic e-cube (dimension-order, lowest bit first) route on a
    hypercube.  Raises [Invalid_argument] on other topologies and on
    degraded views (the scheme assumes every cube link is up). *)

val dimension_order : Topology.t -> int -> int -> route
(** Deterministic row-then-column route on a mesh or torus (tori route
    the short way around).  Raises [Invalid_argument] otherwise, and on
    degraded views. *)

val deterministic : Topology.t -> int -> int -> route
(** The natural deterministic route for the topology: {!ecube} on
    hypercubes, {!dimension_order} on meshes and tori, and the unique
    first shortest route otherwise.  On a degraded view the
    kind-specific schemes are unsafe (they may cross dead links), so
    this always takes the first shortest route on the surviving
    graph; raises [Invalid_argument] if the destination is
    unreachable. *)

val hops : route -> int

val sample_evenly : want:int -> route list -> route list
(** [sample_evenly ~want rs] keeps at most [want] routes, spread
    evenly over the list by deterministic stride sampling (the first
    route is always kept; relative order is preserved).  [want <= 0]
    yields the empty list, [want >= length rs] yields [rs] unchanged.
    The coarse router uses this to trim a heavy pair's candidate set
    without collapsing it onto a lexicographic prefix that would share
    every early link. *)
