(** Topology-resident distance and route cache.

    Every mapping algorithm in this repo — NN-Embed, pairwise
    refinement, incremental placement, MM-Route, aggregate replanning —
    is driven by processor hop distances and shortest-route queries on
    the target topology.  This module materialises those structures
    lazily, exactly once per topology value, on the {!Topology.cache}
    slot:

    - a flat all-pairs hop matrix computed over the {!Csr} adjacency
      (fanned out across OCaml 5 domains for topologies with at least
      {!parallel_threshold} processors);
    - a memoised shortest-route table that enumerates routes from the
      cached matrix instead of running a BFS per processor pair,
      subsuming the ad-hoc per-call caches that used to live in
      [Routes.route_table] and [Route.phase_messages].

    All queries agree exactly with the original [Shortest] /
    [Traverse] list-based computations.

    The cache is {e domain-safe}: one topology value may be shared by a
    whole pool of mapping domains (the batch service does exactly
    that).  The hop matrix is built at most once — mutual exclusion by
    a per-topology mutex, publication through an [Atomic.t] so readers
    on other domains see the initialised rows — and the route memo
    table is only touched under the same mutex.  {!hop} itself stays a
    plain array read on an already-published matrix, with no per-query
    locking. *)

type t
(** Cache handle with the hop matrix guaranteed built. *)

val hops : Topology.t -> t
(** Builds the all-pairs hop matrix on first use and returns the
    handle; later calls on the same topology value are O(1). *)

val hop : t -> int -> int -> int
(** [hop c u v] is the hop distance between processors [u] and [v]
    ([Csr.unreachable], i.e. [max_int], when disconnected).  O(1). *)

val size : t -> int
(** Number of processors the handle covers. *)

val hop_matrix : Topology.t -> int array
(** The underlying flat row-major matrix (entry [u * n + v]); builds it
    if needed.  Shared, do not mutate. *)

val csr : Topology.t -> Oregami_graph.Csr.t
(** The topology's CSR adjacency (built on first use, cached). *)

val routes : ?cap:int -> Topology.t -> int -> int -> Routes.route list
(** Memoised [Routes.shortest_routes]: identical results (same
    lexicographic order, same [cap] truncation, default 64; the single
    empty-link route when source equals destination), but enumerated
    from the cached hop matrix and stored per ordered pair.  A query
    with a smaller cap than a stored entry reuses its prefix; a larger
    cap recomputes only if the stored list had been truncated. *)

val routes_sampled :
  ?cap:int -> want:int -> Topology.t -> int -> int -> Routes.route list
(** [routes_sampled ?cap ~want topo u v] enumerates (and memoises)
    routes exactly like {!routes}, then trims the list to at most
    [want] candidates with {!Routes.sample_evenly}.  The coarse router
    sizes [want] by a pair's aggregated traffic so hot pairs keep the
    full candidate spread while the long tail of light pairs is scored
    against a handful of representatives. *)

val hop_builds : Topology.t -> int
(** How many times this topology's hop matrix has been computed —
    0 before first use, and 1 forever after unless the cache is
    externally replaced, {e including} when many domains race on a
    cold topology.  Exposed so tests and benchmarks can assert the
    matrix is computed at most once per topology per run. *)

val parallel_threshold : int ref
(** Node count at or above which the all-pairs computation fans out
    across domains (default 256).  Settable for tests. *)
