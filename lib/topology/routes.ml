module Shortest = Oregami_graph.Shortest

type route = { nodes : int list; links : int list }

let of_nodes topo nodes = { nodes; links = Topology.links_of_path topo nodes }

let shortest_routes ?(cap = 64) topo u v =
  Shortest.all_shortest_paths ~cap (Topology.graph topo) u v
  |> List.map (of_nodes topo)

let route_table ?cap topo =
  let n = Topology.node_count topo in
  let tbl = Hashtbl.create (n * n) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      Hashtbl.add tbl (u, v) (shortest_routes ?cap topo u v)
    done
  done;
  tbl

let ecube topo u v =
  if Topology.is_degraded topo then
    invalid_arg "Routes.ecube: degraded topology (e-cube routes may cross dead links)";
  match Topology.kind topo with
  | Topology.Hypercube d ->
    let rec go cur acc =
      if cur = v then List.rev acc
      else begin
        let diff = cur lxor v in
        let rec lowest b = if diff land (1 lsl b) <> 0 then b else lowest (b + 1) in
        let b = lowest 0 in
        if b >= d then invalid_arg "Routes.ecube: nodes out of range";
        let next = cur lxor (1 lsl b) in
        go next (next :: acc)
      end
    in
    of_nodes topo (go u [ u ])
  | Topology.Line _ | Topology.Ring _ | Topology.Mesh _ | Topology.Torus _
  | Topology.Complete _ | Topology.Binary_tree _ | Topology.Binomial_tree _
  | Topology.Butterfly _ | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _
  | Topology.Star_graph _ | Topology.De_bruijn _ | Topology.Shuffle_exchange _ ->
    invalid_arg "Routes.ecube: not a hypercube"

let dimension_order topo u v =
  if Topology.is_degraded topo then
    invalid_arg
      "Routes.dimension_order: degraded topology (dimension-order routes may cross dead \
       links)";
  let step_towards wrap size cur dst =
    (* one step along a single dimension, the short way around if wrapped *)
    if cur = dst then cur
    else begin
      let fwd = (dst - cur + size) mod size and bwd = (cur - dst + size) mod size in
      if not wrap then if dst > cur then cur + 1 else cur - 1
      else if fwd <= bwd then (cur + 1) mod size
      else (cur - 1 + size) mod size
    end
  in
  match Topology.kind topo with
  | Topology.Mesh (r, c) | Topology.Torus (r, c) ->
    let wrap = match Topology.kind topo with Topology.Torus _ -> true | _ -> false in
    let wrap_r = wrap && r > 2 and wrap_c = wrap && c > 2 in
    let vi, vj = (v / c, v mod c) in
    let rec go (i, j) acc =
      if (i, j) = (vi, vj) then List.rev acc
      else begin
        let j' = step_towards wrap_c c j vj in
        let i' = if j' <> j then i else step_towards wrap_r r i vi in
        let node = (i' * c) + j' in
        go (i', j') (node :: acc)
      end
    in
    of_nodes topo (go (u / c, u mod c) [ u ])
  | Topology.Line _ | Topology.Ring _ | Topology.Hypercube _ | Topology.Complete _
  | Topology.Binary_tree _ | Topology.Binomial_tree _ | Topology.Butterfly _
  | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _ | Topology.Star_graph _
  | Topology.De_bruijn _ | Topology.Shuffle_exchange _ ->
    invalid_arg "Routes.dimension_order: not a mesh or torus"

let first_shortest topo u v =
  match shortest_routes ~cap:1 topo u v with
  | r :: _ -> r
  | [] -> invalid_arg "Routes.deterministic: destination unreachable"

let deterministic topo u v =
  (* the kind-specific schemes assume the intact network: on a degraded
     view they would happily route across dead links, so fall back to a
     shortest route on the surviving graph *)
  if Topology.is_degraded topo then first_shortest topo u v
  else
    match Topology.kind topo with
    | Topology.Hypercube _ -> ecube topo u v
    | Topology.Mesh _ | Topology.Torus _ -> dimension_order topo u v
    | Topology.Line _ | Topology.Ring _ | Topology.Complete _ | Topology.Binary_tree _
    | Topology.Binomial_tree _ | Topology.Butterfly _ | Topology.Cube_connected_cycles _
    | Topology.Hex_mesh _ | Topology.Star_graph _ | Topology.De_bruijn _
    | Topology.Shuffle_exchange _ -> first_shortest topo u v

let hops r = List.length r.links

(* Deterministic stride sampling: keep [want] routes spread evenly
   across the (lexicographically ordered) candidate list instead of
   its prefix, so a trimmed candidate set still covers the whole
   shortest-route DAG.  Index 0 is always kept, which preserves the
   "first candidate" every budget-exhaustion commit path relies on. *)
let sample_evenly ~want rs =
  let n = List.length rs in
  if want <= 0 then []
  else if want >= n then rs
  else begin
    let arr = Array.of_list rs in
    List.init want (fun i -> arr.(i * n / want))
  end
