(** Fault sets and degraded topology views.

    OREGAMI's model assumes a pristine regular network, but the machines
    it targeted (iPSC/2, NCUBE, Transputer arrays) lost processors and
    links in the field.  A fault set names dead processors and dead
    links of a base {!Topology.t}; {!degrade} turns it into a working
    view: the surviving subgraph with link ids remapped, processor ids
    preserved, a fresh cache slot (so {!Distcache} rebuilds distances
    against the degraded graph), and translation tables between base and
    degraded link ids.  Faults that disconnect the surviving processors
    are reported as a named [Error] listing the partitions — never a
    crash, never a silent route through a dead link. *)

type t = { procs : int list; links : int list }
(** Dead processor ids and dead link ids (both in terms of the base
    topology), each sorted and duplicate-free when built by {!make} /
    {!random}. *)

val none : t

val is_empty : t -> bool

val make : ?procs:int list -> ?links:int list -> Topology.t -> (t, string) result
(** Validates ids against the topology: errors on out-of-range ids and
    on fault sets that kill every processor.  Sorts and de-duplicates. *)

val random :
  Oregami_prelude.Rng.t -> procs:int -> links:int -> Topology.t -> (t, string) result
(** [random rng ~procs ~links topo] draws [procs] distinct dead
    processors and [links] distinct dead links uniformly from the
    seeded generator — reproducible fault injection for experiments. *)

val describe : t -> string
(** E.g. ["2 dead processors (3,7), 1 dead link (5)"]. *)

val parse_ids : string -> (int list, string) result
(** CLI helper: parses ["3,7,12"]. *)

type view = {
  base : Topology.t;
  faults : t;
  topo : Topology.t;  (** the degraded view; processor ids preserved *)
  link_to_base : int array;  (** degraded link id -> base link id *)
  link_of_base : int option array;
      (** base link id -> surviving degraded id, [None] if dead *)
}

val degrade : Topology.t -> t -> (view, string) result
(** Applies the fault set.  Errors (with the partition contents) when
    the surviving processors are disconnected, since no mapping can
    route across a partition; errors on invalid ids or a fully-dead
    machine.  With an empty fault set the view's [topo] is [base]
    itself. *)

val revive : ?procs:int list -> ?links:int list -> view -> (view, string) result
(** The inverse of {!degrade}: remove the named processors/links from
    the view's fault set and rebuild the degraded view from the base.
    Ids are stable — processor ids are never renumbered, and the new
    view's link ids re-derive from the base link table, so
    [degrade ∘ revive] round-trips: reviving every fault yields a view
    whose [topo] is the base itself.  Errors (by name) on reviving a
    processor or link that is not currently dead; ids are base ids,
    exactly as in the fault set. *)

val partitions : Topology.t -> int list list
(** Connected components of the surviving (alive) processors of a
    possibly-degraded topology, each sorted, ordered by smallest
    member.  A healthy machine has exactly one. *)
