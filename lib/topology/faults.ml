module Traverse = Oregami_graph.Traverse
module Rng = Oregami_prelude.Rng

type t = { procs : int list; links : int list }

let none = { procs = []; links = [] }

let is_empty f = f.procs = [] && f.links = []

let make ?(procs = []) ?(links = []) topo =
  let n = Topology.node_count topo and nl = Topology.link_count topo in
  match
    ( List.find_opt (fun p -> p < 0 || p >= n) procs,
      List.find_opt (fun l -> l < 0 || l >= nl) links )
  with
  | Some p, _ ->
    Error
      (Printf.sprintf "dead processor %d out of range (%s has %d processors)" p
         (Topology.name topo) n)
  | None, Some l ->
    Error
      (Printf.sprintf "dead link %d out of range (%s has %d links)" l (Topology.name topo)
         nl)
  | None, None ->
    let procs = List.sort_uniq compare procs and links = List.sort_uniq compare links in
    if List.length procs >= n then
      Error (Printf.sprintf "faults kill every processor of %s" (Topology.name topo))
    else Ok { procs; links }

let random rng ~procs ~links topo =
  let n = Topology.node_count topo and nl = Topology.link_count topo in
  if procs < 0 || links < 0 then Error "fault counts must be non-negative"
  else if procs >= n then
    Error
      (Printf.sprintf "cannot kill %d of %d processors (at least one must survive)" procs n)
  else if links > nl then
    Error (Printf.sprintf "cannot kill %d of %d links" links nl)
  else Ok { procs = Rng.sample rng n procs; links = Rng.sample rng nl links }

let ids l = String.concat "," (List.map string_of_int l)

let describe f =
  if is_empty f then "no faults"
  else begin
    let part noun = function
      | [] -> None
      | xs ->
        Some
          (Printf.sprintf "%d dead %s%s (%s)" (List.length xs) noun
             (if List.length xs = 1 then "" else "s")
             (ids xs))
    in
    String.concat ", "
      (List.filter_map Fun.id [ part "processor" f.procs; part "link" f.links ])
  end

let parse_ids s =
  let parts = String.split_on_char ',' (String.trim s) in
  List.fold_left
    (fun acc part ->
      Result.bind acc (fun l ->
          match int_of_string_opt (String.trim part) with
          | Some i -> Ok (i :: l)
          | None -> Error (Printf.sprintf "bad id %S (want comma-separated integers)" part)))
    (Ok []) parts
  |> Result.map List.rev

type view = {
  base : Topology.t;
  faults : t;
  topo : Topology.t;
  link_to_base : int array;
  link_of_base : int option array;
}

let partitions topo =
  (* connected components of the surviving processors: every dead
     processor is an isolated node of the degraded graph, so a component
     is "alive" iff it contains an alive processor *)
  Traverse.components (Topology.graph topo)
  |> List.filter (List.exists (Topology.alive topo))

let pp_partitions parts =
  let pp_part p =
    let n = List.length p in
    let shown = List.filteri (fun i _ -> i < 6) p in
    Printf.sprintf "{%s%s}" (ids shown) (if n > 6 then Printf.sprintf ",... %d total" n else "")
  in
  let shown = List.filteri (fun i _ -> i < 4) parts in
  String.concat " / " (List.map pp_part shown)
  ^ if List.length parts > 4 then " / ..." else ""

let degrade base f =
  let ( let* ) = Result.bind in
  (* re-validate so a fault set built against one topology cannot be
     silently applied to a smaller one *)
  let* f = make ~procs:f.procs ~links:f.links base in
  let* topo = Topology.degrade base ~dead_procs:f.procs ~dead_links:f.links in
  match partitions topo with
  | ([] | [ _ ]) ->
    let link_to_base =
      Array.init (Topology.link_count topo) (fun i ->
          let u, v = Topology.link_endpoints topo i in
          match Topology.link_between base u v with
          | Some b -> b
          | None -> assert false (* every surviving link existed in the base *))
    in
    let link_of_base = Array.make (Topology.link_count base) None in
    Array.iteri (fun i b -> link_of_base.(b) <- Some i) link_to_base;
    Ok { base; faults = f; topo; link_to_base; link_of_base }
  | parts ->
    Error
      (Printf.sprintf
         "faults disconnect %s: surviving processors split into %d partitions %s"
         (Topology.name base) (List.length parts) (pp_partitions parts))

(* ------------------------------------------------------------------ *)
(* revive: the inverse of degrade.  Chaos schedules (and operators)
   bring processors and links back; the fault set shrinks and the view
   is rebuilt from the base, so ids stay stable: processor ids were
   never renumbered, and every surviving link id re-derives from the
   base link table. *)

let remove_revived what dead revived =
  List.fold_left
    (fun acc id ->
      Result.bind acc (fun dead ->
          if List.mem id dead then Ok (List.filter (fun d -> d <> id) dead)
          else Error (Printf.sprintf "cannot revive %s %d: not dead" what id)))
    (Ok dead) revived

let revive ?(procs = []) ?(links = []) view =
  let ( let* ) = Result.bind in
  let* procs = remove_revived "processor" view.faults.procs procs in
  let* links = remove_revived "link" view.faults.links links in
  degrade view.base { procs; links }
