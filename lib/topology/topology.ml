module Ugraph = Oregami_graph.Ugraph
module Traverse = Oregami_graph.Traverse

type kind =
  | Line of int
  | Ring of int
  | Mesh of int * int
  | Torus of int * int
  | Hypercube of int
  | Complete of int
  | Binary_tree of int
  | Binomial_tree of int
  | Butterfly of int
  | Cube_connected_cycles of int
  | Hex_mesh of int * int
  | Star_graph of int
  | De_bruijn of int
  | Shuffle_exchange of int

type cache = ..

let default_class = "compute"

type t = {
  kind : kind;
  graph : Ugraph.t;
  links : (int * int) array;
  link_ids : (int * int, int) Hashtbl.t;
  classes : string array;
      (* classes.(u) is processor [u]'s capability class; all
         [default_class] for homogeneous machines.  Preserved verbatim
         by [degrade] so fault views keep their class tags. *)
  dead : bool array;
      (* dead.(u) marks a failed processor; its links are absent from
         [graph]/[links].  All-false for pristine topologies. *)
  cut_links : int;
      (* links removed beyond those implied by dead processors *)
  cache : cache option Atomic.t;
      (* populated lazily by Distcache; topologies are immutable after
         [make] / [degrade], so derived distance/route structures stay
         valid.  Atomic so one domain's installation is published to
         every other domain sharing the value (the batch service hands
         one topology to a whole pool). *)
}

let positive what n = if n <= 0 then invalid_arg (Printf.sprintf "Topology: %s must be positive" what)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) xs)))
      xs

let de_bruijn_graph k =
  positive "de Bruijn order" k;
  let n = 1 lsl k in
  let g = Ugraph.create n in
  for u = 0 to n - 1 do
    List.iter
      (fun b ->
        let v = ((2 * u) + b) mod n in
        if u <> v && not (Ugraph.mem_edge g u v) then Ugraph.add_edge g u v)
      [ 0; 1 ]
  done;
  g

let shuffle_exchange_graph k =
  positive "shuffle-exchange order" k;
  let n = 1 lsl k in
  let g = Ugraph.create n in
  let rotl u = ((u lsl 1) lor (u lsr (k - 1))) land (n - 1) in
  for u = 0 to n - 1 do
    let x = u lxor 1 in
    if u < x && not (Ugraph.mem_edge g u x) then Ugraph.add_edge g u x;
    let s = rotl u in
    if u <> s && not (Ugraph.mem_edge g u s) then Ugraph.add_edge g u s
  done;
  g

let build_graph kind =
  match kind with
  | Line n ->
    positive "line size" n;
    let g = Ugraph.create n in
    for i = 0 to n - 2 do
      Ugraph.add_edge g i (i + 1)
    done;
    g
  | Ring n ->
    positive "ring size" n;
    let g = Ugraph.create n in
    for i = 0 to n - 2 do
      Ugraph.add_edge g i (i + 1)
    done;
    if n > 2 then Ugraph.add_edge g (n - 1) 0;
    g
  | Mesh (r, c) ->
    positive "mesh rows" r;
    positive "mesh cols" c;
    let g = Ugraph.create (r * c) in
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        let u = (i * c) + j in
        if j + 1 < c then Ugraph.add_edge g u (u + 1);
        if i + 1 < r then Ugraph.add_edge g u (u + c)
      done
    done;
    g
  | Torus (r, c) ->
    positive "torus rows" r;
    positive "torus cols" c;
    let g = Ugraph.create (r * c) in
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        let u = (i * c) + j in
        if j + 1 < c then Ugraph.add_edge g u (u + 1);
        if i + 1 < r then Ugraph.add_edge g u (u + c)
      done
    done;
    if c > 2 then for i = 0 to r - 1 do Ugraph.add_edge g (i * c) ((i * c) + c - 1) done;
    if r > 2 then for j = 0 to c - 1 do Ugraph.add_edge g j (((r - 1) * c) + j) done;
    g
  | Hypercube d ->
    if d < 0 then invalid_arg "Topology: hypercube dimension must be >= 0";
    let n = 1 lsl d in
    let g = Ugraph.create n in
    for u = 0 to n - 1 do
      for b = 0 to d - 1 do
        let v = u lxor (1 lsl b) in
        if u < v then Ugraph.add_edge g u v
      done
    done;
    g
  | Complete n ->
    positive "complete size" n;
    Ugraph.complete n
  | Binary_tree d ->
    if d < 0 then invalid_arg "Topology: tree depth must be >= 0";
    let n = (1 lsl (d + 1)) - 1 in
    let g = Ugraph.create n in
    for u = 0 to n - 1 do
      let l = (2 * u) + 1 and r = (2 * u) + 2 in
      if l < n then Ugraph.add_edge g u l;
      if r < n then Ugraph.add_edge g u r
    done;
    g
  | Binomial_tree k ->
    if k < 0 then invalid_arg "Topology: binomial order must be >= 0";
    let n = 1 lsl k in
    let g = Ugraph.create n in
    for u = 1 to n - 1 do
      let parent = u land (u - 1) in
      Ugraph.add_edge g parent u
    done;
    g
  | Butterfly k ->
    positive "butterfly stages" k;
    let rows = 1 lsl k in
    let n = (k + 1) * rows in
    let id l r = (l * rows) + r in
    let g = Ugraph.create n in
    for l = 0 to k - 1 do
      for r = 0 to rows - 1 do
        Ugraph.add_edge g (id l r) (id (l + 1) r);
        Ugraph.add_edge g (id l r) (id (l + 1) (r lxor (1 lsl l)))
      done
    done;
    g
  | Cube_connected_cycles d ->
    if d < 3 then invalid_arg "Topology: CCC dimension must be >= 3";
    let n = d * (1 lsl d) in
    let id x i = (x * d) + i in
    let g = Ugraph.create n in
    for x = 0 to (1 lsl d) - 1 do
      for i = 0 to d - 1 do
        let j = (i + 1) mod d in
        if i < j || j = 0 then Ugraph.add_edge g (id x (min i j)) (id x (max i j));
        let y = x lxor (1 lsl i) in
        if x < y then Ugraph.add_edge g (id x i) (id y i)
      done
    done;
    g
  | Hex_mesh (r, c) ->
    positive "hex rows" r;
    positive "hex cols" c;
    let g = Ugraph.create (r * c) in
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        let u = (i * c) + j in
        if j + 1 < c then Ugraph.add_edge g u (u + 1);
        if i + 1 < r then Ugraph.add_edge g u (u + c);
        if i + 1 < r && j > 0 then Ugraph.add_edge g u (u + c - 1)
      done
    done;
    g
  | De_bruijn k -> de_bruijn_graph k
  | Shuffle_exchange k -> shuffle_exchange_graph k
  | Star_graph n ->
    if n < 2 || n > 7 then invalid_arg "Topology: star graph order must be in [2,7]";
    let perms = permutations (List.init n (fun i -> i)) in
    let tbl = Hashtbl.create 64 in
    List.iteri (fun idx p -> Hashtbl.add tbl p idx) perms;
    let count = List.length perms in
    let g = Ugraph.create count in
    List.iteri
      (fun idx p ->
        let arr = Array.of_list p in
        for i = 1 to n - 1 do
          let arr' = Array.copy arr in
          let t = arr'.(0) in
          arr'.(0) <- arr'.(i);
          arr'.(i) <- t;
          let idx' = Hashtbl.find tbl (Array.to_list arr') in
          if idx < idx' then Ugraph.add_edge g idx idx'
        done)
      perms;
    g

let of_graph ?classes kind graph dead cut_links =
  let links = Array.of_list (List.map (fun (u, v, _) -> (u, v)) (Ugraph.edges graph)) in
  let link_ids = Hashtbl.create (max 16 (Array.length links)) in
  Array.iteri (fun i uv -> Hashtbl.add link_ids uv i) links;
  let classes =
    match classes with
    | Some c -> c
    | None -> Array.make (Ugraph.node_count graph) default_class
  in
  { kind; graph; links; link_ids; classes; dead; cut_links; cache = Atomic.make None }

let make kind =
  let graph = build_graph kind in
  of_graph kind graph (Array.make (Ugraph.node_count graph) false) 0

let get_cache t = Atomic.get t.cache

let set_cache t c = Atomic.set t.cache (Some c)

let kind t = t.kind

let is_degraded t = Array.exists Fun.id t.dead || t.cut_links > 0

let alive t u = u >= 0 && u < Array.length t.dead && not t.dead.(u)

let dead_procs t =
  let out = ref [] in
  for u = Array.length t.dead - 1 downto 0 do
    if t.dead.(u) then out := u :: !out
  done;
  !out

let alive_count t =
  let n = ref 0 in
  Array.iter (fun d -> if not d then incr n) t.dead;
  !n

let alive_procs t =
  let out = ref [] in
  for u = Array.length t.dead - 1 downto 0 do
    if not t.dead.(u) then out := u :: !out
  done;
  !out

let node_class t u =
  if u < 0 || u >= Array.length t.classes then invalid_arg "Topology.node_class";
  t.classes.(u)

let node_classes t = Array.copy t.classes

let is_classed t = Array.exists (fun c -> c <> default_class) t.classes

let class_names t = List.sort_uniq compare (Array.to_list t.classes)

let with_classes t classes =
  if Array.length classes <> Ugraph.node_count t.graph then
    invalid_arg "Topology.with_classes: one class per processor required";
  (* the cache slot holds graph-derived structures only (distances,
     routes), so the re-classed view may share it *)
  { t with classes = Array.copy classes }

let base_name t =
  match t.kind with
  | Line n -> Printf.sprintf "line(%d)" n
  | Ring n -> Printf.sprintf "ring(%d)" n
  | Mesh (r, c) -> Printf.sprintf "mesh(%dx%d)" r c
  | Torus (r, c) -> Printf.sprintf "torus(%dx%d)" r c
  | Hypercube d -> Printf.sprintf "hypercube(%d)" d
  | Complete n -> Printf.sprintf "complete(%d)" n
  | Binary_tree d -> Printf.sprintf "bintree(%d)" d
  | Binomial_tree k -> Printf.sprintf "binomial(%d)" k
  | Butterfly k -> Printf.sprintf "butterfly(%d)" k
  | Cube_connected_cycles d -> Printf.sprintf "ccc(%d)" d
  | Hex_mesh (r, c) -> Printf.sprintf "hex(%dx%d)" r c
  | Star_graph n -> Printf.sprintf "star(%d)" n
  | De_bruijn k -> Printf.sprintf "debruijn(%d)" k
  | Shuffle_exchange k -> Printf.sprintf "shuffle(%d)" k

let name t =
  if not (is_degraded t) then base_name t
  else
    Printf.sprintf "%s[-%dp,-%dl]" (base_name t)
      (List.length (dead_procs t))
      t.cut_links

let graph t = t.graph

let node_count t = Ugraph.node_count t.graph

let link_count t = Array.length t.links

let link_endpoints t i =
  if i < 0 || i >= Array.length t.links then invalid_arg "Topology.link_endpoints";
  t.links.(i)

let link_between t u v =
  let key = if u < v then (u, v) else (v, u) in
  Hashtbl.find_opt t.link_ids key

let links_of_path t path =
  let rec go = function
    | [] | [ _ ] -> []
    | u :: (v :: _ as rest) ->
      (match link_between t u v with
      | Some l -> l :: go rest
      | None -> invalid_arg (Printf.sprintf "Topology.links_of_path: %d and %d not adjacent" u v))
  in
  go path

let degree t u = Ugraph.degree t.graph u

let diameter t = Traverse.diameter t.graph

let degrade t ~dead_procs:dp ~dead_links:dl =
  let n = Ugraph.node_count t.graph in
  let nl = Array.length t.links in
  match
    ( List.find_opt (fun p -> p < 0 || p >= n) dp,
      List.find_opt (fun l -> l < 0 || l >= nl) dl )
  with
  | Some p, _ ->
    Error
      (Printf.sprintf "dead processor %d out of range (%s has %d processors)" p (name t) n)
  | None, Some l ->
    Error (Printf.sprintf "dead link %d out of range (%s has %d links)" l (name t) nl)
  | None, None ->
    if dp = [] && dl = [] then Ok t
    else begin
      let dead = Array.copy t.dead in
      List.iter (fun p -> dead.(p) <- true) dp;
      if Array.for_all Fun.id dead then
        Error (Printf.sprintf "faults kill every processor of %s" (name t))
      else begin
        let dead_link = Array.make nl false in
        List.iter (fun l -> dead_link.(l) <- true) dl;
        (* count links cut beyond those lost to a dead endpoint, so the
           degraded name reflects explicit link faults only *)
        let cut = ref t.cut_links in
        Array.iteri
          (fun i (u, v) -> if dead_link.(i) && not (dead.(u) || dead.(v)) then incr cut)
          t.links;
        let g = Ugraph.create n in
        List.iteri
          (fun i (u, v, w) ->
            if not (dead_link.(i) || dead.(u) || dead.(v)) then Ugraph.add_edge ~w g u v)
          (Ugraph.edges t.graph);
        Ok (of_graph ~classes:t.classes t.kind g dead !cut)
      end
    end

let split_bits d v =
  (* interleave: even-indexed bits -> x, odd-indexed -> y *)
  let x = ref 0 and y = ref 0 and xb = ref 0 and yb = ref 0 in
  for b = 0 to d - 1 do
    if v land (1 lsl b) <> 0 then
      if b mod 2 = 0 then x := !x lor (1 lsl !xb) else y := !y lor (1 lsl !yb);
    if b mod 2 = 0 then incr xb else incr yb
  done;
  (!x, !y)

let layout t =
  let n = node_count t in
  let circle () =
    Array.init n (fun i ->
        let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int (max 1 n) in
        (cos a, sin a))
  in
  match t.kind with
  | Line _ -> Array.init n (fun i -> (float_of_int i, 0.0))
  | Ring _ | Complete _ | Star_graph _ | De_bruijn _ | Shuffle_exchange _ -> circle ()
  | Mesh (_, c) | Torus (_, c) -> Array.init n (fun u -> (float_of_int (u mod c), float_of_int (u / c)))
  | Hex_mesh (_, c) ->
    Array.init n (fun u ->
        let i = u / c and j = u mod c in
        (float_of_int j +. (0.5 *. float_of_int i), float_of_int i))
  | Hypercube d ->
    Array.init n (fun u ->
        let x, y = split_bits d u in
        (float_of_int x, float_of_int y))
  | Binary_tree _ | Binomial_tree _ ->
    let dist = Traverse.bfs_dist t.graph 0 in
    let counters = Hashtbl.create 8 in
    Array.init n (fun u ->
        let d = dist.(u) in
        let k = Option.value ~default:0 (Hashtbl.find_opt counters d) in
        Hashtbl.replace counters d (k + 1);
        (float_of_int k, float_of_int d))
  | Butterfly k ->
    let rows = 1 lsl k in
    Array.init n (fun u -> (float_of_int (u mod rows), float_of_int (u / rows)))
  | Cube_connected_cycles d ->
    Array.init n (fun u ->
        let x = u / d and i = u mod d in
        let cx, cy = split_bits d x in
        let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int d in
        ((3.0 *. float_of_int cx) +. (0.5 *. cos a), (3.0 *. float_of_int cy) +. (0.5 *. sin a)))

let hypercube_coords t u =
  match t.kind with
  | Hypercube _ -> u
  | Line _ | Ring _ | Mesh _ | Torus _ | Complete _ | Binary_tree _ | Binomial_tree _
  | Butterfly _ | Cube_connected_cycles _ | Hex_mesh _ | Star_graph _ | De_bruijn _
  | Shuffle_exchange _ ->
    invalid_arg "Topology.hypercube_coords: not a hypercube"

let mesh_coords t u =
  match t.kind with
  | Mesh (_, c) | Torus (_, c) | Hex_mesh (_, c) -> (u / c, u mod c)
  | Line _ | Ring _ | Hypercube _ | Complete _ | Binary_tree _ | Binomial_tree _
  | Butterfly _ | Cube_connected_cycles _ | Star_graph _ | De_bruijn _
  | Shuffle_exchange _ ->
    invalid_arg "Topology.mesh_coords: not a mesh-like topology"

let mesh_node t (i, j) =
  match t.kind with
  | Mesh (_, c) | Torus (_, c) | Hex_mesh (_, c) -> (i * c) + j
  | Line _ | Ring _ | Hypercube _ | Complete _ | Binary_tree _ | Binomial_tree _
  | Butterfly _ | Cube_connected_cycles _ | Star_graph _ | De_bruijn _
  | Shuffle_exchange _ ->
    invalid_arg "Topology.mesh_node: not a mesh-like topology"

let known_kinds =
  [ "line:N"; "ring:N"; "mesh:RxC"; "torus:RxC"; "hypercube:D"; "complete:N";
    "bintree:D"; "binomial:K"; "butterfly:K"; "ccc:D"; "hex:RxC"; "star:N";
    "debruijn:K"; "shuffle:K" ]

let parse s =
  match String.split_on_char ':' s with
  | [ family; arg ] -> begin
    let int () =
      match int_of_string_opt arg with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "bad integer argument %S" arg)
    in
    let dims () =
      match String.split_on_char 'x' arg with
      | [ a; b ] -> begin
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some r, Some c -> Ok (r, c)
        | _, _ -> Error (Printf.sprintf "bad dimensions %S (want RxC)" arg)
      end
      | _ -> Error (Printf.sprintf "bad dimensions %S (want RxC)" arg)
    in
    match family with
    | "line" -> Result.map (fun n -> Line n) (int ())
    | "ring" -> Result.map (fun n -> Ring n) (int ())
    | "mesh" -> Result.map (fun (r, c) -> Mesh (r, c)) (dims ())
    | "torus" -> Result.map (fun (r, c) -> Torus (r, c)) (dims ())
    | "hypercube" | "cube" -> Result.map (fun d -> Hypercube d) (int ())
    | "complete" -> Result.map (fun n -> Complete n) (int ())
    | "bintree" -> Result.map (fun d -> Binary_tree d) (int ())
    | "binomial" -> Result.map (fun k -> Binomial_tree k) (int ())
    | "butterfly" -> Result.map (fun k -> Butterfly k) (int ())
    | "ccc" -> Result.map (fun d -> Cube_connected_cycles d) (int ())
    | "hex" -> Result.map (fun (r, c) -> Hex_mesh (r, c)) (dims ())
    | "star" -> Result.map (fun n -> Star_graph n) (int ())
    | "debruijn" -> Result.map (fun k -> De_bruijn k) (int ())
    | "shuffle" -> Result.map (fun k -> Shuffle_exchange k) (int ())
    | other -> Error (Printf.sprintf "unknown topology family %S" other)
  end
  | _ -> Error (Printf.sprintf "bad topology %S (want family:args)" s)

let class_name_ok s =
  String.length s > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s

let parse_class_spec ~n spec =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let classes = Array.make n default_class in
  let rec groups = function
    | [] -> Ok classes
    | g :: rest -> begin
      match String.index_opt g '@' with
      | None -> err "bad class group %S (want CLASS@IDS, e.g. mem@0,4-7)" g
      | Some i ->
        let cls = String.sub g 0 i in
        let ids = String.sub g (i + 1) (String.length g - i - 1) in
        if not (class_name_ok cls) then
          err "bad class name %S (want letters, digits, '_' or '-')" cls
        else begin
          let rec assign = function
            | [] -> groups rest
            | p :: ps -> begin
              let bounds =
                match String.index_opt p '-' with
                | Some j when j > 0 ->
                  ( int_of_string_opt (String.sub p 0 j),
                    int_of_string_opt (String.sub p (j + 1) (String.length p - j - 1)) )
                | Some _ | None ->
                  let v = int_of_string_opt p in
                  (v, v)
              in
              match bounds with
              | Some lo, Some hi when lo > hi ->
                err "empty processor range %S in class %s" p cls
              | Some lo, Some hi when lo < 0 || hi >= n ->
                err "processor ids %S of class %s out of range (topology has %d processors)"
                  p cls n
              | Some lo, Some hi ->
                for u = lo to hi do
                  classes.(u) <- cls
                done;
                assign ps
              | _, _ -> err "bad processor ids %S in class %s (want ID or LO-HI)" p cls
            end
          in
          assign (String.split_on_char ',' ids)
        end
    end
  in
  groups (String.split_on_char '/' spec)

let classes_prefix = "classes="

let of_string s =
  let segs = String.split_on_char ':' s in
  let base_segs, class_spec =
    match List.rev segs with
    | last :: rest
      when String.length last >= String.length classes_prefix
           && String.sub last 0 (String.length classes_prefix) = classes_prefix ->
      ( List.rev rest,
        Some
          (String.sub last (String.length classes_prefix)
             (String.length last - String.length classes_prefix)) )
    | _ -> (segs, None)
  in
  match parse (String.concat ":" base_segs) with
  | Error e -> Error e
  | Ok kind -> begin
    let t = make kind in
    match class_spec with
    | None -> Ok t
    | Some spec ->
      Result.map (with_classes t) (parse_class_spec ~n:(node_count t) spec)
  end

let pp fmt t =
  Format.fprintf fmt "%s: %d processors, %d links, degree %d, diameter %d" (name t)
    (node_count t) (link_count t) (Ugraph.max_degree t.graph) (diameter t);
  if is_classed t then begin
    let counts = Hashtbl.create 8 in
    Array.iter
      (fun c ->
        Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
      t.classes;
    Format.fprintf fmt ", classes";
    List.iter
      (fun c -> Format.fprintf fmt " %s:%d" c (Hashtbl.find counts c))
      (class_names t)
  end
