module Csr = Oregami_graph.Csr

type t = {
  n : int;
  csr : Csr.t;
  mutable matrix : int array; (* flat n*n hop matrix; [||] until built *)
  mutable builds : int; (* how many times the matrix was computed *)
  route_memo : (int, int * Routes.route list) Hashtbl.t;
      (* key u*n+v -> (cap the list was computed under, routes) *)
}

type Topology.cache += Cache of t

let parallel_threshold = ref 256

let state topo =
  match Topology.get_cache topo with
  | Some (Cache c) -> c
  | Some _ | None ->
    let c =
      {
        n = Topology.node_count topo;
        csr = Csr.of_ugraph (Topology.graph topo);
        matrix = [||];
        builds = 0;
        route_memo = Hashtbl.create 64;
      }
    in
    Topology.set_cache topo (Cache c);
    c

let csr topo = (state topo).csr

let size c = c.n

let hops topo =
  let c = state topo in
  if Array.length c.matrix = 0 && c.n > 0 then begin
    c.builds <- c.builds + 1;
    c.matrix <- Csr.all_pairs_hops ~parallel:(c.n >= !parallel_threshold) c.csr
  end;
  c

let hop c u v = c.matrix.((u * c.n) + v)

let hop_matrix topo = (hops topo).matrix

let hop_builds topo =
  match Topology.get_cache topo with Some (Cache c) -> c.builds | Some _ | None -> 0

(* Shortest-route enumeration against the cached hop matrix: walk from
   [u] towards [v] along edges that decrease the (symmetric) hop
   distance to [v].  Mirrors Shortest.all_shortest_paths — same
   lexicographic order, same cap semantics — but spends no BFS per
   query. *)
let enumerate c topo ~cap u v =
  if hop c u v = Csr.unreachable then []
  else begin
    let dist_to_v node = hop c node v in
    let out = ref [] and count = ref 0 in
    let rec go node acc =
      if !count < cap then
        if node = v then begin
          out := List.rev (v :: acc) :: !out;
          incr count
        end
        else begin
          let below = dist_to_v node - 1 in
          let nexts = ref [] in
          Csr.neighbors_iter c.csr node (fun w _ ->
              if dist_to_v w = below then nexts := w :: !nexts);
          List.iter (fun w -> go w (node :: acc)) (List.sort_uniq compare !nexts)
        end
    in
    go u [];
    (* [!out] holds node paths latest-first; rev_map restores discovery
       (lexicographic) order while building routes *)
    List.rev_map (Routes.of_nodes topo) !out
  end

let rec take k l =
  match l with [] -> [] | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl

let routes ?(cap = 64) topo u v =
  if u = v then [ { Routes.nodes = [ u ]; links = [] } ]
  else begin
    let c = hops topo in
    let key = (u * c.n) + v in
    let fresh () =
      let rs = enumerate c topo ~cap u v in
      Hashtbl.replace c.route_memo key (cap, rs);
      rs
    in
    match Hashtbl.find_opt c.route_memo key with
    | Some (cap_used, rs) when cap <= cap_used ->
      (* enumeration order is deterministic, so a smaller cap is a
         prefix of a larger one *)
      if cap < cap_used then take cap rs else rs
    | Some (cap_used, rs) when List.length rs < cap_used ->
      (* the stored list was not truncated: it is the complete set *)
      rs
    | Some _ | None -> fresh ()
  end
