module Csr = Oregami_graph.Csr

(* Per-topology shared state.  One value is installed on the
   topology's cache slot and then shared by every domain mapping onto
   that topology, so every mutation follows a publish-once or
   mutex-guarded discipline:

   - [matrix] is built at most once, under [lock], and published
     through an [Atomic.t] (plain mutable fields carry no
     happens-before edge in the OCaml 5 memory model, so a reader on
     another domain could otherwise see the pointer without the
     initialised rows behind it);
   - [route_memo] is only ever touched while holding [lock];
   - [builds] is an atomic counter so tests can assert "built exactly
     once" even under a racing pool. *)
type state = {
  n : int;
  csr : Csr.t;
  matrix : int array Atomic.t; (* flat n*n hop matrix; [||] until built *)
  builds : int Atomic.t; (* how many times the matrix was computed *)
  lock : Mutex.t;
  route_memo : (int, int * Routes.route list) Hashtbl.t;
      (* key u*n+v -> (cap the list was computed under, routes) *)
}

(* Handle with the matrix guaranteed built: [hop] stays a plain O(1)
   array read with no per-query synchronisation. *)
type t = { n : int; mat : int array; st : state }

type Topology.cache += Cache of state

let parallel_threshold = ref 256

(* Guards installation into the topology's cache slot, so two domains
   racing on a cold topology agree on one shared state value. *)
let slot_lock = Mutex.create ()

let fresh_state topo =
  {
    n = Topology.node_count topo;
    csr = Csr.of_ugraph (Topology.graph topo);
    matrix = Atomic.make [||];
    builds = Atomic.make 0;
    lock = Mutex.create ();
    route_memo = Hashtbl.create 64;
  }

let state topo =
  match Topology.get_cache topo with
  | Some (Cache c) -> c
  | Some _ | None ->
    Mutex.protect slot_lock (fun () ->
        (* double-check: another domain may have installed while we
           waited on the lock *)
        match Topology.get_cache topo with
        | Some (Cache c) -> c
        | Some _ | None ->
          let c = fresh_state topo in
          Topology.set_cache topo (Cache c);
          c)

let csr topo = (state topo).csr

let size c = c.n

let hops topo =
  let st = state topo in
  let mat =
    let m = Atomic.get st.matrix in
    if Array.length m > 0 || st.n = 0 then m
    else
      Mutex.protect st.lock (fun () ->
          let m = Atomic.get st.matrix in
          if Array.length m > 0 then m
          else begin
            Atomic.incr st.builds;
            let m =
              Csr.all_pairs_hops ~parallel:(st.n >= !parallel_threshold) st.csr
            in
            Atomic.set st.matrix m;
            m
          end)
  in
  { n = st.n; mat; st }

let hop c u v = c.mat.((u * c.n) + v)

let hop_matrix topo = (hops topo).mat

let hop_builds topo =
  match Topology.get_cache topo with
  | Some (Cache st) -> Atomic.get st.builds
  | Some _ | None -> 0

(* Shortest-route enumeration against the cached hop matrix: walk from
   [u] towards [v] along edges that decrease the (symmetric) hop
   distance to [v].  Mirrors Shortest.all_shortest_paths — same
   lexicographic order, same cap semantics — but spends no BFS per
   query. *)
let enumerate c topo ~cap u v =
  if hop c u v = Csr.unreachable then []
  else begin
    let dist_to_v node = hop c node v in
    let out = ref [] and count = ref 0 in
    let rec go node acc =
      if !count < cap then
        if node = v then begin
          out := List.rev (v :: acc) :: !out;
          incr count
        end
        else begin
          let below = dist_to_v node - 1 in
          let nexts = ref [] in
          Csr.neighbors_iter c.st.csr node (fun w _ ->
              if dist_to_v w = below then nexts := w :: !nexts);
          List.iter (fun w -> go w (node :: acc)) (List.sort_uniq compare !nexts)
        end
    in
    go u [];
    (* [!out] holds node paths latest-first; rev_map restores discovery
       (lexicographic) order while building routes *)
    List.rev_map (Routes.of_nodes topo) !out
  end

let rec take k l =
  match l with [] -> [] | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl

let routes ?(cap = 64) topo u v =
  if u = v then [ { Routes.nodes = [ u ]; links = [] } ]
  else begin
    let c = hops topo in
    let key = (u * c.n) + v in
    (* memo lookups and inserts share the state lock; the enumeration
       itself runs under it too, which serialises route queries for one
       (u, v) pair across domains but keeps the table coherent *)
    Mutex.protect c.st.lock (fun () ->
        match Hashtbl.find_opt c.st.route_memo key with
        | Some (cap_used, rs) when cap <= cap_used ->
          (* enumeration order is deterministic, so a smaller cap is a
             prefix of a larger one *)
          if cap < cap_used then take cap rs else rs
        | Some (cap_used, rs) when List.length rs < cap_used ->
          (* the stored list was not truncated: it is the complete set *)
          rs
        | Some _ | None ->
          let rs = enumerate c topo ~cap u v in
          Hashtbl.replace c.st.route_memo key (cap, rs);
          rs)
  end

let routes_sampled ?(cap = 64) ~want topo u v =
  (* the full (capped) enumeration lands in the memo exactly as a
     plain [routes] query would, so mixed full/sampled callers share
     one cache entry per pair; only the stride sample is per-call *)
  Routes.sample_evenly ~want (routes ~cap topo u v)
