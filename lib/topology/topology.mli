(** Interconnection-network topologies.

    A topology is a named regular undirected graph of homogeneous
    processors plus an indexed table of its links, matching the paper's
    model (OREGAMI assumes "homogeneous processors connected by some
    regular network topology": iPSC/2, NCUBE, Transputer-style meshes,
    hypercubes, rings, trees, ...).

    Links are numbered [0 .. link_count-1] in lexicographic order of
    their endpoint pairs; routing (Algorithm MM-Route) and the METRICS
    contention reports are expressed in terms of link ids. *)

type kind =
  | Line of int  (** linear array of [n] processors *)
  | Ring of int
  | Mesh of int * int  (** rows × cols, no wraparound *)
  | Torus of int * int
  | Hypercube of int  (** dimension [d], [2^d] processors *)
  | Complete of int
  | Binary_tree of int  (** full binary tree of depth [d], [2^(d+1)-1] nodes *)
  | Binomial_tree of int  (** order [k], [2^k] nodes *)
  | Butterfly of int  (** [k]-stage butterfly, [(k+1)·2^k] nodes *)
  | Cube_connected_cycles of int  (** CCC of dimension [d ≥ 3], [d·2^d] nodes *)
  | Hex_mesh of int * int  (** hexagonal (6-neighbour) bounded grid *)
  | Star_graph of int  (** Akers–Krishnamurthy star graph [S_n], [n!] nodes *)
  | De_bruijn of int  (** binary de Bruijn graph, [2^k] nodes *)
  | Shuffle_exchange of int  (** binary shuffle-exchange, [2^k] nodes *)

type t

val make : kind -> t

val kind : t -> kind
(** The kind the topology was built from.  A {!degrade}d topology keeps
    its base kind for reporting and geometry ({!layout}, {!mesh_coords})
    but no longer satisfies the kind's symmetry: consult
    {!is_degraded} before using kind-specific routing. *)

val name : t -> string
(** Short printable name, e.g. ["hypercube(3)"]; degraded views carry a
    fault suffix, e.g. ["hypercube(3)[-1p,-2l]"]. *)

val graph : t -> Oregami_graph.Ugraph.t

val node_count : t -> int

val link_count : t -> int

val link_endpoints : t -> int -> int * int
(** Endpoints [(u, v)] with [u < v] of a link id. *)

val link_between : t -> int -> int -> int option
(** Link id joining two processors, if adjacent (order-insensitive). *)

val links_of_path : t -> int list -> int list
(** Converts a node path to the list of traversed link ids.  Raises
    [Invalid_argument] if consecutive nodes are not adjacent. *)

val degree : t -> int -> int

val diameter : t -> int

(** {2 Degraded views}

    Real machines lose processors and links in the field.  A degraded
    view keeps the processor numbering of its base (dead processors
    become isolated nodes, so mappings and routes stay expressed in the
    same ids) but removes every link that is explicitly dead or incident
    to a dead processor.  Link ids are renumbered over the surviving
    links in the usual lexicographic endpoint order, and the view starts
    with an empty {!cache} slot, so {!Distcache} structures are rebuilt
    against the degraded graph instead of leaking pristine distances.
    Higher-level fault bookkeeping (random fault sets, partition
    reporting, link-id translation) lives in {!Faults}. *)

val degrade : t -> dead_procs:int list -> dead_links:int list -> (t, string) result
(** [degrade t ~dead_procs ~dead_links] is the degraded view of [t]
    ([dead_links] are link ids of [t]; faults compose, so [t] may itself
    be degraded).  Errors on out-of-range ids and when every processor
    would be dead.  Does {e not} check connectivity — use
    {!Faults.degrade} to get partition reporting.  Returns [t] itself
    when both fault lists are empty. *)

val is_degraded : t -> bool

val alive : t -> int -> bool
(** Whether a processor id is in range and not dead. *)

val dead_procs : t -> int list
(** Dead processor ids, increasing (empty for pristine topologies). *)

val alive_procs : t -> int list

val alive_count : t -> int

val layout : t -> (float * float) array
(** 2-D positions for rendering: meshes/tori on a grid, rings on a
    circle, hypercubes on a Gray-coded grid, trees layered, others on a
    circle. *)

val hypercube_coords : t -> int -> int
(** For a hypercube, the node id itself (its corner bit string); raises
    [Invalid_argument] on other kinds. *)

val mesh_coords : t -> int -> int * int
(** For meshes/tori/hex meshes, the (row, col) of a node. *)

val mesh_node : t -> int * int -> int
(** Inverse of {!mesh_coords}. *)

val parse : string -> (kind, string) result
(** Parses CLI notation: ["ring:8"], ["mesh:4x4"], ["torus:4x8"],
    ["hypercube:3"], ["line:5"], ["complete:6"], ["bintree:3"],
    ["binomial:4"], ["butterfly:3"], ["ccc:3"], ["hex:3x4"],
    ["star:4"], ["debruijn:4"], ["shuffle:4"]. *)

val of_string : string -> (t, string) result
(** Parses a full topology spec, i.e. {!parse} notation optionally
    followed by a capability-class suffix:
    ["torus:4x4:classes=mem@0,3/io@12-15"].  The suffix lists
    [CLASS@IDS] groups separated by ['/'], where [IDS] is a
    comma-separated list of processor ids and [LO-HI] ranges; unlisted
    processors keep {!default_class}.  Later groups override earlier
    ones on overlap. *)

val known_kinds : string list
(** Names accepted by {!parse}, for help messages. *)

(** {2 Capability classes}

    Heterogeneous machines tag each processor with a capability class
    (e.g. ["compute"], ["mem"], ["io"], or user-defined names).  Tasks
    may require a class and mapping constraints may skip whole classes;
    see [Oregami_mapper.Constraints].  Classes are orthogonal to the
    link structure: they survive {!degrade} unchanged. *)

val default_class : string
(** ["compute"] — the class of every processor of an unclassed
    topology. *)

val node_class : t -> int -> string

val node_classes : t -> string array
(** A copy of the per-processor class array, indexed by processor id. *)

val class_names : t -> string list
(** Distinct class names in use, sorted. *)

val is_classed : t -> bool
(** Whether any processor has a class other than {!default_class}. *)

val with_classes : t -> string array -> t
(** A view of the topology with the given per-processor classes (one
    per processor; raises [Invalid_argument] otherwise).  The graph,
    numbering and cache are shared. *)

val pp : Format.formatter -> t -> unit

(** {2 Cache slot}

    A topology's graph is immutable after {!make}, so derived
    structures (hop matrices, route tables) can live on the value and
    be computed at most once.  The slot is an extensible variant so
    {!Distcache} can attach its state without this module depending on
    it; other code should use the {!Distcache} API rather than these
    raw accessors.

    The slot itself is an [Atomic.t], so an installation by one domain
    is safely published to every other domain sharing the topology
    value; mutual exclusion of {e who} installs (and of any mutation
    inside the attached state) is the attacher's job — {!Distcache}
    guards both with its own locks. *)

type cache = ..

val get_cache : t -> cache option

val set_cache : t -> cache -> unit
