module Taskgraph = Oregami_taskgraph.Taskgraph
module Coarsen = Oregami_taskgraph.Coarsen
module Topology = Oregami_topology.Topology
module Distcache = Oregami_topology.Distcache
module Ugraph = Oregami_graph.Ugraph
module Csr = Oregami_graph.Csr
module Rng = Oregami_prelude.Rng

let flat_sweet_spot = 2048

(* coarsest-placement effort thresholds.  NN-Embed costs about
   (k + p) * 2m operations on a k-cluster m-edge coarse graph over p
   processors, the pairwise Refine polish about p * 2m per round: on a
   sparse coarsest graph (grids) both are affordable at k = p = 1024,
   but a dense one (power-law R-MAT contracts towards a near-complete
   graph) blows the same k and p up by three orders of magnitude.
   Above the limits the identity embedding (which preserves the
   smallest-member numbering locality of the coarse ids) stands in;
   the projected per-level refinement below runs regardless. *)
let embed_limit = 4_000_000
let embed_op_limit = 200_000_000
let refine_pair_limit = 2_000_000
let refine_op_limit = 50_000_000
let refine_passes = 3

(* candidate processors evaluated per node move; the exact gain still
   sums over every neighbour, this only bounds the scan on hub nodes *)
let max_candidates = 24

type t = {
  ml_cluster_of : int array;
  ml_proc_of_cluster : int array;
  ml_levels : int;
}

let available ctx =
  let n = ctx.Ctx.tg.Taskgraph.n in
  let threshold = ctx.Ctx.options.Ctx.multilevel_threshold in
  if Ctx.constrained ctx then
    (* the projected per-level refinement moves tasks freely between
       processors; declining by name keeps the constraint contract *)
    Error "constraints present: multilevel refinement is constraint-unaware"
  else if n > threshold then Ok ()
  else if List.mem "multilevel" ctx.Ctx.options.Ctx.only then Ok ()
  else
    Error
      (Printf.sprintf
         "graph fits the flat strategies (%d <= %d tasks); force with --only multilevel"
         n threshold)

(* disconnected processor pairs must never look attractive *)
let hop dist u v =
  let h = Distcache.hop dist u v in
  if h >= Csr.unreachable then 1_000_000 else h

(* one level of delta-evaluated projected refinement: each node
   considers only the processors its neighbours occupy, gains are
   evaluated in O(degree) against the cached hop matrix, and a load
   cap keeps the balance the coarsening weight caps established *)
let refine_level ~dist ~budget ~p_alive ~nprocs ~attract (lv : Coarsen.level)
    assign moves gain =
  let n = lv.Coarsen.lv_n in
  let xadj = lv.Coarsen.lv_xadj
  and adj = lv.Coarsen.lv_adj
  and ew = lv.Coarsen.lv_ew
  and w = lv.Coarsen.lv_node_w in
  let load = Array.make nprocs 0 in
  let total_w = ref 0 in
  for v = 0 to n - 1 do
    load.(assign.(v)) <- load.(assign.(v)) + w.(v);
    total_w := !total_w + w.(v)
  done;
  let avg = (!total_w + p_alive - 1) / p_alive in
  (* balance cap: moves may not push a processor past ~110% of the
     average load.  A node heavier than the cap (common at the coarse
     levels, where nodes weigh about the average) gets a per-node
     allowance instead — it may only move to a processor empty enough
     to absorb it whole, so coarse moves never stack two near-average
     nodes and the coarsest placement's balance survives *)
  let cap = avg * 11 / 10 in
  let alive_budget = ref true in
  let pass = ref 0 in
  while !alive_budget && !pass < refine_passes do
    incr pass;
    let pass_moves = ref 0 in
    let v = ref 0 in
    while !alive_budget && !v < n do
      let u = !v in
      let d = xadj.(u + 1) - xadj.(u) in
      if d > 0 then begin
        if not (Budget.poll budget ~cost:(d + 1)) then begin
          Budget.note budget "multilevel-refine";
          alive_budget := false
        end
        else begin
          let touched = ref [] in
          for i = xadj.(u) to xadj.(u + 1) - 1 do
            let q = assign.(adj.(i)) in
            if attract.(q) = 0 then touched := q :: !touched;
            attract.(q) <- attract.(q) + ew.(i)
          done;
          let pu = assign.(u) in
          let cost_at p =
            List.fold_left (fun acc q -> acc + (attract.(q) * hop dist p q)) 0 !touched
          in
          let cur = cost_at pu in
          let candidates =
            let t = !touched in
            if List.length t <= max_candidates then t
            else begin
              let arr = Array.of_list t in
              (* most-attractive first; ties to the smaller proc id *)
              Array.sort
                (fun a b ->
                  match compare attract.(b) attract.(a) with
                  | 0 -> compare a b
                  | c -> c)
                arr;
              Array.to_list (Array.sub arr 0 max_candidates)
            end
          in
          (* a move may never empty its source processor: emptied
             processors are unreachable to later passes (candidates
             come from neighbours), so emptying trades balance away
             permanently for a one-off communication gain *)
          let movable = load.(pu) > w.(u) in
          (* an over-cap processor sheds its boundary nodes even at a
             communication regression — take the least-bad feasible
             move; comm-driven passes cannot drain it otherwise *)
          let overloaded = load.(pu) > cap in
          let best = ref pu
          and bestc = ref (if overloaded then max_int else cur)
          and bestl = ref load.(pu) in
          if movable then
            List.iter
              (fun q ->
                if q <> pu && load.(q) + w.(u) <= max cap w.(u) then begin
                  let c = cost_at q in
                  let l = load.(q) + w.(u) in
                  (* minimise (comm cost, destination load, proc id):
                     equal-cost moves still drain overloaded procs *)
                  if
                    c < !bestc
                    || (c = !bestc && (l < !bestl || (l = !bestl && q < !best)))
                  then begin
                    best := q;
                    bestc := c;
                    bestl := l
                  end
                end)
              candidates;
          if !best <> pu then begin
            load.(pu) <- load.(pu) - w.(u);
            load.(!best) <- load.(!best) + w.(u);
            assign.(u) <- !best;
            incr moves;
            incr pass_moves;
            gain := !gain + (cur - !bestc)
          end;
          List.iter (fun q -> attract.(q) <- 0) !touched
        end
      end;
      incr v
    done;
    if !pass_moves = 0 then pass := refine_passes
  done

let run ctx =
  let tg = ctx.Ctx.tg in
  let n = tg.Taskgraph.n in
  let topo = ctx.Ctx.topo in
  let dist = ctx.Ctx.dist in
  let alive = ctx.Ctx.alive in
  let p = Array.length alive in
  if p = 0 then Error "no alive processors"
  else begin
    let budget = ctx.Ctx.budget in
    let stats = ctx.Ctx.stats in
    (* node weight = total execution cost (minimum 1, so idle tasks
       still count against the balance caps) *)
    let node_w = Array.make n 0 in
    List.iter
      (fun (ep : Taskgraph.exec_phase) ->
        Array.iteri (fun t c -> node_w.(t) <- node_w.(t) + c) ep.Taskgraph.costs)
      tg.Taskgraph.exec_phases;
    Array.iteri (fun t wv -> if wv <= 0 then node_w.(t) <- 1) node_w;
    let finest = Coarsen.of_ugraph ~node_weight:node_w (Ctx.static ctx) in
    let rng = Rng.split ctx.Ctx.rng in
    let poll cost = Budget.poll budget ~cost in
    let hier = Coarsen.coarsen ~poll ~rng ~target:p finest in
    if hier.Coarsen.truncated then Budget.note budget "multilevel-coarsen";
    let levels = hier.Coarsen.levels in
    let nl = Array.length levels in
    Stats.bump stats "multilevel levels" nl;
    Array.iteri
      (fun i lv ->
        Stats.bump stats (Printf.sprintf "multilevel level %d nodes" i) lv.Coarsen.lv_n;
        Stats.add_matching_rounds stats lv.Coarsen.lv_rounds)
      levels;
    let coarsest = levels.(nl - 1) in
    let k = coarsest.Coarsen.lv_n in
    let nprocs = Topology.node_count topo in
    (* coarsest placement: the compete tier in miniature — NN-Embed
       (plus the pairwise Refine polish) when the scan is affordable,
       the locality-preserving identity embedding otherwise *)
    let proc_of_coarse =
      let identity () = Array.init k (fun i -> alive.(i)) in
      if k * p > embed_limit then identity ()
      else begin
        let cg = Coarsen.level_ugraph coarsest in
        let m = Ugraph.edge_count cg in
        if m = 0 || (k + p) * 2 * m > embed_op_limit then identity ()
        else begin
          let emb = Nn_embed.embed ~budget cg topo in
          if
            ctx.Ctx.options.Ctx.refine
            && k * p <= refine_pair_limit
            && p * 2 * m <= refine_op_limit
          then begin
            let swaps = ref 0 in
            (* a big coarsest graph gets a short polish: the projected
               per-level refinement recovers most of the remaining gain
               at a fraction of the pairwise sweep's cost *)
            let max_rounds = if k * p > refine_pair_limit / 4 then 2 else 10 in
            let r = Refine.improve_embedding ~max_rounds ~budget ~swaps cg topo emb in
            Stats.add_refine_swaps stats !swaps;
            r
          end
          else emb
        end
      end
    in
    Stats.bump stats "multilevel coarsest nodes" k;
    (* uncoarsen: project one level down, then refine in place *)
    let attract = Array.make nprocs 0 in
    let moves = ref 0 and gain = ref 0 in
    let assign = ref (Array.copy proc_of_coarse) in
    refine_level ~dist ~budget ~p_alive:p ~nprocs ~attract coarsest !assign moves gain;
    for i = nl - 2 downto 0 do
      let map = hier.Coarsen.maps.(i) in
      let finer = levels.(i) in
      let a = Array.init finer.Coarsen.lv_n (fun v -> !assign.(map.(v))) in
      refine_level ~dist ~budget ~p_alive:p ~nprocs ~attract finer a moves gain;
      assign := a
    done;
    Stats.bump stats "multilevel refine moves" !moves;
    Stats.bump stats "multilevel refine gain" !gain;
    (* dense cluster ids numbered by smallest task, injective embedding
       by construction (one cluster per occupied processor) *)
    let final = !assign in
    let ids = Hashtbl.create (min (2 * p) 4096) in
    let cluster_of =
      Array.map
        (fun pr ->
          match Hashtbl.find_opt ids pr with
          | Some c -> c
          | None ->
            let c = Hashtbl.length ids in
            Hashtbl.add ids pr c;
            c)
        final
    in
    let proc_of_cluster = Array.make (Hashtbl.length ids) 0 in
    Hashtbl.iter (fun pr c -> proc_of_cluster.(c) <- pr) ids;
    Ok { ml_cluster_of = cluster_of; ml_proc_of_cluster = proc_of_cluster; ml_levels = nl }
  end
