module Ugraph = Oregami_graph.Ugraph
module Topology = Oregami_topology.Topology
module Distcache = Oregami_topology.Distcache

let generations activation =
  let levels = Array.fold_left max 0 activation in
  List.init (levels + 1) (fun l ->
      Array.to_list
        (Array.of_seq
           (Seq.filter_map
              (fun (t, a) -> if a = l then Some t else None)
              (Array.to_seqi activation))))
  |> List.filter (fun g -> g <> [])

exception Stuck of string

let try_place ?budget ?feasible static ~activation ~cap topo =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let n = Ugraph.node_count static in
  let procs = Topology.node_count topo in
  let alive = Topology.alive topo in
  if Array.length activation <> n then Error "activation length mismatch"
  else if cap * Topology.alive_count topo < n then
    Error
      (Printf.sprintf "capacity too small: %d tasks on %d processors at cap %d"
         n (Topology.alive_count topo) cap)
  else begin
  let constrained = feasible <> None in
  let may = match feasible with Some f -> f | None -> fun _ _ -> true in
  let dc = Distcache.hops topo in
  let proc_of = Array.make n (-1) in
  let load = Array.make procs 0 in
  let assign t p =
    proc_of.(t) <- p;
    load.(p) <- load.(p) + 1
  in
  (* anytime completion once the budget dies: first alive processor
     with room, skipping the per-processor cost scan *)
  let assign_cheap t =
    if not constrained then begin
      let p = ref 0 in
      while not (alive !p) || load.(!p) >= cap do incr p done;
      assign t !p
    end
    else begin
      let best = ref (-1) in
      let p = ref 0 in
      while !best = -1 && !p < procs do
        if alive !p && load.(!p) < cap && may t !p then best := !p;
        incr p
      done;
      if !best = -1 then
        raise (Stuck (Printf.sprintf "no feasible processor for task %d" t));
      assign t !best
    end
  in
  match
    List.iter
      (fun generation ->
        List.iter
          (fun t ->
            if not (Budget.poll budget ~cost:procs) then begin
              Budget.note budget "incremental";
              assign_cheap t
            end
            else begin
            let cost p =
              List.fold_left
                (fun acc (u, w) ->
                  if proc_of.(u) <> -1 then acc + (w * Distcache.hop dc p proc_of.(u))
                  else acc)
                0 (Ugraph.neighbors static t)
            in
            let best = ref (-1) and best_key = ref (max_int, max_int, max_int) in
            for p = 0 to procs - 1 do
              if alive p && load.(p) < cap && may t p then begin
                let key = (cost p, load.(p), p) in
                if key < !best_key then begin
                  best_key := key;
                  best := p
                end
              end
            done;
            if !best = -1 then
              raise (Stuck (Printf.sprintf "no feasible processor for task %d" t));
            assign t !best
            end)
          generation)
      (generations activation)
  with
  | () -> Ok proc_of
  | exception Stuck e -> Error e
  end

let place ?budget ?feasible static ~activation ~cap topo =
  match try_place ?budget ?feasible static ~activation ~cap topo with
  | Ok proc_of -> proc_of
  | Error e -> invalid_arg ("Incremental.place: " ^ e)
