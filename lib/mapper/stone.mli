(** Stone-style network-flow task assignment ([Sto77], [Bok87]) — the
    lineage the paper cites for its arbitrary-graph mapping, built here
    as a comparison baseline.

    Two processors: build the commodity network with a source/sink per
    processor, arcs [source→task] weighted by the task's execution
    cost {e on the other} processor, arcs [task→sink] likewise, and
    undirected task–task arcs weighted by communication volume.  A
    minimum s–t cut is an assignment minimizing total execution +
    interprocessor communication cost. *)

val two_processor :
  cost_a:int array ->
  cost_b:int array ->
  comm:Oregami_graph.Ugraph.t ->
  int array * int
(** [two_processor ~cost_a ~cost_b ~comm] returns [(side, total)]:
    [side.(t) = 0] assigns task [t] to processor A; [total] is the
    optimal cost (min-cut value). *)

val recursive_bisection :
  ?budget:Budget.t ->
  procs:int ->
  cost:int array ->
  comm:Oregami_graph.Ugraph.t ->
  unit ->
  int array
(** Heuristic extension to [procs = 2^k] processors: repeated
    two-processor cuts with a balance-encouraging cost split.  Returns
    task → processor (processors may be empty; no balance guarantee —
    Stone's formulation has none).

    An exhausted [budget] replaces each remaining max-flow cut with an
    even split (recorded as a ["stone"] truncation). *)
