(** Algorithm MM-Route (paper §4.4): phase-aware routing that spreads
    each communication phase's messages over distinct links using
    repeated maximal matchings.

    For each phase (one colour of the task graph), messages that must
    cross the network are routed hop by hop: at hop [h] a bipartite
    graph joins pending messages (X) to the links usable as their
    [h]-th hop (Y, consistent with each message's committed prefix and
    some remaining shortest route).  A maximal matching assigns
    distinct links to as many messages as possible; covered messages
    commit, the rest are re-matched in further rounds.  Each round uses
    any link at most once, so synchronous messages of one phase spread
    across the links and contention stays low. *)

type stats = {
  phases : (string * int) list;  (** matching rounds used per phase *)
}

val mm_route :
  ?budget:Budget.t ->
  ?cap:int ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  proc_of_task:int array ->
  Mapping.phase_routing list * stats
(** [cap] bounds the candidate shortest routes enumerated per
    processor pair (default 64).  Co-located edges get empty routes.
    Deterministic.

    When [budget] (default unlimited) trips, the remaining matching
    rounds are skipped: each in-flight message commits its first
    remaining candidate wholesale (complete shortest routes, no
    contention spreading) and later phases enumerate a single route
    per pair — recorded as an ["mm-route"] truncation.  Reachable
    pairs always end up fully routed. *)

val deterministic_route :
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  proc_of_task:int array ->
  Mapping.phase_routing list
(** Baseline: the topology's oblivious single-path routing (e-cube on
    hypercubes, dimension-order on meshes/tori, first shortest path
    otherwise) — the "routing that does not utilize information about
    the communication patterns" the paper contrasts with. *)
