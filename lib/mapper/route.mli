(** Algorithm MM-Route (paper §4.4): phase-aware routing that spreads
    each communication phase's messages over distinct links using
    repeated maximal matchings.

    For each phase (one colour of the task graph), messages that must
    cross the network are routed hop by hop: at hop [h] a bipartite
    graph joins pending messages (X) to the links usable as their
    [h]-th hop (Y, consistent with each message's committed prefix and
    some remaining shortest route).  A maximal matching assigns
    distinct links to as many messages as possible; covered messages
    commit, the rest are re-matched in further rounds.  Each round uses
    any link at most once, so synchronous messages of one phase spread
    across the links and contention stays low. *)

type stats = {
  phases : (string * int) list;  (** matching rounds used per phase *)
}

val mm_route :
  ?budget:Budget.t ->
  ?cap:int ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  proc_of_task:int array ->
  Mapping.phase_routing list * stats
(** [cap] bounds the candidate shortest routes enumerated per
    processor pair (default 64).  Co-located edges get empty routes.
    Deterministic.

    When [budget] (default unlimited) trips, the remaining matching
    rounds are skipped: each in-flight message commits its first
    remaining candidate wholesale (complete shortest routes, no
    contention spreading) and later phases enumerate a single route
    per pair — recorded as an ["mm-route"] truncation.  Reachable
    pairs always end up fully routed. *)

type coarse_stats = {
  co_phases : (string * int) list;
      (** local re-route sweeps used per phase *)
  co_pairs : int;
      (** unique cross-processor demand pairs, summed over phases *)
  co_messages : int;
      (** messages fanned back out, summed over phases *)
}

val coarse_route :
  ?budget:Budget.t ->
  ?cap:int ->
  ?jobs:int ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  proc_of_task:int array ->
  Mapping.phase_routing list * coarse_stats
(** Traffic-aggregated MM-Route for the large tier.  Per phase, the
    cross-processor messages are aggregated into unique
    [(src_proc, dst_proc)] demands weighted by message multiplicity
    (the quantity per-phase link contention counts); each demand picks
    one route from a traffic-weighted sample of its candidate shortest
    routes (hot pairs keep up to [cap] candidates, light pairs a
    stride sample, never fewer than a small floor), scored by
    congestion delta against an incremental per-link load array; a few
    local re-route sweeps then un-commit and re-pick each pair until a
    sweep changes nothing.  The chosen route fans back out to every
    original message, so per-pair endpoints agree exactly with
    {!mm_route} and co-located / unreachable messages follow the same
    contract.

    [jobs > 1] routes independent phases concurrently on a domain pool
    with ordered merge — output is byte-identical to [jobs = 1].  The
    parallel path is skipped when [budget] is limited (the meter is
    not domain-safe); when it runs, per-phase fuel is folded back in
    phase order so [Budget.fuel_used] matches a sequential run.

    When [budget] trips mid-phase the remaining pairs commit their
    first candidate (complete routes, no contention spreading) and
    later phases enumerate a single route per pair — recorded as a
    ["coarse-route"] truncation. *)

val deterministic_route :
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  proc_of_task:int array ->
  Mapping.phase_routing list
(** Baseline: the topology's oblivious single-path routing (e-cube on
    hypercubes, dimension-order on meshes/tori, first shortest path
    otherwise) — the "routing that does not utilize information about
    the communication patterns" the paper contrasts with. *)
