(** Minimum-disruption repair of an existing mapping after faults.

    Given a mapping computed on the pristine machine and the degraded
    view of its topology ({!Oregami_topology.Faults.degrade}), repair

    - freezes every placement that survived (tasks on alive processors
      do not move — the running computation keeps its state);
    - evacuates the tasks stranded on dead processors with the
      incremental placer's greedy rule (hop-weighted communication to
      already-placed neighbours, ties by load then id), preferring
      processors below the balanced-capacity bound and merging into
      occupied ones only when the machine is full;
    - re-routes {e every} phase with MM-Route on the degraded topology,
      since even unmoved traffic may have crossed a now-dead link;
    - revalidates the result (no dead placements, consistent routes).

    Pricing the recovery as migration traffic lives one layer up, in
    [Remap] / [Netsim], which can simulate the move messages. *)

type move = { mv_task : int; mv_from : int; mv_to : int }

type t = {
  rp_mapping : Mapping.t;  (** repaired mapping, on the degraded topology *)
  rp_moves : move list;  (** tasks evacuated, in task order *)
  rp_frozen : int;  (** tasks whose placement survived untouched *)
}

val moved : t -> int

val repair :
  ?cap:int ->
  ?constraints:Constraints.spec ->
  ?allowed:(int -> bool) ->
  Mapping.t ->
  Oregami_topology.Topology.t ->
  (t, string) result
(** [repair m degraded] repairs [m] against the degraded view of its
    topology.  [cap] bounds candidate routes per processor pair for
    MM-Route (default 64).  Errors when the processor counts disagree,
    when nothing survives, or when the repaired mapping fails
    validation (e.g. the surviving machine is partitioned and a phase
    cannot be routed).

    [constraints] (default {!Constraints.none}) is recompiled against
    the {e degraded} machine: a pinned task whose processor died makes
    the repair refuse with a named reason instead of evacuating the
    task somewhere it must not run, evacuation only considers survivors
    the shared {!Constraints.feasible} predicate accepts, and the
    repaired mapping passes the DRC.

    [allowed] (default everything) restricts evacuation targets to a
    region of the machine — a multi-tenant cluster passes the job's
    lease plus the free pool so a repair never lands on a neighbour's
    processors.  Frozen survivors are not re-checked against it. *)
