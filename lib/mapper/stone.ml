module Ugraph = Oregami_graph.Ugraph
module Maxflow = Oregami_matching.Maxflow

let two_processor ~cost_a ~cost_b ~comm =
  let n = Ugraph.node_count comm in
  if Array.length cost_a <> n || Array.length cost_b <> n then
    invalid_arg "Stone: cost arrays must cover every task";
  let src = n and dst = n + 1 in
  let net = Maxflow.create (n + 2) in
  for t = 0 to n - 1 do
    (* cutting the source arc puts t on the B side and pays its cost
       on B, and symmetrically *)
    Maxflow.add_edge net src t ~cap:cost_b.(t);
    Maxflow.add_edge net t dst ~cap:cost_a.(t)
  done;
  List.iter (fun (u, v, w) -> Maxflow.add_bidirectional net u v ~cap:w) (Ugraph.edges comm);
  let total = Maxflow.max_flow net ~src ~dst in
  let side = Maxflow.min_cut_side net ~src in
  (Array.init n (fun t -> if side.(t) = 1 then 0 else 1), total)

let recursive_bisection ?budget ~procs ~cost ~comm () =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  if procs < 1 || procs land (procs - 1) <> 0 then
    invalid_arg "Stone.recursive_bisection: procs must be a power of two";
  let n = Ugraph.node_count comm in
  let assignment = Array.make n 0 in
  let rec split tasks base count =
    if count > 1 && List.length tasks > 1 then begin
      let m = List.length tasks in
      (* the max-flow cut is the expensive step (O(m^2) and up); an
         exhausted budget replaces it with the same even split already
         used for degenerate cuts *)
      let afford = Budget.poll budget ~cost:(m * m) in
      if not afford then Budget.note budget "stone";
      let left, right =
        if not afford then ([], [])
        else begin
          (* restrict the communication graph to this task set *)
          let index = Hashtbl.create 16 in
          List.iteri (fun i t -> Hashtbl.add index t i) tasks;
          let sub = Ugraph.create m in
          List.iter
            (fun (u, v, w) ->
              match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
              | Some iu, Some iv -> Ugraph.add_edge ~w sub iu iv
              | _, _ -> ())
            (Ugraph.edges comm);
          (* symmetric execution costs push toward a balanced cut: a task
             is free on either side, so only communication drives the cut;
             a tiny per-task bias keeps the cut from putting everything on
             one side *)
          let bias =
            Array.of_list (List.map (fun t -> 1 + (cost.(t) / max 1 m)) tasks)
          in
          let side, _ = two_processor ~cost_a:bias ~cost_b:bias ~comm:sub in
          let left = ref [] and right = ref [] in
          List.iteri
            (fun i t ->
              if side.(i) = 0 then left := t :: !left else right := t :: !right)
            tasks;
          (!left, !right)
        end
      in
      (* degenerate (or budget-skipped) cuts: fall back to an even split *)
      let left, right =
        if left = [] || right = [] then begin
          let arr = Array.of_list tasks in
          let half = m / 2 in
          ( Array.to_list (Array.sub arr 0 half),
            Array.to_list (Array.sub arr half (m - half)) )
        end
        else (List.rev left, List.rev right)
      in
      split left base (count / 2);
      split right (base + (count / 2)) (count / 2)
    end
    else List.iter (fun t -> assignment.(t) <- base) tasks
  in
  split (List.init n (fun t -> t)) 0 procs;
  assignment
