(** Group-theoretic contraction of node-symmetric task graphs
    (paper §4.2.2).

    When every communication phase is a bijection on the task labels,
    the phases are permutations generating a group G.  If G acts
    regularly (|G| = |X|, checked via the paper's equal-cycle-length
    test), the task graph is the Cayley graph of G and any subgroup H
    of order |X|/P yields a perfectly balanced contraction into P
    clusters (cosets), each internalizing the same number of messages.
    A corollary to Sylow's theorem guarantees such an H exists whenever
    |X|/P is a prime power. *)

type t = {
  group : Oregami_perm.Group.t;
  correspondence : int array;  (** group element index → task label *)
  subgroup : int list;  (** element indices of the chosen H *)
  normal : bool;  (** H normal in G (quotient is again a Cayley graph) *)
  cluster_of : int array;  (** task → cluster (coset) *)
  clusters : int list array;
  internalized : int;
      (** messages internalized per cluster, summed over generators —
          uniform across clusters by the coset property *)
}

val generators_of : Oregami_taskgraph.Taskgraph.t -> (string * Oregami_perm.Perm.t) list option
(** The phase permutations, when every communication phase is a
    bijection on tasks; [None] otherwise. *)

val contract :
  ?budget:Budget.t -> Oregami_taskgraph.Taskgraph.t -> procs:int -> (t, string) result
(** Full pipeline: extract generators, close the group with the
    paper's [|G| ≤ |X|] halting bound, verify the Cayley conditions,
    search subgroups of order [n/procs] (preferring normal subgroups,
    then maximal internalized traffic), and return the coset
    contraction.  Fails with a diagnostic when any condition breaks
    (caller falls back to MWM-Contract).

    The subgroup search and candidate scoring dominate the cost on
    large groups, so both poll [budget] (n fuel units per subgroup
    closure).  An exhausted budget stops the search at the candidates
    found so far — the first is always scored, so the strategy still
    returns a valid coset contraction ([note]d as ["group-contract"]) —
    or fails with ["mapping budget exhausted"] when it trips before any
    candidate emerges. *)

val balanced_contraction_exists : n:int -> procs:int -> bool
(** The Sylow-corollary sufficient condition: [n mod procs = 0] and
    [n/procs] is 1 or a prime power. *)
