module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Ugraph = Oregami_graph.Ugraph
module Digraph = Oregami_graph.Digraph

type routed_edge = {
  re_src : int;
  re_dst : int;
  re_volume : int;
  re_route : Routes.route;
}

type phase_routing = { pr_phase : string; pr_edges : routed_edge list }

type t = {
  tg : Taskgraph.t;
  topo : Topology.t;
  cluster_of : int array;
  proc_of_cluster : int array;
  routings : phase_routing list;
  strategy : string;
}

let cluster_count m = Array.length m.proc_of_cluster

let proc_of_task m task = m.proc_of_cluster.(m.cluster_of.(task))

let assignment m = Array.init m.tg.Taskgraph.n (proc_of_task m)

let cluster_members m =
  let members = Array.make (cluster_count m) [] in
  for task = m.tg.Taskgraph.n - 1 downto 0 do
    members.(m.cluster_of.(task)) <- task :: members.(m.cluster_of.(task))
  done;
  members

let tasks_on_proc m =
  let procs = Topology.node_count m.topo in
  let tasks = Array.make procs [] in
  for task = m.tg.Taskgraph.n - 1 downto 0 do
    let p = proc_of_task m task in
    tasks.(p) <- task :: tasks.(p)
  done;
  tasks

let validate ?constraints m =
  let n = m.tg.Taskgraph.n in
  let k = cluster_count m in
  let procs = Topology.node_count m.topo in
  let ( let* ) = Result.bind in
  let* () =
    if Array.length m.cluster_of = n then Ok ()
    else Error "cluster_of length differs from task count"
  in
  let* () =
    if Array.for_all (fun c -> c >= 0 && c < k) m.cluster_of then Ok ()
    else Error "cluster id out of range"
  in
  let* () =
    let seen = Array.make k false in
    Array.iter (fun c -> seen.(c) <- true) m.cluster_of;
    if Array.for_all (fun b -> b) seen then Ok () else Error "empty cluster"
  in
  let* () =
    if Array.for_all (fun p -> p >= 0 && p < procs) m.proc_of_cluster then Ok ()
    else Error "processor id out of range"
  in
  let* () =
    match Array.find_opt (fun p -> not (Topology.alive m.topo p)) m.proc_of_cluster with
    | None -> Ok ()
    | Some p -> Error (Printf.sprintf "cluster placed on dead processor %d" p)
  in
  let* () =
    let used = Array.make procs false in
    let dup = ref false in
    Array.iter
      (fun p ->
        if used.(p) then dup := true;
        used.(p) <- true)
      m.proc_of_cluster;
    if !dup then Error "two clusters on one processor (embedding must be injective)"
    else Ok ()
  in
  (* placement constraints, when supplied: report the first DRC
     violation by name (task, processor, rule) *)
  let* () =
    match constraints with
    | None -> Ok ()
    | Some c -> begin
      match Constraints.drc c (assignment m) with
      | [] -> Ok ()
      | v :: rest ->
        let extra =
          match List.length rest with
          | 0 -> ""
          | k -> Printf.sprintf " (and %d more)" k
        in
        Error (Constraints.violation_to_string v ^ extra)
    end
  in
  (* every communication phase must be routed consistently *)
  List.fold_left
    (fun acc (cp : Taskgraph.comm_phase) ->
      let* () = acc in
      match List.find_opt (fun pr -> pr.pr_phase = cp.Taskgraph.cp_name) m.routings with
      | None -> Error (Printf.sprintf "phase %S has no routing" cp.Taskgraph.cp_name)
      | Some pr ->
        let wanted =
          Digraph.edges cp.Taskgraph.edges
          |> List.filter (fun (u, v, _) -> u <> v)
          |> List.map (fun (u, v, w) -> (u, v, w))
          |> List.sort compare
        in
        let got =
          List.map (fun re -> (re.re_src, re.re_dst, re.re_volume)) pr.pr_edges
          |> List.sort compare
        in
        let* () =
          if wanted = got then Ok ()
          else
            Error
              (Printf.sprintf "phase %S: routed edge set differs from task graph"
                 cp.Taskgraph.cp_name)
        in
        List.fold_left
          (fun acc re ->
            let* () = acc in
            let pu = proc_of_task m re.re_src and pv = proc_of_task m re.re_dst in
            let nodes = re.re_route.Routes.nodes in
            if pu = pv then
              if re.re_route.Routes.links = [] then Ok ()
              else Error "co-located edge has a non-empty route"
            else begin
              let* () =
                match nodes with
                | first :: _ when first = pu -> Ok ()
                | _ -> Error "route does not start at the sender's processor"
              in
              let* () =
                match List.rev nodes with
                | last :: _ when last = pv -> Ok ()
                | _ -> Error "route does not end at the receiver's processor"
              in
              (* links consistent with node path *)
              let links = Topology.links_of_path m.topo nodes in
              if links = re.re_route.Routes.links then Ok ()
              else Error "route links do not match route nodes"
            end)
          (Ok ()) pr.pr_edges)
    (Ok ()) m.tg.Taskgraph.comm_phases

let dilation_stats m =
  let hops = ref [] in
  List.iter
    (fun pr ->
      List.iter
        (fun re ->
          if proc_of_task m re.re_src <> proc_of_task m re.re_dst then
            hops := Routes.hops re.re_route :: !hops)
        pr.pr_edges)
    m.routings;
  match !hops with
  | [] -> (0, 0.0, 0)
  | l ->
    let count = List.length l in
    let total = List.fold_left ( + ) 0 l in
    (List.fold_left max 0 l, float_of_int total /. float_of_int count, count)

let total_ipc static cluster_of =
  List.fold_left
    (fun acc (u, v, w) -> if cluster_of.(u) <> cluster_of.(v) then acc + w else acc)
    0 (Ugraph.edges static)

let pp fmt m =
  Format.fprintf fmt "@[<v>mapping %S onto %s via %s" m.tg.Taskgraph.tg_name
    (Topology.name m.topo) m.strategy;
  Format.fprintf fmt "@,  %d tasks -> %d clusters -> %d processors" m.tg.Taskgraph.n
    (cluster_count m)
    (Topology.node_count m.topo);
  let max_d, avg_d, routed = dilation_stats m in
  Format.fprintf fmt "@,  routed edges: %d, dilation max %d avg %.3f" routed max_d avg_d;
  Format.fprintf fmt "@]"
