let protect f =
  try Ok (f ())
  with e ->
    (* Match-all with-handler: Stack_overflow and Out_of_memory are
       ordinary exceptions in OCaml and land here too. *)
    Error (Printexc.to_string e)

type breaker = { threshold : int; fails : (string, int) Hashtbl.t }

let breaker ?(threshold = 3) () = { threshold; fails = Hashtbl.create 7 }

let count br name = Option.value ~default:0 (Hashtbl.find_opt br.fails name)

let admit br name =
  let n = count br name in
  if n >= br.threshold then
    Error
      (Printf.sprintf "circuit open: %d consecutive crashes (threshold %d)" n
         br.threshold)
  else Ok ()

let succeed br name = Hashtbl.remove br.fails name

let fail br name = Hashtbl.replace br.fails name (count br name + 1)

let tripped br =
  Hashtbl.fold
    (fun name n acc -> if n >= br.threshold then name :: acc else acc)
    br.fails []
  |> List.sort String.compare
