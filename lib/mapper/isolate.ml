let protect f =
  try Ok (f ())
  with e ->
    (* Match-all with-handler: Stack_overflow and Out_of_memory are
       ordinary exceptions in OCaml and land here too. *)
    Error (Printexc.to_string e)

(* One breaker is shared by every request of a batch — under the
   parallel service that means every pool domain increments and resets
   these counters concurrently.  Each strategy's consecutive-crash
   count lives in an [Atomic.t] (so increments never lose updates);
   the table that hands out the cells is guarded by a mutex because
   Hashtbl itself is not domain-safe. *)
type breaker = {
  threshold : int;
  lock : Mutex.t;
  fails : (string, int Atomic.t) Hashtbl.t;
}

let breaker ?(threshold = 3) () =
  { threshold; lock = Mutex.create (); fails = Hashtbl.create 7 }

let cell br name =
  Mutex.protect br.lock (fun () ->
      match Hashtbl.find_opt br.fails name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add br.fails name c;
        c)

let count br name = Atomic.get (cell br name)

let admit br name =
  let n = count br name in
  if n >= br.threshold then
    Error
      (Printf.sprintf "circuit open: %d consecutive crashes (threshold %d)" n
         br.threshold)
  else Ok ()

let succeed br name = Atomic.set (cell br name) 0

let fail br name = Atomic.incr (cell br name)

let tripped br =
  Mutex.protect br.lock (fun () ->
      Hashtbl.fold
        (fun name c acc -> if Atomic.get c >= br.threshold then name :: acc else acc)
        br.fails [])
  |> List.sort String.compare
