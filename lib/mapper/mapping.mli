(** The result of mapping a task graph onto a topology: a contraction
    (tasks → clusters), an embedding (clusters → processors), and a
    routing (communication edges → network paths), per the paper's §2
    terminology. *)

type routed_edge = {
  re_src : int;  (** source task *)
  re_dst : int;  (** destination task *)
  re_volume : int;
  re_route : Oregami_topology.Routes.route;
      (** empty link list when both tasks share a processor *)
}

type phase_routing = { pr_phase : string; pr_edges : routed_edge list }

type t = {
  tg : Oregami_taskgraph.Taskgraph.t;
  topo : Oregami_topology.Topology.t;
  cluster_of : int array;  (** task → cluster *)
  proc_of_cluster : int array;  (** cluster → processor (injective) *)
  routings : phase_routing list;  (** one entry per communication phase *)
  strategy : string;  (** which MAPPER algorithm produced it *)
}

val cluster_count : t -> int

val proc_of_task : t -> int -> int

val assignment : t -> int array
(** task → processor array. *)

val cluster_members : t -> int list array
(** Tasks of each cluster, indexed by cluster id. *)

val tasks_on_proc : t -> int list array

val validate : ?constraints:Constraints.t -> t -> (unit, string) result
(** Structural checks: cluster ids dense, embedding injective and in
    range, every cross-processor communication edge routed with a path
    that starts at the sender's processor and ends at the receiver's,
    every co-located edge routed with the empty path.  When
    [constraints] is supplied the {!Constraints.drc} pass runs too and
    the first violation is reported by name. *)

val dilation_stats : t -> int * float * int
(** [(max, average, edge_count)] over all routed cross-processor edges
    (average 0 when there are none). *)

val total_ipc : Oregami_graph.Ugraph.t -> int array -> int
(** [total_ipc static cluster_of]: total weight of edges crossing
    between clusters — the objective MWM-Contract minimizes. *)

val pp : Format.formatter -> t -> unit
