module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Distcache = Oregami_topology.Distcache
module Digraph = Oregami_graph.Digraph
module Bipartite = Oregami_matching.Bipartite

type stats = { phases : (string * int) list }

(* A candidate carries its link sequence as an array so committing hop
   [h] indexes in O(1) instead of List.nth's O(h). *)
type candidate = { cand_route : Routes.route; cand_links : int array }

type pending = {
  msg_src : int;  (** task *)
  msg_dst : int;
  msg_volume : int;
  mutable candidates : candidate list;  (** share the committed prefix *)
  mutable committed : int;  (** hops fixed so far *)
}

let candidate r = { cand_route = r; cand_links = Array.of_list r.Routes.links }

let route_length c = Array.length c.cand_links

let nth_link c h = c.cand_links.(h)

let phase_messages topo proc_of_task cap (cp : Taskgraph.comm_phase) =
  Digraph.edges cp.Taskgraph.edges
  |> List.filter (fun (u, v, _) -> u <> v)
  |> List.map (fun (u, v, w) ->
         let pu = proc_of_task.(u) and pv = proc_of_task.(v) in
         let candidates =
           if pu = pv then [ candidate { Routes.nodes = [ pu ]; links = [] } ]
           else List.map candidate (Distcache.routes ~cap topo pu pv)
         in
         { msg_src = u; msg_dst = v; msg_volume = w; candidates; committed = 0 })

(* An exhausted budget stops contention-aware routing: every message
   still in flight commits its first remaining candidate wholesale.
   The candidate list is always filtered to routes sharing the
   committed prefix, so the result is a complete, link-consistent
   route — just not a congestion-minimizing one. *)
let commit_first m =
  match m.candidates with
  | [] -> ()
  | c :: _ ->
    m.candidates <- [ c ];
    m.committed <- route_length c

(* One phase: commit links hop by hop with maximal-matching rounds. *)
let route_phase ~budget topo messages =
  let nlinks = Topology.link_count topo in
  let rounds = ref 0 in
  let unfinished () =
    (* a message with no candidates at all (unreachable destination on a
       partitioned machine) is left unrouted; validation downstream
       rejects the mapping with a named error instead of crashing here *)
    List.filter
      (fun m ->
        match m.candidates with
        | [] -> false
        | c :: _ -> m.committed < route_length c)
      messages
  in
  let rec hop () =
    match unfinished () with
    | [] -> ()
    | pending when not (Budget.poll budget ~cost:(List.length pending)) ->
      Budget.note budget "mm-route";
      List.iter commit_first pending
    | pending ->
      (* all messages at the same committed depth: those with the
         shortest remaining work still appear; we advance every
         unfinished message by one hop before moving on *)
      let arr = Array.of_list pending in
      let unassigned = ref (Array.to_list (Array.init (Array.length arr) (fun i -> i))) in
      while !unassigned <> [] do
        incr rounds;
        if not (Budget.poll budget ~cost:(List.length !unassigned)) then begin
          Budget.note budget "mm-route";
          List.iter (fun mi -> commit_first arr.(mi)) !unassigned;
          unassigned := []
        end
        else begin
        let xs = Array.of_list !unassigned in
        let edges = ref [] in
        Array.iteri
          (fun xi mi ->
            let m = arr.(mi) in
            let usable =
              List.filter_map
                (fun r ->
                  if route_length r > m.committed then Some (nth_link r m.committed)
                  else None)
                m.candidates
              |> List.sort_uniq compare
            in
            List.iter (fun l -> edges := (xi, l) :: !edges) usable)
          xs;
        let matching =
          Bipartite.greedy_maximal ~nx:(Array.length xs) ~ny:nlinks (List.rev !edges)
        in
        let next_unassigned = ref [] in
        Array.iteri
          (fun xi mi ->
            let m = arr.(mi) in
            match matching.Bipartite.pair_x.(xi) with
            | -1 ->
              (* no free link this round: if the message has candidate
                 links at all it waits for the next round; otherwise it
                 is stuck (cannot happen: usable is non-empty for
                 unfinished messages) *)
              next_unassigned := mi :: !next_unassigned
            | link ->
              m.candidates <-
                List.filter
                  (fun r -> route_length r > m.committed && nth_link r m.committed = link)
                  m.candidates;
              m.committed <- m.committed + 1)
          xs;
        unassigned := List.rev !next_unassigned
        end
      done;
      hop ()
  in
  hop ();
  (!rounds, messages)

let mm_route ?budget ?(cap = 64) tg topo ~proc_of_task =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let results =
    List.map
      (fun (cp : Taskgraph.comm_phase) ->
        (* once the budget is dead, skip multi-route enumeration too:
           one shortest route per pair is all the commit path needs *)
        let cap =
          if Budget.exhausted budget then begin
            Budget.note budget "mm-route";
            1
          end
          else cap
        in
        let messages = phase_messages topo proc_of_task cap cp in
        let rounds, messages = route_phase ~budget topo messages in
        let pr_edges =
          List.map
            (fun m ->
              let route =
                match m.candidates with
                | c :: _ -> c.cand_route
                | [] -> { Routes.nodes = []; links = [] }
              in
              {
                Mapping.re_src = m.msg_src;
                re_dst = m.msg_dst;
                re_volume = m.msg_volume;
                re_route =
                  (if proc_of_task.(m.msg_src) = proc_of_task.(m.msg_dst) then
                     { Routes.nodes = [ proc_of_task.(m.msg_src) ]; links = [] }
                   else route);
              })
            messages
        in
        ({ Mapping.pr_phase = cp.Taskgraph.cp_name; pr_edges }, (cp.Taskgraph.cp_name, rounds)))
      tg.Taskgraph.comm_phases
  in
  (List.map fst results, { phases = List.map snd results })

let deterministic_route tg topo ~proc_of_task =
  List.map
    (fun (cp : Taskgraph.comm_phase) ->
      let pr_edges =
        Digraph.edges cp.Taskgraph.edges
        |> List.filter (fun (u, v, _) -> u <> v)
        |> List.map (fun (u, v, w) ->
               let pu = proc_of_task.(u) and pv = proc_of_task.(v) in
               let route =
                 if pu = pv then { Routes.nodes = [ pu ]; links = [] }
                 else Routes.deterministic topo pu pv
               in
               { Mapping.re_src = u; re_dst = v; re_volume = w; re_route = route })
      in
      { Mapping.pr_phase = cp.Taskgraph.cp_name; pr_edges })
    tg.Taskgraph.comm_phases
