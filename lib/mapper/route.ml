module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Distcache = Oregami_topology.Distcache
module Digraph = Oregami_graph.Digraph
module Bipartite = Oregami_matching.Bipartite
module Pool = Oregami_prelude.Pool

type stats = { phases : (string * int) list }

(* A candidate carries its link sequence as an array so committing hop
   [h] indexes in O(1) instead of List.nth's O(h). *)
type candidate = { cand_route : Routes.route; cand_links : int array }

type pending = {
  msg_src : int;  (** task *)
  msg_dst : int;
  msg_volume : int;
  mutable candidates : candidate list;  (** share the committed prefix *)
  mutable committed : int;  (** hops fixed so far *)
}

let candidate r = { cand_route = r; cand_links = Array.of_list r.Routes.links }

let route_length c = Array.length c.cand_links

let nth_link c h = c.cand_links.(h)

let phase_messages topo proc_of_task cap (cp : Taskgraph.comm_phase) =
  Digraph.edges cp.Taskgraph.edges
  |> List.filter (fun (u, v, _) -> u <> v)
  |> List.map (fun (u, v, w) ->
         let pu = proc_of_task.(u) and pv = proc_of_task.(v) in
         let candidates =
           if pu = pv then [ candidate { Routes.nodes = [ pu ]; links = [] } ]
           else List.map candidate (Distcache.routes ~cap topo pu pv)
         in
         { msg_src = u; msg_dst = v; msg_volume = w; candidates; committed = 0 })

(* An exhausted budget stops contention-aware routing: every message
   still in flight commits its first remaining candidate wholesale.
   The candidate list is always filtered to routes sharing the
   committed prefix, so the result is a complete, link-consistent
   route — just not a congestion-minimizing one. *)
let commit_first m =
  match m.candidates with
  | [] -> ()
  | c :: _ ->
    m.candidates <- [ c ];
    m.committed <- route_length c

(* One phase: commit links hop by hop with maximal-matching rounds. *)
let route_phase ~budget topo messages =
  let nlinks = Topology.link_count topo in
  let rounds = ref 0 in
  let unfinished () =
    (* a message with no candidates at all (unreachable destination on a
       partitioned machine) is left unrouted; validation downstream
       rejects the mapping with a named error instead of crashing here *)
    List.filter
      (fun m ->
        match m.candidates with
        | [] -> false
        | c :: _ -> m.committed < route_length c)
      messages
  in
  let rec hop () =
    match unfinished () with
    | [] -> ()
    | pending when not (Budget.poll budget ~cost:(List.length pending)) ->
      Budget.note budget "mm-route";
      List.iter commit_first pending
    | pending ->
      (* all messages at the same committed depth: those with the
         shortest remaining work still appear; we advance every
         unfinished message by one hop before moving on *)
      let arr = Array.of_list pending in
      let unassigned = ref (Array.to_list (Array.init (Array.length arr) (fun i -> i))) in
      while !unassigned <> [] do
        incr rounds;
        if not (Budget.poll budget ~cost:(List.length !unassigned)) then begin
          Budget.note budget "mm-route";
          List.iter (fun mi -> commit_first arr.(mi)) !unassigned;
          unassigned := []
        end
        else begin
        let xs = Array.of_list !unassigned in
        let edges = ref [] in
        Array.iteri
          (fun xi mi ->
            let m = arr.(mi) in
            let usable =
              List.filter_map
                (fun r ->
                  if route_length r > m.committed then Some (nth_link r m.committed)
                  else None)
                m.candidates
              |> List.sort_uniq compare
            in
            List.iter (fun l -> edges := (xi, l) :: !edges) usable)
          xs;
        let matching =
          Bipartite.greedy_maximal ~nx:(Array.length xs) ~ny:nlinks (List.rev !edges)
        in
        let next_unassigned = ref [] in
        Array.iteri
          (fun xi mi ->
            let m = arr.(mi) in
            match matching.Bipartite.pair_x.(xi) with
            | -1 ->
              (* no free link this round: if the message has candidate
                 links at all it waits for the next round; otherwise it
                 is stuck (cannot happen: usable is non-empty for
                 unfinished messages) *)
              next_unassigned := mi :: !next_unassigned
            | link ->
              m.candidates <-
                List.filter
                  (fun r -> route_length r > m.committed && nth_link r m.committed = link)
                  m.candidates;
              m.committed <- m.committed + 1)
          xs;
        unassigned := List.rev !next_unassigned
        end
      done;
      hop ()
  in
  hop ();
  (!rounds, messages)

let mm_route ?budget ?(cap = 64) tg topo ~proc_of_task =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let results =
    List.map
      (fun (cp : Taskgraph.comm_phase) ->
        (* once the budget is dead, skip multi-route enumeration too:
           one shortest route per pair is all the commit path needs *)
        let cap =
          if Budget.exhausted budget then begin
            Budget.note budget "mm-route";
            1
          end
          else cap
        in
        let messages = phase_messages topo proc_of_task cap cp in
        let rounds, messages = route_phase ~budget topo messages in
        let pr_edges =
          List.map
            (fun m ->
              let route =
                match m.candidates with
                | c :: _ -> c.cand_route
                | [] -> { Routes.nodes = []; links = [] }
              in
              {
                Mapping.re_src = m.msg_src;
                re_dst = m.msg_dst;
                re_volume = m.msg_volume;
                re_route =
                  (if proc_of_task.(m.msg_src) = proc_of_task.(m.msg_dst) then
                     { Routes.nodes = [ proc_of_task.(m.msg_src) ]; links = [] }
                   else route);
              })
            messages
        in
        ({ Mapping.pr_phase = cp.Taskgraph.cp_name; pr_edges }, (cp.Taskgraph.cp_name, rounds)))
      tg.Taskgraph.comm_phases
  in
  (List.map fst results, { phases = List.map snd results })

(* ------------------------------------------------------------------ *)
(* Coarse routing: traffic-aggregated MM-Route for the large tier.

   After contraction most messages of a phase share a processor pair,
   so instead of matching ~70k raw messages hop by hop we route each
   unique (src_proc, dst_proc) demand once, weighted by its message
   multiplicity (which is exactly what per-phase link contention
   counts), and fan the chosen route back out to the original
   messages.  Candidates are scored against an incremental per-link
   load array — congestion delta in O(route length) — so no matching
   graph is ever built. *)

type coarse_stats = {
  co_phases : (string * int) list;
  co_pairs : int;
  co_messages : int;
}

(* Even the lightest pair sees a handful of spread-out candidates;
   without a floor, tail pairs would all take the lexicographically
   first route and pile onto the same early links. *)
let min_coarse_candidates = 4

(* Local re-route sweeps after the greedy pass.  Convergence is fast:
   sweeps stop early as soon as one changes nothing. *)
let max_coarse_rounds = 4

type demand = {
  d_src : int;  (** processor *)
  d_dst : int;
  d_weight : int;  (** message multiplicity *)
  d_candidates : candidate array;
  mutable d_choice : int;  (** index into [d_candidates]; -1 = none *)
}

let coarse_phase ~budget ~cap topo proc_of_task (cp : Taskgraph.comm_phase) =
  let msgs =
    Digraph.edges cp.Taskgraph.edges |> List.filter (fun (u, v, _) -> u <> v)
  in
  let nprocs = Topology.node_count topo in
  (* aggregate: unique cross-processor pairs with message counts *)
  let weight = Hashtbl.create 64 in
  List.iter
    (fun (u, v, _) ->
      let pu = proc_of_task.(u) and pv = proc_of_task.(v) in
      if pu <> pv then begin
        let key = (pu * nprocs) + pv in
        let w = match Hashtbl.find_opt weight key with Some w -> w | None -> 0 in
        Hashtbl.replace weight key (w + 1)
      end)
    msgs;
  (* heaviest demand first so the hot pairs pick their routes against
     an empty network; ties broken by pair id for determinism *)
  let pairs =
    Hashtbl.fold (fun key w acc -> (key, w) :: acc) weight []
    |> List.sort (fun (k1, w1) (k2, w2) ->
           if w1 <> w2 then compare w2 w1 else compare k1 k2)
  in
  let wmax = List.fold_left (fun acc (_, w) -> max acc w) 1 pairs in
  let demands =
    List.map
      (fun (key, w) ->
        let pu = key / nprocs and pv = key mod nprocs in
        (* traffic-weighted sampling: hot pairs keep the full candidate
           spread, light pairs are scored against a stride sample *)
        let want = min cap (max min_coarse_candidates (cap * w / wmax)) in
        let cands =
          Distcache.routes_sampled ~cap ~want topo pu pv
          |> List.map candidate |> Array.of_list
        in
        { d_src = pu; d_dst = pv; d_weight = w; d_candidates = cands;
          d_choice = -1 })
      pairs
  in
  let nlinks = Topology.link_count topo in
  let load = Array.make (max 1 nlinks) 0 in
  let apply d sign =
    if d.d_choice >= 0 then
      Array.iter
        (fun l -> load.(l) <- load.(l) + (sign * d.d_weight))
        d.d_candidates.(d.d_choice).cand_links
  in
  let cand_cost d =
    Array.fold_left (fun acc c -> acc + route_length c) 1 d.d_candidates
  in
  (* best candidate under the current load: smallest bottleneck after
     adding this demand, then smallest total load along the route, then
     lowest index — all candidates are shortest routes, so hop count
     never differs *)
  let best d =
    let best_i = ref (-1) and best_max = ref max_int and best_sum = ref max_int in
    Array.iteri
      (fun i c ->
        let mx = ref 0 and sm = ref 0 in
        Array.iter
          (fun l ->
            let after = load.(l) + d.d_weight in
            if after > !mx then mx := after;
            sm := !sm + load.(l))
          c.cand_links;
        if !mx < !best_max || (!mx = !best_max && !sm < !best_sum) then begin
          best_i := i;
          best_max := !mx;
          best_sum := !sm
        end)
      d.d_candidates;
    !best_i
  in
  (* a dead budget degrades exactly like mm_route's commit_first: every
     remaining pair takes its first candidate, routes stay complete *)
  let commit_rest rest =
    Budget.note budget "coarse-route";
    List.iter
      (fun d ->
        if d.d_choice < 0 && Array.length d.d_candidates > 0 then begin
          d.d_choice <- 0;
          apply d 1
        end)
      rest
  in
  let rec greedy = function
    | [] -> ()
    | d :: rest ->
      if not (Budget.poll budget ~cost:(cand_cost d)) then commit_rest (d :: rest)
      else begin
        if Array.length d.d_candidates > 0 then begin
          d.d_choice <- best d;
          apply d 1
        end;
        greedy rest
      end
  in
  greedy demands;
  let rounds = ref 0 in
  (try
     let improving = ref (not (Budget.exhausted budget)) in
     while !improving && !rounds < max_coarse_rounds do
       incr rounds;
       let changed = ref false in
       List.iter
         (fun d ->
           if Array.length d.d_candidates > 1 then begin
             if not (Budget.poll budget ~cost:(cand_cost d)) then begin
               Budget.note budget "coarse-route";
               raise Exit
             end;
             (* un-commit, re-pick against everyone else, re-commit *)
             apply d (-1);
             let c = best d in
             if c <> d.d_choice then changed := true;
             d.d_choice <- c;
             apply d 1
           end)
         demands;
       if not !changed then improving := false
     done
   with Exit -> ());
  (* deterministic fan-out: every original message takes its pair's
     chosen route; co-located messages get the empty route, pairs that
     are unreachable on a partitioned machine stay unrouted so
     validation rejects the mapping with a named error (same contract
     as mm_route) *)
  let chosen = Hashtbl.create (List.length demands) in
  List.iter
    (fun d ->
      let r =
        if d.d_choice >= 0 then d.d_candidates.(d.d_choice).cand_route
        else { Routes.nodes = []; links = [] }
      in
      Hashtbl.replace chosen ((d.d_src * nprocs) + d.d_dst) r)
    demands;
  let pr_edges =
    List.map
      (fun (u, v, w) ->
        let pu = proc_of_task.(u) and pv = proc_of_task.(v) in
        let route =
          if pu = pv then { Routes.nodes = [ pu ]; links = [] }
          else Hashtbl.find chosen ((pu * nprocs) + pv)
        in
        { Mapping.re_src = u; re_dst = v; re_volume = w; re_route = route })
      msgs
  in
  ( { Mapping.pr_phase = cp.Taskgraph.cp_name; pr_edges },
    !rounds,
    List.length demands,
    List.length msgs )

let coarse_route ?budget ?(cap = 64) ?(jobs = 1) tg topo ~proc_of_task =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let phases = Array.of_list tg.Taskgraph.comm_phases in
  let run ~budget cp =
    let cap =
      if Budget.exhausted budget then begin
        Budget.note budget "coarse-route";
        1
      end
      else cap
    in
    coarse_phase ~budget ~cap topo proc_of_task cp
  in
  let results =
    if jobs > 1 && Array.length phases > 1 && not (Budget.limited budget)
    then begin
      (* Independent phases route concurrently.  The shared budget is a
         plain mutable record (not domain-safe), so this path only runs
         when it is unlimited: each phase task gets its own unlimited
         meter, whose fuel is folded back in phase order below — the
         run's [fuel_used] comes out identical to a sequential run, and
         [Pool.map]'s ordered results keep the output byte-identical at
         any jobs width. *)
      let out =
        Pool.map ~jobs
          (fun cp ->
            let local = Budget.unlimited () in
            let r = run ~budget:local cp in
            (r, Budget.fuel_used local))
          phases
      in
      Array.iter (fun (_, fuel) -> ignore (Budget.poll budget ~cost:fuel)) out;
      Array.to_list (Array.map fst out)
    end
    else Array.to_list (Array.map (fun cp -> run ~budget cp) phases)
  in
  let prs = List.map (fun (pr, _, _, _) -> pr) results in
  let stats =
    {
      co_phases =
        List.map2
          (fun (cp : Taskgraph.comm_phase) (_, r, _, _) ->
            (cp.Taskgraph.cp_name, r))
          tg.Taskgraph.comm_phases results;
      co_pairs = List.fold_left (fun acc (_, _, p, _) -> acc + p) 0 results;
      co_messages = List.fold_left (fun acc (_, _, _, m) -> acc + m) 0 results;
    }
  in
  (prs, stats)

let deterministic_route tg topo ~proc_of_task =
  List.map
    (fun (cp : Taskgraph.comm_phase) ->
      let pr_edges =
        Digraph.edges cp.Taskgraph.edges
        |> List.filter (fun (u, v, _) -> u <> v)
        |> List.map (fun (u, v, w) ->
               let pu = proc_of_task.(u) and pv = proc_of_task.(v) in
               let route =
                 if pu = pv then { Routes.nodes = [ pu ]; links = [] }
                 else Routes.deterministic topo pu pv
               in
               { Mapping.re_src = u; re_dst = v; re_volume = w; re_route = route })
      in
      { Mapping.pr_phase = cp.Taskgraph.cp_name; pr_edges })
    tg.Taskgraph.comm_phases
