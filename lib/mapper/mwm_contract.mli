(** Algorithm MWM-Contract (paper §4.3): symmetric contraction of an
    arbitrary weighted task graph.

    Minimizes total interprocessor communication subject to the load
    balancing constraint of at most [b] tasks per cluster, producing at
    most [procs] clusters:

    - when the task count is ≤ 2·[procs], a single maximum-weight
      matching pass pairs tasks optimally;
    - otherwise a greedy pass (edges in non-increasing weight order)
      merges clusters up to [b/2] tasks until at most 2·[procs] remain,
      then maximum-weight matching pairs the clusters optimally. *)

type t = {
  cluster_of : int array;  (** task → dense cluster id *)
  clusters : int list array;  (** members per cluster *)
  ipc : int;  (** total weight crossing between clusters *)
  greedy_merges : int;  (** merges performed by the greedy phase *)
  matched_pairs : int;  (** pairs made by the matching phase *)
}

val contract :
  ?b:int ->
  ?budget:Budget.t ->
  Oregami_graph.Ugraph.t ->
  procs:int ->
  (t, string) result
(** [contract g ~procs] with [b] defaulting to the smallest even bound
    that can fit ([2·⌈⌈n/procs⌉/2⌉]).  Fails when [b·procs < n].
    Clusters are numbered by smallest task id.  Deterministic.

    When [budget] (default unlimited) trips mid-contraction, the
    remaining clusters are first-fit packed into [procs] capacity-[b]
    bins instead of matched — a valid but lower-quality partition,
    recorded as a ["mwm-contract"] truncation on the budget. *)
