module Ugraph = Oregami_graph.Ugraph
module Topology = Oregami_topology.Topology
module Distcache = Oregami_topology.Distcache

let objective = Nn_embed.weighted_hops

(* cost contribution of one cluster under a tentative processor,
   against the current positions of the others *)
let cluster_cost dc cg proc_of c p =
  List.fold_left
    (fun acc (d, w) -> if d = c then acc else acc + (w * Distcache.hop dc p proc_of.(d)))
    0 (Ugraph.neighbors cg c)

let improve_embedding ?(max_rounds = 10) ?budget ?swaps ?allowed cg topo
    proc_of_cluster =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let may = match allowed with Some f -> f | None -> fun _ _ -> true in
  let accepted () = match swaps with Some r -> incr r | None -> () in
  let k = Ugraph.node_count cg in
  let p = Topology.node_count topo in
  let dc = Distcache.hops topo in
  let proc_of = Array.copy proc_of_cluster in
  let occupant = Array.make p (-1) in
  Array.iteri (fun c pr -> occupant.(pr) <- c) proc_of;
  let improved = ref true in
  let rounds = ref 0 in
  (* hill climbing is the definitional anytime pass: the embedding is
     valid after every accepted move, so on exhaustion we just stop *)
  let dead = ref false in
  while !improved && (not !dead) && !rounds < max_rounds do
    improved := false;
    incr rounds;
    for c = 0 to k - 1 do
      if (not !dead) && not (Budget.poll budget ~cost:p) then begin
        dead := true;
        Budget.note budget "refine"
      end;
      if not !dead then
      for target = 0 to p - 1 do
        let pc = proc_of.(c) in
        (* never move a cluster onto a dead processor of a degraded
           topology (swaps with an occupant are fine: occupied
           processors are alive by construction) *)
        if target <> pc && Topology.alive topo target then begin
          match occupant.(target) with
          | -1 ->
            (* move c to a free processor *)
            let before = cluster_cost dc cg proc_of c pc in
            let after = cluster_cost dc cg proc_of c target in
            if after < before && may c target then begin
              occupant.(pc) <- -1;
              occupant.(target) <- c;
              proc_of.(c) <- target;
              improved := true;
              accepted ()
            end
          | d ->
            (* swap clusters c and d; edge c-d keeps its length *)
            let pd = target in
            let before =
              cluster_cost dc cg proc_of c pc + cluster_cost dc cg proc_of d pd
            in
            proc_of.(c) <- pd;
            proc_of.(d) <- pc;
            let after =
              cluster_cost dc cg proc_of c pd + cluster_cost dc cg proc_of d pc
            in
            if after < before && may c pd && may d pc then begin
              occupant.(pc) <- d;
              occupant.(pd) <- c;
              improved := true;
              accepted ()
            end
            else begin
              proc_of.(c) <- pc;
              proc_of.(d) <- pd
            end
        end
      done
    done
  done;
  proc_of
