module Ugraph = Oregami_graph.Ugraph
module Topology = Oregami_topology.Topology
module Distcache = Oregami_topology.Distcache

let weighted_hops cg topo proc_of_cluster =
  let dc = Distcache.hops topo in
  List.fold_left
    (fun acc (a, b, w) ->
      acc + (w * Distcache.hop dc proc_of_cluster.(a) proc_of_cluster.(b)))
    0 (Ugraph.edges cg)

exception Infeasible of string

let embed ?budget ?fixed ?allowed cg topo =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let k = Ugraph.node_count cg in
  let p = Topology.node_count topo in
  (* dead processors of a degraded topology are not placement targets *)
  let alive = Topology.alive topo in
  if k > Topology.alive_count topo then
    invalid_arg "Nn_embed: more clusters than alive processors";
  (* the constrained path: [may c v] filters candidate processors per
     cluster, [fixed] pre-places pinned clusters.  Both default to the
     unconstrained behaviour bit-for-bit. *)
  let constrained = fixed <> None || allowed <> None in
  let may = match allowed with Some f -> f | None -> fun _ _ -> true in
  let dc = Distcache.hops topo in
  let proc_of = Array.make k (-1) in
  let proc_used = Array.make p false in
  let place cluster proc =
    proc_of.(cluster) <- proc;
    proc_used.(proc) <- true
  in
  (match fixed with
  | None -> ()
  | Some fx ->
    if Array.length fx <> k then invalid_arg "Nn_embed: fixed must cover every cluster";
    Array.iteri
      (fun c pr ->
        if pr >= 0 then begin
          if not (alive pr) then
            raise (Infeasible (Printf.sprintf "cluster %d pinned to dead processor %d" c pr));
          if proc_used.(pr) then
            raise
              (Infeasible (Printf.sprintf "two clusters pinned to processor %d" pr));
          place c pr
        end)
      fx);
  let first_alive () =
    let v = ref 0 in
    while not (alive !v) do incr v done;
    !v
  in
  (* first free processor a cluster accepts, [-1] when none *)
  let first_free c =
    let best = ref (-1) in
    let v = ref 0 in
    while !best = -1 && !v < p do
      if alive !v && (not proc_used.(!v)) && may c !v then best := !v;
      incr v
    done;
    !best
  in
  let seed_cluster c =
    if proc_of.(c) = -1 then begin
      if not constrained then place c (first_alive ())
      else begin
        match first_free c with
        | -1 -> raise (Infeasible (Printf.sprintf "no feasible processor for cluster %d" c))
        | v -> place c v
      end
    end
  in
  (* seed: heaviest edge on a max-degree processor and its neighbour *)
  let heaviest =
    List.fold_left
      (fun acc (a, b, w) ->
        match acc with
        | Some (bw, _, _) when bw >= w -> acc
        | Some _ | None -> Some (w, a, b))
      None (Ugraph.edges cg)
  in
  let tg = Topology.graph topo in
  (match heaviest with
  | Some (_, a, b) when not constrained ->
    let seed_proc =
      let best = ref (first_alive ()) in
      for v = !best + 1 to p - 1 do
        if alive v && Ugraph.degree tg v > Ugraph.degree tg !best then best := v
      done;
      !best
    in
    place a seed_proc;
    let neighbour =
      (* on a degraded topology every neighbour of an alive processor
         is alive (dead nodes keep no links) *)
      match Ugraph.neighbors tg seed_proc with
      | (v, _) :: _ -> v
      | [] ->
        let v = ref ((seed_proc + 1) mod p) in
        while not (alive !v) do v := (!v + 1) mod p done;
        !v
    in
    if k > 1 then place b neighbour
  | Some (_, a, b) ->
    (* constrained seeding: max-degree among the seed's own feasible
       processors; its partner lands via the growth scan below, which
       already honours the filter *)
    if proc_of.(a) = -1 then begin
      let best = ref (-1) in
      for v = 0 to p - 1 do
        if
          alive v && (not proc_used.(v)) && may a v
          && (!best = -1 || Ugraph.degree tg v > Ugraph.degree tg !best)
        then best := v
      done;
      match !best with
      | -1 -> raise (Infeasible (Printf.sprintf "no feasible processor for cluster %d" a))
      | v -> place a v
    end;
    ignore b
  | None -> if k > 0 then seed_cluster 0);
  (* grow: most-communicating unplaced cluster onto the cheapest free
     processor *)
  let remaining () =
    let out = ref [] in
    for c = k - 1 downto 0 do
      if proc_of.(c) = -1 then out := c :: !out
    done;
    !out
  in
  let rec grow () =
    match remaining () with
    | [] -> ()
    | unplaced when not (Budget.poll budget ~cost:(List.length unplaced + p)) ->
      (* anytime completion: drop the attraction/cost scans and stream
         the remaining clusters onto the first free alive processors *)
      Budget.note budget "nn-embed";
      if not constrained then begin
        let proc = ref 0 in
        List.iter
          (fun c ->
            while not (alive !proc) || proc_used.(!proc) do incr proc done;
            place c !proc)
          unplaced
      end
      else
        List.iter
          (fun c ->
            match first_free c with
            | -1 ->
              raise
                (Infeasible (Printf.sprintf "no feasible processor for cluster %d" c))
            | v -> place c v)
          unplaced
    | unplaced ->
      let attraction c =
        List.fold_left
          (fun acc (d, w) -> if proc_of.(d) <> -1 then acc + w else acc)
          0 (Ugraph.neighbors cg c)
      in
      let next =
        List.fold_left
          (fun acc c ->
            match acc with
            | Some (ba, _) when ba >= attraction c -> acc
            | Some _ | None -> Some (attraction c, c))
          None unplaced
      in
      (match next with
      | None -> ()
      | Some (_, c) ->
        let cost proc =
          List.fold_left
            (fun acc (d, w) ->
              if proc_of.(d) <> -1 then acc + (w * Distcache.hop dc proc proc_of.(d))
              else acc)
            0 (Ugraph.neighbors cg c)
        in
        let best = ref (-1) and best_cost = ref max_int in
        for proc = 0 to p - 1 do
          if alive proc && (not proc_used.(proc)) && may c proc then begin
            let cost = cost proc in
            if cost < !best_cost then begin
              best_cost := cost;
              best := proc
            end
          end
        done;
        if !best = -1 then
          raise (Infeasible (Printf.sprintf "no feasible processor for cluster %d" c));
        place c !best);
      grow ()
  in
  grow ();
  proc_of
