(** Incremental placement for dynamically spawned computations
    (paper §6): tasks of a regular spawning pattern appear generation
    by generation, so the mapper places each new generation without
    moving anything already running — unlike the static mapper, which
    sees the whole final graph in advance.

    The quality gap between this online placement and the clairvoyant
    static mapping measures what the predictable spawning pattern buys
    (the paper's motivation for describing spawning in LaRCS). *)

val place :
  ?budget:Budget.t ->
  ?feasible:(int -> int -> bool) ->
  Oregami_graph.Ugraph.t ->
  activation:int array ->
  cap:int ->
  Oregami_topology.Topology.t ->
  int array
(** [place static ~activation ~cap topo] assigns tasks to processors in
    generation order (ties by task id).  Each arriving task goes to the
    processor minimising the hop-weighted communication to its
    already-placed neighbours, among processors with fewer than [cap]
    tasks (ties: lightest load, then smallest id).  Requires
    [cap × processors ≥ tasks].

    An exhausted [budget] places the remaining tasks on the first
    alive processor with room instead of scanning costs — the
    capacity invariant still holds, recorded as an ["incremental"]
    truncation.

    [feasible t p] (default everything) filters the processors task
    [t] may occupy — the bridge to {!Constraints.feasible}.  With the
    filter present, a task with no feasible processor under the
    capacity bound raises [Invalid_argument] naming the task. *)

val try_place :
  ?budget:Budget.t ->
  ?feasible:(int -> int -> bool) ->
  Oregami_graph.Ugraph.t ->
  activation:int array ->
  cap:int ->
  Oregami_topology.Topology.t ->
  (int array, string) result
(** Like {!place} but total: precondition failures (activation length
    mismatch, insufficient capacity) and a task with no feasible
    processor become a named [Error] instead of raising.  The online
    cluster uses this — a transiently unplaceable arrival is queued
    and retried, not a crash. *)

val generations : int array -> int list list
(** Task ids grouped by activation level, levels ascending. *)
