module Compile = Oregami_larcs.Compile
module Analyze = Oregami_larcs.Analyze
module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Recurrence = Oregami_systolic.Recurrence
module Synthesis = Oregami_systolic.Synthesis

type placement = Placed of int array | Embed

type candidate = {
  label : string;
  clusters : int;
  cluster_of : int array;
  placement : placement;
}

type tier = Dispatch | Compete

type t = {
  name : string;
  tier : tier;
  default_on : bool;
  doc : string;
  available : Ctx.t -> (unit, string) result;
  produce : Ctx.t -> (candidate list, string) result;
}

let always _ = Ok ()

(* mirror image of Multilevel.available: the quadratic-ish flat
   contractions stand aside on graphs beyond their sweet spot — at
   10^5 tasks MWM-Contract takes minutes and KL/Stone hours — unless
   the user forces them by name *)
let fits_flat name ctx =
  let n = ctx.Ctx.tg.Taskgraph.n in
  let threshold = ctx.Ctx.options.Ctx.multilevel_threshold in
  if n <= threshold then Ok ()
  else if List.mem name ctx.Ctx.options.Ctx.only then Ok ()
  else
    Error
      (Printf.sprintf
         "graph exceeds the flat sweet spot (%d > %d tasks), multilevel territory; force with --only %s"
         n threshold name)

let gate flag name ctx = if flag ctx.Ctx.options then Ok () else Error ("disabled (" ^ name ^ " = false)")

(* strategies that emit a fixed [Placed] assignment without consulting
   the feasibility predicate must decline constrained runs by name;
   the [Embed] producers respect constraints through the shared
   NN-Embed/Refine candidate filter instead *)
let unconstrained what ctx =
  if not (Ctx.constrained ctx) then Ok ()
  else
    Error
      (Printf.sprintf
         "constraints present: %s is constraint-unaware (pins/requires/forbids need the \
          embedding strategies)"
         what)

(* canned tables, lattice placement and coset contraction all assume the
   intact network symmetry; on a degraded machine they would place onto
   dead processors or assert structure that no longer holds *)
let intact what ctx =
  if not (Ctx.degraded ctx) then Ok ()
  else begin
    let detail =
      if Oregami_topology.Faults.is_empty ctx.Ctx.faults then Topology.name ctx.Ctx.topo
      else Oregami_topology.Faults.describe ctx.Ctx.faults
    in
    Error (Printf.sprintf "degraded topology (%s): %s requires the intact network" detail what)
  end

(* ------------------------------------------------------------------ *)
(* canned: nameable families via the (family, topology) lookup table  *)

let canned_produce ctx =
  let tg = ctx.Ctx.tg in
  let attempt family dims relabel =
    match Canned.lookup ?dims ~family ~n:tg.Taskgraph.n ctx.Ctx.topo with
    | None ->
      Error (Printf.sprintf "no canned entry for family %S on this topology" family)
    | Some c ->
      let cluster_of =
        match relabel with
        | None -> c.Canned.cluster_of
        | Some r -> Array.init tg.Taskgraph.n (fun t -> c.Canned.cluster_of.(r.(t)))
      in
      Ok
        [
          {
            label = Printf.sprintf "canned:%s" family;
            clusters = Array.length c.Canned.proc_of_cluster;
            cluster_of;
            placement = Placed c.Canned.proc_of_cluster;
          };
        ]
  in
  match tg.Taskgraph.declared_family with
  | Some family ->
    (* a declared family asserts the natural numbering *)
    attempt family (Ctx.mesh_dims ctx) None
  | None -> begin
    match Analyze.detect_family_match tg with
    | Some m ->
      let dims =
        match m.Analyze.fam_dims with Some _ as d -> d | None -> Ctx.mesh_dims ctx
      in
      attempt m.Analyze.fam_name dims (Some m.Analyze.relabel)
    | None -> Error "no declared or detected graph family"
  end

(* ------------------------------------------------------------------ *)
(* systolic: uniform dependences (identity affine maps) on a 2-D or   *)
(* 3-D lattice, placed directly or via space-time projection          *)

let systolic_produce ctx =
  match (ctx.Ctx.compiled, Ctx.analysis ctx) with
  | None, _ | _, None -> Error "no compiled program (bare task graph)"
  | Some compiled, Some a -> begin
    match (a.Analyze.affine_maps, compiled.Compile.spaces) with
    | None, _ -> Error "communication is not affine on a single lattice"
    | Some _, ([] | _ :: _ :: _) -> Error "program does not declare a single node space"
    | Some maps, [ space ] -> begin
      let dims = space.Compile.dims in
      let d = List.length dims in
      let identity m =
        Array.length m.Analyze.matrix = d
        && begin
             let ok = ref true in
             Array.iteri
               (fun i row ->
                 Array.iteri
                   (fun j v ->
                     let want = if i = j then 1 else 0 in
                     if v <> want then ok := false)
                   row)
               m.Analyze.matrix;
             !ok
           end
      in
      let uniform = List.for_all (fun (_, ms) -> List.for_all identity ms) maps in
      if not uniform then Error "dependences are not uniform (non-identity linear parts)"
      else if d = 2 then begin
        (* tasks on a 2-D lattice with uniform deps: place the lattice
           directly on a processor mesh when it fits *)
        match Topology.kind ctx.Ctx.topo with
        | Topology.Mesh (pr, pc) ->
          let r = let lo, hi = List.nth dims 0 in hi - lo + 1 in
          let c = let lo, hi = List.nth dims 1 in hi - lo + 1 in
          if r <= pr && c <= pc then begin
            let n = compiled.Compile.graph.Taskgraph.n in
            let cluster_of = Array.init n (fun t -> t) in
            let proc_of_cluster =
              Array.init n (fun t ->
                  match Compile.node_label_values compiled t with
                  | [ i; j ] ->
                    let lo0, _ = List.nth dims 0 and lo1, _ = List.nth dims 1 in
                    ((i - lo0) * pc) + (j - lo1)
                  | _ -> 0)
            in
            Ok
              [
                {
                  label = "systolic:lattice";
                  clusters = n;
                  cluster_of;
                  placement = Placed proc_of_cluster;
                };
              ]
          end
          else Error (Printf.sprintf "%dx%d lattice does not fit the %dx%d mesh" r c pr pc)
        | Topology.Line _ | Topology.Ring _ | Topology.Torus _ | Topology.Hypercube _
        | Topology.Complete _ | Topology.Binary_tree _ | Topology.Binomial_tree _
        | Topology.Butterfly _ | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _
        | Topology.Star_graph _ | Topology.De_bruijn _ | Topology.Shuffle_exchange _ ->
          Error "2-D lattice placement needs a mesh target"
      end
      else if d = 3 then begin
        (* 3-D uniform recurrence: synthesize a space-time design and
           contract each task to its projected processor (paper
           section 4.2.1: "many of the systolic array synthesis
           algorithms ... can be used to perform the mappings") *)
        match Topology.kind ctx.Ctx.topo with
        | Topology.Mesh (pr, pc) -> begin
          let deps =
            List.concat_map
              (fun (name, ms) ->
                List.mapi
                  (fun i (mm : Analyze.affine_map) ->
                    (* rule x -> x + b: the receiver consumes what x
                       produced, so the dependence vector is b itself *)
                    { Recurrence.dep_name = Printf.sprintf "%s%d" name i;
                      vector = Array.copy mm.Analyze.offset })
                  ms)
              maps
            |> List.filter (fun dep -> Array.exists (( <> ) 0) dep.Recurrence.vector)
          in
          let domain =
            {
              Recurrence.lower = Array.of_list (List.map fst dims);
              upper = Array.of_list (List.map snd dims);
              halfspaces = [];
            }
          in
          let r = { Recurrence.name = "larcs"; domain; deps } in
          match Synthesis.synthesize r with
          | Error e -> Error ("space-time synthesis failed: " ^ e)
          | Ok design -> begin
            let n = compiled.Compile.graph.Taskgraph.n in
            let pes =
              Array.init n (fun t ->
                  let x = Array.of_list (Compile.node_label_values compiled t) in
                  Oregami_systolic.Linalg.mat_vec design.Synthesis.allocation x)
            in
            (* normalise PE coordinates to a grid *)
            let d2 = 2 in
            let lows = Array.copy pes.(0) and highs = Array.copy pes.(0) in
            Array.iter
              (fun pe ->
                for i = 0 to d2 - 1 do
                  if pe.(i) < lows.(i) then lows.(i) <- pe.(i);
                  if pe.(i) > highs.(i) then highs.(i) <- pe.(i)
                done)
              pes;
            let er = highs.(0) - lows.(0) + 1 and ec = highs.(1) - lows.(1) + 1 in
            if er <= pr && ec <= pc then begin
              (* dense cluster ids over occupied PE cells *)
              let ids = Hashtbl.create 64 in
              let cluster_of =
                Array.map
                  (fun pe ->
                    let key = ((pe.(0) - lows.(0)) * ec) + (pe.(1) - lows.(1)) in
                    match Hashtbl.find_opt ids key with
                    | Some c -> c
                    | None ->
                      let c = Hashtbl.length ids in
                      Hashtbl.add ids key c;
                      c)
                  pes
              in
              let proc_of_cluster = Array.make (Hashtbl.length ids) 0 in
              Hashtbl.iter
                (fun key c -> proc_of_cluster.(c) <- ((key / ec) * pc) + (key mod ec))
                ids;
              Ok
                [
                  {
                    label = "systolic:projection";
                    clusters = Hashtbl.length ids;
                    cluster_of;
                    placement = Placed proc_of_cluster;
                  };
                ]
            end
            else
              Error
                (Printf.sprintf "projected %dx%d PE array does not fit the %dx%d mesh" er
                   ec pr pc)
          end
        end
        | Topology.Line _ | Topology.Ring _ | Topology.Torus _ | Topology.Hypercube _
        | Topology.Complete _ | Topology.Binary_tree _ | Topology.Binomial_tree _
        | Topology.Butterfly _ | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _
        | Topology.Star_graph _ | Topology.De_bruijn _ | Topology.Shuffle_exchange _ ->
          Error "systolic projection needs a mesh target"
      end
      else Error (Printf.sprintf "%d-dimensional lattice (only 2-D and 3-D supported)" d)
    end
  end

(* ------------------------------------------------------------------ *)
(* group: Cayley-graph coset contraction                              *)

let group_produce ctx =
  let tg = ctx.Ctx.tg in
  let procs = min (Ctx.procs ctx) tg.Taskgraph.n in
  match Group_contract.contract ~budget:ctx.Ctx.budget tg ~procs with
  | Error e -> Error e
  | Ok g ->
    Ok
      [
        {
          label = "group-theoretic";
          clusters = Array.length g.Group_contract.clusters;
          cluster_of = g.Group_contract.cluster_of;
          placement = Embed;
        };
      ]

(* ------------------------------------------------------------------ *)
(* general-path contractions, embedded by the shared NN-Embed pass    *)

let mwm_produce ctx =
  match
    Mwm_contract.contract ?b:ctx.Ctx.options.Ctx.b ~budget:ctx.Ctx.budget
      (Ctx.static ctx) ~procs:(Ctx.procs ctx)
  with
  | Error e -> Error e
  | Ok r ->
    Ok
      [
        {
          label = "mwm+nn";
          clusters = Array.length r.Mwm_contract.clusters;
          cluster_of = r.Mwm_contract.cluster_of;
          placement = Embed;
        };
      ]

let tiled_produce ctx =
  let tg = ctx.Ctx.tg in
  match Ctx.mesh_dims ctx with
  | Some [ rows; cols ] when rows * cols = tg.Taskgraph.n -> begin
    match Tiled.contract ~rows ~cols ~procs:(Ctx.procs ctx) with
    | [] -> Error "no feasible processor-grid factorization"
    | tilings ->
      Ok
        (List.map
           (fun (cluster_of, k) ->
             { label = "tiled+nn"; clusters = k; cluster_of; placement = Embed })
           tilings)
  end
  | Some _ | None -> Error "program does not declare a single 2-D task lattice"

let blocks_produce ctx =
  let n = ctx.Ctx.tg.Taskgraph.n in
  let k = min n (Ctx.procs ctx) in
  let cluster_of = Array.init n (fun i -> i * k / n) in
  Ok [ { label = "blocks+nn"; clusters = k; cluster_of; placement = Embed } ]

let multilevel_produce ctx =
  match Multilevel.run ctx with
  | Error e -> Error e
  | Ok r ->
    Ok
      [
        {
          label = "multilevel";
          clusters = Array.length r.Multilevel.ml_proc_of_cluster;
          cluster_of = r.Multilevel.ml_cluster_of;
          placement = Placed r.Multilevel.ml_proc_of_cluster;
        };
      ]

let kl_produce ctx =
  let n = ctx.Ctx.tg.Taskgraph.n in
  let parts = min (Ctx.procs ctx) n in
  let cluster_of = Kl.partition ~budget:ctx.Ctx.budget (Ctx.static ctx) ~parts in
  let k = 1 + Array.fold_left max (-1) cluster_of in
  Ok [ { label = "kl+nn"; clusters = k; cluster_of; placement = Embed } ]

let stone_produce ctx =
  let tg = ctx.Ctx.tg in
  let procs = Ctx.procs ctx in
  if procs < 2 || procs land (procs - 1) <> 0 then
    Error "recursive bisection needs a power-of-two processor count"
  else begin
    let n = tg.Taskgraph.n in
    let cost = Array.make n 0 in
    List.iter
      (fun (ep : Taskgraph.exec_phase) ->
        Array.iteri (fun t c -> cost.(t) <- cost.(t) + c) ep.Taskgraph.costs)
      tg.Taskgraph.exec_phases;
    let proc_of_task =
      Stone.recursive_bisection ~budget:ctx.Ctx.budget ~procs ~cost
        ~comm:(Ctx.static ctx) ()
    in
    (* dense cluster ids, numbered by smallest member *)
    let ids = Hashtbl.create 16 in
    let cluster_of =
      Array.map
        (fun p ->
          match Hashtbl.find_opt ids p with
          | Some c -> c
          | None ->
            let c = Hashtbl.length ids in
            Hashtbl.add ids p c;
            c)
        proc_of_task
    in
    Ok
      [
        {
          label = "stone+nn";
          clusters = Hashtbl.length ids;
          cluster_of;
          placement = Embed;
        };
      ]
  end

(* ------------------------------------------------------------------ *)
(* naive baselines (paper §1's uninformed placements), registry-       *)
(* reachable for ablations via --only                                  *)

let baseline label make ctx =
  let n = ctx.Ctx.tg.Taskgraph.n in
  let cluster_of, proc_of_cluster = make ctx ~n ~procs:(Ctx.procs ctx) in
  (* the identity embedding is over alive-processor ranks; translate to
     real processor ids (the identity on a pristine topology) *)
  let proc_of_cluster = Array.map (fun c -> ctx.Ctx.alive.(c)) proc_of_cluster in
  Ok
    [
      {
        label;
        clusters = Array.length proc_of_cluster;
        cluster_of;
        placement = Placed proc_of_cluster;
      };
    ]

let registry () =
  [
    {
      name = "canned";
      tier = Dispatch;
      default_on = true;
      doc = "canned contraction/embedding for nameable families (\u{00a7}4.1)";
      available =
        (fun ctx ->
          match gate (fun o -> o.Ctx.allow_canned) "allow_canned" ctx with
          | Error _ as e -> e
          | Ok () -> (
            match intact "canned" ctx with
            | Error _ as e -> e
            | Ok () -> unconstrained "canned" ctx));
      produce = canned_produce;
    };
    {
      name = "systolic";
      tier = Dispatch;
      default_on = true;
      doc = "uniform-recurrence lattice placement / space-time projection (\u{00a7}4.2.1)";
      available =
        (fun ctx ->
          if not ctx.Ctx.options.Ctx.allow_systolic then
            Error "disabled (allow_systolic = false)"
          else if ctx.Ctx.compiled = None then Error "no compiled program (bare task graph)"
          else
            match intact "systolic" ctx with
            | Error _ as e -> e
            | Ok () -> unconstrained "systolic" ctx);
      produce = systolic_produce;
    };
    {
      name = "group";
      tier = Dispatch;
      default_on = true;
      doc = "Cayley-graph coset contraction (\u{00a7}4.2.2)";
      available =
        (fun ctx ->
          match gate (fun o -> o.Ctx.allow_group) "allow_group" ctx with
          | Error _ as e -> e
          | Ok () -> intact "group" ctx);
      produce = group_produce;
    };
    {
      name = "mwm";
      tier = Compete;
      default_on = true;
      doc = "Algorithm MWM-Contract: greedy merge + maximum-weight matching (\u{00a7}4.3)";
      available = fits_flat "mwm";
      produce = mwm_produce;
    };
    {
      name = "tiled";
      tier = Compete;
      default_on = true;
      doc = "balanced 2-D tile contractions of grid programs";
      available = always;
      produce = tiled_produce;
    };
    {
      name = "blocks";
      tier = Compete;
      default_on = true;
      doc = "balanced consecutive blocks along the task numbering";
      available =
        (fun ctx ->
          (* parity with the seed dispatch: the block linearization only
             competed on the compiled-program path *)
          if ctx.Ctx.compiled = None then Error "bare task graph (compiled-path strategy)"
          else Ok ());
      produce = blocks_produce;
    };
    {
      name = "multilevel";
      tier = Compete;
      default_on = true;
      doc = "multilevel coarsen/map/refine tier for graphs beyond the flat sweet spot";
      available = Multilevel.available;
      produce = multilevel_produce;
    };
    {
      name = "kl";
      tier = Compete;
      default_on = false;
      doc = "Kernighan-Lin recursive bisection (ablation contraction engine)";
      available = fits_flat "kl";
      produce = kl_produce;
    };
    {
      name = "stone";
      tier = Compete;
      default_on = false;
      doc = "Stone-style max-flow assignment, recursive bisection extension";
      available = fits_flat "stone";
      produce = stone_produce;
    };
    {
      name = "random";
      tier = Compete;
      default_on = false;
      doc = "random balanced placement (draws from the ctx RNG seed)";
      available = unconstrained "random";
      produce =
        baseline "random" (fun ctx ~n ~procs -> Baselines.random ctx.Ctx.rng ~n ~procs);
    };
    {
      name = "naive-block";
      tier = Compete;
      default_on = false;
      doc = "consecutive blocks on the identity embedding (no NN-Embed)";
      available = unconstrained "naive-block";
      produce = baseline "block" (fun _ ~n ~procs -> Baselines.block ~n ~procs);
    };
    {
      name = "round-robin";
      tier = Compete;
      default_on = false;
      doc = "round-robin dealing on the identity embedding";
      available = unconstrained "round-robin";
      produce = baseline "round-robin" (fun _ ~n ~procs -> Baselines.round_robin ~n ~procs);
    };
  ]

let names () = List.map (fun s -> s.name) (registry ())

let find name = List.find_opt (fun s -> s.name = name) (registry ())

let select (options : Ctx.options) =
  let all = registry () in
  let known = List.map (fun s -> s.name) all in
  let unknown = List.filter (fun n -> not (List.mem n known)) in
  match unknown options.Ctx.only @ unknown options.Ctx.exclude with
  | _ :: _ as bad ->
    Error
      (Printf.sprintf "unknown strategies: %s (known: %s)" (String.concat ", " bad)
         (String.concat ", " known))
  | [] ->
    let picked =
      if options.Ctx.only <> [] then
        List.filter (fun s -> List.mem s.name options.Ctx.only) all
      else List.filter (fun s -> s.default_on) all
    in
    let picked = List.filter (fun s -> not (List.mem s.name options.Ctx.exclude)) picked in
    if picked = [] then Error "strategy selection is empty" else Ok picked
