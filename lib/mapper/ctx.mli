(** The shared mapping context: everything a mapping strategy may
    consult, built once per pipeline run and threaded uniformly through
    every pass instead of the seed driver's ad-hoc
    [(tg, topo, options)] argument plumbing.

    Holds the compiled LaRCS program (when mapping started from
    source), the lazily-computed regularity analysis, the task graph
    and its static cluster graph, the target topology with its
    pre-warmed {!Oregami_topology.Distcache} hop matrix, a
    deterministic RNG for randomized strategies, the option record,
    and the {!Stats} sink every pass reports into. *)

type routing =
  | Mm_route  (** per-message maximal-matching routing (paper §4.4) *)
  | Oblivious  (** the topology's deterministic single-path scheme *)
  | Coarse
      (** traffic-aggregated MM-Route: messages sharing a processor
          pair are routed once, on aggregated demands (large tier) *)
  | Auto
      (** {!Mm_route} up to [multilevel_threshold] tasks, {!Coarse}
          above — the same gate the multilevel tier switches on *)

type options = {
  b : int option;  (** load-balance bound B for MWM-Contract *)
  routing : routing;
  route_cap : int;  (** candidate shortest routes per pair *)
  jobs : int;
      (** domains used to route independent communication phases
          concurrently under {!Coarse} routing; results are merged in
          phase order so output is byte-identical to [jobs = 1].  The
          flat passes ignore it. *)
  allow_canned : bool;
  allow_group : bool;
  allow_systolic : bool;
  refine : bool;  (** pairwise-interchange improvement of the embedding *)
  seed : int;
      (** seed for the context RNG — the only randomness source a
          registered strategy may draw from *)
  only : string list;
      (** when non-empty, restrict the registry to these strategy
          names and let {e all} of them compete under the completion
          model (no dispatch short-circuit) *)
  exclude : string list;  (** strategy names to drop from the registry *)
  fuel : int option;
      (** abstract work-unit cap for the whole pipeline run; [None] is
          unlimited.  Deterministic across machines. *)
  deadline_ms : float option;
      (** monotonic wall-clock deadline for the run, measured from
          context construction; [None] is unlimited *)
  fallback : bool;
      (** when every selected strategy declines (or the budget dies
          before any candidate lands), place a cheap baseline mapping
          instead of returning an error.  Budgeted runs imply it. *)
  constraints : Constraints.spec;
      (** placement constraints (pins, forbids, required classes, skip
          classes), compiled once per run onto [t.constraints] *)
  multilevel_threshold : int;
      (** task count above which the flat strategies stand aside and
          the multilevel tier takes over (the two-way gate both
          {!Strategy} and [Multilevel.available] consult) *)
}

val default_options : options
(** Same defaults as the seed driver ([b = None], [Auto] routing —
    which resolves to MM-Route at flat-tier sizes — cap 64, [jobs = 1],
    all dispatch paths allowed, refinement on), [seed = 2026], no
    selection restrictions. *)

type t = {
  compiled : Oregami_larcs.Compile.compiled option;
      (** [None] when mapping a bare task graph *)
  analysis : Oregami_larcs.Analyze.t option Lazy.t;
      (** forced at most once, by the first strategy that needs it *)
  tg : Oregami_taskgraph.Taskgraph.t;
  topo : Oregami_topology.Topology.t;
      (** the mapping target — a degraded view when faults are present *)
  dist : Oregami_topology.Distcache.t;  (** pre-warmed hop matrix *)
  static : Oregami_graph.Ugraph.t Lazy.t;
      (** [Taskgraph.static_graph tg], computed at most once *)
  rng : Oregami_prelude.Rng.t;  (** seeded from [options.seed] *)
  options : options;
  stats : Stats.t;
  faults : Oregami_topology.Faults.t;
      (** the fault set behind a degraded [topo] (for reporting);
          [Faults.none] when mapping a pristine machine *)
  alive : int array;
      (** alive processor ids, increasing — the only valid placement
          targets.  Equals [0 .. node_count-1] on a pristine topology. *)
  placeable : int array;
      (** alive processor ids that are not in a skip-placement class —
          what strategies may actually place clusters on.  Equals
          [alive] when no constraints are active. *)
  constraints : Constraints.t;
      (** [options.constraints] compiled against [tg] and [topo];
          check [Constraints.errors] before mapping (the pipeline
          does) *)
  budget : Budget.t;
      (** the run's fuel/deadline meter, built from [options.fuel] /
          [options.deadline_ms] at context construction (which is when
          the deadline clock starts) *)
  breaker : Isolate.breaker;
      (** per-strategy circuit breaker.  Fresh by default; a batch
          service passes one shared breaker across requests so a
          repeatedly-crashing strategy gets benched. *)
}

val of_compiled :
  ?options:options ->
  ?faults:Oregami_topology.Faults.t ->
  ?breaker:Isolate.breaker ->
  Oregami_larcs.Compile.compiled ->
  Oregami_topology.Topology.t ->
  t

val of_taskgraph :
  ?options:options ->
  ?faults:Oregami_topology.Faults.t ->
  ?breaker:Isolate.breaker ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  t

val degraded : t -> bool
(** Whether the context targets a degraded machine (its topology is a
    degraded view or it carries a non-empty fault set). *)

val analysis : t -> Oregami_larcs.Analyze.t option
(** Forces the lazy analysis ([None] for bare task graphs). *)

val static : t -> Oregami_graph.Ugraph.t

val mesh_dims : t -> int list option
(** The task-side 2-D lattice shape when the compiled program declares
    a single 2-D node space ([None] otherwise or without a compiled
    program) — the [dims] hint the canned and tiled strategies use. *)

val procs : t -> int
(** Number of processors a strategy may place clusters on:
    [Array.length placeable] — the full node count on a pristine
    unconstrained topology, the survivors minus skip-placement classes
    otherwise. *)

val constrained : t -> bool
(** [Constraints.active t.constraints]. *)

val resolve_routing : t -> routing
(** The routing pass to actually run: explicit choices pass through,
    [Auto] resolves to {!Coarse} when the task count exceeds
    [options.multilevel_threshold] (the multilevel tier's territory,
    where per-message MM-Route dominates wall-clock) and {!Mm_route}
    otherwise.  Never returns [Auto]. *)
