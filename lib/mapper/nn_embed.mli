(** Algorithm NN-Embed (paper §4.3): greedy embedding of the contracted
    cluster graph into the network, placing highly communicating
    clusters on adjacent processors. *)

exception Infeasible of string
(** Raised (constrained runs only) when a cluster has no feasible free
    processor left; the message names the cluster. *)

val embed :
  ?budget:Budget.t ->
  ?fixed:int array ->
  ?allowed:(int -> int -> bool) ->
  Oregami_graph.Ugraph.t ->
  Oregami_topology.Topology.t ->
  int array
(** [embed cg topo] returns an injective cluster → processor map
    (requires [node_count cg ≤ node_count topo]).

    Greedy order: the heaviest cluster edge is placed first on a
    maximum-degree processor and a neighbour; thereafter the unplaced
    cluster with the largest total communication to placed clusters
    goes to the free processor minimizing the hop-weighted
    communication distance to its placed neighbours.  Deterministic
    (ties by smallest id).

    When [budget] (default unlimited) trips, the remaining clusters
    are streamed onto the first free alive processors — still
    injective and alive-only, recorded as an ["nn-embed"] truncation.

    Placement constraints ({!Constraints}): [fixed] pre-places
    clusters (entry ≥ 0 pins that cluster, [-1] leaves it free, length
    must equal the cluster count) and [allowed c p] filters the
    processors cluster [c] may occupy.  Both default to the
    unconstrained behaviour bit-for-bit; with either present, a
    cluster with no feasible free processor raises {!Infeasible}. *)

val weighted_hops :
  Oregami_graph.Ugraph.t -> Oregami_topology.Topology.t -> int array -> int
(** Objective: Σ over cluster edges of weight × hop distance of their
    processors — the quantity NN-Embed greedily minimizes. *)
