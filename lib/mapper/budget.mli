(** Fuel/deadline meter for anytime mapping.

    A budget combines two limits: an abstract {e fuel} cap (work units,
    deterministic across machines) and a wall-clock {e deadline}
    (monotonic, machine-dependent).  Hot loops call {!poll} with the
    cost of the work they are about to do; once either limit trips the
    budget is {e sticky-dead} — every later poll answers [false]
    immediately, so a loop deep in a recursion unwinds promptly.

    Exhaustion is a signal, not an exception: each loop that stops
    early records the site via {!note} and returns its best partial
    result, which is how the pipeline assembles a valid mapping even
    when the budget dies mid-strategy. *)

type t

val unlimited : unit -> t
(** A budget that never trips.  Fuel is still metered (see
    {!fuel_used}) so a full run's cost can be measured. *)

val create : ?fuel:int -> ?deadline_ms:float -> unit -> t
(** [create ?fuel ?deadline_ms ()] starts the deadline clock now.
    Omitted limits are unlimited.  A [deadline_ms] of [0.] trips on the
    first poll. *)

val poll : t -> cost:int -> bool
(** [poll b ~cost] charges [cost] fuel units and returns [true] if work
    may continue.  Cheap: the monotonic clock is consulted only every
    few hundred fuel units (and on the first poll, so a zero deadline
    trips immediately).  Once it returns [false] it always will. *)

val exhausted : t -> bool
(** Whether the budget has tripped. *)

val reason : t -> string option
(** Why the budget tripped ("fuel" or "deadline"), if it has. *)

val note : t -> string -> unit
(** [note b site] records that [site] stopped early.  Duplicates are
    collapsed; insertion order is preserved. *)

val truncations : t -> string list
(** Sites recorded by {!note}, in first-noted order. *)

val fuel_used : t -> int
(** Total fuel charged so far, metered even on unlimited budgets. *)

val limited : t -> bool
(** Whether the budget carries any limit at all. *)
