(** Local-search refinement of an embedding (paper §6 anticipates
    "new and improved algorithms" layered on the MAPPER library).

    Pairwise-interchange hill climbing on the NN-Embed objective: try
    swapping the processors of two clusters, or moving a cluster to a
    free processor, and keep any change that lowers the total
    weight × hop-distance of the cluster graph.  Deterministic;
    terminates at a local optimum or after [max_rounds] sweeps. *)

val improve_embedding :
  ?max_rounds:int ->
  ?budget:Budget.t ->
  ?swaps:int ref ->
  ?allowed:(int -> int -> bool) ->
  Oregami_graph.Ugraph.t ->
  Oregami_topology.Topology.t ->
  int array ->
  int array
(** [improve_embedding cg topo proc_of_cluster] returns an embedding
    with objective ≤ the input's ([max_rounds] defaults to 10).
    When [swaps] is given it is incremented once per accepted move or
    swap — the pipeline's per-pass instrumentation.  An exhausted
    [budget] stops the sweep at the current (always-valid) embedding,
    recorded as a ["refine"] truncation.

    [allowed c p] (default everything) filters the processors cluster
    [c] may occupy: moves and swaps that would violate it are skipped,
    so a cluster pinned via a single allowed processor is immobile and
    the result stays {!Constraints}-feasible if the input was. *)

val objective :
  Oregami_graph.Ugraph.t -> Oregami_topology.Topology.t -> int array -> int
(** Alias for {!Nn_embed.weighted_hops}. *)
