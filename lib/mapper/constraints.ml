(* Placement constraints as part of the shared mapping contract (the
   UGRAMM scenario: typed PEs, lock-nodes, skip-placement classes and a
   DRC pass).  A [spec] is what the CLI / service / caller asks for; it
   is compiled once per run against the concrete task graph and
   (possibly degraded, possibly classed) topology into a [t] holding
   dense per-task / per-processor tables plus any spec errors.
   Compilation is total — [Ctx.make] cannot fail — so the pipeline
   checks [errors] up front and every strategy consults the same
   [feasible] predicate. *)

module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology

type spec = {
  pins : (int * int) list;
  forbids : (int * int) list;
  requires : (int * string) list;
  skip_classes : string list;
}

let none = { pins = []; forbids = []; requires = []; skip_classes = [] }

let spec_is_empty s =
  s.pins = [] && s.forbids = [] && s.requires = [] && s.skip_classes = []

type t = {
  n : int;
  nprocs : int;
  active : bool;
  pin_of : int array;  (* task -> processor, -1 when free *)
  require_of : string array;  (* task -> required class, "" when none *)
  forbidden : (int * int, unit) Hashtbl.t;
  proc_class : string array;
  skip : bool array;  (* processor is a skip-placement target *)
  errors : string list;
}

let errors t = t.errors

let active t = t.active

let skip_proc t p = p >= 0 && p < t.nprocs && t.skip.(p)

let required_class t task = t.require_of.(task)

let pinned t task = if t.pin_of.(task) >= 0 then Some t.pin_of.(task) else None

(* the one predicate every strategy and the repair path share *)
let feasible t ~task ~proc =
  proc >= 0 && proc < t.nprocs
  && (not t.skip.(proc))
  && (not (Hashtbl.mem t.forbidden (task, proc)))
  && (t.require_of.(task) = "" || t.require_of.(task) = t.proc_class.(proc))
  && (t.pin_of.(task) < 0 || t.pin_of.(task) = proc)

let compile spec tg topo =
  let n = tg.Taskgraph.n in
  let nprocs = Topology.node_count topo in
  let proc_class = Topology.node_classes topo in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let classes = Topology.class_names topo in
  let classes_s = String.concat ", " classes in
  let task_ok what t =
    if t < 0 || t >= n then begin
      err "%s: task %d out of range (task graph has %d tasks)" what t n;
      false
    end
    else true
  in
  let proc_ok what p =
    if p < 0 || p >= nprocs then begin
      err "%s: processor %d out of range (topology has %d processors)" what p nprocs;
      false
    end
    else true
  in
  let skip = Array.make nprocs false in
  List.iter
    (fun cls ->
      if not (List.mem cls classes) then
        err "skip-placement class %S not present on %s (classes: %s)" cls
          (Topology.name topo) classes_s
      else
        Array.iteri (fun p c -> if c = cls then skip.(p) <- true) proc_class)
    spec.skip_classes;
  (* program-declared requirements first; explicit request-level
     requirements override them *)
  let require_of = Array.copy tg.Taskgraph.node_requires in
  List.iter
    (fun (t, cls) -> if task_ok "require" t then require_of.(t) <- cls)
    spec.requires;
  let missing_classes = Hashtbl.create 4 in
  Array.iteri
    (fun t cls ->
      if cls <> "" && not (Hashtbl.mem missing_classes cls) then begin
        let available =
          Array.exists
            (fun p -> Topology.alive topo p && (not skip.(p)) && proc_class.(p) = cls)
            (Array.init nprocs Fun.id)
        in
        if not available then begin
          Hashtbl.add missing_classes cls ();
          err "task %d requires class %S but no alive placeable processor offers it (classes: %s)"
            t cls classes_s
        end
      end)
    require_of;
  let forbidden = Hashtbl.create (max 16 (List.length spec.forbids)) in
  List.iter
    (fun (t, p) ->
      if task_ok "forbid" t && proc_ok "forbid" p then
        Hashtbl.replace forbidden (t, p) ())
    spec.forbids;
  let pin_of = Array.make n (-1) in
  let pin_target = Hashtbl.create 16 in
  List.iter
    (fun (t, p) ->
      if task_ok "pin" t && proc_ok "pin" p then begin
        if pin_of.(t) >= 0 && pin_of.(t) <> p then
          err "task %d pinned to both processors %d and %d" t pin_of.(t) p
        else begin
          pin_of.(t) <- p;
          if not (Topology.alive topo p) then
            err "task %d pinned to dead processor %d" t p
          else if skip.(p) then
            err "task %d pinned to processor %d of skip-placement class %S" t p
              proc_class.(p)
          else if Hashtbl.mem forbidden (t, p) then
            err "task %d both pinned and forbidden on processor %d" t p
          else if require_of.(t) <> "" && require_of.(t) <> proc_class.(p) then
            err "task %d requires class %S but is pinned to processor %d of class %S" t
              require_of.(t) p proc_class.(p)
          else begin
            (* injective embedding: one cluster per processor, so two
               pinned tasks sharing a processor must form one cluster —
               legal, handled by the projection; nothing to check here *)
            match Hashtbl.find_opt pin_target p with
            | Some _ | None -> Hashtbl.replace pin_target p ()
          end
        end
      end)
    spec.pins;
  let active =
    Array.exists (fun p -> p >= 0) pin_of
    || Array.exists (fun c -> c <> "") require_of
    || Hashtbl.length forbidden > 0
    || Array.exists Fun.id skip
  in
  {
    n;
    nprocs;
    active;
    pin_of;
    require_of;
    forbidden;
    proc_class;
    skip;
    errors = List.rev !errs;
  }

(* ------------------------------------------------------------------ *)
(* DRC: named design-rule violations over a per-task assignment        *)

type violation = { vi_task : int; vi_proc : int; vi_rule : string }

let violation_to_string v =
  Printf.sprintf "task %d on processor %d violates %s" v.vi_task v.vi_proc v.vi_rule

let drc t assignment =
  let out = ref [] in
  let add vi_task vi_proc vi_rule = out := { vi_task; vi_proc; vi_rule } :: !out in
  Array.iteri
    (fun task proc ->
      if t.pin_of.(task) >= 0 && t.pin_of.(task) <> proc then
        add task proc (Printf.sprintf "pin (task pinned to processor %d)" t.pin_of.(task));
      if Hashtbl.mem t.forbidden (task, proc) then add task proc "forbid";
      if t.require_of.(task) <> "" && t.require_of.(task) <> t.proc_class.(proc) then
        add task proc
          (Printf.sprintf "require-class (needs %S, processor is %S)" t.require_of.(task)
             t.proc_class.(proc));
      if proc >= 0 && proc < t.nprocs && t.skip.(proc) then
        add task proc
          (Printf.sprintf "skip-class (processor class %S is skip-placement)"
             t.proc_class.(proc)))
    assignment;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* projection onto a candidate's clusters, for the shared embed pass   *)

type projection = {
  pj_fixed : int array;  (* cluster -> processor, -1 when free *)
  pj_require : string array;  (* cluster -> required class, "" when none *)
  pj_forbid : (int * int, unit) Hashtbl.t;  (* (cluster, proc) *)
}

let project t ~clusters ~cluster_of =
  let fixed = Array.make clusters (-1) in
  let req = Array.make clusters "" in
  let forbid = Hashtbl.create (max 16 (Hashtbl.length t.forbidden)) in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !error = None then error := Some m) fmt in
  Array.iteri
    (fun task c ->
      (match t.pin_of.(task) with
      | -1 -> ()
      | p ->
        if fixed.(c) >= 0 && fixed.(c) <> p then
          fail "cluster %d merges tasks pinned to processors %d and %d" c fixed.(c) p
        else fixed.(c) <- p);
      let r = t.require_of.(task) in
      if r <> "" then begin
        if req.(c) <> "" && req.(c) <> r then
          fail "cluster %d merges tasks requiring classes %S and %S" c req.(c) r
        else req.(c) <- r
      end)
    cluster_of;
  Hashtbl.iter (fun (task, p) () -> Hashtbl.replace forbid (cluster_of.(task), p) ())
    t.forbidden;
  (* two clusters pinned to one processor breaks the injective
     embedding before any placement runs *)
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun c p ->
      if p >= 0 then begin
        (match Hashtbl.find_opt seen p with
        | Some c' -> fail "clusters %d and %d are both pinned to processor %d" c' c p
        | None -> Hashtbl.replace seen p c);
        if Hashtbl.mem forbid (c, p) then
          fail "cluster %d is pinned to processor %d but a member task forbids it" c p;
        if req.(c) <> "" && req.(c) <> t.proc_class.(p) then
          fail "cluster %d requires class %S but is pinned to processor %d of class %S" c
            req.(c) p t.proc_class.(p)
      end)
    fixed;
  match !error with
  | Some e -> Error e
  | None -> Ok { pj_fixed = fixed; pj_require = req; pj_forbid = forbid }

let cluster_allowed t pj cluster proc =
  proc >= 0 && proc < t.nprocs
  && (not t.skip.(proc))
  && (not (Hashtbl.mem pj.pj_forbid (cluster, proc)))
  && (pj.pj_require.(cluster) = "" || pj.pj_require.(cluster) = t.proc_class.(proc))
  && (pj.pj_fixed.(cluster) < 0 || pj.pj_fixed.(cluster) = proc)

(* ------------------------------------------------------------------ *)
(* spec notation shared by the CLI and the request service             *)

let parse_pair what s =
  let split =
    match String.index_opt s '=' with
    | Some i -> Some i
    | None -> String.index_opt s ':'
  in
  match split with
  | None -> Error (Printf.sprintf "bad %s %S (want TASK=%s)" what s
                     (if what = "require" then "CLASS" else "PROC"))
  | Some i ->
    let a = String.sub s 0 i and b = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt a with
    | None -> Error (Printf.sprintf "bad %s %S: task %S is not an integer" what s a)
    | Some t -> Ok (t, b))

let parse_task_proc what s =
  match parse_pair what s with
  | Error _ as e -> e
  | Ok (t, b) -> begin
    match int_of_string_opt b with
    | None -> Error (Printf.sprintf "bad %s %S: processor %S is not an integer" what s b)
    | Some p -> Ok (t, p)
  end

let parse_list item s =
  let parts = String.split_on_char ',' s |> List.filter (fun x -> x <> "") in
  List.fold_left
    (fun acc p ->
      match (acc, item p) with
      | (Error _ as e), _ -> e
      | Ok l, Ok x -> Ok (x :: l)
      | Ok _, (Error _ as e) -> e)
    (Ok []) parts
  |> Result.map List.rev

let parse_pins s = parse_list (parse_task_proc "pin") s

let parse_forbids s = parse_list (parse_task_proc "forbid") s

let parse_requires s = parse_list (parse_pair "require") s

let describe spec =
  let pair (t, p) = Printf.sprintf "%d=%d" t p in
  let rq (t, c) = Printf.sprintf "%d=%s" t c in
  String.concat " "
    (List.concat
       [
         (if spec.pins = [] then []
          else [ "pin " ^ String.concat "," (List.map pair spec.pins) ]);
         (if spec.forbids = [] then []
          else [ "forbid " ^ String.concat "," (List.map pair spec.forbids) ]);
         (if spec.requires = [] then []
          else [ "require " ^ String.concat "," (List.map rq spec.requires) ]);
         (if spec.skip_classes = [] then []
          else [ "skip " ^ String.concat "," spec.skip_classes ]);
       ])
