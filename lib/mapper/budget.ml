type t = {
  fuel_cap : int; (* max_int = unlimited *)
  deadline : float; (* monotonic seconds; infinity = unlimited *)
  mutable fuel_used : int;
  mutable until_clock : int; (* fuel units until the next clock check *)
  mutable dead : string option;
  mutable noted_rev : string list;
}

(* Checking the monotonic clock on every poll would dominate the very
   loops the budget protects; amortise it over this many fuel units. *)
let clock_stride = 512

let make ~fuel_cap ~deadline =
  {
    fuel_cap;
    deadline;
    fuel_used = 0;
    (* First poll consults the clock immediately so deadline-0 budgets
       trip before any real work happens. *)
    until_clock = 0;
    dead = None;
    noted_rev = [];
  }

let unlimited () = make ~fuel_cap:max_int ~deadline:infinity

let create ?fuel ?deadline_ms () =
  let fuel_cap = match fuel with Some f -> max 0 f | None -> max_int in
  let deadline =
    match deadline_ms with
    | Some ms -> Oregami_prelude.Clock.now () +. (ms /. 1e3)
    | None -> infinity
  in
  make ~fuel_cap ~deadline

let limited b = b.fuel_cap <> max_int || b.deadline < infinity

let poll b ~cost =
  b.fuel_used <- b.fuel_used + cost;
  match b.dead with
  | Some _ -> false
  | None ->
      if b.fuel_used > b.fuel_cap then (
        b.dead <- Some "fuel";
        false)
      else begin
        b.until_clock <- b.until_clock - cost;
        if b.until_clock > 0 then true
        else begin
          b.until_clock <- clock_stride;
          if b.deadline < infinity && Oregami_prelude.Clock.now () > b.deadline
          then (
            b.dead <- Some "deadline";
            false)
          else true
        end
      end

let exhausted b = b.dead <> None

let reason b = b.dead

let note b site =
  if not (List.mem site b.noted_rev) then b.noted_rev <- site :: b.noted_rev

let truncations b = List.rev b.noted_rev

let fuel_used b = b.fuel_used
