(** The multilevel coarsen → map → refine tier.

    The flat strategies (MWM-Contract, KL, Stone, tiled/blocks + NN-
    Embed) are quadratic-ish in the task count; they top out around a
    few thousand tasks.  This tier makes graph size a non-issue the
    standard way (Glantz/Meyerhenke/Noe; Predari et al.): contract
    heavy-edge matchings ({!Oregami_taskgraph.Coarsen}) until at most
    one node per alive processor remains, place the coarsest graph
    (NN-Embed plus pairwise refinement when small enough, the identity
    embedding on the alive processors otherwise), then uncoarsen level
    by level, each time running a delta-evaluated projected refinement:
    every level node considers only the processors its neighbours sit
    on, with O(degree) gain evaluation against the O(1) CSR hop matrix
    of {!Oregami_topology.Distcache}, under a load cap that protects
    the balance the matching weight caps established.

    Budget-aware at every stage (coarsening, placement, refinement all
    poll the {!Budget} and stop early with their best partial answer),
    so the anytime Full/Truncated/Fallback contract holds unchanged.
    Deterministic for a fixed seed: the only randomness is the heavy-
    edge-matching visit order, drawn from the per-run Ctx RNG.

    Registered as ["multilevel"] in {!Strategy.registry}: default-on,
    but it declines graphs that fit the flat sweet spot
    ({!flat_sweet_spot} tasks) unless forced with [--only multilevel],
    so small-graph behaviour (and every golden test) is unchanged. *)

val flat_sweet_spot : int
(** Default largest task count the flat strategies handle comfortably
    (2048) — the default of [Ctx.options.multilevel_threshold], which
    is what {!available} and the flat gates actually consult
    ([--multilevel-threshold] tunes it); at or below it the tier
    declines unless explicitly selected. *)

type t = {
  ml_cluster_of : int array;  (** task → dense cluster id *)
  ml_proc_of_cluster : int array;  (** cluster → processor, injective *)
  ml_levels : int;  (** hierarchy depth, finest included *)
}

val available : Ctx.t -> (unit, string) result

val run : Ctx.t -> (t, string) result
(** Records per-level node counts, matching rounds, and refinement
    moves/gains on the Ctx stats sink ({!Stats.bump});
    [Strategy.registry] wraps the result into a [Placed] candidate
    labelled ["multilevel"]. *)
