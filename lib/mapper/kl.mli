(** Kernighan–Lin graph partitioning — the classical contraction
    baseline contemporary with the paper, used in the ablation against
    Algorithm MWM-Contract.

    Balanced bipartitioning by pass-based pair swapping; multiway
    partitions by recursive bisection. *)

val bipartition : ?budget:Budget.t -> Oregami_graph.Ugraph.t -> int array
(** [bipartition g] splits the nodes into two halves (sizes differing
    by at most one) with locally minimal cut weight; result is a 0/1
    side array.  Deterministic (initial split by node id). *)

val cut_weight : Oregami_graph.Ugraph.t -> int array -> int
(** Total weight of edges whose endpoints carry different values. *)

val partition :
  ?budget:Budget.t -> Oregami_graph.Ugraph.t -> parts:int -> int array
(** Recursive bisection into [parts] clusters ([parts ≥ 1]; non-powers
    of two are handled by uneven recursion).  Cluster ids are dense,
    numbered by smallest member.

    An exhausted [budget] skips the remaining KL improvement passes
    (recorded as a ["kl"] truncation); the recursion still yields a
    balanced, dense partition — the initial even splits. *)
