module Taskgraph = Oregami_taskgraph.Taskgraph
module Distcache = Oregami_topology.Distcache
module Ugraph = Oregami_graph.Ugraph
module Clock = Oregami_prelude.Clock

let now () = Clock.now ()

(* embedding pass: candidates that carry no placement get NN-Embed on
   their cluster graph, then pairwise-interchange refinement *)
let place ctx (cand : Strategy.candidate) =
  match cand.Strategy.placement with
  | Strategy.Placed proc_of_cluster -> proc_of_cluster
  | Strategy.Embed ->
    let t0 = now () in
    let cg = Ugraph.create cand.Strategy.clusters in
    List.iter
      (fun (u, v, w) ->
        let cu = cand.Strategy.cluster_of.(u) and cv = cand.Strategy.cluster_of.(v) in
        if cu <> cv then Ugraph.add_edge ~w cg cu cv)
      (Ugraph.edges (Ctx.static ctx));
    let budget = ctx.Ctx.budget in
    let proc_of_cluster = Nn_embed.embed ~budget cg ctx.Ctx.topo in
    let result =
      if ctx.Ctx.options.Ctx.refine then begin
        let swaps = ref 0 in
        let refined =
          Refine.improve_embedding ~budget ~swaps cg ctx.Ctx.topo proc_of_cluster
        in
        Stats.add_refine_swaps ctx.Ctx.stats !swaps;
        refined
      end
      else proc_of_cluster
    in
    Stats.add_phase_seconds ctx.Ctx.stats "embed" (now () -. t0);
    result

(* routing pass + structural validation *)
let finish ctx (cand : Strategy.candidate) proc_of_cluster =
  let tg = ctx.Ctx.tg in
  let n = tg.Taskgraph.n in
  let cluster_of = cand.Strategy.cluster_of in
  let proc_of_task = Array.init n (fun t -> proc_of_cluster.(cluster_of.(t))) in
  let t0 = now () in
  let routings =
    match ctx.Ctx.options.Ctx.routing with
    | Ctx.Mm_route ->
      let routings, rstats =
        Route.mm_route ~budget:ctx.Ctx.budget ~cap:ctx.Ctx.options.Ctx.route_cap tg
          ctx.Ctx.topo ~proc_of_task
      in
      Stats.add_matching_rounds ctx.Ctx.stats
        (List.fold_left (fun acc (_, rounds) -> acc + rounds) 0 rstats.Route.phases);
      routings
    | Ctx.Oblivious -> Route.deterministic_route tg ctx.Ctx.topo ~proc_of_task
  in
  Stats.add_phase_seconds ctx.Ctx.stats "route" (now () -. t0);
  let m =
    {
      Mapping.tg;
      topo = ctx.Ctx.topo;
      cluster_of;
      proc_of_cluster;
      routings;
      strategy = cand.Strategy.label;
    }
  in
  match Mapping.validate m with
  | Ok () -> Ok m
  | Error e -> Error ("mapping failed validation: " ^ e)

(* run one strategy: circuit breaker, budget, and availability gates,
   then timed production under the exception barrier; every outcome —
   including a crash — lands in the stats sink *)
let run_strategy ctx (s : Strategy.t) =
  let stats = ctx.Ctx.stats in
  let name = s.Strategy.name in
  let skip reason =
    Stats.record_attempt stats ~strategy:name ~outcome:(Stats.Skipped reason)
      ~seconds:0.0;
    []
  in
  match Isolate.admit ctx.Ctx.breaker name with
  | Error reason -> skip reason
  | Ok () ->
    if Budget.exhausted ctx.Ctx.budget then
      skip
        (Printf.sprintf "budget exhausted (%s)"
           (Option.value ~default:"?" (Budget.reason ctx.Ctx.budget)))
    else begin
      match s.Strategy.available ctx with
      | Error reason -> skip reason
      | Ok () -> begin
        let t0 = now () in
        let produced = Isolate.protect (fun () -> s.Strategy.produce ctx) in
        let dt = now () -. t0 in
        Stats.add_phase_seconds stats "produce" dt;
        match produced with
        | Error exn ->
          Isolate.fail ctx.Ctx.breaker name;
          Stats.record_attempt stats ~strategy:name ~outcome:(Stats.Crashed exn)
            ~seconds:dt;
          []
        | Ok produced -> begin
          Isolate.succeed ctx.Ctx.breaker name;
          match produced with
          | Error reason ->
            Stats.record_attempt stats ~strategy:name
              ~outcome:(Stats.Rejected reason) ~seconds:dt;
            []
          | Ok [] ->
            Stats.record_attempt stats ~strategy:name
              ~outcome:(Stats.Rejected "produced no candidates") ~seconds:dt;
            []
          | Ok cands ->
            Stats.record_attempt stats ~strategy:name
              ~outcome:(Stats.Produced (List.length cands)) ~seconds:dt;
            List.map (fun c -> (s.Strategy.name, c)) cands
        end
      end
    end

let no_strategy_error stats =
  match Stats.rejections stats with
  | [] -> "no mapping strategy was selected"
  | rs ->
    "no mapping strategy produced a valid candidate: "
    ^ String.concat "; " (List.map (fun (s, r) -> s ^ ": " ^ r) rs)

(* the last-resort placement: balanced consecutive blocks on the alive
   processors — O(n), needs no analysis, valid whenever the (possibly
   degraded) machine is still connected *)
let fallback_candidate ctx =
  let n = ctx.Ctx.tg.Taskgraph.n in
  let cluster_of, proc_of_cluster = Baselines.block ~n ~procs:(Ctx.procs ctx) in
  let proc_of_cluster = Array.map (fun c -> ctx.Ctx.alive.(c)) proc_of_cluster in
  {
    Strategy.label = "fallback:block";
    clusters = Array.length proc_of_cluster;
    cluster_of;
    placement = Strategy.Placed proc_of_cluster;
  }

let compete ~score ctx strategies =
  let stats = ctx.Ctx.stats in
  let budget = ctx.Ctx.budget in
  let t0 = now () in
  (* embedding/routing can crash on a malformed candidate just like
     production can; the barrier turns that into an invalid candidate
     instead of a torn-down pipeline *)
  let crashed_pass = ref false in
  let finish_protected cand =
    match Isolate.protect (fun () -> finish ctx cand (place ctx cand)) with
    | Ok r -> r
    | Error exn ->
      crashed_pass := true;
      Error ("crashed: " ^ exn)
  in
  let result =
    let dispatch, competing =
      (* --only means a pure portfolio competition: no short-circuit *)
      if ctx.Ctx.options.Ctx.only <> [] then ([], strategies)
      else List.partition (fun s -> s.Strategy.tier = Strategy.Dispatch) strategies
    in
    let rec first_dispatch = function
      | [] -> None
      | s :: rest -> begin
        match run_strategy ctx s with
        | [] -> first_dispatch rest
        | c :: _ -> Some c
      end
    in
    match first_dispatch dispatch with
    | Some (name, cand) -> begin
      (* dispatch tier short-circuits: route and validate the winner *)
      match finish_protected cand with
      | Ok m ->
        let cr =
          Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
            ~score:None ~ok:true ~note:""
        in
        Stats.mark_winner stats cr;
        Ok m
      | Error e ->
        let (_ : Stats.candidate) =
          Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
            ~score:None ~ok:false ~note:e
        in
        Error e
    end
    | None -> begin
      (* competing tier: embed/route/validate every candidate, judge by
         the completion model, stable minimum (registry order breaks
         ties) — the automated form of the paper's §5 loop *)
      let best = ref None in
      List.iter
        (fun (name, cand) ->
          match finish_protected cand with
          | Error e ->
            let (_ : Stats.candidate) =
              Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
                ~score:None ~ok:false ~note:e
            in
            ()
          | Ok m ->
            let s = score m in
            let cr =
              Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
                ~score:(Some s) ~ok:true ~note:""
            in
            (match !best with
            | Some (best_s, _, _) when best_s <= s -> ()
            | Some _ | None -> best := Some (s, m, cr)))
        (List.concat_map (run_strategy ctx) competing);
      match !best with
      | Some (_, m, cr) ->
        Stats.mark_winner stats cr;
        Ok m
      | None -> Error (no_strategy_error stats)
    end
  in
  (* fallback tier: a mapping request on a connected machine should
     come back with *some* valid mapping even when every strategy
     declined, crashed, or ran out of budget.  Gated so that plain
     unbudgeted runs keep their precise error reporting. *)
  let crashed_produce =
    List.exists
      (fun (a : Stats.attempt) ->
        match a.Stats.at_outcome with Stats.Crashed _ -> true | _ -> false)
      (Stats.attempts stats)
  in
  let fallback_wanted =
    ctx.Ctx.options.Ctx.fallback || Budget.exhausted budget || crashed_produce
    || !crashed_pass
  in
  let fallback_used = ref false in
  let result =
    match result with
    | Ok _ -> result
    | Error _ when fallback_wanted -> begin
      let tf = now () in
      let fb = fallback_candidate ctx in
      let finished = finish_protected fb in
      let dt = now () -. tf in
      Stats.add_phase_seconds stats "fallback" dt;
      match finished with
      | Ok m ->
        Stats.record_attempt stats ~strategy:"fallback"
          ~outcome:(Stats.Produced 1) ~seconds:dt;
        let cr =
          Stats.record_candidate stats ~strategy:"fallback"
            ~label:fb.Strategy.label ~score:None ~ok:true ~note:""
        in
        Stats.mark_winner stats cr;
        fallback_used := true;
        Ok m
      | Error e ->
        Stats.record_attempt stats ~strategy:"fallback"
          ~outcome:(Stats.Rejected e) ~seconds:dt;
        let (_ : Stats.candidate) =
          Stats.record_candidate stats ~strategy:"fallback"
            ~label:fb.Strategy.label ~score:None ~ok:false ~note:e
        in
        Error (no_strategy_error stats)
    end
    | Error _ -> result
  in
  let degradation =
    if !fallback_used then Stats.Fallback
    else
      match Budget.truncations budget with
      | [] ->
        if Budget.exhausted budget then
          Stats.Truncated
            [ Option.value ~default:"budget" (Budget.reason budget) ]
        else Stats.Full
      | sites -> Stats.Truncated sites
  in
  Stats.set_degradation stats degradation;
  Stats.add_seconds stats (now () -. t0);
  Stats.set_hop_builds stats (Distcache.hop_builds ctx.Ctx.topo);
  Result.map (fun m -> (m, degradation)) result
