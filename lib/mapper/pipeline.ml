module Taskgraph = Oregami_taskgraph.Taskgraph
module Distcache = Oregami_topology.Distcache
module Ugraph = Oregami_graph.Ugraph

let now () = Unix.gettimeofday ()

(* embedding pass: candidates that carry no placement get NN-Embed on
   their cluster graph, then pairwise-interchange refinement *)
let place ctx (cand : Strategy.candidate) =
  match cand.Strategy.placement with
  | Strategy.Placed proc_of_cluster -> proc_of_cluster
  | Strategy.Embed ->
    let cg = Ugraph.create cand.Strategy.clusters in
    List.iter
      (fun (u, v, w) ->
        let cu = cand.Strategy.cluster_of.(u) and cv = cand.Strategy.cluster_of.(v) in
        if cu <> cv then Ugraph.add_edge ~w cg cu cv)
      (Ugraph.edges (Ctx.static ctx));
    let proc_of_cluster = Nn_embed.embed cg ctx.Ctx.topo in
    if ctx.Ctx.options.Ctx.refine then begin
      let swaps = ref 0 in
      let refined = Refine.improve_embedding ~swaps cg ctx.Ctx.topo proc_of_cluster in
      Stats.add_refine_swaps ctx.Ctx.stats !swaps;
      refined
    end
    else proc_of_cluster

(* routing pass + structural validation *)
let finish ctx (cand : Strategy.candidate) proc_of_cluster =
  let tg = ctx.Ctx.tg in
  let n = tg.Taskgraph.n in
  let cluster_of = cand.Strategy.cluster_of in
  let proc_of_task = Array.init n (fun t -> proc_of_cluster.(cluster_of.(t))) in
  let routings =
    match ctx.Ctx.options.Ctx.routing with
    | Ctx.Mm_route ->
      let routings, rstats =
        Route.mm_route ~cap:ctx.Ctx.options.Ctx.route_cap tg ctx.Ctx.topo ~proc_of_task
      in
      Stats.add_matching_rounds ctx.Ctx.stats
        (List.fold_left (fun acc (_, rounds) -> acc + rounds) 0 rstats.Route.phases);
      routings
    | Ctx.Oblivious -> Route.deterministic_route tg ctx.Ctx.topo ~proc_of_task
  in
  let m =
    {
      Mapping.tg;
      topo = ctx.Ctx.topo;
      cluster_of;
      proc_of_cluster;
      routings;
      strategy = cand.Strategy.label;
    }
  in
  match Mapping.validate m with
  | Ok () -> Ok m
  | Error e -> Error ("mapping failed validation: " ^ e)

(* run one strategy: availability gate, then timed production; every
   outcome lands in the stats sink *)
let run_strategy ctx (s : Strategy.t) =
  let stats = ctx.Ctx.stats in
  match s.Strategy.available ctx with
  | Error reason ->
    Stats.record_attempt stats ~strategy:s.Strategy.name
      ~outcome:(Stats.Skipped reason) ~seconds:0.0;
    []
  | Ok () -> begin
    let t0 = now () in
    let produced = s.Strategy.produce ctx in
    let dt = now () -. t0 in
    match produced with
    | Error reason ->
      Stats.record_attempt stats ~strategy:s.Strategy.name
        ~outcome:(Stats.Rejected reason) ~seconds:dt;
      []
    | Ok [] ->
      Stats.record_attempt stats ~strategy:s.Strategy.name
        ~outcome:(Stats.Rejected "produced no candidates") ~seconds:dt;
      []
    | Ok cands ->
      Stats.record_attempt stats ~strategy:s.Strategy.name
        ~outcome:(Stats.Produced (List.length cands)) ~seconds:dt;
      List.map (fun c -> (s.Strategy.name, c)) cands
  end

let no_strategy_error stats =
  match Stats.rejections stats with
  | [] -> "no mapping strategy was selected"
  | rs ->
    "no mapping strategy produced a valid candidate: "
    ^ String.concat "; " (List.map (fun (s, r) -> s ^ ": " ^ r) rs)

let compete ~score ctx strategies =
  let stats = ctx.Ctx.stats in
  let t0 = now () in
  let result =
    let dispatch, competing =
      (* --only means a pure portfolio competition: no short-circuit *)
      if ctx.Ctx.options.Ctx.only <> [] then ([], strategies)
      else List.partition (fun s -> s.Strategy.tier = Strategy.Dispatch) strategies
    in
    let rec first_dispatch = function
      | [] -> None
      | s :: rest -> begin
        match run_strategy ctx s with
        | [] -> first_dispatch rest
        | c :: _ -> Some c
      end
    in
    match first_dispatch dispatch with
    | Some (name, cand) -> begin
      (* dispatch tier short-circuits: route and validate the winner *)
      match finish ctx cand (place ctx cand) with
      | Ok m ->
        let cr =
          Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
            ~score:None ~ok:true ~note:""
        in
        Stats.mark_winner stats cr;
        Ok m
      | Error e ->
        let (_ : Stats.candidate) =
          Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
            ~score:None ~ok:false ~note:e
        in
        Error e
    end
    | None -> begin
      (* competing tier: embed/route/validate every candidate, judge by
         the completion model, stable minimum (registry order breaks
         ties) — the automated form of the paper's §5 loop *)
      let best = ref None in
      List.iter
        (fun (name, cand) ->
          match finish ctx cand (place ctx cand) with
          | Error e ->
            let (_ : Stats.candidate) =
              Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
                ~score:None ~ok:false ~note:e
            in
            ()
          | Ok m ->
            let s = score m in
            let cr =
              Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
                ~score:(Some s) ~ok:true ~note:""
            in
            (match !best with
            | Some (best_s, _, _) when best_s <= s -> ()
            | Some _ | None -> best := Some (s, m, cr)))
        (List.concat_map (run_strategy ctx) competing);
      match !best with
      | Some (_, m, cr) ->
        Stats.mark_winner stats cr;
        Ok m
      | None -> Error (no_strategy_error stats)
    end
  in
  Stats.add_seconds stats (now () -. t0);
  Stats.set_hop_builds stats (Distcache.hop_builds ctx.Ctx.topo);
  result
