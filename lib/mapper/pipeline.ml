module Taskgraph = Oregami_taskgraph.Taskgraph
module Distcache = Oregami_topology.Distcache
module Ugraph = Oregami_graph.Ugraph
module Clock = Oregami_prelude.Clock

let now () = Clock.now ()

(* embedding pass: candidates that carry no placement get NN-Embed on
   their cluster graph, then pairwise-interchange refinement.  With
   constraints active the per-task rules are projected onto the
   candidate's clusters (a cluster merging incompatible tasks rejects
   the candidate by name) and both passes run filtered; the
   unconstrained path is bit-identical to the historical one. *)
let place ctx (cand : Strategy.candidate) =
  match cand.Strategy.placement with
  | Strategy.Placed proc_of_cluster ->
    (* strategies that place directly answer for feasibility
       themselves; the DRC in [finish] catches any violation *)
    (* record the pass anyway so --explain shows all four pass
       timings; adopting a direct placement costs nothing *)
    Stats.add_phase_seconds ctx.Ctx.stats "place" 0.0;
    Ok proc_of_cluster
  | Strategy.Embed ->
    let t0 = now () in
    let cg = Ugraph.create cand.Strategy.clusters in
    List.iter
      (fun (u, v, w) ->
        let cu = cand.Strategy.cluster_of.(u) and cv = cand.Strategy.cluster_of.(v) in
        if cu <> cv then Ugraph.add_edge ~w cg cu cv)
      (Ugraph.edges (Ctx.static ctx));
    let budget = ctx.Ctx.budget in
    let result =
      if not (Ctx.constrained ctx) then begin
        let proc_of_cluster = Nn_embed.embed ~budget cg ctx.Ctx.topo in
        if ctx.Ctx.options.Ctx.refine then begin
          let swaps = ref 0 in
          let refined =
            Refine.improve_embedding ~budget ~swaps cg ctx.Ctx.topo proc_of_cluster
          in
          Stats.add_refine_swaps ctx.Ctx.stats !swaps;
          Ok refined
        end
        else Ok proc_of_cluster
      end
      else begin
        let cons = ctx.Ctx.constraints in
        match
          Constraints.project cons ~clusters:cand.Strategy.clusters
            ~cluster_of:cand.Strategy.cluster_of
        with
        | Error e -> Error e
        | Ok pj -> begin
          let allowed = Constraints.cluster_allowed cons pj in
          match
            Nn_embed.embed ~budget ~fixed:pj.Constraints.pj_fixed ~allowed cg
              ctx.Ctx.topo
          with
          | exception Nn_embed.Infeasible msg -> Error ("embedding infeasible: " ^ msg)
          | proc_of_cluster ->
            if ctx.Ctx.options.Ctx.refine then begin
              let swaps = ref 0 in
              let refined =
                Refine.improve_embedding ~budget ~swaps ~allowed cg ctx.Ctx.topo
                  proc_of_cluster
              in
              Stats.add_refine_swaps ctx.Ctx.stats !swaps;
              Ok refined
            end
            else Ok proc_of_cluster
        end
      end
    in
    Stats.add_phase_seconds ctx.Ctx.stats "embed" (now () -. t0);
    result

(* routing pass + structural validation *)
let finish ctx (cand : Strategy.candidate) proc_of_cluster =
  let tg = ctx.Ctx.tg in
  let n = tg.Taskgraph.n in
  let cluster_of = cand.Strategy.cluster_of in
  let proc_of_task = Array.init n (fun t -> proc_of_cluster.(cluster_of.(t))) in
  let t0 = now () in
  let routings =
    match Ctx.resolve_routing ctx with
    | Ctx.Mm_route ->
      let routings, rstats =
        Route.mm_route ~budget:ctx.Ctx.budget ~cap:ctx.Ctx.options.Ctx.route_cap tg
          ctx.Ctx.topo ~proc_of_task
      in
      Stats.add_matching_rounds ctx.Ctx.stats
        (List.fold_left (fun acc (_, rounds) -> acc + rounds) 0 rstats.Route.phases);
      routings
    | Ctx.Coarse ->
      let routings, cstats =
        Route.coarse_route ~budget:ctx.Ctx.budget
          ~cap:ctx.Ctx.options.Ctx.route_cap ~jobs:ctx.Ctx.options.Ctx.jobs tg
          ctx.Ctx.topo ~proc_of_task
      in
      Stats.add_matching_rounds ctx.Ctx.stats
        (List.fold_left
           (fun acc (_, rounds) -> acc + rounds)
           0 cstats.Route.co_phases);
      Stats.bump ctx.Ctx.stats "coarse route pairs" cstats.Route.co_pairs;
      Stats.bump ctx.Ctx.stats "coarse route messages" cstats.Route.co_messages;
      routings
    | Ctx.Oblivious -> Route.deterministic_route tg ctx.Ctx.topo ~proc_of_task
    | Ctx.Auto -> assert false (* resolve_routing never returns Auto *)
  in
  Stats.add_phase_seconds ctx.Ctx.stats "route" (now () -. t0);
  let m =
    {
      Mapping.tg;
      topo = ctx.Ctx.topo;
      cluster_of;
      proc_of_cluster;
      routings;
      strategy = cand.Strategy.label;
    }
  in
  let constraints =
    if Ctx.constrained ctx then Some ctx.Ctx.constraints else None
  in
  let tv = now () in
  let validated = Mapping.validate ?constraints m in
  Stats.add_phase_seconds ctx.Ctx.stats "validate" (now () -. tv);
  match validated with
  | Ok () -> Ok m
  | Error e -> Error ("mapping failed validation: " ^ e)

(* run one strategy: circuit breaker, budget, and availability gates,
   then timed production under the exception barrier; every outcome —
   including a crash — lands in the stats sink *)
let run_strategy ctx (s : Strategy.t) =
  let stats = ctx.Ctx.stats in
  let name = s.Strategy.name in
  let skip reason =
    Stats.record_attempt stats ~strategy:name ~outcome:(Stats.Skipped reason)
      ~seconds:0.0;
    []
  in
  match Isolate.admit ctx.Ctx.breaker name with
  | Error reason -> skip reason
  | Ok () ->
    if Budget.exhausted ctx.Ctx.budget then
      skip
        (Printf.sprintf "budget exhausted (%s)"
           (Option.value ~default:"?" (Budget.reason ctx.Ctx.budget)))
    else begin
      match s.Strategy.available ctx with
      | Error reason -> skip reason
      | Ok () -> begin
        let t0 = now () in
        let produced = Isolate.protect (fun () -> s.Strategy.produce ctx) in
        let dt = now () -. t0 in
        Stats.add_phase_seconds stats "produce" dt;
        match produced with
        | Error exn ->
          Isolate.fail ctx.Ctx.breaker name;
          Stats.record_attempt stats ~strategy:name ~outcome:(Stats.Crashed exn)
            ~seconds:dt;
          []
        | Ok produced -> begin
          Isolate.succeed ctx.Ctx.breaker name;
          match produced with
          | Error reason ->
            Stats.record_attempt stats ~strategy:name
              ~outcome:(Stats.Rejected reason) ~seconds:dt;
            []
          | Ok [] ->
            Stats.record_attempt stats ~strategy:name
              ~outcome:(Stats.Rejected "produced no candidates") ~seconds:dt;
            []
          | Ok cands ->
            Stats.record_attempt stats ~strategy:name
              ~outcome:(Stats.Produced (List.length cands)) ~seconds:dt;
            List.map (fun c -> (s.Strategy.name, c)) cands
        end
      end
    end

let no_strategy_error stats =
  match Stats.rejections stats with
  | [] -> "no mapping strategy was selected"
  | rs ->
    "no mapping strategy produced a valid candidate: "
    ^ String.concat "; " (List.map (fun (s, r) -> s ^ ": " ^ r) rs)

(* the last-resort placement: balanced consecutive blocks on the alive
   processors — O(n), needs no analysis, valid whenever the (possibly
   degraded) machine is still connected.  Under constraints the blocks
   become a greedy feasible assignment: pins first, then each task on
   the least-loaded feasible placeable processor (soft cap ⌈n/p⌉ keeps
   it balanced); no feasible processor rejects the fallback by name. *)
let fallback_candidate ctx =
  let n = ctx.Ctx.tg.Taskgraph.n in
  if not (Ctx.constrained ctx) then begin
    let cluster_of, proc_of_cluster = Baselines.block ~n ~procs:(Ctx.procs ctx) in
    let proc_of_cluster = Array.map (fun c -> ctx.Ctx.alive.(c)) proc_of_cluster in
    Ok
      {
        Strategy.label = "fallback:block";
        clusters = Array.length proc_of_cluster;
        cluster_of;
        placement = Strategy.Placed proc_of_cluster;
      }
  end
  else begin
    let cons = ctx.Ctx.constraints in
    let placeable = ctx.Ctx.placeable in
    let p = Array.length placeable in
    if p = 0 then Error "fallback: no placeable processors"
    else begin
      let cap = (n + p - 1) / p in
      let nprocs = Oregami_topology.Topology.node_count ctx.Ctx.topo in
      let load = Array.make nprocs 0 in
      let proc_of_task = Array.make n (-1) in
      let feasible t pr = Constraints.feasible cons ~task:t ~proc:pr in
      (* pins first so pinned processors carry their load before the
         balance scan considers them *)
      for t = 0 to n - 1 do
        match Constraints.pinned cons t with
        | Some pr ->
          proc_of_task.(t) <- pr;
          load.(pr) <- load.(pr) + 1
        | None -> ()
      done;
      let err = ref None in
      for t = 0 to n - 1 do
        if !err = None && proc_of_task.(t) = -1 then begin
          (* least-loaded feasible placeable processor, under the soft
             cap when possible; smallest id breaks ties *)
          let best = ref (-1) and best_load = ref max_int in
          let capped = ref (-1) and capped_load = ref max_int in
          Array.iter
            (fun pr ->
              if feasible t pr then begin
                if load.(pr) < !best_load then begin
                  best := pr;
                  best_load := load.(pr)
                end;
                if load.(pr) < cap && load.(pr) < !capped_load then begin
                  capped := pr;
                  capped_load := load.(pr)
                end
              end)
            placeable;
          let choice = if !capped <> -1 then !capped else !best in
          if choice = -1 then
            err :=
              Some (Printf.sprintf "fallback: no feasible processor for task %d" t)
          else begin
            proc_of_task.(t) <- choice;
            load.(choice) <- load.(choice) + 1
          end
        end
      done;
      match !err with
      | Some e -> Error e
      | None ->
        (* dense clusters grouped by processor — injective by
           construction *)
        let ids = Hashtbl.create (min (2 * p) 4096) in
        let cluster_of =
          Array.map
            (fun pr ->
              match Hashtbl.find_opt ids pr with
              | Some c -> c
              | None ->
                let c = Hashtbl.length ids in
                Hashtbl.add ids pr c;
                c)
            proc_of_task
        in
        let proc_of_cluster = Array.make (Hashtbl.length ids) 0 in
        Hashtbl.iter (fun pr c -> proc_of_cluster.(c) <- pr) ids;
        Ok
          {
            Strategy.label = "fallback:greedy-feasible";
            clusters = Array.length proc_of_cluster;
            cluster_of;
            placement = Strategy.Placed proc_of_cluster;
          }
    end
  end

let compete ~score ctx strategies =
  let stats = ctx.Ctx.stats in
  let budget = ctx.Ctx.budget in
  let t0 = now () in
  (* embedding/routing can crash on a malformed candidate just like
     production can; the barrier turns that into an invalid candidate
     instead of a torn-down pipeline *)
  let crashed_pass = ref false in
  let finish_protected cand =
    match
      Isolate.protect (fun () ->
          match place ctx cand with
          | Ok proc_of_cluster -> finish ctx cand proc_of_cluster
          | Error e -> Error e)
    with
    | Ok r -> r
    | Error exn ->
      crashed_pass := true;
      Error ("crashed: " ^ exn)
  in
  (* a malformed constraint spec fails the whole run up front — every
     strategy (and the fallback) would reject or mis-place against it *)
  let spec_errors = Constraints.errors ctx.Ctx.constraints in
  let result =
    match spec_errors with
    | e :: _ as es ->
      let extra =
        match List.length es with 1 -> "" | k -> Printf.sprintf " (and %d more)" (k - 1)
      in
      Error ("invalid constraints: " ^ e ^ extra)
    | [] ->
    let dispatch, competing =
      (* --only means a pure portfolio competition: no short-circuit *)
      if ctx.Ctx.options.Ctx.only <> [] then ([], strategies)
      else List.partition (fun s -> s.Strategy.tier = Strategy.Dispatch) strategies
    in
    let rec first_dispatch = function
      | [] -> None
      | s :: rest -> begin
        match run_strategy ctx s with
        | [] -> first_dispatch rest
        | c :: _ -> Some c
      end
    in
    match first_dispatch dispatch with
    | Some (name, cand) -> begin
      (* dispatch tier short-circuits: route and validate the winner *)
      match finish_protected cand with
      | Ok m ->
        let cr =
          Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
            ~score:None ~ok:true ~note:""
        in
        Stats.mark_winner stats cr;
        Ok m
      | Error e ->
        let (_ : Stats.candidate) =
          Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
            ~score:None ~ok:false ~note:e
        in
        Error e
    end
    | None -> begin
      (* competing tier: embed/route/validate every candidate, judge by
         the completion model, stable minimum (registry order breaks
         ties) — the automated form of the paper's §5 loop *)
      let best = ref None in
      List.iter
        (fun (name, cand) ->
          match finish_protected cand with
          | Error e ->
            let (_ : Stats.candidate) =
              Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
                ~score:None ~ok:false ~note:e
            in
            ()
          | Ok m ->
            let s = score m in
            let cr =
              Stats.record_candidate stats ~strategy:name ~label:cand.Strategy.label
                ~score:(Some s) ~ok:true ~note:""
            in
            (match !best with
            | Some (best_s, _, _) when best_s <= s -> ()
            | Some _ | None -> best := Some (s, m, cr)))
        (List.concat_map (run_strategy ctx) competing);
      match !best with
      | Some (_, m, cr) ->
        Stats.mark_winner stats cr;
        Ok m
      | None -> Error (no_strategy_error stats)
    end
  in
  (* fallback tier: a mapping request on a connected machine should
     come back with *some* valid mapping even when every strategy
     declined, crashed, or ran out of budget.  Gated so that plain
     unbudgeted runs keep their precise error reporting. *)
  let crashed_produce =
    List.exists
      (fun (a : Stats.attempt) ->
        match a.Stats.at_outcome with Stats.Crashed _ -> true | _ -> false)
      (Stats.attempts stats)
  in
  let fallback_wanted =
    spec_errors = []
    && (ctx.Ctx.options.Ctx.fallback || Budget.exhausted budget || crashed_produce
       || !crashed_pass)
  in
  let fallback_used = ref false in
  let result =
    match result with
    | Ok _ -> result
    | Error _ when fallback_wanted -> begin
      let tf = now () in
      match fallback_candidate ctx with
      | Error e ->
        Stats.record_attempt stats ~strategy:"fallback" ~outcome:(Stats.Rejected e)
          ~seconds:(now () -. tf);
        Error (no_strategy_error stats)
      | Ok fb -> begin
        let finished = finish_protected fb in
        let dt = now () -. tf in
        Stats.add_phase_seconds stats "fallback" dt;
        match finished with
        | Ok m ->
          Stats.record_attempt stats ~strategy:"fallback"
            ~outcome:(Stats.Produced 1) ~seconds:dt;
          let cr =
            Stats.record_candidate stats ~strategy:"fallback"
              ~label:fb.Strategy.label ~score:None ~ok:true ~note:""
          in
          Stats.mark_winner stats cr;
          fallback_used := true;
          Ok m
        | Error e ->
          Stats.record_attempt stats ~strategy:"fallback"
            ~outcome:(Stats.Rejected e) ~seconds:dt;
          let (_ : Stats.candidate) =
            Stats.record_candidate stats ~strategy:"fallback"
              ~label:fb.Strategy.label ~score:None ~ok:false ~note:e
          in
          Error (no_strategy_error stats)
      end
    end
    | Error _ -> result
  in
  let degradation =
    if !fallback_used then Stats.Fallback
    else
      match Budget.truncations budget with
      | [] ->
        if Budget.exhausted budget then
          Stats.Truncated
            [ Option.value ~default:"budget" (Budget.reason budget) ]
        else Stats.Full
      | sites -> Stats.Truncated sites
  in
  Stats.set_degradation stats degradation;
  Stats.add_seconds stats (now () -. t0);
  Stats.set_hop_builds stats (Distcache.hop_builds ctx.Ctx.topo);
  Result.map (fun m -> (m, degradation)) result
