(** The mapping pipeline: run a strategy selection over a shared
    {!Ctx.t}, compose each candidate with the embedding, refinement,
    and routing passes, judge the survivors, and keep the best mapping.

    Semantics (exactly the seed driver's Fig 3 dispatch under default
    options):

    - [Dispatch]-tier strategies are tried in registry order; the first
      one that produces a candidate wins outright (no scoring).
    - Otherwise every [Compete]-tier candidate is embedded
      (NN-Embed + pairwise-interchange refinement for [Embed]
      placements), routed (MM-Route or the oblivious router), validated,
      and scored with [score] (the driver passes the METRICS
      completion-time model); the best score wins, ties broken by
      registry order then emission order.
    - When [ctx.options.only] is non-empty the dispatch tier is
      disabled and {e all} selected strategies compete on score — the
      portfolio-ablation mode.

    Every pass reports into [ctx.stats]: attempts with
    produced/rejected/skipped outcomes and wall time, candidate scores
    and validity, MM-Route matching rounds, refinement swaps, and the
    topology's {!Oregami_topology.Distcache} hop-matrix build count.

    The scoring function is a parameter (rather than a call into
    METRICS) because [oregami_metrics] sits above this library in the
    dependency order. *)

val place : Ctx.t -> Strategy.candidate -> int array
(** The embedding pass: a [Placed] candidate's own placement, or
    NN-Embed over the candidate's cluster graph followed by
    pairwise-interchange refinement when [ctx.options.refine] — swap
    counts land in [ctx.stats]. *)

val finish :
  Ctx.t -> Strategy.candidate -> int array -> (Mapping.t, string) result
(** The routing pass: route the placed candidate with the configured
    router (recording matching rounds) and validate the mapping. *)

val compete :
  score:(Mapping.t -> int) ->
  Ctx.t ->
  Strategy.t list ->
  (Mapping.t, string) result
(** Run the full pipeline.  [Error] carries an aggregate of every
    strategy's rejection reason (also available structured via
    [Stats.rejections ctx.stats]). *)
