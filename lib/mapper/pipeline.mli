(** The mapping pipeline: run a strategy selection over a shared
    {!Ctx.t}, compose each candidate with the embedding, refinement,
    and routing passes, judge the survivors, and keep the best mapping.

    Semantics (exactly the seed driver's Fig 3 dispatch under default
    options):

    - [Dispatch]-tier strategies are tried in registry order; the first
      one that produces a candidate wins outright (no scoring).
    - Otherwise every [Compete]-tier candidate is embedded
      (NN-Embed + pairwise-interchange refinement for [Embed]
      placements), routed (MM-Route or the oblivious router), validated,
      and scored with [score] (the driver passes the METRICS
      completion-time model); the best score wins, ties broken by
      registry order then emission order.
    - When [ctx.options.only] is non-empty the dispatch tier is
      disabled and {e all} selected strategies compete on score — the
      portfolio-ablation mode.

    Every pass reports into [ctx.stats]: attempts with
    produced/rejected/skipped/crashed outcomes and wall time, candidate
    scores and validity, MM-Route matching rounds, refinement swaps,
    per-phase wall-clock, and the topology's
    {!Oregami_topology.Distcache} hop-matrix build count.

    {2 Budgets, isolation, and the anytime contract}

    The run is governed by [ctx.budget]: strategies left to try once
    the budget trips are skipped (with a named reason), and the hot
    loops inside production, embedding, and routing stop early with
    their best partial result, so the pipeline always terminates
    promptly and tags its answer with a {!Stats.degradation} level.
    Every producer and every embed/route pass runs under the
    {!Isolate} barrier: a raise is recorded as a [Crashed] attempt (or
    an invalid candidate) instead of aborting the run, and the
    per-strategy circuit breaker on [ctx.breaker] benches a strategy
    after repeated crashes.  When no candidate lands and a fallback is
    warranted — [ctx.options.fallback], an exhausted budget, or a
    crash — a balanced-blocks baseline placement is routed and
    returned, so a connected machine always gets a valid mapping.

    The scoring function is a parameter (rather than a call into
    METRICS) because [oregami_metrics] sits above this library in the
    dependency order. *)

val place : Ctx.t -> Strategy.candidate -> (int array, string) result
(** The embedding pass: a [Placed] candidate's own placement, or
    NN-Embed over the candidate's cluster graph followed by
    pairwise-interchange refinement when [ctx.options.refine] — swap
    counts land in [ctx.stats].  With constraints active the per-task
    rules are projected onto the clusters ({!Constraints.project}) and
    both passes run filtered; [Error] (named reason) rejects the
    candidate when a cluster merges incompatible constraints or no
    feasible processor remains. *)

val finish :
  Ctx.t -> Strategy.candidate -> int array -> (Mapping.t, string) result
(** The routing pass: route the placed candidate with the configured
    router (recording matching rounds) and validate the mapping —
    including the {!Constraints.drc} named-violation pass when
    constraints are active. *)

val compete :
  score:(Mapping.t -> int) ->
  Ctx.t ->
  Strategy.t list ->
  (Mapping.t * Stats.degradation, string) result
(** Run the full pipeline.  The mapping always passes
    [Mapping.validate]; the degradation level says whether the run was
    complete, budget-truncated (with the sites that stopped early), or
    a fallback placement.  [Error] carries an aggregate of every
    strategy's rejection reason (also available structured via
    [Stats.rejections ctx.stats]) and only occurs when no fallback was
    warranted or even the fallback could not be routed (disconnected
    machine). *)
