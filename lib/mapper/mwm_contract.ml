module Ugraph = Oregami_graph.Ugraph
module Union_find = Oregami_prelude.Union_find
module Blossom = Oregami_matching.Blossom

type t = {
  cluster_of : int array;
  clusters : int list array;
  ipc : int;
  greedy_merges : int;
  matched_pairs : int;
}

let default_b n procs =
  let per_proc = (n + procs - 1) / procs in
  2 * ((per_proc + 1) / 2)

(* Dense renumbering of union-find clusters by smallest member. *)
let dense_clusters uf n =
  let reps = Array.init n (Union_find.find uf) in
  let order = Hashtbl.create 16 in
  let next = ref 0 in
  Array.iter
    (fun r ->
      if not (Hashtbl.mem order r) then begin
        Hashtbl.add order r !next;
        incr next
      end)
    reps;
  let cluster_of = Array.map (Hashtbl.find order) reps in
  let clusters = Array.make !next [] in
  for v = n - 1 downto 0 do
    clusters.(cluster_of.(v)) <- v :: clusters.(cluster_of.(v))
  done;
  (cluster_of, clusters)

(* weight between two clusters under the current task partition *)
let inter_weight g members_a members_b =
  let in_b = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace in_b v ()) members_b;
  List.fold_left
    (fun acc v ->
      List.fold_left
        (fun acc (u, w) -> if Hashtbl.mem in_b u then acc + w else acc)
        acc (Ugraph.neighbors g v))
    0 members_a

let contract ?b ?budget g ~procs =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  (* charge [cost] work units; on exhaustion mark this site truncated *)
  let check cost =
    Budget.poll budget ~cost
    || begin
         Budget.note budget "mwm-contract";
         false
       end
  in
  let n = Ugraph.node_count g in
  if procs <= 0 then Error "need at least one processor"
  else begin
    let b = match b with Some b -> b | None -> default_b n procs in
    if b < 1 then Error "cluster capacity must be at least 1"
    else if b * procs < n then
      Error
        (Printf.sprintf "infeasible: %d tasks > %d processors x capacity %d" n procs b)
    else begin
      let uf = Union_find.create n in
      let half = max 1 (b / 2) in
      let greedy_merges = ref 0 in
      (* greedy phase: heaviest edges first, clusters capped at b/2,
         stop once at most 2*procs clusters remain (paper Fig 5) *)
      if n > 2 * procs then begin
        let edges =
          List.sort
            (fun (u1, v1, w1) (u2, v2, w2) -> compare (-w1, u1, v1) (-w2, u2, v2))
            (Ugraph.edges g)
        in
        List.iter
          (fun (u, v, _) ->
            if
              check 1
              && Union_find.count_sets uf > 2 * procs
              && (not (Union_find.same uf u v))
              && Union_find.size uf u + Union_find.size uf v <= half
            then begin
              ignore (Union_find.union uf u v);
              incr greedy_merges
            end)
          edges
      end;
      (* pairing phase over explicit clusters: repeat maximum-weight
         matchings restricted to capacity-respecting pairs; when no
         pair fits, fall back to a zero-cost merge, and as a last
         resort dissolve the smallest cluster into the others' spare
         capacity.  The canonical case (greedy reached <= 2P clusters
         of <= B/2 tasks) finishes in the single matching round the
         paper describes. *)
      let matched_pairs = ref 0 in
      let _, initial = dense_clusters uf n in
      let clusters = ref (Array.to_list initial) in
      let exception Stuck in
      let merge_pass () =
        let arr = Array.of_list !clusters in
        let k = Array.length arr in
        let size c = List.length arr.(c) in
        let edges = ref [] in
        let dead = ref false in
        for a = 0 to k - 1 do
          for c = a + 1 to k - 1 do
            if (not !dead) && size a + size c <= b then begin
              if not (check (size a + size c)) then dead := true
              else begin
                let w = inter_weight g arr.(a) arr.(c) in
                if w > 0 then edges := (a, c, w) :: !edges
              end
            end
          done
        done;
        let mate =
          if b >= 2 then Blossom.max_weight_matching ~n:k !edges else Array.make k (-1)
        in
        let merged = Array.make k false in
        let out = ref [] in
        let progressed = ref false in
        Array.iteri
          (fun c m ->
            if m > c then begin
              out := List.merge compare arr.(c) arr.(m) :: !out;
              merged.(c) <- true;
              merged.(m) <- true;
              incr matched_pairs;
              progressed := true
            end)
          mate;
        Array.iteri (fun c members -> if not merged.(c) then out := members :: !out) arr;
        clusters := List.rev !out;
        !progressed
      in
      let zero_merge () =
        let arr = Array.of_list !clusters in
        let k = Array.length arr in
        let size c = List.length arr.(c) in
        let best = ref None in
        let dead = ref false in
        for a = 0 to k - 1 do
          for c = a + 1 to k - 1 do
            if (not !dead) && size a + size c <= b then begin
              if not (check (size a + size c)) then dead := true
              else begin
                let w = inter_weight g arr.(a) arr.(c) in
                match !best with
                | Some (bw, _, _) when bw >= w -> ()
                | Some _ | None -> best := Some (w, a, c)
              end
            end
          done
        done;
        match !best with
        | None -> false
        | Some (_, a, c) ->
          let out = ref [ List.merge compare arr.(a) arr.(c) ] in
          Array.iteri (fun i members -> if i <> a && i <> c then out := members :: !out) arr;
          clusters := List.rev !out;
          true
      in
      let dissolve_smallest () =
        let arr = Array.of_list !clusters in
        let k = Array.length arr in
        let smallest = ref 0 in
        for c = 1 to k - 1 do
          if List.length arr.(c) < List.length arr.(!smallest) then smallest := c
        done;
        let rest =
          Array.to_list (Array.mapi (fun i m -> (i, ref m)) arr)
          |> List.filter (fun (i, _) -> i <> !smallest)
          |> List.map snd
        in
        let spare () =
          List.fold_left (fun acc m -> acc + (b - List.length !m)) 0 rest
        in
        if spare () < List.length arr.(!smallest) then false
        else begin
          List.iter
            (fun task ->
              (* heaviest-affinity cluster with room *)
              let best = ref None in
              List.iter
                (fun m ->
                  if List.length !m < b then begin
                    let w = inter_weight g [ task ] !m in
                    match !best with
                    | Some (bw, _) when bw >= w -> ()
                    | Some _ | None -> best := Some (w, m)
                  end)
                rest;
              match !best with
              | Some (_, m) -> m := List.merge compare [ task ] !m
              | None -> ())
            arr.(!smallest);
          clusters := List.map ( ! ) rest;
          true
        end
      in
      (* anytime path: when the budget dies mid-reduction, pack the
         current clusters into [procs] bins directly — first-fit
         decreasing, then dissolving whatever does not fit whole,
         task by task, into spare slots.  Always succeeds because the
         feasibility check above guarantees [b * procs >= n]. *)
      let force_pack cs =
        let sorted =
          List.sort (fun a c -> compare (List.length c) (List.length a)) cs
        in
        let bins = Array.make procs [] in
        let bin_size = Array.make procs 0 in
        let overflow = ref [] in
        List.iter
          (fun members ->
            let len = List.length members in
            let rec find i =
              if i >= procs then None
              else if bin_size.(i) + len <= b then Some i
              else find (i + 1)
            in
            match find 0 with
            | Some i ->
              bins.(i) <- members :: bins.(i);
              bin_size.(i) <- bin_size.(i) + len
            | None -> overflow := members :: !overflow)
          sorted;
        List.iter
          (fun task ->
            let rec find i =
              if i >= procs then raise Stuck
              else if bin_size.(i) < b then begin
                bins.(i) <- [ task ] :: bins.(i);
                bin_size.(i) <- bin_size.(i) + 1
              end
              else find (i + 1)
            in
            find 0)
          (List.concat !overflow);
        Array.to_list bins
        |> List.filter_map (fun pieces ->
               match List.concat pieces with
               | [] -> None
               | members -> Some (List.sort compare members))
      in
      let result =
        try
          while List.length !clusters > procs do
            if not (check (List.length !clusters)) then
              clusters := force_pack !clusters
            else if not (merge_pass ()) then
              if not (zero_merge ()) then
                if not (dissolve_smallest ()) then raise Stuck
          done;
          Ok ()
        with Stuck ->
          Error
            (Printf.sprintf "could not reduce to %d clusters under capacity %d" procs b)
      in
      match result with
      | Error e -> Error e
      | Ok () ->
        (* renumber by smallest member *)
        let sorted =
          List.sort (fun a c -> compare (List.hd a) (List.hd c)) !clusters
        in
        let clusters = Array.of_list sorted in
        let cluster_of = Array.make n (-1) in
        Array.iteri
          (fun c members -> List.iter (fun v -> cluster_of.(v) <- c) members)
          clusters;
        if Array.exists (fun m -> List.length m > b) clusters then
          Error "internal error: capacity violated"
        else if Array.exists (( = ) (-1)) cluster_of then
          Error "internal error: task lost during contraction"
        else
          Ok
            {
              cluster_of;
              clusters;
              ipc = Mapping.total_ipc g cluster_of;
              greedy_merges = !greedy_merges;
              matched_pairs = !matched_pairs;
            }
    end
  end
