module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Distcache = Oregami_topology.Distcache
module Ugraph = Oregami_graph.Ugraph

type move = { mv_task : int; mv_from : int; mv_to : int }

type t = { rp_mapping : Mapping.t; rp_moves : move list; rp_frozen : int }

let moved r = List.length r.rp_moves

(* Incremental-placer cost rule (see Incremental.place): hop-weighted
   communication from a candidate processor to the task's already-placed
   neighbours; ties broken by lighter load, then smaller id. *)
let evacuate static dc degraded allowed feasible proc_of load cap_load t =
  let cost p =
    List.fold_left
      (fun acc (u, w) ->
        if proc_of.(u) >= 0 then acc + (w * Distcache.hop dc p proc_of.(u)) else acc)
      0 (Ugraph.neighbors static t)
  in
  let pick ~capped =
    let best = ref (-1) and best_key = ref (max_int, max_int, max_int) in
    for p = 0 to Topology.node_count degraded - 1 do
      if
        Topology.alive degraded p && allowed p && feasible t p
        && ((not capped) || load.(p) < cap_load)
      then begin
        let key = (cost p, load.(p), p) in
        if key < !best_key then begin
          best_key := key;
          best := p
        end
      end
    done;
    !best
  in
  match pick ~capped:true with -1 -> pick ~capped:false | p -> p

let repair ?(cap = 64) ?(constraints = Constraints.none) ?(allowed = fun _ -> true)
    (m : Mapping.t) degraded =
  let tg = m.Mapping.tg in
  let n = tg.Taskgraph.n in
  if Topology.node_count degraded <> Topology.node_count m.Mapping.topo then
    Error
      (Printf.sprintf "degraded topology has %d processors but the mapping targets %d"
         (Topology.node_count degraded)
         (Topology.node_count m.Mapping.topo))
  else begin
    let alive_count = Topology.alive_count degraded in
    if alive_count = 0 then Error "no processor survives the faults"
    else begin
      (* constraints are recompiled against the *degraded* machine: a
         task pinned to a dead processor is a compile error here — the
         repair refuses rather than evacuate it somewhere it must not
         run *)
      let cons = Constraints.compile constraints tg degraded in
      match Constraints.errors cons with
      | e :: _ -> Error ("constraints unsatisfiable after faults: " ^ e)
      | [] ->
      let constrained = Constraints.active cons in
      let feasible =
        if constrained then fun t p -> Constraints.feasible cons ~task:t ~proc:p
        else fun _ _ -> true
      in
      let before = Mapping.assignment m in
      let static = Taskgraph.static_graph tg in
      let dc = Distcache.hops degraded in
      (* surviving placements are frozen; only tasks stranded on a dead
         processor are evacuated *)
      let proc_of =
        Array.map (fun p -> if Topology.alive degraded p then p else -1) before
      in
      let load = Array.make (Topology.node_count degraded) 0 in
      Array.iter (fun p -> if p >= 0 then load.(p) <- load.(p) + 1) proc_of;
      let weight t =
        List.fold_left (fun acc (_, w) -> acc + w) 0 (Ugraph.neighbors static t)
      in
      let evacuees =
        Array.to_list (Array.init n (fun t -> t))
        |> List.filter (fun t -> proc_of.(t) = -1)
        (* heaviest communicators first: they anchor near their
           neighbours before the cheap seats fill up *)
        |> List.sort (fun a b -> compare (-weight a, a) (-weight b, b))
      in
      let cap_load = max 1 ((n + alive_count - 1) / alive_count) in
      let stuck = ref None in
      List.iter
        (fun t ->
          if !stuck = None then begin
            match evacuate static dc degraded allowed feasible proc_of load cap_load t with
            | -1 ->
              stuck :=
                Some
                  (Printf.sprintf
                     "no feasible surviving processor for evacuated task %d" t)
            | p ->
              proc_of.(t) <- p;
              load.(p) <- load.(p) + 1
          end)
        evacuees;
      match !stuck with
      | Some e -> Error e
      | None ->
      (* dense clusters rebuilt from the processor assignment (evacuees
         may merge into surviving clusters when no processor is free) *)
      let ids = Hashtbl.create 16 in
      let cluster_of =
        Array.map
          (fun p ->
            match Hashtbl.find_opt ids p with
            | Some c -> c
            | None ->
              let c = Hashtbl.length ids in
              Hashtbl.add ids p c;
              c)
          proc_of
      in
      let proc_of_cluster = Array.make (Hashtbl.length ids) 0 in
      Hashtbl.iter (fun p c -> proc_of_cluster.(c) <- p) ids;
      (* re-route every phase on the degraded view with MM-Route: even
         unmoved traffic may have crossed a now-dead link *)
      let routings, _ = Route.mm_route ~cap tg degraded ~proc_of_task:proc_of in
      let mapping =
        {
          Mapping.tg;
          topo = degraded;
          cluster_of;
          proc_of_cluster;
          routings;
          strategy = Printf.sprintf "repair(%s)" m.Mapping.strategy;
        }
      in
      match
        Mapping.validate ?constraints:(if constrained then Some cons else None) mapping
      with
      | Error e -> Error ("repaired mapping failed validation: " ^ e)
      | Ok () ->
        let rp_moves =
          List.filter_map
            (fun t ->
              if before.(t) <> proc_of.(t) then
                Some { mv_task = t; mv_from = before.(t); mv_to = proc_of.(t) }
              else None)
            (List.init n Fun.id)
        in
        Ok { rp_mapping = mapping; rp_moves; rp_frozen = n - List.length rp_moves }
    end
  end
