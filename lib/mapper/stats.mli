(** Per-pass instrumentation for the mapping pipeline — the paper's §5
    inspect-and-modify loop needs to answer not just {e what} mapping
    was produced but {e why}: which strategies were tried, which were
    rejected and for what reason, how long each took, how the
    candidates scored under the METRICS completion model, and how much
    work the matching/refinement/distance machinery did.

    One sink is threaded through every pass of a {!Pipeline.compete}
    run (it lives on the {!Ctx.t}); [oregami map --explain] renders it
    as a human table plus an s-expression dump.

    All counts are deterministic for a fixed program, topology, and
    options (including the RNG seed); only the wall-clock times vary
    between runs — {!counters} deliberately excludes them so tests can
    assert reproducibility. *)

type outcome =
  | Produced of int  (** candidates emitted *)
  | Rejected of string  (** the strategy declined, with its reason *)
  | Skipped of string
      (** filtered before running (options gate, exhausted budget, or
          an open circuit breaker) *)
  | Crashed of string
      (** the producer raised; the exception text, captured by the
          {!Isolate} barrier instead of aborting the pipeline *)

type degradation =
  | Full  (** every pass ran to completion *)
  | Truncated of string list
      (** the budget expired mid-run; the sites that stopped early
          (e.g. ["mwm-contract"], ["refine"]), in order *)
  | Fallback
      (** no competing candidate landed; the mapping is a cheap
          baseline placement *)

type attempt = {
  at_strategy : string;  (** registry name *)
  at_outcome : outcome;
  at_seconds : float;  (** wall time spent producing (0 when skipped) *)
}

type candidate = {
  cd_strategy : string;  (** registry name of the producer *)
  cd_label : string;  (** mapping strategy label, e.g. ["canned:mesh"] *)
  cd_score : int option;
      (** METRICS completion-time model; [None] for dispatch-tier
          winners, which short-circuit without scoring *)
  cd_ok : bool;  (** routed and passed [Mapping.validate] *)
  cd_note : string;  (** validation failure text, [""] otherwise *)
  mutable cd_winner : bool;
}

type t

val create : unit -> t

(** {1 Recording (used by the pipeline passes)} *)

val record_attempt :
  t -> strategy:string -> outcome:outcome -> seconds:float -> unit

val record_candidate :
  t ->
  strategy:string ->
  label:string ->
  score:int option ->
  ok:bool ->
  note:string ->
  candidate
(** Returns the (mutable) record so the pipeline can mark the winner. *)

val mark_winner : t -> candidate -> unit

val bump : t -> string -> int -> unit
(** [bump t name n] accumulates [n] onto the named counter, creating it
    on first use (insertion order preserved).  Strategies use this for
    pass-specific instrumentation — e.g. the multilevel tier's
    per-level node counts and refinement gains — without widening the
    record for every new counter.  Named counters are part of
    {!counters}, so they share the determinism contract. *)

val extra_counters : t -> (string * int) list
(** Counters recorded via {!bump}, in first-bump order. *)

val add_matching_rounds : t -> int -> unit
val add_refine_swaps : t -> int -> unit
val set_hop_builds : t -> int -> unit
val add_seconds : t -> float -> unit

val set_degradation : t -> degradation -> unit
val add_phase_seconds : t -> string -> float -> unit
(** Accumulate wall-clock onto a named phase ("distcache", "produce",
    "embed", "route", …); repeated names aggregate. *)

(** {1 Reading} *)

val attempts : t -> attempt list
(** Chronological. *)

val candidates : t -> candidate list
(** Chronological. *)

val winner : t -> (string * string) option
(** [(registry name, mapping label)] of the winning candidate. *)

val rejections : t -> (string * string) list
(** [(strategy, reason)] for every rejected or skipped attempt and
    every candidate that failed validation, chronological — the
    payload for a "no strategy applies" error. *)

val matching_rounds : t -> int
val refine_swaps : t -> int
val hop_builds : t -> int
val total_seconds : t -> float

val degradation : t -> degradation
(** [Full] unless the pipeline set otherwise. *)

val degradation_string : degradation -> string
(** Compact one-token rendering: ["full"], ["truncated(a,b)"],
    ["fallback"]. *)

val phase_seconds : t -> (string * float) list
(** Aggregated per-phase wall-clock, in first-recorded order. *)

val counters : t -> (string * int) list
(** Every deterministic counter as labelled pairs (attempt/candidate
    tallies, matching rounds, refine swaps, Distcache hop builds) —
    the reproducibility surface for the determinism test. *)

(** {1 Rendering} *)

val to_table : t -> string
(** Human-readable tables: attempts (strategy, outcome, time, reason),
    candidates (label, score, validity, winner), then the counters. *)

val to_sexp : t -> string
(** The whole sink as one s-expression, for tooling. *)
