module Perm = Oregami_perm.Perm
module Group = Oregami_perm.Group
module Cayley = Oregami_perm.Cayley
module Taskgraph = Oregami_taskgraph.Taskgraph
module Digraph = Oregami_graph.Digraph

type t = {
  group : Group.t;
  correspondence : int array;
  subgroup : int list;
  normal : bool;
  cluster_of : int array;
  clusters : int list array;
  internalized : int;
}

let phase_function tg (cp : Taskgraph.comm_phase) =
  let n = tg.Taskgraph.n in
  let f = Array.make n (-1) in
  let ok = ref true in
  for v = 0 to n - 1 do
    match Digraph.succ cp.Taskgraph.edges v with
    | [ (w, _) ] -> f.(v) <- w
    | [] | _ :: _ :: _ -> ok := false
  done;
  if !ok && Perm.is_bijection n (fun i -> f.(i)) then Some (Perm.of_array f) else None

let generators_of tg =
  let phases = tg.Taskgraph.comm_phases in
  if phases = [] then None
  else begin
    let gens =
      List.map
        (fun cp -> Option.map (fun p -> (cp.Taskgraph.cp_name, p)) (phase_function tg cp))
        phases
    in
    if List.for_all Option.is_some gens then Some (List.map Option.get gens) else None
  end

let balanced_contraction_exists ~n ~procs =
  procs > 0 && n mod procs = 0
  && (n / procs = 1 || Option.is_some (Group.is_prime_power (n / procs)))

let coset_internalized group cosets gens =
  (* messages internalized per cluster for one coset partition; the
     coset property makes this uniform across clusters, so measure the
     first cluster *)
  List.fold_left
    (fun acc (_, g) -> acc + Cayley.internalized_per_block group cosets g)
    0 gens

let contract ?budget tg ~procs =
  let n = tg.Taskgraph.n in
  (* each poll covers one subgroup closure: O(n · |sub|) products, each
     an O(n) compose + hash, so n fuel units per closure keeps the
     group search on the same fuel scale as the per-task passes *)
  let poll () =
    match budget with None -> true | Some b -> Budget.poll b ~cost:n
  in
  let ( let* ) = Result.bind in
  let* gens =
    match generators_of tg with
    | Some g -> Ok g
    | None -> Error "a communication phase is not a bijection on the tasks"
  in
  let* () =
    if procs > 0 && n mod procs = 0 then Ok ()
    else Error (Printf.sprintf "%d tasks do not divide evenly over %d processors" n procs)
  in
  let* () = if poll () then Ok () else Error "mapping budget exhausted" in
  let* group =
    match Group.generate ~bound:n (List.map snd gens) with
    | Some g -> Ok g
    | None -> Error "group closure exceeds |X|: task graph is not a Cayley graph"
  in
  let* () =
    if Group.order group = n then Ok ()
    else Error (Printf.sprintf "group order %d differs from task count %d" (Group.order group) n)
  in
  let* () =
    if Group.uniform_cycle_lengths group then Ok ()
    else Error "some group element has unequal cycle lengths (action not regular)"
  in
  let* () =
    if Group.acts_regularly group then Ok ()
    else Error "group action is not transitive"
  in
  let target = n / procs in
  let candidates = Group.subgroups_of_order ~poll group target in
  let dead () = match budget with Some b -> Budget.exhausted b | None -> false in
  let* () =
    if candidates <> [] then Ok ()
    else if dead () then Error "mapping budget exhausted during subgroup search"
    else
      Error
        (Printf.sprintf "no subgroup of order %d found%s" target
           (if balanced_contraction_exists ~n ~procs then
              " (unexpected: Sylow guarantees one)"
            else ""))
  in
  (* score candidates: internalized messages first, normality as
     tie-break (a normal H makes the quotient a Cayley graph again).
     Scoring a candidate (cosets + conjugation check) costs another
     O(n · |sub|) round of products, so the budget is polled before
     each one; the first candidate is always scored so an exhausted
     budget still yields a usable coset partition. *)
  let scored =
    let rec go acc first = function
      | [] -> List.rev acc
      | sub :: rest ->
        if first || poll () then begin
          let cosets = Group.left_cosets group sub in
          let internal = coset_internalized group cosets gens in
          let normal = Group.is_normal group sub in
          go ((internal, normal, sub, cosets) :: acc) false rest
        end
        else List.rev acc
    in
    go [] true candidates
  in
  (match budget with
  | Some b when Budget.exhausted b -> Budget.note b "group-contract"
  | Some _ | None -> ());
  let best =
    List.fold_left
      (fun acc (i, nrm, sub, cosets) ->
        match acc with
        | None -> Some (i, nrm, sub, cosets)
        | Some (bi, bn, _, _) when (i, nrm) > (bi, bn) -> Some (i, nrm, sub, cosets)
        | Some _ -> acc)
      None scored
  in
  match best with
  | None -> Error "no candidate subgroup"
  | Some (internalized, normal, subgroup, cosets) ->
    let correspondence = Cayley.correspondence group in
    let blocks = Cayley.task_partition group cosets in
    let cluster_of = Array.make n (-1) in
    List.iteri (fun c members -> List.iter (fun t -> cluster_of.(t) <- c) members) blocks;
    let clusters = Array.of_list blocks in
    Ok { group; correspondence; subgroup; normal; cluster_of; clusters; internalized }
