module Ugraph = Oregami_graph.Ugraph

let cut_weight g side =
  List.fold_left
    (fun acc (u, v, w) -> if side.(u) <> side.(v) then acc + w else acc)
    0 (Ugraph.edges g)

(* one Kernighan-Lin pass: returns true if it improved the split *)
let kl_pass ?budget g side =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let n = Ugraph.node_count g in
  let d = Array.make n 0 in
  let weight u v = Ugraph.weight g u v in
  for u = 0 to n - 1 do
    List.iter
      (fun (v, w) -> d.(u) <- d.(u) + if side.(u) <> side.(v) then w else -w)
      (Ugraph.neighbors g u)
  done;
  let locked = Array.make n false in
  let swaps = ref [] in
  let gains = ref [] in
  let candidates s =
    let out = ref [] in
    for u = 0 to n - 1 do
      if (not locked.(u)) && side.(u) = s then out := u :: !out
    done;
    !out
  in
  let steps = min (List.length (candidates 0)) (List.length (candidates 1)) in
  (* each KL step is a quadratic best-pair scan; an exhausted budget
     cuts the pass short — the best-prefix unwind below still applies
     whatever swaps were found, so the split stays balanced *)
  let dead = ref false in
  for _ = 1 to steps do
    let c0 = candidates 0 and c1 = candidates 1 in
    if
      (not !dead)
      && not (Budget.poll budget ~cost:(List.length c0 * List.length c1))
    then begin
      Budget.note budget "kl";
      dead := true
    end;
    if !dead then ()
    else begin
    let best = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let gain = d.(a) + d.(b) - (2 * weight a b) in
            match !best with
            | Some (bg, _, _) when bg >= gain -> ()
            | Some _ | None -> best := Some (gain, a, b))
          c1)
      c0;
    match !best with
    | None -> ()
    | Some (gain, a, b) ->
      locked.(a) <- true;
      locked.(b) <- true;
      swaps := (a, b) :: !swaps;
      gains := gain :: !gains;
      (* update D values of unlocked nodes as if a and b had swapped *)
      for x = 0 to n - 1 do
        if not locked.(x) then begin
          let wxa = weight x a and wxb = weight x b in
          if side.(x) = side.(a) then d.(x) <- d.(x) + (2 * wxa) - (2 * wxb)
          else d.(x) <- d.(x) + (2 * wxb) - (2 * wxa)
        end
      done
    end
  done;
  let swaps = Array.of_list (List.rev !swaps) in
  let gains = Array.of_list (List.rev !gains) in
  (* best prefix of cumulative gain *)
  let best_k = ref 0 and best_gain = ref 0 and running = ref 0 in
  Array.iteri
    (fun i gain ->
      running := !running + gain;
      if !running > !best_gain then begin
        best_gain := !running;
        best_k := i + 1
      end)
    gains;
  if !best_gain > 0 then begin
    for i = 0 to !best_k - 1 do
      let a, b = swaps.(i) in
      let t = side.(a) in
      side.(a) <- side.(b);
      side.(b) <- t
    done;
    true
  end
  else false

let bipartition ?budget g =
  let n = Ugraph.node_count g in
  let side = Array.init n (fun u -> if u < (n + 1) / 2 then 0 else 1) in
  let rec improve rounds =
    if rounds > 0 && kl_pass ?budget g side then improve (rounds - 1)
  in
  improve 16;
  side

let partition ?budget g ~parts =
  if parts < 1 then invalid_arg "Kl.partition: need at least one part";
  let n = Ugraph.node_count g in
  let cluster_of = Array.make n 0 in
  (* recursive bisection with part budgets proportional to subset size *)
  let rec split nodes parts next_id =
    match (nodes, parts) with
    | [], _ -> next_id
    | _, p when p <= 1 || List.length nodes <= 1 ->
      List.iter (fun u -> cluster_of.(u) <- next_id) nodes;
      next_id + 1
    | nodes, parts ->
      let index = Hashtbl.create 16 in
      List.iteri (fun i u -> Hashtbl.add index u i) nodes;
      let m = List.length nodes in
      let sub = Ugraph.create m in
      List.iter
        (fun (u, v, w) ->
          match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
          | Some iu, Some iv -> Ugraph.add_edge ~w sub iu iv
          | (Some _ | None), _ -> ())
        (Ugraph.edges g);
      let side = bipartition ?budget sub in
      let arr = Array.of_list nodes in
      let left = ref [] and right = ref [] in
      Array.iteri
        (fun i u -> if side.(i) = 0 then left := u :: !left else right := u :: !right)
        arr;
      let pl = parts / 2 in
      let next_id = split (List.rev !left) (parts - pl) next_id in
      split (List.rev !right) pl next_id
  in
  let k = split (List.init n (fun u -> u)) parts 0 in
  ignore k;
  (* renumber by smallest member for determinism *)
  let first = Hashtbl.create 16 in
  Array.iteri
    (fun u c -> if not (Hashtbl.mem first c) then Hashtbl.add first c u)
    cluster_of;
  let order =
    Hashtbl.fold (fun c u acc -> (u, c) :: acc) first [] |> List.sort compare
  in
  let renumber = Hashtbl.create 16 in
  List.iteri (fun i (_, c) -> Hashtbl.add renumber c i) order;
  Array.map (Hashtbl.find renumber) cluster_of
