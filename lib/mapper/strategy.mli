(** The strategy registry behind the MAPPER dispatch (paper Fig 3).

    Every mapping-producing algorithm in the repository is registered
    here with a uniform shape: a name, a tier, a cheap availability
    gate, and a producer over the shared {!Ctx.t}.  A producer either
    declines with a reason (recorded by the pipeline in {!Stats}) or
    emits one or more {e candidates} — contractions with either a
    strategy-supplied placement or a request for the shared
    NN-Embed/refine pass.  Most strategies emit exactly one candidate;
    [tiled] emits one per feasible processor-grid factorization, which
    is why producers return a list.

    Tiers reproduce the seed dispatch exactly: [Dispatch] strategies
    (canned, systolic, group) short-circuit — the first one that
    produces wins without scoring — while [Compete] strategies are all
    routed and judged under the METRICS completion model.  When
    [options.only] is non-empty the tiers are ignored and every
    selected strategy competes on score. *)

type placement =
  | Placed of int array
      (** the strategy supplies [proc_of_cluster] itself (canned
          entries, systolic projections, naive baselines) *)
  | Embed
      (** the pipeline's embedding pass places the clusters with
          NN-Embed (+ pairwise-interchange refinement when enabled) *)

type candidate = {
  label : string;  (** becomes [Mapping.strategy], e.g. ["mwm+nn"] *)
  clusters : int;  (** dense cluster count *)
  cluster_of : int array;  (** task → cluster *)
  placement : placement;
}

type tier = Dispatch | Compete

type t = {
  name : string;  (** registry key, used by [--only] / [--exclude] *)
  tier : tier;
  default_on : bool;
      (** participates without [--only]; the Kl, Stone, and naive
          baseline entries are off by default so the seed's E8/E11
          outputs are unchanged *)
  doc : string;  (** one-line description *)
  available : Ctx.t -> (unit, string) result;
      (** cheap applicability/option gate, checked before [produce] *)
  produce : Ctx.t -> (candidate list, string) result;
      (** [Error reason] when the strategy declines; [Ok] lists are
          non-empty *)
}

val registry : unit -> t list
(** All strategies in dispatch-priority order: canned, systolic,
    group (dispatch tier); mwm, tiled, blocks (competing, on by
    default); kl, stone, random, naive-block, round-robin (competing,
    off by default).  The order is also the stable tie-break for equal
    completion scores. *)

val names : unit -> string list

val find : string -> t option

val select : Ctx.options -> (t list, string) result
(** The registry filtered by [options.only] / [options.exclude]
    (validating the names), defaulting to the [default_on] entries.
    Errors when a name is unknown or the selection is empty. *)
