(** Placement constraints as part of the shared mapping contract.

    OREGAMI's machine model is homogeneous; production mappers are not
    (UGRAMM's typed PEs with [SupportedOps], lock-nodes and
    skip-placement classes; SpiNNTools' constraint-driven placement).
    This module makes those first-class: a {!spec} — pin task→proc,
    forbid task↛proc, require a processor capability class per task,
    skip whole classes — is compiled once per run against the concrete
    task graph and topology, and every strategy, the embedding and
    refinement passes, the repair path and {!Mapping.validate} consult
    the same {!feasible} predicate (or decline with a named reason).

    Program-declared requirements ([requires CLASS] on a LaRCS
    nodetype, surfaced as [Taskgraph.node_requires]) seed the per-task
    required classes; request-level requirements override them. *)

type spec = {
  pins : (int * int) list;  (** (task, processor): task must be placed there *)
  forbids : (int * int) list;  (** (task, processor): task must not be placed there *)
  requires : (int * string) list;  (** (task, class): overrides the program annotation *)
  skip_classes : string list;
      (** capability classes excluded from placement (their processors
          still route traffic) *)
}

val none : spec

val spec_is_empty : spec -> bool

val describe : spec -> string
(** One-line rendering for logs and stats, [""] for {!none}. *)

(** {2 Compilation} *)

type t
(** A spec compiled against a task graph and topology: dense per-task
    and per-processor tables.  Compilation is total; malformed specs
    land in {!errors} and the pipeline reports them before any strategy
    runs. *)

val compile : spec -> Oregami_taskgraph.Taskgraph.t -> Oregami_topology.Topology.t -> t
(** Merges the spec with the task graph's [node_requires] annotations
    against the topology's capability classes.  Collected errors:
    out-of-range tasks/processors, conflicting or infeasible pins
    (dead, forbidden, skip-class or wrong-class processors), unknown
    skip classes, and required classes no alive placeable processor
    offers. *)

val errors : t -> string list

val active : t -> bool
(** Whether any constraint is in effect (including program-declared
    requirements).  When [false], every strategy takes its
    bit-identical unconstrained path. *)

val feasible : t -> task:int -> proc:int -> bool
(** The shared feasibility predicate: the processor is not
    skip-placement, not forbidden for the task, satisfies the task's
    required class, and matches the task's pin (if any).  Liveness is
    the caller's concern ({!Mapping.validate} already rejects dead
    processors). *)

val skip_proc : t -> int -> bool

val pinned : t -> int -> int option

val required_class : t -> int -> string
(** [""] when the task requires no class. *)

(** {2 DRC: design-rule check}

    The named-violation pass behind [validate-drc] in [--explain]: each
    violation carries the task, the processor, and the rule by name
    ([pin] / [forbid] / [require-class] / [skip-class]). *)

type violation = { vi_task : int; vi_proc : int; vi_rule : string }

val drc : t -> int array -> violation list
(** [drc t assignment] checks a per-task processor assignment against
    every rule; empty means clean. *)

val violation_to_string : violation -> string

(** {2 Cluster projection}

    Contraction strategies place {e clusters}, not tasks; the shared
    embed pass needs the constraints expressed per cluster.  Projection
    fails (with a named reason, rejecting the candidate) when a cluster
    merges tasks whose constraints cannot be satisfied together. *)

type projection = {
  pj_fixed : int array;  (** cluster → pinned processor, [-1] when free *)
  pj_require : string array;  (** cluster → required class, [""] when none *)
  pj_forbid : (int * int, unit) Hashtbl.t;  (** forbidden (cluster, processor) pairs *)
}

val project : t -> clusters:int -> cluster_of:int array -> (projection, string) result

val cluster_allowed : t -> projection -> int -> int -> bool
(** [cluster_allowed t pj cluster proc]: the cluster-level
    {!feasible}. *)

(** {2 Spec notation}

    Shared by the CLI ([--pin T=P --forbid T=P --require T=CLASS]) and
    the request service ([pin=T:P,T:P ...] — [:] separates inside
    service values since [=] binds the key). *)

val parse_pins : string -> ((int * int) list, string) result

val parse_forbids : string -> ((int * int) list, string) result

val parse_requires : string -> ((int * string) list, string) result
