(* The per-run mapping context.  Everything mutable in here — the RNG,
   the stats sink, the budget meter — is created fresh by [make] and
   owned by exactly one pipeline run, so a pool of domains can each
   build their own Ctx against {e shared} read-only inputs (one
   compiled program, one topology whose Distcache publishes its hop
   matrix once) and still get per-request determinism: same seed, same
   mapping, under any number of concurrent runs.  The only cross-run
   mutable state a Ctx carries is the circuit [breaker], which is
   domain-safe by construction (atomic counters). *)

module Compile = Oregami_larcs.Compile
module Analyze = Oregami_larcs.Analyze
module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Distcache = Oregami_topology.Distcache
module Faults = Oregami_topology.Faults
module Rng = Oregami_prelude.Rng

type routing = Mm_route | Oblivious | Coarse | Auto

type options = {
  b : int option;
  routing : routing;
  route_cap : int;
  jobs : int;
  allow_canned : bool;
  allow_group : bool;
  allow_systolic : bool;
  refine : bool;
  seed : int;
  only : string list;
  exclude : string list;
  fuel : int option;
  deadline_ms : float option;
  fallback : bool;
  constraints : Constraints.spec;
  multilevel_threshold : int;
}

let default_options =
  {
    b = None;
    routing = Auto;
    route_cap = 64;
    jobs = 1;
    allow_canned = true;
    allow_group = true;
    allow_systolic = true;
    refine = true;
    seed = 2026;
    only = [];
    exclude = [];
    fuel = None;
    deadline_ms = None;
    fallback = false;
    constraints = Constraints.none;
    (* keep in sync with the flat/multilevel gate the seed shipped with
       (Multilevel.flat_sweet_spot) *)
    multilevel_threshold = 2048;
  }

type t = {
  compiled : Compile.compiled option;
  analysis : Analyze.t option Lazy.t;
  tg : Taskgraph.t;
  topo : Topology.t;
  dist : Distcache.t;
  static : Oregami_graph.Ugraph.t Lazy.t;
  rng : Rng.t;
  options : options;
  stats : Stats.t;
  faults : Faults.t;
  alive : int array;
  placeable : int array;
  constraints : Constraints.t;
  budget : Budget.t;
  breaker : Isolate.breaker;
}

let make ?(options = default_options) ?(faults = Faults.none) ?breaker
    ?compiled tg topo =
  let stats = Stats.create () in
  (* The deadline clock starts here, so cache warm-up counts against
     the request's budget like any other work. *)
  let budget =
    if options.fuel = None && options.deadline_ms = None then
      Budget.unlimited ()
    else Budget.create ?fuel:options.fuel ?deadline_ms:options.deadline_ms ()
  in
  (* warm the topology's distance cache up front: every strategy
     shares the one hop matrix (built in parallel for large
     networks) instead of racing to build it mid-evaluation.  For a
     degraded topology this builds against the surviving graph (the
     degraded value starts with an empty cache slot). *)
  let dist, dist_s = Oregami_prelude.Clock.time (fun () -> Distcache.hops topo) in
  Stats.add_phase_seconds stats "distcache" dist_s;
  let constraints = Constraints.compile options.constraints tg topo in
  let alive = Array.of_list (Topology.alive_procs topo) in
  let placeable =
    if Constraints.active constraints then
      Array.of_list
        (List.filter (fun p -> not (Constraints.skip_proc constraints p))
           (Array.to_list alive))
    else alive
  in
  {
    compiled;
    analysis = lazy (Option.map Analyze.analyze compiled);
    tg;
    topo;
    dist;
    static = lazy (Taskgraph.static_graph tg);
    rng = Rng.create options.seed;
    options;
    stats;
    faults;
    alive;
    placeable;
    constraints;
    budget;
    breaker = (match breaker with Some b -> b | None -> Isolate.breaker ());
  }

let of_compiled ?options ?faults ?breaker compiled topo =
  make ?options ?faults ?breaker ~compiled compiled.Compile.graph topo

let of_taskgraph ?options ?faults ?breaker tg topo =
  make ?options ?faults ?breaker tg topo

let degraded ctx = Topology.is_degraded ctx.topo || not (Faults.is_empty ctx.faults)

let analysis ctx = Lazy.force ctx.analysis
let static ctx = Lazy.force ctx.static

let mesh_dims ctx =
  match ctx.compiled with
  | None -> None
  | Some compiled -> begin
    match compiled.Compile.spaces with
    | [ space ] -> begin
      match space.Compile.dims with
      | [ (l1, h1); (l2, h2) ] -> Some [ h1 - l1 + 1; h2 - l2 + 1 ]
      | _ -> None
    end
    | [] | _ :: _ :: _ -> None
  end

(* processors a strategy may actually use: on a degraded topology the
   dead ones are not placement targets, and under constraints the
   skip-placement classes are excluded too *)
let procs ctx = Array.length ctx.placeable

let constrained ctx = Constraints.active ctx.constraints

(* [Auto] follows the same gate as the multilevel tier: the flat-tier
   sizes keep exact per-message MM-Route, the large tier (where the
   multilevel strategy takes over and routing dominates wall-clock)
   switches to the traffic-aggregated coarse router.  An explicit
   routing choice is always respected. *)
let resolve_routing ctx =
  match ctx.options.routing with
  | Auto ->
    if ctx.tg.Taskgraph.n > ctx.options.multilevel_threshold then Coarse
    else Mm_route
  | r -> r
