(** Exception barriers and a per-strategy circuit breaker.

    Every strategy producer runs under {!protect}: any raise — a
    library bug, [Stack_overflow] from a pathological input,
    [Out_of_memory] where the runtime makes it catchable — becomes a
    named failure the pipeline records in {!Stats} instead of a crash
    that aborts the whole batch.

    The {!type-breaker} guards long batches: a strategy that keeps
    crashing is skipped (with a named reason) after a threshold of
    consecutive failures, so one poisoned code path cannot tax every
    subsequent request.  Declines (a strategy judging itself
    inapplicable) are healthy and reset nothing; only crashes count.

    A breaker is domain-safe: the per-strategy crash counters are
    [Atomic.t] cells (increments from concurrent pool domains never
    lose updates) and the cell table is mutex-guarded, so one breaker
    can be shared across a parallel batch.  Note that under a parallel
    serve the {e order} in which requests observe an opening circuit
    depends on scheduling; the breaker is a crash-containment
    mechanism, not part of the per-request determinism contract. *)

val protect : (unit -> 'a) -> ('a, string) result
(** [protect f] is [Ok (f ())], or [Error msg] naming the exception if
    [f] raises.  Never lets an exception escape. *)

type breaker

val breaker : ?threshold:int -> unit -> breaker
(** A fresh breaker.  [threshold] (default 3) is the number of
    {e consecutive} crashes after which a strategy is skipped. *)

val admit : breaker -> string -> (unit, string) result
(** [admit br name] is [Ok ()] if strategy [name] may run, or
    [Error reason] if its circuit is open. *)

val succeed : breaker -> string -> unit
(** Record a clean run (produced or declined); resets the strategy's
    consecutive-failure count. *)

val fail : breaker -> string -> unit
(** Record a crash for the strategy. *)

val tripped : breaker -> string list
(** Names whose circuits are currently open, sorted. *)
