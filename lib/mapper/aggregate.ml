module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Distcache = Oregami_topology.Distcache
module Digraph = Oregami_graph.Digraph

let is_aggregation tg phase =
  match Taskgraph.comm_phase tg phase with
  | None -> None
  | Some cp ->
    let targets =
      Digraph.edges cp.Taskgraph.edges |> List.map (fun (_, v, _) -> v) |> List.sort_uniq compare
    in
    (match targets with
    | [ root ] -> Some root
    | [] | _ :: _ :: _ -> None)

let hot_link_volume (m : Mapping.t) phase =
  let counts = Array.make (Topology.link_count m.Mapping.topo) 0 in
  (match List.find_opt (fun pr -> pr.Mapping.pr_phase = phase) m.Mapping.routings with
  | None -> ()
  | Some pr ->
    List.iter
      (fun re ->
        List.iter
          (fun l -> counts.(l) <- counts.(l) + re.Mapping.re_volume)
          re.Mapping.re_route.Routes.links)
      pr.Mapping.pr_edges);
  Array.fold_left max 0 counts

let replan_phase (m : Mapping.t) ~phase =
  let tg = m.Mapping.tg in
  let topo = m.Mapping.topo in
  match is_aggregation tg phase with
  | None -> Error (Printf.sprintf "phase %S is not an aggregation (all edges to one task)" phase)
  | Some root ->
    let cp = Option.get (Taskgraph.comm_phase tg phase) in
    let n = tg.Taskgraph.n in
    let procs = Topology.node_count topo in
    let root_proc = Mapping.proc_of_task m root in
    (* BFS spanning tree of the network towards the root's processor,
       read off the topology's cached hop matrix *)
    let dc = Distcache.hops topo in
    let dist = Array.init procs (fun p -> Distcache.hop dc root_proc p) in
    let parent = Array.make procs (-1) in
    for p = 0 to procs - 1 do
      if p <> root_proc && dist.(p) < max_int then begin
        let next =
          List.find_opt
            (fun (q, _) -> dist.(q) = dist.(p) - 1)
            (Oregami_graph.Ugraph.neighbors (Topology.graph topo) p)
        in
        match next with Some (q, _) -> parent.(p) <- q | None -> ()
      end
    done;
    (* per-processor senders and their volumes *)
    let local_max = Array.make procs 0 in
    let senders = Array.make procs [] in
    List.iter
      (fun (u, _, w) ->
        if u <> root then begin
          let p = Mapping.proc_of_task m u in
          local_max.(p) <- max local_max.(p) w;
          senders.(p) <- u :: senders.(p)
        end)
      (Digraph.edges cp.Taskgraph.edges);
    let has_tasks p = senders.(p) <> [] || p = root_proc in
    let rep p = if p = root_proc then root else List.fold_left min max_int senders.(p) in
    (* nearest task-bearing ancestor *)
    let rec anc p =
      let q = parent.(p) in
      if q = -1 then root_proc else if has_tasks q then q else anc q
    in
    (* subtree-combined volume per task-bearing processor, processed
       deepest-first so children accumulate into parents *)
    let order =
      List.init procs (fun p -> p)
      |> List.filter (fun p -> has_tasks p && p <> root_proc)
      |> List.sort (fun a b -> compare (dist.(b), a) (dist.(a), b))
    in
    let combined = Array.copy local_max in
    let tree_edges =
      List.map
        (fun p ->
          let target = anc p in
          let volume = combined.(p) in
          combined.(target) <- max combined.(target) volume;
          (p, target, volume))
        order
    in
    (* rebuild the phase's digraph *)
    let g = Digraph.create n in
    let routed = ref [] in
    (* local forwarding to the representative (or to the root when
       co-located with it) *)
    let sender_volume = Hashtbl.create 16 in
    List.iter
      (fun (u, _, w) -> if u <> root then Hashtbl.replace sender_volume u w)
      (Digraph.edges cp.Taskgraph.edges);
    Array.iteri
      (fun p tasks ->
        let r = rep p in
        List.iter
          (fun u ->
            if u <> r then begin
              let w = Option.value ~default:1 (Hashtbl.find_opt sender_volume u) in
              Digraph.add_edge ~w g u r;
              routed :=
                {
                  Mapping.re_src = u;
                  re_dst = r;
                  re_volume = w;
                  re_route = { Routes.nodes = [ p ]; links = [] };
                }
                :: !routed
            end)
          tasks)
      senders;
    (* tree hops between representatives, routed along the BFS tree *)
    List.iter
      (fun (p, target, volume) ->
        let rec path q acc = if q = target then List.rev (q :: acc) else path parent.(q) (q :: acc) in
        (* walk to the direct tree ancestor even across empty procs *)
        let nodes = path p [] in
        let src = rep p and dst = rep target in
        Digraph.add_edge ~w:volume g src dst;
        routed :=
          {
            Mapping.re_src = src;
            re_dst = dst;
            re_volume = volume;
            re_route = { Routes.nodes; links = Topology.links_of_path topo nodes };
          }
          :: !routed)
      tree_edges;
    (* rebuild the task graph with the phase replaced *)
    let comm_phases =
      List.map
        (fun (cpx : Taskgraph.comm_phase) ->
          if cpx.Taskgraph.cp_name = phase then (phase, g)
          else (cpx.Taskgraph.cp_name, cpx.Taskgraph.edges))
        tg.Taskgraph.comm_phases
    in
    let exec_phases =
      List.map (fun (ep : Taskgraph.exec_phase) -> (ep.Taskgraph.ep_name, ep.Taskgraph.costs))
        tg.Taskgraph.exec_phases
    in
    (match
       Taskgraph.make ~node_labels:tg.Taskgraph.node_labels
         ~node_types:tg.Taskgraph.node_types
         ~node_requires:tg.Taskgraph.node_requires
         ~declared_symmetric:tg.Taskgraph.declared_symmetric
         ?declared_family:tg.Taskgraph.declared_family
         ~name:tg.Taskgraph.tg_name ~n ~comm_phases ~exec_phases ~expr:tg.Taskgraph.expr ()
     with
    | Error e -> Error ("aggregate replan: " ^ e)
    | Ok tg' ->
      let routings =
        List.map
          (fun pr ->
            if pr.Mapping.pr_phase = phase then
              { Mapping.pr_phase = phase; pr_edges = List.rev !routed }
            else pr)
          m.Mapping.routings
      in
      let candidate =
        { m with Mapping.tg = tg'; routings; strategy = m.Mapping.strategy ^ "+tree-agg" }
      in
      (match Mapping.validate candidate with
      | Ok () -> Ok candidate
      | Error e -> Error ("aggregate replan produced invalid mapping: " ^ e)))
