module Tab = Oregami_prelude.Tab

type outcome =
  | Produced of int
  | Rejected of string
  | Skipped of string
  | Crashed of string

type degradation = Full | Truncated of string list | Fallback

type attempt = { at_strategy : string; at_outcome : outcome; at_seconds : float }

type candidate = {
  cd_strategy : string;
  cd_label : string;
  cd_score : int option;
  cd_ok : bool;
  cd_note : string;
  mutable cd_winner : bool;
}

type t = {
  mutable attempts_rev : attempt list;
  mutable cands_rev : candidate list;
  mutable matching_rounds : int;
  mutable refine_swaps : int;
  mutable hop_builds : int;
  mutable seconds : float;
  mutable winner : (string * string) option;
  mutable degradation : degradation;
  mutable phases : (string * float) list; (* aggregated by name *)
  mutable extras : (string * int) list; (* named counters, aggregated by name *)
}

let create () =
  {
    attempts_rev = [];
    cands_rev = [];
    matching_rounds = 0;
    refine_swaps = 0;
    hop_builds = 0;
    seconds = 0.0;
    winner = None;
    degradation = Full;
    phases = [];
    extras = [];
  }

let record_attempt t ~strategy ~outcome ~seconds =
  t.attempts_rev <-
    { at_strategy = strategy; at_outcome = outcome; at_seconds = seconds }
    :: t.attempts_rev

let record_candidate t ~strategy ~label ~score ~ok ~note =
  let c =
    {
      cd_strategy = strategy;
      cd_label = label;
      cd_score = score;
      cd_ok = ok;
      cd_note = note;
      cd_winner = false;
    }
  in
  t.cands_rev <- c :: t.cands_rev;
  c

let mark_winner t c =
  c.cd_winner <- true;
  t.winner <- Some (c.cd_strategy, c.cd_label)

let set_degradation t d = t.degradation <- d
let degradation t = t.degradation

let degradation_string = function
  | Full -> "full"
  | Truncated sites -> Printf.sprintf "truncated(%s)" (String.concat "," sites)
  | Fallback -> "fallback"

let add_phase_seconds t name s =
  let rec bump = function
    | [] -> [ (name, s) ]
    | (n, acc) :: rest when n = name -> (n, acc +. s) :: rest
    | kv :: rest -> kv :: bump rest
  in
  t.phases <- bump t.phases

let phase_seconds t = t.phases

let bump t name n =
  let rec add = function
    | [] -> [ (name, n) ]
    | (k, acc) :: rest when k = name -> (k, acc + n) :: rest
    | kv :: rest -> kv :: add rest
  in
  t.extras <- add t.extras

let extra_counters t = t.extras

let add_matching_rounds t n = t.matching_rounds <- t.matching_rounds + n
let add_refine_swaps t n = t.refine_swaps <- t.refine_swaps + n
let set_hop_builds t n = t.hop_builds <- n
let add_seconds t s = t.seconds <- t.seconds +. s

let attempts t = List.rev t.attempts_rev
let candidates t = List.rev t.cands_rev
let winner t = t.winner

let rejections t =
  List.filter_map
    (fun a ->
      match a.at_outcome with
      | Rejected r | Skipped r -> Some (a.at_strategy, r)
      | Crashed e -> Some (a.at_strategy, "crashed: " ^ e)
      | Produced _ -> None)
    (attempts t)
  @ List.filter_map
      (fun c ->
        if c.cd_ok then None
        else Some (c.cd_strategy, Printf.sprintf "candidate %s: %s" c.cd_label c.cd_note))
      (candidates t)

let matching_rounds t = t.matching_rounds
let refine_swaps t = t.refine_swaps
let hop_builds t = t.hop_builds
let total_seconds t = t.seconds

let counters t =
  let tally f = List.length (List.filter f (attempts t)) in
  [
    ("attempts", List.length t.attempts_rev);
    ("produced", tally (fun a -> match a.at_outcome with Produced _ -> true | _ -> false));
    ("rejected", tally (fun a -> match a.at_outcome with Rejected _ -> true | _ -> false));
    ("skipped", tally (fun a -> match a.at_outcome with Skipped _ -> true | _ -> false));
    ("crashed", tally (fun a -> match a.at_outcome with Crashed _ -> true | _ -> false));
    ("candidates", List.length t.cands_rev);
    ( "valid candidates",
      List.length (List.filter (fun c -> c.cd_ok) (candidates t)) );
    ("matching rounds", t.matching_rounds);
    ("refine swaps", t.refine_swaps);
    ("distcache hop builds", t.hop_builds);
  ]
  @ t.extras

let ms s = Printf.sprintf "%.3f" (1000.0 *. s)

let to_table t =
  let attempt_rows =
    List.map
      (fun a ->
        let outcome, detail =
          match a.at_outcome with
          | Produced n -> (Printf.sprintf "produced %d" n, "")
          | Rejected r -> ("rejected", r)
          | Skipped r -> ("skipped", r)
          | Crashed e -> ("CRASHED", e)
        in
        [ a.at_strategy; outcome; ms a.at_seconds; detail ])
      (attempts t)
  in
  let cand_rows =
    List.map
      (fun c ->
        [
          c.cd_strategy;
          c.cd_label;
          (match c.cd_score with Some s -> string_of_int s | None -> "-");
          (if c.cd_ok then "yes" else "NO: " ^ c.cd_note);
          (if c.cd_winner then "<-- winner" else "");
        ])
      (candidates t)
  in
  let counter_rows = List.map (fun (k, v) -> [ k; string_of_int v ]) (counters t) in
  String.concat "\n"
    [
      "strategy attempts:";
      Tab.render ~header:[ "strategy"; "outcome"; "ms"; "detail" ] attempt_rows;
      "candidates (score = METRICS completion-time model):";
      Tab.render ~header:[ "strategy"; "mapping"; "score"; "valid"; "" ] cand_rows;
      "pipeline counters:";
      Tab.render ~header:[ "counter"; "value" ] counter_rows;
      "phase wall-clock:";
      Tab.render ~header:[ "phase"; "ms" ]
        (List.map (fun (n, s) -> [ n; ms s ]) (phase_seconds t));
      Printf.sprintf "degradation: %s" (degradation_string t.degradation);
      Printf.sprintf "total pipeline time: %s ms" (ms t.seconds);
      "";
    ]

let to_sexp t =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "(pipeline-stats\n (attempts";
  List.iter
    (fun a ->
      let outcome =
        match a.at_outcome with
        | Produced n -> Printf.sprintf "(produced %d)" n
        | Rejected r -> Printf.sprintf "(rejected %S)" r
        | Skipped r -> Printf.sprintf "(skipped %S)" r
        | Crashed e -> Printf.sprintf "(crashed %S)" e
      in
      pf "\n  ((strategy %s) (outcome %s) (seconds %.6f))" a.at_strategy outcome
        a.at_seconds)
    (attempts t);
  pf ")\n (candidates";
  List.iter
    (fun c ->
      pf "\n  ((strategy %s) (mapping %S) (score %s) (valid %b) (winner %b)%s)"
        c.cd_strategy c.cd_label
        (match c.cd_score with Some s -> string_of_int s | None -> "()")
        c.cd_ok c.cd_winner
        (if c.cd_note = "" then "" else Printf.sprintf " (note %S)" c.cd_note))
    (candidates t);
  pf ")\n (counters";
  List.iter (fun (k, v) -> pf " (%s %d)" (String.map (fun ch -> if ch = ' ' then '-' else ch) k) v) (counters t);
  pf ")\n (phases";
  List.iter (fun (n, s) -> pf " (%s %.6f)" n s) (phase_seconds t);
  pf ")\n (winner %s)"
    (match t.winner with
    | Some (s, l) -> Printf.sprintf "((strategy %s) (mapping %S))" s l
    | None -> "()");
  pf "\n (degradation %s)"
    (match t.degradation with
    | Full -> "full"
    | Fallback -> "fallback"
    | Truncated sites ->
        Printf.sprintf "(truncated%s)"
          (String.concat "" (List.map (fun s -> " " ^ s) sites)));
  pf "\n (seconds %.6f))" t.seconds;
  Buffer.contents buf
