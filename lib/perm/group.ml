type t = {
  degree : int;
  elements : Perm.t array;
  index : (int array, int) Hashtbl.t;
  generators : Perm.t list;
}

let generate ?bound gens =
  match gens with
  | [] -> invalid_arg "Group.generate: no generators"
  | g0 :: rest ->
    let degree = Perm.degree g0 in
    if not (List.for_all (fun g -> Perm.degree g = degree) rest) then
      invalid_arg "Group.generate: generator degrees differ";
    let index = Hashtbl.create 64 in
    let order = Queue.create () in
    let acc = ref [] in
    let count = ref 0 in
    let exceeded = ref false in
    let add p =
      let key = Perm.to_array p in
      if not (Hashtbl.mem index key) then begin
        (match bound with
        | Some b when !count >= b -> exceeded := true
        | Some _ | None ->
          Hashtbl.add index key !count;
          incr count;
          acc := p :: !acc;
          Queue.add p order);
        ()
      end
    in
    add (Perm.identity degree);
    while (not !exceeded) && not (Queue.is_empty order) do
      let p = Queue.pop order in
      List.iter (fun g -> if not !exceeded then add (Perm.compose p g)) gens
    done;
    if !exceeded then None
    else begin
      let elements = Array.of_list (List.rev !acc) in
      Some { degree; elements; index; generators = gens }
    end

let degree g = g.degree

let order g = Array.length g.elements

let elements g = Array.copy g.elements

let element g i = g.elements.(i)

let index_of g p = Hashtbl.find_opt g.index (Perm.to_array p)

let mem g p = Option.is_some (index_of g p)

let generators g = g.generators

let mul g i j =
  match Hashtbl.find_opt g.index (Perm.to_array (Perm.compose g.elements.(i) g.elements.(j))) with
  | Some k -> k
  | None -> invalid_arg "Group.mul: product escapes element set"

let inv g i =
  match Hashtbl.find_opt g.index (Perm.to_array (Perm.inverse g.elements.(i))) with
  | Some k -> k
  | None -> invalid_arg "Group.inv: inverse escapes element set"

let is_abelian g =
  let n = order g in
  let rec go i j =
    if i >= n then true
    else if j >= n then go (i + 1) (i + 2)
    else mul g i j = mul g j i && go i (j + 1)
  in
  go 0 1

let orbits g =
  let uf = Oregami_prelude.Union_find.create g.degree in
  Array.iter
    (fun p ->
      for x = 0 to g.degree - 1 do
        ignore (Oregami_prelude.Union_find.union uf x (Perm.apply p x))
      done)
    g.elements;
  Oregami_prelude.Union_find.groups uf |> Array.to_list |> List.filter (fun l -> l <> [])

let is_transitive g = List.length (orbits g) <= 1

let acts_regularly g = order g = g.degree && is_transitive g

let uniform_cycle_lengths g =
  Array.for_all (fun p -> Option.is_some (Perm.uniform_cycle_length p)) g.elements

let subgroup_generated g seeds =
  let seen = Hashtbl.create 16 in
  let q = Queue.create () in
  let add i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      Queue.add i q
    end
  in
  add 0;
  List.iter add seeds;
  let seeds = List.sort_uniq compare (0 :: seeds) in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun s ->
        add (mul g i s);
        add (mul g s i);
        add (inv g i))
      seeds
  done;
  Hashtbl.fold (fun i () acc -> i :: acc) seen [] |> List.sort compare

let is_subgroup g idxs =
  let set = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace set i ()) idxs;
  Hashtbl.mem set 0
  && List.for_all
       (fun i ->
         Hashtbl.mem set (inv g i)
         && List.for_all (fun j -> Hashtbl.mem set (mul g i j)) idxs)
       idxs

let is_normal g idxs =
  let set = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace set i ()) idxs;
  let n = order g in
  let rec all_conj i =
    i >= n
    || (List.for_all (fun h -> Hashtbl.mem set (mul g (mul g i h) (inv g i))) idxs
       && all_conj (i + 1))
  in
  is_subgroup g idxs && all_conj 0

let left_cosets g idxs =
  let n = order g in
  let assigned = Array.make n false in
  let cosets = ref [] in
  for i = 0 to n - 1 do
    if not assigned.(i) then begin
      let coset = List.map (fun h -> mul g i h) idxs |> List.sort_uniq compare in
      List.iter (fun j -> assigned.(j) <- true) coset;
      cosets := coset :: !cosets
    end
  done;
  List.rev !cosets

let cyclic_subgroups ?(poll = fun () -> true) g =
  let n = order g in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let i = ref 0 in
  while !i < n && poll () do
    let sub = subgroup_generated g [ !i ] in
    if not (Hashtbl.mem seen sub) then begin
      Hashtbl.add seen sub ();
      out := sub :: !out
    end;
    incr i
  done;
  List.sort (fun a b -> compare (List.length a, a) (List.length b, b)) !out

let subgroups_of_order ?(max_seed = 2000) ?(poll = fun () -> true) g target =
  if target < 1 || order g mod target <> 0 then []
  else begin
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let consider sub =
      if List.length sub = target && not (Hashtbl.mem seen sub) then begin
        Hashtbl.add seen sub ();
        out := sub :: !out
      end
    in
    let cyclics = cyclic_subgroups ~poll g in
    List.iter consider cyclics;
    (* closures of pairs of cyclic subgroups whose orders divide target *)
    let small =
      List.filter (fun s -> target mod List.length s = 0 && List.length s > 1) cyclics
    in
    let tried = ref 0 in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
        List.iter
          (fun b ->
            if !tried < max_seed && poll () then begin
              incr tried;
              let sub = subgroup_generated g (a @ b) in
              if List.length sub = target then consider sub
            end)
          rest;
        pairs rest
    in
    pairs small;
    (* triples, still bounded *)
    let rec triples = function
      | [] -> ()
      | a :: rest ->
        let rec inner = function
          | [] -> ()
          | b :: rest' ->
            List.iter
              (fun c ->
                if !tried < max_seed && poll () then begin
                  incr tried;
                  let sub = subgroup_generated g (a @ b @ c) in
                  if List.length sub = target then consider sub
                end)
              rest';
            inner rest'
        in
        inner rest;
        triples rest
    in
    triples small;
    List.sort compare !out
  end

let is_prime_power n =
  if n < 2 then None
  else begin
    let rec smallest_factor d = if d * d > n then n else if n mod d = 0 then d else smallest_factor (d + 1) in
    let p = smallest_factor 2 in
    let rec strip m k = if m = 1 then Some (p, k) else if m mod p = 0 then strip (m / p) (k + 1) else None in
    strip n 0
  end

let pp fmt g =
  Format.fprintf fmt "@[<v>group of order %d acting on %d points" (order g) g.degree;
  Array.iteri (fun i p -> Format.fprintf fmt "@,  E%d = %s" i (Perm.to_string p)) g.elements;
  Format.fprintf fmt "@]"
