module Perm = Oregami_perm.Perm
module Group = Oregami_perm.Group
module Taskgraph = Oregami_taskgraph.Taskgraph
module Digraph = Oregami_graph.Digraph
module Ugraph = Oregami_graph.Ugraph
module Traverse = Oregami_graph.Traverse
module Treecanon = Oregami_graph.Treecanon
module Iso = Oregami_graph.Iso
module Topology = Oregami_topology.Topology

type comm_kind = Bijective of Perm.t | Functional | General

type cayley_analysis = {
  group : Group.t;
  gen_perms : (string * Perm.t) list;
  regular_action : bool;
  uniform_cycles : bool;
  is_cayley : bool;
}

type affine_map = { matrix : int array array; offset : int array }

type t = {
  declared_family : string option;
  detected_family : string option;
  comm_kinds : (string * comm_kind) list;
  all_bijective : bool;
  cayley : cayley_analysis option;
  affine_maps : (string * affine_map list) list option;
  single_nodetype : bool;
  requirements : (string * string) list;
}

let comm_function tg phase =
  match Taskgraph.comm_phase tg phase with
  | None -> None
  | Some cp ->
    let n = tg.Taskgraph.n in
    let f = Array.make n (-1) in
    let ok = ref true in
    for v = 0 to n - 1 do
      match Digraph.succ cp.Taskgraph.edges v with
      | [ (w, _) ] -> f.(v) <- w
      | [] | _ :: _ :: _ -> ok := false
    done;
    if !ok then Some f else None

let classify_phase tg name =
  match comm_function tg name with
  | None -> General
  | Some f ->
    if Perm.is_bijection (Array.length f) (fun i -> f.(i)) then
      Bijective (Perm.of_array f)
    else Functional

let cayley_of_kinds n kinds =
  let gens =
    List.filter_map
      (fun (name, k) -> match k with Bijective p -> Some (name, p) | Functional | General -> None)
      kinds
  in
  if List.length gens <> List.length kinds || gens = [] then None
  else begin
    (* paper's halting rule: abandon the closure once it passes |X| *)
    match Group.generate ~bound:n (List.map snd gens) with
    | None -> None
    | Some group ->
      let regular_action = Group.acts_regularly group in
      let uniform_cycles = Group.uniform_cycle_lengths group in
      Some
        {
          group;
          gen_perms = gens;
          regular_action;
          uniform_cycles;
          is_cayley = regular_action && uniform_cycles;
        }
  end

let iso_cap = 64

type family_match = { fam_name : string; relabel : int array; fam_dims : int list option }

let unit_edge_set g =
  Ugraph.edges g |> List.map (fun (u, v, _) -> (u, v)) |> List.sort compare

(* canonical relabeling onto a reference topology: identity when the
   labelled edge sets already coincide, an isomorphism for graphs small
   enough to search, None otherwise *)
let relabel_for g kind =
  let reference = Topology.graph (Topology.make kind) in
  let n = Ugraph.node_count g in
  if n <> Ugraph.node_count reference || Ugraph.edge_count g <> Ugraph.edge_count reference
  then None
  else if unit_edge_set g = unit_edge_set reference then Some (Array.init n (fun i -> i))
  else if n <= iso_cap then Iso.isomorphism_distance_pruned g reference
  else None

let path_order g start =
  (* positions along a path/cycle walk beginning at [start], first step
     towards the smaller-id neighbour *)
  let n = Ugraph.node_count g in
  let pos = Array.make n (-1) in
  let rec walk prev v i =
    pos.(v) <- i;
    let nexts =
      Ugraph.neighbors g v
      |> List.map fst
      |> List.filter (fun u -> u <> prev && pos.(u) = -1)
      |> List.sort compare
    in
    match nexts with [] -> () | u :: _ -> walk v u (i + 1)
  in
  walk (-1) start 0;
  if Array.exists (( = ) (-1)) pos then None else Some pos

let detect_family_match tg =
  let g = Taskgraph.static_graph_unit tg in
  let n = Ugraph.node_count g in
  let degrees = List.init n (Ugraph.degree g) in
  let is_pow2 v = v > 0 && v land (v - 1) = 0 in
  let log2 v =
    let rec go v acc = if v <= 1 then acc else go (v / 2) (acc + 1) in
    go v 0
  in
  let with_relabel fam_name kind fam_dims =
    Option.map (fun relabel -> { fam_name; relabel; fam_dims }) (relabel_for g kind)
  in
  if n >= 2 && 2 * Ugraph.edge_count g = n * (n - 1) then
    Some { fam_name = "complete"; relabel = Array.init n (fun i -> i); fam_dims = None }
  else if n >= 3 && Traverse.is_connected g && List.for_all (( = ) 2) degrees then
    Option.map
      (fun relabel -> { fam_name = "ring"; relabel; fam_dims = None })
      (path_order g 0)
  else if
    n >= 2 && Traverse.is_connected g
    && Ugraph.edge_count g = n - 1
    && List.length (List.filter (( = ) 1) degrees) = 2
    && List.for_all (fun d -> d = 1 || d = 2) degrees
  then begin
    let endpoint =
      let rec find v = if Ugraph.degree g v = 1 then v else find (v + 1) in
      find 0
    in
    Option.map
      (fun relabel -> { fam_name = "line"; relabel; fam_dims = None })
      (path_order g endpoint)
  end
  else if Treecanon.is_tree g then begin
    let same kind = Treecanon.isomorphic_trees g (Topology.graph (Topology.make kind)) in
    if is_pow2 n && same (Topology.Binomial_tree (log2 n)) then
      with_relabel "binomial" (Topology.Binomial_tree (log2 n)) None
    else if is_pow2 (n + 1) && n > 1 && same (Topology.Binary_tree (log2 (n + 1) - 1))
    then with_relabel "bintree" (Topology.Binary_tree (log2 (n + 1) - 1)) None
    else None
  end
  else if is_pow2 n && n >= 4 && List.for_all (( = ) (log2 n)) degrees
          && Option.is_some (with_relabel "hypercube" (Topology.Hypercube (log2 n)) None)
  then with_relabel "hypercube" (Topology.Hypercube (log2 n)) None
  else begin
    (* meshes and tori: try factorizations r x c, r <= c, r >= 2 *)
    let rec try_grid kind_of name r =
      if r * r > n then None
      else if n mod r = 0 && r >= 2 then begin
        let c = n / r in
        match with_relabel name (kind_of r c) (Some [ r; c ]) with
        | Some m -> Some m
        | None -> try_grid kind_of name (r + 1)
      end
      else try_grid kind_of name (r + 1)
    in
    match try_grid (fun r c -> Topology.Mesh (r, c)) "mesh" 2 with
    | Some m -> Some m
    | None ->
      if List.for_all (( = ) 4) degrees then
        try_grid (fun r c -> Topology.Torus (r, c)) "torus" 3
      else None
  end

let detect_family tg = Option.map (fun m -> m.fam_name) (detect_family_match tg)

(* ------------------------------------------------------------------ *)
(* syntactic Cayley detection (paper section 4.2.2 wishlist)           *)

type translations = { tr_offsets : (string * int) list; tr_modulus : int }

(* i -> (inner i) mod n with inner affine of slope 1, recognised with
   three constant-time probes of the inner expression -- never by
   enumerating X (the paper's efficiency motivation) *)
let translation_offset env var n (e : Ast.expr) =
  match e with
  | Ast.Bin (Ast.Mod, inner, m) -> begin
    match Eval.expr env m with
    | Ok modulus when modulus = n -> begin
      let at x = Eval.expr ((var, x) :: env) inner in
      match (at 0, at 1, at 2) with
      | Ok c, Ok c1, Ok c2 when c1 = c + 1 && c2 = c + 2 -> Some (((c mod n) + n) mod n)
      | (Ok _ | Error _), _, _ -> None
    end
    | Ok _ | Error _ -> None
  end
  | Ast.Int _ | Ast.Var _ | Ast.Neg _ | Ast.Bin _ | Ast.Call _ -> None

let syntactic_cayley (c : Compile.compiled) =
  match c.Compile.spaces with
  | [ space ] when List.length space.Compile.dims = 1 && c.Compile.program.Ast.spawns = [] -> begin
    let lo, hi = List.hd space.Compile.dims in
    if lo <> 0 then None
    else begin
      let n = hi + 1 in
      let env = c.Compile.bindings in
      let phase_offset (cp : Ast.comphase) =
        match cp.Ast.rules with
        | [ rule ] when rule.Ast.guard = None -> begin
          match (rule.Ast.src_vars, rule.Ast.dst_exprs) with
          | [ var ], [ e ] when rule.Ast.src_type = rule.Ast.dst_type ->
            Option.map (fun c -> (cp.Ast.cp_name, c)) (translation_offset env var n e)
          | _, _ -> None
        end
        | [] | _ :: _ -> None
      in
      let offsets = List.map phase_offset c.Compile.program.Ast.comphases in
      if offsets = [] || List.exists Option.is_none offsets then None
      else Some { tr_offsets = List.map Option.get offsets; tr_modulus = n }
    end
  end
  | [] | [ _ ] | _ :: _ :: _ -> None

let syntactic_is_cayley tr =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let g = List.fold_left (fun acc (_, c) -> gcd acc c) tr.tr_modulus tr.tr_offsets in
  g = 1

(* ------------------------------------------------------------------ *)
(* affine probing                                                      *)

let eval_rule env (rule : Ast.rule) values =
  let env = List.combine rule.Ast.src_vars values @ env in
  let in_domain =
    match rule.Ast.guard with None -> Ok true | Some c -> Eval.cond env c
  in
  match in_domain with
  | Error _ -> None
  | Ok false -> Some None
  | Ok true -> begin
    let rec eval_all acc = function
      | [] -> Some (List.rev acc)
      | e :: rest -> (
        match Eval.expr env e with Ok v -> eval_all (v :: acc) rest | Error _ -> None)
    in
    match eval_all [] rule.Ast.dst_exprs with
    | Some vs -> Some (Some (Array.of_list vs))
    | None -> None
  end

let probe_rule env dims (rule : Ast.rule) =
  let d = List.length dims in
  if List.length rule.Ast.src_vars <> d || List.length rule.Ast.dst_exprs <> d then None
  else begin
    let lows = List.map fst dims in
    let x0 = Array.of_list lows in
    (* f must be defined at the probe points *)
    let f values =
      match eval_rule env rule values with Some (Some v) -> Some v | Some None | None -> None
    in
    match f (Array.to_list x0) with
    | None -> None
    | Some b0 ->
      let cols =
        List.mapi
          (fun i (lo, hi) ->
            if hi > lo then begin
              let xi = Array.copy x0 in
              xi.(i) <- xi.(i) + 1;
              match f (Array.to_list xi) with
              | Some bi -> Some (Array.init d (fun r -> bi.(r) - b0.(r)))
              | None -> None
            end
            else Some (Array.make d 0))
          dims
      in
      if List.exists Option.is_none cols then None
      else begin
        let cols = List.map Option.get cols in
        let matrix =
          Array.init d (fun r -> Array.of_list (List.map (fun col -> col.(r)) cols))
        in
        let apply x =
          Array.init d (fun r ->
              let row = matrix.(r) in
              let acc = ref 0 in
              Array.iteri (fun c xc -> acc := !acc + (row.(c) * xc)) x;
              !acc)
        in
        let ax0 = apply x0 in
        let offset = Array.init d (fun r -> b0.(r) - ax0.(r)) in
        (* verify on the full domain (bounded) *)
        let total = List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 dims in
        let ok = ref (total <= 65536) in
        if !ok then begin
          let rec enum i x =
            if !ok then
              if i >= d then begin
                let xa = Array.of_list (List.rev x) in
                match eval_rule env rule (List.rev x) with
                | Some (Some got) ->
                  let axb = apply xa in
                  let want = Array.init d (fun r -> axb.(r) + offset.(r)) in
                  if got <> want then ok := false
                | Some None -> ()
                | None -> ok := false
              end
              else begin
                let lo, hi = List.nth dims i in
                for v = lo to hi do
                  enum (i + 1) (v :: x)
                done
              end
          in
          enum 0 []
        end;
        if !ok then Some { matrix; offset } else None
      end
  end

let affine_analysis (c : Compile.compiled) =
  match c.Compile.spaces with
  | [ space ] ->
    let env = c.Compile.bindings in
    let per_phase =
      List.map
        (fun (cp : Ast.comphase) ->
          let maps = List.map (probe_rule env space.Compile.dims) cp.Ast.rules in
          if List.exists Option.is_none maps then None
          else Some (cp.Ast.cp_name, List.map Option.get maps))
        c.Compile.program.Ast.comphases
    in
    if List.exists Option.is_none per_phase then None
    else Some (List.map Option.get per_phase)
  | [] | _ :: _ :: _ -> None

let analyze (c : Compile.compiled) =
  let tg = c.Compile.graph in
  let kinds = List.map (fun name -> (name, classify_phase tg name)) (Taskgraph.comm_names tg) in
  let all_bijective =
    kinds <> []
    && List.for_all (fun (_, k) -> match k with Bijective _ -> true | Functional | General -> false) kinds
  in
  let cayley = if all_bijective then cayley_of_kinds tg.Taskgraph.n kinds else None in
  let requirements =
    List.filter_map
      (fun (s : Compile.node_space) ->
        Option.map (fun r -> (s.Compile.type_name, r)) s.Compile.requires)
      c.Compile.spaces
  in
  {
    declared_family = tg.Taskgraph.declared_family;
    detected_family = detect_family tg;
    comm_kinds = kinds;
    all_bijective;
    cayley;
    affine_maps = affine_analysis c;
    single_nodetype = List.length c.Compile.spaces = 1;
    requirements;
  }

let pp fmt a =
  Format.fprintf fmt "@[<v>analysis:";
  (match a.declared_family with
  | Some f -> Format.fprintf fmt "@,  declared family: %s" f
  | None -> ());
  (match a.detected_family with
  | Some f -> Format.fprintf fmt "@,  detected family: %s" f
  | None -> Format.fprintf fmt "@,  detected family: none");
  List.iter
    (fun (name, kind) ->
      let k =
        match kind with
        | Bijective p -> "bijective " ^ Perm.to_string p
        | Functional -> "functional"
        | General -> "general"
      in
      Format.fprintf fmt "@,  phase %s: %s" name k)
    a.comm_kinds;
  (match a.cayley with
  | Some cy ->
    Format.fprintf fmt "@,  group closure: |G| = %d, regular action = %b, uniform cycles = %b, Cayley = %b"
      (Group.order cy.group) cy.regular_action cy.uniform_cycles cy.is_cayley
  | None -> Format.fprintf fmt "@,  group closure: n/a");
  (match a.affine_maps with
  | Some _ -> Format.fprintf fmt "@,  affine communication: yes (systolic candidate)"
  | None -> Format.fprintf fmt "@,  affine communication: no");
  if a.requirements <> [] then
    Format.fprintf fmt "@,  requirements: %s"
      (String.concat ", "
         (List.map (fun (ty, cls) -> Printf.sprintf "%s requires %s" ty cls) a.requirements));
  Format.fprintf fmt "@]"
