(** Regularity analyses over a compiled LaRCS program — the checks
    MAPPER's dispatch (paper Fig 3) is built on:

    - is each communication phase a {e bijection} on the tasks (then it
      is a permutation and the phases may generate a Cayley graph,
      §4.2.2)?
    - are the communication functions {e affine} on an integer-lattice
      label space (then systolic synthesis applies, §4.2.1)?
    - does the static graph belong to a {e nameable family} (then a
      canned mapping applies, §4.1)? *)

type comm_kind =
  | Bijective of Oregami_perm.Perm.t
  | Functional  (** every task sends to exactly one task; not bijective *)
  | General

type cayley_analysis = {
  group : Oregami_perm.Group.t;
  gen_perms : (string * Oregami_perm.Perm.t) list;  (** phase name → generator *)
  regular_action : bool;  (** |G| = |X| and transitive *)
  uniform_cycles : bool;  (** the paper's equal-cycle-length test *)
  is_cayley : bool;  (** task graph ≅ Cayley graph of the action *)
}

type affine_map = {
  matrix : int array array;  (** row-major [A] *)
  offset : int array;  (** [b]; the rule maps label [x] to [A·x + b] *)
}

type t = {
  declared_family : string option;
  detected_family : string option;
      (** ["ring"], ["line"], ["complete"], ["hypercube"], ["mesh"],
          ["bintree"], ["binomial"], or [None] *)
  comm_kinds : (string * comm_kind) list;
  all_bijective : bool;
  cayley : cayley_analysis option;
      (** present when all phases are bijective and the closure stayed
          within the paper's [|G| ≤ |X|] halting bound *)
  affine_maps : (string * affine_map list) list option;
      (** per phase, per rule; present when the program has a single
          node type and every rule probes affine *)
  single_nodetype : bool;
  requirements : (string * string) list;
      (** node types carrying a [requires CLASS] annotation (type name →
          capability class); the mapper's constraint layer enforces
          them per task via [Taskgraph.node_requires] *)
}

val comm_function : Oregami_taskgraph.Taskgraph.t -> string -> int array option
(** The phase's successor function, when every task has out-degree
    exactly one. *)

type translations = {
  tr_offsets : (string * int) list;  (** phase name → offset [c] of [i → (i+c) mod n] *)
  tr_modulus : int;
}

val syntactic_cayley : Compile.compiled -> translations option
(** The paper's §4.2.2 wishlist: "syntactic characterizations that
    enable us to detect whether the communication functions yield a
    Cayley graph … avoid computation of the cycle notation".

    Detects, purely syntactically on the AST, that the program has a
    single 1-D node type [0..n-1] and every communication rule is a
    guard-free modular translation [i → (i ± c) mod n].  Such functions
    generate a subgroup of Z_n; no group closure is ever computed. *)

val syntactic_is_cayley : translations -> bool
(** The translations act regularly (the task graph is the Cayley graph
    of Z_n) iff [gcd(offsets, n) = 1] — an O(#phases) arithmetic test
    replacing the O(|X|²) closure. *)

val analyze : Compile.compiled -> t

type family_match = {
  fam_name : string;
  relabel : int array;
      (** task id → canonical id within the family's standard numbering
          (the numbering {!Oregami_topology.Topology} uses); canned
          mappings must be composed with this *)
  fam_dims : int list option;  (** mesh/torus factorization found *)
}

val detect_family : Oregami_taskgraph.Taskgraph.t -> string option
(** Structural detection on the static (unit) graph; exact for rings,
    lines, complete graphs and trees of any size, isomorphism-checked
    for hypercubes/meshes/tori up to 64 nodes. *)

val detect_family_match : Oregami_taskgraph.Taskgraph.t -> family_match option
(** Like {!detect_family} but also produces the canonical relabeling
    (identity when the task numbering already matches the family's
    standard numbering — the common case for naturally written LaRCS
    programs; an isomorphism otherwise).  [None] when no family is
    found {e or} a relabeling cannot be afforded (large irregularly
    numbered graphs), in which case canned mappings must not be
    used. *)

val pp : Format.formatter -> t -> unit
