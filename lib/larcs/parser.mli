(** Recursive-descent parser for LaRCS.

    Grammar sketch (see {!Ast} for an example program):

    {v
    program  := "algorithm" ID "(" [ID {"," ID}] ")" ";" decl*
    decl     := "import" ID {"," ID} ";"
              | "family" ID ";"
              | "nodetype" ID ":" ranges ["nodesymmetric"] ["requires" ID] ";"
              | "comphase" ID "{" rule* "}"
              | "exphase" ID [":" ID pattern] ["cost" expr] ";"
              | "phases" pexpr ";"
    ranges   := range | "(" range {"," range} ")"
    range    := expr ".." expr
    rule     := ID pattern "->" ID target ["volume" expr] ["when" cond] ";"
    pattern  := ID | "(" ID {"," ID} ")"
    target   := expr | "(" expr "," expr {"," expr} ")"
    pexpr    := ppar {";" ppar}
    ppar     := prep {"||" prep}
    prep     := patom ["^" primary]
    patom    := "eps" | ID | "(" pexpr ")"
    expr     := add-level with xor lowest, then + -, then * / mod div,
                unary -, calls min/max/abs/pow/log2, parentheses
    cond     := "or"/"and"/"not" over comparisons  = != < <= > >=
    v} *)

val parse : string -> (Ast.program, string) result
(** Lexes and parses a complete program; errors carry line/column. *)

val parse_expr : string -> (Ast.expr, string) result
(** Parses a standalone arithmetic expression (used by the CLI for
    parameter values and by tests). *)
