(** The LaRCS compiler: expands a parametric program, under concrete
    values for its parameters and imported variables, into the task
    graph data structures used by MAPPER and METRICS (paper Fig 2c). *)

type node_space = {
  type_name : string;
  dims : (int * int) list;  (** per-dimension inclusive (lo, hi) *)
  offset : int;  (** first global task id of this type *)
  count : int;
  requires : string option;
      (** processor capability class every task of this type requires
          (the declaration's [requires CLASS] annotation) *)
}

type compiled = {
  program : Ast.program;
  bindings : (string * int) list;
  spaces : node_space list;
  graph : Oregami_taskgraph.Taskgraph.t;
  activation : int array;
      (** per-task spawn generation: 0 for statically created tasks;
          level in the spawn tree for [spawntree] tasks (paper §6's
          dynamically spawned computations with a regular pattern).
          Tasks of generation [g] exist only from step [g] on, which
          the incremental placement in [Mapper.Incremental] honours. *)
}

val compile : ?bindings:(string * int) list -> Ast.program -> (compiled, string) result
(** Every algorithm parameter and imported variable must be bound.
    Fails when a rule's destination falls outside its node type's label
    ranges (use [when] guards to trim boundaries), on undeclared types,
    or on arity mismatches.

    A [spawntree t : depth d;] declaration contributes a node space of
    [2^(d+1)-1] tasks (the full binary spawn tree), an implicit
    communication phase [t_spawn] carrying the spawn messages
    (parent → children), and per-task activation levels. *)

val compile_source :
  ?bindings:(string * int) list -> string -> (compiled, string) result
(** Parse + compile. *)

val task_graph :
  ?bindings:(string * int) list -> string -> (Oregami_taskgraph.Taskgraph.t, string) result
(** Parse + compile, returning just the task graph. *)

val node_id : compiled -> string -> int list -> int option
(** Global task id of a typed label tuple, e.g.
    [node_id c "body" [3]]. *)

val node_label_values : compiled -> int -> int list
(** The label tuple of a global task id. *)

val dump : compiled -> string
(** An s-expression dump of the compiled structures (the analogue of
    the paper's generated Scheme functions, Fig 2c). *)
