module Digraph = Oregami_graph.Digraph
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr

type node_space = {
  type_name : string;
  dims : (int * int) list;
  offset : int;
  count : int;
  requires : string option;
}

type compiled = {
  program : Ast.program;
  bindings : (string * int) list;
  spaces : node_space list;
  graph : Taskgraph.t;
  activation : int array;
}

let ( let* ) = Result.bind

let space_size dims =
  List.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 dims

(* Hard ceiling on task counts: parameter bindings come from the
   command line, and a huge or overflowing node space must be a
   compile Error, never an [Array.make] crash or an OOM. *)
let max_tasks = 1_000_000

(* [space_size] with an overflow-safe cap: [None] when the product
   exceeds [max_tasks]. *)
let checked_space_size dims =
  List.fold_left
    (fun acc (lo, hi) ->
      match acc with
      | None -> None
      | Some a ->
        let d = max 0 (hi - lo + 1) in
        if d = 0 then Some 0 else if a > max_tasks / d then None else Some (a * d))
    (Some 1) dims

(* Mixed-radix rank of a label tuple within its space, row-major. *)
let rank_of dims values =
  let rec go dims values acc =
    match (dims, values) with
    | [], [] -> Some acc
    | (lo, hi) :: dims, v :: values ->
      if v < lo || v > hi then None else go dims values ((acc * (hi - lo + 1)) + (v - lo))
    | [], _ :: _ | _ :: _, [] -> None
  in
  go dims values 0

let values_of dims rank =
  let sizes = List.map (fun (lo, hi) -> hi - lo + 1) dims in
  let rec go dims sizes rank =
    match (dims, sizes) with
    | [], [] -> []
    | (lo, _) :: dims, _size :: sizes ->
      let tail_size = List.fold_left ( * ) 1 sizes in
      (lo + (rank / tail_size)) :: go dims sizes (rank mod tail_size)
    | [], _ :: _ | _ :: _, [] -> assert false
  in
  go dims sizes rank

let iter_space dims f =
  let total = space_size dims in
  for r = 0 to total - 1 do
    f (values_of dims r)
  done

let find_space spaces name = List.find_opt (fun s -> s.type_name = name) spaces

let label_string multi type_name values =
  let tuple =
    match values with
    | [ v ] -> string_of_int v
    | vs -> "(" ^ String.concat "," (List.map string_of_int vs) ^ ")"
  in
  if multi then type_name ^ ":" ^ tuple else tuple

let build_spaces env nodetypes =
  let* spaces_rev, _ =
    List.fold_left
      (fun acc (nt : Ast.nodetype) ->
        let* spaces, offset = acc in
        let* dims =
          List.fold_left
            (fun acc { Ast.lo; hi } ->
              let* dims = acc in
              let* lo = Eval.expr env lo in
              let* hi = Eval.expr env hi in
              if hi < lo then
                Error
                  (Printf.sprintf "nodetype %S: empty range %d .. %d" nt.Ast.nt_name lo hi)
              else Ok ((lo, hi) :: dims))
            (Ok []) nt.Ast.nt_ranges
        in
        let dims = List.rev dims in
        let* count =
          match checked_space_size dims with
          | Some c when offset <= max_tasks - c -> Ok c
          | Some _ | None ->
            Error
              (Printf.sprintf "nodetype %S: node space exceeds %d tasks"
                 nt.Ast.nt_name max_tasks)
        in
        let space =
          { type_name = nt.Ast.nt_name; dims; offset; count;
            requires = nt.Ast.nt_requires }
        in
        Ok (space :: spaces, offset + count))
      (Ok ([], 0))
      nodetypes
  in
  Ok (List.rev spaces_rev)

let compile_comphase env spaces n (cp : Ast.comphase) =
  let g = Digraph.create n in
  let* () =
    List.fold_left
      (fun acc (rule : Ast.rule) ->
        let* () = acc in
        let* src =
          match find_space spaces rule.Ast.src_type with
          | Some s -> Ok s
          | None -> Error (Printf.sprintf "phase %S: unknown node type %S" cp.Ast.cp_name rule.Ast.src_type)
        in
        let* dst =
          match find_space spaces rule.Ast.dst_type with
          | Some s -> Ok s
          | None -> Error (Printf.sprintf "phase %S: unknown node type %S" cp.Ast.cp_name rule.Ast.dst_type)
        in
        let* () =
          if List.length rule.Ast.src_vars = List.length src.dims then Ok ()
          else Error (Printf.sprintf "phase %S: %S has %d dimensions but pattern binds %d"
                        cp.Ast.cp_name src.type_name (List.length src.dims)
                        (List.length rule.Ast.src_vars))
        in
        let* () =
          if List.length rule.Ast.dst_exprs = List.length dst.dims then Ok ()
          else Error (Printf.sprintf "phase %S: %S has %d dimensions but target has %d"
                        cp.Ast.cp_name dst.type_name (List.length dst.dims)
                        (List.length rule.Ast.dst_exprs))
        in
        let err = ref None in
        iter_space src.dims (fun values ->
            if !err = None then begin
              let env = List.combine rule.Ast.src_vars values @ env in
              let fire =
                match rule.Ast.guard with
                | None -> Ok true
                | Some c -> Eval.cond env c
              in
              match fire with
              | Error m -> err := Some m
              | Ok false -> ()
              | Ok true -> begin
                let target =
                  List.fold_left
                    (fun acc e ->
                      let* l = acc in
                      let* v = Eval.expr env e in
                      Ok (v :: l))
                    (Ok []) rule.Ast.dst_exprs
                in
                match target with
                | Error m -> err := Some m
                | Ok rev_vals -> begin
                  let dst_values = List.rev rev_vals in
                  match rank_of dst.dims dst_values with
                  | None ->
                    err :=
                      Some
                        (Printf.sprintf
                           "phase %S: target (%s) is outside node type %S (from source (%s)); add a 'when' guard"
                           cp.Ast.cp_name
                           (String.concat "," (List.map string_of_int dst_values))
                           dst.type_name
                           (String.concat "," (List.map string_of_int values)))
                  | Some dst_rank -> begin
                    let src_rank =
                      match rank_of src.dims values with Some r -> r | None -> assert false
                    in
                    let volume =
                      match rule.Ast.volume with
                      | None -> Ok 1
                      | Some e -> Eval.expr env e
                    in
                    match volume with
                    | Error m -> err := Some m
                    | Ok w ->
                      Digraph.add_edge ~w g (src.offset + src_rank) (dst.offset + dst_rank)
                  end
                end
              end
            end);
        match !err with
        | Some m -> Error (Printf.sprintf "phase %S: %s" cp.Ast.cp_name m)
        | None -> Ok ())
      (Ok ()) cp.Ast.rules
  in
  Ok (cp.Ast.cp_name, g)

let compile_exphase env spaces n (ep : Ast.exphase) =
  let costs = Array.make n 0 in
  match ep.Ast.ep_pattern with
  | None ->
    let* c = match ep.Ast.ep_cost with None -> Ok 1 | Some e -> Eval.expr env e in
    Array.fill costs 0 n c;
    Ok (ep.Ast.ep_name, costs)
  | Some (type_name, vars) -> begin
    match find_space spaces type_name with
    | None -> Error (Printf.sprintf "exphase %S: unknown node type %S" ep.Ast.ep_name type_name)
    | Some space ->
      if List.length vars <> List.length space.dims then
        Error (Printf.sprintf "exphase %S: pattern arity mismatch" ep.Ast.ep_name)
      else begin
        let err = ref None in
        iter_space space.dims (fun values ->
            if !err = None then begin
              let env = List.combine vars values @ env in
              let c = match ep.Ast.ep_cost with None -> Ok 1 | Some e -> Eval.expr env e in
              match (c, rank_of space.dims values) with
              | Ok c, Some r -> costs.(space.offset + r) <- c
              | Error m, _ -> err := Some m
              | Ok _, None -> assert false
            end);
        match !err with
        | Some m -> Error (Printf.sprintf "exphase %S: %s" ep.Ast.ep_name m)
        | None -> Ok (ep.Ast.ep_name, costs)
      end
  end

let rec compile_pexpr env (pe : Ast.pexpr) =
  match pe with
  | Ast.PEps -> Ok Phase_expr.Epsilon
  | Ast.PPhase name -> Ok (Phase_expr.Comm name) (* fixed up to Exec below *)
  | Ast.PSeq (a, b) ->
    let* a = compile_pexpr env a in
    let* b = compile_pexpr env b in
    Ok (Phase_expr.Seq (a, b))
  | Ast.PPar (a, b) ->
    let* a = compile_pexpr env a in
    let* b = compile_pexpr env b in
    Ok (Phase_expr.Par (a, b))
  | Ast.PRep (a, e) ->
    let* a = compile_pexpr env a in
    let* k = Eval.expr env e in
    if k < 0 then Error (Printf.sprintf "negative repetition count %d" k)
    else Ok (Phase_expr.Repeat (a, k))

(* Phase names in the expression are resolved against declarations:
   comm phases become [Comm], exec phases [Exec]. *)
let rec resolve_kinds comms execs (pe : Phase_expr.t) =
  match pe with
  | Phase_expr.Epsilon -> Ok Phase_expr.Epsilon
  | Phase_expr.Comm name | Phase_expr.Exec name ->
    if List.mem name comms then Ok (Phase_expr.Comm name)
    else if List.mem name execs then Ok (Phase_expr.Exec name)
    else Error (Printf.sprintf "phase expression references undeclared phase %S" name)
  | Phase_expr.Seq (a, b) ->
    let* a = resolve_kinds comms execs a in
    let* b = resolve_kinds comms execs b in
    Ok (Phase_expr.Seq (a, b))
  | Phase_expr.Par (a, b) ->
    let* a = resolve_kinds comms execs a in
    let* b = resolve_kinds comms execs b in
    Ok (Phase_expr.Par (a, b))
  | Phase_expr.Repeat (a, k) ->
    let* a = resolve_kinds comms execs a in
    Ok (Phase_expr.Repeat (a, k))

let compile ?(bindings = []) (program : Ast.program) =
  let needed = program.Ast.params @ program.Ast.imports in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        if List.mem_assoc p bindings then Ok ()
        else Error (Printf.sprintf "missing binding for parameter %S" p))
      (Ok ()) needed
  in
  let env = bindings in
  (* spawn trees are node spaces too: 2^(depth+1)-1 tasks each *)
  let* spawn_types =
    List.fold_left
      (fun acc (sp : Ast.spawntree) ->
        let* l = acc in
        let* d = Eval.expr env sp.Ast.sp_depth in
        if d < 0 then Error (Printf.sprintf "spawntree %S: negative depth" sp.Ast.sp_name)
        else if d > 19 then
          (* 2^(d+1)-1 tasks: anything deeper blows the task ceiling
             (and [lsl] past the word size is meaningless anyway) *)
          Error
            (Printf.sprintf "spawntree %S: depth %d too deep (max 19)" sp.Ast.sp_name d)
        else begin
          let count = (1 lsl (d + 1)) - 1 in
          Ok
            (( { Ast.nt_name = sp.Ast.sp_name;
                 nt_ranges = [ { Ast.lo = Ast.Int 0; hi = Ast.Int (count - 1) } ];
                 nt_symmetric = false;
                 nt_requires = None },
               d )
            :: l)
        end)
      (Ok []) program.Ast.spawns
  in
  let spawn_types = List.rev spawn_types in
  let* spaces =
    build_spaces env (program.Ast.nodetypes @ List.map fst spawn_types)
  in
  let* () = if spaces <> [] then Ok () else Error "program declares no node types" in
  let n = List.fold_left (fun acc s -> acc + s.count) 0 spaces in
  let* () = if n > 0 then Ok () else Error "program has zero tasks" in
  let* comm_phases =
    List.fold_left
      (fun acc cp ->
        let* l = acc in
        let* phase = compile_comphase env spaces n cp in
        Ok (phase :: l))
      (Ok []) program.Ast.comphases
  in
  let comm_phases = List.rev comm_phases in
  (* implicit spawn phases: parent -> children within each spawn tree *)
  let* spawn_phases =
    List.fold_left
      (fun acc ((nt : Ast.nodetype), _depth) ->
        let* l = acc in
        match find_space spaces nt.Ast.nt_name with
        | None -> Error "internal error: spawn space missing"
        | Some space ->
          let g = Digraph.create n in
          for i = 0 to space.count - 1 do
            List.iter
              (fun c ->
                if c < space.count then
                  Digraph.add_edge g (space.offset + i) (space.offset + c))
              [ (2 * i) + 1; (2 * i) + 2 ]
          done;
          let name = nt.Ast.nt_name ^ "_spawn" in
          if List.mem_assoc name comm_phases then
            Error (Printf.sprintf "phase name %S collides with the implicit spawn phase" name)
          else Ok ((name, g) :: l))
      (Ok []) spawn_types
  in
  let comm_phases = comm_phases @ List.rev spawn_phases in
  let* exec_phases =
    List.fold_left
      (fun acc ep ->
        let* l = acc in
        let* phase = compile_exphase env spaces n ep in
        Ok (phase :: l))
      (Ok []) program.Ast.exphases
  in
  let exec_phases = List.rev exec_phases in
  let* expr_raw = compile_pexpr env program.Ast.phases in
  let* expr =
    resolve_kinds (List.map fst comm_phases) (List.map fst exec_phases) expr_raw
  in
  let multi = List.length spaces > 1 in
  let node_labels = Array.make n "" in
  let node_types = Array.make n "" in
  let node_requires = Array.make n "" in
  List.iter
    (fun space ->
      let req = Option.value ~default:"" space.requires in
      iter_space space.dims (fun values ->
          match rank_of space.dims values with
          | Some r ->
            node_labels.(space.offset + r) <- label_string multi space.type_name values;
            node_types.(space.offset + r) <- space.type_name;
            node_requires.(space.offset + r) <- req
          | None -> assert false))
    spaces;
  let declared_symmetric =
    List.for_all (fun (nt : Ast.nodetype) -> nt.Ast.nt_symmetric) program.Ast.nodetypes
  in
  let* graph =
    Taskgraph.make ~node_labels ~node_types ~node_requires ~declared_symmetric
      ?declared_family:program.Ast.family ~name:program.Ast.prog_name ~n ~comm_phases
      ~exec_phases ~expr ()
  in
  let activation = Array.make n 0 in
  List.iter
    (fun ((nt : Ast.nodetype), _) ->
      match find_space spaces nt.Ast.nt_name with
      | None -> ()
      | Some space ->
        for i = 0 to space.count - 1 do
          let rec level v acc = if v = 0 then acc else level ((v - 1) / 2) (acc + 1) in
          activation.(space.offset + i) <- level i 0
        done)
    spawn_types;
  Ok { program; bindings; spaces; graph; activation }

let compile_source ?bindings source =
  let* program = Parser.parse source in
  compile ?bindings program

let task_graph ?bindings source =
  let* c = compile_source ?bindings source in
  Ok c.graph

let node_id c type_name values =
  match find_space c.spaces type_name with
  | None -> None
  | Some space -> Option.map (fun r -> space.offset + r) (rank_of space.dims values)

let node_label_values c id =
  let space =
    List.find (fun s -> id >= s.offset && id < s.offset + s.count) c.spaces
  in
  values_of space.dims (id - space.offset)

let dump c =
  let buf = Buffer.create 1024 in
  let tg = c.graph in
  Buffer.add_string buf (Printf.sprintf "(algorithm %s\n" tg.Taskgraph.tg_name);
  Buffer.add_string buf
    (Printf.sprintf "  (bindings %s)\n"
       (String.concat " "
          (List.map (fun (k, v) -> Printf.sprintf "(%s %d)" k v) c.bindings)));
  Buffer.add_string buf (Printf.sprintf "  (tasks %d)\n" tg.Taskgraph.n);
  List.iter
    (fun space ->
      Buffer.add_string buf
        (Printf.sprintf "  (nodetype %s (offset %d) (count %d) (dims %s)%s)\n"
           space.type_name space.offset space.count
           (String.concat " "
              (List.map (fun (lo, hi) -> Printf.sprintf "(%d %d)" lo hi) space.dims))
           (match space.requires with
           | Some r -> Printf.sprintf " (requires %s)" r
           | None -> "")))
    c.spaces;
  List.iter
    (fun { Taskgraph.cp_name; edges } ->
      Buffer.add_string buf (Printf.sprintf "  (comphase %s\n" cp_name);
      List.iter
        (fun (u, v, w) ->
          Buffer.add_string buf (Printf.sprintf "    (edge %d %d (volume %d))\n" u v w))
        (Digraph.edges edges);
      Buffer.add_string buf "  )\n")
    tg.Taskgraph.comm_phases;
  List.iter
    (fun { Taskgraph.ep_name; costs } ->
      Buffer.add_string buf
        (Printf.sprintf "  (exphase %s (costs %s))\n" ep_name
           (String.concat " " (Array.to_list (Array.map string_of_int costs)))))
    tg.Taskgraph.exec_phases;
  Buffer.add_string buf
    (Printf.sprintf "  (phases %s))\n" (Phase_expr.to_string tg.Taskgraph.expr));
  Buffer.contents buf
