type token =
  | INT of int
  | ID of string
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | DOTDOT
  | ARROW
  | CARET
  | PARBAR
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ
  | NE
  | LE
  | GE
  | LT
  | GT
  | EOF

type lexeme = { tok : token; line : int; col : int }

let keywords =
  [ "algorithm"; "import"; "family"; "nodetype"; "comphase"; "exphase"; "phases";
    "volume"; "when"; "cost"; "mod"; "xor"; "div"; "eps"; "nodesymmetric"; "requires"; "in";
    "and"; "or"; "not"; "at"; "spawntree"; "depth" ]

let is_digit c = c >= '0' && c <= '9'

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 and col = ref 1 in
  let error = ref None in
  let i = ref 0 in
  let emit tok = out := { tok; line = !line; col = !col } :: !out in
  let advance k =
    for _ = 1 to k do
      if !i < n && src.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    done
  in
  while !i < n && !error = None do
    let c = src.[!i] in
    let peek = if !i + 1 < n then Some src.[!i + 1] else None in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '#' || (c = '-' && peek = Some '-') then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if is_digit c then begin
      let start = !i and l0 = !line and c0 = !col in
      while !i < n && is_digit src.[!i] do
        advance 1
      done;
      (match int_of_string_opt (String.sub src start (!i - start)) with
      | Some v -> out := { tok = INT v; line = l0; col = c0 } :: !out
      | None ->
        error :=
          Some
            (Printf.sprintf "line %d, col %d: integer literal %s does not fit in an int"
               l0 c0
               (String.sub src start (!i - start))))
    end
    else if is_alpha c then begin
      let start = !i and l0 = !line and c0 = !col in
      while !i < n && is_alnum src.[!i] do
        advance 1
      done;
      let word = String.sub src start (!i - start) in
      let lower = String.lowercase_ascii word in
      let tok = if List.mem lower keywords then KW lower else ID word in
      out := { tok; line = l0; col = c0 } :: !out
    end
    else begin
      let two tok = (* two-character token *) emit tok; advance 2 in
      let one tok = emit tok; advance 1 in
      match (c, peek) with
      | '-', Some '>' -> two ARROW
      | '|', Some '|' -> two PARBAR
      | '.', Some '.' -> two DOTDOT
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | '^', _ -> one CARET
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '=', _ -> one EQ
      | '<', _ -> one LT
      | '>', _ -> one GT
      | _, _ ->
        error := Some (Printf.sprintf "line %d, col %d: unexpected character %C" !line !col c)
    end
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
    emit EOF;
    Ok (List.rev !out)

let token_name = function
  | INT v -> Printf.sprintf "integer %d" v
  | ID s -> Printf.sprintf "identifier %S" s
  | KW s -> Printf.sprintf "keyword %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOTDOT -> "'..'"
  | ARROW -> "'->'"
  | CARET -> "'^'"
  | PARBAR -> "'||'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EQ -> "'='"
  | NE -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | EOF -> "end of input"
