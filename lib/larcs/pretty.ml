let rec expr e =
  match e with
  | Ast.Int v -> string_of_int v
  | Ast.Var v -> v
  | Ast.Neg a -> "-" ^ atom a
  | Ast.Bin (op, a, b) -> Printf.sprintf "%s %s %s" (atom a) (Ast.binop_name op) (atom b)
  | Ast.Call (f, args) -> Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))

and atom e =
  match e with
  | Ast.Int _ | Ast.Var _ | Ast.Call _ -> expr e
  | Ast.Neg _ | Ast.Bin _ -> "(" ^ expr e ^ ")"

let rec cond c =
  match c with
  | Ast.Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (expr a) (Ast.cmpop_name op) (expr b)
  | Ast.And (a, b) -> Printf.sprintf "(%s) and (%s)" (cond a) (cond b)
  | Ast.Or (a, b) -> Printf.sprintf "(%s) or (%s)" (cond a) (cond b)
  | Ast.Not a -> Printf.sprintf "not (%s)" (cond a)

let rec pexpr pe =
  match pe with
  | Ast.PEps -> "eps"
  | Ast.PPhase name -> name
  | Ast.PSeq (a, b) -> Printf.sprintf "%s; %s" (pseq a) (pseq b)
  | Ast.PRep (a, e) -> Printf.sprintf "%s^%s" (patom a) (rep_exponent e)
  | Ast.PPar (a, b) -> Printf.sprintf "%s || %s" (patom a) (patom b)

and pseq pe =
  match pe with
  | Ast.PPar _ -> "(" ^ pexpr pe ^ ")"
  | Ast.PEps | Ast.PPhase _ | Ast.PSeq _ | Ast.PRep _ -> pexpr pe

and patom pe =
  match pe with
  | Ast.PEps | Ast.PPhase _ -> pexpr pe
  | Ast.PSeq _ | Ast.PRep _ | Ast.PPar _ -> "(" ^ pexpr pe ^ ")"

and rep_exponent e =
  match e with
  | Ast.Int v when v >= 0 -> string_of_int v
  | Ast.Var v -> v
  | Ast.Int _ | Ast.Neg _ | Ast.Bin _ | Ast.Call _ -> "(" ^ expr e ^ ")"

let id_pattern = function
  | [ v ] -> v
  | vs -> "(" ^ String.concat ", " vs ^ ")"

let target_pattern = function
  | [ e ] -> atom e
  | es -> "(" ^ String.concat ", " (List.map expr es) ^ ")"

let range { Ast.lo; hi } = Printf.sprintf "%s .. %s" (expr lo) (expr hi)

let program (p : Ast.program) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "algorithm %s(%s);" p.Ast.prog_name (String.concat ", " p.Ast.params);
  if p.Ast.imports <> [] then line "import %s;" (String.concat ", " p.Ast.imports);
  (match p.Ast.family with Some f -> line "family %s;" f | None -> ());
  List.iter
    (fun (nt : Ast.nodetype) ->
      let ranges =
        match nt.Ast.nt_ranges with
        | [ r ] -> range r
        | rs -> "(" ^ String.concat ", " (List.map range rs) ^ ")"
      in
      line "nodetype %s : %s%s%s;" nt.Ast.nt_name ranges
        (if nt.Ast.nt_symmetric then " nodesymmetric" else "")
        (match nt.Ast.nt_requires with
        | Some cls -> " requires " ^ cls
        | None -> ""))
    p.Ast.nodetypes;
  List.iter
    (fun (sp : Ast.spawntree) -> line "spawntree %s : depth %s;" sp.Ast.sp_name (expr sp.Ast.sp_depth))
    p.Ast.spawns;
  List.iter
    (fun (cp : Ast.comphase) ->
      line "comphase %s {" cp.Ast.cp_name;
      List.iter
        (fun (r : Ast.rule) ->
          let vol = match r.Ast.volume with None -> "" | Some e -> " volume " ^ expr e in
          let guard = match r.Ast.guard with None -> "" | Some c -> " when " ^ cond c in
          line "  %s %s -> %s %s%s%s;" r.Ast.src_type (id_pattern r.Ast.src_vars)
            r.Ast.dst_type (target_pattern r.Ast.dst_exprs) vol guard)
        cp.Ast.rules;
      line "}")
    p.Ast.comphases;
  List.iter
    (fun (ep : Ast.exphase) ->
      let pat =
        match ep.Ast.ep_pattern with
        | None -> ""
        | Some (ty, vars) -> Printf.sprintf " : %s %s" ty (id_pattern vars)
      in
      let cost = match ep.Ast.ep_cost with None -> "" | Some e -> " cost " ^ expr e in
      line "exphase %s%s%s;" ep.Ast.ep_name pat cost)
    p.Ast.exphases;
  line "phases %s;" (pexpr p.Ast.phases);
  Buffer.contents buf
