(** Abstract syntax of LaRCS (Language for Regular Communication
    Structures).

    A LaRCS program is parametric: its size is independent of the task
    count.  Example (the paper's n-body program, Fig 2b):

    {v
    algorithm nbody(n, s);

    nodetype body : 0 .. n-1 nodesymmetric;

    comphase ring    { body i -> body ((i+1) mod n); }
    comphase chordal { body i -> body ((i + (n+1)/2) mod n); }

    exphase compute1 cost 10;
    exphase compute2 cost 20;

    phases ((ring; compute1)^((n+1)/2); chordal; compute2)^s;
    v} *)

type binop = Add | Sub | Mul | Div | Mod | Xor | Pow

type expr =
  | Int of int
  | Var of string
  | Neg of expr
  | Bin of binop * expr * expr
  | Call of string * expr list  (** builtins: min, max, abs, pow, log2 *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type range = { lo : expr; hi : expr }
(** Inclusive integer range [lo .. hi]. *)

type nodetype = {
  nt_name : string;
  nt_ranges : range list;  (** one per label dimension *)
  nt_symmetric : bool;  (** declared [nodesymmetric] *)
  nt_requires : string option;
      (** declared [requires CLASS]: every task of this type must be
          placed on a processor of that capability class *)
}

type rule = {
  src_type : string;
  src_vars : string list;  (** index variables bound over the source type *)
  dst_type : string;
  dst_exprs : expr list;  (** destination label, as functions of the sources *)
  volume : expr option;  (** message volume; default 1 *)
  guard : cond option;  (** [when] clause restricting the source labels *)
}

type comphase = { cp_name : string; rules : rule list }

type exphase = {
  ep_name : string;
  ep_pattern : (string * string list) option;
      (** optional [: type vars] binding for a per-task cost *)
  ep_cost : expr option;  (** default 1 *)
}

type spawntree = {
  sp_name : string;
  sp_depth : expr;
      (** the tree grows to this depth: [2^(depth+1) - 1] tasks, task
          [i] spawning children [2i+1] and [2i+2] (paper §6: divide and
          conquer spawns "a full binary tree") *)
}

type pexpr =
  | PEps
  | PPhase of string
  | PSeq of pexpr * pexpr
  | PRep of pexpr * expr
  | PPar of pexpr * pexpr

type program = {
  prog_name : string;
  params : string list;
  imports : string list;  (** variables imported from the host program *)
  family : string option;  (** declared well-known family, e.g. ["ring"] *)
  nodetypes : nodetype list;
  spawns : spawntree list;
  comphases : comphase list;
  exphases : exphase list;
  phases : pexpr;
}

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"
  | Xor -> "xor"
  | Pow -> "**"

let cmpop_name = function Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

(** Free variables of an expression, in first-occurrence order. *)
let expr_vars e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Int _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out := v :: !out
      end
    | Neg a -> go a
    | Bin (_, a, b) ->
      go a;
      go b
    | Call (_, args) -> List.iter go args
  in
  go e;
  List.rev !out

let rec cond_vars = function
  | Cmp (_, a, b) -> expr_vars a @ expr_vars b
  | And (a, b) | Or (a, b) -> cond_vars a @ cond_vars b
  | Not a -> cond_vars a
