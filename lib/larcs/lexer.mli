(** Hand-written lexer for LaRCS source text. *)

type token =
  | INT of int
  | ID of string
  | KW of string  (** reserved word, lowercased *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | DOTDOT
  | ARROW  (** [->] *)
  | CARET  (** [^] *)
  | PARBAR  (** [||] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ
  | NE
  | LE
  | GE
  | LT
  | GT
  | EOF

type lexeme = { tok : token; line : int; col : int }

val keywords : string list
(** Reserved words: algorithm, import, family, nodetype, comphase,
    exphase, phases, volume, when, cost, mod, xor, div, eps,
    nodesymmetric, requires, in, and, or, not, at. *)

val tokenize : string -> (lexeme list, string) result
(** Comments run from [--] or [#] to end of line. *)

val token_name : token -> string
