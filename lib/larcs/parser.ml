open Lexer

exception Parse_error of string

type state = { lexemes : lexeme array; mutable pos : int }

let current st = st.lexemes.(st.pos)

let fail_at lx msg =
  raise (Parse_error (Printf.sprintf "line %d, col %d: %s" lx.line lx.col msg))

let fail st msg = fail_at (current st) msg

let advance st = st.pos <- st.pos + 1

let expect st tok =
  let lx = current st in
  if lx.tok = tok then advance st
  else fail st (Printf.sprintf "expected %s, found %s" (token_name tok) (token_name lx.tok))

let expect_id st =
  let lx = current st in
  match lx.tok with
  | ID name ->
    advance st;
    name
  | KW _ | INT _ | LPAREN | RPAREN | LBRACE | RBRACE | COMMA | SEMI | COLON | DOTDOT
  | ARROW | CARET | PARBAR | PLUS | MINUS | STAR | SLASH | EQ | NE | LE | GE | LT | GT
  | EOF ->
    fail st (Printf.sprintf "expected identifier, found %s" (token_name lx.tok))

let expect_kw st kw =
  let lx = current st in
  if lx.tok = KW kw then advance st
  else fail st (Printf.sprintf "expected keyword %S, found %s" kw (token_name lx.tok))

let accept st tok =
  if (current st).tok = tok then begin
    advance st;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* arithmetic expressions                                              *)

let rec parse_expr_level st = parse_xor st

and parse_xor st =
  let left = parse_add st in
  if (current st).tok = KW "xor" then begin
    advance st;
    Ast.Bin (Ast.Xor, left, parse_xor st)
  end
  else left

and parse_add st =
  let rec loop left =
    match (current st).tok with
    | PLUS ->
      advance st;
      loop (Ast.Bin (Ast.Add, left, parse_mul st))
    | MINUS ->
      advance st;
      loop (Ast.Bin (Ast.Sub, left, parse_mul st))
    | INT _ | ID _ | KW _ | LPAREN | RPAREN | LBRACE | RBRACE | COMMA | SEMI | COLON
    | DOTDOT | ARROW | CARET | PARBAR | STAR | SLASH | EQ | NE | LE | GE | LT | GT | EOF
      -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match (current st).tok with
    | STAR ->
      advance st;
      loop (Ast.Bin (Ast.Mul, left, parse_unary st))
    | SLASH ->
      advance st;
      loop (Ast.Bin (Ast.Div, left, parse_unary st))
    | KW "mod" ->
      advance st;
      loop (Ast.Bin (Ast.Mod, left, parse_unary st))
    | KW "div" ->
      advance st;
      loop (Ast.Bin (Ast.Div, left, parse_unary st))
    | INT _ | ID _ | KW _ | LPAREN | RPAREN | LBRACE | RBRACE | COMMA | SEMI | COLON
    | DOTDOT | ARROW | CARET | PARBAR | PLUS | MINUS | EQ | NE | LE | GE | LT | GT | EOF
      -> left
  in
  loop (parse_unary st)

and parse_unary st =
  if accept st MINUS then Ast.Neg (parse_unary st) else parse_primary st

and parse_primary st =
  let lx = current st in
  match lx.tok with
  | INT v ->
    advance st;
    Ast.Int v
  | ID name ->
    advance st;
    if (current st).tok = LPAREN && List.mem name Eval.builtins then begin
      advance st;
      let rec args acc =
        let a = parse_expr_level st in
        if accept st COMMA then args (a :: acc) else List.rev (a :: acc)
      in
      let arglist = args [] in
      expect st RPAREN;
      Ast.Call (name, arglist)
    end
    else Ast.Var name
  | LPAREN ->
    advance st;
    let e = parse_expr_level st in
    expect st RPAREN;
    e
  | KW _ | RPAREN | LBRACE | RBRACE | COMMA | SEMI | COLON | DOTDOT | ARROW | CARET
  | PARBAR | PLUS | MINUS | STAR | SLASH | EQ | NE | LE | GE | LT | GT | EOF ->
    fail st (Printf.sprintf "expected expression, found %s" (token_name lx.tok))

(* ------------------------------------------------------------------ *)
(* conditions                                                          *)

let rec parse_cond st = parse_or st

and parse_or st =
  let left = parse_and st in
  if (current st).tok = KW "or" then begin
    advance st;
    Ast.Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if (current st).tok = KW "and" then begin
    advance st;
    Ast.And (left, parse_and st)
  end
  else left

and parse_not st =
  if (current st).tok = KW "not" then begin
    advance st;
    Ast.Not (parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  (* parenthesized sub-conditions require lookahead: "(a < b) and c"
     vs "(a + b) < c".  Try a comparison first; on failure at an
     opening paren, re-parse as a grouped condition. *)
  if (current st).tok = LPAREN then begin
    let save = st.pos in
    match
      try Some (parse_cmp_simple st)
      with Parse_error _ -> None
    with
    | Some c -> c
    | None ->
      st.pos <- save;
      advance st;
      let c = parse_cond st in
      expect st RPAREN;
      c
  end
  else parse_cmp_simple st

and parse_cmp_simple st =
  let left = parse_expr_level st in
  let op =
    match (current st).tok with
    | EQ -> Ast.Eq
    | NE -> Ast.Ne
    | LT -> Ast.Lt
    | LE -> Ast.Le
    | GT -> Ast.Gt
    | GE -> Ast.Ge
    | INT _ | ID _ | KW _ | LPAREN | RPAREN | LBRACE | RBRACE | COMMA | SEMI | COLON
    | DOTDOT | ARROW | CARET | PARBAR | PLUS | MINUS | STAR | SLASH | EOF ->
      fail st "expected comparison operator"
  in
  advance st;
  let right = parse_expr_level st in
  Ast.Cmp (op, left, right)

(* ------------------------------------------------------------------ *)
(* phase expressions                                                   *)

let starts_phase_atom = function
  | ID _ | KW "eps" | LPAREN -> true
  | INT _ | KW _ | RPAREN | LBRACE | RBRACE | COMMA | SEMI | COLON | DOTDOT | ARROW
  | CARET | PARBAR | PLUS | MINUS | STAR | SLASH | EQ | NE | LE | GE | LT | GT | EOF ->
    false

let rec parse_pexpr st =
  (* ';' is both the sequence operator and the declaration terminator:
     it continues the sequence only when a phase atom follows *)
  let rec loop left =
    if
      (current st).tok = SEMI
      && st.pos + 1 < Array.length st.lexemes
      && starts_phase_atom st.lexemes.(st.pos + 1).tok
    then begin
      advance st;
      loop (Ast.PSeq (left, parse_ppar st))
    end
    else left
  in
  loop (parse_ppar st)

and parse_ppar st =
  let rec loop left =
    if accept st PARBAR then loop (Ast.PPar (left, parse_prep st)) else left
  in
  loop (parse_prep st)

and parse_prep st =
  let atom = parse_patom st in
  if accept st CARET then Ast.PRep (atom, parse_primary st) else atom

and parse_patom st =
  let lx = current st in
  match lx.tok with
  | KW "eps" ->
    advance st;
    Ast.PEps
  | ID name ->
    advance st;
    Ast.PPhase name
  | LPAREN ->
    advance st;
    let e = parse_pexpr st in
    expect st RPAREN;
    e
  | INT _ | KW _ | RPAREN | LBRACE | RBRACE | COMMA | SEMI | COLON | DOTDOT | ARROW
  | CARET | PARBAR | PLUS | MINUS | STAR | SLASH | EQ | NE | LE | GE | LT | GT | EOF ->
    fail st (Printf.sprintf "expected phase, found %s" (token_name lx.tok))

(* ------------------------------------------------------------------ *)
(* declarations                                                        *)

let parse_id_pattern st =
  if accept st LPAREN then begin
    let rec loop acc =
      let v = expect_id st in
      if accept st COMMA then loop (v :: acc) else List.rev (v :: acc)
    in
    let vars = loop [] in
    expect st RPAREN;
    vars
  end
  else [ expect_id st ]

let parse_target st =
  (* single expression, or explicitly parenthesized tuple of >= 2 *)
  if (current st).tok = LPAREN then begin
    let save = st.pos in
    advance st;
    let first = parse_expr_level st in
    if accept st COMMA then begin
      let rec loop acc =
        let e = parse_expr_level st in
        if accept st COMMA then loop (e :: acc) else List.rev (e :: acc)
      in
      let rest = loop [] in
      expect st RPAREN;
      first :: rest
    end
    else begin
      (* parenthesized arithmetic: re-parse as a whole expression so
         trailing operators ("(i+1) mod n") are consumed *)
      st.pos <- save;
      [ parse_expr_level st ]
    end
  end
  else [ parse_expr_level st ]

let parse_range st =
  let lo = parse_expr_level st in
  expect st DOTDOT;
  let hi = parse_expr_level st in
  { Ast.lo; hi }

let parse_ranges st =
  (* "(" range "," range ... ")" (multi-dim) or a bare range; a bare
     range may itself start with "(" ("(n/2) .. n"), so backtrack. *)
  if (current st).tok = LPAREN then begin
    let save = st.pos in
    advance st;
    match
      try
        let r = parse_range st in
        if (current st).tok = COMMA then Some r else None
      with Parse_error _ -> None
    with
    | Some first ->
      let rec loop acc =
        if accept st COMMA then loop (parse_range st :: acc) else List.rev acc
      in
      let rest = loop [] in
      expect st RPAREN;
      first :: rest
    | None ->
      st.pos <- save;
      [ parse_range st ]
  end
  else [ parse_range st ]

let parse_rule st =
  let src_type = expect_id st in
  let src_vars = parse_id_pattern st in
  expect st ARROW;
  let dst_type = expect_id st in
  let dst_exprs = parse_target st in
  let volume =
    if (current st).tok = KW "volume" then begin
      advance st;
      Some (parse_expr_level st)
    end
    else None
  in
  let guard =
    if (current st).tok = KW "when" then begin
      advance st;
      Some (parse_cond st)
    end
    else None
  in
  expect st SEMI;
  { Ast.src_type; src_vars; dst_type; dst_exprs; volume; guard }

let parse_program st =
  expect_kw st "algorithm";
  let prog_name = expect_id st in
  expect st LPAREN;
  let params =
    if (current st).tok = RPAREN then []
    else begin
      let rec loop acc =
        let p = expect_id st in
        if accept st COMMA then loop (p :: acc) else List.rev (p :: acc)
      in
      loop []
    end
  in
  expect st RPAREN;
  expect st SEMI;
  let imports = ref [] in
  let family = ref None in
  let nodetypes = ref [] in
  let spawns = ref [] in
  let comphases = ref [] in
  let exphases = ref [] in
  let phases = ref None in
  let rec decls () =
    match (current st).tok with
    | EOF -> ()
    | KW "import" ->
      advance st;
      let rec loop () =
        imports := expect_id st :: !imports;
        if accept st COMMA then loop ()
      in
      loop ();
      expect st SEMI;
      decls ()
    | KW "family" ->
      advance st;
      let f = expect_id st in
      if !family <> None then fail st "duplicate family declaration";
      family := Some f;
      expect st SEMI;
      decls ()
    | KW "nodetype" ->
      advance st;
      let nt_name = expect_id st in
      expect st COLON;
      let nt_ranges = parse_ranges st in
      let nt_symmetric = (current st).tok = KW "nodesymmetric" in
      if nt_symmetric then advance st;
      let nt_requires =
        if (current st).tok = KW "requires" then begin
          advance st;
          Some (expect_id st)
        end
        else None
      in
      expect st SEMI;
      nodetypes := { Ast.nt_name; nt_ranges; nt_symmetric; nt_requires } :: !nodetypes;
      decls ()
    | KW "spawntree" ->
      advance st;
      let sp_name = expect_id st in
      expect st COLON;
      expect_kw st "depth";
      let sp_depth = parse_expr_level st in
      expect st SEMI;
      spawns := { Ast.sp_name; sp_depth } :: !spawns;
      decls ()
    | KW "comphase" ->
      advance st;
      let cp_name = expect_id st in
      expect st LBRACE;
      let rec rules acc =
        if (current st).tok = RBRACE then List.rev acc else rules (parse_rule st :: acc)
      in
      let rs = rules [] in
      expect st RBRACE;
      comphases := { Ast.cp_name; rules = rs } :: !comphases;
      decls ()
    | KW "exphase" ->
      advance st;
      let ep_name = expect_id st in
      let ep_pattern =
        if accept st COLON then begin
          let ty = expect_id st in
          let vars = parse_id_pattern st in
          Some (ty, vars)
        end
        else None
      in
      let ep_cost =
        if (current st).tok = KW "cost" then begin
          advance st;
          Some (parse_expr_level st)
        end
        else None
      in
      expect st SEMI;
      exphases := { Ast.ep_name; ep_pattern; ep_cost } :: !exphases;
      decls ()
    | KW "phases" ->
      advance st;
      let pe = parse_pexpr st in
      if !phases <> None then fail st "duplicate phases declaration";
      phases := Some pe;
      expect st SEMI;
      decls ()
    | INT _ | ID _ | KW _ | LPAREN | RPAREN | LBRACE | RBRACE | COMMA | SEMI | COLON
    | DOTDOT | ARROW | CARET | PARBAR | PLUS | MINUS | STAR | SLASH | EQ | NE | LE | GE
    | LT | GT ->
      fail st
        (Printf.sprintf "expected declaration, found %s" (token_name (current st).tok))
  in
  decls ();
  let phases =
    match !phases with
    | Some p -> p
    | None -> fail st "program is missing a phases declaration"
  in
  {
    Ast.prog_name;
    params;
    imports = List.rev !imports;
    family = !family;
    nodetypes = List.rev !nodetypes;
    spawns = List.rev !spawns;
    comphases = List.rev !comphases;
    exphases = List.rev !exphases;
    phases;
  }

let run source entry =
  match Lexer.tokenize source with
  | Error msg -> Error msg
  | Ok lexemes -> begin
    let st = { lexemes = Array.of_list lexemes; pos = 0 } in
    try
      let result = entry st in
      expect st EOF;
      Ok result
    with
    | Parse_error msg -> Error msg
    | Stack_overflow ->
      (* recursive descent: absurdly nested input must still be an
         Error, not a crash *)
      Error "program nesting too deep"
  end

let parse source = run source parse_program

let parse_expr source = run source parse_expr_level
