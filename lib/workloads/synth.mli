(** Synthetic large-graph generator family.

    The LaRCS workloads top out around a few hundred tasks — compiling
    a 10^5-node program through the parser would dominate any mapping
    benchmark.  This module builds {!Oregami_taskgraph.Taskgraph}
    values directly, at any size, for the multilevel tier's benchmarks
    and tests: one communication phase ["comm"], one unit-cost
    execution phase ["work"], phase expression [comm; work].

    Specs are strings so the CLI, the batch service, and the bench
    harness can all name an instance: [synth:FAMILY:N] or
    [synth:FAMILY:N:SEED] (seed defaults to 1; only [rmat] uses it).

    Families:
    - [grid]  — near-square 2-D grid, 4-neighbour stencil edges;
    - [ring]  — ring with a half-turn chord (nbody-like);
    - [tree]  — binary tree, child → parent reports;
    - [rmat]  — power-law R-MAT graph (a=0.57, b=c=0.19), ~8 edges per
      node, seeded. *)

type family = Grid | Ring | Tree | Rmat

val families : (string * string) list
(** [(name, description)] pairs, for help texts. *)

val string_of_family : family -> string

val is_spec : string -> bool
(** Whether the string starts with ["synth:"]. *)

val parse : string -> (family * int * int, string) result
(** Parses [synth:FAMILY:N[:SEED]] into [(family, n, seed)]. *)

val generate : family -> n:int -> seed:int -> Oregami_taskgraph.Taskgraph.t

val build : string -> (Oregami_taskgraph.Taskgraph.t, string) result
(** {!parse} composed with {!generate}. *)
