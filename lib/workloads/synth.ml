module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Digraph = Oregami_graph.Digraph
module Rng = Oregami_prelude.Rng

type family = Grid | Ring | Tree | Rmat

let families =
  [
    ("grid", "near-square 2-D grid, 4-neighbour stencil");
    ("ring", "ring with a half-turn chord");
    ("tree", "binary tree, child -> parent reports");
    ("rmat", "power-law R-MAT graph, ~8 edges/node, seeded");
  ]

let is_spec s = String.length s > 6 && String.sub s 0 6 = "synth:"

let family_of_string = function
  | "grid" -> Some Grid
  | "ring" -> Some Ring
  | "tree" -> Some Tree
  | "rmat" -> Some Rmat
  | _ -> None

let string_of_family = function
  | Grid -> "grid"
  | Ring -> "ring"
  | Tree -> "tree"
  | Rmat -> "rmat"

(* errors name the offending field: a batch file with hundreds of
   synth: specs is debugged from the message alone *)
let parse s =
  let fail fmt =
    Printf.ksprintf
      (fun m -> Error (Printf.sprintf "bad synthetic spec %S: %s" s m))
      fmt
  in
  let families_s = String.concat ", " (List.map fst families) in
  if not (is_spec s) then
    fail "want synth:FAMILY:N[:SEED], families: %s" families_s
  else begin
    match String.split_on_char ':' s with
    | [ _; fam; n ] | [ _; fam; n; _ ] as parts -> begin
      let ( let* ) = Result.bind in
      let* f =
        match family_of_string fam with
        | Some f -> Ok f
        | None -> fail "unknown family %S (families: %s)" fam families_s
      in
      let* n =
        match int_of_string_opt n with
        | Some n when n > 0 -> Ok n
        | Some n -> fail "task count must be positive, got %d" n
        | None -> fail "task count %S is not an integer" n
      in
      let* seed =
        match parts with
        | [ _; _; _; sd ] -> begin
          match int_of_string_opt sd with
          | Some seed -> Ok seed
          | None -> fail "seed %S is not an integer" sd
        end
        | _ -> Ok 1
      in
      Ok (f, n, seed)
    end
    | parts ->
      fail "want synth:FAMILY:N[:SEED] (3 or 4 fields, got %d)" (List.length parts)
  end

let isqrt n =
  let r = int_of_float (sqrt (float_of_int n)) in
  let r = if (r + 1) * (r + 1) <= n then r + 1 else r in
  max 1 r

let grid_edges g n =
  let rows = isqrt n in
  let cols = (n + rows - 1) / rows in
  for v = 0 to n - 1 do
    let i = v / cols and j = v mod cols in
    if j + 1 < cols && v + 1 < n then Digraph.add_edge g v (v + 1);
    if i + 1 < rows && v + cols < n then Digraph.add_edge g v (v + cols)
  done

let ring_edges g n =
  for v = 0 to n - 1 do
    if n > 1 then Digraph.add_edge g v ((v + 1) mod n)
  done;
  if n > 3 then
    for v = 0 to n - 1 do
      let u = (v + (n / 2)) mod n in
      if u <> v && not (Digraph.mem_edge g v u) then Digraph.add_edge g v u
    done

let tree_edges g n =
  for v = 1 to n - 1 do
    Digraph.add_edge g v ((v - 1) / 2)
  done

(* R-MAT (Chakrabarti et al.): recursively pick a quadrant per bit with
   skewed probabilities; duplicate edges merge (volume accumulates),
   self-loops are redrawn a few times then dropped *)
let rmat_edges g n ~seed =
  let rng = Rng.create seed in
  let bits =
    let rec go b = if 1 lsl b >= n then b else go (b + 1) in
    go 0
  in
  let draw () =
    let u = ref 0 and v = ref 0 in
    for _ = 1 to bits do
      (* quadrant probabilities a=0.57 b=0.19 c=0.19 d=0.05;
         quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1) *)
      let r = Rng.int rng 100 in
      let bu, bv =
        if r < 57 then (0, 0)
        else if r < 57 + 19 then (0, 1)
        else if r < 57 + 19 + 19 then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor bu;
      v := (!v lsl 1) lor bv
    done;
    (!u, !v)
  in
  let edges = 8 * n in
  for _ = 1 to edges do
    let rec attempt tries =
      if tries = 0 then ()
      else begin
        let u, v = draw () in
        if u <> v && u < n && v < n then Digraph.add_edge g u v else attempt (tries - 1)
      end
    in
    attempt 4
  done

let generate family ~n ~seed =
  let g = Digraph.create n in
  (match family with
  | Grid -> grid_edges g n
  | Ring -> ring_edges g n
  | Tree -> tree_edges g n
  | Rmat -> rmat_edges g n ~seed);
  let costs = Array.make n 1 in
  let expr = Phase_expr.Seq (Phase_expr.Comm "comm", Phase_expr.Exec "work") in
  Taskgraph.make_exn
    ~name:(Printf.sprintf "synth:%s:%d" (string_of_family family) n)
    ~n
    ~comm_phases:[ ("comm", g) ]
    ~exec_phases:[ ("work", costs) ]
    ~expr ()

let build s =
  match parse s with
  | Error _ as e -> e
  | Ok (family, n, seed) -> Ok (generate family ~n ~seed)
