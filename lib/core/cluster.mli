(** Online cluster lifecycle: a long-lived machine whose processors are
    leased by a stream of arriving and departing programs, with
    chaos-injected failures and self-healing remaps.

    OREGAMI maps one computation onto a pristine machine and stops;
    the service north-star is a machine that stays up while programs
    come and go and hardware dies underneath them.  This module is
    that simulator:

    - an {e arrival} is granted a spatial subregion of the free
      processors (best-fit connected block when one exists) and placed
      into it with the incremental placer under its own
      {!Oregami_mapper.Constraints};
    - a {e departure} reclaims the lease, growing the free pool and
      usually its fragmentation;
    - a {e kill} event (from a [--chaos] schedule or the trace itself)
      degrades the machine; every lease touching a dead processor is
      healed by pricing minimum-disruption {!Oregami_mapper.Repair}
      against a from-scratch re-placement, migration traffic costed
      with {!Oregami_metrics.Netsim.migration_time}, falling back to
      evict-and-requeue when neither fits;
    - a {e revive} event restores processors/links
      ({!Oregami_topology.Faults.revive}) into the free pool;
    - arrivals that cannot be placed are queued (bounded — overflow is
      shed by name) and retried with exponential backoff in trace
      time, refused by name when retries exhaust;
    - when fragmentation crosses a threshold and jobs are waiting, a
      defragmenting re-pack of every lease is priced and committed
      only if its total migration cost beats the projected queue wait.

    Nothing here raises on bad input: malformed chaos, unplaceable
    jobs, and disconnecting faults all become named log entries and
    counters.  Every decision lands in the event log ([--explain]). *)

type arrival = {
  ar_name : string;  (** job name, unique among live + queued jobs *)
  ar_program : string;
      (** built-in workload name, [synth:FAMILY:N[:SEED]] spec, or a
          LaRCS source file — the {!Service.load_program} universe *)
  ar_procs : int option;
      (** requested region size; default [⌈tasks/2⌉], clamped to the
          machine *)
  ar_bindings : (string * int) list;  (** program parameter bindings *)
  ar_constraints : Oregami_mapper.Constraints.spec;
}

type event =
  | Arrive of arrival
  | Depart of string  (** by job name; unknown names are logged, not fatal *)
  | Kill of { procs : int list; links : int list }  (** base ids *)
  | Revive of { procs : int list; links : int list }  (** base ids *)

val describe_event : event -> string

type config = {
  cf_queue_bound : int;  (** pending arrivals kept before shedding (default 16) *)
  cf_max_retries : int;  (** placement retries per queued arrival (default 3) *)
  cf_defrag_threshold : float;  (** re-pack trigger (default 0.5) *)
  cf_migration_volume : int;  (** state units per moved task (default 8) *)
  cf_route_cap : int;  (** MM-Route candidate bound (default 64) *)
}

val default_config : config

type sample = {
  s_clock : int;  (** event ordinal at which the sample was taken *)
  s_event : string;  (** what just happened, one line *)
  s_utilization : float;  (** leased fraction of the alive machine *)
  s_fragmentation : float;  (** {!Oregami_metrics.Netsim.fragmentation} of the free pool *)
  s_running : int;
  s_queued : int;
  s_free : int;
}

type report = {
  rp_events : int;
  rp_admitted : int;  (** arrivals that got a lease (incl. re-admissions) *)
  rp_completed : int;  (** departures of running jobs *)
  rp_cancelled : int;  (** departures of still-queued jobs *)
  rp_refused : (string * string) list;  (** job name, reason — never silent *)
  rp_shed : string list;  (** arrivals dropped on a full queue, by name *)
  rp_repairs : int;  (** chaos healings where minimum-disruption repair won *)
  rp_remaps : int;  (** healings where the from-scratch re-placement won *)
  rp_evictions : int;  (** healings that had to evict and requeue *)
  rp_repacks : int;  (** committed defragmentation re-packs *)
  rp_repacks_declined : int;  (** re-packs priced and rejected *)
  rp_migration_total : int;  (** simulated migration time summed over all moves *)
  rp_chaos_applied : int;
  rp_chaos_refused : int;  (** e.g. a kill that would disconnect the machine *)
  rp_running : string list;  (** leases still live at the end *)
  rp_queued : string list;
  rp_samples : sample list;  (** one per event, in order *)
  rp_log : string list;  (** the full decision log, in order *)
}

type t

val create : ?config:config -> Oregami_topology.Topology.t -> (t, string) result
(** A fresh machine, everything free.  Errors on an empty topology. *)

val step : t -> event -> unit
(** Apply one event.  Total: every failure path is a log entry and a
    counter, never an exception. *)

val free_procs : t -> int list
(** Alive processors under no lease, sorted. *)

val leased_procs : t -> int list
(** Alive processors under some lease, sorted. *)

val lease_assignment :
  t ->
  string ->
  (Oregami_taskgraph.Taskgraph.t * Oregami_topology.Topology.t * int array)
  option
(** The named lease's task graph, the current machine view, and its
    task→processor assignment — [None] if no such lease is running.
    What the property tests audit after every chaos event. *)

val utilization : t -> float

val fragmentation : t -> float

val invariants : t -> (unit, string) result
(** Lease accounting, checked by the stress soak at every event: leased
    and free partition the alive processors, no processor is under two
    leases, every lease's mapping stays inside its lease and on alive
    processors, and the queue respects its bound. *)

val finish : t -> report
(** Final drain — queued arrivals get their remaining retries, then
    whatever still waits is refused by name — and the report. *)

val run :
  ?config:config ->
  ?explain:(string -> unit) ->
  ?chaos:(int * event) list ->
  Oregami_topology.Topology.t ->
  event list ->
  (report, string) result
(** Drive a whole trace.  A chaos pair [(i, ev)] fires before the
    [i]-th trace event (0-based; past-the-end fires after the trace).
    [explain] sees every log line as it is written. *)

val parse_chaos : string -> ((int * event) list, string) result
(** Chaos spec grammar: [AT:ACTION[;AT:ACTION...]] where [ACTION] is
    [kill-procs=IDS], [kill-links=IDS], [revive-procs=IDS] or
    [revive-links=IDS], ids comma-separated base ids — e.g.
    ["10:kill-procs=3;20:revive-procs=3"]. *)

val parse_trace_line : int -> string -> (event option, string) result
(** One trace-file line ([lineno] for error messages), [Ok None] for
    blank/comment lines.  Grammar:
    {v arrive JOB PROGRAM [procs=N] [pin=..] [forbid=..] [require=..] [skip=..] [key=value..]
depart JOB
kill [procs=IDS] [links=IDS]
revive [procs=IDS] [links=IDS] v} *)

val load_trace : string -> (event list, string) result
(** Parse a trace file, first error wins (with its line number). *)

val synth_trace :
  events:int -> seed:int -> Oregami_topology.Topology.t -> event list
(** Seeded arrival/departure generator: small synthetic programs
    (grids, rings, trees, R-MATs of 8–40 tasks) arrive, run a while
    and depart; ~2 arrivals per departure early on, converging to
    balance.  Deterministic for a given seed and machine. *)
