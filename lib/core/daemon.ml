(* Long-lived network front end over the batch mapping service.

   One accept loop hands each connection to a reader systhread;
   readers parse the line protocol and push accepted jobs onto a
   persistent [Pool.feeder] of worker domains.  Admission is the
   load-shedding point: the feeder's queue bound, a per-client
   inflight cap, and the configured quotas each reject by name with a
   normal error result line, so a client always gets exactly one
   answer per request and can tell "mapping failed" from "daemon said
   no".  SIGTERM/SIGINT flip one atomic flag; the accept loop then
   stops admitting, nudges idle readers off [input_line] with
   [shutdown SHUTDOWN_RECEIVE], waits for every accepted job to be
   answered, and returns 0. *)

module Ctx = Oregami_mapper.Ctx
module Isolate = Oregami_mapper.Isolate
module Clock = Oregami_prelude.Clock
module Memo = Oregami_prelude.Memo
module Pool = Oregami_prelude.Pool

type listen = Unix_socket of string | Tcp of int

type config = {
  d_listen : listen;
  d_jobs : int;
  d_queue_bound : int;
  d_max_inflight : int;
  d_fuel_cap : int option;
  d_deadline_cap_ms : float option;
  d_timeout_ms : float option;
  d_cache_bound : int option;
  d_format : Service.format;
  d_backoff : Service.backoff;
}

let default_config listen =
  {
    d_listen = listen;
    d_jobs = Pool.default_jobs ();
    d_queue_bound = 64;
    d_max_inflight = 8;
    d_fuel_cap = None;
    d_deadline_cap_ms = None;
    d_timeout_ms = None;
    d_cache_bound = Some 64;
    d_format = Service.Tsv;
    d_backoff = Service.default_backoff;
  }

(* ------------------------------------------------------------------ *)
(* per-connection state                                               *)

type client = {
  c_fd : Unix.file_descr;
  c_oc : out_channel;  (* on a dup of [c_fd], so closing both is safe *)
  c_key : int;  (* admission lane: the feeder drains clients round-robin *)
  c_lock : Mutex.t;  (* guards the channel and the counters below *)
  c_done : Condition.t;  (* signalled whenever [c_pending] drops *)
  mutable c_pending : int;  (* accepted jobs not yet answered *)
  mutable c_id : int;  (* last request ordinal handed out *)
}

type kind =
  | Jrun of Service.request
  | Jsleep of int * float  (* id, ms *)
  | Jcluster of { jc_id : int; jc_topo : string; jc_trace : string; jc_chaos : string option }
type job = { j_client : client; j_kind : kind; j_admit : float }

(* latency ring: enough history for stable p99 without unbounded
   growth — the bounded-memory rule applies to the daemon's own
   telemetry too *)
let lat_window = 4096

type t = {
  cfg : config;
  breaker : Isolate.breaker;
  caches : Service.caches;
  stopping : bool Atomic.t;
  lock : Mutex.t;  (* guards counters, the ring and the client list *)
  mutable clients : client list;
  mutable client_seq : int;  (* admission keys handed out *)
  mutable served : int;  (* accepted jobs answered (ok or error) *)
  mutable shed : int;  (* overload rejections *)
  mutable quota_rejects : int;
  mutable bad_lines : int;  (* malformed request lines *)
  lat : float array;
  mutable lat_n : int;  (* total latencies ever recorded *)
  mutable feeder : job Pool.feeder option;  (* set once, before accept *)
}

let feeder_exn t =
  match t.feeder with
  | Some f -> f
  | None -> invalid_arg "Daemon: feeder not initialised"

let send cl line =
  Mutex.lock cl.c_lock;
  (* a disappeared client (EPIPE with SIGPIPE ignored) must not kill
     the worker; the reader notices the disconnect on its own *)
  (try
     output_string cl.c_oc line;
     output_char cl.c_oc '\n';
     flush cl.c_oc
   with Sys_error _ -> ());
  Mutex.unlock cl.c_lock

let job_done cl =
  Mutex.lock cl.c_lock;
  cl.c_pending <- cl.c_pending - 1;
  Condition.broadcast cl.c_done;
  Mutex.unlock cl.c_lock

(* ------------------------------------------------------------------ *)
(* stats                                                              *)

let record_latency t ms =
  Mutex.lock t.lock;
  t.lat.(t.lat_n mod lat_window) <- ms;
  t.lat_n <- t.lat_n + 1;
  t.served <- t.served + 1;
  Mutex.unlock t.lock

(* nearest-rank percentile over the retained window *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1)))

(* one consistent snapshot feeding both exposition formats *)
type snapshot = {
  sn_served : int;
  sn_shed : int;
  sn_quota : int;
  sn_bad : int;
  sn_depth : int;
  sn_inflight : int;
  sn_draining : bool;
  sn_tripped : string list;
  sn_programs : Memo.stats;
  sn_topologies : Memo.stats;
  sn_p50 : float;
  sn_p99 : float;
}

let snapshot t =
  let served, shed, quota, bad, lats =
    Mutex.protect t.lock (fun () ->
        let n = min t.lat_n lat_window in
        (t.served, t.shed, t.quota_rejects, t.bad_lines, Array.sub t.lat 0 n))
  in
  Array.sort compare lats;
  let f = feeder_exn t in
  {
    sn_served = served;
    sn_shed = shed;
    sn_quota = quota;
    sn_bad = bad;
    sn_depth = Pool.depth f;
    sn_inflight = Pool.inflight f;
    sn_draining = Atomic.get t.stopping;
    sn_tripped = Isolate.tripped t.breaker;
    sn_programs = Memo.stats t.caches.Service.c_programs;
    sn_topologies = Memo.stats t.caches.Service.c_topologies;
    sn_p50 = percentile lats 50.0;
    sn_p99 = percentile lats 99.0;
  }

let stats_line t =
  let s = snapshot t in
  let cache name (c : Memo.stats) =
    Printf.sprintf "(%s (size %d) (bound %s) (hits %d) (misses %d) (evictions %d))"
      name c.Memo.mc_size
      (match c.Memo.mc_bound with None -> "-" | Some b -> string_of_int b)
      c.Memo.mc_hits c.Memo.mc_misses c.Memo.mc_evictions
  in
  Printf.sprintf
    "(stats (served %d) (shed %d) (quota-rejects %d) (malformed %d) \
     (queue-depth %d) (inflight %d) (draining %b) (tripped (%s)) %s %s \
     (latency-ms (p50 %.3f) (p99 %.3f)))"
    s.sn_served s.sn_shed s.sn_quota s.sn_bad s.sn_depth s.sn_inflight
    s.sn_draining
    (String.concat " " s.sn_tripped)
    (cache "programs" s.sn_programs)
    (cache "topologies" s.sn_topologies)
    s.sn_p50 s.sn_p99

(* Prometheus text exposition (version 0.0.4): same snapshot, one
   metric per line, ready for a scrape job pointed at [stats
   --format prometheus] *)
let stats_prometheus t =
  let s = snapshot t in
  let b = Buffer.create 1024 in
  let metric ?(labels = "") ~typ ~help name v =
    Printf.bprintf b "# HELP %s %s\n# TYPE %s %s\n%s%s %s\n" name help name typ
      name labels v
  in
  metric ~typ:"counter" ~help:"Accepted jobs answered (ok or error)."
    "oregami_requests_served_total" (string_of_int s.sn_served);
  metric ~typ:"counter" ~help:"Requests rejected by overload shedding."
    "oregami_requests_shed_total" (string_of_int s.sn_shed);
  metric ~typ:"counter" ~help:"Requests rejected by budget quotas."
    "oregami_quota_rejects_total" (string_of_int s.sn_quota);
  metric ~typ:"counter" ~help:"Malformed request lines."
    "oregami_malformed_lines_total" (string_of_int s.sn_bad);
  metric ~typ:"gauge" ~help:"Jobs waiting in the admission queue."
    "oregami_queue_depth" (string_of_int s.sn_depth);
  metric ~typ:"gauge" ~help:"Jobs being processed right now."
    "oregami_inflight_jobs" (string_of_int s.sn_inflight);
  metric ~typ:"gauge" ~help:"1 while the daemon is draining for shutdown."
    "oregami_draining" (if s.sn_draining then "1" else "0");
  metric ~typ:"gauge" ~help:"Strategies benched by the circuit breaker."
    "oregami_strategies_tripped" (string_of_int (List.length s.sn_tripped));
  (* all samples of one family must sit together under its TYPE line *)
  let cache_family ~typ ~help name field =
    Printf.bprintf b "# HELP %s %s\n# TYPE %s %s\n" name help name typ;
    List.iter
      (fun (label, c) ->
        Printf.bprintf b "%s{cache=%S} %d\n" name label (field c))
      [ ("programs", s.sn_programs); ("topologies", s.sn_topologies) ]
  in
  cache_family ~typ:"gauge" ~help:"Entries in a build-once artifact cache."
    "oregami_cache_size" (fun (c : Memo.stats) -> c.Memo.mc_size);
  cache_family ~typ:"counter" ~help:"Artifact cache hits."
    "oregami_cache_hits_total" (fun c -> c.Memo.mc_hits);
  cache_family ~typ:"counter" ~help:"Artifact cache misses."
    "oregami_cache_misses_total" (fun c -> c.Memo.mc_misses);
  cache_family ~typ:"counter" ~help:"Artifact cache LRU evictions."
    "oregami_cache_evictions_total" (fun c -> c.Memo.mc_evictions);
  Printf.bprintf b
    "# HELP oregami_request_latency_ms Admit-to-answer latency over the \
     retained window.\n\
     # TYPE oregami_request_latency_ms gauge\n\
     oregami_request_latency_ms{quantile=\"0.5\"} %.3f\n\
     oregami_request_latency_ms{quantile=\"0.99\"} %.3f"
    s.sn_p50 s.sn_p99;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* the worker side                                                    *)

(* an answered-without-running outcome (reject, timeout): same shape
   as a mapping error so every client sees one result line per
   request, whatever happened to it *)
let refusal ~id ~program ~topology msg =
  {
    Service.r_id = id;
    r_program = program;
    r_topology = topology;
    r_ok = false;
    r_strategy = "-";
    r_degradation = None;
    r_completion = None;
    r_elapsed_ms = 0.0;
    r_attempts = 0;
    r_fuel_used = 0;
    r_error = msg;
  }

(* a daemon-driven cluster trace is capped so one request line cannot
   pin a worker domain for minutes *)
let cluster_max_events = 500

(* [cluster TOPO synth:EVENTS[:SEED] [chaos=SPEC]]: run a whole online
   lifecycle in one job, answer one s-expression summary line *)
let run_cluster ~jc_topo ~jc_trace ~jc_chaos =
  let ( let* ) = Result.bind in
  let* machine = Oregami_topology.Topology.of_string jc_topo in
  let* events, seed =
    if String.length jc_trace >= 6 && String.sub jc_trace 0 6 = "synth:" then
      let rest = String.sub jc_trace 6 (String.length jc_trace - 6) in
      match
        String.split_on_char ':' rest |> List.map int_of_string_opt
      with
      | [ Some n ] when n > 0 -> Ok (n, 1)
      | [ Some n; Some s ] when n > 0 -> Ok (n, s)
      | _ -> Error (Printf.sprintf "bad trace %S (want synth:EVENTS[:SEED])" jc_trace)
    else Error (Printf.sprintf "bad trace %S (want synth:EVENTS[:SEED])" jc_trace)
  in
  let* () =
    if events > cluster_max_events then
      Error (Printf.sprintf "trace of %d events exceeds cap %d" events cluster_max_events)
    else Ok ()
  in
  let* chaos =
    match jc_chaos with None -> Ok [] | Some s -> Cluster.parse_chaos s
  in
  let* r = Cluster.run ~chaos machine (Cluster.synth_trace ~events ~seed machine) in
  Ok
    (Printf.sprintf
       "(cluster (events %d) (admitted %d) (completed %d) (cancelled %d) \
        (refused %d) (shed %d) (repairs %d) (remaps %d) (evictions %d) \
        (repacks %d) (migration %d) (chaos-applied %d) (chaos-refused %d))"
       r.Cluster.rp_events r.Cluster.rp_admitted r.Cluster.rp_completed
       r.Cluster.rp_cancelled
       (List.length r.Cluster.rp_refused)
       (List.length r.Cluster.rp_shed)
       r.Cluster.rp_repairs r.Cluster.rp_remaps r.Cluster.rp_evictions
       r.Cluster.rp_repacks r.Cluster.rp_migration_total
       r.Cluster.rp_chaos_applied r.Cluster.rp_chaos_refused)

let run_job t job =
  let cl = job.j_client in
  match job.j_kind with
  | Jcluster { jc_id; jc_topo; jc_trace; jc_chaos } ->
    (* answered as one s-expression line of cluster counters, not a
       mapping outcome row *)
    let line =
      match run_cluster ~jc_topo ~jc_trace ~jc_chaos with
      | Ok line -> line
      | Error e ->
        Service.render t.cfg.d_format
          (refusal ~id:jc_id ~program:"cluster" ~topology:jc_topo
             ("cluster: " ^ e))
    in
    record_latency t (Clock.elapsed_ms job.j_admit);
    send cl line;
    job_done cl
  | Jsleep _ | Jrun _ ->
  let outcome =
    match job.j_kind with
    | Jcluster _ -> assert false
    | Jsleep (id, ms) ->
      Unix.sleepf (ms /. 1e3);
      {
        Service.r_id = id;
        r_program = "sleep";
        r_topology = Printf.sprintf "%.0f" ms;
        r_ok = true;
        r_strategy = "-";
        r_degradation = None;
        r_completion = None;
        r_elapsed_ms = Clock.elapsed_ms job.j_admit;
        r_attempts = 1;
        r_fuel_used = 0;
        r_error = "";
      }
    | Jrun req -> begin
      let waited_ms = Clock.elapsed_ms job.j_admit in
      match t.cfg.d_timeout_ms with
      | Some tmo when waited_ms >= tmo ->
        (* dead on arrival: queueing ate the whole budget *)
        refusal ~id:req.Service.rq_id ~program:req.Service.rq_program
          ~topology:req.Service.rq_topology
          (Printf.sprintf "timeout: queued %.0f ms (timeout %.0f ms)"
             waited_ms tmo)
      | tmo ->
        (* the remaining wall-clock timeout becomes the mapper's own
           deadline, so a stale request degrades instead of hogging a
           worker past its due date *)
        let req =
          match tmo with
          | None -> req
          | Some tmo ->
            let remaining = tmo -. waited_ms in
            let deadline =
              match req.Service.rq_options.Ctx.deadline_ms with
              | None -> remaining
              | Some d -> Float.min d remaining
            in
            {
              req with
              Service.rq_options =
                { req.Service.rq_options with Ctx.deadline_ms = Some deadline };
            }
        in
        Service.run_request ~backoff:t.cfg.d_backoff ~breaker:t.breaker
          ~caches:t.caches req
    end
  in
  record_latency t (Clock.elapsed_ms job.j_admit);
  send cl (Service.render t.cfg.d_format outcome);
  job_done cl

(* ------------------------------------------------------------------ *)
(* admission                                                          *)

(* configured caps clamp an unstated budget and reject an explicit
   over-ask by name; a clamped request still runs *)
let apply_quota cfg req =
  let ( let* ) = Result.bind in
  let o = req.Service.rq_options in
  let* fuel =
    match (cfg.d_fuel_cap, o.Ctx.fuel) with
    | None, f -> Ok f
    | Some cap, None -> Ok (Some cap)
    | Some cap, Some f ->
      if f > cap then
        Error (Printf.sprintf "quota: fuel=%d exceeds cap %d" f cap)
      else Ok (Some f)
  in
  let* deadline =
    match (cfg.d_deadline_cap_ms, o.Ctx.deadline_ms) with
    | None, d -> Ok d
    | Some cap, None -> Ok (Some cap)
    | Some cap, Some d ->
      if d > cap then
        Error (Printf.sprintf "quota: deadline-ms=%g exceeds cap %g" d cap)
      else Ok (Some d)
  in
  Ok
    {
      req with
      Service.rq_options = { o with Ctx.fuel; Ctx.deadline_ms = deadline };
    }

(* reader-side replies for refused work: no pending slot was taken *)
let refuse t cl ~shed ~id ~program ~topology msg =
  Mutex.lock t.lock;
  if shed then t.shed <- t.shed + 1 else t.quota_rejects <- t.quota_rejects + 1;
  Mutex.unlock t.lock;
  send cl (Service.render t.cfg.d_format (refusal ~id ~program ~topology msg))

let enqueue t cl ~id ~program ~topology kind =
  let cfg = t.cfg in
  if Atomic.get t.stopping then
    refuse t cl ~shed:true ~id ~program ~topology "unavailable: daemon draining"
  else begin
    Mutex.lock cl.c_lock;
    if cl.c_pending >= cfg.d_max_inflight then begin
      let pending = cl.c_pending in
      Mutex.unlock cl.c_lock;
      refuse t cl ~shed:true ~id ~program ~topology
        (Printf.sprintf "overload: client has %d requests in flight (cap %d)"
           pending cfg.d_max_inflight)
    end
    else begin
      (* reserve the slot before [offer] so racing admits cannot
         overshoot the cap; release it if the queue sheds us *)
      cl.c_pending <- cl.c_pending + 1;
      Mutex.unlock cl.c_lock;
      let job = { j_client = cl; j_kind = kind; j_admit = Clock.now () } in
      (* each client queues in its own lane; the pool drains lanes
         round-robin, so a flooding client cannot starve the others *)
      if not (Pool.offer_keyed (feeder_exn t) ~key:cl.c_key job) then begin
        job_done cl;
        refuse t cl ~shed:true ~id ~program ~topology
          (Printf.sprintf "overload: admission queue full (bound %d)"
             cfg.d_queue_bound)
      end
    end
  end

let admit t cl line =
  match Service.parse_request ~id:(cl.c_id + 1) line with
  | Ok None -> ()
  | Error e ->
    cl.c_id <- cl.c_id + 1;
    Mutex.lock t.lock;
    t.bad_lines <- t.bad_lines + 1;
    Mutex.unlock t.lock;
    send cl
      (Service.render t.cfg.d_format (Service.malformed ~id:cl.c_id ~line e))
  | Ok (Some req) -> begin
    cl.c_id <- cl.c_id + 1;
    let program = req.Service.rq_program
    and topology = req.Service.rq_topology in
    match apply_quota t.cfg req with
    | Error msg ->
      refuse t cl ~shed:false ~id:req.Service.rq_id ~program ~topology msg
    | Ok req ->
      enqueue t cl ~id:req.Service.rq_id ~program ~topology (Jrun req)
  end

(* ------------------------------------------------------------------ *)
(* readers and the accept loop                                        *)

let reader t cl =
  let ic = Unix.in_channel_of_descr cl.c_fd in
  (try
     let quit = ref false in
     while not !quit do
       let line = input_line ic in
       match
         String.split_on_char ' ' (String.trim line)
         |> List.filter (fun s -> s <> "")
       with
       | [ "quit" ] -> quit := true
       | [ "ping" ] -> send cl "pong"
       | [ "stats" ] | [ "stats"; "--format"; "sexp" ] -> send cl (stats_line t)
       | [ "stats"; "prometheus" ] | [ "stats"; "--format"; "prometheus" ] ->
         send cl (stats_prometheus t)
       | [ "stats"; "--format"; fmt ] ->
         send cl (Printf.sprintf "error unknown stats format %S" fmt)
       | "cluster" :: topo :: trace :: rest
         when rest = []
              || (match rest with
                 | [ r ] -> String.length r > 6 && String.sub r 0 6 = "chaos="
                 | _ -> false) ->
         cl.c_id <- cl.c_id + 1;
         let chaos =
           match rest with
           | [ r ] -> Some (String.sub r 6 (String.length r - 6))
           | _ -> None
         in
         enqueue t cl ~id:cl.c_id ~program:"cluster" ~topology:topo
           (Jcluster { jc_id = cl.c_id; jc_topo = topo; jc_trace = trace; jc_chaos = chaos })
       | [ "sleep"; ms ] when float_of_string_opt ms <> None ->
         (* a queued no-op job: deterministic service time, so tests
            and benchmarks can shape load without touching the mapper *)
         cl.c_id <- cl.c_id + 1;
         enqueue t cl ~id:cl.c_id ~program:"sleep" ~topology:ms
           (Jsleep (cl.c_id, float_of_string ms))
       | _ -> admit t cl line
     done
   with End_of_file | Sys_error _ -> ());
  (* the reader owns the socket: wait until every accepted job for
     this client is answered, then close both fds exactly once *)
  Mutex.lock cl.c_lock;
  while cl.c_pending > 0 do
    Condition.wait cl.c_done cl.c_lock
  done;
  Mutex.unlock cl.c_lock;
  Mutex.lock t.lock;
  t.clients <- List.filter (fun c -> c != cl) t.clients;
  Mutex.unlock t.lock;
  close_out_noerr cl.c_oc;
  (try Unix.close cl.c_fd with Unix.Unix_error _ -> ())

let bind_socket = function
  | Unix_socket path ->
    (* a stale socket file from a killed daemon would make bind fail
       forever; replacing it is the restart semantics we want *)
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind s (Unix.ADDR_UNIX path);
    Unix.listen s 64;
    s
  | Tcp port ->
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt s Unix.SO_REUSEADDR true;
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen s 64;
    s

type controller = { ctl_stopping : bool Atomic.t }

let shutdown c = Atomic.set c.ctl_stopping true

let run ?ready ?(handle_signals = true) cfg =
  if cfg.d_jobs < 1 then invalid_arg "Daemon.run: jobs must be >= 1";
  if cfg.d_queue_bound < 0 then
    invalid_arg "Daemon.run: queue bound must be >= 0";
  if cfg.d_max_inflight < 1 then
    invalid_arg "Daemon.run: max inflight must be >= 1";
  let t =
    {
      cfg;
      breaker = Isolate.breaker ();
      caches = Service.caches ?bound:cfg.d_cache_bound ();
      stopping = Atomic.make false;
      lock = Mutex.create ();
      clients = [];
      client_seq = 0;
      served = 0;
      shed = 0;
      quota_rejects = 0;
      bad_lines = 0;
      lat = Array.make lat_window 0.0;
      lat_n = 0;
      feeder = None;
    }
  in
  t.feeder <- Some (Pool.feeder ~jobs:cfg.d_jobs ~bound:cfg.d_queue_bound (run_job t));
  let sock = bind_socket cfg.d_listen in
  if handle_signals then begin
    (* a vanished client must surface as EPIPE on write, not kill us *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let stop = Sys.Signal_handle (fun _ -> Atomic.set t.stopping true) in
    (try Sys.set_signal Sys.sigterm stop with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint stop with Invalid_argument _ -> ())
  end;
  (match ready with
  | Some f -> f { ctl_stopping = t.stopping }
  | None -> ());
  let readers = ref [] in
  while not (Atomic.get t.stopping) do
    (* short select timeout = how fast a SIGTERM is noticed *)
    match Unix.select [ sock ] [] [] 0.2 with
    | [ _ ], _, _ -> begin
      match Unix.accept sock with
      | fd, _ ->
        Mutex.lock t.lock;
        t.client_seq <- t.client_seq + 1;
        let cl =
          {
            c_fd = fd;
            c_oc = Unix.out_channel_of_descr (Unix.dup fd);
            c_key = t.client_seq;
            c_lock = Mutex.create ();
            c_done = Condition.create ();
            c_pending = 0;
            c_id = 0;
          }
        in
        t.clients <- cl :: t.clients;
        Mutex.unlock t.lock;
        readers := Thread.create (fun () -> reader t cl) () :: !readers
      | exception Unix.Unix_error ((EINTR | ECONNABORTED | EAGAIN), _, _) ->
        ()
    end
    | _ -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done;
  (* graceful drain: stop accepting, unblock idle readers, answer
     everything already accepted, only then tear the pool down *)
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (match cfg.d_listen with
  | Unix_socket path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let live = Mutex.protect t.lock (fun () -> t.clients) in
  List.iter
    (fun cl ->
      try Unix.shutdown cl.c_fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    live;
  List.iter Thread.join !readers;
  Pool.drain (feeder_exn t);
  0

(* ------------------------------------------------------------------ *)
(* client side                                                        *)

let connect = function
  | Unix_socket path ->
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect s (Unix.ADDR_UNIX path);
    s
  | Tcp port ->
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    s
