(** OREGAMI: software tools for mapping parallel computations to
    parallel architectures (Lo et al., ICPP 1990).

    Facade over the toolchain:

    - {!Larcs} — the LaRCS description language (lexer, parser,
      compiler, regularity analyses);
    - {!Mapper} — contraction / embedding / routing algorithms
      (canned, group-theoretic, MWM-Contract, NN-Embed, MM-Route);
    - {!Strategy} / {!Pipeline} / {!Ctx} / {!Stats} — the strategy
      registry and pass pipeline the dispatch is built from;
    - {!Driver} — the Fig 3 strategy dispatch;
    - {!Metrics} / {!Netsim} / {!Render} / {!Edit} — the METRICS
      analysis, simulation, display and modification loop;
    - {!Systolic} — affine recurrences → systolic arrays;
    - {!Workloads} — the paper's workload suite as LaRCS programs.

    One-call pipeline: {!map_source}. *)

module Prelude = Oregami_prelude
module Graph = Oregami_graph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Distcache = Oregami_topology.Distcache

module Faults = Oregami_topology.Faults
(** Fault sets and degraded topology views: dead processors/links,
    partition reporting, link-id translation. *)

module Gray = Oregami_topology.Gray
module Perm = Oregami_perm.Perm
module Group = Oregami_perm.Group
module Cayley = Oregami_perm.Cayley
module Matching = Oregami_matching
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr

module Coarsen = Oregami_taskgraph.Coarsen
(** Heavy-edge-matching coarsening hierarchies for the multilevel
    mapping tier: contracted CSR levels with aggregated node weights
    and summed edge traffic, plus coarse → fine projection. *)

module Larcs = Oregami_larcs
module Mapper = Oregami_mapper
module Mapping = Oregami_mapper.Mapping

module Repair = Oregami_mapper.Repair
(** Minimum-disruption repair of an existing mapping after faults:
    evacuate the dead processors' tasks, freeze the survivors,
    re-route everything around dead links. *)

module Ctx = Oregami_mapper.Ctx
(** Shared mapping context (program, analysis, topology, Distcache,
    RNG, options, stats sink) threaded through every pipeline pass. *)

module Strategy = Oregami_mapper.Strategy
(** The strategy registry behind the Fig 3 dispatch — every producer
    (canned, systolic, group, MWM, tiled, blocks, KL, Stone, naive
    baselines) under one uniform signature. *)

module Pipeline = Oregami_mapper.Pipeline
(** Strategy competition composed with the embedding / refinement /
    routing passes. *)

module Stats = Oregami_mapper.Stats
(** Per-pass instrumentation: attempts, rejection reasons, candidate
    scores, matching rounds, refine swaps, Distcache builds. *)

module Budget = Oregami_mapper.Budget
(** Fuel/deadline meter behind the anytime contract: hot pipeline
    loops poll it and stop early with their best partial result. *)

module Isolate = Oregami_mapper.Isolate
(** Exception barrier and per-strategy circuit breaker around the
    strategy producers. *)

module Driver = Driver
module Remap = Remap

module Service = Service
(** Batch mapping service: one request per input line, one structured
    result line (TSV or s-expression) out, retry-with-reduced-scope on
    budget exhaustion, and a shared circuit breaker across requests. *)

module Daemon = Daemon
(** Long-lived socket daemon over {!Service}: bounded admission with
    named load-shedding, per-client quotas and timeouts, LRU-bounded
    artifact caches, live [stats], and graceful SIGTERM drain. *)

module Cluster = Cluster
(** Online cluster lifecycle: leased processor regions for a stream of
    arriving/departing programs, chaos-injected failures, priced
    repair-vs-remap-vs-evict healing, and defragmenting re-packs. *)

module Metrics = Oregami_metrics.Metrics
module Netsim = Oregami_metrics.Netsim
module Render = Oregami_metrics.Render
module Svg = Oregami_metrics.Svg
module Edit = Oregami_metrics.Edit
module Systolic = Oregami_systolic
module Sched = Oregami_sched.Synchrony
module Vm = Oregami_exec.Vm
module Workloads = Oregami_workloads.Workloads

module Synth = Oregami_workloads.Synth
(** Synthetic large-graph generators ([synth:FAMILY:N[:SEED]] specs):
    grids, rings, trees and R-MAT graphs at sizes the LaRCS workloads
    cannot reach, for the multilevel tier's benchmarks. *)

val map_source :
  ?bindings:(string * int) list ->
  ?options:Driver.options ->
  string ->
  topology:string ->
  (Oregami_mapper.Mapping.t * Oregami_metrics.Metrics.summary, string) result
(** [map_source src ~topology:"hypercube:3"] parses and compiles the
    LaRCS source, builds the topology, runs the MAPPER dispatch, and
    returns the validated mapping with its METRICS summary. *)

val version : string
