module Topology = Oregami_topology.Topology
module Constraints = Oregami_mapper.Constraints
module Ctx = Oregami_mapper.Ctx
module Budget = Oregami_mapper.Budget
module Isolate = Oregami_mapper.Isolate
module Strategy = Oregami_mapper.Strategy
module Stats = Oregami_mapper.Stats
module Mapping = Oregami_mapper.Mapping
module Metrics = Oregami_metrics.Metrics
module Workloads = Oregami_workloads.Workloads
module Clock = Oregami_prelude.Clock
module Memo = Oregami_prelude.Memo
module Pool = Oregami_prelude.Pool
module Rng = Oregami_prelude.Rng

type format = Tsv | Sexp

type request = {
  rq_id : int;
  rq_program : string;
  rq_topology : string;
  rq_bindings : (string * int) list;
  rq_options : Ctx.options;
  rq_retries : int;
}

type outcome = {
  r_id : int;
  r_program : string;
  r_topology : string;
  r_ok : bool;
  r_strategy : string;
  r_degradation : Stats.degradation option;
  r_completion : int option;
  r_elapsed_ms : float;
  r_attempts : int;
  r_fuel_used : int;
  r_error : string;
}

(* a LaRCS source is human-written text; anything beyond this is a
   stray binary or a mistake, and slurping it unchecked would let one
   request balloon the service's memory *)
let max_program_bytes = 1 lsl 20

let load_program path_or_workload =
  match
    List.find_opt
      (fun s -> s.Workloads.w_name = path_or_workload)
      (Workloads.all ())
  with
  | Some spec -> Ok (spec.Workloads.source, spec.Workloads.bindings)
  | None -> begin
    try
      let ic = open_in path_or_workload in
      (* close on every exit, including a short read raising
         End_of_file out of really_input_string *)
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len > max_program_bytes then
            Error
              (Printf.sprintf "%s: program too large: %d bytes (cap %d)"
                 path_or_workload len max_program_bytes)
          else Ok (really_input_string ic len, []))
    with
    | Sys_error m -> Error m
    | End_of_file ->
      Error (Printf.sprintf "%s: truncated read" path_or_workload)
  end

(* ------------------------------------------------------------------ *)
(* request parsing                                                    *)

let tokens line =
  String.split_on_char '\t' line
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun t -> t <> "")

let default_retries = 2

let parse_request ~id line =
  let ( let* ) = Result.bind in
  match tokens line with
  | [] -> Ok None
  | t :: _ when t.[0] = '#' -> Ok None
  | [ _ ] -> Error "want: PROGRAM TOPOLOGY [key=value ...]"
  | program :: topology :: opts ->
    let with_options req f = { req with rq_options = f req.rq_options } in
    let* req, _seen =
      List.fold_left
        (fun acc tok ->
          let* req, seen = acc in
          match String.index_opt tok '=' with
          | None | Some 0 ->
            Error (Printf.sprintf "bad token %S (want key=value)" tok)
          | Some i ->
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            (* a repeated key is a client typo (the second value would
               silently win): fail loudly instead *)
            let* () =
              if List.mem k seen then
                Error (Printf.sprintf "duplicate key %S (each key may appear once)" k)
              else Ok ()
            in
            let seen = k :: seen in
            let* req =
            let non_negative what =
              match int_of_string_opt v with
              | Some n when n >= 0 -> Ok n
              | Some _ | None ->
                Error
                  (Printf.sprintf "%s wants a non-negative integer, got %S"
                     what v)
            in
            let names () =
              String.split_on_char ',' v |> List.filter (fun n -> n <> "")
            in
            (match k with
            | "fuel" ->
              let* n = non_negative "fuel" in
              Ok (with_options req (fun o -> { o with Ctx.fuel = Some n }))
            | "deadline-ms" -> begin
              match float_of_string_opt v with
              | Some f when f >= 0.0 ->
                Ok
                  (with_options req (fun o ->
                       { o with Ctx.deadline_ms = Some f }))
              | Some _ | None ->
                Error
                  (Printf.sprintf
                     "deadline-ms wants a non-negative number, got %S" v)
            end
            | "retries" ->
              let* n = non_negative "retries" in
              Ok { req with rq_retries = n }
            | "seed" ->
              let* n = non_negative "seed" in
              Ok (with_options req (fun o -> { o with Ctx.seed = n }))
            | "routing" -> begin
              match v with
              (* "mm" is the historical spelling; keep it as an alias *)
              | "mm" | "mm-route" ->
                Ok
                  (with_options req (fun o -> { o with Ctx.routing = Ctx.Mm_route }))
              | "oblivious" ->
                Ok
                  (with_options req (fun o ->
                       { o with Ctx.routing = Ctx.Oblivious }))
              | "coarse" ->
                Ok
                  (with_options req (fun o -> { o with Ctx.routing = Ctx.Coarse }))
              | "auto" ->
                Ok (with_options req (fun o -> { o with Ctx.routing = Ctx.Auto }))
              | other ->
                Error
                  (Printf.sprintf
                     "unknown routing %S (valid: mm-route, oblivious, coarse, \
                      auto)"
                     other)
            end
            | "only" ->
              Ok (with_options req (fun o -> { o with Ctx.only = names () }))
            | "exclude" ->
              Ok (with_options req (fun o -> { o with Ctx.exclude = names () }))
            | "multilevel-threshold" ->
              let* n = non_negative "multilevel-threshold" in
              Ok
                (with_options req (fun o -> { o with Ctx.multilevel_threshold = n }))
            (* placement constraints; [:] separates inside values since
               [=] already binds the key, e.g. pin=3:0,7:12 *)
            | "pin" ->
              let* pins = Constraints.parse_pins v in
              Ok
                (with_options req (fun o ->
                     {
                       o with
                       Ctx.constraints =
                         { o.Ctx.constraints with Constraints.pins };
                     }))
            | "forbid" ->
              let* forbids = Constraints.parse_forbids v in
              Ok
                (with_options req (fun o ->
                     {
                       o with
                       Ctx.constraints =
                         { o.Ctx.constraints with Constraints.forbids };
                     }))
            | "require" ->
              let* requires = Constraints.parse_requires v in
              Ok
                (with_options req (fun o ->
                     {
                       o with
                       Ctx.constraints =
                         { o.Ctx.constraints with Constraints.requires };
                     }))
            | "skip" ->
              Ok
                (with_options req (fun o ->
                     {
                       o with
                       Ctx.constraints =
                         { o.Ctx.constraints with Constraints.skip_classes = names () };
                     }))
            | _ -> begin
              (* anything else is a program parameter binding *)
              match int_of_string_opt v with
              | Some n -> Ok { req with rq_bindings = (k, n) :: req.rq_bindings }
              | None ->
                Error
                  (Printf.sprintf "bad parameter %S (want an integer value)" tok)
            end)
            in
            Ok (req, seen))
        (Ok
           ( {
               rq_id = id;
               rq_program = program;
               rq_topology = topology;
               rq_bindings = [];
               rq_options = { Ctx.default_options with Ctx.fallback = true };
               rq_retries = default_retries;
             },
             [] ))
        opts
    in
    Ok (Some { req with rq_bindings = List.rev req.rq_bindings })

(* ------------------------------------------------------------------ *)
(* the attempt schedule                                               *)

let compete_names () =
  List.filter_map
    (fun (s : Strategy.t) ->
      if s.Strategy.tier = Strategy.Compete then Some s.Strategy.name else None)
    (Strategy.registry ())

(* reduced scope per retry: first drop refinement, then drop the whole
   competing tier so only the cheap dispatch paths (and the baseline
   fallback) remain *)
let attempt_options base = function
  | 0 -> base
  | 1 -> { base with Ctx.refine = false }
  | _ ->
    {
      base with
      Ctx.refine = false;
      Ctx.only = [];
      Ctx.exclude = List.sort_uniq compare (base.Ctx.exclude @ compete_names ());
    }

(* preference across attempts; retry only while something better is
   still reachable *)
let rank = function
  | Error _ -> 0
  | Ok (_, Stats.Fallback) -> 1
  | Ok (_, Stats.Truncated _) -> 2
  | Ok (_, Stats.Full) -> 3

(* Jittered exponential backoff between retry attempts.  A bare retry
   loop re-fires instantly, so when many requests on a pool (or many
   daemon clients) hit the same transient hiccup they all retry in
   lockstep; the jitter decorrelates them.  The delay only spends
   wall-clock — output bytes are unchanged, and the jitter draws from
   the request's own deterministic [Rng] stream, never from global
   state. *)
type backoff = {
  bo_base_ms : float;  (** delay before the first retry *)
  bo_factor : float;  (** multiplier per further retry *)
  bo_cap_ms : float;  (** ceiling on the un-jittered delay *)
  bo_jitter : float;
      (** [j] scales the delay uniformly in [[1-j, 1+j)]; [0] = none *)
}

let default_backoff =
  { bo_base_ms = 1.0; bo_factor = 2.0; bo_cap_ms = 50.0; bo_jitter = 0.5 }

(* [n] is the 1-based retry ordinal (first retry = 1) *)
let backoff_delay_ms bo rng n =
  let raw = bo.bo_base_ms *. (bo.bo_factor ** float_of_int (n - 1)) in
  let capped = Float.min bo.bo_cap_ms raw in
  let scale =
    if bo.bo_jitter <= 0.0 then 1.0
    else 1.0 -. bo.bo_jitter +. Rng.float rng (2.0 *. bo.bo_jitter)
  in
  Float.max 0.0 (capped *. scale)

(* ------------------------------------------------------------------ *)
(* shared artifact caches                                             *)

(* The two per-request setup costs worth amortising across a batch:
   compiling the LaRCS program and building the topology (with its hop
   matrix).  Both artifacts are immutable once built — a compiled
   program is never mutated by the pipeline, and a topology's
   Distcache state is domain-safe — so one copy can be shared
   read-only by every pool domain.  Error values are cached too: a
   missing program file fails once, not once per request naming it. *)
type caches = {
  c_programs :
    (string, (Oregami_larcs.Compile.compiled, string) result) Memo.t;
      (* key: program path/name + sorted bindings *)
  c_topologies : (string, (Topology.t, string) result) Memo.t;
      (* key: the topology spec string *)
}

let caches ?bound () =
  { c_programs = Memo.create ?bound (); c_topologies = Memo.create ?bound () }

let program_key req =
  String.concat " "
    (req.rq_program
    :: List.map
         (fun (k, v) -> Printf.sprintf "%s=%d" k v)
         (List.sort compare req.rq_bindings))

let compile_program req =
  let ( let* ) = Result.bind in
  match
    Isolate.protect (fun () ->
        let* source, defaults = load_program req.rq_program in
        let bindings =
          req.rq_bindings
          @ List.filter
              (fun (k, _) -> not (List.mem_assoc k req.rq_bindings))
              defaults
        in
        Oregami_larcs.Compile.compile_source ~bindings source)
  with
  | Error exn -> Error ("internal crash: " ^ exn)
  | Ok r -> r

let build_topology spec =
  match
    Isolate.protect (fun () ->
        Result.map
          (fun t ->
            (* pre-warm the hop matrix once, here, so every request on
               this topology (from any domain) finds it published *)
            ignore (Oregami_topology.Distcache.hops t);
            t)
          (Topology.of_string spec))
  with
  | Error exn -> Error ("internal crash: " ^ exn)
  | Ok r -> r

let setup ?caches req =
  let ( let* ) = Result.bind in
  match caches with
  | Some c ->
    (* same error precedence as the uncached path: topology first *)
    let* topo =
      Memo.get c.c_topologies req.rq_topology (fun () ->
          build_topology req.rq_topology)
    in
    let* compiled =
      Memo.get c.c_programs (program_key req) (fun () -> compile_program req)
    in
    Ok (compiled, topo)
  | None -> begin
    match
      Isolate.protect (fun () ->
          let* topo = Topology.of_string req.rq_topology in
          let* source, defaults = load_program req.rq_program in
          let bindings =
            req.rq_bindings
            @ List.filter
                (fun (k, _) -> not (List.mem_assoc k req.rq_bindings))
                defaults
          in
          let* compiled = Oregami_larcs.Compile.compile_source ~bindings source in
          Ok (compiled, topo))
    with
    | Error exn -> Error ("internal crash: " ^ exn)
    | Ok r -> r
  end

let run_request ?(backoff = default_backoff) ?breaker ?caches req =
  let breaker =
    match breaker with Some b -> b | None -> Isolate.breaker ()
  in
  (* jitter stream decorrelated across requests of one batch *)
  let rng = Rng.create (req.rq_options.Ctx.seed + (977 * req.rq_id)) in
  let attempts = ref 0 in
  let fuel = ref 0 in
  let result, seconds =
    Clock.time (fun () ->
        match setup ?caches req with
        | Error e -> Error e
        | Ok (compiled, topo) ->
          let best = ref (Error "not attempted") in
          let n = ref 0 in
          let continue = ref true in
          while !continue && !n <= req.rq_retries do
            if !n > 0 then
              Unix.sleepf (backoff_delay_ms backoff rng !n /. 1e3);
            let options = attempt_options req.rq_options !n in
            let r, used =
              match
                Isolate.protect (fun () ->
                    let ctx = Ctx.of_compiled ~options ~breaker compiled topo in
                    let r = Driver.run ctx in
                    (r, Budget.fuel_used ctx.Ctx.budget))
              with
              | Error exn -> (Error ("internal crash: " ^ exn), 0)
              | Ok (r, used) -> (r, used)
            in
            incr n;
            fuel := !fuel + used;
            (* first attempt always lands, so a failing request reports
               its real error instead of the placeholder *)
            if !n = 1 || rank r > rank !best then best := r;
            (* 3 = Ok Full: nothing better is reachable *)
            if rank !best >= 3 then continue := false
          done;
          attempts := !n;
          !best)
  in
  let elapsed_ms = seconds *. 1e3 in
  match result with
  | Ok (m, deg) ->
    {
      r_id = req.rq_id;
      r_program = req.rq_program;
      r_topology = req.rq_topology;
      r_ok = true;
      r_strategy = m.Mapping.strategy;
      r_degradation = Some deg;
      r_completion = Some (Metrics.completion_time m);
      r_elapsed_ms = elapsed_ms;
      r_attempts = !attempts;
      r_fuel_used = !fuel;
      r_error = "";
    }
  | Error e ->
    {
      r_id = req.rq_id;
      r_program = req.rq_program;
      r_topology = req.rq_topology;
      r_ok = false;
      r_strategy = "-";
      r_degradation = None;
      r_completion = None;
      r_elapsed_ms = elapsed_ms;
      r_attempts = !attempts;
      r_fuel_used = !fuel;
      r_error = e;
    }

(* ------------------------------------------------------------------ *)
(* rendering                                                          *)

let sanitize s =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s

let degradation_field o =
  match o.r_degradation with
  | None -> "-"
  | Some d -> Stats.degradation_string d

let render fmt o =
  match fmt with
  | Tsv ->
    Printf.sprintf "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%.3f\t%d\t%d\t%s" o.r_id
      (sanitize o.r_program) (sanitize o.r_topology)
      (if o.r_ok then "ok" else "error")
      o.r_strategy (degradation_field o)
      (match o.r_completion with None -> "-" | Some c -> string_of_int c)
      o.r_elapsed_ms o.r_attempts o.r_fuel_used
      (if o.r_error = "" then "-" else sanitize o.r_error)
  | Sexp ->
    Printf.sprintf
      "(result (id %d) (program %S) (topology %S) (status %s) (strategy %S) \
       (degradation %S) (completion %s) (elapsed-ms %.3f) (attempts %d) \
       (fuel %d)%s)"
      o.r_id o.r_program o.r_topology
      (if o.r_ok then "ok" else "error")
      o.r_strategy (degradation_field o)
      (match o.r_completion with None -> "-" | Some c -> string_of_int c)
      o.r_elapsed_ms o.r_attempts o.r_fuel_used
      (if o.r_error = "" then "" else Printf.sprintf " (error %S)" o.r_error)

(* ------------------------------------------------------------------ *)
(* the serve loop                                                     *)

let malformed ~id ~line e =
  let program, topology =
    match tokens line with
    | p :: t :: _ -> (p, t)
    | [ p ] -> (p, "-")
    | [] -> ("-", "-")
  in
  {
    r_id = id;
    r_program = program;
    r_topology = topology;
    r_ok = false;
    r_strategy = "-";
    r_degradation = None;
    r_completion = None;
    r_elapsed_ms = 0.0;
    r_attempts = 0;
    r_fuel_used = 0;
    r_error = e;
  }

(* jobs = 1: the original streaming loop, request by request, no
   caches — bit-identical to the pre-pool service. *)
let serve_sequential ~breaker ~emit ic =
  let next_id = ref 0 in
  try
    while true do
      let line = input_line ic in
      match parse_request ~id:(!next_id + 1) line with
      | Ok None -> ()
      | Ok (Some req) ->
        incr next_id;
        emit (run_request ~breaker req)
      | Error e ->
        incr next_id;
        emit (malformed ~id:!next_id ~line e)
    done
  with End_of_file -> ()

(* jobs > 1: read the whole batch up front (the work-queue needs
   random access), fan the requests out over a domain pool sharing the
   artifact caches and the breaker, and emit results in request order
   as each prefix completes. *)
let serve_parallel ~jobs ~breaker ~emit ic =
  let caches = caches () in
  let work = ref [] and next_id = ref 0 in
  (try
     while true do
       let line = input_line ic in
       match parse_request ~id:(!next_id + 1) line with
       | Ok None -> ()
       | Ok (Some req) ->
         incr next_id;
         work := `Run req :: !work
       | Error e ->
         incr next_id;
         work := `Malformed (malformed ~id:!next_id ~line e) :: !work
     done
   with End_of_file -> ());
  let work = Array.of_list (List.rev !work) in
  Pool.run ~jobs ~n:(Array.length work)
    ~task:(fun i ->
      match work.(i) with
      | `Malformed o -> o
      | `Run req -> run_request ~breaker ~caches req)
    ~emit:(fun _ o -> emit o)

let serve ?(format = Tsv) ?breaker ?(jobs = 1) ic oc =
  let breaker =
    match breaker with Some b -> b | None -> Isolate.breaker ()
  in
  let failed = ref false in
  let emit o =
    if not o.r_ok then failed := true;
    output_string oc (render format o);
    output_char oc '\n';
    flush oc
  in
  if jobs <= 1 then serve_sequential ~breaker ~emit ic
  else serve_parallel ~jobs ~breaker ~emit ic;
  if !failed then 1 else 0
