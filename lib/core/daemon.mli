(** Long-lived network daemon over the batch mapping {!Service}.

    Where {!Service.serve} is batch-shaped — read a stream to EOF,
    answer every line, exit — the daemon keeps a socket listener and a
    persistent worker-domain pool ({!Oregami_prelude.Pool.feeder})
    alive across many concurrent clients, with the robustness
    machinery a service that cannot exit needs:

    - {b Admission control.}  Accepted jobs wait in a bounded queue.
      When the queue is full, when a client exceeds its inflight cap,
      or when the daemon is draining, the request is {e shed}: it is
      answered immediately with a normal error result line naming the
      reason ([overload: ...], [unavailable: ...]) instead of
      blocking.  A client therefore gets exactly one answer per
      request, always.
    - {b Quotas.}  Configured fuel/deadline caps clamp requests that
      did not state a budget and reject explicit over-asks by name
      ([quota: ...]).
    - {b Timeouts.}  A per-request wall-clock timeout converts into
      the mapper's own {!Oregami_mapper.Budget} deadline: time spent
      queued shrinks the compute budget, and a request whose timeout
      lapsed in the queue is answered [timeout: ...] without running.
    - {b Bounded caches.}  The shared artifact caches run in
      {!Oregami_prelude.Memo} LRU mode, so sustained many-key traffic
      cannot grow the daemon without limit.
    - {b Graceful drain.}  SIGTERM/SIGINT stop the accept loop; the
      daemon finishes (and answers) every accepted request, joins its
      readers and workers, removes the socket file, and {!run} returns
      0.

    {2 Protocol}

    Line-oriented, same request grammar as {!Service}: each line is
    [PROGRAM TOPOLOGY [key=value ...]], each answer is one
    {!Service.render} line.  Requests from one client are answered in
    completion order (the id column identifies them); requests of
    different clients share the pool, drained {e round-robin per
    client} ({!Oregami_prelude.Pool.offer_keyed}), so one flooding
    client only lengthens its own lane.  Control verbs are handled
    specially: [stats] answers one s-expression line of live counters
    (served/shed/quota rejects, queue depth, inflight, breaker trips,
    per-cache hit/miss/eviction, p50/p99 latency), and
    [stats --format prometheus] (or [stats prometheus]) the same
    snapshot in Prometheus text exposition; [ping] answers [pong];
    [quit] closes the connection after pending answers; [sleep MS]
    queues a no-op job of fixed duration — a deterministic load shape
    for tests and benchmarks; and
    [cluster TOPO synth:EVENTS[:SEED] [chaos=SPEC]] queues a bounded
    online-lifecycle run ({!Cluster}) answered as one s-expression
    summary line. *)

type listen = Unix_socket of string | Tcp of int
(** Where to listen: a Unix-domain socket path (replacing a stale
    socket file if present) or a loopback TCP port. *)

type config = {
  d_listen : listen;
  d_jobs : int;  (** worker-domain count (>= 1) *)
  d_queue_bound : int;  (** admission queue bound (>= 0; [0] sheds all) *)
  d_max_inflight : int;  (** per-client unanswered-request cap (>= 1) *)
  d_fuel_cap : int option;  (** per-request fuel quota *)
  d_deadline_cap_ms : float option;  (** per-request deadline quota *)
  d_timeout_ms : float option;  (** per-request wall-clock timeout *)
  d_cache_bound : int option;  (** LRU bound for each artifact cache *)
  d_format : Service.format;
  d_backoff : Service.backoff;  (** retry pacing for the workers *)
}

val default_config : listen -> config
(** [Pool.default_jobs ()] workers, queue bound 64, inflight cap 8,
    no quotas or timeout, cache bound 64, TSV, default backoff. *)

type controller
(** Handle to a running daemon, delivered through [?ready]. *)

val shutdown : controller -> unit
(** Trigger the same graceful drain as SIGTERM, from in-process (for
    tests and embedding).  Safe from any thread or domain. *)

val run : ?ready:(controller -> unit) -> ?handle_signals:bool -> config -> int
(** Bind, listen, and serve until SIGTERM/SIGINT (when
    [handle_signals], the default) or {!shutdown}.  [ready] is called
    once the socket is bound and admission is live, before the first
    accept — the hook tests use to know when to connect and how to
    stop.  Returns the exit code: 0 after a graceful drain.  Raises
    [Unix.Unix_error] if the socket cannot be bound. *)

val connect : listen -> Unix.file_descr
(** Client-side dial of a daemon address (used by [oregami client]
    and the tests).  The caller owns the descriptor. *)
