module Compile = Oregami_larcs.Compile
module Analyze = Oregami_larcs.Analyze
module Taskgraph = Oregami_taskgraph.Taskgraph
module Topology = Oregami_topology.Topology
module Mapping = Oregami_mapper.Mapping
module Mwm = Oregami_mapper.Mwm_contract
module Group_contract = Oregami_mapper.Group_contract
module Canned = Oregami_mapper.Canned
module Nn_embed = Oregami_mapper.Nn_embed
module Refine = Oregami_mapper.Refine
module Tiled = Oregami_mapper.Tiled
module Metrics = Oregami_metrics.Metrics
module Recurrence = Oregami_systolic.Recurrence
module Synthesis = Oregami_systolic.Synthesis
module Route = Oregami_mapper.Route
module Ugraph = Oregami_graph.Ugraph
module Distcache = Oregami_topology.Distcache

type routing = Mm_route | Oblivious

type options = {
  b : int option;
  routing : routing;
  route_cap : int;
  allow_canned : bool;
  allow_group : bool;
  allow_systolic : bool;
  refine : bool;
}

let default_options =
  {
    b = None;
    routing = Mm_route;
    route_cap = 64;
    allow_canned = true;
    allow_group = true;
    allow_systolic = true;
    refine = true;
  }

let finish options tg topo strategy cluster_of proc_of_cluster =
  let n = tg.Taskgraph.n in
  let proc_of_task = Array.init n (fun t -> proc_of_cluster.(cluster_of.(t))) in
  let routings =
    match options.routing with
    | Mm_route -> fst (Route.mm_route ~cap:options.route_cap tg topo ~proc_of_task)
    | Oblivious -> Route.deterministic_route tg topo ~proc_of_task
  in
  let m = { Mapping.tg; topo; cluster_of; proc_of_cluster; routings; strategy } in
  match Mapping.validate m with
  | Ok () -> Ok m
  | Error e -> Error ("mapping failed validation: " ^ e)

(* -------------------------------------------------------------- *)
(* candidate strategies; each returns None when it does not apply  *)

let mesh_dims compiled =
  match compiled.Compile.spaces with
  | [ space ] -> begin
    match space.Compile.dims with
    | [ (l1, h1); (l2, h2) ] -> Some [ h1 - l1 + 1; h2 - l2 + 1 ]
    | _ -> None
  end
  | [] | _ :: _ :: _ -> None

let try_canned options ?dims tg topo =
  if not options.allow_canned then None
  else begin
    let attempt family dims relabel =
      Canned.lookup ?dims ~family ~n:tg.Taskgraph.n topo
      |> Option.map (fun c ->
             let cluster_of =
               match relabel with
               | None -> c.Canned.cluster_of
               | Some r ->
                 Array.init tg.Taskgraph.n (fun t -> c.Canned.cluster_of.(r.(t)))
             in
             (Printf.sprintf "canned:%s" family, cluster_of, c.Canned.proc_of_cluster))
    in
    match tg.Taskgraph.declared_family with
    | Some family ->
      (* a declared family asserts the natural numbering *)
      attempt family dims None
    | None -> begin
      match Analyze.detect_family_match tg with
      | Some m ->
        let dims = match m.Analyze.fam_dims with Some _ as d -> d | None -> dims in
        attempt m.Analyze.fam_name dims (Some m.Analyze.relabel)
      | None -> None
    end
  end

let try_group options tg topo =
  if not options.allow_group then None
  else begin
    let procs = min (Topology.node_count topo) tg.Taskgraph.n in
    match Group_contract.contract tg ~procs with
    | Error _ -> None
    | Ok g ->
      (* embed the quotient cluster graph with NN-Embed *)
      let static = Taskgraph.static_graph tg in
      let k = Array.length g.Group_contract.clusters in
      let cg = Ugraph.create k in
      List.iter
        (fun (u, v, w) ->
          let cu = g.Group_contract.cluster_of.(u) and cv = g.Group_contract.cluster_of.(v) in
          if cu <> cv then Ugraph.add_edge ~w cg cu cv)
        (Ugraph.edges static);
      let proc_of_cluster = Nn_embed.embed cg topo in
      let proc_of_cluster =
        if options.refine then Refine.improve_embedding cg topo proc_of_cluster
        else proc_of_cluster
      in
      Some ("group-theoretic", g.Group_contract.cluster_of, proc_of_cluster)
  end

(* systolic placement: uniform dependences (identity affine maps) on a
   2-D lattice, projected onto a line of the mesh or used directly as
   grid coordinates *)
let try_systolic options compiled topo =
  if not options.allow_systolic then None
  else begin
    let a = Analyze.analyze compiled in
    match (a.Analyze.affine_maps, compiled.Compile.spaces) with
    | Some maps, [ space ] -> begin
      let dims = space.Compile.dims in
      let d = List.length dims in
      let identity m =
        Array.length m.Analyze.matrix = d
        && begin
             let ok = ref true in
             Array.iteri
               (fun i row ->
                 Array.iteri
                   (fun j v ->
                     let want = if i = j then 1 else 0 in
                     if v <> want then ok := false)
                   row)
               m.Analyze.matrix;
             !ok
           end
      in
      let uniform = List.for_all (fun (_, ms) -> List.for_all identity ms) maps in
      if not uniform then None
      else if d = 2 then begin
        (* tasks on a 2-D lattice with uniform deps: place the lattice
           directly on a processor mesh when it fits *)
        match Topology.kind topo with
        | Topology.Mesh (pr, pc) ->
          let r = let lo, hi = List.nth dims 0 in hi - lo + 1 in
          let c = let lo, hi = List.nth dims 1 in hi - lo + 1 in
          if r <= pr && c <= pc then begin
            let n = compiled.Compile.graph.Taskgraph.n in
            let cluster_of = Array.init n (fun t -> t) in
            let proc_of_cluster =
              Array.init n (fun t ->
                  match Compile.node_label_values compiled t with
                  | [ i; j ] ->
                    let lo0, _ = List.nth dims 0 and lo1, _ = List.nth dims 1 in
                    ((i - lo0) * pc) + (j - lo1)
                  | _ -> 0)
            in
            Some ("systolic:lattice", cluster_of, proc_of_cluster)
          end
          else None
        | Topology.Line _ | Topology.Ring _ | Topology.Torus _ | Topology.Hypercube _
        | Topology.Complete _ | Topology.Binary_tree _ | Topology.Binomial_tree _
        | Topology.Butterfly _ | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _
        | Topology.Star_graph _ | Topology.De_bruijn _ | Topology.Shuffle_exchange _ ->
          None
      end
      else if d = 3 then begin
        (* 3-D uniform recurrence: synthesize a space-time design and
           contract each task to its projected processor (paper
           section 4.2.1: "many of the systolic array synthesis
           algorithms ... can be used to perform the mappings") *)
        match Topology.kind topo with
        | Topology.Mesh (pr, pc) -> begin
          let deps =
            List.concat_map
              (fun (name, ms) ->
                List.mapi
                  (fun i (mm : Analyze.affine_map) ->
                    (* rule x -> x + b: the receiver consumes what x
                       produced, so the dependence vector is b itself *)
                    { Recurrence.dep_name = Printf.sprintf "%s%d" name i;
                      vector = Array.copy mm.Analyze.offset })
                  ms)
              maps
            |> List.filter (fun dep -> Array.exists (( <> ) 0) dep.Recurrence.vector)
          in
          let domain =
            {
              Recurrence.lower = Array.of_list (List.map fst dims);
              upper = Array.of_list (List.map snd dims);
              halfspaces = [];
            }
          in
          let r = { Recurrence.name = "larcs"; domain; deps } in
          match Synthesis.synthesize r with
          | Error _ -> None
          | Ok design -> begin
            let n = compiled.Compile.graph.Taskgraph.n in
            let pes =
              Array.init n (fun t ->
                  let x = Array.of_list (Compile.node_label_values compiled t) in
                  Oregami_systolic.Linalg.mat_vec design.Synthesis.allocation x)
            in
            (* normalise PE coordinates to a grid *)
            let d2 = 2 in
            let lows = Array.copy pes.(0) and highs = Array.copy pes.(0) in
            Array.iter
              (fun pe ->
                for i = 0 to d2 - 1 do
                  if pe.(i) < lows.(i) then lows.(i) <- pe.(i);
                  if pe.(i) > highs.(i) then highs.(i) <- pe.(i)
                done)
              pes;
            let er = highs.(0) - lows.(0) + 1 and ec = highs.(1) - lows.(1) + 1 in
            if er <= pr && ec <= pc then begin
              (* dense cluster ids over occupied PE cells *)
              let ids = Hashtbl.create 64 in
              let cluster_of =
                Array.map
                  (fun pe ->
                    let key = ((pe.(0) - lows.(0)) * ec) + (pe.(1) - lows.(1)) in
                    match Hashtbl.find_opt ids key with
                    | Some c -> c
                    | None ->
                      let c = Hashtbl.length ids in
                      Hashtbl.add ids key c;
                      c)
                  pes
              in
              let proc_of_cluster = Array.make (Hashtbl.length ids) 0 in
              Hashtbl.iter
                (fun key c -> proc_of_cluster.(c) <- ((key / ec) * pc) + (key mod ec))
                ids;
              Some ("systolic:projection", cluster_of, proc_of_cluster)
            end
            else None
          end
        end
        | Topology.Line _ | Topology.Ring _ | Topology.Torus _ | Topology.Hypercube _
        | Topology.Complete _ | Topology.Binary_tree _ | Topology.Binomial_tree _
        | Topology.Butterfly _ | Topology.Cube_connected_cycles _ | Topology.Hex_mesh _
        | Topology.Star_graph _ | Topology.De_bruijn _ | Topology.Shuffle_exchange _ ->
          None
      end
      else None
    end
    | None, _ | Some _, ([] | _ :: _ :: _) -> None
  end

let embed_clusters options static cluster_of k topo =
  let cg = Ugraph.create k in
  List.iter
    (fun (u, v, w) ->
      let cu = cluster_of.(u) and cv = cluster_of.(v) in
      if cu <> cv then Ugraph.add_edge ~w cg cu cv)
    (Ugraph.edges static);
  let proc_of_cluster = Nn_embed.embed cg topo in
  if options.refine then Refine.improve_embedding cg topo proc_of_cluster
  else proc_of_cluster

let general options tg topo =
  let procs = Topology.node_count topo in
  let static = Taskgraph.static_graph tg in
  match Mwm.contract ?b:options.b static ~procs with
  | Error e -> Error e
  | Ok contraction ->
    let k = Array.length contraction.Mwm.clusters in
    let proc_of_cluster = embed_clusters options static contraction.Mwm.cluster_of k topo in
    Ok ("mwm+nn", contraction.Mwm.cluster_of, proc_of_cluster)

(* tile contraction candidates for grid-shaped programs (single 2-D
   node type); the winner against MWM is decided by the completion
   model in [map_compiled] *)
let tiled_candidates options tg topo grid_dims =
  match grid_dims with
  | Some [ rows; cols ] when rows * cols = tg.Taskgraph.n ->
    let procs = Topology.node_count topo in
    let static = Taskgraph.static_graph tg in
    Tiled.contract ~rows ~cols ~procs
    |> List.map (fun (cluster_of, k) ->
           let proc_of_cluster = embed_clusters options static cluster_of k topo in
           ("tiled+nn", cluster_of, proc_of_cluster))
  | Some _ | None -> []

(* balanced consecutive blocks along the task numbering: the natural
   linearization candidate (strips of a grid, segments of a pipeline) *)
let block_candidate options tg topo =
  let procs = Topology.node_count topo in
  let n = tg.Taskgraph.n in
  let k = min n procs in
  let cluster_of = Array.init n (fun i -> i * k / n) in
  let static = Taskgraph.static_graph tg in
  let proc_of_cluster = embed_clusters options static cluster_of k topo in
  ("blocks+nn", cluster_of, proc_of_cluster)

let map_compiled ?(options = default_options) compiled topo =
  (* warm the topology's distance cache up front: every candidate
     strategy below shares the one hop matrix (built in parallel for
     large networks) instead of racing to build it mid-evaluation *)
  let _ = Distcache.hops topo in
  let tg = compiled.Compile.graph in
  let special =
    match try_canned options ?dims:(mesh_dims compiled) tg topo with
    | Some r -> Some r
    | None -> begin
      match try_systolic options compiled topo with
      | Some r -> Some r
      | None -> try_group options tg topo
    end
  in
  match special with
  | Some (strategy, cluster_of, proc_of_cluster) ->
    finish options tg topo strategy cluster_of proc_of_cluster
  | None -> begin
    (* general path: MWM-Contract plus any tile candidates, judged by
       the METRICS completion model (the automated form of the paper's
       inspect-and-modify loop) *)
    match general options tg topo with
    | Error e -> Error e
    | Ok mwm_candidate ->
      let candidates =
        (mwm_candidate :: tiled_candidates options tg topo (mesh_dims compiled))
        @ [ block_candidate options tg topo ]
      in
      let mapped =
        List.filter_map
          (fun (strategy, cluster_of, proc_of_cluster) ->
            match finish options tg topo strategy cluster_of proc_of_cluster with
            | Ok m -> Some (Metrics.completion_time m, m)
            | Error _ -> None)
          candidates
      in
      match List.sort (fun (a, _) (b, _) -> compare a b) mapped with
      | (_, best) :: _ -> Ok best
      | [] -> Error "no candidate mapping survived validation"
  end

let map_taskgraph ?(options = default_options) tg topo =
  let _ = Distcache.hops topo in
  let result =
    match try_canned options tg topo with
    | Some r -> Ok r
    | None -> begin
      match try_group options tg topo with
      | Some r -> Ok r
      | None -> general options tg topo
    end
  in
  match result with
  | Error e -> Error e
  | Ok (strategy, cluster_of, proc_of_cluster) ->
    finish options tg topo strategy cluster_of proc_of_cluster

let strategy_preview compiled topo =
  match map_compiled compiled topo with
  | Ok m -> m.Mapping.strategy
  | Error e -> "error: " ^ e
