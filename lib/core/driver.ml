module Ctx = Oregami_mapper.Ctx
module Strategy = Oregami_mapper.Strategy
module Pipeline = Oregami_mapper.Pipeline
module Stats = Oregami_mapper.Stats
module Mapping = Oregami_mapper.Mapping
module Metrics = Oregami_metrics.Metrics

type routing = Ctx.routing = Mm_route | Oblivious | Coarse | Auto

type options = Ctx.options = {
  b : int option;
  routing : routing;
  route_cap : int;
  jobs : int;
  allow_canned : bool;
  allow_group : bool;
  allow_systolic : bool;
  refine : bool;
  seed : int;
  only : string list;
  exclude : string list;
  fuel : int option;
  deadline_ms : float option;
  fallback : bool;
  constraints : Oregami_mapper.Constraints.spec;
  multilevel_threshold : int;
}

let default_options = Ctx.default_options

(* the whole former dispatch now lives in the registry + pipeline; the
   driver only supplies the judge (METRICS sits above the mapper in
   the dependency order, so the pipeline takes it as a parameter) *)
let run ctx =
  match Strategy.select ctx.Ctx.options with
  | Error e -> Error e
  | Ok selection -> Pipeline.compete ~score:Metrics.completion_time ctx selection

let drop_degradation = Result.map (fun (m, _) -> m)

let report ?(options = default_options) ?faults compiled topo =
  let ctx = Ctx.of_compiled ~options ?faults compiled topo in
  (drop_degradation (run ctx), ctx.Ctx.stats)

let report_taskgraph ?(options = default_options) ?faults tg topo =
  let ctx = Ctx.of_taskgraph ~options ?faults tg topo in
  (drop_degradation (run ctx), ctx.Ctx.stats)

let map_compiled ?options ?faults compiled topo = fst (report ?options ?faults compiled topo)
let map_taskgraph ?options ?faults tg topo = fst (report_taskgraph ?options ?faults tg topo)

let strategy_preview compiled topo =
  match map_compiled compiled topo with
  | Ok m -> m.Mapping.strategy
  | Error e -> "error: " ^ e
