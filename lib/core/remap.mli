(** Phase-shift remapping (paper §6): "algorithms that consider
    migrating processes at run time in order to accommodate phase
    shifts (as opposed to our current approach of finding one mapping
    that accommodates all the phases)".

    The phase expression is split into {e regimes} — maximal top-level
    sequence chunks that use disjoint sets of communication phases.
    Each regime gets its own mapping; between consecutive regimes every
    task that changes processor pays a migration message (its state,
    [migration_volume] units) routed through the network.  The plan
    compares the single static mapping against the per-regime mappings
    plus migration and says whether remapping pays off. *)

type regime = {
  rg_expr : Oregami_taskgraph.Phase_expr.t;
  rg_comms : string list;  (** communication phases active in it *)
}

val split_regimes : Oregami_taskgraph.Phase_expr.t -> regime list
(** Top-level sequence chunks, adjacent chunks merged while they share
    a communication phase.  A single-regime expression yields one
    chunk (remapping cannot help). *)

type plan = {
  static_mapping : Oregami_mapper.Mapping.t;
  static_makespan : int;
  regime_mappings : (regime * Oregami_mapper.Mapping.t) list;
  regime_makespans : int list;
  migration_time : int;
  remap_makespan : int;  (** Σ regimes + Σ migrations *)
  worthwhile : bool;
}

val plan :
  ?options:Driver.options ->
  ?migration_volume:int ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  (plan, string) result
(** [migration_volume] defaults to 8 units per moved task.  Makespans
    come from the {!Oregami_metrics.Netsim} simulator; migrations are
    simulated as one synchronous message step between regimes. *)

(** {2 Fault recovery}

    The same migration machinery prices recovery from processor/link
    failures: repair the existing mapping with minimum disruption
    ({!Oregami_mapper.Repair}) or remap from scratch on the degraded
    machine, and compare. *)

type recovery = {
  rc_faults : Oregami_topology.Faults.t;
  rc_base : Oregami_mapper.Mapping.t;  (** mapping on the pristine machine *)
  rc_base_makespan : int;
  rc_base_ms : float;  (** wall-clock spent on the initial mapping *)
  rc_repair : Oregami_mapper.Repair.t;  (** minimum-disruption repair *)
  rc_repair_migration : int;  (** evacuation traffic, Remap cost model *)
  rc_repair_makespan : int;  (** steady-state makespan after repair *)
  rc_repair_ms : float;  (** wall-clock spent on the repair *)
  rc_remap : Oregami_mapper.Mapping.t;  (** from-scratch mapping on the degraded view *)
  rc_remap_moved : int;  (** tasks whose processor changes under the remap *)
  rc_remap_migration : int;
  rc_remap_makespan : int;
  rc_remap_ms : float;  (** wall-clock spent on the from-scratch remap *)
  rc_repair_wins : bool;
      (** migration + steady-state cost favours (or ties) the repair *)
}

val recover :
  ?options:Driver.options ->
  ?migration_volume:int ->
  ?compiled:Oregami_larcs.Compile.compiled ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  Oregami_topology.Faults.t ->
  (recovery, string) result
(** [recover tg topo faults] maps on the pristine [topo], applies the
    fault set, repairs, remaps from scratch on the degraded view, and
    prices both transitions as migration traffic.  Pass [?compiled]
    when the task graph came from a LaRCS program so both mappings use
    the full dispatch.  Errors on an empty fault set, invalid ids, and
    faults that disconnect the surviving processors (with the
    partitions named). *)
