(** Batch mapping service: a stream of mapping requests in, one
    structured result line per request out, never aborting the batch on
    a poisoned request.

    Each input line is a request:

    {v PROGRAM TOPOLOGY [key=value ...] v}

    [PROGRAM] is a LaRCS source file or a built-in workload name,
    [TOPOLOGY] a topology spec ([torus:8x8], [hypercube:4], ...,
    optionally with a [:classes=CLASS@IDS/...] capability suffix).
    Blank lines and lines whose first token starts with [#] are
    skipped.  A repeated key on one line is a named parse error (the
    later value would otherwise win silently).  Recognised option
    keys: [fuel=N] and [deadline-ms=X]
    (per-attempt budget), [retries=N] (extra reduced-scope attempts,
    default 2), [seed=N], [routing=mm-route|oblivious|coarse|auto]
    ([mm] is accepted as an alias for [mm-route]), [only=a,b] /
    [exclude=a,b] (strategy selection),
    [multilevel-threshold=N] (flat-vs-multilevel gate), and the
    placement constraints [pin=T:P,...], [forbid=T:P,...],
    [require=T:CLASS,...], [skip=CLASS,...] ([:] separates inside the
    values because [=] binds the key; see
    {!Oregami_mapper.Constraints}).  Any other [key=value] with an
    integer value is passed to the program as a parameter binding
    (like [oregami map -p key=value]).

    Every request runs with [fallback] enabled, so a budgeted request
    always yields {e some} valid mapping whenever the machine is
    connected.  When an attempt fails outright or lands degraded
    (not [Full]) and retries remain, the request is retried with
    reduced scope: attempt 1 drops refinement, attempt 2 additionally
    drops the competing tier (dispatch strategies + baseline fallback
    only).  Each attempt gets a fresh budget; the best result across
    attempts is reported ([Full] > [Truncated] > [Fallback] > error).

    All requests of one {!serve} run share a single {!Isolate.breaker},
    so a strategy that keeps crashing across requests gets benched for
    the rest of the batch.

    {2 Parallel serving}

    With [jobs > 1] the batch is processed on a pool of OCaml 5
    domains ({!Oregami_prelude.Pool}) sharing two build-once artifact
    {!type-caches} — compiled programs keyed by program + bindings,
    and topologies (hop matrix pre-warmed) keyed by spec string — so a
    batch that names the same program/topology pairs repeatedly pays
    each setup once instead of once per request.  Results are still
    emitted strictly in request order (the pool's ordered collector),
    and every request gets its own context, RNG, stats, and budget, so
    for fixed seeds the output is byte-identical to a sequential run
    except for the wall-clock column.  [jobs = 1] (the default) is the
    original streaming loop: request by request, no caches, nothing
    spawned. *)

type format = Tsv | Sexp

type request = {
  rq_id : int;  (** 1-based request ordinal within the batch *)
  rq_program : string;
  rq_topology : string;
  rq_bindings : (string * int) list;
  rq_options : Oregami_mapper.Ctx.options;
      (** always has [fallback = true]; budgets from the request line *)
  rq_retries : int;
}

type outcome = {
  r_id : int;
  r_program : string;
  r_topology : string;
  r_ok : bool;
  r_strategy : string;  (** winning mapping label; ["-"] on error *)
  r_degradation : Oregami_mapper.Stats.degradation option;
      (** [None] on error *)
  r_completion : int option;  (** METRICS completion-time model *)
  r_elapsed_ms : float;  (** wall-clock over every attempt *)
  r_attempts : int;  (** pipeline attempts actually run *)
  r_fuel_used : int;  (** summed over attempts *)
  r_error : string;  (** [""] when ok *)
}

val max_program_bytes : int
(** Size cap on program files read by {!load_program}; larger files
    are rejected with a named error instead of being slurped. *)

val load_program : string -> (string * (string * int) list, string) result
(** Resolve a program argument: a built-in workload name (returning
    its source and default parameter bindings) or a readable file.
    The channel is closed on every path, and files over
    {!max_program_bytes} are refused by name. *)

val parse_request : id:int -> string -> (request option, string) result
(** [Ok None] for blank/comment lines.  Duplicate keys are an
    [Error]. *)

type backoff = {
  bo_base_ms : float;  (** delay before the first retry *)
  bo_factor : float;  (** multiplier per further retry *)
  bo_cap_ms : float;  (** ceiling on the un-jittered delay *)
  bo_jitter : float;
      (** [j] scales each delay uniformly in [[1-j, 1+j)]; [0] = none *)
}
(** Jittered exponential backoff between retry attempts, replacing the
    bare instant-retry counter: concurrent requests hitting the same
    transient failure decorrelate instead of re-firing in lockstep.
    Backoff spends wall-clock only — result bytes are unchanged, and
    the jitter draws from the request's own seeded RNG. *)

val default_backoff : backoff
(** 1 ms base, doubling, 50 ms cap, ±50% jitter. *)

type caches = {
  c_programs :
    (string, (Oregami_larcs.Compile.compiled, string) result) Oregami_prelude.Memo.t;
  c_topologies :
    (string, (Oregami_topology.Topology.t, string) result) Oregami_prelude.Memo.t;
}
(** Shared build-once artifact caches (see {!section-"parallel-serving"}
    above).  Cached values — including cached {e errors}, e.g. a
    missing program file — are immutable and safe to share across
    domains. *)

val caches : ?bound:int -> unit -> caches
(** Fresh, empty caches.  With [bound], each table keeps at most
    [bound] entries under LRU eviction ({!Oregami_prelude.Memo}) — the
    configuration a long-lived daemon needs so sustained many-key
    traffic cannot grow the caches without limit. *)

val run_request :
  ?backoff:backoff ->
  ?breaker:Oregami_mapper.Isolate.breaker ->
  ?caches:caches ->
  request ->
  outcome
(** Runs the request's attempt schedule.  Never raises: setup crashes
    and strategy crashes both become an error outcome (the latter via
    the pipeline's own {!Oregami_mapper.Isolate} barrier).  Before
    each retry the calling domain sleeps per [backoff] (default
    {!default_backoff}).  With [caches], program compilation and
    topology construction go through the shared tables (and their
    results are identical to a cold setup, wall-clock aside). *)

val malformed : id:int -> line:string -> string -> outcome
(** The error outcome {!serve} emits for an unparseable request line —
    exposed so other frontends (the network daemon) can answer
    malformed input identically. *)

val render : format -> outcome -> string
(** One line, no trailing newline.  [Tsv] column order: id, program,
    topology, status, strategy, degradation, completion, elapsed-ms,
    attempts, fuel, error (["-"] for empty fields). *)

val serve :
  ?format:format ->
  ?breaker:Oregami_mapper.Isolate.breaker ->
  ?jobs:int ->
  in_channel ->
  out_channel ->
  int
(** Process requests, emitting (and flushing) one result line each in
    request order, continuing past failures.  Returns the batch exit
    code: 0 when every request succeeded, 1 when any failed.

    [jobs] (default 1) is the domain-pool width.  [jobs = 1] streams
    request by request with no caches, exactly as before; [jobs > 1]
    reads the whole input to end-of-file first, then maps requests on
    the pool with the shared artifact caches, emitting each result as
    soon as all earlier results are out. *)
