(** Batch mapping service: a stream of mapping requests in, one
    structured result line per request out, never aborting the batch on
    a poisoned request.

    Each input line is a request:

    {v PROGRAM TOPOLOGY [key=value ...] v}

    [PROGRAM] is a LaRCS source file or a built-in workload name,
    [TOPOLOGY] a topology spec ([torus:8x8], [hypercube:4], ...).
    Blank lines and lines whose first token starts with [#] are
    skipped.  Recognised option keys: [fuel=N] and [deadline-ms=X]
    (per-attempt budget), [retries=N] (extra reduced-scope attempts,
    default 2), [seed=N], [routing=mm|oblivious], [only=a,b] /
    [exclude=a,b] (strategy selection).  Any other [key=value] with an
    integer value is passed to the program as a parameter binding
    (like [oregami map -p key=value]).

    Every request runs with [fallback] enabled, so a budgeted request
    always yields {e some} valid mapping whenever the machine is
    connected.  When an attempt fails outright or lands degraded
    (not [Full]) and retries remain, the request is retried with
    reduced scope: attempt 1 drops refinement, attempt 2 additionally
    drops the competing tier (dispatch strategies + baseline fallback
    only).  Each attempt gets a fresh budget; the best result across
    attempts is reported ([Full] > [Truncated] > [Fallback] > error).

    All requests of one {!serve} run share a single {!Isolate.breaker},
    so a strategy that keeps crashing across requests gets benched for
    the rest of the batch. *)

type format = Tsv | Sexp

type request = {
  rq_id : int;  (** 1-based request ordinal within the batch *)
  rq_program : string;
  rq_topology : string;
  rq_bindings : (string * int) list;
  rq_options : Oregami_mapper.Ctx.options;
      (** always has [fallback = true]; budgets from the request line *)
  rq_retries : int;
}

type outcome = {
  r_id : int;
  r_program : string;
  r_topology : string;
  r_ok : bool;
  r_strategy : string;  (** winning mapping label; ["-"] on error *)
  r_degradation : Oregami_mapper.Stats.degradation option;
      (** [None] on error *)
  r_completion : int option;  (** METRICS completion-time model *)
  r_elapsed_ms : float;  (** wall-clock over every attempt *)
  r_attempts : int;  (** pipeline attempts actually run *)
  r_fuel_used : int;  (** summed over attempts *)
  r_error : string;  (** [""] when ok *)
}

val load_program : string -> (string * (string * int) list, string) result
(** Resolve a program argument: a built-in workload name (returning
    its source and default parameter bindings) or a readable file. *)

val parse_request : id:int -> string -> (request option, string) result
(** [Ok None] for blank/comment lines. *)

val run_request :
  ?breaker:Oregami_mapper.Isolate.breaker -> request -> outcome
(** Runs the request's attempt schedule.  Never raises: setup crashes
    and strategy crashes both become an error outcome (the latter via
    the pipeline's own {!Oregami_mapper.Isolate} barrier). *)

val render : format -> outcome -> string
(** One line, no trailing newline.  [Tsv] column order: id, program,
    topology, status, strategy, degradation, completion, elapsed-ms,
    attempts, fuel, error (["-"] for empty fields). *)

val serve :
  ?format:format ->
  ?breaker:Oregami_mapper.Isolate.breaker ->
  in_channel ->
  out_channel ->
  int
(** Process requests line by line, emitting (and flushing) one result
    line each, continuing past failures.  Returns the batch exit code:
    0 when every request succeeded, 1 when any failed. *)
