(** The MAPPER dispatch (paper Fig 3): pick the mapping strategy from
    the LaRCS analyses and produce a complete routed mapping.

    The dispatch itself lives in the mapper library as a strategy
    registry composed with embedding/refinement/routing passes
    ({!Oregami_mapper.Strategy}, {!Oregami_mapper.Pipeline}); this
    module is the thin orchestrator that builds the shared
    {!Oregami_mapper.Ctx.t}, selects strategies from the options, and
    supplies the METRICS completion-time model as the judge for the
    competing tier.

    Priority under default options (identical to the original
    monolithic driver): declared/detected nameable family → canned
    lookup; affine communication on a lattice + mesh-like target →
    systolic space-time placement; bijective phases forming a Cayley
    graph → group-theoretic contraction; otherwise MWM-Contract,
    tiling, and block candidates compete under the completion model.
    Embedding uses the canned placement or NN-Embed, and routing uses
    MM-Route (or the oblivious deterministic router on request). *)

type routing = Oregami_mapper.Ctx.routing =
  | Mm_route
  | Oblivious
  | Coarse  (** traffic-aggregated MM-Route for the large tier *)
  | Auto  (** [Mm_route] below [multilevel_threshold] tasks, [Coarse] above *)

type options = Oregami_mapper.Ctx.options = {
  b : int option;  (** load-balance bound B for MWM-Contract *)
  routing : routing;
  route_cap : int;  (** candidate shortest routes per pair *)
  jobs : int;
      (** domains for routing independent phases under [Coarse];
          output is byte-identical across widths *)
  allow_canned : bool;
  allow_group : bool;
  allow_systolic : bool;
  refine : bool;  (** pairwise-interchange improvement of the embedding *)
  seed : int;  (** RNG seed for randomized strategies *)
  only : string list;
      (** restrict to these registry names; all compete on score *)
  exclude : string list;  (** registry names to drop *)
  fuel : int option;  (** work-unit budget; [None] unlimited *)
  deadline_ms : float option;  (** wall-clock budget; [None] unlimited *)
  fallback : bool;
      (** baseline placement instead of an error when every strategy
          declines (implied by any budget) *)
  constraints : Oregami_mapper.Constraints.spec;
      (** placement constraints: pins, forbids, required capability
          classes, skip-placement classes *)
  multilevel_threshold : int;
      (** task count beyond which the flat strategies yield to the
          multilevel tier *)
}

val default_options : options

val run :
  Oregami_mapper.Ctx.t ->
  (Oregami_mapper.Mapping.t * Oregami_mapper.Stats.degradation, string) result
(** The pipeline over a prebuilt context — the anytime entry point:
    the mapping comes tagged with how complete the run was
    ([Full]/[Truncated]/[Fallback]).  The batch service uses this to
    share a circuit breaker and per-request budgets across requests;
    [report] below is the legacy shape. *)

val report :
  ?options:options ->
  ?faults:Oregami_topology.Faults.t ->
  Oregami_larcs.Compile.compiled ->
  Oregami_topology.Topology.t ->
  (Oregami_mapper.Mapping.t, string) result * Oregami_mapper.Stats.t
(** Full pipeline from a compiled LaRCS program, returning the mapping
    (which always passes [Mapping.validate]) together with the per-pass
    statistics sink — strategies tried/rejected with reasons, candidate
    scores, matching rounds, refinement swaps, Distcache builds, wall
    time.  On [Error] the stats' [rejections] explain why every
    strategy declined.

    When targeting a degraded machine, pass the {e degraded} topology
    (from {!Oregami_topology.Faults.degrade}) and its fault set via
    [?faults]: every produced mapping avoids dead processors and dead
    links, and the symmetry strategies (canned/systolic/group) decline
    with a named reason. *)

val report_taskgraph :
  ?options:options ->
  ?faults:Oregami_topology.Faults.t ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  (Oregami_mapper.Mapping.t, string) result * Oregami_mapper.Stats.t
(** Same pipeline for a bare task graph (no AST-level affine analysis;
    family detection and the group path still apply). *)

val map_compiled :
  ?options:options ->
  ?faults:Oregami_topology.Faults.t ->
  Oregami_larcs.Compile.compiled ->
  Oregami_topology.Topology.t ->
  (Oregami_mapper.Mapping.t, string) result
(** [report] without the stats. *)

val map_taskgraph :
  ?options:options ->
  ?faults:Oregami_topology.Faults.t ->
  Oregami_taskgraph.Taskgraph.t ->
  Oregami_topology.Topology.t ->
  (Oregami_mapper.Mapping.t, string) result
(** [report_taskgraph] without the stats. *)

val strategy_preview :
  Oregami_larcs.Compile.compiled -> Oregami_topology.Topology.t -> string
(** Which strategy the dispatch would choose, without running it. *)
