module Topology = Oregami_topology.Topology
module Faults = Oregami_topology.Faults
module Taskgraph = Oregami_taskgraph.Taskgraph
module Ugraph = Oregami_graph.Ugraph
module Constraints = Oregami_mapper.Constraints
module Incremental = Oregami_mapper.Incremental
module Repair = Oregami_mapper.Repair
module Mapping = Oregami_mapper.Mapping
module Route = Oregami_mapper.Route
module Netsim = Oregami_metrics.Netsim
module Synth = Oregami_workloads.Synth
module Compile = Oregami_larcs.Compile
module Rng = Oregami_prelude.Rng

let ( let* ) = Result.bind

type arrival = {
  ar_name : string;
  ar_program : string;
  ar_procs : int option;
  ar_bindings : (string * int) list;
  ar_constraints : Constraints.spec;
}

type event =
  | Arrive of arrival
  | Depart of string
  | Kill of { procs : int list; links : int list }
  | Revive of { procs : int list; links : int list }

let ids l = String.concat "," (List.map string_of_int l)

let describe_faultish verb procs links =
  let parts =
    List.filter_map Fun.id
      [
        (if procs = [] then None else Some (Printf.sprintf "procs %s" (ids procs)));
        (if links = [] then None else Some (Printf.sprintf "links %s" (ids links)));
      ]
  in
  verb ^ " " ^ if parts = [] then "nothing" else String.concat " " parts

let describe_event = function
  | Arrive a ->
    Printf.sprintf "arrive %s (%s%s)" a.ar_name a.ar_program
      (match a.ar_procs with Some k -> Printf.sprintf ", %d procs" k | None -> "")
  | Depart name -> "depart " ^ name
  | Kill { procs; links } -> describe_faultish "kill" procs links
  | Revive { procs; links } -> describe_faultish "revive" procs links

type config = {
  cf_queue_bound : int;
  cf_max_retries : int;
  cf_defrag_threshold : float;
  cf_migration_volume : int;
  cf_route_cap : int;
}

let default_config =
  {
    cf_queue_bound = 16;
    cf_max_retries = 3;
    cf_defrag_threshold = 0.5;
    cf_migration_volume = 8;
    cf_route_cap = 64;
  }

type sample = {
  s_clock : int;
  s_event : string;
  s_utilization : float;
  s_fragmentation : float;
  s_running : int;
  s_queued : int;
  s_free : int;
}

type report = {
  rp_events : int;
  rp_admitted : int;
  rp_completed : int;
  rp_cancelled : int;
  rp_refused : (string * string) list;
  rp_shed : string list;
  rp_repairs : int;
  rp_remaps : int;
  rp_evictions : int;
  rp_repacks : int;
  rp_repacks_declined : int;
  rp_migration_total : int;
  rp_chaos_applied : int;
  rp_chaos_refused : int;
  rp_running : string list;
  rp_queued : string list;
  rp_samples : sample list;
  rp_log : string list;
}

type lease = {
  l_arrival : arrival;
  l_tg : Taskgraph.t;
  l_activation : int array;
  mutable l_procs : int list;  (** the leased region, sorted *)
  mutable l_mapping : Mapping.t;
  mutable l_makespan : int;  (** Netsim steady-state, cached for pricing *)
}

type pending = {
  p_arrival : arrival;
  p_tg : Taskgraph.t;
  p_activation : int array;
  mutable p_attempts : int;
  mutable p_not_before : int;  (** clock value gating the next attempt *)
  mutable p_last_error : string;
}

type t = {
  cfg : config;
  base : Topology.t;
  mutable view : Faults.view;
  leases : (string, lease) Hashtbl.t;
  mutable queue : pending list;  (** FIFO, bounded by [cf_queue_bound] *)
  mutable clock : int;
  mutable explain : (string -> unit) option;
  mutable log : string list;  (** reversed *)
  mutable samples : sample list;  (** reversed *)
  mutable events : int;
  mutable admitted : int;
  mutable completed : int;
  mutable cancelled : int;
  mutable refused : (string * string) list;  (** reversed *)
  mutable shed : string list;  (** reversed *)
  mutable repairs : int;
  mutable remaps : int;
  mutable evictions : int;
  mutable repacks : int;
  mutable repacks_declined : int;
  mutable migration_total : int;
  mutable chaos_applied : int;
  mutable chaos_refused : int;
}

let logf t fmt =
  Printf.ksprintf
    (fun line ->
      let line = Printf.sprintf "[%d] %s" t.clock line in
      t.log <- line :: t.log;
      match t.explain with Some f -> f line | None -> ())
    fmt

let refuse t name reason =
  t.refused <- (name, reason) :: t.refused;
  logf t "refuse %s: %s" name reason

(* ------------------------------------------------------------------ *)
(* occupancy *)

let leased_procs t =
  let topo = t.view.Faults.topo in
  Hashtbl.fold (fun _ l acc -> l.l_procs @ acc) t.leases []
  |> List.sort_uniq compare
  |> List.filter (Topology.alive topo)

let free_procs t =
  let leased = leased_procs t in
  Topology.alive_procs t.view.Faults.topo
  |> List.filter (fun p -> not (List.mem p leased))

let lease_assignment t name =
  match Hashtbl.find_opt t.leases name with
  | None -> None
  | Some l ->
    Some (l.l_tg, t.view.Faults.topo, Mapping.assignment l.l_mapping)

let utilization t = Netsim.utilization t.view.Faults.topo ~leased:(leased_procs t)

let fragmentation t = Netsim.fragmentation t.view.Faults.topo ~free:(free_procs t)

let sample t what =
  t.samples <-
    {
      s_clock = t.clock;
      s_event = what;
      s_utilization = utilization t;
      s_fragmentation = fragmentation t;
      s_running = Hashtbl.length t.leases;
      s_queued = List.length t.queue;
      s_free = List.length (free_procs t);
    }
    :: t.samples

(* ------------------------------------------------------------------ *)
(* region allocation: best-fit connected block out of the free pool *)

let free_components topo free =
  (* connected components of [free] in BFS order, so a prefix of a
     component is itself near-connected *)
  let in_free = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace in_free p ()) free;
  let g = Topology.graph topo in
  let seen = Hashtbl.create 16 in
  let component seed =
    let q = Queue.create () in
    Queue.add seed q;
    Hashtbl.replace seen seed ();
    let acc = ref [] in
    while not (Queue.is_empty q) do
      let p = Queue.pop q in
      acc := p :: !acc;
      List.iter
        (fun (u, _) ->
          if Hashtbl.mem in_free u && not (Hashtbl.mem seen u) then begin
            Hashtbl.replace seen u ();
            Queue.add u q
          end)
        (Ugraph.neighbors g p)
    done;
    List.rev !acc
  in
  List.filter_map
    (fun p -> if Hashtbl.mem seen p then None else Some (component p))
    free

(* [allocate t ~exclude want] picks [want] processors from the free
   pool (minus [exclude]): the smallest connected free block that fits
   (best-fit, to keep big blocks for big jobs), else spanning blocks
   largest-first.  Returns the region and how many blocks it spans. *)
let allocate t ~exclude want =
  let free = List.filter (fun p -> not (List.mem p exclude)) (free_procs t) in
  if List.length free < want then
    Error
      (Printf.sprintf "%d free processor%s, need %d" (List.length free)
         (if List.length free = 1 then "" else "s")
         want)
  else begin
    let comps = free_components t.view.Faults.topo free in
    let fitting = List.filter (fun c -> List.length c >= want) comps in
    match List.sort (fun a b -> compare (List.length a) (List.length b)) fitting with
    | best :: _ -> Ok (List.filteri (fun i _ -> i < want) best, 1)
    | [] ->
      (* no single block fits: span blocks, largest first *)
      let rec take acc spans = function
        | _ when List.length acc >= want -> (List.filteri (fun i _ -> i < want) acc, spans)
        | [] -> (acc, spans)
        | c :: rest -> take (acc @ c) (spans + 1) rest
      in
      let region, spans =
        take [] 0
          (List.sort (fun a b -> compare (List.length b) (List.length a)) comps)
      in
      Ok (region, spans)
  end

(* ------------------------------------------------------------------ *)
(* placement *)

let build_mapping t tg activation region cons =
  let topo = t.view.Faults.topo in
  let in_region = Array.make (Topology.node_count topo) false in
  List.iter (fun p -> in_region.(p) <- true) region;
  let n = tg.Taskgraph.n in
  let k = max 1 (List.length region) in
  let cap = max 1 ((n + k - 1) / k) in
  let active = Constraints.active cons in
  let feasible task p =
    in_region.(p) && ((not active) || Constraints.feasible cons ~task ~proc:p)
  in
  let* proc_of =
    Incremental.try_place ~feasible (Taskgraph.static_graph tg) ~activation ~cap topo
  in
  let cluster_ids = Hashtbl.create 16 in
  let cluster_of =
    Array.map
      (fun p ->
        match Hashtbl.find_opt cluster_ids p with
        | Some c -> c
        | None ->
          let c = Hashtbl.length cluster_ids in
          Hashtbl.add cluster_ids p c;
          c)
      proc_of
  in
  let proc_of_cluster = Array.make (Hashtbl.length cluster_ids) 0 in
  Hashtbl.iter (fun p c -> proc_of_cluster.(c) <- p) cluster_ids;
  let routings, _ =
    Route.mm_route ~cap:t.cfg.cf_route_cap tg topo ~proc_of_task:proc_of
  in
  let m =
    {
      Mapping.tg;
      topo;
      cluster_of;
      proc_of_cluster;
      routings;
      strategy = "cluster-incremental";
    }
  in
  match
    Mapping.validate ?constraints:(if active then Some cons else None) m
  with
  | Error e -> Error ("placement failed validation: " ^ e)
  | Ok () -> Ok m

(* processors the mapping actually occupies, sorted *)
let used_procs m =
  Array.to_list (Mapping.assignment m) |> List.sort_uniq compare

(* Try to give [p] a lease right now.  [Error] reasons are transient —
   the machine may free up, grow back, or defragment. *)
let try_admit t (p : pending) =
  let ar = p.p_arrival in
  let topo = t.view.Faults.topo in
  let n = p.p_tg.Taskgraph.n in
  let cons = Constraints.compile ar.ar_constraints p.p_tg topo in
  let* () =
    match Constraints.errors cons with
    | e :: _ -> Error ("constraints: " ^ e)
    | [] -> Ok ()
  in
  (* pinned processors must be part of the region, whatever the
     allocator would prefer *)
  let pinned = List.sort_uniq compare (List.map snd ar.ar_constraints.Constraints.pins) in
  let free = free_procs t in
  let* () =
    List.fold_left
      (fun acc pr ->
        let* () = acc in
        if not (Topology.alive topo pr) then
          Error (Printf.sprintf "pinned processor %d is dead" pr)
        else if not (List.mem pr free) then
          Error (Printf.sprintf "pinned processor %d is leased" pr)
        else Ok ())
      (Ok ()) pinned
  in
  let want =
    match ar.ar_procs with Some k -> k | None -> max 1 ((n + 1) / 2)
  in
  let want = min want (Topology.alive_count topo) in
  let* region, spans =
    if want <= List.length pinned then Ok (pinned, 1)
    else
      let* rest, spans = allocate t ~exclude:pinned (want - List.length pinned) in
      Ok (List.sort_uniq compare (pinned @ rest), spans)
  in
  let* m = build_mapping t p.p_tg p.p_activation region cons in
  let makespan = (Netsim.run m).Netsim.makespan in
  let lease =
    {
      l_arrival = ar;
      l_tg = p.p_tg;
      l_activation = p.p_activation;
      l_procs = List.sort_uniq compare region;
      l_mapping = m;
      l_makespan = makespan;
    }
  in
  Hashtbl.replace t.leases ar.ar_name lease;
  t.admitted <- t.admitted + 1;
  logf t "admit %s: %d tasks on %d procs {%s}%s, makespan %d" ar.ar_name n
    (List.length region) (ids lease.l_procs)
    (if spans > 1 then Printf.sprintf " spanning %d fragments" spans else "")
    makespan;
  Ok ()

(* ------------------------------------------------------------------ *)
(* admission queue: bounded FIFO, exponential backoff in trace time *)

let enqueue t p =
  if List.length t.queue >= t.cfg.cf_queue_bound then begin
    t.shed <- p.p_arrival.ar_name :: t.shed;
    logf t "shed %s: queue full (%d waiting)" p.p_arrival.ar_name
      (List.length t.queue)
  end
  else begin
    t.queue <- t.queue @ [ p ];
    logf t "queue %s (attempt %d): %s" p.p_arrival.ar_name p.p_attempts
      p.p_last_error
  end

let drain t =
  let keep =
    List.filter
      (fun p ->
        if p.p_not_before > t.clock then true
        else begin
          match try_admit t p with
          | Ok () -> false
          | Error e ->
            p.p_attempts <- p.p_attempts + 1;
            p.p_last_error <- e;
            if p.p_attempts > t.cfg.cf_max_retries then begin
              refuse t p.p_arrival.ar_name
                (Printf.sprintf "placement failed after %d attempts: %s"
                   p.p_attempts e);
              false
            end
            else begin
              (* exponential backoff in trace time, so a transiently
                 full machine is not hammered on every event *)
              p.p_not_before <- t.clock + (1 lsl p.p_attempts);
              true
            end
        end)
      t.queue
  in
  t.queue <- keep

(* ------------------------------------------------------------------ *)
(* chaos healing: price repair vs. fresh re-placement vs. eviction *)

let price t m =
  let topo = t.view.Faults.topo in
  let before = Mapping.assignment (fst m) and after = Mapping.assignment (snd m) in
  Netsim.migration_time ~volume:t.cfg.cf_migration_volume topo before after

let heal t name l =
  let topo = t.view.Faults.topo in
  let alive_region = List.filter (Topology.alive topo) l.l_procs in
  let dead_in_lease = List.filter (fun p -> not (Topology.alive topo p)) l.l_procs in
  let free = free_procs t in
  let allowed = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace allowed p ()) alive_region;
  List.iter (fun p -> Hashtbl.replace allowed p ()) free;
  let repair_cand =
    match
      Repair.repair ~cap:t.cfg.cf_route_cap ~constraints:l.l_arrival.ar_constraints
        ~allowed:(Hashtbl.mem allowed) l.l_mapping topo
    with
    | Error e -> Error ("repair: " ^ e)
    | Ok rep ->
      let m = rep.Repair.rp_mapping in
      let migration = price t (l.l_mapping, m) in
      let makespan = (Netsim.run m).Netsim.makespan in
      Ok (m, migration, makespan, Repair.moved rep)
  in
  let commit which (m, migration, makespan, moved) =
    l.l_mapping <- m;
    l.l_makespan <- makespan;
    l.l_procs <- List.sort_uniq compare (alive_region @ used_procs m);
    t.migration_total <- t.migration_total + migration;
    logf t "%s %s: %d moved, migration %d, makespan %d, region {%s}" which name
      moved migration makespan (ids l.l_procs)
  in
  if dead_in_lease = [] then begin
    (* untouched placement; routes may still cross freshly dead links
       or processors, so re-route via a zero-move repair *)
    match repair_cand with
    | Ok ((_, _, _, 0) as cand) -> commit "reroute" cand
    | Ok cand ->
      t.repairs <- t.repairs + 1;
      commit "repair" cand
    | Error e ->
      t.evictions <- t.evictions + 1;
      Hashtbl.remove t.leases name;
      logf t "evict %s: %s" name e;
      enqueue t
        {
          p_arrival = l.l_arrival;
          p_tg = l.l_tg;
          p_activation = l.l_activation;
          p_attempts = 0;
          p_not_before = t.clock;
          p_last_error = e;
        }
  end
  else begin
    logf t "%s lost procs {%s}" name (ids dead_in_lease);
    let remap_cand =
      let want = List.length l.l_procs in
      let* grown, _ =
        if want <= List.length alive_region then Ok ([], 1)
        else allocate t ~exclude:alive_region (want - List.length alive_region)
      in
      let region = List.sort_uniq compare (alive_region @ grown) in
      let cons = Constraints.compile l.l_arrival.ar_constraints l.l_tg topo in
      let* () =
        match Constraints.errors cons with
        | e :: _ -> Error ("constraints: " ^ e)
        | [] -> Ok ()
      in
      let* m = build_mapping t l.l_tg l.l_activation region cons in
      let migration = price t (l.l_mapping, m) in
      let makespan = (Netsim.run m).Netsim.makespan in
      let moved =
        let b = Mapping.assignment l.l_mapping and a = Mapping.assignment m in
        let c = ref 0 in
        Array.iteri (fun i p -> if p <> a.(i) then incr c) b;
        !c
      in
      Ok (m, migration, makespan, moved)
    in
    match (repair_cand, remap_cand) with
    | Ok ((_, rmig, rmk, _) as r), Ok ((_, smig, smk, _) as s) ->
      (* minimum total disruption: migration traffic plus the
         steady-state makespan the survivors will then run at *)
      if rmig + rmk <= smig + smk then begin
        t.repairs <- t.repairs + 1;
        logf t "heal %s: repair wins (%d+%d vs remap %d+%d)" name rmig rmk smig smk;
        commit "repair" r
      end
      else begin
        t.remaps <- t.remaps + 1;
        logf t "heal %s: remap wins (%d+%d vs repair %d+%d)" name smig smk rmig rmk;
        commit "remap" s
      end
    | Ok ((_, _, _, _) as r), Error e ->
      t.repairs <- t.repairs + 1;
      logf t "heal %s: repair only (%s)" name e;
      commit "repair" r
    | Error e, Ok ((_, _, _, _) as s) ->
      t.remaps <- t.remaps + 1;
      logf t "heal %s: remap only (%s)" name e;
      commit "remap" s
    | Error er, Error es ->
      t.evictions <- t.evictions + 1;
      Hashtbl.remove t.leases name;
      logf t "evict %s: %s; %s" name er es;
      enqueue t
        {
          p_arrival = l.l_arrival;
          p_tg = l.l_tg;
          p_activation = l.l_activation;
          p_attempts = 0;
          p_not_before = t.clock;
          p_last_error = er;
        }
  end

(* ------------------------------------------------------------------ *)
(* defragmenting re-pack *)

let repack_candidate t =
  (* re-place every lease into a freshly allocated compact region,
     biggest jobs first, against an empty machine *)
  let topo = t.view.Faults.topo in
  let leases =
    Hashtbl.fold (fun name l acc -> (name, l) :: acc) t.leases []
    |> List.sort (fun (na, a) (nb, b) ->
           compare (-List.length a.l_procs, na) (-List.length b.l_procs, nb))
  in
  let taken = ref [] in
  List.fold_left
    (fun acc (name, l) ->
      let* plan = acc in
      let cons = Constraints.compile l.l_arrival.ar_constraints l.l_tg topo in
      let* () =
        match Constraints.errors cons with
        | e :: _ -> Error (name ^ ": constraints: " ^ e)
        | [] -> Ok ()
      in
      let pinned =
        List.sort_uniq compare (List.map snd l.l_arrival.ar_constraints.Constraints.pins)
      in
      let free =
        Topology.alive_procs topo
        |> List.filter (fun p -> not (List.mem p !taken) && not (List.mem p pinned))
      in
      let want = max 1 (List.length l.l_procs - List.length pinned) in
      let* region =
        if List.length free < want then
          Error (Printf.sprintf "%s: %d free, need %d" name (List.length free) want)
        else begin
          let comps = free_components topo free in
          let fitting = List.filter (fun c -> List.length c >= want) comps in
          match
            List.sort (fun a b -> compare (List.length a) (List.length b)) fitting
          with
          | best :: _ -> Ok (List.filteri (fun i _ -> i < want) best)
          | [] ->
            let rec take acc = function
              | _ when List.length acc >= want -> List.filteri (fun i _ -> i < want) acc
              | [] -> acc
              | c :: rest -> take (acc @ c) rest
            in
            Ok
              (take []
                 (List.sort (fun a b -> compare (List.length b) (List.length a)) comps))
        end
      in
      let region = List.sort_uniq compare (pinned @ region) in
      let* m =
        Result.map_error (fun e -> name ^ ": " ^ e)
          (build_mapping t l.l_tg l.l_activation region cons)
      in
      taken := region @ !taken;
      let migration = price t (l.l_mapping, m) in
      Ok ((name, l, region, m, migration) :: plan))
    (Ok []) leases

let maybe_repack t =
  let frag = fragmentation t in
  if
    frag > t.cfg.cf_defrag_threshold
    && t.queue <> []
    && Hashtbl.length t.leases > 0
  then begin
    match repack_candidate t with
    | Error e -> logf t "repack abandoned: %s" e
    | Ok plan ->
      let total_migration =
        List.fold_left (fun acc (_, _, _, _, m) -> acc + m) 0 plan
      in
      (* projected queue wait: each waiting job roughly waits out the
         mean remaining makespan of a running lease *)
      let mean_makespan =
        let n = Hashtbl.length t.leases in
        Hashtbl.fold (fun _ l acc -> acc + l.l_makespan) t.leases 0 / max 1 n
      in
      let queue_wait = List.length t.queue * mean_makespan in
      if total_migration < queue_wait then begin
        t.repacks <- t.repacks + 1;
        t.migration_total <- t.migration_total + total_migration;
        List.iter
          (fun (name, l, region, m, migration) ->
            l.l_procs <- region;
            l.l_mapping <- m;
            l.l_makespan <- (Netsim.run m).Netsim.makespan;
            logf t "repack %s -> {%s} (migration %d)" name (ids region) migration)
          plan;
        logf t "repack committed: fragmentation %.2f, migration %d < queue wait %d"
          frag total_migration queue_wait;
        drain t
      end
      else begin
        t.repacks_declined <- t.repacks_declined + 1;
        logf t "repack declined: migration %d >= queue wait %d (fragmentation %.2f)"
          total_migration queue_wait frag
      end
  end

(* ------------------------------------------------------------------ *)
(* the event loop *)

let create ?(config = default_config) base =
  if Topology.node_count base = 0 then Error "empty machine"
  else
    let* view = Faults.degrade base Faults.none in
    Ok
      {
        cfg = config;
        base;
        view;
        leases = Hashtbl.create 16;
        queue = [];
        clock = 0;
        explain = None;
        log = [];
        samples = [];
        events = 0;
        admitted = 0;
        completed = 0;
        cancelled = 0;
        refused = [];
        shed = [];
        repairs = 0;
        remaps = 0;
        evictions = 0;
        repacks = 0;
        repacks_declined = 0;
        migration_total = 0;
        chaos_applied = 0;
        chaos_refused = 0;
      }

let known t name =
  Hashtbl.mem t.leases name
  || List.exists (fun p -> p.p_arrival.ar_name = name) t.queue

(* graph + activation for an arrival: synth spec, workload name, or
   LaRCS file.  Failures here are permanent — retrying cannot fix a
   missing program. *)
let load_arrival ar =
  if Synth.is_spec ar.ar_program then
    let* tg = Synth.build ar.ar_program in
    Ok (tg, Array.make tg.Taskgraph.n 0)
  else
    let* source, defaults = Service.load_program ar.ar_program in
    let bindings =
      ar.ar_bindings
      @ List.filter (fun (k, _) -> not (List.mem_assoc k ar.ar_bindings)) defaults
    in
    let* compiled = Compile.compile_source ~bindings source in
    Ok (compiled.Compile.graph, compiled.Compile.activation)

let arrive t ar =
  if known t ar.ar_name then
    refuse t ar.ar_name "duplicate job name (already running or queued)"
  else begin
    match
      let* () =
        match ar.ar_procs with
        | Some k when k <= 0 -> Error (Printf.sprintf "requested %d processors" k)
        | Some k when k > Topology.node_count t.base ->
          Error
            (Printf.sprintf "requested %d processors, machine has %d" k
               (Topology.node_count t.base))
        | _ -> Ok ()
      in
      load_arrival ar
    with
    | Error e -> refuse t ar.ar_name e
    | Ok (tg, activation) ->
      let p =
        {
          p_arrival = ar;
          p_tg = tg;
          p_activation = activation;
          p_attempts = 0;
          p_not_before = t.clock;
          p_last_error = "";
        }
      in
      (match try_admit t p with
      | Ok () -> ()
      | Error e ->
        p.p_attempts <- 1;
        p.p_not_before <- t.clock + 1;
        p.p_last_error <- e;
        enqueue t p)
  end

let depart t name =
  match Hashtbl.find_opt t.leases name with
  | Some l ->
    Hashtbl.remove t.leases name;
    t.completed <- t.completed + 1;
    logf t "depart %s: released {%s}" name (ids l.l_procs);
    drain t;
    maybe_repack t
  | None ->
    let before = List.length t.queue in
    t.queue <- List.filter (fun p -> p.p_arrival.ar_name <> name) t.queue;
    if List.length t.queue < before then begin
      t.cancelled <- t.cancelled + 1;
      logf t "cancel %s: departed while queued" name
    end
    else logf t "depart %s: unknown job (ignored)" name

let kill t procs links =
  let f = t.view.Faults.faults in
  match
    let* merged =
      Faults.make ~procs:(procs @ f.Faults.procs) ~links:(links @ f.Faults.links)
        t.base
    in
    Faults.degrade t.base merged
  with
  | Error e ->
    t.chaos_refused <- t.chaos_refused + 1;
    logf t "chaos refused (%s): %s" (describe_faultish "kill" procs links) e
  | Ok view ->
    t.view <- view;
    t.chaos_applied <- t.chaos_applied + 1;
    logf t "chaos: %s (%s)" (describe_faultish "kill" procs links)
      (Faults.describe view.Faults.faults);
    (* heal every lease: even untouched placements may route through
       the freshly dead hardware *)
    Hashtbl.fold (fun name l acc -> (name, l) :: acc) t.leases []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (name, l) -> heal t name l);
    drain t

let revive t procs links =
  match Faults.revive ~procs ~links t.view with
  | Error e ->
    t.chaos_refused <- t.chaos_refused + 1;
    logf t "chaos refused (%s): %s" (describe_faultish "revive" procs links) e
  | Ok view ->
    t.view <- view;
    t.chaos_applied <- t.chaos_applied + 1;
    logf t "chaos: %s (%s)" (describe_faultish "revive" procs links)
      (Faults.describe view.Faults.faults);
    drain t

let step t ev =
  t.clock <- t.clock + 1;
  t.events <- t.events + 1;
  (match ev with
  | Arrive ar -> arrive t ar
  | Depart name -> depart t name
  | Kill { procs; links } -> kill t procs links
  | Revive { procs; links } -> revive t procs links);
  (* queued jobs whose backoff expired get another shot on every tick *)
  drain t;
  sample t (describe_event ev)

(* ------------------------------------------------------------------ *)
(* invariants: lease accounting, checked by the stress soak *)

let invariants t =
  let topo = t.view.Faults.topo in
  let owner = Hashtbl.create 16 in
  let* () =
    Hashtbl.fold
      (fun name l acc ->
        let* () = acc in
        List.fold_left
          (fun acc p ->
            let* () = acc in
            if not (Topology.alive topo p) then
              Error (Printf.sprintf "lease %s holds dead processor %d" name p)
            else begin
              match Hashtbl.find_opt owner p with
              | Some other ->
                Error
                  (Printf.sprintf "processor %d leased to both %s and %s" p other
                     name)
              | None ->
                Hashtbl.replace owner p name;
                Ok ()
            end)
          (Ok ()) l.l_procs)
      t.leases (Ok ())
  in
  let* () =
    Hashtbl.fold
      (fun name l acc ->
        let* () = acc in
        Array.to_list (Mapping.assignment l.l_mapping)
        |> List.fold_left
             (fun acc p ->
               let* () = acc in
               if not (List.mem p l.l_procs) then
                 Error
                   (Printf.sprintf "lease %s places a task on %d outside its region"
                      name p)
               else Ok ())
             (Ok ()))
      t.leases (Ok ())
  in
  let leased = leased_procs t and free = free_procs t in
  let alive = Topology.alive_count topo in
  if List.length leased + List.length free <> alive then
    Error
      (Printf.sprintf "conservation: %d leased + %d free <> %d alive"
         (List.length leased) (List.length free) alive)
  else if List.exists (fun p -> List.mem p leased) free then
    Error "conservation: a processor is both leased and free"
  else if List.length t.queue > t.cfg.cf_queue_bound then
    Error
      (Printf.sprintf "queue %d over bound %d" (List.length t.queue)
         t.cfg.cf_queue_bound)
  else Ok ()

(* ------------------------------------------------------------------ *)
(* wrap-up *)

let finish t =
  (* final drain: let every backoff expire and retries exhaust, then
     refuse whatever still waits — no job ends unaccounted *)
  let guard = ref ((t.cfg.cf_max_retries + 2) * (List.length t.queue + 1)) in
  while t.queue <> [] && !guard > 0 do
    decr guard;
    let next =
      List.fold_left (fun acc p -> min acc p.p_not_before) max_int t.queue
    in
    t.clock <- max (t.clock + 1) next;
    drain t
  done;
  List.iter
    (fun p ->
      refuse t p.p_arrival.ar_name
        (Printf.sprintf "still queued when the trace ended (last error: %s)"
           (if p.p_last_error = "" then "never attempted" else p.p_last_error)))
    t.queue;
  t.queue <- [];
  let running =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.leases [] |> List.sort compare
  in
  {
    rp_events = t.events;
    rp_admitted = t.admitted;
    rp_completed = t.completed;
    rp_cancelled = t.cancelled;
    rp_refused = List.rev t.refused;
    rp_shed = List.rev t.shed;
    rp_repairs = t.repairs;
    rp_remaps = t.remaps;
    rp_evictions = t.evictions;
    rp_repacks = t.repacks;
    rp_repacks_declined = t.repacks_declined;
    rp_migration_total = t.migration_total;
    rp_chaos_applied = t.chaos_applied;
    rp_chaos_refused = t.chaos_refused;
    rp_running = running;
    rp_queued = [];
    rp_samples = List.rev t.samples;
    rp_log = List.rev t.log;
  }

let run ?config ?explain ?(chaos = []) base events =
  let* t = create ?config base in
  t.explain <- explain;
  let chaos = List.stable_sort (fun (a, _) (b, _) -> compare a b) chaos in
  let rec go i chaos events =
    let chaos =
      let due, later = List.partition (fun (at, _) -> at <= i) chaos in
      List.iter (fun (_, ev) -> step t ev) due;
      later
    in
    match events with
    | [] ->
      (* chaos scheduled past the end of the trace still fires *)
      List.iter (fun (_, ev) -> step t ev) chaos
    | ev :: rest ->
      step t ev;
      go (i + 1) chaos rest
  in
  go 0 chaos events;
  Ok (finish t)

(* ------------------------------------------------------------------ *)
(* parsing: chaos specs and trace files *)

let parse_action s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad chaos action %S (want ACTION=IDS)" s)
  | Some eq ->
    let key = String.sub s 0 eq in
    let v = String.sub s (eq + 1) (String.length s - eq - 1) in
    let* ids = Faults.parse_ids v in
    (match key with
    | "kill-procs" -> Ok (Kill { procs = ids; links = [] })
    | "kill-links" -> Ok (Kill { procs = []; links = ids })
    | "revive-procs" -> Ok (Revive { procs = ids; links = [] })
    | "revive-links" -> Ok (Revive { procs = []; links = ids })
    | k ->
      Error
        (Printf.sprintf
           "unknown chaos action %S (want kill-procs, kill-links, revive-procs \
            or revive-links)"
           k))

let parse_chaos s =
  String.split_on_char ';' (String.trim s)
  |> List.filter (fun part -> String.trim part <> "")
  |> List.fold_left
       (fun acc part ->
         let* evs = acc in
         let part = String.trim part in
         match String.index_opt part ':' with
         | None -> Error (Printf.sprintf "bad chaos event %S (want AT:ACTION)" part)
         | Some colon ->
           let at_s = String.sub part 0 colon in
           let action = String.sub part (colon + 1) (String.length part - colon - 1) in
           (match int_of_string_opt at_s with
           | None -> Error (Printf.sprintf "bad chaos time %S" at_s)
           | Some at when at < 0 -> Error (Printf.sprintf "negative chaos time %d" at)
           | Some at ->
             let* ev = parse_action action in
             Ok ((at, ev) :: evs)))
       (Ok [])
  |> Result.map List.rev

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun tok -> tok <> "")

let parse_kv tok =
  match String.index_opt tok '=' with
  | None -> None
  | Some eq ->
    Some
      ( String.sub tok 0 eq,
        String.sub tok (eq + 1) (String.length tok - eq - 1) )

let parse_arrival name program opts =
  List.fold_left
    (fun acc tok ->
      let* ar = acc in
      match parse_kv tok with
      | None -> Error (Printf.sprintf "bad option %S (want key=value)" tok)
      | Some (k, v) -> (
        let cons = ar.ar_constraints in
        match k with
        | "procs" -> (
          match int_of_string_opt v with
          | Some n when n > 0 -> Ok { ar with ar_procs = Some n }
          | _ -> Error (Printf.sprintf "bad procs %S" v))
        | "pin" ->
          let* pins = Constraints.parse_pins v in
          Ok { ar with ar_constraints = { cons with Constraints.pins } }
        | "forbid" ->
          let* forbids = Constraints.parse_forbids v in
          Ok { ar with ar_constraints = { cons with Constraints.forbids } }
        | "require" ->
          let* requires = Constraints.parse_requires v in
          Ok { ar with ar_constraints = { cons with Constraints.requires } }
        | "skip" ->
          let skip_classes = String.split_on_char ',' v in
          Ok { ar with ar_constraints = { cons with Constraints.skip_classes } }
        | _ -> (
          match int_of_string_opt v with
          | Some n -> Ok { ar with ar_bindings = (k, n) :: ar.ar_bindings }
          | None -> Error (Printf.sprintf "bad parameter %S (want an integer)" tok))))
    (Ok
       {
         ar_name = name;
         ar_program = program;
         ar_procs = None;
         ar_bindings = [];
         ar_constraints = Constraints.none;
       })
    opts

let parse_fault_opts verb opts =
  let* procs, links =
    List.fold_left
      (fun acc tok ->
        let* procs, links = acc in
        match parse_kv tok with
        | Some ("procs", v) ->
          let* p = Faults.parse_ids v in
          Ok (procs @ p, links)
        | Some ("links", v) ->
          let* l = Faults.parse_ids v in
          Ok (procs, links @ l)
        | _ ->
          Error (Printf.sprintf "bad %s option %S (want procs=IDS or links=IDS)" verb tok))
      (Ok ([], []))
      opts
  in
  if procs = [] && links = [] then
    Error (Printf.sprintf "%s needs procs=IDS and/or links=IDS" verb)
  else Ok (procs, links)

let parse_trace_line lineno line =
  let at_line e = Printf.sprintf "line %d: %s" lineno e in
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    Result.map_error at_line
      (match tokens line with
      | "arrive" :: name :: program :: opts ->
        Result.map (fun ar -> Some (Arrive ar)) (parse_arrival name program opts)
      | [ "depart"; name ] -> Ok (Some (Depart name))
      | "kill" :: opts ->
        let* procs, links = parse_fault_opts "kill" opts in
        Ok (Some (Kill { procs; links }))
      | "revive" :: opts ->
        let* procs, links = parse_fault_opts "revive" opts in
        Ok (Some (Revive { procs; links }))
      | verb :: _ ->
        Error
          (Printf.sprintf "unknown trace verb %S (want arrive, depart, kill or revive)"
             verb)
      | [] -> Error "empty line")

let load_trace path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines ->
    List.fold_left
      (fun acc (lineno, line) ->
        let* evs = acc in
        let* ev = parse_trace_line lineno line in
        match ev with None -> Ok evs | Some ev -> Ok (ev :: evs))
      (Ok [])
      (List.mapi (fun i line -> (i + 1, line)) lines)
    |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* synthetic arrival generator *)

let synth_trace ~events ~seed topo =
  let rng = Rng.create seed in
  let nprocs = Topology.node_count topo in
  let families = [| "grid"; "ring"; "tree"; "rmat" |] in
  let active = ref [] and counter = ref 0 in
  List.init events (fun _ ->
      if !active <> [] && Rng.float rng 1.0 < 0.45 then begin
        let name = Rng.pick rng (Array.of_list !active) in
        active := List.filter (fun n -> n <> name) !active;
        Depart name
      end
      else begin
        incr counter;
        let name = Printf.sprintf "job%d" !counter in
        let fam = Rng.pick rng families in
        let n = 8 + Rng.int rng 33 in
        let procs = 1 + Rng.int rng (max 1 (nprocs / 4)) in
        active := name :: !active;
        Arrive
          {
            ar_name = name;
            ar_program = Printf.sprintf "synth:%s:%d:%d" fam n (1 + Rng.int rng 999);
            ar_procs = Some procs;
            ar_bindings = [];
            ar_constraints = Constraints.none;
          }
      end)
