module Prelude = Oregami_prelude
module Graph = Oregami_graph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Distcache = Oregami_topology.Distcache
module Gray = Oregami_topology.Gray
module Perm = Oregami_perm.Perm
module Group = Oregami_perm.Group
module Cayley = Oregami_perm.Cayley
module Matching = Oregami_matching
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Larcs = Oregami_larcs
module Mapper = Oregami_mapper
module Mapping = Oregami_mapper.Mapping
module Driver = Driver
module Remap = Remap
module Metrics = Oregami_metrics.Metrics
module Netsim = Oregami_metrics.Netsim
module Render = Oregami_metrics.Render
module Svg = Oregami_metrics.Svg
module Edit = Oregami_metrics.Edit
module Systolic = Oregami_systolic
module Sched = Oregami_sched.Synchrony
module Vm = Oregami_exec.Vm
module Workloads = Oregami_workloads.Workloads

let version = "1.0.0"

let map_source ?bindings ?options source ~topology =
  let ( let* ) = Result.bind in
  let* kind = Topology.parse topology in
  let topo = Topology.make kind in
  let* compiled = Oregami_larcs.Compile.compile_source ?bindings source in
  let* mapping = Driver.map_compiled ?options compiled topo in
  Ok (mapping, Metrics.summary mapping)
